module peas

go 1.22
