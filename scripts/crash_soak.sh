#!/usr/bin/env bash
# crash_soak.sh runs the SIGKILL crash soak of the simulation service:
#
#   - plans a seeded workload including long-horizon jobs (the kill
#     victims) and an injected-panic job (panic-isolation probe);
#   - every cycle but the last SIGKILLs the managed peas-serve at
#     seeded points: a random delay into the submission storm (tearing
#     persistSpec durable writes, widened by -durable-delay), or right
#     as drain-checkpoint files land (tearing checkpoint writes);
#   - every boot must account for every spec file present at kill time
#     (healthz recovered + quarantined), every complete checkpoint
#     killed must resume bit-exactly against the in-process reference
#     StateHash, and the final undisturbed cycle is gated on the SLO.
#
# The soak exits non-zero unless every assertion in the JSON report
# passes (accounting intact, zero lost jobs, hash consistency,
# checkpoint resume exercised, panic contained, clean final drain).
#
# Usage: scripts/crash_soak.sh <peas-serve-bin> <peas-loadgen-bin>
set -euo pipefail

SERVE_BIN=${1:?usage: crash_soak.sh <peas-serve binary> <peas-loadgen binary>}
LOADGEN_BIN=${2:?usage: crash_soak.sh <peas-serve binary> <peas-loadgen binary>}
STATE_DIR=$(mktemp -d)
REPORT=$(mktemp)
trap 'rm -rf "$STATE_DIR"' EXIT

"$LOADGEN_BIN" -soak-kill9 \
  -serve-bin "$SERVE_BIN" \
  -state-dir "$STATE_DIR" \
  -addr 127.0.0.1:18743 \
  -cycles 4 -jobs 40 -seed 7 -kill-seed 11 \
  -dup 0.3 -follow 0.4 -chaos 0.15 -long-jobs 2 -panic-jobs 1 \
  -out "$REPORT" -v || { echo "FAIL: crash-soak report:"; cat "$REPORT"; exit 1; }

grep -q '"pass": true' "$REPORT" || { echo "FAIL: report not passing"; cat "$REPORT"; exit 1; }
echo "crash-soak report:"
cat "$REPORT"
echo "PASS: crash soak"
