#!/usr/bin/env bash
# cancel_storm.sh runs the cancellation storm against a live peas-serve
# (expected to be built with -race by CI):
#
#   - boots the server with a watchdog stall window and a state dir;
#   - drives a seeded workload where a fraction of jobs is cancelled at
#     random lifecycle points (queued, mid-run, after completion) while
#     injected-hang jobs wedge workers and unmeetable-deadline jobs
#     demand enforcement;
#   - the JSON report must show full accounting: every planned cancel
#     landed cancelled or raced-to-done, every hang was
#     watchdog-preempted, every deadline was enforced, state hashes of
#     everything that completed stayed bit-exact, and the service came
#     out clean (drained pool, no goroutine growth);
#   - SIGTERM afterwards must still drain cleanly (exit 0) — the storm
#     must not leave the server in a state its own shutdown trips over.
#
# Usage: scripts/cancel_storm.sh <peas-serve-bin> <peas-loadgen-bin>
set -euo pipefail

SERVE_BIN=${1:?usage: cancel_storm.sh <peas-serve binary> <peas-loadgen binary>}
LOADGEN_BIN=${2:?usage: cancel_storm.sh <peas-serve binary> <peas-loadgen binary>}
ADDR=127.0.0.1:18744
BASE=http://$ADDR
STATE_DIR=$(mktemp -d)
REPORT=$(mktemp)
LOG=$(mktemp)

"$SERVE_BIN" -addr "$ADDR" -workers 4 -queue 64 \
  -state-dir "$STATE_DIR" -checkpoint-every 200 -watchdog 2s >"$LOG" 2>&1 &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null || true; cat "$LOG"; rm -rf "$STATE_DIR"' EXIT

for _ in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || { echo "FAIL: /healthz"; exit 1; }

# Tolerance 1.0 disables the duplicate-rate gate: a planned duplicate of
# a cancelled key legitimately re-admits (resuming the parked
# checkpoint) instead of coalescing, shifting the observed rate.
"$LOADGEN_BIN" -url "$BASE" \
  -seed 777 -jobs 30 -dup 0.2 -follow 0.3 -chaos 0 \
  -cancel 0.4 -hang-jobs 3 -deadline-jobs 2 -check-leaks \
  -dup-tol 1.0 -concurrency 8 \
  -out "$REPORT" || { echo "FAIL: cancel-storm report:"; cat "$REPORT"; exit 1; }

grep -q '"pass": true' "$REPORT" || { echo "FAIL: report not passing"; cat "$REPORT"; exit 1; }

METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^peas_jobs_cancelled [1-9]' ||
  echo "note: no job was caught before completion (all cancels raced done) — accounting still gated by the report"
echo "$METRICS" | grep -q '^peas_watchdog_preemptions 3$' || {
  echo "FAIL: expected 3 watchdog preemptions"; echo "$METRICS" | grep '^peas_watchdog'; exit 1; }
echo "$METRICS" | grep -qE '^peas_(jobs_deadline_exceeded|deadline_rejected) [1-9]' || {
  echo "FAIL: no deadline enforcement recorded"; exit 1; }

# The storm must not break graceful shutdown.
kill -TERM $SERVE_PID
wait $SERVE_PID || { echo "FAIL: non-zero exit on SIGTERM after storm"; exit 1; }
trap 'rm -rf "$STATE_DIR"' EXIT
grep -q 'drained cleanly' "$LOG" || { echo "FAIL: no clean drain logged"; cat "$LOG"; exit 1; }

echo "cancel-storm report:"
cat "$REPORT"
echo "PASS: cancel storm"
