#!/usr/bin/env bash
# loadgen_soak.sh runs a short closed-loop soak of the simulation
# service with the deterministic load generator:
#
#   - builds peas-serve and peas-loadgen (race-enabled by CI);
#   - plans a seeded workload with duplicate keys, SSE followers, chaos
#     jobs and long-horizon drain victims;
#   - cycle 0 SIGTERMs the managed server while the long jobs run,
#     forcing checkpoint-suspend into the state dir;
#   - cycle 1 recovers them, verifies the resumed runs reproduce the
#     independently computed reference StateHash, replays the full
#     plan, and gates on the report's SLO assertions.
#
# The soak exits non-zero unless every assertion in the JSON report
# passes (zero lost jobs, suspension exercised, bit-exact resume,
# clean final drain).
#
# Usage: scripts/loadgen_soak.sh <peas-serve-bin> <peas-loadgen-bin>
set -euo pipefail

SERVE_BIN=${1:?usage: loadgen_soak.sh <peas-serve binary> <peas-loadgen binary>}
LOADGEN_BIN=${2:?usage: loadgen_soak.sh <peas-serve binary> <peas-loadgen binary>}
STATE_DIR=$(mktemp -d)
REPORT=$(mktemp)
trap 'rm -rf "$STATE_DIR"' EXIT

"$LOADGEN_BIN" -soak \
  -serve-bin "$SERVE_BIN" \
  -state-dir "$STATE_DIR" \
  -addr 127.0.0.1:18742 \
  -cycles 2 -jobs 30 -dup 0.3 -follow 0.4 -chaos 0.15 -long-jobs 2 \
  -out "$REPORT" -v || { echo "FAIL: soak report:"; cat "$REPORT"; exit 1; }

grep -q '"pass": true' "$REPORT" || { echo "FAIL: report not passing"; cat "$REPORT"; exit 1; }
echo "soak report:"
cat "$REPORT"
echo "PASS: loadgen soak"
