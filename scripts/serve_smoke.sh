#!/usr/bin/env bash
# serve_smoke.sh boots a peas-serve instance (expected to be built with
# -race by CI), fires N concurrent identical submissions at it, and
# asserts the control-plane contract end to end:
#
#   - every submission gets the same content key;
#   - exactly one underlying run executes (singleflight + cache);
#   - every job reports the same StateHash;
#   - /metrics reflects the coalescing;
#   - SIGTERM drains cleanly (exit 0).
#
# Usage: scripts/serve_smoke.sh <path-to-peas-serve-binary>
set -euo pipefail

BIN=${1:?usage: serve_smoke.sh <peas-serve binary>}
ADDR=127.0.0.1:18473
BASE=http://$ADDR
BODY='{"network":{"N":80,"Seed":11},"horizon":900}'
LOG=$(mktemp)

"$BIN" -addr "$ADDR" -workers 2 -queue 32 >"$LOG" 2>&1 &
SERVE_PID=$!
trap 'kill -9 $SERVE_PID 2>/dev/null || true; cat "$LOG"' EXIT

for _ in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || { echo "FAIL: /healthz"; exit 1; }

# 8 concurrent identical submissions.
CURL_PIDS=()
for i in $(seq 1 8); do
  curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$BODY" "$BASE/api/v1/jobs" >"/tmp/serve_smoke_$i.json" &
  CURL_PIDS+=($!)
done
wait "${CURL_PIDS[@]}"

KEYS=$(sed -n 's/.*"key":"\([0-9a-f]*\)".*/\1/p' /tmp/serve_smoke_*.json | sort -u)
[ "$(echo "$KEYS" | wc -l)" -eq 1 ] || { echo "FAIL: divergent content keys: $KEYS"; exit 1; }
echo "content key: $KEYS"

# Wait for all jobs to reach a terminal state, then compare hashes.
for _ in $(seq 1 150); do
  JOBS=$(curl -fsS "$BASE/api/v1/jobs")
  PENDING=$(echo "$JOBS" | grep -c '"state":"queued"\|"state":"running"' || true)
  [ "$PENDING" -eq 0 ] && break
  sleep 0.2
done
HASHES=$(curl -fsS "$BASE/api/v1/jobs" | grep -o '"stateHash":"[0-9a-f]*"' | sort -u)
[ "$(echo "$HASHES" | wc -l)" -eq 1 ] || { echo "FAIL: divergent state hashes: $HASHES"; exit 1; }
echo "state hash:  $HASHES"

METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^peas_runs_executed 1$' || {
  echo "FAIL: expected exactly one underlying run"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -q '^peas_jobs_submitted 8$' || {
  echo "FAIL: expected 8 submissions recorded"; echo "$METRICS"; exit 1; }
HITS=$(echo "$METRICS" | sed -n 's/^peas_cache_hits \([0-9]*\)$/\1/p')
COALESCED=$(echo "$METRICS" | sed -n 's/^peas_jobs_coalesced \([0-9]*\)$/\1/p')
HITS=${HITS:-0}
COALESCED=${COALESCED:-0}
[ $((HITS + COALESCED)) -eq 7 ] || {
  echo "FAIL: hits($HITS) + coalesced($COALESCED) != 7"; echo "$METRICS"; exit 1; }
echo "coalesced:   $COALESCED, cache hits: $HITS"

# A repeat submission after completion is a pure cache hit.
OUT=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" "$BASE/api/v1/jobs")
echo "$OUT" | grep -q '"outcome":"cached"' || { echo "FAIL: repeat not cached: $OUT"; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM $SERVE_PID
wait $SERVE_PID || { echo "FAIL: non-zero exit on SIGTERM"; exit 1; }
trap - EXIT
grep -q 'drained cleanly' "$LOG" || { echo "FAIL: no clean drain logged"; cat "$LOG"; exit 1; }
echo "PASS: serve smoke"
