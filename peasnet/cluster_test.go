package peasnet

import (
	"runtime"
	"testing"
	"time"

	"peas/internal/core"
	"peas/internal/geom"
)

// clusterProtocol returns protocol parameters suited to accelerated live
// tests: the paper's geometry with a faster desired rate so adaptation
// is observable within seconds of real time.
func clusterProtocol() core.Config {
	cfg := core.DefaultConfig()
	return cfg
}

func TestClusterStabilizes(t *testing.T) {
	cfg := ClusterConfig{
		Field:     geom.NewField(20, 20),
		N:         40,
		Protocol:  clusterProtocol(),
		TimeScale: 100, // 1 real second = 100 protocol seconds
		Seed:      7,
	}
	c, err := NewCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start()

	if !c.AwaitStable(500*time.Millisecond, 10*time.Second) {
		t.Fatalf("working set never stabilized; working=%d", c.WorkingCount())
	}
	working := c.WorkingCount()
	t.Logf("working=%d of %d", working, cfg.N)
	if working == 0 || working == cfg.N {
		t.Fatalf("implausible working count %d", working)
	}

	// Each working node should have no other working node within Rp
	// (allowing a small slack for in-flight turn-off resolution).
	pts := c.WorkingPositions()
	tooClose := 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) < cfg.Protocol.ProbingRange {
				tooClose++
			}
		}
	}
	if tooClose > len(pts)/4 {
		t.Errorf("%d working pairs closer than Rp (working=%d)", tooClose, len(pts))
	}
}

func TestClusterReplacesFailedWorker(t *testing.T) {
	cfg := ClusterConfig{
		Field:     geom.NewField(6, 6),
		N:         8,
		Protocol:  clusterProtocol(),
		TimeScale: 200,
		Seed:      11,
	}
	// Dense tiny field: one worker covers everything within Rp = 3.
	c, err := NewCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start()
	if !c.AwaitStable(300*time.Millisecond, 10*time.Second) {
		t.Fatalf("working set never stabilized")
	}

	// Kill every working node; a sleeper must take over.
	killed := 0
	for _, n := range c.Nodes {
		if n.State() == core.Working {
			n.Stop()
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("no working nodes to kill")
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if c.WorkingCount() > 0 {
			t.Logf("replacement after killing %d workers: working=%d", killed, c.WorkingCount())
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("no replacement worker emerged after killing %d workers", killed)
}

func TestClusterShutdownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := ClusterConfig{
		Field:     geom.NewField(15, 15),
		N:         20,
		Protocol:  clusterProtocol(),
		TimeScale: 100,
		Seed:      3,
	}
	c, err := NewCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	time.Sleep(300 * time.Millisecond)
	c.Stop()

	// Allow the runtime to reap exited goroutines.
	var after int
	for i := 0; i < 50; i++ {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, after)
}

func TestUDPGroupSmoke(t *testing.T) {
	g := NewUDPGroup()
	cfg := ClusterConfig{
		Field:     geom.NewField(10, 10),
		N:         12,
		Protocol:  clusterProtocol(),
		TimeScale: 100,
		Seed:      5,
	}
	c, err := NewCluster(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Stop()
		_ = g.Close()
	}()
	c.Start()
	if !c.AwaitStable(300*time.Millisecond, 15*time.Second) {
		t.Fatalf("udp cluster never stabilized; working=%d", c.WorkingCount())
	}
	if w := c.WorkingCount(); w == 0 || w == cfg.N {
		t.Fatalf("implausible working count %d over UDP", w)
	}
	t.Logf("udp working=%d of %d", c.WorkingCount(), cfg.N)
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []any{
		core.Probe{From: 42, Seq: 2},
		core.Reply{From: 7, RateEstimate: 0.0213, DesiredRate: 0.02, TimeWorking: 1234.5},
	}
	for _, payload := range cases {
		frame, err := Marshal(payload)
		if err != nil {
			t.Fatalf("marshal %T: %v", payload, err)
		}
		if len(frame) != FrameSize {
			t.Errorf("frame size %d, want %d", len(frame), FrameSize)
		}
		back, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", payload, err)
		}
		if back != payload {
			t.Errorf("round trip: got %#v want %#v", back, payload)
		}
	}
	if _, err := Unmarshal([]byte{9, 9}); err == nil {
		t.Error("short frame should fail")
	}
	if _, err := Unmarshal(make([]byte, FrameSize)); err == nil {
		t.Error("unknown frame type should fail")
	}
	if _, err := Marshal("bogus"); err == nil {
		t.Error("unknown payload should fail")
	}
}
