package peasnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"peas/internal/core"
	"peas/internal/geom"
)

// UDPGroup is a Transport where every node owns a UDP socket on the
// loopback interface. A broadcast becomes one datagram per in-range peer.
// The group keeps the id -> (address, position) registry that real
// deployments would replace with actual radio reachability.
//
// UDPGroup exists to demonstrate the protocol over a real network stack;
// it is not a radio model (no collisions or losses beyond what UDP and
// the kernel provide).
type UDPGroup struct {
	mu      sync.Mutex
	peers   map[int]*udpPeer
	closed  bool
	wg      sync.WaitGroup
	faults  FaultInjector
	dropped uint64
}

type udpPeer struct {
	pos       geom.Point
	addr      *net.UDPAddr
	conn      *net.UDPConn
	listening func() bool
	recv      Receiver
}

var (
	_ Transport      = (*UDPGroup)(nil)
	_ FaultTransport = (*UDPGroup)(nil)
	_ Unregisterer   = (*UDPGroup)(nil)
)

// NewUDPGroup returns an empty group; nodes join via Register.
func NewUDPGroup() *UDPGroup {
	return &UDPGroup{peers: make(map[int]*udpPeer)}
}

// Register binds a loopback UDP socket for node id and starts its reader.
func (g *UDPGroup) Register(id int, pos geom.Point, listening func() bool, recv Receiver) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return fmt.Errorf("peasnet: udp group closed")
	}
	if _, ok := g.peers[id]; ok {
		return fmt.Errorf("peasnet: node %d already registered", id)
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return fmt.Errorf("listen udp for node %d: %w", id, err)
	}
	addr, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		_ = conn.Close()
		return fmt.Errorf("peasnet: unexpected local addr type %T", conn.LocalAddr())
	}
	peer := &udpPeer{pos: pos, addr: addr, conn: conn, listening: listening, recv: recv}
	g.peers[id] = peer

	g.wg.Add(1)
	go g.read(peer)
	return nil
}

// read pumps datagrams from the peer's socket into its receiver. Sender
// distance is encoded in a 8-byte prefix is avoided by recomputing from
// the registry: the sender appends its id, and we look its position up.
func (g *UDPGroup) read(p *udpPeer) {
	defer g.wg.Done()
	buf := make([]byte, FrameSize+8)
	for {
		n, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n < FrameSize {
			continue
		}
		if !p.listening() {
			continue // radio "off": drop silently
		}
		frame := append([]byte(nil), buf[:FrameSize]...)
		payload, err := Unmarshal(frame)
		if err != nil {
			continue
		}
		// Distance from the registry, as a radio would measure signal
		// strength.
		from := senderOf(payload)
		g.mu.Lock()
		sender, ok := g.peers[from]
		g.mu.Unlock()
		if !ok {
			continue
		}
		p.recv(frame, p.pos.Dist(sender.pos))
	}
}

// SetFaultInjector installs (or, with nil, removes) the fault hook
// consulted per (frame, receiver) datagram. It may be changed while the
// group runs.
func (g *UDPGroup) SetFaultInjector(f FaultInjector) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.faults = f
}

// Dropped returns how many datagrams the fault injector discarded.
func (g *UDPGroup) Dropped() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropped
}

// Unregister closes node id's socket (its reader exits) and removes the
// peer, freeing the id for a later Register — the crash half of a
// crash-restart.
func (g *UDPGroup) Unregister(id int) {
	g.mu.Lock()
	p, ok := g.peers[id]
	if ok {
		delete(g.peers, id)
	}
	g.mu.Unlock()
	if ok {
		_ = p.conn.Close()
	}
}

// Broadcast implements Transport: one datagram per in-range peer. The
// fault injector is consulted per (frame, receiver): drops suppress the
// datagram, duplicates send extras, delays defer the write to a timer.
func (g *UDPGroup) Broadcast(from int, pos geom.Point, radius float64, frame []byte) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("peasnet: udp group closed")
	}
	sender, ok := g.peers[from]
	if !ok {
		g.mu.Unlock()
		return fmt.Errorf("peasnet: unknown sender %d", from)
	}
	type target struct {
		addr   *net.UDPAddr
		copies int
		delay  time.Duration
	}
	targets := make([]target, 0, 8)
	for id, p := range g.peers {
		if id == from {
			continue
		}
		if pos.Dist(p.pos) > radius {
			continue
		}
		var fd FaultDecision
		if g.faults != nil {
			fd = g.faults.JudgeFrame(from, id)
		}
		if fd.Drop {
			g.dropped++
			continue
		}
		targets = append(targets, target{addr: p.addr, copies: 1 + fd.Copies, delay: fd.Delay})
	}
	g.mu.Unlock()

	conn := sender.conn
	for _, tg := range targets {
		for c := 0; c < tg.copies; c++ {
			if tg.delay > 0 {
				addr := tg.addr
				// Best effort: by the time the timer fires the sender's
				// socket may be closed; the frame is just lost, like a
				// radio's would be.
				time.AfterFunc(tg.delay, func() { _, _ = conn.WriteToUDP(frame, addr) })
				continue
			}
			if _, err := conn.WriteToUDP(frame, tg.addr); err != nil {
				// Best effort, like a radio: receivers that went away just
				// miss the frame.
				continue
			}
		}
	}
	return nil
}

// Close shuts all sockets and waits for the readers to exit.
func (g *UDPGroup) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	for _, p := range g.peers {
		_ = p.conn.Close()
	}
	g.mu.Unlock()
	g.wg.Wait()
	return nil
}

// senderOf extracts the sender id from a decoded payload.
func senderOf(payload any) int {
	switch msg := payload.(type) {
	case core.Probe:
		return int(msg.From)
	case core.Reply:
		return int(msg.From)
	default:
		return -1
	}
}
