package peasnet

import (
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"peas/internal/core"
	"peas/internal/geom"
)

// freePorts reserves n distinct loopback UDP ports.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		addr, ok := c.LocalAddr().(*net.UDPAddr)
		if !ok {
			t.Fatal("unexpected addr type")
		}
		ports = append(ports, addr.Port)
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return ports
}

func peerTable(t *testing.T, n int, field float64) []PeerInfo {
	t.Helper()
	ports := freePorts(t, n)
	peers := make([]PeerInfo, 0, n)
	for i := 0; i < n; i++ {
		peers = append(peers, PeerInfo{
			ID:   i,
			Addr: fmt.Sprintf("127.0.0.1:%d", ports[i]),
			X:    field * float64(i%3) / 3,
			Y:    field * float64(i/3) / 3,
		})
	}
	return peers
}

func TestPeersFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "peers.json")
	peers := []PeerInfo{
		{ID: 0, Addr: "127.0.0.1:42000", X: 1.5, Y: 2.5},
		{ID: 1, Addr: "127.0.0.1:42001", X: 3, Y: 4},
	}
	if err := WritePeersFile(path, peers); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPeersFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != peers[0] || back[1] != peers[1] {
		t.Errorf("round trip: %+v", back)
	}
	if _, err := ReadPeersFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestUDPPeerValidation(t *testing.T) {
	peers := peerTable(t, 2, 9)
	if _, err := NewUDPPeer(99, peers); err == nil {
		t.Error("unknown self id should fail")
	}
	tr, err := NewUDPPeer(0, peers)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	if err := tr.Register(1, geom.Point{}, func() bool { return true }, func([]byte, float64) {}); err == nil {
		t.Error("registering a foreign node should fail")
	}
	if err := tr.Broadcast(1, geom.Point{}, 3, nil); err == nil {
		t.Error("transmitting for a foreign node should fail")
	}
}

// TestMultiTransportNetwork runs one node per UDPPeer transport — each
// with its own socket, exactly as separate processes would — and checks
// the network stabilizes into a plausible working set.
func TestMultiTransportNetwork(t *testing.T) {
	const n = 9
	peers := peerTable(t, n, 9) // 9x9 m: several Rp=3 m regions
	nodes := make([]*Node, 0, n)
	transports := make([]*UDPPeer, 0, n)
	defer func() {
		for _, nd := range nodes {
			nd.Stop()
		}
		for _, tr := range transports {
			_ = tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		tr, err := NewUDPPeer(i, peers)
		if err != nil {
			t.Fatal(err)
		}
		transports = append(transports, tr)
		nd, err := NewNode(Config{
			ID:        i,
			Pos:       geom.Point{X: peers[i].X, Y: peers[i].Y},
			Protocol:  core.DefaultConfig(),
			TimeScale: 100,
			Seed:      int64(i + 1),
		}, tr)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.Start()
	}

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		working := 0
		for _, nd := range nodes {
			if nd.State() == core.Working {
				working++
			}
		}
		if working >= 2 && working < n {
			t.Logf("multi-transport working set: %d of %d", working, n)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	states := make([]core.State, n)
	for i, nd := range nodes {
		states[i] = nd.State()
	}
	t.Fatalf("no plausible working set emerged: %v", states)
}
