package peasnet

import (
	"sync"
	"time"

	"peas/internal/core"
	"peas/internal/energy"
)

// BatteryConfig enables battery emulation on a live node: the node drains
// a virtual charge according to its protocol mode (at the node's
// TimeScale) and fails permanently on depletion, as a deployed sensor
// would.
type BatteryConfig struct {
	// Joules is the initial charge.
	Joules float64
	// Profile holds the per-mode power draw. The zero value selects the
	// paper's Motes profile.
	Profile energy.Profile
}

// virtualBattery tracks mode-based drain in protocol time.
type virtualBattery struct {
	mu        sync.Mutex
	profile   energy.Profile
	remaining float64
	mode      energy.Mode
	lastT     float64 // protocol seconds
	dead      bool
}

func newVirtualBattery(cfg BatteryConfig) *virtualBattery {
	profile := cfg.Profile
	if profile == (energy.Profile{}) {
		profile = energy.MotesProfile()
	}
	return &virtualBattery{
		profile:   profile,
		remaining: cfg.Joules,
		mode:      energy.Sleep,
	}
}

// setMode settles drain up to protocol time now and switches modes. It
// returns the projected protocol-time instant of depletion (or a negative
// value when the battery never depletes in the new mode).
func (b *virtualBattery) setMode(now float64, m energy.Mode) (depleteAt float64, dead bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settle(now)
	b.mode = m
	if b.dead {
		return now, true
	}
	p := b.profile.Power(m)
	if p <= 0 {
		return -1, false
	}
	return now + b.remaining/p, false
}

func (b *virtualBattery) settle(now float64) {
	if b.dead || now <= b.lastT {
		if now > b.lastT {
			b.lastT = now
		}
		return
	}
	used := b.profile.Power(b.mode) * (now - b.lastT)
	if used >= b.remaining {
		b.remaining = 0
		b.dead = true
	} else {
		b.remaining -= used
	}
	b.lastT = now
}

// rebase positions the drain clock at protocol time t without settling —
// a restored node's battery must not be charged for the downtime its
// clock skipped over.
func (b *virtualBattery) rebase(t float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastT = t
}

// remainingAt settles and returns the remaining charge.
func (b *virtualBattery) remainingAt(now float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settle(now)
	return b.remaining
}

// protocolMode maps a protocol state to a battery mode.
func protocolMode(s core.State) energy.Mode {
	switch s {
	case core.Probing, core.Working:
		return energy.Idle
	default:
		return energy.Sleep
	}
}

// armBatteryWatch installs battery emulation hooks on a node. Called from
// NewNode when Config.Battery is set.
func (n *Node) armBatteryWatch() {
	if n.battery == nil {
		return
	}
	// Re-anchor the depletion timer on every state change.
	n.onBatteryState = func(s core.State) {
		now := n.Now()
		depleteAt, dead := n.battery.setMode(now, protocolMode(s))
		if dead {
			n.failDepleted()
			return
		}
		n.mu.Lock()
		if n.depletionTimer != nil {
			n.depletionTimer.Stop()
			n.depletionTimer = nil
		}
		if n.stopped || depleteAt < 0 || s == core.Dead {
			n.mu.Unlock()
			return
		}
		realDelay := time.Duration((depleteAt - now) / n.scale * float64(time.Second))
		n.depletionTimer = time.AfterFunc(realDelay, n.failDepleted)
		n.mu.Unlock()
	}
}

// failDepleted marks the node dead from battery exhaustion.
func (n *Node) failDepleted() {
	n.post(func() {
		if n.proto.State() != core.Dead {
			n.proto.Fail()
		}
	})
}

// BatteryRemaining returns the emulated remaining charge in joules, or
// (0, false) when battery emulation is disabled.
func (n *Node) BatteryRemaining() (float64, bool) {
	if n.battery == nil {
		return 0, false
	}
	return n.battery.remainingAt(n.Now()), true
}
