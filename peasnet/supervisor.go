package peasnet

import (
	"fmt"
	"sync"
	"time"

	"peas/internal/checkpoint"
	"peas/internal/core"
)

// This file is the cluster's crash-restart machinery: a supervisor that
// periodically checkpoints every running node (Supervise), plus the
// crash/restart operations that tear a node down abruptly and later
// rebuild it from its last checkpoint — the live counterpart of the
// simulator's crash-restart fault class.

// Supervise starts a background goroutine that checkpoints every
// running, non-dead node every `every` (real time), keeping the latest
// snapshot per node. It returns a stop function (idempotent); Stop does
// not imply it — call stop() before Stop. One immediate sweep runs
// before the ticker starts so a crash right after Supervise still finds
// a checkpoint.
func (c *Cluster) Supervise(every time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.checkpointSweep()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.checkpointSweep()
			case <-stopCh:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopCh) })
		<-done
	}
}

// checkpointSweep captures one checkpoint per running node. Dead nodes
// are skipped, keeping their last good (pre-death) checkpoint in place.
func (c *Cluster) checkpointSweep() {
	for _, n := range c.nodes() {
		if n.State() == core.Dead {
			continue
		}
		st, err := n.Checkpoint()
		if err != nil {
			continue // stopped or never started; nothing to capture
		}
		c.mu.Lock()
		c.ckpts[st.ID] = st
		c.mu.Unlock()
	}
}

// LastCheckpoint returns the most recent supervised checkpoint for node
// id, or nil when none was taken.
func (c *Cluster) LastCheckpoint(id int) *checkpoint.LiveNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ckpts[id]
}

// Crash kills node id abruptly: its event loop stops mid-flight and its
// transport endpoint is torn down, freeing the id for Restart. If no
// supervised checkpoint exists yet, one is captured at the crash instant
// (a crash-consistent snapshot), so Restart always has something to
// resume from. The transport must support Unregister.
func (c *Cluster) Crash(id int) error {
	n, err := c.nodeByID(id)
	if err != nil {
		return err
	}
	u, ok := c.transport.(Unregisterer)
	if !ok {
		return fmt.Errorf("peasnet: transport %T cannot unregister; crash-restart unsupported", c.transport)
	}
	c.mu.Lock()
	_, have := c.ckpts[id]
	c.mu.Unlock()
	if !have {
		if st, cerr := n.Checkpoint(); cerr == nil {
			c.mu.Lock()
			c.ckpts[id] = st
			c.mu.Unlock()
		}
	}
	n.Stop()
	u.Unregister(id)
	return nil
}

// Restart rebuilds node id from its last checkpoint and boots it: the
// protocol clock, RNG stream, battery charge and pending timers resume
// exactly where the checkpoint captured them, and the node re-registers
// on the transport under its old id and position.
func (c *Cluster) Restart(id int) error {
	old, err := c.nodeByID(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	st := c.ckpts[id]
	c.mu.Unlock()
	if st == nil {
		return fmt.Errorf("peasnet: no checkpoint for node %d", id)
	}
	n, err := RestoreNode(old.cfg, c.transport, st)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.Nodes[id] = n
	c.mu.Unlock()
	n.Start()
	return nil
}

// CrashRestart crashes node id, keeps it down for the given (real time)
// duration, then restarts it from its last checkpoint. It blocks for the
// downtime; run it from its own goroutine to keep driving the cluster
// meanwhile.
func (c *Cluster) CrashRestart(id int, downtime time.Duration) error {
	if err := c.Crash(id); err != nil {
		return err
	}
	time.Sleep(downtime)
	return c.Restart(id)
}

func (c *Cluster) nodeByID(id int) (*Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= len(c.Nodes) {
		return nil, fmt.Errorf("peasnet: node %d out of range [0,%d)", id, len(c.Nodes))
	}
	return c.Nodes[id], nil
}
