package peasnet

import (
	"bytes"
	"testing"

	"peas/internal/core"
)

// FuzzUnmarshal feeds arbitrary bytes to the frame decoder: it must never
// panic, and any frame it accepts must re-encode to the same bytes
// (canonical wire form).
func FuzzUnmarshal(f *testing.F) {
	probe, _ := Marshal(core.Probe{From: 3, Seq: 1})
	reply, _ := Marshal(core.Reply{From: 9, RateEstimate: 0.02, DesiredRate: 0.02, TimeWorking: 42})
	f.Add(probe)
	f.Add(reply)
	f.Add([]byte{})
	f.Add(make([]byte, FrameSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Unmarshal(data)
		if err != nil {
			return
		}
		re, err := Marshal(payload)
		if err != nil {
			t.Fatalf("decoded %#v cannot re-encode: %v", payload, err)
		}
		back, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		// Compare canonical encodings rather than values: NaN payload
		// fields are legal on the wire but NaN != NaN in Go.
		re2, err := Marshal(back)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("round trip changed frame: %x -> %x", re, re2)
		}
	})
}
