// Package peasnet is the live PEAS runtime: each sensor node is a
// goroutine running the same protocol state machine as the simulator
// (internal/core), over a pluggable Transport. An in-memory transport
// serves tests and single-process demos; a UDP transport runs each node
// on its own socket.
//
// The runtime demonstrates that the protocol logic evaluated in the
// simulator is directly deployable: nodes keep no per-neighbor state,
// exchange fixed-size PROBE/REPLY frames, and duty-cycle their radios
// through the State callbacks.
package peasnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"peas/internal/core"
)

// Frame types on the wire.
const (
	frameProbe byte = 1
	frameReply byte = 2
)

// FrameSize is the fixed encoded size of every PEAS frame in bytes. The
// paper uses 25-byte packets; this wire format fits the same information
// in 31 bytes (1 type + 4 from + 2 seq + 3x8 float64).
const FrameSize = 31

// ErrBadFrame is returned when a received frame cannot be decoded.
var ErrBadFrame = errors.New("peasnet: bad frame")

// Marshal encodes a core.Probe or core.Reply into the fixed wire format.
func Marshal(payload any) ([]byte, error) {
	buf := make([]byte, FrameSize)
	switch msg := payload.(type) {
	case core.Probe:
		buf[0] = frameProbe
		binary.BigEndian.PutUint32(buf[1:5], uint32(msg.From))
		binary.BigEndian.PutUint16(buf[5:7], uint16(msg.Seq))
	case core.Reply:
		buf[0] = frameReply
		binary.BigEndian.PutUint32(buf[1:5], uint32(msg.From))
		binary.BigEndian.PutUint64(buf[7:15], math.Float64bits(msg.RateEstimate))
		binary.BigEndian.PutUint64(buf[15:23], math.Float64bits(msg.DesiredRate))
		binary.BigEndian.PutUint64(buf[23:31], math.Float64bits(msg.TimeWorking))
	default:
		return nil, fmt.Errorf("peasnet: cannot marshal %T", payload)
	}
	return buf, nil
}

// Unmarshal decodes a wire frame back into a core.Probe or core.Reply.
func Unmarshal(buf []byte) (any, error) {
	if len(buf) < FrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(buf))
	}
	from := core.NodeID(binary.BigEndian.Uint32(buf[1:5]))
	switch buf[0] {
	case frameProbe:
		return core.Probe{
			From: from,
			Seq:  int(binary.BigEndian.Uint16(buf[5:7])),
		}, nil
	case frameReply:
		return core.Reply{
			From:         from,
			RateEstimate: math.Float64frombits(binary.BigEndian.Uint64(buf[7:15])),
			DesiredRate:  math.Float64frombits(binary.BigEndian.Uint64(buf[15:23])),
			TimeWorking:  math.Float64frombits(binary.BigEndian.Uint64(buf[23:31])),
		}, nil
	default:
		return nil, fmt.Errorf("%w: type %d", ErrBadFrame, buf[0])
	}
}
