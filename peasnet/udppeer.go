package peasnet

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"

	"peas/internal/geom"
)

// PeerInfo is one row of the static peer table used by multi-process
// deployments (cmd/peas-node): who listens where, and at which field
// position. Real sensor hardware would not need the table — radio
// reachability replaces it — but UDP needs explicit addressing.
type PeerInfo struct {
	ID   int     `json:"id"`
	Addr string  `json:"addr"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// WritePeersFile saves a peer table as JSON.
func WritePeersFile(path string, peers []PeerInfo) error {
	data, err := json.MarshalIndent(peers, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal peers: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPeersFile loads a peer table from JSON.
func ReadPeersFile(path string) ([]PeerInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var peers []PeerInfo
	if err := json.Unmarshal(data, &peers); err != nil {
		return nil, fmt.Errorf("parse peers file %s: %w", path, err)
	}
	return peers, nil
}

// UDPPeer is a single-node Transport for multi-process deployments: the
// node owns one UDP socket and addresses the other nodes through a static
// peer table. One UDPPeer serves exactly one registered node (its own).
type UDPPeer struct {
	selfID int
	conn   *net.UDPConn
	peers  map[int]PeerInfo
	addrs  map[int]*net.UDPAddr

	mu        sync.Mutex
	listening func() bool
	recv      Receiver
	closed    bool
	done      chan struct{}
}

var _ Transport = (*UDPPeer)(nil)

// NewUDPPeer binds the socket for selfID as listed in the peer table and
// starts the reader. Register must be called with selfID before frames
// are delivered.
func NewUDPPeer(selfID int, peers []PeerInfo) (*UDPPeer, error) {
	table := make(map[int]PeerInfo, len(peers))
	addrs := make(map[int]*net.UDPAddr, len(peers))
	for _, p := range peers {
		addr, err := net.ResolveUDPAddr("udp4", p.Addr)
		if err != nil {
			return nil, fmt.Errorf("peer %d addr %q: %w", p.ID, p.Addr, err)
		}
		table[p.ID] = p
		addrs[p.ID] = addr
	}
	self, ok := addrs[selfID]
	if !ok {
		return nil, fmt.Errorf("peasnet: node %d not in peer table", selfID)
	}
	conn, err := net.ListenUDP("udp4", self)
	if err != nil {
		return nil, fmt.Errorf("listen %s: %w", self, err)
	}
	t := &UDPPeer{
		selfID: selfID,
		conn:   conn,
		peers:  table,
		addrs:  addrs,
		done:   make(chan struct{}),
	}
	go t.read()
	return t, nil
}

func (t *UDPPeer) read() {
	defer close(t.done)
	buf := make([]byte, FrameSize+16)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < FrameSize {
			continue
		}
		t.mu.Lock()
		listening, recv := t.listening, t.recv
		t.mu.Unlock()
		if recv == nil || listening == nil || !listening() {
			continue
		}
		payload, err := Unmarshal(buf[:FrameSize])
		if err != nil {
			continue
		}
		sender, ok := t.peers[senderOf(payload)]
		if !ok {
			continue
		}
		selfPos := t.pos(t.selfID)
		dist := selfPos.Dist(geom.Point{X: sender.X, Y: sender.Y})
		frame := append([]byte(nil), buf[:FrameSize]...)
		recv(frame, dist)
	}
}

func (t *UDPPeer) pos(id int) geom.Point {
	p := t.peers[id]
	return geom.Point{X: p.X, Y: p.Y}
}

// Register implements Transport; only the owning node may register.
func (t *UDPPeer) Register(id int, pos geom.Point, listening func() bool, recv Receiver) error {
	if id != t.selfID {
		return fmt.Errorf("peasnet: UDPPeer for node %d cannot host node %d", t.selfID, id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.recv != nil {
		return fmt.Errorf("peasnet: node %d already registered", id)
	}
	t.listening = listening
	t.recv = recv
	return nil
}

// Broadcast implements Transport: one datagram per in-range peer.
func (t *UDPPeer) Broadcast(from int, pos geom.Point, radius float64, frame []byte) error {
	if from != t.selfID {
		return fmt.Errorf("peasnet: UDPPeer for node %d cannot transmit for %d", t.selfID, from)
	}
	for id, peer := range t.peers {
		if id == from {
			continue
		}
		if pos.Dist(geom.Point{X: peer.X, Y: peer.Y}) > radius {
			continue
		}
		if _, err := t.conn.WriteToUDP(frame, t.addrs[id]); err != nil {
			continue // best effort, like a radio
		}
	}
	return nil
}

// Close shuts the socket and waits for the reader.
func (t *UDPPeer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	<-t.done
	return err
}
