package peasnet

import (
	"fmt"
	"sync"
	"time"

	"peas/internal/geom"
)

// Receiver is the callback a node registers to receive frames. dist is
// the distance to the transmitter in meters.
type Receiver func(frame []byte, dist float64)

// Transport is the broadcast medium abstraction of the live runtime.
// Implementations must deliver asynchronously: Broadcast must not block
// on slow receivers, or node event loops could deadlock on each other.
type Transport interface {
	// Register attaches a receiver for node id at position pos. The
	// listening callback reports whether the node's radio is currently
	// on; transports must not deliver to non-listening nodes.
	Register(id int, pos geom.Point, listening func() bool, recv Receiver) error
	// Broadcast delivers frame to every listening registered node
	// within radius of pos, except the sender.
	Broadcast(from int, pos geom.Point, radius float64, frame []byte) error
	// Close releases transport resources and stops deliveries.
	Close() error
}

type memberEntry struct {
	pos       geom.Point
	listening func() bool
	recv      Receiver
}

// InMemory is a Transport delivering frames between goroutine nodes in
// one process. Deliveries run on a dedicated dispatcher goroutine so
// Broadcast never blocks the caller's event loop.
type InMemory struct {
	mu      sync.Mutex
	members map[int]*memberEntry
	queue   chan delivery
	stop    chan struct{}
	done    chan struct{}
	closed  bool
	faults  FaultInjector
	dropped uint64
}

type delivery struct {
	recv  Receiver
	frame []byte
	dist  float64
}

var (
	_ Transport      = (*InMemory)(nil)
	_ FaultTransport = (*InMemory)(nil)
	_ Unregisterer   = (*InMemory)(nil)
)

// NewInMemory returns a running in-memory transport. Close it to stop
// the dispatcher goroutine.
func NewInMemory() *InMemory {
	t := &InMemory{
		members: make(map[int]*memberEntry),
		// The queue buffers bursts (e.g. the boot-up probing storm)
		// without blocking transmitting nodes; 1024 frames is far above
		// any steady-state depth for the network sizes the live runtime
		// targets, and Broadcast drops (like a real radio) when full.
		queue: make(chan delivery, 1024),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go t.dispatch()
	return t
}

// SetFaultInjector installs (or, with nil, removes) the fault hook
// consulted per (frame, receiver) delivery. It may be changed while the
// network runs.
func (t *InMemory) SetFaultInjector(f FaultInjector) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = f
}

// SetLossRate makes the transport drop each delivery independently with
// probability p, emulating a lossy channel (§4). It is a thin adapter
// over SetFaultInjector and replaces any other installed injector; it
// may be changed while the network runs.
func (t *InMemory) SetLossRate(p float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	li, ok := t.faults.(*lossInjector)
	if !ok {
		li = newLossInjector(1)
		t.faults = li
	}
	li.setRate(p)
}

// Dropped returns how many deliveries the fault injector discarded.
func (t *InMemory) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

func (t *InMemory) dispatch() {
	defer close(t.done)
	for {
		select {
		case d := <-t.queue:
			d.recv(d.frame, d.dist)
		case <-t.stop:
			return
		}
	}
}

// Register implements Transport.
func (t *InMemory) Register(id int, pos geom.Point, listening func() bool, recv Receiver) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("peasnet: transport closed")
	}
	if _, ok := t.members[id]; ok {
		return fmt.Errorf("peasnet: node %d already registered", id)
	}
	t.members[id] = &memberEntry{pos: pos, listening: listening, recv: recv}
	return nil
}

// Broadcast implements Transport. The fault injector is consulted once
// per in-range listening receiver; dropped deliveries count toward
// Dropped, duplicated ones enqueue extra copies, delayed ones are
// re-enqueued from a timer.
func (t *InMemory) Broadcast(from int, pos geom.Point, radius float64, frame []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("peasnet: transport closed")
	}
	type target struct {
		recv   Receiver
		dist   float64
		copies int
		delay  time.Duration
	}
	targets := make([]target, 0, 8)
	for id, m := range t.members {
		if id == from {
			continue
		}
		d := pos.Dist(m.pos)
		if d > radius || !m.listening() {
			continue
		}
		var fd FaultDecision
		if t.faults != nil {
			fd = t.faults.JudgeFrame(from, id)
		}
		if fd.Drop {
			t.dropped++
			continue
		}
		targets = append(targets, target{recv: m.recv, dist: d, copies: 1 + fd.Copies, delay: fd.Delay})
	}
	t.mu.Unlock()

	cp := append([]byte(nil), frame...)
	for _, tg := range targets {
		d := delivery{recv: tg.recv, frame: cp, dist: tg.dist}
		for c := 0; c < tg.copies; c++ {
			if tg.delay > 0 {
				time.AfterFunc(tg.delay, func() { t.enqueue(d) })
			} else {
				t.enqueue(d)
			}
		}
	}
	return nil
}

// enqueue hands a delivery to the dispatcher without ever blocking:
// overflow drops the frame, as a congested radio channel would, and a
// closed transport swallows it.
func (t *InMemory) enqueue(d delivery) {
	select {
	case t.queue <- d:
	case <-t.stop:
	default:
	}
}

// Unregister removes node id from the transport, freeing the id for a
// later Register — the crash half of a crash-restart.
func (t *InMemory) Unregister(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.members, id)
}

// Close implements Transport.
func (t *InMemory) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.stop)
	<-t.done
	return nil
}
