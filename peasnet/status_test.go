package peasnet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"peas/internal/core"
	"peas/internal/geom"
)

func TestClusterStatus(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Field:     geom.NewField(10, 10),
		N:         12,
		Protocol:  core.DefaultConfig(),
		TimeScale: 150,
		Seed:      21,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start()
	if !c.AwaitStable(300*time.Millisecond, 10*time.Second) {
		t.Fatal("cluster never stabilized")
	}

	st := c.Status()
	if len(st.Nodes) != 12 {
		t.Fatalf("nodes = %d", len(st.Nodes))
	}
	if st.Working == 0 || st.Working != st.ByState["working"] {
		t.Errorf("working = %d byState = %v", st.Working, st.ByState)
	}
	if st.Totals["wakeups"] == 0 {
		t.Error("no wakeups in totals")
	}

	// HTTP round trip.
	srv := httptest.NewServer(c.StatusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 12 || doc.ByState["working"] == 0 {
		t.Errorf("served doc: %+v", doc.ByState)
	}

	// Non-GET rejected.
	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status %d", post.StatusCode)
	}
}
