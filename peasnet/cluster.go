package peasnet

import (
	"fmt"
	"sync"
	"time"

	"peas/internal/checkpoint"
	"peas/internal/core"
	"peas/internal/geom"
	"peas/internal/stats"
)

// ClusterConfig describes a whole live network.
type ClusterConfig struct {
	// Field is the deployment area.
	Field geom.Field
	// N is the number of nodes; positions are drawn uniformly unless
	// Positions is set (len == N).
	N         int
	Positions []geom.Point
	// Protocol holds the PEAS parameters shared by all nodes.
	Protocol core.Config
	// TimeScale compresses protocol time (see Config.TimeScale).
	TimeScale float64
	// Seed drives deployment and per-node randomness.
	Seed int64
	// OnState is an optional observer for all nodes' mode changes.
	OnState func(id int, s core.State)
	// Battery, when non-nil, enables battery emulation on every node.
	Battery *BatteryConfig
}

// Cluster manages a set of live nodes over one transport.
//
// Nodes is exported for read access; while Supervise, Crash or Restart
// are in use, go through the Cluster methods (which lock) instead of
// iterating Nodes directly — Restart replaces slice elements.
type Cluster struct {
	Nodes     []*Node
	transport Transport
	ownsTrans bool

	mu    sync.Mutex
	ckpts map[int]*checkpoint.LiveNode // latest supervised per-node checkpoints
}

// nodes returns a consistent copy of the node slice for lock-free
// iteration.
func (c *Cluster) nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.Nodes...)
}

// NewCluster deploys cfg.N live nodes on the given transport. If
// transport is nil an in-memory transport is created and owned by the
// cluster (closed by Stop).
func NewCluster(cfg ClusterConfig, transport Transport) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("peasnet: cluster size %d must be positive", cfg.N)
	}
	owns := false
	if transport == nil {
		transport = NewInMemory()
		owns = true
	}
	rng := stats.NewRNG(cfg.Seed)
	positions := cfg.Positions
	if positions == nil {
		positions = geom.UniformDeploy(cfg.Field, cfg.N, rng)
	} else if len(positions) != cfg.N {
		return nil, fmt.Errorf("peasnet: %d positions for %d nodes", len(positions), cfg.N)
	}

	c := &Cluster{
		transport: transport,
		ownsTrans: owns,
		Nodes:     make([]*Node, 0, cfg.N),
		ckpts:     make(map[int]*checkpoint.LiveNode),
	}
	for i := 0; i < cfg.N; i++ {
		n, err := NewNode(Config{
			ID:        i,
			Pos:       positions[i],
			Protocol:  cfg.Protocol,
			TimeScale: cfg.TimeScale,
			Seed:      rng.Int63(),
			OnState:   cfg.OnState,
			Battery:   cfg.Battery,
		}, transport)
		if err != nil {
			c.Stop()
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
	}
	return c, nil
}

// Start boots every node.
func (c *Cluster) Start() {
	for _, n := range c.nodes() {
		n.Start()
	}
}

// Stop shuts every node down and closes an owned transport.
func (c *Cluster) Stop() {
	for _, n := range c.nodes() {
		n.Stop()
	}
	if c.ownsTrans {
		_ = c.transport.Close()
	}
}

// WorkingCount returns how many nodes are currently in Working mode.
func (c *Cluster) WorkingCount() int {
	count := 0
	for _, n := range c.nodes() {
		if n.State() == core.Working {
			count++
		}
	}
	return count
}

// WorkingPositions returns the positions of the working nodes.
func (c *Cluster) WorkingPositions() []geom.Point {
	var pts []geom.Point
	for _, n := range c.nodes() {
		if n.State() == core.Working {
			pts = append(pts, n.Pos())
		}
	}
	return pts
}

// StateCounts returns how many nodes are currently in each mode.
func (c *Cluster) StateCounts() map[core.State]int {
	counts := make(map[core.State]int, 4)
	for _, n := range c.nodes() {
		counts[n.State()]++
	}
	return counts
}

// TotalStats sums the protocol counters across all nodes. It snapshots
// each node in turn, so the totals are approximate while the network is
// running.
func (c *Cluster) TotalStats() core.Stats {
	var total core.Stats
	for _, n := range c.nodes() {
		s := n.Stats()
		total.Wakeups += s.Wakeups
		total.ProbesSent += s.ProbesSent
		total.RepliesSent += s.RepliesSent
		total.RepliesHeard += s.RepliesHeard
		total.RateUpdates += s.RateUpdates
		total.Turnoffs += s.Turnoffs
		total.TimeWorking += s.TimeWorking
		total.TimeSleeping += s.TimeSleeping
		total.TimeProbing += s.TimeProbing
	}
	return total
}

// AwaitStable polls until the working set stays unchanged for the given
// settle duration (real time), or until timeout. It reports whether the
// set settled. The deadline uses Go's monotonic clock (a wall-clock step
// cannot extend or cut the wait), and instead of spinning at a fixed
// short period the poll interval backs off exponentially while nothing
// changes — re-tightening on churn — with jitter so concurrent waiters
// do not poll in lockstep.
func (c *Cluster) AwaitStable(settle, timeout time.Duration) bool {
	start := time.Now() // monotonic reading; all arithmetic below stays monotonic
	deadline := start.Add(timeout)
	jitterRNG := stats.NewRNG(start.UnixNano())

	const minPoll = 2 * time.Millisecond
	maxPoll := settle / 4
	if maxPoll < minPoll {
		maxPoll = minPoll
	}
	if maxPoll > 100*time.Millisecond {
		maxPoll = 100 * time.Millisecond
	}

	last := -1
	stableSince := start
	interval := minPoll
	for time.Now().Before(deadline) {
		cur := c.WorkingCount()
		if cur != last {
			last = cur
			stableSince = time.Now()
			interval = minPoll
		} else if cur > 0 && time.Since(stableSince) >= settle {
			return true
		}
		sleep := interval + time.Duration(jitterRNG.Uniform(-0.25, 0.25)*float64(interval))
		if until := time.Until(deadline); sleep > until {
			sleep = until
		}
		if sleep > 0 {
			time.Sleep(sleep)
		}
		if interval *= 2; interval > maxPoll {
			interval = maxPoll
		}
	}
	return false
}
