package peasnet

import (
	"testing"
	"time"

	"peas/internal/core"
	"peas/internal/energy"
	"peas/internal/geom"
)

func TestVirtualBatteryDrain(t *testing.T) {
	b := newVirtualBattery(BatteryConfig{Joules: 1.2})
	// 50 protocol seconds in idle: 0.6 J.
	depleteAt, dead := b.setMode(0, energy.Idle)
	if dead {
		t.Fatal("fresh battery dead")
	}
	if depleteAt != 100 {
		t.Errorf("depletion projected at %v, want 100", depleteAt)
	}
	if got := b.remainingAt(50); got != 0.6 {
		t.Errorf("remaining = %v, want 0.6", got)
	}
	// Switch to sleep at t=50: projection extends enormously.
	depleteAt, dead = b.setMode(50, energy.Sleep)
	if dead || depleteAt < 10000 {
		t.Errorf("sleep depletion at %v", depleteAt)
	}
}

func TestVirtualBatteryDepletes(t *testing.T) {
	b := newVirtualBattery(BatteryConfig{Joules: 0.012})
	b.setMode(0, energy.Idle) // 1 second of life
	if got := b.remainingAt(2); got != 0 {
		t.Errorf("remaining = %v after depletion", got)
	}
	_, dead := b.setMode(3, energy.Sleep)
	if !dead {
		t.Error("depleted battery not reported dead")
	}
}

func TestVirtualBatteryCustomProfile(t *testing.T) {
	p := energy.Profile{IdleW: 1, SleepW: 0.5, ReceiveW: 1, TransmitW: 2}
	b := newVirtualBattery(BatteryConfig{Joules: 10, Profile: p})
	if at, _ := b.setMode(0, energy.Idle); at != 10 {
		t.Errorf("custom profile depletion at %v, want 10", at)
	}
}

func TestLiveNodeDiesOnDepletion(t *testing.T) {
	tr := NewInMemory()
	defer func() { _ = tr.Close() }()

	// One lone node with a tiny battery at high time compression: it
	// wakes, works, and depletes within a fraction of real time.
	// At scale 1000, idle life of 60 protocol seconds = 60 ms real.
	n, err := NewNode(Config{
		ID:        1,
		Pos:       geom.Point{X: 1, Y: 1},
		Protocol:  core.DefaultConfig(),
		TimeScale: 1000,
		Battery:   &BatteryConfig{Joules: 0.72}, // 60 s idle life
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.Start()

	deadline := time.Now().Add(10 * time.Second)
	sawWorking := false
	for time.Now().Before(deadline) {
		switch n.State() {
		case core.Working:
			sawWorking = true
		case core.Dead:
			if !sawWorking {
				t.Error("node died without ever working")
			}
			if rem, ok := n.BatteryRemaining(); !ok || rem > 0.01 {
				t.Errorf("remaining at death = %v (ok=%v)", rem, ok)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node never depleted; state=%v", n.State())
}

func TestBatteryRemainingDisabled(t *testing.T) {
	tr := NewInMemory()
	defer func() { _ = tr.Close() }()
	n, err := NewNode(Config{
		ID: 2, Pos: geom.Point{X: 1, Y: 1}, Protocol: core.DefaultConfig(),
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if _, ok := n.BatteryRemaining(); ok {
		t.Error("battery emulation reported without config")
	}
}

func TestClusterWithBatteriesExhausts(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Field:     geom.NewField(5, 5),
		N:         6,
		Protocol:  core.DefaultConfig(),
		TimeScale: 2000,
		Seed:      3,
		Battery:   &BatteryConfig{Joules: 1.2}, // 100 s idle life each
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start()

	// 6 nodes, one working at a time on a tiny field: the cluster
	// should rotate through several workers and eventually die out.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		counts := c.StateCounts()
		if counts[core.Dead] == 6 {
			stats := c.TotalStats()
			if stats.Wakeups == 0 {
				t.Error("no wakeups recorded")
			}
			t.Logf("all dead after %d wakeups, %.0f s total working time",
				stats.Wakeups, stats.TimeWorking)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("cluster did not exhaust; states=%v", c.StateCounts())
}

func TestTransportLossInjection(t *testing.T) {
	tr := NewInMemory()
	defer func() { _ = tr.Close() }()
	tr.SetLossRate(0.999) // nearly everything drops
	c, err := NewCluster(ClusterConfig{
		Field:     geom.NewField(5, 5),
		N:         10,
		Protocol:  core.DefaultConfig(),
		TimeScale: 500,
		Seed:      9,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	c.Start()
	time.Sleep(1 * time.Second)
	// With REPLYs dropped, probers hear nothing and everyone works.
	if w := c.WorkingCount(); w < 8 {
		t.Errorf("working = %d under total loss, want nearly all", w)
	}
	if tr.Dropped() == 0 {
		t.Error("no drops counted")
	}
	// Loss clamping.
	tr.SetLossRate(-1)
	tr.SetLossRate(2)
}
