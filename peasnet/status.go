package peasnet

import (
	"encoding/json"
	"net/http"

	"peas/internal/core"
)

// NodeStatus is one node's row in the cluster status document.
type NodeStatus struct {
	ID      int     `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	State   string  `json:"state"`
	Rate    float64 `json:"-"`
	Wakeups uint64  `json:"wakeups"`
}

// ClusterStatus is the JSON document served by StatusHandler.
type ClusterStatus struct {
	Nodes   []NodeStatus      `json:"nodes"`
	ByState map[string]int    `json:"byState"`
	Working int               `json:"working"`
	Totals  map[string]uint64 `json:"totals"`
}

// Status snapshots the cluster for monitoring.
func (c *Cluster) Status() ClusterStatus {
	st := ClusterStatus{
		ByState: make(map[string]int, 4),
		Totals:  make(map[string]uint64, 4),
	}
	for _, n := range c.Nodes {
		state := n.State()
		stats := n.Stats()
		st.Nodes = append(st.Nodes, NodeStatus{
			ID:      n.ID(),
			X:       n.Pos().X,
			Y:       n.Pos().Y,
			State:   state.String(),
			Wakeups: stats.Wakeups,
		})
		st.ByState[state.String()]++
		if state == core.Working {
			st.Working++
		}
		st.Totals["wakeups"] += stats.Wakeups
		st.Totals["probesSent"] += stats.ProbesSent
		st.Totals["repliesSent"] += stats.RepliesSent
		st.Totals["turnoffs"] += stats.Turnoffs
	}
	return st
}

// StatusHandler serves the cluster status as JSON — plug it into any
// mux (cmd/peas-live exposes it under -status).
func (c *Cluster) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(c.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
