package peasnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"peas/internal/checkpoint"
	"peas/internal/core"
	"peas/internal/geom"
	"peas/internal/stats"
)

// Config parameterizes a live node.
type Config struct {
	// ID is the node identifier, unique within the transport.
	ID int
	// Pos is the node's (fixed) position in meters.
	Pos geom.Point
	// Protocol holds the PEAS parameters.
	Protocol core.Config
	// TimeScale compresses time: one real second advances the protocol
	// clock by TimeScale seconds. 0 means 1 (real time). Tests and
	// demos run at 50-200x; beyond that the 100 ms probe window shrinks
	// below OS timer resolution and protocol timing loses fidelity
	// (e.g. late PROBE copies can be dropped when the window closes
	// early).
	TimeScale float64
	// Seed seeds the node's private random stream. Zero derives one
	// from the ID.
	Seed int64
	// OnState, when non-nil, is called on every protocol mode change
	// (from the node's event loop; keep it fast).
	OnState func(id int, s core.State)
	// Battery, when non-nil, enables battery emulation: the node drains
	// a virtual charge by mode and dies on depletion.
	Battery *BatteryConfig
}

// Node is a live PEAS node: one goroutine running the protocol state
// machine over a Transport.
type Node struct {
	cfg       Config
	transport Transport
	proto     *core.Protocol
	rng       *stats.RNG
	scale     float64
	started   time.Time
	// base offsets the protocol clock: a restored node resumes at its
	// checkpoint's recorded time, so the downtime never existed on the
	// node's own clock. Zero for fresh nodes.
	base float64
	// resume, when non-nil, makes Start restore this checkpoint instead
	// of booting the protocol fresh. Set by RestoreNode.
	resume *checkpoint.LiveNode

	listening atomic.Bool
	state     atomic.Int32

	battery        *virtualBattery
	onBatteryState func(s core.State)
	depletionTimer *time.Timer

	mu      sync.Mutex
	jobs    []func()
	timers  map[*time.Timer]struct{}
	wake    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	running bool
	stopped bool
}

var _ core.Platform = (*Node)(nil)

// NewNode creates a node and registers it on the transport. Call Start
// to boot the protocol and Stop to shut the node down.
func NewNode(cfg Config, transport Transport) (*Node, error) {
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID)*2654435761 + 1
	}
	n := &Node{
		cfg:       cfg,
		transport: transport,
		rng:       stats.NewRNG(cfg.Seed),
		scale:     cfg.TimeScale,
		timers:    make(map[*time.Timer]struct{}),
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	n.proto = core.New(core.NodeID(cfg.ID), cfg.Protocol, n)
	if cfg.Battery != nil {
		n.battery = newVirtualBattery(*cfg.Battery)
		n.armBatteryWatch()
	}
	err := transport.Register(cfg.ID, cfg.Pos, n.listening.Load, func(frame []byte, dist float64) {
		payload, err := Unmarshal(frame)
		if err != nil {
			return // corrupt frame: drop, as a radio would
		}
		n.post(func() { n.proto.HandleMessage(payload, dist) })
	})
	if err != nil {
		return nil, fmt.Errorf("register node %d: %w", cfg.ID, err)
	}
	return n, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.cfg.ID }

// Pos returns the node position.
func (n *Node) Pos() geom.Point { return n.cfg.Pos }

// State returns the node's current protocol mode. It is safe to call
// from any goroutine.
func (n *Node) State() core.State { return core.State(n.state.Load()) }

// Stats returns a snapshot of the protocol counters. The snapshot is
// taken on the node's event loop, so it is internally consistent.
func (n *Node) Stats() core.Stats {
	ch := make(chan core.Stats, 1)
	n.post(func() { ch <- n.proto.Stats() })
	select {
	case s := <-ch:
		return s
	case <-n.done:
		return core.Stats{}
	}
}

// Start boots the node: the event loop goroutine starts and the protocol
// enters Sleeping mode. Starting twice or after Stop is a no-op.
func (n *Node) Start() {
	n.mu.Lock()
	if n.running || n.stopped {
		n.mu.Unlock()
		return
	}
	n.running = true
	n.started = time.Now()
	n.mu.Unlock()
	go n.loop()
	if st := n.resume; st != nil {
		n.post(func() {
			n.proto.RestoreState(st.Proto)
			// Re-apply the restored mode's side effects (radio power,
			// battery mode, observers) that RestoreState bypasses, then
			// re-arm the captured pending timers; deadlines are on the
			// node's own clock, which resumed right at the checkpoint.
			n.SetState(st.Proto.State)
			n.proto.ResumeTimers(st.Proto.Timers)
		})
		return
	}
	n.post(func() { n.proto.Start() })
}

// Checkpoint captures the node's live state — protocol clock, RNG
// stream, remaining battery, protocol state with pending timers — on its
// event loop, so the capture is internally consistent while the rest of
// the cluster keeps running. It fails on a node that is not running.
func (n *Node) Checkpoint() (*checkpoint.LiveNode, error) {
	n.mu.Lock()
	ok := n.running && !n.stopped
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("peasnet: node %d is not running", n.cfg.ID)
	}
	ch := make(chan *checkpoint.LiveNode, 1)
	n.post(func() {
		now := n.Now()
		st := &checkpoint.LiveNode{
			ID:            n.cfg.ID,
			ProtoTime:     now,
			RNG:           n.rng.State(),
			BatteryJoules: -1,
			Proto:         n.proto.Snapshot(),
		}
		if n.battery != nil {
			st.BatteryJoules = n.battery.remainingAt(now)
		}
		ch <- st
	})
	select {
	case st := <-ch:
		return st, nil
	case <-n.done:
		return nil, fmt.Errorf("peasnet: node %d stopped during checkpoint", n.cfg.ID)
	}
}

// RestoreNode creates a node that will, on Start, resume the captured
// checkpoint instead of booting fresh: the protocol clock continues from
// the snapshot's recorded time, the RNG stream picks up where it left
// off, the battery holds the recorded charge, and the pending timers
// re-arm. The checkpoint's ID overrides cfg.ID; the id must be free on
// the transport (Unregister the crashed node first).
func RestoreNode(cfg Config, transport Transport, st *checkpoint.LiveNode) (*Node, error) {
	if st == nil {
		return nil, fmt.Errorf("peasnet: nil checkpoint")
	}
	if st.Proto.State == core.Dead {
		return nil, fmt.Errorf("peasnet: node %d checkpoint is of a dead node", st.ID)
	}
	cfg.ID = st.ID
	if cfg.Battery != nil && st.BatteryJoules >= 0 {
		b := *cfg.Battery
		b.Joules = st.BatteryJoules
		cfg.Battery = &b
	}
	n, err := NewNode(cfg, transport)
	if err != nil {
		return nil, err
	}
	n.base = st.ProtoTime
	if n.battery != nil {
		n.battery.rebase(st.ProtoTime)
	}
	n.rng.Restore(st.RNG)
	n.resume = st
	return n, nil
}

// Stop shuts the node down: pending timers are cancelled and the event
// loop goroutine exits. Stop is idempotent and waits for the loop.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		<-n.done
		return
	}
	n.stopped = true
	for t := range n.timers {
		t.Stop()
	}
	n.timers = nil
	if n.depletionTimer != nil {
		n.depletionTimer.Stop()
		n.depletionTimer = nil
	}
	running := n.running
	n.mu.Unlock()
	close(n.stop)
	if !running {
		// The event loop never started; nothing will close done.
		close(n.done)
		return
	}
	<-n.done
}

// loop is the node's single logical thread: every protocol interaction
// (message, timer, start) runs here.
func (n *Node) loop() {
	defer close(n.done)
	for {
		select {
		case <-n.stop:
			return
		case <-n.wake:
			for {
				n.mu.Lock()
				if len(n.jobs) == 0 {
					n.mu.Unlock()
					break
				}
				job := n.jobs[0]
				n.jobs = n.jobs[1:]
				n.mu.Unlock()
				job()
			}
		}
	}
}

// post enqueues fn onto the node's event loop. Posts after Stop are
// dropped.
func (n *Node) post(fn func()) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.jobs = append(n.jobs, fn)
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// --- core.Platform implementation (called from the event loop) ---

// Now returns protocol time: scaled seconds since Start, offset by the
// restored checkpoint time for resumed nodes.
func (n *Node) Now() float64 {
	return n.base + time.Since(n.started).Seconds()*n.scale
}

// After schedules fn on the event loop after d protocol seconds. Pending
// timers are cancelled on Stop.
func (n *Node) After(d float64, fn func()) {
	delay := time.Duration(d / n.scale * float64(time.Second))
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	var timer *time.Timer
	timer = time.AfterFunc(delay, func() {
		n.mu.Lock()
		delete(n.timers, timer)
		n.mu.Unlock()
		n.post(fn)
	})
	n.timers[timer] = struct{}{}
	n.mu.Unlock()
}

// Broadcast transmits a protocol frame over the transport.
func (n *Node) Broadcast(size int, radius float64, payload any) {
	frame, err := Marshal(payload)
	if err != nil {
		return
	}
	_ = size // the wire format is fixed-size
	_ = n.transport.Broadcast(n.cfg.ID, n.cfg.Pos, radius, frame)
}

// SetState tracks the protocol mode and radio power state.
func (n *Node) SetState(s core.State) {
	n.state.Store(int32(s))
	n.listening.Store(s == core.Probing || s == core.Working)
	if n.onBatteryState != nil {
		n.onBatteryState(s)
	}
	if n.cfg.OnState != nil {
		n.cfg.OnState(n.cfg.ID, s)
	}
}

// Rand returns the node's private random stream.
func (n *Node) Rand() *stats.RNG { return n.rng }
