package peasnet

import (
	"sync"
	"time"

	"peas/internal/chaos"
	"peas/internal/stats"
)

// FaultDecision is the fate an injector assigns to one (frame, receiver)
// delivery on a live transport. The zero value delivers normally.
type FaultDecision struct {
	// Drop discards the delivery.
	Drop bool
	// Copies is how many extra duplicate deliveries to make.
	Copies int
	// Delay is extra real-time latency before the delivery (and any
	// duplicates) reaches the receiver.
	Delay time.Duration
}

// FaultInjector is the live runtime's shared fault hook, consulted once
// per (frame, receiver) pair on the sender's broadcast path — the
// counterpart of radio.FaultInjector in the simulator. Implementations
// must be safe for concurrent use: live nodes broadcast from independent
// goroutines.
type FaultInjector interface {
	JudgeFrame(from, to int) FaultDecision
}

// FaultTransport is implemented by transports that accept an injector.
// Both InMemory and UDPGroup do.
type FaultTransport interface {
	SetFaultInjector(f FaultInjector)
}

// Unregisterer is an optional Transport extension: transports that
// support node churn implement it so a crashed node's endpoint can be
// torn down and its id re-registered on restart.
type Unregisterer interface {
	Unregister(id int)
}

// ChaosInjector adapts the substrate-independent chaos.Channel to live
// transports: it serializes access to the single-threaded channel and
// scales the channel's protocol-time delays down to real time by the
// cluster's time-compression factor.
type ChaosInjector struct {
	mu    sync.Mutex
	ch    *chaos.Channel
	scale float64
}

var _ FaultInjector = (*ChaosInjector)(nil)

// NewChaosInjector wraps ch. timeScale is the cluster's protocol-seconds
// per wall-clock second (Config.TimeScale; values <= 0 mean 1).
func NewChaosInjector(ch *chaos.Channel, timeScale float64) *ChaosInjector {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &ChaosInjector{ch: ch, scale: timeScale}
}

// JudgeFrame implements FaultInjector.
func (ci *ChaosInjector) JudgeFrame(from, to int) FaultDecision {
	ci.mu.Lock()
	d := ci.ch.JudgeFrame(from, to)
	ci.mu.Unlock()
	return FaultDecision{
		Drop:   d.Drop,
		Copies: d.Copies,
		Delay:  time.Duration(d.Delay / ci.scale * float64(time.Second)),
	}
}

// With runs fn with exclusive access to the underlying channel — the
// safe way to reconfigure impairments or read counters while the
// cluster runs.
func (ci *ChaosInjector) With(fn func(ch *chaos.Channel)) {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	fn(ci.ch)
}

// lossInjector is the i.i.d. loss fault SetLossRate adapts to.
type lossInjector struct {
	mu  sync.Mutex
	rng *stats.RNG
	p   float64
}

func newLossInjector(seed int64) *lossInjector {
	return &lossInjector{rng: stats.NewRNG(seed)}
}

// setRate keeps SetLossRate's historical clamping: negative rates
// disable, rates at or above 1 saturate at 0.999 so the network stays
// technically connected.
func (l *lossInjector) setRate(p float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p < 0 {
		p = 0
	}
	if p >= 1 {
		p = 0.999
	}
	l.p = p
}

func (l *lossInjector) JudgeFrame(from, to int) FaultDecision {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.p > 0 && l.rng.Float64() < l.p {
		return FaultDecision{Drop: true}
	}
	return FaultDecision{}
}
