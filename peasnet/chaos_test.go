package peasnet

import (
	"sync/atomic"
	"testing"
	"time"

	"peas/internal/chaos"
	"peas/internal/core"
	"peas/internal/geom"
	"peas/internal/metrics"
)

// TestInMemoryChaosInjectorCounts drives the transport directly: every
// judged delivery must be accounted for as delivered, dropped (counted by
// both the channel counter and Dropped()), or duplicated.
func TestInMemoryChaosInjectorCounts(t *testing.T) {
	tr := NewInMemory()
	defer func() { _ = tr.Close() }()

	counters := metrics.NewCounters()
	ch := chaos.NewChannel(41, counters)
	ch.SetLoss(0.3)
	ch.SetDuplication(0.2)
	tr.SetFaultInjector(NewChaosInjector(ch, 1))

	var received atomic.Uint64
	listening := func() bool { return true }
	recv := func([]byte, float64) { received.Add(1) }
	origin := geom.Point{}
	for id := 1; id <= 2; id++ {
		if err := tr.Register(id, origin, listening, recv); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Register(0, origin, listening, func([]byte, float64) {
		t.Error("sender received its own frame")
	}); err != nil {
		t.Fatal(err)
	}

	// Batched with drain barriers: the dispatcher queue holds 1024 frames
	// and overflows (like a congested radio) under an unthrottled loop.
	const frames = 2000
	const batch = 200
	var want uint64
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < frames; i += batch {
		for j := 0; j < batch; j++ {
			if err := tr.Broadcast(0, origin, 10, []byte{1}); err != nil {
				t.Fatal(err)
			}
		}
		want = uint64(2*(i+batch)) - counters.Get(chaos.CtrDropLoss) + counters.Get(chaos.CtrDup)
		for received.Load() != want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	drops := counters.Get(chaos.CtrDropLoss)
	dups := counters.Get(chaos.CtrDup)
	if got := received.Load(); got != want {
		t.Errorf("received %d deliveries, want %d (judged %d, drops %d, dups %d)",
			got, want, 2*frames, drops, dups)
	}
	if tr.Dropped() != drops {
		t.Errorf("transport Dropped() = %d, channel counted %d", tr.Dropped(), drops)
	}
	if drops == 0 || dups == 0 {
		t.Errorf("impairments never fired: drops=%d dups=%d", drops, dups)
	}
}

// TestSetLossRateStillWorks covers the legacy knob, now a thin adapter
// over the shared injector hook.
func TestSetLossRateStillWorks(t *testing.T) {
	tr := NewInMemory()
	defer func() { _ = tr.Close() }()
	tr.SetLossRate(1) // clamps to 0.999

	var received atomic.Uint64
	origin := geom.Point{}
	listening := func() bool { return true }
	if err := tr.Register(1, origin, listening, func([]byte, float64) { received.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Broadcast(0, origin, 10, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if d := tr.Dropped(); d < 450 {
		t.Errorf("Dropped() = %d of 500 at 99.9%% loss", d)
	}
	tr.SetLossRate(0)
	before := tr.Dropped()
	for i := 0; i < 100; i++ {
		if err := tr.Broadcast(0, origin, 10, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Dropped() != before {
		t.Error("drops continued after SetLossRate(0)")
	}
}

// TestClusterCrashRestartResumesFromCheckpoint is the live half of the
// crash-restart fault class: a supervised working node is crashed, sits
// out a downtime, and must come back running its pre-crash protocol state
// rather than rebooting from scratch.
func TestClusterCrashRestartResumesFromCheckpoint(t *testing.T) {
	cfg := ClusterConfig{
		Field:     geom.NewField(6, 6),
		N:         8,
		Protocol:  clusterProtocol(),
		TimeScale: 200,
		Seed:      13,
	}
	c, err := NewCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	stopSup := c.Supervise(100 * time.Millisecond)
	defer stopSup()
	c.Start()
	if !c.AwaitStable(300*time.Millisecond, 10*time.Second) {
		t.Fatal("working set never stabilized")
	}

	victim := -1
	for _, n := range c.Nodes {
		if n.State() == core.Working {
			victim = n.ID()
			break
		}
	}
	if victim < 0 {
		t.Fatal("no working node to crash")
	}
	pre := c.Nodes[victim].Stats()
	if c.LastCheckpoint(victim) == nil {
		t.Fatal("supervisor took no checkpoint before the crash")
	}

	if err := c.CrashRestart(victim, 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	restarted := c.Nodes[victim]
	// A fresh boot would start Sleeping with zeroed counters; a checkpoint
	// resume carries the working state and cumulative stats across. The
	// restored state lands on the node's event loop, so poll briefly.
	resumeBy := time.Now().Add(5 * time.Second)
	for restarted.State() != core.Working && time.Now().Before(resumeBy) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := restarted.State(); st != core.Working {
		t.Errorf("restarted node state = %v, want Working (fresh boot instead of resume?)", st)
	}
	post := restarted.Stats()
	if post.Wakeups < pre.Wakeups || post.ProbesSent < pre.ProbesSent {
		t.Errorf("stats went backwards across restart: pre=%+v post=%+v", pre, post)
	}

	// The cluster keeps functioning around the restarted node.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.WorkingCount() > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Error("no working nodes after crash-restart")
}
