// Animal tracking: the paper's motivating workload. An animal-tracking
// application tolerates monitoring interruptions of up to 5 minutes, so it
// sets the desired aggregate probing rate λd to one wakeup per 300 s
// (paper §2.2.1), requires 3-coverage for triangulating animal positions,
// and uses a 4-meter probing range derived from its sensing redundancy
// needs (§2.1: "working nodes should be spaced at most ... for robust
// sensing").
//
//	go run ./examples/animaltracking
package main

import (
	"fmt"
	"os"

	"peas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "animaltracking:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := peas.DefaultRunConfig(480, 7)

	// Application-driven protocol parameters (§2.1-2.2).
	cfg.Network.Protocol.ProbingRange = 4        // sensing redundancy spacing
	cfg.Network.Protocol.DesiredRate = 1.0 / 300 // tolerate 5-minute gaps
	cfg.FailuresPer5000s = 16                    // a harsh wildlife preserve

	res, err := peas.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Println("Animal tracking — 480 nodes, Rp = 4 m, λd = 1/300 s⁻¹")
	fmt.Printf("  mean working nodes:       %.1f\n", res.MeanWorking)
	fmt.Printf("  3-coverage lifetime:      %.0f s (%.1f h of triangulation capability)\n",
		res.CoverageLifetime[2], res.CoverageLifetime[2]/3600)
	fmt.Printf("  data delivery lifetime:   %.0f s\n", res.DeliveryLifetime)
	fmt.Printf("  wakeups:                  %d (sparser probing than the default:\n", res.Wakeups)
	fmt.Printf("                            λd %.4f/s instead of 0.02/s)\n",
		cfg.Network.Protocol.DesiredRate)
	fmt.Printf("  energy overhead:          %.3f%%\n", 100*res.OverheadRatio)
	fmt.Printf("  failures survived:        %d (%.1f%% of deployment)\n",
		res.FailuresInjected, 100*res.FailedFraction)

	// Compare against the default λd to show the probing-rate tradeoff:
	// a lower λd spends less energy probing but leaves longer gaps after
	// worker deaths.
	base := peas.DefaultRunConfig(480, 7)
	base.Network.Protocol.ProbingRange = 4
	base.FailuresPer5000s = 16
	fast, err := peas.Run(base)
	if err != nil {
		return err
	}
	fmt.Printf("\nλd tradeoff: wakeups %d (λd=1/300) vs %d (λd=0.02); "+
		"3-coverage lifetime %.0f vs %.0f s\n",
		res.Wakeups, fast.Wakeups, res.CoverageLifetime[2], fast.CoverageLifetime[2])
	return nil
}
