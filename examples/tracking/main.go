// Tracking: watch PEAS serve its actual application — detecting mobile
// targets. Four animals roam the field on random-waypoint trajectories
// while PEAS maintains the working set under node failures; the example
// reports how much of the animals' time was observed and how long the
// blind intervals lasted, for two choices of the λd tolerance knob
// (paper §2.2.1).
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"os"

	"peas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracking:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Tracking 4 animals over 240 nodes for 9000 s (5 m detection, 16 failures/5000 s)")
	fmt.Printf("%12s %14s %10s %12s %12s\n",
		"λd (1/s)", "detected-frac", "exposures", "mean-gap(s)", "max-gap(s)")

	for _, lambdaD := range []float64{0.02, 1.0 / 300} {
		rep, err := track(lambdaD)
		if err != nil {
			return err
		}
		fmt.Printf("%12.4f %14.3f %10d %12.1f %12.1f\n",
			lambdaD, rep.DetectedFraction, rep.Exposures, rep.MeanExposure, rep.MaxExposure)
	}
	fmt.Println("\nThe application picks λd from its interruption tolerance (§2.2.1):")
	fmt.Println("λd = 1/300 accepts 5-minute monitoring gaps in exchange for 6x less probing.")
	return nil
}

func track(lambdaD float64) (peas.SensingReport, error) {
	cfg := peas.DefaultNetworkConfig(240, 77)
	cfg.Protocol.DesiredRate = lambdaD
	net, err := peas.NewNetwork(cfg)
	if err != nil {
		return peas.SensingReport{}, err
	}
	tracker := peas.NewSensingTracker(cfg.Field, 5, 4, 1.5, 99)
	net.Engine.NewTicker(5, func() {
		tracker.Observe(net.Engine.Now(), net.WorkingPositions())
	})
	net.Start()
	net.Run(9000)
	return tracker.Report(), nil
}
