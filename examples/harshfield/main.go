// Harsh field: PEAS's design target — an adverse environment where nodes
// fail unexpectedly and often (paper §1: "unexpected node failures are
// likely to become norms rather than exceptions"). This example sweeps
// the failure rate on one deployment and shows that coverage lifetime
// degrades only modestly while the protocol overhead stays flat — the
// robustness result of §5.3.
//
//	go run ./examples/harshfield
package main

import (
	"fmt"
	"os"

	"peas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "harshfield:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Harsh field — 480 nodes under increasing failure rates")
	fmt.Printf("%12s %12s %14s %12s %10s\n",
		"failures/5ks", "failed-%", "4-cov life(s)", "wakeups", "overhead")

	var baseLifetime float64
	for _, rate := range []float64{0, 10.66, 26.66, 48} {
		cfg := peas.DefaultRunConfig(480, 99)
		cfg.FailuresPer5000s = rate
		res, err := peas.Run(cfg)
		if err != nil {
			return err
		}
		if rate == 0 {
			baseLifetime = res.CoverageLifetime[3]
		}
		fmt.Printf("%12.2f %11.1f%% %14.0f %12d %9.3f%%\n",
			rate, 100*res.FailedFraction, res.CoverageLifetime[3],
			res.Wakeups, 100*res.OverheadRatio)
	}

	fmt.Printf("\nPEAS absorbs ~40%% node failures with a modest lifetime drop\n")
	fmt.Printf("(failure-free 4-coverage lifetime: %.0f s); the paper reports a\n", baseLifetime)
	fmt.Println("12-20% drop at 38% failures — robustness without extra overhead.")
	return nil
}
