// Livenet: run PEAS outside the simulator. Every node is a goroutine
// running the real protocol state machine over an in-memory broadcast
// transport with time compressed 100x. The example boots a network,
// watches the working set stabilize, kills the working nodes, and shows
// sleepers waking up to replace them — the paper's core robustness story,
// live.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"os"
	"time"

	"peas"
	"peas/peasnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livenet:", err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := peasnet.NewCluster(peasnet.ClusterConfig{
		Field:     peas.Field{Width: 15, Height: 15},
		N:         30,
		Protocol:  peas.DefaultProtocolConfig(),
		TimeScale: 100, // 1 real second = 100 protocol seconds
		Seed:      2024,
	}, nil)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	fmt.Println("booting 30 live nodes on a 15x15 m field (time x100)...")
	cluster.Start()

	if !cluster.AwaitStable(500*time.Millisecond, 15*time.Second) {
		return fmt.Errorf("working set did not stabilize")
	}
	working := cluster.WorkingCount()
	fmt.Printf("stabilized: %d working, %d sleeping\n", working, 30-working)
	for _, n := range cluster.Nodes {
		if n.State() == peas.Working {
			fmt.Printf("  worker %2d at %s\n", n.ID(), n.Pos())
		}
	}

	// Fail every working node at once — the worst case of §5.3.
	killed := 0
	for _, n := range cluster.Nodes {
		if n.State() == peas.Working {
			n.Stop()
			killed++
		}
	}
	fmt.Printf("\nkilled all %d workers; waiting for sleepers to take over...\n", killed)

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if n := cluster.WorkingCount(); n >= 1 {
			fmt.Printf("recovered: %d replacement worker(s) active\n", n)
			if cluster.AwaitStable(500*time.Millisecond, 15*time.Second) {
				fmt.Printf("re-stabilized at %d workers\n", cluster.WorkingCount())
			}
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("no replacement emerged")
}
