// Quickstart: deploy a PEAS sensor network with the paper's default
// parameters, run it to exhaustion, and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"peas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 320 nodes on the paper's 50x50 m field, with the paper's base
	// failure rate and the source->sink data workload.
	cfg := peas.DefaultRunConfig(320, 42)

	res, err := peas.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Println("PEAS quickstart — 320 nodes, 50x50 m, Rp = 3 m")
	fmt.Printf("  mean working nodes:     %.1f\n", res.MeanWorking)
	fmt.Printf("  4-coverage lifetime:    %.0f s\n", res.CoverageLifetime[3])
	fmt.Printf("  data delivery lifetime: %.0f s (%d/%d reports)\n",
		res.DeliveryLifetime, res.ReportsDelivered, res.ReportsGenerated)
	fmt.Printf("  total wakeups:          %d\n", res.Wakeups)
	fmt.Printf("  energy overhead:        %.2f J (%.3f%% of %.0f J consumed)\n",
		res.ProtocolEnergy, 100*res.OverheadRatio, res.TotalEnergy)

	// The headline claim: doubling the deployment roughly doubles the
	// functioning time. Run a half-size network for comparison.
	small, err := peas.Run(peas.DefaultRunConfig(160, 42))
	if err != nil {
		return err
	}
	fmt.Printf("\nlinear-lifetime check: 160 nodes -> %.0f s, 320 nodes -> %.0f s (x%.2f)\n",
		small.CoverageLifetime[3], res.CoverageLifetime[3],
		res.CoverageLifetime[3]/small.CoverageLifetime[3])
	return nil
}
