package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want Summary
	}{
		{
			name: "empty",
			in:   nil,
			want: Summary{},
		},
		{
			name: "single",
			in:   []float64{5},
			want: Summary{N: 1, Mean: 5, Min: 5, Max: 5, Median: 5},
		},
		{
			name: "odd",
			in:   []float64{3, 1, 2},
			want: Summary{N: 3, Mean: 2, StdDev: 1, Min: 1, Max: 3, Median: 2},
		},
		{
			name: "even",
			in:   []float64{4, 1, 3, 2},
			want: Summary{N: 4, Mean: 2.5, StdDev: math.Sqrt(5.0 / 3), Min: 1, Max: 4, Median: 2.5},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Summarize(tc.in)
			if got.N != tc.want.N || !close(got.Mean, tc.want.Mean) ||
				!close(got.StdDev, tc.want.StdDev) || !close(got.Median, tc.want.Median) {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
			if tc.want.N > 0 && (got.Min != tc.want.Min || got.Max != tc.want.Max) {
				t.Errorf("min/max: got %v/%v want %v/%v", got.Min, got.Max, tc.want.Min, tc.want.Max)
			}
		})
	}
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestMeanBounds(t *testing.T) {
	err := quick.Check(func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return Mean(xs) == 0
		}
		m := Mean(xs)
		s := Summarize(xs)
		return m >= s.Min-1e-9 && m <= s.Max+1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{160, 320, 480, 640, 800}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = 37.5*xi + 600 // the paper's Fig. 10 trend
	}
	slope, intercept := LinearFit(x, y)
	if !close(slope, 37.5) || !close(intercept, 600) {
		t.Errorf("fit = (%v, %v), want (37.5, 600)", slope, intercept)
	}
	if r := PearsonR(x, y); !close(r, 1) {
		t.Errorf("r = %v, want 1", r)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, intercept := LinearFit([]float64{2, 2, 2}, []float64{1, 5, 9})
	if slope != 0 || !close(intercept, 5) {
		t.Errorf("constant x: got (%v, %v), want (0, 5)", slope, intercept)
	}
	if s, i := LinearFit(nil, nil); s != 0 || i != 0 {
		t.Errorf("empty: got (%v, %v)", s, i)
	}
	if s, i := LinearFit([]float64{1}, []float64{2, 3}); s != 0 || i != 0 {
		t.Errorf("mismatched lengths: got (%v, %v)", s, i)
	}
}

func TestPearsonRSign(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if r := PearsonR(x, []float64{8, 6, 4, 2}); !close(r, -1) {
		t.Errorf("anti-correlated r = %v, want -1", r)
	}
	if r := PearsonR(x, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant y r = %v, want 0", r)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := NewRNG(17)
	small := make([]float64, 20)
	large := make([]float64, 2000)
	for i := range small {
		small[i] = rng.Normal()
	}
	for i := range large {
		large[i] = rng.Normal()
	}
	if CI95(small) <= CI95(large) {
		t.Errorf("CI95: small-sample %v should exceed large-sample %v",
			CI95(small), CI95(large))
	}
	if CI95([]float64{1}) != 0 {
		t.Error("CI95 of a single point must be 0")
	}
}
