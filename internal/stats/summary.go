package stats

import (
	"math"
	"sort"
)

// Summary holds moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean of xs. It returns 0 when the sample has fewer than
// two points.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := Summarize(xs)
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It is used to verify the paper's "lifetime grows linearly with deployed
// nodes" claims. It returns (0, mean(y)) when x has no variance.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// PearsonR returns the Pearson correlation coefficient of x and y. A value
// near 1 confirms the linear-scaling claims of Figs. 9-11.
func PearsonR(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
