package stats

import (
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Components() != 5 || uf.Len() != 5 {
		t.Fatalf("fresh forest: components=%d len=%d", uf.Components(), uf.Len())
	}
	if !uf.Union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeated union should not merge")
	}
	if !uf.Connected(0, 1) {
		t.Error("0 and 1 should be connected")
	}
	if uf.Connected(0, 2) {
		t.Error("0 and 2 should not be connected")
	}
	if uf.Components() != 4 {
		t.Errorf("components = %d, want 4", uf.Components())
	}
}

func TestUnionFindTransitivity(t *testing.T) {
	uf := NewUnionFind(10)
	uf.Union(0, 1)
	uf.Union(1, 2)
	uf.Union(2, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !uf.Connected(i, j) {
				t.Errorf("%d and %d should be connected", i, j)
			}
		}
	}
}

// TestUnionFindMatchesNaive cross-checks against a brute-force reference
// over random union sequences.
func TestUnionFindMatchesNaive(t *testing.T) {
	err := quick.Check(func(pairs []struct{ A, B uint8 }) bool {
		const n = 32
		uf := NewUnionFind(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i, l := range labels {
				if l == from {
					labels[i] = to
				}
			}
		}
		for _, p := range pairs {
			a, b := int(p.A)%n, int(p.B)%n
			uf.Union(a, b)
			if labels[a] != labels[b] {
				relabel(labels[a], labels[b])
			}
		}
		distinct := map[int]bool{}
		for i := 0; i < n; i++ {
			distinct[labels[i]] = true
			for j := 0; j < n; j++ {
				if uf.Connected(i, j) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		return uf.Components() == len(distinct)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
