// Package stats provides the random-number distributions and statistical
// helpers used throughout the PEAS simulator: seeded RNG streams,
// exponential/uniform/Poisson sampling, summary statistics and confidence
// intervals, and a union-find structure used for connectivity analysis.
//
// The simulator must be exactly reproducible from (config, seed), so this
// package implements its own explicitly seeded generator rather than
// relying on a global source. The generator state is two uint64 words and
// is fully serializable (see State/RNGState), which is what makes the
// checkpoint/restore subsystem possible: math/rand.Rand state is opaque,
// so a resumable simulation needs a stream whose exact position can be
// captured and re-established.
package stats

import "math"

// RNG is a deterministic random stream backed by a PCG-XSH-RR 64/32
// generator (O'Neill 2014): 64 bits of LCG state plus a 64-bit odd stream
// increment. It adds the distributions the PEAS model needs.
//
// RNG is not safe for concurrent use; the discrete-event simulator is
// single-threaded by design, and each concurrent component must own its
// own stream (see Split).
type RNG struct {
	state uint64
	inc   uint64 // always odd
}

// RNGState is the serializable position of a stream: the two generator
// words. Restoring it reproduces the stream's future output exactly.
type RNGState struct {
	State uint64
	Inc   uint64
}

const (
	pcgMultiplier = 6364136223846793005
	splitmixGamma = 0x9e3779b97f4a7c15
)

// splitmix64 is the seed-expansion hash (Steele et al. 2014): it maps any
// 64-bit seed, including small sequential ones, to a well-mixed word.
func splitmix64(x uint64) uint64 {
	x += splitmixGamma
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewRNG returns a stream seeded with seed. The seed is expanded through
// splitmix64 into the PCG state and stream-selector words.
func NewRNG(seed int64) *RNG {
	s := splitmix64(uint64(seed))
	i := splitmix64(s)
	return newPCG(s, i)
}

// NewRNGFromState returns a stream positioned exactly at st, as previously
// captured with State.
func NewRNGFromState(st RNGState) *RNG {
	r := &RNG{}
	r.Restore(st)
	return r
}

// newPCG initializes the generator following the PCG reference seeding:
// the stream selector is forced odd and the initial state is advanced once
// past the seed so that nearby seeds decorrelate immediately.
func newPCG(seed, stream uint64) *RNG {
	r := &RNG{state: 0, inc: stream<<1 | 1}
	r.next32()
	r.state += seed
	r.next32()
	return r
}

// State returns the stream's exact position. NewRNGFromState or Restore
// with this value continues the sequence without a gap.
func (r *RNG) State() RNGState { return RNGState{State: r.state, Inc: r.inc} }

// Restore repositions the stream to st. The increment is forced odd, the
// one invariant the generator requires, so restoring a corrupted state
// still yields a working (if different) stream rather than a degenerate
// one.
func (r *RNG) Restore(st RNGState) {
	r.state = st.State
	r.inc = st.Inc | 1
}

// Split derives an independent child stream from the parent. The child is
// seeded from the parent's sequence, so distinct calls yield distinct
// streams while remaining a pure function of the root seed.
func (r *RNG) Split() *RNG {
	return newPCG(r.Uint64(), r.Uint64())
}

// next32 produces the next raw 32-bit output (PCG-XSH-RR output function
// over an LCG step).
func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return xorshifted>>rot | xorshifted<<((-rot)&31)
}

// Uint64 returns a uniform 64-bit word.
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform sample in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn requires n > 0")
	}
	return int(r.int63n(int64(n)))
}

// int63n returns a uniform sample in [0, n) using the rejection method, so
// the result is exactly uniform rather than modulo-biased.
func (r *RNG) int63n(n int64) int64 {
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed sample with rate lambda, i.e.
// mean 1/lambda, by inversion. This is the sleeping-duration distribution
// of PEAS (paper §2.1: f(ts) = λ e^{-λ ts}).
//
// Exp panics if lambda <= 0: a non-positive probing rate would make a node
// sleep forever, which is always a configuration error.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("stats: Exp requires lambda > 0")
	}
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -math.Log(1-r.Float64()) / lambda
}

// Poisson returns a Poisson-distributed sample with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation; adequate for the failure-count draws
		// used by the experiment harness.
		n := int(math.Round(mean + math.Sqrt(mean)*r.Normal()))
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-mean)
	n := 0
	for p := r.Float64(); p > limit; p *= r.Float64() {
		n++
	}
	return n
}

// Normal returns a standard normal sample via the Box-Muller transform.
// Unlike the ziggurat in math/rand, the transform keeps no cached spare
// sample, so the stream position after a draw is well defined — a
// requirement for exact checkpoint/restore.
func (r *RNG) Normal() float64 {
	// 1 - Float64() is in (0, 1], keeping the log finite.
	u := 1 - r.Float64()
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, with the
// Fisher-Yates walk math/rand uses.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.int63n(int64(i + 1)))
		swap(i, j)
	}
}
