// Package stats provides the random-number distributions and statistical
// helpers used throughout the PEAS simulator: seeded RNG streams,
// exponential/uniform/Poisson sampling, summary statistics and confidence
// intervals, and a union-find structure used for connectivity analysis.
//
// The simulator must be exactly reproducible from (config, seed), so this
// package wraps math/rand with explicitly named streams rather than relying
// on a global source.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. It is a thin wrapper over
// math/rand.Rand that adds the distributions the PEAS model needs.
//
// RNG is not safe for concurrent use; the discrete-event simulator is
// single-threaded by design, and each concurrent component must own its
// own stream (see Split).
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream from the parent. The child is
// seeded from the parent's sequence, so distinct calls yield distinct
// streams while remaining a pure function of the root seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.src.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Exp returns an exponentially distributed sample with rate lambda, i.e.
// mean 1/lambda. This is the sleeping-duration distribution of PEAS
// (paper §2.1: f(ts) = λ e^{-λ ts}).
//
// Exp panics if lambda <= 0: a non-positive probing rate would make a node
// sleep forever, which is always a configuration error.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("stats: Exp requires lambda > 0")
	}
	return r.src.ExpFloat64() / lambda
}

// Poisson returns a Poisson-distributed sample with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation; adequate for the failure-count draws
		// used by the experiment harness.
		n := int(math.Round(mean + math.Sqrt(mean)*r.Normal()))
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-mean)
	n := 0
	for p := r.src.Float64(); p > limit; p *= r.src.Float64() {
		n++
	}
	return n
}

// Normal returns a standard normal sample.
func (r *RNG) Normal() float64 { return r.src.NormFloat64() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }
