package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(1)
	c1, c2 := root.Split(), root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams produced %d/100 equal samples", same)
	}
}

func TestRNGSplitReproducible(t *testing.T) {
	a := NewRNG(7).Split()
	b := NewRNG(7).Split()
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split is not a pure function of the parent seed")
		}
	}
}

func TestExpMoments(t *testing.T) {
	tests := []struct {
		name   string
		lambda float64
	}{
		{"paper-initial-rate", 0.1},
		{"paper-desired-rate", 0.02},
		{"unit", 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rng := NewRNG(3)
			const n = 200000
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				x := rng.Exp(tc.lambda)
				if x < 0 {
					t.Fatalf("negative exponential sample %v", x)
				}
				sum += x
				sumSq += x * x
			}
			mean := sum / n
			wantMean := 1 / tc.lambda
			if math.Abs(mean-wantMean)/wantMean > 0.02 {
				t.Errorf("mean = %v, want ≈ %v", mean, wantMean)
			}
			variance := sumSq/n - mean*mean
			wantVar := 1 / (tc.lambda * tc.lambda)
			if math.Abs(variance-wantVar)/wantVar > 0.05 {
				t.Errorf("variance = %v, want ≈ %v", variance, wantVar)
			}
		})
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) should panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestUniformRange(t *testing.T) {
	// The quick.Config pins its own generator: the default is seeded from
	// the clock, which makes failures unreproducible and -count=N runs
	// nondeterministic.
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(5)), MaxCount: 200}
	err := quick.Check(func(seed int64) bool {
		rng := NewRNG(seed)
		for _, b := range [][2]float64{{2, 9.5}, {0, 1}, {-3, 3}, {100, 100.001}} {
			x := rng.Uniform(b[0], b[1])
			if x < b[0] || x >= b[1] {
				return false
			}
		}
		return true
	}, cfg)
	if err != nil {
		t.Error(err)
	}
	// Degenerate range: lo == hi must return exactly lo, never panic.
	if x := NewRNG(1).Uniform(4, 4); x != 4 {
		t.Errorf("Uniform(4,4) = %v, want 4", x)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 32, 200} {
		rng := NewRNG(11)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(rng.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
	if NewRNG(1).Poisson(-1) != 0 {
		t.Error("Poisson(-1) must be 0")
	}
}

// TestRNGStateRoundTrip pins the property the checkpoint subsystem depends
// on: capturing State mid-stream and restoring it reproduces the remaining
// sequence exactly, across every distribution the simulator draws from.
func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(1234)
	// Burn an arbitrary prefix mixing all the draw kinds.
	for i := 0; i < 137; i++ {
		r.Float64()
		r.Exp(0.1)
		r.Normal()
		r.Intn(17)
	}
	st := r.State()
	clone := NewRNGFromState(st)
	for i := 0; i < 1000; i++ {
		if a, b := r.Uint64(), clone.Uint64(); a != b {
			t.Fatalf("restored stream diverged at step %d: %x != %x", i, a, b)
		}
	}
}

func TestRNGRestoreInPlace(t *testing.T) {
	r := NewRNG(9)
	st := r.State()
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.Float64()
	}
	r.Restore(st)
	for i := range want {
		if got := r.Float64(); got != want[i] {
			t.Fatalf("in-place restore diverged at step %d", i)
		}
	}
}

func TestRNGRestoreForcesOddIncrement(t *testing.T) {
	// A corrupted checkpoint may carry an even increment; the generator
	// must still cycle rather than degenerate.
	r := NewRNGFromState(RNGState{State: 0, Inc: 4})
	if r.State().Inc&1 != 1 {
		t.Fatal("Restore must force the increment odd")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("restored stream looks degenerate: %d/64 distinct outputs", len(seen))
	}
}

func TestIntnUniform(t *testing.T) {
	rng := NewRNG(77)
	const n, draws = 7, 70000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[rng.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("Intn(%d) bucket %d: %d draws, want ≈ %.0f", n, v, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRNG(21)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := rng.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean = %v, want ≈ 0", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance = %v, want ≈ 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(9)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
