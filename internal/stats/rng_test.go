package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(1)
	c1, c2 := root.Split(), root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams produced %d/100 equal samples", same)
	}
}

func TestRNGSplitReproducible(t *testing.T) {
	a := NewRNG(7).Split()
	b := NewRNG(7).Split()
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Split is not a pure function of the parent seed")
		}
	}
}

func TestExpMoments(t *testing.T) {
	tests := []struct {
		name   string
		lambda float64
	}{
		{"paper-initial-rate", 0.1},
		{"paper-desired-rate", 0.02},
		{"unit", 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rng := NewRNG(3)
			const n = 200000
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				x := rng.Exp(tc.lambda)
				if x < 0 {
					t.Fatalf("negative exponential sample %v", x)
				}
				sum += x
				sumSq += x * x
			}
			mean := sum / n
			wantMean := 1 / tc.lambda
			if math.Abs(mean-wantMean)/wantMean > 0.02 {
				t.Errorf("mean = %v, want ≈ %v", mean, wantMean)
			}
			variance := sumSq/n - mean*mean
			wantVar := 1 / (tc.lambda * tc.lambda)
			if math.Abs(variance-wantVar)/wantVar > 0.05 {
				t.Errorf("variance = %v, want ≈ %v", variance, wantVar)
			}
		})
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) should panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestUniformRange(t *testing.T) {
	rng := NewRNG(5)
	err := quick.Check(func(seed int64) bool {
		lo, hi := 2.0, 9.5
		x := rng.Uniform(lo, hi)
		return x >= lo && x < hi
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 32, 200} {
		rng := NewRNG(11)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(rng.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if NewRNG(1).Poisson(0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
	if NewRNG(1).Poisson(-1) != 0 {
		t.Error("Poisson(-1) must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(9)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
