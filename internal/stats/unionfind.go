package stats

// UnionFind is a disjoint-set forest with union by rank and path
// compression. The connectivity analysis of the working-node set (paper
// §3) uses it to count connected components.
type UnionFind struct {
	parent []int
	rank   []byte
	count  int
}

// NewUnionFind returns a forest of n singleton sets labelled 0..n-1.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]byte, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b and reports whether they were
// previously distinct.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Components returns the number of disjoint sets remaining.
func (u *UnionFind) Components() int { return u.count }

// Len returns the number of elements in the forest.
func (u *UnionFind) Len() int { return len(u.parent) }
