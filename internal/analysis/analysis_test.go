package analysis

import (
	"math"
	"testing"

	"peas/internal/coverage"
	"peas/internal/geom"
	"peas/internal/node"
	"peas/internal/stats"
)

func TestExpectedEmptyCellsMatchesSimulation(t *testing.T) {
	// 289 cells (17x17 of 3 m on ~50 m), deployments as in DensityStudy.
	const (
		l     = 50.0
		c     = 3.0
		cells = 17 * 17
	)
	rng := stats.NewRNG(7)
	for _, n := range []int{160, 480, 1600} {
		want := ExpectedEmptyCells(cells, n)
		// Empirical mean over many deployments.
		const runs = 200
		total := 0
		for r := 0; r < runs; r++ {
			pts := geom.UniformDeploy(geom.NewField(l, l), n, rng)
			occupied := make([]bool, cells)
			for _, p := range pts {
				ci := int(p.X / c)
				ri := int(p.Y / c)
				if ci > 16 {
					ci = 16
				}
				if ri > 16 {
					ri = 16
				}
				occupied[ri*17+ci] = true
			}
			for _, o := range occupied {
				if !o {
					total++
				}
			}
		}
		got := float64(total) / runs
		// The formula assumes equal cells; the 17th row/column of the
		// 50 m field is a 2 m sliver, so allow a generous band.
		if math.Abs(got-want) > math.Max(3, want*0.35) {
			t.Errorf("n=%d: empirical empty cells %.1f vs model %.1f", n, got, want)
		}
	}
}

func TestExpectedEmptyCellsEdge(t *testing.T) {
	if ExpectedEmptyCells(0, 10) != 0 {
		t.Error("zero cells")
	}
	if got := ExpectedEmptyCells(10, 0); got != 10 {
		t.Errorf("no nodes: %v, want all 10 empty", got)
	}
}

func TestLemmaConstant(t *testing.T) {
	// DensityStudy's k at 480 nodes: 9·480/(2500·ln 50) ≈ 0.44.
	got := LemmaConstant(3, 50, 480)
	if math.Abs(got-0.4417) > 0.01 {
		t.Errorf("k = %v", got)
	}
	if !math.IsInf(LemmaConstant(3, 1, 100), 1) {
		t.Error("l<=1 should be infinite")
	}
}

func TestPoissonCoverageBasics(t *testing.T) {
	if PoissonCoverage(0, 10, 1) != 0 || PoissonCoverage(0.1, 0, 1) != 0 {
		t.Error("degenerate inputs")
	}
	// Monotone in k.
	for k := 1; k < 6; k++ {
		if PoissonCoverage(0.05, 10, k+1) > PoissonCoverage(0.05, 10, k) {
			t.Fatalf("coverage not monotone at k=%d", k)
		}
	}
	// Known value: mean = 1, P(N >= 1) = 1 - e^-1.
	density := 1 / (math.Pi * 100) // mean area count 1 at r=10
	got := PoissonCoverage(density, 10, 1)
	want := 1 - math.Exp(-1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P = %v, want %v", got, want)
	}
}

func TestPoissonCoveragePredictsSimulatedKCoverage(t *testing.T) {
	// Run PEAS to equilibrium and compare the analytic K-coverage of a
	// Poisson field of equal density against the measured lattice
	// fractions. Boundary effects depress the measurement, so the model
	// is expected to be an optimistic approximation.
	cfg := node.DefaultConfig(480, 11)
	net, err := node.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(600)
	working := net.WorkingPositions()
	density := float64(len(working)) / cfg.Field.Area()
	lattice := coverage.NewLattice(cfg.Field, 1)
	byK := lattice.Fraction(working, 10, 5)
	for k := 1; k <= 5; k++ {
		model := PoissonCoverage(density, 10, k)
		measured := byK[k-1]
		if model < measured-0.05 {
			t.Errorf("k=%d: model %0.3f should not undercut measured %0.3f", k, model, measured)
		}
		if model-measured > 0.30 {
			t.Errorf("k=%d: model %0.3f too far above measured %0.3f", k, model, measured)
		}
	}
}

func TestEstimatorErrorModel(t *testing.T) {
	if got := EstimatorRelativeError(32); math.Abs(got-1/math.Sqrt(32)) > 1e-12 {
		t.Errorf("rel err = %v", got)
	}
	if !math.IsInf(EstimatorRelativeError(0), 1) {
		t.Error("k=0")
	}
	// The paper's statement: with k >= 16, the measured average is
	// within 1% ... that holds for the *mean of many windows*; for a
	// single window the confidence of ±25% at k=32 is high.
	if c := EstimatorConfidence(32, 0.25); c < 0.84 {
		t.Errorf("confidence(32, 25%%) = %v", c)
	}
	// Confidence grows with k and eps.
	if EstimatorConfidence(64, 0.1) <= EstimatorConfidence(16, 0.1) {
		t.Error("confidence not monotone in k")
	}
	if EstimatorConfidence(32, 0.2) <= EstimatorConfidence(32, 0.1) {
		t.Error("confidence not monotone in eps")
	}
	if EstimatorConfidence(0, 0.1) != 0 || EstimatorConfidence(32, 0) != 0 {
		t.Error("degenerate confidence")
	}
}

func TestEstimatorConfidenceMatchesMonteCarlo(t *testing.T) {
	rng := stats.NewRNG(13)
	const (
		k      = 32
		eps    = 0.2
		trials = 5000
	)
	hits := 0
	for trial := 0; trial < trials; trial++ {
		var sum float64
		for i := 0; i < k; i++ {
			sum += rng.Exp(1)
		}
		meanInterval := sum / k
		if math.Abs(meanInterval-1) <= eps {
			hits++
		}
	}
	got := float64(hits) / trials
	want := EstimatorConfidence(k, eps)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("monte carlo %v vs model %v", got, want)
	}
}

func TestLifetimeModelMatchesSweepSlope(t *testing.T) {
	// The measured equilibrium working set is ~135-160 nodes, but the
	// energy-weighted effective working set over a whole lifetime is
	// smaller (late-life phases run sparse). Check the model brackets
	// the measured Figure 9/10 slope (~32-37 s/node) for plausible W.
	low := DefaultLifetimeModel(160)
	high := DefaultLifetimeModel(110)
	low.FailedFraction = 0.14
	high.FailedFraction = 0.14
	slopeLow, slopeHigh := low.SlopePerNode(), high.SlopePerNode()
	if slopeLow > 33 || slopeHigh < 36 {
		t.Errorf("model slope band [%v, %v] misses the measured 32-37 s/node",
			slopeLow, slopeHigh)
	}
	// Lifetime is linear in n by construction.
	m := DefaultLifetimeModel(140)
	if math.Abs(m.Lifetime(800)-5*m.Lifetime(160)) > 1e-9 {
		t.Error("model lifetime not linear")
	}
	if DefaultLifetimeModel(0).Lifetime(100) != 0 {
		t.Error("degenerate model")
	}
}

func TestSaturationDensityMatchesSimulation(t *testing.T) {
	// The §3 pea-packing bound: with an ideal channel, PEAS saturates
	// around the RSA jamming density.
	want := SaturationDensity(2500, 3) // ≈ 193 for the paper's field
	if want < 150 || want > 250 {
		t.Fatalf("model saturation %v out of plausible band", want)
	}
	cfg := node.DefaultConfig(1200, 17) // dense deployment saturates fast
	cfg.Radio.CollisionsEnabled = false
	cfg.Protocol.TurnoffEnabled = false
	net, err := node.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(600)
	got := float64(net.WorkingCount())
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("simulated saturation %v vs RSA model %v", got, want)
	}
	if SaturationDensity(100, 0) != 0 {
		t.Error("degenerate rp")
	}
}
