// Package analysis provides closed-form models for the quantities the
// paper reasons about analytically: cell occupancy (Lemma 3.1), Poisson
// K-coverage, estimator error (the §2.2.1 CLT argument), and the
// linear-lifetime model behind Figures 9-10. The test suite checks each
// model against the simulator, closing the loop between the paper's
// analysis and its evaluation.
package analysis

import (
	"math"
)

// ExpectedEmptyCells returns E[μ0], the expected number of empty cells
// when n points fall uniformly at random into m equal cells:
// E[μ0] = m·(1 - 1/m)^n. Lemma 3.1 is the statement that this vanishes
// asymptotically when c²n = k·l²·ln(l) with k > d.
func ExpectedEmptyCells(m, n int) float64 {
	if m <= 0 {
		return 0
	}
	return float64(m) * math.Pow(1-1/float64(m), float64(n))
}

// LemmaConstant returns k = c²·n / (l²·ln l), the density constant of
// Lemma 3.1 for an l x l field with cells of edge c.
func LemmaConstant(c, l float64, n int) float64 {
	if l <= 1 {
		return math.Inf(1)
	}
	return c * c * float64(n) / (l * l * math.Log(l))
}

// PoissonCoverage returns the probability that a uniformly random point
// of a large field is covered by at least k sensors, when sensors form a
// Poisson field of the given density (sensors per square meter) with
// sensing radius r:
//
//	P(N >= k),  N ~ Poisson(density · π r²)
//
// The paper's K-coverage percentages approach this for uniform working
// sets away from the boundary.
func PoissonCoverage(density, r float64, k int) float64 {
	if density <= 0 || r <= 0 {
		return 0
	}
	mean := density * math.Pi * r * r
	// P(N >= k) = 1 - sum_{i<k} e^-mean mean^i / i!
	sum := 0.0
	term := math.Exp(-mean)
	for i := 0; i < k; i++ {
		sum += term
		term *= mean / float64(i+1)
	}
	if sum > 1 {
		sum = 1
	}
	return 1 - sum
}

// EstimatorRelativeError returns the standard deviation of the relative
// error of one λ̂ window with threshold k: the window sums k i.i.d.
// exponential intervals (a Gamma(k) variable), so the measured mean
// interval has relative standard deviation 1/sqrt(k) — the §2.2.1 CLT
// argument.
func EstimatorRelativeError(k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(float64(k))
}

// EstimatorConfidence returns (approximately) the probability that the
// measured mean interval of a k-window lies within fraction eps of the
// truth, using the normal approximation of the §2.2.1 argument:
// P(|err| <= eps) ≈ 2Φ(eps·sqrt(k)) - 1.
func EstimatorConfidence(k int, eps float64) float64 {
	if k <= 0 || eps <= 0 {
		return 0
	}
	z := eps * math.Sqrt(float64(k))
	return 2*phi(z) - 1
}

// phi is the standard normal CDF.
func phi(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// LifetimeModel is the linear system-lifetime model behind Figures 9-10:
// the working set holds W nodes drawing idle power; the deployment's
// total energy budget funds them in sequence.
type LifetimeModel struct {
	// MeanNodeEnergy is the mean initial charge in joules (paper: 57 J).
	MeanNodeEnergy float64
	// IdlePowerW is the working draw in watts (paper: 0.012 W).
	IdlePowerW float64
	// Working is the equilibrium working-set size W.
	Working float64
	// OverheadFraction inflates consumption for protocol overhead
	// (Table 1: < 0.5 %).
	OverheadFraction float64
	// FailedFraction removes nodes whose residual energy is lost to
	// failures (§5.3; failed nodes die with charge remaining).
	FailedFraction float64
	// FailureResidual is the mean fraction of a failed node's energy
	// that is wasted (≈ uniform failure time over a lifetime: 0.5).
	FailureResidual float64
}

// DefaultLifetimeModel returns the paper-parameterized model for the
// given equilibrium working-set size.
func DefaultLifetimeModel(working float64) LifetimeModel {
	return LifetimeModel{
		MeanNodeEnergy:   57,
		IdlePowerW:       0.012,
		Working:          working,
		OverheadFraction: 0.005,
		FailureResidual:  0.5,
	}
}

// Lifetime returns the predicted functioning time of a deployment of n
// nodes: available energy divided by the working set's aggregate draw.
func (m LifetimeModel) Lifetime(n int) float64 {
	if m.Working <= 0 || m.IdlePowerW <= 0 {
		return 0
	}
	budget := float64(n) * m.MeanNodeEnergy
	budget *= 1 - m.FailedFraction*m.FailureResidual
	budget /= 1 + m.OverheadFraction
	return budget / (m.Working * m.IdlePowerW)
}

// SlopePerNode returns the model's lifetime gain per additional deployed
// node — the slope of Figures 9-10.
func (m LifetimeModel) SlopePerNode() float64 {
	if m.Working <= 0 || m.IdlePowerW <= 0 {
		return 0
	}
	perNode := m.MeanNodeEnergy * (1 - m.FailedFraction*m.FailureResidual) /
		(1 + m.OverheadFraction)
	return perNode / (m.Working * m.IdlePowerW)
}

// SaturationDensity returns the jamming density of random sequential
// adsorption of hard discs: the maximum working-node count PEAS's probing
// rule packs into the given area when workers must be at least rp apart.
// The RSA jamming coverage fraction for discs is ≈ 0.547.
func SaturationDensity(area, rp float64) float64 {
	if rp <= 0 {
		return 0
	}
	const jamming = 0.547
	discArea := math.Pi * (rp / 2) * (rp / 2)
	return jamming * area / discArea
}
