package coverage

import (
	"math"
	"testing"
	"testing/quick"

	"peas/internal/geom"
	"peas/internal/stats"
)

func TestLatticeSize(t *testing.T) {
	l := NewLattice(geom.NewField(50, 50), 1)
	if l.Len() != 51*51 {
		t.Errorf("lattice size %d, want %d", l.Len(), 51*51)
	}
	if NewLattice(geom.NewField(10, 10), 0).Len() != 11*11 {
		t.Error("zero spacing should default to 1 m")
	}
}

func TestFractionNoSensors(t *testing.T) {
	l := NewLattice(geom.NewField(10, 10), 1)
	got := l.Fraction(nil, 5, 3)
	for k, f := range got {
		if f != 0 {
			t.Errorf("%d-coverage with no sensors = %v", k+1, f)
		}
	}
}

func TestFractionFullCoverage(t *testing.T) {
	// A sensor at the center of a small field with a huge radius covers
	// everything at K=1.
	l := NewLattice(geom.NewField(10, 10), 1)
	got := l.Fraction([]geom.Point{{X: 5, Y: 5}}, 100, 2)
	if got[0] != 1 {
		t.Errorf("1-coverage = %v, want 1", got[0])
	}
	if got[1] != 0 {
		t.Errorf("2-coverage with one sensor = %v, want 0", got[1])
	}
}

func TestFractionKnownGeometry(t *testing.T) {
	// One sensor in the corner with radius 10 on a 10x10 field covers a
	// quarter disc: π·100/4 of 100 m² ≈ 78.5% of the area.
	l := NewLattice(geom.NewField(10, 10), 0.25)
	got := l.FractionK([]geom.Point{{X: 0, Y: 0}}, 10, 1)
	want := math.Pi / 4
	if math.Abs(got-want) > 0.02 {
		t.Errorf("corner disc coverage = %v, want ≈ %v", got, want)
	}
}

func TestFractionMonotoneInK(t *testing.T) {
	f := geom.NewField(20, 20)
	l := NewLattice(f, 1)
	err := quick.Check(func(seed int64) bool {
		rng := stats.NewRNG(seed)
		sensors := geom.UniformDeploy(f, 30, rng)
		byK := l.Fraction(sensors, 6, 5)
		for k := 1; k < len(byK); k++ {
			if byK[k] > byK[k-1]+1e-12 {
				return false // K-coverage must not increase with K
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestCoveredMaskMatchesFraction(t *testing.T) {
	f := geom.NewField(15, 15)
	l := NewLattice(f, 1)
	sensors := geom.UniformDeploy(f, 10, stats.NewRNG(3))
	mask := l.CoveredMask(sensors, 5)
	covered := 0
	for _, c := range mask {
		if c {
			covered++
		}
	}
	frac := l.FractionK(sensors, 5, 1)
	if got := float64(covered) / float64(l.Len()); math.Abs(got-frac) > 1e-12 {
		t.Errorf("mask fraction %v != FractionK %v", got, frac)
	}
}

func TestTrackerLifetime(t *testing.T) {
	tr := NewTracker(2)
	// 1-coverage stays high; 2-coverage drops at t=100 and stays down.
	steps := []struct {
		t  float64
		k1 float64
		k2 float64
	}{
		{0, 1, 1}, {25, 1, 0.95}, {50, 0.99, 0.92},
		{75, 0.99, 0.85}, {100, 0.98, 0.85}, {125, 0.98, 0.80},
	}
	for _, s := range steps {
		tr.Record(s.t, []float64{s.k1, s.k2})
	}
	// Sustain 1: first crossing.
	lt, dropped := tr.Lifetime(2, 0.9, 1)
	if !dropped || lt != 75 {
		t.Errorf("k=2 sustain=1: (%v, %v), want (75, true)", lt, dropped)
	}
	// Sustain 3: needs three consecutive low samples; they start at 75.
	lt, dropped = tr.Lifetime(2, 0.9, 3)
	if !dropped || lt != 75 {
		t.Errorf("k=2 sustain=3: (%v, %v), want (75, true)", lt, dropped)
	}
	// 1-coverage never drops: report last sample, not dropped.
	lt, dropped = tr.Lifetime(1, 0.9, 1)
	if dropped || lt != 125 {
		t.Errorf("k=1: (%v, %v), want (125, false)", lt, dropped)
	}
}

func TestTrackerTransientDipTolerated(t *testing.T) {
	tr := NewTracker(1)
	// A single-sample dip (a worker died; a sleeper replaced it) must
	// not end the lifetime at sustain=3.
	values := []float64{1, 1, 0.85, 1, 1, 0.85, 0.85, 0.85}
	for i, v := range values {
		tr.Record(float64(i)*25, []float64{v})
	}
	lt, dropped := tr.Lifetime(1, 0.9, 3)
	if !dropped || lt != 125 {
		t.Errorf("lifetime (%v, %v), want (125, true)", lt, dropped)
	}
}

func TestTrackerEdgeCases(t *testing.T) {
	tr := NewTracker(0) // clamps to 1
	if tr.MaxK != 1 {
		t.Errorf("maxK = %d", tr.MaxK)
	}
	if _, ok := tr.Lifetime(1, 0.9, 1); ok {
		t.Error("empty tracker should not report a drop")
	}
	tr.Record(0, []float64{0.5})
	if _, ok := tr.Lifetime(5, 0.9, 1); ok {
		t.Error("out-of-range K should not report")
	}
	lt, ok := tr.Lifetime(1, 0.9, 1)
	if !ok || lt != 0 {
		t.Errorf("immediate drop: (%v, %v)", lt, ok)
	}
}

func TestTrackerRecordCopies(t *testing.T) {
	tr := NewTracker(1)
	byK := []float64{1}
	tr.Record(0, byK)
	byK[0] = 0
	if tr.Samples()[0].ByK[0] != 1 {
		t.Error("tracker aliased the caller's slice")
	}
}
