package coverage

import (
	"testing"

	"peas/internal/geom"
	"peas/internal/stats"
)

// legacyFraction computes the reference answer from scratch: the working
// subset of sensors pushed through Lattice.Fraction.
func legacyFraction(lat *Lattice, sensors []geom.Point, working []bool, radius float64, maxK int) []float64 {
	var subset []geom.Point
	for i, w := range working {
		if w {
			subset = append(subset, sensors[i])
		}
	}
	return lat.Fraction(subset, radius, maxK)
}

func workingSubset(sensors []geom.Point, working []bool) []geom.Point {
	var subset []geom.Point
	for i, w := range working {
		if w {
			subset = append(subset, sensors[i])
		}
	}
	return subset
}

// TestIncrementalChurnDifferential drives the incremental engine through
// a long randomized wake/sleep/death/revive sequence (pinned seeds) and
// asserts, at every step, bit-identical fractions, covered masks and
// working counts versus the from-scratch legacy path.
func TestIncrementalChurnDifferential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		rng := stats.NewRNG(seed)
		field := geom.NewField(50, 50)
		lat := NewLattice(field, 1)
		const (
			n      = 120
			radius = 10.0
			maxK   = 5
			steps  = 400
		)
		sensors := geom.UniformDeploy(field, n, rng)
		inc := NewIncremental(lat, sensors, radius, maxK)
		working := make([]bool, n)

		buf := make([]float64, 0, maxK)
		mask := make([]bool, 0, lat.Len())
		check := func(step int) {
			t.Helper()
			want := legacyFraction(lat, sensors, working, radius, maxK)
			buf = inc.FractionInto(buf)
			for k := range want {
				if buf[k] != want[k] {
					t.Fatalf("seed %d step %d: K=%d incremental %v != legacy %v",
						seed, step, k+1, buf[k], want[k])
				}
			}
			wantMask := lat.CoveredMask(workingSubset(sensors, working), radius)
			mask = inc.CoveredMaskInto(mask)
			for i := range wantMask {
				if mask[i] != wantMask[i] {
					t.Fatalf("seed %d step %d: point %d covered mismatch", seed, step, i)
				}
			}
			count := 0
			for _, w := range working {
				if w {
					count++
				}
			}
			if inc.WorkingCount() != count {
				t.Fatalf("seed %d step %d: WorkingCount %d != %d",
					seed, step, inc.WorkingCount(), count)
			}
			for k := 1; k <= maxK; k++ {
				if got := inc.FractionK(k); got != want[k-1] {
					t.Fatalf("seed %d step %d: FractionK(%d) %v != %v",
						seed, step, k, got, want[k-1])
				}
			}
		}

		check(-1) // empty working set
		for step := 0; step < steps; step++ {
			i := rng.Intn(n)
			switch rng.Intn(5) {
			case 0, 1: // wake
				working[i] = true
				inc.Set(i, true)
			case 2, 3: // sleep or die
				working[i] = false
				inc.Set(i, false)
			case 4: // redundant transition: Set must be idempotent
				inc.Set(i, working[i])
			}
			check(step)
		}

		// A mid-churn rebuild (the checkpoint-resume path) must land on the
		// same state the incremental transitions maintained.
		inc.Rebuild(func(i int) bool { return working[i] })
		check(steps)
	}
}

// TestIncrementalFootprintsMatchStamping checks the precomputed CSR
// footprints: summing footprint lengths over a working set must equal the
// total stamp count the legacy path performs, and every footprint must be
// exactly the point set within the radius.
func TestIncrementalFootprintsMatchStamping(t *testing.T) {
	rng := stats.NewRNG(3)
	field := geom.NewField(30, 20)
	lat := NewLattice(field, 1)
	const radius = 7.0
	sensors := geom.UniformDeploy(field, 25, rng)
	inc := NewIncremental(lat, sensors, radius, 3)
	r2 := radius * radius
	for i, s := range sensors {
		want := 0
		for p := 0; p < lat.Len(); p++ {
			if lat.Point(p).Dist2(s) <= r2 {
				want++
			}
		}
		if got := inc.FootprintLen(i); got != want {
			t.Errorf("sensor %d: footprint %d points, brute force %d", i, got, want)
		}
	}
}

// TestIncrementalEdgeCases covers degenerate radii and maxK clamping.
func TestIncrementalEdgeCases(t *testing.T) {
	field := geom.NewField(10, 10)
	lat := NewLattice(field, 1)
	sensors := []geom.Point{{X: 5, Y: 5}}

	// Negative radius: no footprint, fractions stay zero.
	inc := NewIncremental(lat, sensors, -1, 2)
	inc.Set(0, true)
	for _, f := range inc.Fraction() {
		if f != 0 {
			t.Errorf("negative radius: nonzero fraction %v", f)
		}
	}

	// Zero radius covers exactly the coincident lattice point.
	inc = NewIncremental(lat, sensors, 0, 1)
	inc.Set(0, true)
	want := lat.Fraction(sensors, 0, 1)
	if got := inc.Fraction(); got[0] != want[0] {
		t.Errorf("zero radius: incremental %v != legacy %v", got[0], want[0])
	}

	// maxK < 1 clamps to 1, mirroring Lattice.Fraction.
	inc = NewIncremental(lat, sensors, 3, 0)
	if inc.MaxK() != 1 {
		t.Errorf("maxK 0 should clamp to 1, got %d", inc.MaxK())
	}

	// FractionK beyond maxK is a programming error, not a silent clamp.
	defer func() {
		if recover() == nil {
			t.Error("FractionK beyond maxK did not panic")
		}
	}()
	inc.FractionK(2)
}

// TestIncrementalDeepOverlap exercises counts far above maxK: many
// coincident sensors churning must keep the clamped histogram consistent.
func TestIncrementalDeepOverlap(t *testing.T) {
	field := geom.NewField(10, 10)
	lat := NewLattice(field, 1)
	const n = 20
	sensors := make([]geom.Point, n)
	for i := range sensors {
		sensors[i] = geom.Point{X: 5, Y: 5}
	}
	const maxK = 3
	inc := NewIncremental(lat, sensors, 4, maxK)
	working := make([]bool, n)
	rng := stats.NewRNG(11)
	for step := 0; step < 200; step++ {
		i := rng.Intn(n)
		working[i] = !working[i]
		inc.Set(i, working[i])
		want := legacyFraction(lat, sensors, working, 4, maxK)
		got := inc.FractionInto(nil)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("step %d K=%d: %v != %v", step, k+1, got[k], want[k])
			}
		}
	}
}
