// Package coverage computes K-coverage over the deployment field and
// tracks coverage lifetime, the paper's primary metric (§5.2): "the
// sensing coverage is defined as the percentage of the field monitored by
// working nodes", and "K-coverage [is] the percentage of the field size
// monitored by at least K working nodes".
package coverage

import (
	"peas/internal/geom"
)

// Lattice is a fixed sampling grid over a field used to estimate coverage
// percentages. A spacing of 1 m over the paper's 50 x 50 m field gives a
// 2601-point estimator, accurate to well under the 90% threshold margin.
type Lattice struct {
	field   geom.Field
	spacing float64
	points  []geom.Point
	cols    int     // lattice points per row (row-major layout)
	rows    int
	counts  []int32 // Fraction scratch, reused across samples
}

// NewLattice builds a sampling lattice with the given spacing in meters.
func NewLattice(field geom.Field, spacing float64) *Lattice {
	if spacing <= 0 {
		spacing = 1
	}
	var pts []geom.Point
	cols := 0
	rows := 0
	for y := 0.0; y <= field.Height; y += spacing {
		n := 0
		for x := 0.0; x <= field.Width; x += spacing {
			pts = append(pts, geom.Point{X: x, Y: y})
			n++
		}
		cols = n
		rows++
	}
	return &Lattice{field: field, spacing: spacing, points: pts, cols: cols, rows: rows}
}

// Len returns the number of sample points.
func (l *Lattice) Len() int { return len(l.points) }

// Point returns sample point i.
func (l *Lattice) Point(i int) geom.Point { return l.points[i] }

// CoveredMask returns, for each sample point, whether at least one of the
// given sensors covers it with the given radius.
func (l *Lattice) CoveredMask(sensors []geom.Point, radius float64) []bool {
	mask := make([]bool, len(l.points))
	if len(sensors) == 0 {
		return mask
	}
	idx := geom.NewIndex(l.field, sensors, radius)
	for i, p := range l.points {
		found := false
		idx.Within(p, radius, func(int, float64) { found = true })
		mask[i] = found
	}
	return mask
}

// Fraction returns, for each K in 1..maxK, the fraction of sample points
// covered by at least K of the given sensor positions with the given
// sensing radius.
//
// The count is computed by stamping each sensor's disk onto the lattice
// rather than running one range query per lattice point: a sensor only
// visits the ~pi*r^2/spacing^2 points it could cover, instead of every
// point scanning every candidate sensor. The membership predicate is the
// same exact squared-distance comparison either way, so the per-point
// counts — and therefore the reported fractions — are identical.
func (l *Lattice) Fraction(sensors []geom.Point, radius float64, maxK int) []float64 {
	if maxK < 1 {
		maxK = 1
	}
	out := make([]float64, maxK)
	if len(l.points) == 0 {
		return out
	}
	if l.counts == nil {
		l.counts = make([]int32, len(l.points))
	}
	counts := l.counts
	clear(counts)
	if len(sensors) > 0 && radius >= 0 {
		r2 := radius * radius
		for _, s := range sensors {
			// Conservative candidate window: lattice coordinates are
			// accumulated sums, so pad the index range by one cell to
			// absorb any accumulation drift; the exact Dist2 test below
			// decides membership.
			c0 := int((s.X-radius)/l.spacing) - 1
			c1 := int((s.X+radius)/l.spacing) + 1
			r0 := int((s.Y-radius)/l.spacing) - 1
			r1 := int((s.Y+radius)/l.spacing) + 1
			if c0 < 0 {
				c0 = 0
			}
			if r0 < 0 {
				r0 = 0
			}
			if c1 >= l.cols {
				c1 = l.cols - 1
			}
			if r1 >= l.rows {
				r1 = l.rows - 1
			}
			for row := r0; row <= r1; row++ {
				base := row * l.cols
				for col := c0; col <= c1; col++ {
					if l.points[base+col].Dist2(s) <= r2 {
						counts[base+col]++
					}
				}
			}
		}
	}
	for _, c := range counts {
		k := int(c)
		if k > maxK {
			k = maxK
		}
		for i := 0; i < k; i++ {
			out[i]++
		}
	}
	for k := range out {
		out[k] /= float64(len(l.points))
	}
	return out
}

// FractionK is Fraction for a single K.
func (l *Lattice) FractionK(sensors []geom.Point, radius float64, k int) float64 {
	if k < 1 {
		k = 1
	}
	return l.Fraction(sensors, radius, k)[k-1]
}

// Sample is one timed coverage observation.
type Sample struct {
	T float64
	// ByK[k-1] is the K-coverage fraction.
	ByK []float64
}

// Tracker accumulates periodic coverage samples and derives lifetimes.
type Tracker struct {
	MaxK    int
	samples []Sample
}

// NewTracker returns a tracker for coverage degrees 1..maxK.
func NewTracker(maxK int) *Tracker {
	if maxK < 1 {
		maxK = 1
	}
	return &Tracker{MaxK: maxK}
}

// Record appends one observation. byK must have MaxK entries.
func (t *Tracker) Record(now float64, byK []float64) {
	cp := make([]float64, len(byK))
	copy(cp, byK)
	t.samples = append(t.samples, Sample{T: now, ByK: cp})
}

// Samples returns the recorded series.
func (t *Tracker) Samples() []Sample { return t.samples }

// Restore replaces the recorded series with a deep copy of samples, as
// previously returned by Samples. The checkpoint subsystem uses it to
// carry the coverage history across a snapshot/resume boundary.
func (t *Tracker) Restore(samples []Sample) {
	t.samples = t.samples[:0]
	for _, s := range samples {
		t.Record(s.T, s.ByK)
	}
}

// Lifetime returns the K-coverage lifetime: the time of the first sample
// of the first run of `sustain` consecutive samples below threshold
// ("the time duration from the beginning until K-coverage drops below a
// threshold value"). The sustain parameter tolerates transient dips that
// Adaptive Sleeping repairs; sustain <= 1 means the first crossing ends
// the lifetime. If coverage never drops, the last sample time is
// returned with ok == false.
func (t *Tracker) Lifetime(k int, threshold float64, sustain int) (lifetime float64, ok bool) {
	if k < 1 || k > t.MaxK || len(t.samples) == 0 {
		return 0, false
	}
	if sustain < 1 {
		sustain = 1
	}
	run := 0
	for i, s := range t.samples {
		if s.ByK[k-1] < threshold {
			run++
			if run >= sustain {
				// Lifetime ends where the sustained drop began.
				return t.samples[i-sustain+1].T, true
			}
		} else {
			run = 0
		}
	}
	return t.samples[len(t.samples)-1].T, false
}
