package coverage

import (
	"testing"

	"peas/internal/geom"
	"peas/internal/stats"
)

// Microbenchmarks for the K-coverage engines. Run with
//
//	go test ./internal/coverage -run=NONE -bench=. -benchmem
//
// BenchmarkIncrementalSample is the steady-state path the periodic
// coverage tick pays between working-set transitions; it must stay at
// 0 allocs/op (TestIncrementalHotPathAllocFree enforces this and CI runs
// the -benchmem suite). BenchmarkLegacyFraction is the from-scratch
// reference the incremental engine replaced on that tick.

const (
	benchN      = 480
	benchRadius = 10.0
	benchMaxK   = 5
)

func benchSetup(b testing.TB) (*Lattice, []geom.Point) {
	b.Helper()
	field := geom.NewField(50, 50)
	return NewLattice(field, 1), geom.UniformDeploy(field, benchN, stats.NewRNG(1))
}

func BenchmarkIncrementalSample(b *testing.B) {
	lat, sensors := benchSetup(b)
	inc := NewIncremental(lat, sensors, benchRadius, benchMaxK)
	for i := 0; i < benchN/3; i++ {
		inc.Set(i, true)
	}
	buf := make([]float64, 0, benchMaxK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = inc.FractionInto(buf)
	}
	_ = buf
}

// BenchmarkIncrementalChurn measures a transition-heavy epoch: a few
// wake/sleep flips (the ±footprint stamps) followed by one sample, the
// worst realistic duty cycle between two coverage ticks.
func BenchmarkIncrementalChurn(b *testing.B) {
	lat, sensors := benchSetup(b)
	inc := NewIncremental(lat, sensors, benchRadius, benchMaxK)
	for i := 0; i < benchN/3; i++ {
		inc.Set(i, true)
	}
	buf := make([]float64, 0, benchMaxK)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4; j++ {
			k := (i*7 + j*131) % benchN
			inc.Set(k, !inc.Working(k))
		}
		buf = inc.FractionInto(buf)
	}
	_ = buf
}

func BenchmarkLegacyFraction(b *testing.B) {
	lat, sensors := benchSetup(b)
	working := sensors[:benchN/3]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lat.Fraction(working, benchRadius, benchMaxK)
	}
}

// TestIncrementalHotPathAllocFree pins the 0 allocs/op contract of the
// steady-state sample and of working-set transitions, independent of
// whether the benchmarks run.
func TestIncrementalHotPathAllocFree(t *testing.T) {
	lat, sensors := benchSetup(t)
	inc := NewIncremental(lat, sensors, benchRadius, benchMaxK)
	for i := 0; i < benchN/3; i++ {
		inc.Set(i, true)
	}
	buf := make([]float64, 0, benchMaxK)
	mask := make([]bool, 0, lat.Len())
	if avg := testing.AllocsPerRun(1000, func() {
		buf = inc.FractionInto(buf)
	}); avg != 0 {
		t.Errorf("steady-state sample: %v allocs/op, want 0", avg)
	}
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		inc.Set(i%benchN, !inc.Working(i%benchN))
		i++
	}); avg != 0 {
		t.Errorf("working transition: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		mask = inc.CoveredMaskInto(mask)
	}); avg != 0 {
		t.Errorf("covered mask: %v allocs/op, want 0", avg)
	}
}
