package coverage

import (
	"fmt"

	"peas/internal/geom"
)

// Incremental is the O(Δworking) K-coverage engine. For a fixed
// deployment it precomputes, once, each sensor's lattice footprint — the
// exact set of lattice points within the sensing radius, decided by the
// same squared-distance predicate Lattice.Fraction uses — and then keeps
// per-lattice-point coverage counts current by stamping ±1 footprints as
// sensors enter and leave the working set. A count-of-counts histogram
// (clamped at maxK) rides along, so answering Fraction is a suffix sum
// over maxK buckets instead of a rebuild over every working disk.
//
// The integer counts are bit-identical to what Lattice.Fraction computes
// from the same working set: footprint membership uses the identical
// `Dist2 <= r*r` comparison on the identical positions, and integer
// addition is order-independent. The reported fractions divide the same
// exact float64 integers by the same lattice size, so they are
// bit-identical too. Lattice.Fraction stays as the from-scratch
// differential-testing reference.
type Incremental struct {
	lat  *Lattice
	maxK int

	// Footprints in CSR layout: sensor i covers lattice points
	// idxs[offs[i]:offs[i+1]].
	offs []int32
	idxs []int32

	// counts[p] is the number of stamped sensors covering lattice point p.
	counts []int32
	// hist[c] is the number of lattice points whose count, clamped at
	// maxK, equals c. Transitions entirely above maxK do not move it.
	hist []int64
	// working mirrors the stamped set; Set is idempotent against it.
	working    []bool
	numWorking int
}

// NewIncremental builds the engine for a fixed set of sensor positions
// sampled on lat with the given sensing radius, tracking coverage degrees
// 1..maxK. The footprint precomputation costs one legacy-Fraction-like
// pass; every later transition costs one footprint stamp.
func NewIncremental(lat *Lattice, sensors []geom.Point, radius float64, maxK int) *Incremental {
	if maxK < 1 {
		maxK = 1
	}
	inc := &Incremental{
		lat:     lat,
		maxK:    maxK,
		offs:    make([]int32, len(sensors)+1),
		counts:  make([]int32, len(lat.points)),
		hist:    make([]int64, maxK+1),
		working: make([]bool, len(sensors)),
	}
	inc.hist[0] = int64(len(lat.points))
	if len(lat.points) == 0 || radius < 0 {
		return inc
	}
	r2 := radius * radius
	for i, s := range sensors {
		// The candidate window and the exact membership test replicate
		// Lattice.Fraction's stamping loop verbatim, so the footprint is
		// precisely the point set that loop would visit and count.
		c0 := int((s.X-radius)/lat.spacing) - 1
		c1 := int((s.X+radius)/lat.spacing) + 1
		r0 := int((s.Y-radius)/lat.spacing) - 1
		r1 := int((s.Y+radius)/lat.spacing) + 1
		if c0 < 0 {
			c0 = 0
		}
		if r0 < 0 {
			r0 = 0
		}
		if c1 >= lat.cols {
			c1 = lat.cols - 1
		}
		if r1 >= lat.rows {
			r1 = lat.rows - 1
		}
		for row := r0; row <= r1; row++ {
			base := row * lat.cols
			for col := c0; col <= c1; col++ {
				if lat.points[base+col].Dist2(s) <= r2 {
					inc.idxs = append(inc.idxs, int32(base+col))
				}
			}
		}
		inc.offs[i+1] = int32(len(inc.idxs))
	}
	return inc
}

// Len returns the number of tracked sensors.
func (inc *Incremental) Len() int { return len(inc.working) }

// MaxK returns the highest tracked coverage degree.
func (inc *Incremental) MaxK() int { return inc.maxK }

// Working reports whether sensor i is currently stamped as working.
func (inc *Incremental) Working(i int) bool { return inc.working[i] }

// WorkingCount returns the number of currently working sensors.
func (inc *Incremental) WorkingCount() int { return inc.numWorking }

// FootprintLen returns the number of lattice points sensor i covers.
func (inc *Incremental) FootprintLen(i int) int {
	return int(inc.offs[i+1] - inc.offs[i])
}

// Set transitions sensor i into (working=true) or out of (working=false)
// the working set, stamping its footprint onto the counts and histogram.
// Setting the current status is a no-op, so callers can forward raw state
// observations without pre-filtering. The cost is O(footprint); no
// allocation ever happens here.
func (inc *Incremental) Set(i int, working bool) {
	if inc.working[i] == working {
		return
	}
	inc.working[i] = working
	maxK := int32(inc.maxK)
	foot := inc.idxs[inc.offs[i]:inc.offs[i+1]]
	if working {
		inc.numWorking++
		for _, p := range foot {
			c := inc.counts[p]
			inc.counts[p] = c + 1
			if c < maxK {
				inc.hist[c]--
				inc.hist[c+1]++
			}
		}
	} else {
		inc.numWorking--
		for _, p := range foot {
			c := inc.counts[p]
			inc.counts[p] = c - 1
			if c <= maxK {
				inc.hist[c]--
				inc.hist[c-1]++
			}
		}
	}
}

// Rebuild resets every count and re-stamps exactly the sensors for which
// workingAt reports true. The checkpoint-resume path uses it to
// reconstruct the engine from a restored working set in one pass.
func (inc *Incremental) Rebuild(workingAt func(i int) bool) {
	clear(inc.counts)
	clear(inc.hist)
	clear(inc.working)
	inc.hist[0] = int64(len(inc.lat.points))
	inc.numWorking = 0
	for i := range inc.working {
		if workingAt(i) {
			inc.Set(i, true)
		}
	}
}

// FractionInto answers the current K-coverage fractions for K=1..MaxK
// into out (reallocated only when its capacity is short) and returns it.
// out[k-1] is the fraction of lattice points covered by at least k
// working sensors. The answer is a suffix sum over the histogram: O(maxK)
// work and, with an adequately sized buffer, zero allocations.
func (inc *Incremental) FractionInto(out []float64) []float64 {
	if cap(out) < inc.maxK {
		out = make([]float64, inc.maxK)
	}
	out = out[:inc.maxK]
	n := len(inc.lat.points)
	if n == 0 {
		for k := range out {
			out[k] = 0
		}
		return out
	}
	var ge int64
	for k := inc.maxK; k >= 1; k-- {
		ge += inc.hist[k]
		// float64(ge) is the exact integer the legacy path accumulates
		// via repeated ++, and the divisor is identical, so the quotient
		// is bit-identical.
		out[k-1] = float64(ge) / float64(n)
	}
	return out
}

// Fraction is FractionInto with a fresh result slice.
func (inc *Incremental) Fraction() []float64 {
	return inc.FractionInto(make([]float64, inc.maxK))
}

// FractionK returns the K-coverage fraction for a single k in 1..MaxK
// (lower values clamp to 1).
func (inc *Incremental) FractionK(k int) float64 {
	if k < 1 {
		k = 1
	}
	if k > inc.maxK {
		panic(fmt.Sprintf("coverage: FractionK(%d) beyond tracked maxK=%d", k, inc.maxK))
	}
	n := len(inc.lat.points)
	if n == 0 {
		return 0
	}
	var ge int64
	for c := inc.maxK; c >= k; c-- {
		ge += inc.hist[c]
	}
	return float64(ge) / float64(n)
}

// Covered reports whether lattice point p is covered by at least one
// working sensor.
func (inc *Incremental) Covered(p int) bool { return inc.counts[p] > 0 }

// CoveredMaskInto fills mask (reallocated only when its capacity is
// short) with, for each lattice point, whether at least one working
// sensor covers it — the incremental equivalent of Lattice.CoveredMask,
// which decides membership with the same squared-distance predicate.
func (inc *Incremental) CoveredMaskInto(mask []bool) []bool {
	if cap(mask) < len(inc.counts) {
		mask = make([]bool, len(inc.counts))
	}
	mask = mask[:len(inc.counts)]
	for i, c := range inc.counts {
		mask[i] = c > 0
	}
	return mask
}
