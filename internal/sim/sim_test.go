package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run(Forever)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order %v", order)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
	if e.Executed() != 3 {
		t.Errorf("executed = %d", e.Executed())
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run(Forever)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++ })
	e.Schedule(10, func() { ran++ })
	e.Run(5)
	if ran != 1 {
		t.Errorf("ran %d events before horizon, want 1", ran)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want horizon 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.Run(Forever)
	if ran != 2 {
		t.Errorf("resume: ran %d, want 2", ran)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(1, func() { ran = true })
	e.Cancel(ev)
	e.Cancel(ev) // idempotent
	e.Cancel(nil)
	e.Run(Forever)
	if ran {
		t.Error("cancelled event ran")
	}
	if !ev.Canceled() {
		t.Error("event not marked cancelled")
	}
}

func TestEngineCancelFromCallback(t *testing.T) {
	e := NewEngine()
	ran := false
	victim := e.Schedule(2, func() { ran = true })
	e.Schedule(1, func() { e.Cancel(victim) })
	e.Run(Forever)
	if ran {
		t.Error("event cancelled mid-run still ran")
	}
}

func TestEngineScheduleFromCallback(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(1, recurse)
		}
	}
	e.Schedule(1, recurse)
	e.Run(Forever)
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Errorf("clock = %v, want 100", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run(Forever)
	if ran != 1 {
		t.Errorf("Stop did not halt the run: ran=%d", ran)
	}
	e.Run(Forever)
	if ran != 2 {
		t.Errorf("run did not resume after Stop: ran=%d", ran)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(5, func() {
		e.At(1, func() { at = e.Now() }) // in the past: clamp to now
	})
	e.Run(Forever)
	if at != 5 {
		t.Errorf("past event ran at %v, want clamped to 5", at)
	}
	// Negative delay clamps too.
	e2 := NewEngine()
	ran := false
	e2.Schedule(-3, func() { ran = true })
	e2.Run(Forever)
	if !ran || e2.Now() != 0 {
		t.Error("negative delay should run at time 0")
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.Schedule(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatal("first step")
	}
	if !e.Step() || n != 2 {
		t.Fatal("second step")
	}
	if e.Step() {
		t.Fatal("step on empty queue should report false")
	}
}

// TestEngineRandomizedOrdering drives the heap with random timestamps and
// checks global ordering.
func TestEngineRandomizedOrdering(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		const n = 200
		var ran []float64
		for i := 0; i < n; i++ {
			d := rng.Float64() * 100
			e.Schedule(d, func() { ran = append(ran, e.Now()) })
		}
		e.Run(Forever)
		return len(ran) == n && sort.Float64sAreSorted(ran)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestTimer(t *testing.T) {
	e := NewEngine()
	fired := 0
	timer := e.NewTimer(func() { fired++ })
	if timer.Armed() {
		t.Error("fresh timer armed")
	}
	timer.Reset(5)
	if !timer.Armed() {
		t.Error("timer should be armed")
	}
	timer.Reset(2) // re-arm replaces the pending firing
	e.Run(10)
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
	if e.Now() != 10 {
		t.Errorf("clock %v", e.Now())
	}

	timer.Reset(1)
	timer.Stop()
	timer.Stop() // idempotent
	e.Run(20)
	if fired != 1 {
		t.Errorf("stopped timer fired; total %d", fired)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	ticks := 0
	ticker := e.NewTicker(10, func() { ticks++ })
	e.Run(55)
	if ticks != 5 {
		t.Errorf("ticks = %d, want 5", ticks)
	}
	ticker.Stop()
	ticker.Stop()
	e.Run(200)
	if ticks != 5 {
		t.Errorf("ticker kept firing after Stop: %d", ticks)
	}
}
