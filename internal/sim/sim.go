// Package sim implements the deterministic discrete-event engine the PEAS
// evaluation runs on. The paper used PARSEC; this engine provides the same
// facilities — a virtual clock, scheduled callbacks, and cancellable timers
// — with exact reproducibility: a run is a pure function of the initial
// schedule and the RNG seeds used by the model code.
//
// The engine is single-threaded. Model code runs inside event callbacks and
// must not retain the engine across goroutines.
package sim

import (
	"container/heap"
	"math"
)

// Time is a simulation timestamp in seconds since the start of the run.
type Time = float64

// Forever is a timestamp later than any event the engine will execute.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. The zero Event is invalid; obtain events
// through Engine.Schedule or Engine.At.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap position, -1 when not queued
	fn       func()
	canceled bool
}

// Time returns the timestamp the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq // FIFO among simultaneous events
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is the discrete-event simulator core.
type Engine struct {
	now      Time
	seq      uint64
	queue    eventQueue
	executed uint64
	stopped  bool

	// OnEvent, when set, observes every executed event: it runs with the
	// clock already advanced to the event's time, immediately before the
	// event callback. It must be read-only — scheduling, cancelling or
	// consuming randomness from an observer would perturb the trajectory.
	OnEvent func(t Time)
}

// NewEngine returns an engine with the clock at zero and an empty schedule.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// SetNow moves the clock to t without executing anything. It is the
// restore-side counterpart of a checkpoint: a freshly built engine is
// positioned at the snapshot time before the pending schedule is rebuilt.
// SetNow panics if events are already queued — moving the clock under a
// live schedule would let events execute in the past.
func (e *Engine) SetNow(t Time) {
	if len(e.queue) > 0 {
		panic("sim: SetNow with a non-empty schedule")
	}
	e.now = t
}

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events still scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay seconds of simulated time. A zero delay runs
// fn after all previously scheduled events at the current instant.
// Negative delays are clamped to zero; model code that needs to detect
// negative delays should validate before calling.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute simulation time when. Times in the past are
// clamped to the current instant.
func (e *Engine) At(when Time, fn func()) *Event {
	if when < e.now {
		when = e.now
	}
	e.seq++
	ev := &Event{when: when, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes ev from the schedule. Cancelling a nil, already-executed,
// or already-cancelled event is a no-op, so model code can cancel
// unconditionally.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Stop makes the current Run call return after the executing event
// completes. Subsequent Run calls resume from the stop point.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the schedule empties or the
// clock would pass until. On return the clock is at the time of the last
// executed event, or at until if the run was exhausted by the horizon.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.when > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.when
		e.executed++
		if e.OnEvent != nil {
			e.OnEvent(next.when)
		}
		next.fn()
	}
	if e.now < until && until != Forever {
		e.now = until
	}
}

// Step executes exactly one event and reports whether one was available.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev, ok := heap.Pop(&e.queue).(*Event)
	if !ok {
		return false
	}
	e.now = ev.when
	e.executed++
	if e.OnEvent != nil {
		e.OnEvent(ev.when)
	}
	ev.fn()
	return true
}
