// Package sim implements the deterministic discrete-event engine the PEAS
// evaluation runs on. The paper used PARSEC; this engine provides the same
// facilities — a virtual clock, scheduled callbacks, and cancellable timers
// — with exact reproducibility: a run is a pure function of the initial
// schedule and the RNG seeds used by the model code.
//
// The engine is single-threaded. Model code runs inside event callbacks and
// must not retain the engine across goroutines.
//
// The scheduler is built for an allocation-free hot path: events live in a
// free list and are reused, the priority queue is a concrete 4-ary min-heap
// over small value slots (no container/heap interface boxing), and the
// AtArg/ScheduleArg variants let callers schedule a shared callback with a
// pooled argument record instead of a fresh closure. Execution order is
// exactly the classic (when, seq) order: strictly increasing timestamps,
// FIFO among simultaneous events.
package sim

import (
	"math"
	"sync/atomic"
)

// Time is a simulation timestamp in seconds since the start of the run.
type Time = float64

// Forever is a timestamp later than any event the engine will execute.
const Forever Time = math.MaxFloat64

// Event is a scheduled callback. The zero Event is invalid; obtain events
// through Engine.Schedule, Engine.At or their Arg variants.
//
// Executed events are recycled through a free list, so a caller that holds
// an *Event must drop the reference once the event has fired (the Timer,
// Ticker and node-death holders all clear their pointer as the first
// statement of the callback). Calling Cancel on a stale pointer after the
// engine has reused the struct would cancel an unrelated event.
type Event struct {
	when Time
	seq  uint64
	fn   func()
	afn  func(any)
	arg  any
	// queued reports whether the event is still in the heap (live or
	// lazily cancelled). canceled survives until the struct is reused so
	// post-run Canceled() reads keep working.
	queued   bool
	canceled bool
	next     *Event // free-list link
}

// Time returns the timestamp the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// slot is one heap entry. The comparison keys are stored by value next to
// each other so sift operations stay inside one dense array and never
// dereference the event until it executes.
type slot struct {
	when Time
	seq  uint64
	ev   *Event
}

func (s slot) less(t slot) bool {
	if s.when != t.when {
		return s.when < t.when
	}
	return s.seq < t.seq // FIFO among simultaneous events
}

// eventQueue is a 4-ary min-heap ordered by (when, seq). 4-ary beats
// binary here: sift-down does one comparison row per cache line of slots
// and the tree is half as deep.
type eventQueue []slot

// shrinkMinCap is the capacity below which the queue never reallocates
// downward; above it, a drain to under a quarter of capacity releases the
// backing array so a transient event burst does not pin memory forever.
const shrinkMinCap = 4096

func (q *eventQueue) push(s slot) {
	heap := append(*q, s)
	i := len(heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !s.less(heap[p]) {
			break
		}
		heap[i] = heap[p]
		i = p
	}
	heap[i] = s
	*q = heap
}

// siftDown restores the heap property for the element at index i, assuming
// both subtrees below it are already heaps.
func siftDown(heap eventQueue, i int) {
	n := len(heap)
	s := heap[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if heap[j].less(heap[m]) {
				m = j
			}
		}
		if !heap[m].less(s) {
			break
		}
		heap[i] = heap[m]
		i = m
	}
	heap[i] = s
}

// pop removes and returns the minimum slot's event. The caller must know
// the queue is non-empty.
func (q *eventQueue) pop() *Event {
	heap := *q
	ev := heap[0].ev
	n := len(heap) - 1
	heap[0] = heap[n]
	heap[n] = slot{} // release the *Event for GC
	heap = heap[:n]
	if n > 0 {
		siftDown(heap, 0)
	}
	if cap(heap) >= shrinkMinCap && len(heap)*4 <= cap(heap) {
		smaller := make(eventQueue, len(heap), cap(heap)/2)
		copy(smaller, heap)
		heap = smaller
	}
	*q = heap
	return ev
}

// Supervisor is the cross-goroutine control block for a running engine.
// The engine is single-threaded and its methods must never be called from
// outside the run loop; the Supervisor is the one sanctioned side channel.
// A controller goroutine sets Stop to request a cooperative preemption and
// reads Beat to observe liveness: the run loop publishes its executed-event
// counter there every superviseStride events, so a Beat that stops moving
// while a run is in progress means the model code is wedged inside a
// callback (or the run has finished).
//
// Both fields are plain atomics — polling them from the hot loop costs two
// uncontended atomic ops every superviseStride events and zero allocations.
type Supervisor struct {
	// Stop, once true, makes the engine's Run return at the next poll
	// point with the clock held at the last executed event (unlike
	// Engine.Stop, the clock does not advance to the horizon, so a
	// checkpoint captured after the return carries the preemption time).
	Stop atomic.Bool
	// Beat is the engine's executed-event counter, published at every
	// poll point. Monotonically increasing while the run makes progress.
	Beat atomic.Uint64
}

// superviseStride is how many events pass between supervisor polls. At
// ~100ns/event the reaction latency is ~25µs — far below any watchdog
// window — while keeping the common case to one nil check per event.
const superviseStride = 256

// Engine is the discrete-event simulator core.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventQueue
	live      int // queued events not yet cancelled
	dead      int // cancelled events still occupying heap slots
	free      *Event
	executed  uint64
	stopped   bool
	preempted bool
	super     *Supervisor

	// OnEvent, when set, observes every executed event: it runs with the
	// clock already advanced to the event's time, immediately before the
	// event callback. It must be read-only — scheduling, cancelling or
	// consuming randomness from an observer would perturb the trajectory.
	OnEvent func(t Time)
}

// NewEngine returns an engine with the clock at zero and an empty schedule.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// SetNow moves the clock to t without executing anything. It is the
// restore-side counterpart of a checkpoint: a freshly built engine is
// positioned at the snapshot time before the pending schedule is rebuilt.
// SetNow panics if events are still scheduled — moving the clock under a
// live schedule would let events execute in the past. Lazily-cancelled
// events do not count as scheduled; they are drained here.
func (e *Engine) SetNow(t Time) {
	if e.live > 0 {
		panic("sim: SetNow with a non-empty schedule")
	}
	for len(e.queue) > 0 {
		e.release(e.queue.pop())
	}
	e.dead = 0
	e.now = t
}

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events still scheduled (cancelled events
// are removed lazily and never counted).
func (e *Engine) Pending() int { return e.live }

// alloc takes an event off the free list, or grows the pool.
func (e *Engine) alloc() *Event {
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.next = nil
		ev.canceled = false
	} else {
		ev = new(Event)
	}
	ev.queued = true
	return ev
}

// release clears an event's callback state and returns the struct to the
// free list. The canceled flag is kept until reuse so a holder can still
// observe Canceled() after the run.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	ev.queued = false
	ev.next = e.free
	e.free = ev
}

func (e *Engine) schedule(when Time, fn func(), afn func(any), arg any) *Event {
	if when < e.now {
		when = e.now
	}
	e.seq++
	ev := e.alloc()
	ev.when = when
	ev.seq = e.seq
	ev.fn = fn
	ev.afn = afn
	ev.arg = arg
	e.queue.push(slot{when: when, seq: e.seq, ev: ev})
	e.live++
	return ev
}

// Schedule runs fn after delay seconds of simulated time. A zero delay runs
// fn after all previously scheduled events at the current instant.
// Negative delays are clamped to zero; model code that needs to detect
// negative delays should validate before calling.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.schedule(e.now+delay, fn, nil, nil)
}

// At runs fn at the absolute simulation time when. Times in the past are
// clamped to the current instant.
func (e *Engine) At(when Time, fn func()) *Event {
	return e.schedule(when, fn, nil, nil)
}

// AtArg is the allocation-free variant of At: fn is a shared (typically
// package-level) function and arg carries the per-event state, so hot
// paths can schedule pooled argument records instead of fresh closures.
func (e *Engine) AtArg(when Time, fn func(any), arg any) *Event {
	return e.schedule(when, nil, fn, arg)
}

// ScheduleArg is the allocation-free variant of Schedule; see AtArg.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.schedule(e.now+delay, nil, fn, arg)
}

// Cancel removes ev from the schedule. Cancelling a nil, already-executed,
// or already-cancelled event is a no-op, so model code can cancel
// unconditionally. The callback and its argument are released immediately
// — a cancelled event must not pin captured model state — and the heap
// entry is dropped lazily when it reaches the front of the queue.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	if ev.queued {
		e.live--
		e.dead++
		// Cancelled entries are usually dropped lazily when they surface
		// at the queue head, but a model that keeps re-arming far-future
		// timers (battery-depletion deadlines move on every packet) would
		// grow the heap with tombstones that never surface. Compact once
		// they dominate: release their structs and re-heapify the rest.
		if e.dead >= 64 && e.dead*2 >= len(e.queue) {
			e.compact()
		}
	}
}

// compact removes every cancelled entry from the heap in one pass and
// restores the heap property bottom-up. Pop order is unaffected: it is
// determined by the strict (when, seq) total order, not the heap layout.
func (e *Engine) compact() {
	q := e.queue
	kept := q[:0]
	for _, s := range q {
		if s.ev.canceled {
			e.release(s.ev)
		} else {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = slot{}
	}
	e.queue = kept
	e.dead = 0
	for i := (len(kept) - 2) >> 2; i >= 0; i-- {
		siftDown(kept, i)
	}
}

// Stop makes the current Run call return after the executing event
// completes. Subsequent Run calls resume from the stop point.
func (e *Engine) Stop() { e.stopped = true }

// Supervise attaches (or, with nil, detaches) a supervisor control block.
// Attach before Run; the engine only reads the pointer from inside the run
// loop.
func (e *Engine) Supervise(s *Supervisor) { e.super = s }

// Preempted reports whether the most recent Run call returned because the
// attached Supervisor requested a stop, rather than by exhausting the
// schedule or reaching the horizon. A preempted engine keeps its clock at
// the last executed event and its pending schedule intact, so the run can
// either be resumed with another Run call or captured as a checkpoint.
func (e *Engine) Preempted() bool { return e.preempted }

// Run executes events in timestamp order until the schedule empties or the
// clock would pass until. On return the clock is at the time of the last
// executed event, or at until if the run was exhausted by the horizon.
func (e *Engine) Run(until Time) {
	e.stopped = false
	e.preempted = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0].ev
		if ev.canceled {
			e.release(e.queue.pop())
			e.dead--
			continue
		}
		if ev.when > until {
			break
		}
		e.queue.pop()
		e.live--
		when := ev.when
		e.now = when
		e.executed++
		if e.super != nil && e.executed%superviseStride == 0 {
			e.super.Beat.Store(e.executed)
			if e.super.Stop.Load() {
				e.stopped = true
				e.preempted = true
			}
		}
		if e.OnEvent != nil {
			e.OnEvent(when)
		}
		if ev.afn != nil {
			ev.afn(ev.arg)
		} else if ev.fn != nil {
			ev.fn()
		}
		e.release(ev)
	}
	// A supervisor preemption freezes the clock at the stop point so a
	// checkpoint captured afterwards is stamped with the preemption time;
	// every other early return keeps the legacy advance-to-horizon rule.
	if !e.preempted && e.now < until && until != Forever {
		e.now = until
	}
}

// Step executes exactly one event and reports whether one was available.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue[0].ev
		if ev.canceled {
			e.release(e.queue.pop())
			e.dead--
			continue
		}
		e.queue.pop()
		e.live--
		when := ev.when
		e.now = when
		e.executed++
		if e.OnEvent != nil {
			e.OnEvent(when)
		}
		if ev.afn != nil {
			ev.afn(ev.arg)
		} else if ev.fn != nil {
			ev.fn()
		}
		e.release(ev)
		return true
	}
	return false
}
