package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file pins the ordering contract of the pooled 4-ary queue against a
// textbook container/heap reference engine. Both implementations are driven
// through the same seeded trajectory — timestamp collisions, in-callback
// scheduling, cancellations (including a far-future band that only ever
// leaves the heap through compaction) — and must execute events in exactly
// the same order. Any divergence in (when, seq) semantics, lazy-cancel
// handling, or compaction would show up as a reordered trajectory here.

type refEvent struct {
	when     float64
	seq      uint64
	fn       func()
	canceled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	old[n] = nil
	*h = old[:n]
	return ev
}

// refEngine is the oracle: the straightforward binary-heap engine the
// pooled queue replaced, with identical (when, seq) semantics.
type refEngine struct {
	now  float64
	seq  uint64
	heap refHeap
}

func (e *refEngine) Now() float64 { return e.now }

func (e *refEngine) At(when float64, fn func()) any {
	if when < e.now {
		when = e.now
	}
	e.seq++
	ev := &refEvent{when: when, seq: e.seq, fn: fn}
	heap.Push(&e.heap, ev)
	return ev
}

func (e *refEngine) Cancel(h any) {
	ev := h.(*refEvent)
	ev.canceled = true
	ev.fn = nil
}

func (e *refEngine) Run(until float64) {
	for e.heap.Len() > 0 {
		ev := e.heap[0]
		if ev.canceled {
			heap.Pop(&e.heap)
			continue
		}
		if ev.when > until {
			break
		}
		heap.Pop(&e.heap)
		e.now = ev.when
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// schedulerUnderTest is the common surface the trajectory driver needs.
type schedulerUnderTest interface {
	Now() float64
	At(when float64, fn func()) any
	Cancel(h any)
	Run(until float64)
}

type engineAdapter struct{ *Engine }

func (a engineAdapter) At(when float64, fn func()) any { return a.Engine.At(when, fn) }
func (a engineAdapter) Cancel(h any)                   { a.Engine.Cancel(h.(*Event)) }

// driveTrajectory runs one seeded schedule/cancel/execute script against s
// and returns the order in which event IDs executed. The script only draws
// randomness in a sequence determined by execution order, so two
// implementations with identical ordering consume identical draws.
func driveTrajectory(s schedulerUnderTest, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var order []int
	nextID := 0
	type handleRec struct {
		id   int
		h    any
		open bool
	}
	var recs []*handleRec

	cancelRandom := func() {
		victim := recs[rng.Intn(len(recs))]
		if victim.open {
			victim.open = false
			s.Cancel(victim.h)
		}
	}

	var scheduleOne func(when float64, depth int)
	scheduleOne = func(when float64, depth int) {
		id := nextID
		nextID++
		rec := &handleRec{id: id, open: true}
		rec.h = s.At(when, func() {
			rec.open = false
			order = append(order, id)
			// Model code schedules follow-ups and cancels peers from inside
			// callbacks; exercise both.
			if depth < 3 && rng.Intn(4) == 0 {
				scheduleOne(s.Now()+float64(rng.Intn(8)), depth+1)
			}
			if rng.Intn(8) == 0 {
				cancelRandom()
			}
		})
		recs = append(recs, rec)
	}

	// Near-term burst with heavy timestamp collisions (forces FIFO
	// tie-breaking), plus a far-future band whose cancelled members can only
	// leave the pooled queue via compaction.
	for i := 0; i < 400; i++ {
		scheduleOne(float64(rng.Intn(40)), 0)
	}
	for i := 0; i < 300; i++ {
		scheduleOne(1000+float64(rng.Intn(20)), 0)
	}
	for i := 0; i < 250; i++ {
		cancelRandom()
	}
	s.Run(500)
	s.Run(2000)
	return order
}

func TestEngineMatchesReferenceHeap(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		want := driveTrajectory(&refEngine{}, seed)
		eng := NewEngine()
		got := driveTrajectory(engineAdapter{eng}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: executed %d events, reference executed %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: execution order diverges at position %d: got id %d, reference id %d",
					seed, i, got[i], want[i])
			}
		}
		if eng.Pending() != 0 {
			t.Fatalf("seed %d: %d events still pending after exhaustive run", seed, eng.Pending())
		}
	}
}
