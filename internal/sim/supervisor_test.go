package sim

import "testing"

// chain schedules a self-rescheduling event so the run loop always has
// work: each firing bumps *count and re-arms one tick later.
func chain(e *Engine, count *int) {
	var tick func()
	tick = func() {
		*count++
		e.Schedule(1, tick)
	}
	e.Schedule(1, tick)
}

func TestSupervisorPreempt(t *testing.T) {
	e := NewEngine()
	var sup Supervisor
	e.Supervise(&sup)
	ran := 0
	chain(e, &ran)
	// Request the stop from inside a callback: atomically visible at the
	// next poll boundary, exactly as a controller goroutine would be.
	stopAt := 3 * superviseStride / 2
	e.Schedule(float64(stopAt)+0.5, func() { sup.Stop.Store(true) })

	e.Run(1e9)

	if !e.Preempted() {
		t.Fatalf("Preempted() = false after supervisor stop")
	}
	if e.Pending() == 0 {
		t.Fatalf("preempted engine lost its pending schedule")
	}
	if e.Now() >= 1e9 {
		t.Fatalf("preempted clock advanced to horizon: now=%v", e.Now())
	}
	// The stop lands at the first poll boundary after the flag is set.
	if got := e.Executed(); got%superviseStride != 0 {
		t.Fatalf("stopped off a poll boundary: executed=%d", got)
	}
	if beat := sup.Beat.Load(); beat != e.Executed() {
		t.Fatalf("Beat=%d, want executed=%d", beat, e.Executed())
	}
}

func TestSupervisorResumeAfterPreempt(t *testing.T) {
	e := NewEngine()
	var sup Supervisor
	e.Supervise(&sup)
	ran := 0
	chain(e, &ran)
	e.Schedule(float64(superviseStride)+0.5, func() { sup.Stop.Store(true) })
	e.Run(1e6)
	if !e.Preempted() {
		t.Fatalf("expected preemption")
	}
	atStop := ran

	// Clearing the flag and re-running continues from the stop point.
	sup.Stop.Store(false)
	e.Run(float64(superviseStride) * 4)
	if e.Preempted() {
		t.Fatalf("Preempted() stuck after a clean horizon return")
	}
	if ran <= atStop {
		t.Fatalf("run did not resume: ran=%d atStop=%d", ran, atStop)
	}
	if e.Now() != float64(superviseStride)*4 {
		t.Fatalf("horizon return left clock at %v", e.Now())
	}
}

func TestSupervisorBeatAdvances(t *testing.T) {
	e := NewEngine()
	var sup Supervisor
	e.Supervise(&sup)
	ran := 0
	chain(e, &ran)
	e.Run(float64(superviseStride * 3))
	if beat := sup.Beat.Load(); beat < superviseStride {
		t.Fatalf("Beat=%d after %d events", beat, e.Executed())
	}
}

// TestSupervisorEngineStopUnaffected pins the legacy Engine.Stop contract:
// no supervisor involvement, Preempted stays false, and the clock still
// advances to the horizon.
func TestSupervisorEngineStopUnaffected(t *testing.T) {
	e := NewEngine()
	var sup Supervisor
	e.Supervise(&sup)
	ran := 0
	chain(e, &ran)
	e.Schedule(5.5, func() { e.Stop() })
	e.Run(100)
	if e.Preempted() {
		t.Fatalf("Engine.Stop must not read as a supervisor preemption")
	}
	if e.Now() != 100 {
		t.Fatalf("Engine.Stop changed the clock contract: now=%v", e.Now())
	}
}

// TestSupervisedRunAllocs guards the hot-path contract: polling an
// attached supervisor must stay allocation-free.
func TestSupervisedRunAllocs(t *testing.T) {
	e := NewEngine()
	var sup Supervisor
	e.Supervise(&sup)
	fn := func(any) {}
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(1, fn, nil)
		e.Run(e.Now() + 2)
	})
	if allocs != 0 {
		t.Fatalf("supervised run allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkScheduleRunArgSupervised(b *testing.B) {
	e := NewEngine()
	var sup Supervisor
	e.Supervise(&sup)
	n := 0
	fn := func(any) { n++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(1, fn, nil)
		e.Run(e.Now() + 2)
	}
}
