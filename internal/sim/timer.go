package sim

// Timer is a restartable single-shot timer bound to an Engine. It mirrors
// the shape of time.Timer so protocol code reads naturally in both the
// simulator and the live runtime. Arming a timer is allocation-free: the
// firing event carries the timer itself as its argument instead of a
// per-Reset closure.
type Timer struct {
	engine *Engine
	event  *Event
	fn     func()
}

// timerFire is the shared firing callback for every Timer.
func timerFire(a any) {
	t := a.(*Timer)
	t.event = nil
	t.fn()
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{engine: e, fn: fn}
}

// Reset (re)arms the timer to fire after delay. An armed timer is
// cancelled first, so at most one firing is pending at a time.
func (t *Timer) Reset(delay Time) {
	t.Stop()
	t.event = t.engine.ScheduleArg(delay, timerFire, t)
}

// Stop disarms the timer. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.event != nil {
		t.engine.Cancel(t.event)
		t.event = nil
	}
}

// Armed reports whether a firing is pending.
func (t *Timer) Armed() bool { return t.event != nil }

// Ticker repeatedly invokes a callback at a fixed period until stopped.
type Ticker struct {
	engine *Engine
	event  *Event
	period Time
	fn     func()
}

// tickerTick is the shared per-tick callback for every Ticker; it re-arms
// before invoking the user callback so the callback sees NextAt() of the
// following tick, and consumes no allocations per tick.
func tickerTick(a any) {
	t := a.(*Ticker)
	t.event = t.engine.ScheduleArg(t.period, tickerTick, t)
	t.fn()
}

// NewTicker returns a started ticker that calls fn every period seconds,
// with the first call after one full period.
func (e *Engine) NewTicker(period Time, fn func()) *Ticker {
	t := &Ticker{engine: e, period: period, fn: fn}
	t.event = e.ScheduleArg(period, tickerTick, t)
	return t
}

// NewTickerAt returns a started ticker whose first call happens at the
// absolute time first, then every period seconds after. Restoring a
// checkpoint uses it to re-arm a periodic activity at the exact phase it
// had when the snapshot was taken.
func (e *Engine) NewTickerAt(first, period Time, fn func()) *Ticker {
	t := &Ticker{engine: e, period: period, fn: fn}
	t.event = e.AtArg(first, tickerTick, t)
	return t
}

// NextAt returns the absolute time of the next tick, or Forever when the
// ticker is stopped. Checkpoints record it to preserve the tick phase.
func (t *Ticker) NextAt() Time {
	if t.event == nil {
		return Forever
	}
	return t.event.Time()
}

// Stop halts future ticks. Stop is idempotent.
func (t *Ticker) Stop() {
	if t.event != nil {
		t.engine.Cancel(t.event)
		t.event = nil
	}
}
