package sim

// Timer is a restartable single-shot timer bound to an Engine. It mirrors
// the shape of time.Timer so protocol code reads naturally in both the
// simulator and the live runtime.
type Timer struct {
	engine *Engine
	event  *Event
	fn     func()
}

// NewTimer returns a stopped timer that will invoke fn when it fires.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{engine: e, fn: fn}
}

// Reset (re)arms the timer to fire after delay. An armed timer is
// cancelled first, so at most one firing is pending at a time.
func (t *Timer) Reset(delay Time) {
	t.Stop()
	t.event = t.engine.Schedule(delay, t.fire)
}

func (t *Timer) fire() {
	t.event = nil
	t.fn()
}

// Stop disarms the timer. Stopping an unarmed timer is a no-op.
func (t *Timer) Stop() {
	if t.event != nil {
		t.engine.Cancel(t.event)
		t.event = nil
	}
}

// Armed reports whether a firing is pending.
func (t *Timer) Armed() bool { return t.event != nil }

// Ticker repeatedly invokes a callback at a fixed period until stopped.
type Ticker struct {
	engine *Engine
	event  *Event
	period Time
	fn     func()
}

// NewTicker returns a started ticker that calls fn every period seconds,
// with the first call after one full period.
func (e *Engine) NewTicker(period Time, fn func()) *Ticker {
	t := &Ticker{engine: e, period: period, fn: fn}
	t.event = e.Schedule(period, t.tick)
	return t
}

// NewTickerAt returns a started ticker whose first call happens at the
// absolute time first, then every period seconds after. Restoring a
// checkpoint uses it to re-arm a periodic activity at the exact phase it
// had when the snapshot was taken.
func (e *Engine) NewTickerAt(first, period Time, fn func()) *Ticker {
	t := &Ticker{engine: e, period: period, fn: fn}
	t.event = e.At(first, t.tick)
	return t
}

// NextAt returns the absolute time of the next tick, or Forever when the
// ticker is stopped. Checkpoints record it to preserve the tick phase.
func (t *Ticker) NextAt() Time {
	if t.event == nil {
		return Forever
	}
	return t.event.Time()
}

func (t *Ticker) tick() {
	t.event = t.engine.Schedule(t.period, t.tick)
	t.fn()
}

// Stop halts future ticks. Stop is idempotent.
func (t *Ticker) Stop() {
	if t.event != nil {
		t.engine.Cancel(t.event)
		t.event = nil
	}
}
