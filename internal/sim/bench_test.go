package sim

import "testing"

// Microbenchmarks for the event-engine hot path. Run with
//
//	go test ./internal/sim -run=NONE -bench=. -benchmem
//
// The Arg variants must report 0 allocs/op in steady state; the closure
// variants pay one allocation per closure and exist for cold paths.

func BenchmarkScheduleRunClosure(b *testing.B) {
	e := NewEngine()
	n := 0
	fn := func() { n++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		e.Run(e.Now() + 2)
	}
}

func BenchmarkScheduleRunArg(b *testing.B) {
	e := NewEngine()
	n := 0
	fn := func(any) { n++ }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(1, fn, nil)
		e.Run(e.Now() + 2)
	}
}

// BenchmarkQueueChurn keeps a deep queue (1024 pending events) while
// scheduling and executing, exercising full-depth heap sifts.
func BenchmarkQueueChurn(b *testing.B) {
	e := NewEngine()
	fn := func(any) {}
	for i := 0; i < 1024; i++ {
		e.ScheduleArg(float64(i+1), fn, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleArg(1025, fn, nil)
		e.Step()
	}
}

// BenchmarkCancelRearm models the battery-death pattern: a far-future
// event is cancelled and re-armed over and over, leaving tombstones that
// only compaction can reclaim.
func BenchmarkCancelRearm(b *testing.B) {
	e := NewEngine()
	fn := func(any) {}
	b.ReportAllocs()
	var ev *Event
	for i := 0; i < b.N; i++ {
		e.Cancel(ev)
		ev = e.AtArg(1e9+float64(i), fn, nil)
	}
}

func BenchmarkTicker(b *testing.B) {
	e := NewEngine()
	n := 0
	tk := e.NewTicker(1, func() { n++ })
	defer tk.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
