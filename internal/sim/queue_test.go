package sim

import (
	"runtime"
	"testing"
	"time"
)

// Edge-case coverage for the pooled event queue: lazy cancellation at the
// heap head, FIFO under mass timestamp collision, the SetNow safety panic,
// callback release on Cancel (the event-retention leak fix), and the
// allocation-free steady state.

func TestCancelHeadThenPop(t *testing.T) {
	e := NewEngine()
	var got []int
	head := e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.At(3, func() { got = append(got, 3) })
	e.Cancel(head)
	if p := e.Pending(); p != 2 {
		t.Fatalf("Pending() = %d after head cancel, want 2", p)
	}
	// The tombstone is still the physical heap head; the first pop must
	// skip and release it, then execute the survivors in order.
	e.Run(Forever)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("executed %v, want [2 3]", got)
	}
	if p := e.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after run, want 0", p)
	}
}

func TestCancelHeadThenStep(t *testing.T) {
	e := NewEngine()
	fired := false
	head := e.At(1, func() { t.Fatal("cancelled head executed") })
	e.At(2, func() { fired = true })
	e.Cancel(head)
	if !e.Step() {
		t.Fatal("Step found no event despite a live one behind the tombstone")
	}
	if !fired {
		t.Fatal("Step executed the wrong event")
	}
	if e.Step() {
		t.Fatal("Step executed an event from an empty schedule")
	}
}

func TestMassSameTimestampFIFO(t *testing.T) {
	const n = 10000
	e := NewEngine()
	got := make([]int, 0, n)
	for i := 0; i < n; i++ {
		i := i
		e.At(7, func() { got = append(got, i) })
	}
	e.Run(Forever)
	if len(got) != n {
		t.Fatalf("executed %d events, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at position %d: got id %d", i, v)
		}
	}
}

func TestSetNowPanicsWithLiveSchedule(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetNow with a live schedule did not panic")
		}
	}()
	e.SetNow(10)
}

func TestSetNowDrainsCancelledEvents(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(5, func() {})
	b := e.Schedule(6, func() {})
	e.Cancel(a)
	e.Cancel(b)
	// Only tombstones remain; SetNow must treat the schedule as empty and
	// drain them rather than panic.
	e.SetNow(42)
	if e.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

// TestCancelReleasesCallback pins the event-retention fix: cancelling an
// event must drop its callback (and anything the closure captured)
// immediately, not when the tombstone eventually surfaces from the heap —
// for far-future timers that can be never.
func TestCancelReleasesCallback(t *testing.T) {
	type payload struct{ buf []byte }
	e := NewEngine()
	finalized := make(chan struct{})
	p := &payload{buf: make([]byte, 1<<20)}
	runtime.SetFinalizer(p, func(*payload) { close(finalized) })
	ev := e.Schedule(1e9, func() { _ = p.buf })
	p = nil
	e.Cancel(ev)
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-finalized:
			return
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
	t.Fatal("cancelled event still retains its callback's captured state")
}

// TestCompactionReleasesTombstones verifies that a heap dominated by
// cancelled far-future events is compacted in place: the tombstones leave
// the queue without ever being popped, and the survivors still run in
// order.
func TestCompactionReleasesTombstones(t *testing.T) {
	e := NewEngine()
	var events []*Event
	for i := 0; i < 500; i++ {
		events = append(events, e.At(1e6+float64(i), func() {}))
	}
	var got []int
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	for _, ev := range events {
		e.Cancel(ev)
	}
	// Compaction triggers once tombstones dominate; the physical queue must
	// have shed them while keeping the two live events.
	if len(e.queue) >= 64 {
		t.Fatalf("queue still holds %d slots after mass cancel, want < 64", len(e.queue))
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run(Forever)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("executed %v, want [1 2]", got)
	}
}

// TestSteadyStateDoesNotAllocate verifies the pooled hot path: once the
// free list is primed, a schedule→execute cycle through the Arg variants
// performs zero heap allocations.
func TestSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	fired := 0
	fn := func(any) { fired++ }
	if avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleArg(1, fn, nil)
		e.Run(e.Now() + 2)
	}); avg != 0 {
		t.Fatalf("schedule/run cycle allocates %.1f objects per event, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("callback never ran")
	}
}
