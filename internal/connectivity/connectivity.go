// Package connectivity analyzes the working-node topology PEAS produces,
// implementing the checks behind the paper's §3 asymptotic-connectivity
// analysis: the "peas" separation property (no two working nodes closer
// than Rp), the minimum working-neighbor distance bound (1+√5)·Rp, and
// graph connectivity of the working set under a transmitting range Rt.
package connectivity

import (
	"math"

	"peas/internal/geom"
	"peas/internal/stats"
)

// SeparationBound is the §3 geometric constant: when every grid cell of
// size Rp contains a node, each working node has another working node
// within (1+√5)·Rp, and Rt >= (1+√5)·Rp guarantees asymptotic
// connectivity (Theorem 3.1).
var SeparationBound = 1 + math.Sqrt(5)

// Analysis summarizes the working-set topology at one instant.
type Analysis struct {
	// Working is the number of working nodes analyzed.
	Working int
	// Components is the number of connected components under range Rt
	// (0 when there are no working nodes).
	Components int
	// Connected reports Components <= 1.
	Connected bool
	// MinPairDist is the smallest distance between any two working
	// nodes (+Inf when fewer than two).
	MinPairDist float64
	// MaxNearestDist is the largest nearest-working-neighbor distance
	// (+Inf when fewer than two); Lemma 3.2 bounds it by (1+√5)·Rp for
	// interior nodes of a dense deployment.
	MaxNearestDist float64
}

// Analyze computes an Analysis of the given working-node positions with
// transmitting range rt inside field.
func Analyze(field geom.Field, working []geom.Point, rt float64) Analysis {
	a := Analysis{
		Working:        len(working),
		MinPairDist:    math.Inf(1),
		MaxNearestDist: math.Inf(1),
	}
	if len(working) == 0 {
		return a
	}
	if len(working) == 1 {
		a.Components = 1
		a.Connected = true
		return a
	}

	idx := geom.NewIndex(field, working, rt)
	uf := stats.NewUnionFind(len(working))
	nearest := make([]float64, len(working))
	for i := range nearest {
		nearest[i] = math.Inf(1)
	}
	for i, p := range working {
		i := i
		idx.Within(p, rt, func(j int, dist float64) {
			if j == i {
				return
			}
			uf.Union(i, j)
			if dist < nearest[i] {
				nearest[i] = dist
			}
			if dist < a.MinPairDist {
				a.MinPairDist = dist
			}
		})
	}
	// Nearest neighbors beyond rt are not seen by the index pass above;
	// fall back to a direct scan for nodes still unresolved. Working
	// sets are small (O(100)), so the quadratic fallback is cheap.
	for i := range working {
		if !math.IsInf(nearest[i], 1) {
			continue
		}
		for j := range working {
			if i == j {
				continue
			}
			if d := working[i].Dist(working[j]); d < nearest[i] {
				nearest[i] = d
			}
			if working[i].Dist(working[j]) < a.MinPairDist {
				a.MinPairDist = working[i].Dist(working[j])
			}
		}
	}
	a.MaxNearestDist = 0
	for _, d := range nearest {
		if d > a.MaxNearestDist {
			a.MaxNearestDist = d
		}
	}
	a.Components = uf.Components()
	a.Connected = a.Components <= 1
	return a
}

// PathExists reports whether positions a and b are connected through the
// given relay positions, where every hop (including the first from a and
// the last to b) must be at most rt. It runs a breadth-first search over
// the relay set.
func PathExists(field geom.Field, relays []geom.Point, a, b geom.Point, rt float64) bool {
	if a.Dist(b) <= rt {
		return true
	}
	if len(relays) == 0 {
		return false
	}
	idx := geom.NewIndex(field, relays, rt)
	visited := make([]bool, len(relays))
	queue := make([]int, 0, len(relays))
	idx.Within(a, rt, func(i int, _ float64) {
		if !visited[i] {
			visited[i] = true
			queue = append(queue, i)
		}
	})
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if relays[cur].Dist(b) <= rt {
			return true
		}
		idx.Within(relays[cur], rt, func(j int, _ float64) {
			if !visited[j] {
				visited[j] = true
				queue = append(queue, j)
			}
		})
	}
	return false
}

// ShortestPath returns the minimum-hop relay path between a and b through
// relays with per-hop range rt, as indices into relays. It returns
// (nil, true) when a reaches b directly and (nil, false) when no path
// exists.
func ShortestPath(field geom.Field, relays []geom.Point, a, b geom.Point, rt float64) ([]int, bool) {
	if a.Dist(b) <= rt {
		return nil, true
	}
	if len(relays) == 0 {
		return nil, false
	}
	idx := geom.NewIndex(field, relays, rt)
	prev := make([]int, len(relays))
	visited := make([]bool, len(relays))
	for i := range prev {
		prev[i] = -1
	}
	queue := make([]int, 0, len(relays))
	idx.Within(a, rt, func(i int, _ float64) {
		if !visited[i] {
			visited[i] = true
			prev[i] = -2 // reached directly from a
			queue = append(queue, i)
		}
	})
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if relays[cur].Dist(b) <= rt {
			var path []int
			for at := cur; at >= 0; at = prev[at] {
				path = append(path, at)
				if prev[at] == -2 {
					break
				}
			}
			// Reverse into a->b order.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			return path, true
		}
		idx.Within(relays[cur], rt, func(j int, _ float64) {
			if !visited[j] {
				visited[j] = true
				prev[j] = cur
				queue = append(queue, j)
			}
		})
	}
	return nil, false
}
