package connectivity

import (
	"math"
	"testing"

	"peas/internal/geom"
	"peas/internal/stats"
)

func TestSeparationBoundValue(t *testing.T) {
	if math.Abs(SeparationBound-(1+math.Sqrt(5))) > 1e-15 {
		t.Errorf("bound = %v", SeparationBound)
	}
}

func TestAnalyzeEmptyAndSingle(t *testing.T) {
	f := geom.NewField(10, 10)
	a := Analyze(f, nil, 5)
	if a.Working != 0 || a.Connected || a.Components != 0 {
		t.Errorf("empty: %+v", a)
	}
	a = Analyze(f, []geom.Point{{X: 1, Y: 1}}, 5)
	if a.Working != 1 || !a.Connected || a.Components != 1 {
		t.Errorf("single: %+v", a)
	}
}

func TestAnalyzeLine(t *testing.T) {
	f := geom.NewField(20, 20)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 6, Y: 0}, {X: 9, Y: 0}}
	a := Analyze(f, pts, 3)
	if !a.Connected || a.Components != 1 {
		t.Errorf("chain should be connected: %+v", a)
	}
	if math.Abs(a.MinPairDist-3) > 1e-9 || math.Abs(a.MaxNearestDist-3) > 1e-9 {
		t.Errorf("distances: %+v", a)
	}
	// Shrink the range below the spacing: all isolated.
	a = Analyze(f, pts, 2.9)
	if a.Components != 4 || a.Connected {
		t.Errorf("isolated nodes: %+v", a)
	}
	// Nearest-neighbor distances must still be found beyond the range.
	if math.Abs(a.MaxNearestDist-3) > 1e-9 {
		t.Errorf("fallback nearest: %+v", a)
	}
}

func TestAnalyzeTwoClusters(t *testing.T) {
	f := geom.NewField(40, 40)
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, // cluster A
		{X: 30, Y: 30}, {X: 32, Y: 30}, // cluster B
	}
	a := Analyze(f, pts, 5)
	if a.Components != 2 || a.Connected {
		t.Errorf("two clusters: %+v", a)
	}
}

func TestPathExists(t *testing.T) {
	f := geom.NewField(50, 50)
	src, dst := geom.Point{X: 0, Y: 0}, geom.Point{X: 40, Y: 0}
	// Direct: too far without relays.
	if PathExists(f, nil, src, dst, 10) {
		t.Error("no relays: path should not exist")
	}
	if !PathExists(f, nil, src, geom.Point{X: 5, Y: 0}, 10) {
		t.Error("direct reach failed")
	}
	// A relay chain at 8 m spacing bridges the gap.
	var relays []geom.Point
	for x := 8.0; x < 40; x += 8 {
		relays = append(relays, geom.Point{X: x, Y: 0})
	}
	if !PathExists(f, relays, src, dst, 10) {
		t.Error("relay chain: path should exist")
	}
	// Break the chain.
	broken := append([]geom.Point(nil), relays...)
	broken = append(broken[:2], broken[3:]...) // remove the relay at x=24
	if PathExists(f, broken, src, dst, 10) {
		t.Error("broken chain: path should not exist")
	}
}

func TestShortestPathHops(t *testing.T) {
	f := geom.NewField(50, 50)
	src, dst := geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 0}
	relays := []geom.Point{
		{X: 10, Y: 0}, {X: 20, Y: 0}, // short chain
		{X: 5, Y: 5}, {X: 12, Y: 5}, {X: 19, Y: 5}, {X: 26, Y: 5}, // longer detour
	}
	path, ok := ShortestPath(f, relays, src, dst, 10)
	if !ok {
		t.Fatal("path should exist")
	}
	if len(path) != 2 || path[0] != 0 || path[1] != 1 {
		t.Errorf("path = %v, want the 2-hop chain [0 1]", path)
	}
	// Direct reach returns an empty path.
	path, ok = ShortestPath(f, relays, src, geom.Point{X: 9, Y: 0}, 10)
	if !ok || path != nil {
		t.Errorf("direct: (%v, %v)", path, ok)
	}
	// Unreachable.
	if _, ok := ShortestPath(f, nil, src, dst, 10); ok {
		t.Error("no relays: should fail")
	}
}

func TestShortestPathHopsAreValid(t *testing.T) {
	f := geom.NewField(50, 50)
	rng := stats.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		relays := geom.UniformDeploy(f, 60, rng)
		src := geom.Point{X: 1, Y: 1}
		dst := geom.Point{X: 49, Y: 49}
		path, ok := ShortestPath(f, relays, src, dst, 10)
		if !ok {
			continue
		}
		prev := src
		for _, i := range path {
			if prev.Dist(relays[i]) > 10+1e-9 {
				t.Fatalf("hop too long: %v -> %v", prev, relays[i])
			}
			prev = relays[i]
		}
		if prev.Dist(dst) > 10+1e-9 {
			t.Fatalf("last hop too long: %v -> %v", prev, dst)
		}
		if !PathExists(f, relays, src, dst, 10) {
			t.Fatal("ShortestPath found a path PathExists denies")
		}
	}
}
