package metrics

import (
	"math"
	"sync"
)

// Histogram bucket geometry: HDR-style log-linear. Values at or below
// histMinValue land in bucket 0; above it, each power-of-two octave is
// divided into histSubBuckets linear sub-buckets, so the relative
// quantile error is bounded by 1/histSubBuckets (~6%) across the whole
// range without pre-declaring bounds. With a 1µs floor and 64 octaves
// the geometry spans from sub-microsecond to ~5.8×10^5 years, so no
// observable latency can overflow it.
const (
	histMinValue   = 1e-6
	histSubBuckets = 16
	histOctaves    = 64
	histBuckets    = 1 + histOctaves*histSubBuckets
)

// Histogram is a mutex-safe log-linear histogram for latency-style
// observations (non-negative float64 values, conventionally seconds).
// It records into fixed log-linear buckets, so Observe is O(1), memory
// is constant, and quantile reads are a single bucket walk. All methods
// are safe for concurrent use; the jobqueue pool shares one histogram
// across every worker and the load generator shares one across every
// in-flight request.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	count  uint64
	sum    float64
	max    float64
	min    float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its log-linear bucket.
func bucketIndex(v float64) int {
	if v <= histMinValue || math.IsNaN(v) {
		return 0
	}
	// frexp-based octave: v/histMinValue in [2^e, 2^(e+1)) with
	// frac in [0.5, 1).
	frac, exp := math.Frexp(v / histMinValue)
	octave := exp - 1
	if octave >= histOctaves {
		return histBuckets - 1
	}
	// frac*2 is in [1, 2); its fractional part selects the linear
	// sub-bucket within the octave.
	sub := int((frac*2 - 1) * histSubBuckets)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return 1 + octave*histSubBuckets + sub
}

// bucketUpperBound is the inclusive upper edge of a bucket.
func bucketUpperBound(i int) float64 {
	if i <= 0 {
		return histMinValue
	}
	i--
	octave := i / histSubBuckets
	sub := i % histSubBuckets
	return histMinValue * math.Ldexp(1+float64(sub+1)/histSubBuckets, octave)
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	i := bucketIndex(v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if h.count == 1 || v < h.min {
		h.min = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]): the
// upper edge of the bucket holding the rank-⌈q·count⌉ observation,
// clamped to the exact observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			ub := bucketUpperBound(i)
			if ub > h.max {
				ub = h.max
			}
			return ub
		}
	}
	return h.max
}

// Quantiles returns upper bounds for several quantiles under one lock,
// so the set is consistent even while writers are active.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.quantileLocked(q)
	}
	return out
}

// HistogramBucket is one non-empty bucket of a snapshot: Count
// observations with values at or below UpperBound (and above the
// previous bucket's bound). Counts are per-bucket, not cumulative.
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, the form the
// Prometheus renderer and the loadgen JSON report consume.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot returns a consistent copy: totals plus the non-empty buckets
// in ascending bound order.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c > 0 {
			snap.Buckets = append(snap.Buckets, HistogramBucket{
				UpperBound: bucketUpperBound(i),
				Count:      c,
			})
		}
	}
	return snap
}
