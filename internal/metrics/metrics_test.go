package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("test")
	if s.Name() != "test" || s.Len() != 0 {
		t.Fatal("fresh series")
	}
	if _, ok := s.Last(); ok {
		t.Error("empty series has no last point")
	}
	s.Record(1, 10)
	s.Record(2, 20)
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	last, ok := s.Last()
	if !ok || last.T != 2 || last.V != 20 {
		t.Errorf("last = %+v", last)
	}
	pts := s.Points()
	pts[0].V = 999
	if p, _ := s.Last(); p.V == 999 {
		t.Error("Points aliased internal storage")
	}
	if s.MaxV() != 20 {
		t.Errorf("max = %v", s.MaxV())
	}
}

func TestSeriesFirstBelow(t *testing.T) {
	s := NewSeries("x")
	for i, v := range []float64{1, 0.95, 0.85, 0.95, 0.85, 0.85, 0.85} {
		s.Record(float64(i), v)
	}
	tests := []struct {
		threshold float64
		sustain   int
		want      float64
		dropped   bool
	}{
		{0.9, 1, 2, true},
		{0.9, 2, 4, true},
		{0.9, 3, 4, true},
		{0.5, 1, 6, false}, // never below 0.5
		{0.9, 0, 2, true},  // sustain clamps to 1
	}
	for _, tc := range tests {
		got, dropped := s.FirstBelow(tc.threshold, tc.sustain)
		if got != tc.want || dropped != tc.dropped {
			t.Errorf("FirstBelow(%v, %d) = (%v, %v), want (%v, %v)",
				tc.threshold, tc.sustain, got, dropped, tc.want, tc.dropped)
		}
	}
	empty := NewSeries("e")
	if _, dropped := empty.FirstBelow(1, 1); dropped {
		t.Error("empty series reported a drop")
	}
}

func TestSeriesMeanAfter(t *testing.T) {
	s := NewSeries("x")
	s.Record(0, 100) // boot transient, excluded
	s.Record(300, 10)
	s.Record(400, 20)
	if got := s.MeanAfter(300); got != 15 {
		t.Errorf("MeanAfter = %v, want 15", got)
	}
	if got := s.MeanAfter(1000); got != 0 {
		t.Errorf("MeanAfter beyond series = %v", got)
	}
}

func TestRatio(t *testing.T) {
	r := NewRatio("delivery")
	if r.Value() != 1 {
		t.Error("empty ratio should be 1")
	}
	r.Observe(10, true)
	r.Observe(20, true)
	r.Observe(30, false)
	if math.Abs(r.Value()-2.0/3) > 1e-12 {
		t.Errorf("ratio = %v", r.Value())
	}
	gen, succ := r.Counts()
	if gen != 3 || succ != 2 {
		t.Errorf("counts = %d/%d", succ, gen)
	}
	if r.Series().Len() != 3 {
		t.Errorf("series len = %d", r.Series().Len())
	}
	// The cumulative series records the running ratio.
	pts := r.Series().Points()
	if pts[0].V != 1 || pts[1].V != 1 || math.Abs(pts[2].V-2.0/3) > 1e-12 {
		t.Errorf("series = %+v", pts)
	}
}

func TestRatioLifetimeSemantics(t *testing.T) {
	// The paper's delivery lifetime: cumulative ratio crosses 90%.
	r := NewRatio("d")
	for i := 0; i < 100; i++ {
		r.Observe(float64(i), true)
	}
	// Failures begin: the cumulative ratio decays slowly.
	for i := 100; i < 200; i++ {
		r.Observe(float64(i), false)
	}
	lt, dropped := r.Series().FirstBelow(0.9, 1)
	if !dropped {
		t.Fatal("ratio should cross 90%")
	}
	// 100 successes / (100 + n) < 0.9 at n = 12 -> t = 111.
	if lt != 111 {
		t.Errorf("lifetime = %v, want 111", lt)
	}
}

// TestCountersConcurrent hammers one Counters value from many goroutines,
// mixing writers with readers of every accessor. The simulation service
// shares a single counter set across its worker pool, so this must hold
// under -race and the totals must come out exact.
func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	const (
		writers   = 8
		perWriter = 2000
	)
	names := []string{"alpha", "beta", "gamma", "delta"}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(names[(w+i)%len(names)], 1)
			}
		}(w)
	}
	// Concurrent readers exercise Get, Names and Snapshot while writes
	// are in flight.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = c.Get("alpha")
				_ = c.Names()
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	close(done)
	readers.Wait()

	var total uint64
	for _, name := range c.Names() {
		total += c.Get(name)
	}
	if want := uint64(writers * perWriter); total != want {
		t.Fatalf("lost updates: total = %d, want %d", total, want)
	}
	if got := len(c.Names()); got != len(names) {
		t.Fatalf("names = %d, want %d", got, len(names))
	}
}
