package metrics

import (
	"math"
	"sync"
	"testing"

	"peas/internal/stats"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram not zero-valued: count=%d sum=%g max=%g p50=%g",
			h.Count(), h.Sum(), h.Max(), h.Quantile(0.5))
	}
	if snap := h.Snapshot(); snap.Count != 0 || len(snap.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
}

// TestHistogramBucketGeometry pins the log-linear invariants: indexes
// are monotone in the value, every value falls at or below its bucket's
// upper bound and above the previous bucket's, and the relative error
// of the bound is within 1/histSubBuckets.
func TestHistogramBucketGeometry(t *testing.T) {
	prev := -1
	for v := 1e-7; v < 1e5; v *= 1.07 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucket index not monotone at v=%g: %d after %d", v, i, prev)
		}
		prev = i
		ub := bucketUpperBound(i)
		if v > ub {
			t.Fatalf("v=%g above its bucket bound %g (bucket %d)", v, ub, i)
		}
		if i > 0 {
			lb := bucketUpperBound(i - 1)
			if v <= lb && bucketIndex(v) == i {
				t.Fatalf("v=%g at or below previous bound %g but in bucket %d", v, lb, i)
			}
		}
		if v > histMinValue {
			if rel := (ub - v) / v; rel > 2.0/histSubBuckets {
				t.Fatalf("v=%g: bound %g has relative error %g", v, ub, rel)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 ms, exact ranks known.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Max(); got != 1.0 {
		t.Errorf("max = %g, want 1.0", got)
	}
	checks := []struct{ q, want float64 }{
		{0.50, 0.500},
		{0.90, 0.900},
		{0.99, 0.990},
		{1.00, 1.000},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		// The log-linear bound overshoots by at most one sub-bucket.
		if got < c.want || got > c.want*(1+2.0/histSubBuckets) {
			t.Errorf("p%g = %g, want within [%g, %g]", c.q*100, got,
				c.want, c.want*(1+2.0/histSubBuckets))
		}
	}
	qs := h.Quantiles(0.5, 0.99)
	if qs[0] != h.Quantile(0.5) || qs[1] != h.Quantile(0.99) {
		t.Error("Quantiles disagrees with Quantile")
	}
	if mean := h.Mean(); math.Abs(mean-0.5005) > 1e-9 {
		t.Errorf("mean = %g, want 0.5005", mean)
	}
}

func TestHistogramSnapshotCumulates(t *testing.T) {
	h := NewHistogram()
	vals := []float64{0, 1e-7, 0.001, 0.001, 0.25, 3.5, -1}
	for _, v := range vals {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != uint64(len(vals)) {
		t.Fatalf("snapshot count = %d, want %d", snap.Count, len(vals))
	}
	var total uint64
	last := -1.0
	for _, b := range snap.Buckets {
		if b.UpperBound <= last {
			t.Fatalf("bucket bounds not ascending: %g after %g", b.UpperBound, last)
		}
		last = b.UpperBound
		total += b.Count
	}
	if total != snap.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, snap.Count)
	}
	if snap.Max != 3.5 {
		t.Errorf("snapshot max = %g", snap.Max)
	}
}

// TestHistogramConcurrent exercises the histogram from many goroutines;
// under -race this is the thread-safety proof, and the final count and
// sum must be exact regardless of interleaving.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const writers = 8
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(int64(w))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64())
				if i%100 == 0 {
					_ = h.Quantile(0.99)
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Errorf("count = %d, want %d", h.Count(), writers*per)
	}
	if p100 := h.Quantile(1); p100 > 1 {
		t.Errorf("p100 = %g for values in [0,1)", p100)
	}
}
