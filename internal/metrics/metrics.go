// Package metrics provides time-series recording and lifetime extraction
// shared by the experiment harness: generic (time, value) series, the
// cumulative-ratio series used for data delivery lifetime, and helpers to
// find threshold crossings.
package metrics

import "sync"

// Point is one timed observation.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series.
type Series struct {
	name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Record appends an observation. Observations must be appended in
// non-decreasing time order; the experiment drivers guarantee this.
func (s *Series) Record(t, v float64) { s.points = append(s.points, Point{T: t, V: v}) }

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.points) }

// Points returns a copy of the observations.
func (s *Series) Points() []Point { return append([]Point(nil), s.points...) }

// Restore replaces the observations with a copy of points, as captured
// earlier with Points. The checkpoint subsystem uses it to carry metric
// series across a snapshot/resume boundary.
func (s *Series) Restore(points []Point) {
	s.points = append(s.points[:0:0], points...)
}

// Last returns the final observation, and false when the series is empty.
func (s *Series) Last() (Point, bool) {
	if len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// FirstBelow returns the time of the first observation with V < threshold
// sustained for `sustain` consecutive observations. When the series never
// sustains a drop it returns the last observation time and false.
func (s *Series) FirstBelow(threshold float64, sustain int) (float64, bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	if sustain < 1 {
		sustain = 1
	}
	run := 0
	for i, p := range s.points {
		if p.V < threshold {
			run++
			if run >= sustain {
				return s.points[i-sustain+1].T, true
			}
		} else {
			run = 0
		}
	}
	return s.points[len(s.points)-1].T, false
}

// MaxV returns the maximum observed value, or 0 for an empty series.
func (s *Series) MaxV() float64 {
	var m float64
	for i, p := range s.points {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// MeanAfter returns the mean of observations with T >= t0, or 0 when none
// qualify. Experiments use it to read the steady-state working-node count
// after the boot-up transient.
func (s *Series) MeanAfter(t0 float64) float64 {
	var sum float64
	n := 0
	for _, p := range s.points {
		if p.T >= t0 {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FirstAtLeast returns the time of the first observation with V >=
// threshold. When the series never reaches the threshold it returns the
// last observation time and false. The chaos degradation report uses it
// to measure probe convergence: how long the working set takes to reach
// its steady size.
func (s *Series) FirstAtLeast(threshold float64) (float64, bool) {
	for _, p := range s.points {
		if p.V >= threshold {
			return p.T, true
		}
	}
	if len(s.points) == 0 {
		return 0, false
	}
	return s.points[len(s.points)-1].T, false
}

// Counters is an ordered set of named uint64 counters. The chaos layer
// records one counter per fault class through it, the CLI summaries
// (peas-sim, peas-live, peas-chaos) render whatever is present, and the
// simulation service shares one set across its whole worker pool, so
// every substrate reports faults and job activity uniformly. All methods
// are safe for concurrent use: writes from simulator callbacks, live
// transport goroutines and server workers may interleave freely.
type Counters struct {
	mu    sync.Mutex
	names []string
	vals  map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{vals: make(map[string]uint64)} }

// Add increments the named counter by n, creating it at zero first. The
// creation order is remembered and used by Names.
func (c *Counters) Add(name string, n uint64) {
	c.mu.Lock()
	if _, ok := c.vals[name]; !ok {
		c.names = append(c.names, name)
	}
	c.vals[name] += n
	c.mu.Unlock()
}

// Get returns the named counter's value (zero when absent).
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Names returns the counter names in creation order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.names...)
}

// Snapshot returns a copy of the counter values keyed by name.
func (c *Counters) Snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// Ratio tracks a cumulative success ratio, the paper's data-delivery
// metric: "the ratio of the number of reports successfully received at
// the sink to the total number of reports generated by the source up to
// that time".
type Ratio struct {
	generated int
	succeeded int
	series    *Series
}

// NewRatio returns an empty cumulative ratio recorder.
func NewRatio(name string) *Ratio { return &Ratio{series: NewSeries(name)} }

// Observe records one attempt at time t and its outcome, then appends the
// cumulative ratio to the underlying series.
func (r *Ratio) Observe(t float64, success bool) {
	r.generated++
	if success {
		r.succeeded++
	}
	r.series.Record(t, r.Value())
}

// Value returns the current cumulative ratio (1 when nothing generated,
// so a network that never had to deliver is not counted as failed).
func (r *Ratio) Value() float64 {
	if r.generated == 0 {
		return 1
	}
	return float64(r.succeeded) / float64(r.generated)
}

// Counts returns (generated, succeeded).
func (r *Ratio) Counts() (generated, succeeded int) { return r.generated, r.succeeded }

// Restore replaces the cumulative counts and the recorded series with
// captured values.
func (r *Ratio) Restore(generated, succeeded int, points []Point) {
	r.generated = generated
	r.succeeded = succeeded
	r.series.Restore(points)
}

// Series exposes the cumulative-ratio time series.
func (r *Ratio) Series() *Series { return r.series }
