package baseline

import (
	"testing"
)

func TestAlwaysOnLifetimeIsOneBatteryLife(t *testing.T) {
	cfg := DefaultConfig(160, 1)
	res := AlwaysOn(cfg)
	// All nodes idle from t=0 with 54-60 J at 12 mW: the 10th
	// percentile battery dies between 4500 and 5000 s.
	if res.CoverageLifetime < 4000 || res.CoverageLifetime > 5000 {
		t.Errorf("lifetime = %v, want one battery life", res.CoverageLifetime)
	}
	// Deploying more nodes does not extend AlwaysOn's lifetime — the
	// motivation for sleep scheduling.
	big := AlwaysOn(DefaultConfig(800, 1))
	if big.CoverageLifetime > res.CoverageLifetime*1.15 {
		t.Errorf("AlwaysOn lifetime scaled with deployment: %v -> %v",
			res.CoverageLifetime, big.CoverageLifetime)
	}
	if res.TotalConsumed <= 0 {
		t.Error("no energy consumed")
	}
}

func TestAlwaysOnFailuresShortenLifetime(t *testing.T) {
	calm := AlwaysOn(DefaultConfig(160, 3))
	harsh := DefaultConfig(160, 3)
	harsh.FailureRate = 48.0 / 5000
	stormy := AlwaysOn(harsh)
	if stormy.CoverageLifetime >= calm.CoverageLifetime {
		t.Errorf("failures did not shorten lifetime: %v vs %v",
			stormy.CoverageLifetime, calm.CoverageLifetime)
	}
}

func TestSyncSleepExtendsLifetime(t *testing.T) {
	cfg := DefaultConfig(480, 5)
	cfg.Horizon = 40000
	res := SyncSleep(cfg)
	// With ~3-4 members per 3 m cell, rotation should deliver roughly
	// that multiple of a single battery life.
	if res.CoverageLifetime < 6000 {
		t.Errorf("SyncSleep lifetime = %v, want well beyond one battery life",
			res.CoverageLifetime)
	}
	if res.Wakeups == 0 {
		t.Error("no synchronized wakeups recorded")
	}
	if res.TotalConsumed <= 0 {
		t.Error("no energy consumed")
	}
}

func TestSyncSleepGapsUnderFailures(t *testing.T) {
	cfg := DefaultConfig(480, 7)
	cfg.FailureRate = 32.0 / 5000
	cfg.Horizon = 15000
	res := SyncSleep(cfg)
	if res.Gaps.Count == 0 {
		t.Fatal("no gaps under failures — the Figure 4 problem should appear")
	}
	// Gaps end only at round boundaries: mean gap is about half a round.
	if res.Gaps.MeanDuration < cfg.RoundLength*0.2 || res.Gaps.MeanDuration > cfg.RoundLength {
		t.Errorf("mean gap %v vs round length %v", res.Gaps.MeanDuration, cfg.RoundLength)
	}
	if res.Gaps.MaxDuration > cfg.RoundLength {
		t.Errorf("gap %v longer than a round %v", res.Gaps.MaxDuration, cfg.RoundLength)
	}
	if res.Gaps.MeanDuration*float64(res.Gaps.Count) != res.Gaps.TotalDuration {
		t.Error("gap stats inconsistent")
	}
}

func TestSyncSleepNoFailuresNoMidRoundGaps(t *testing.T) {
	cfg := DefaultConfig(480, 9)
	cfg.Horizon = 4000 // before any depletion (first worker dies ≥4500 s)
	res := SyncSleep(cfg)
	if res.Gaps.Count != 0 {
		t.Errorf("%d gaps without failures before depletion", res.Gaps.Count)
	}
}

func TestSyncSleepDeterminism(t *testing.T) {
	a := SyncSleep(DefaultConfig(200, 11))
	b := SyncSleep(DefaultConfig(200, 11))
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSyncSleepEmptyCellsHandled(t *testing.T) {
	cfg := DefaultConfig(5, 13) // 5 nodes over ~278 cells
	cfg.Horizon = 2000
	res := SyncSleep(cfg)
	if res.CoverageLifetime <= 0 {
		t.Errorf("lifetime = %v", res.CoverageLifetime)
	}
}
