// Package baseline implements the comparison schemes the paper contrasts
// PEAS against:
//
//   - AlwaysOn: every node works from deployment until depletion. System
//     lifetime equals one battery lifetime regardless of deployment size —
//     the motivation for sleep scheduling.
//   - SyncSleep: deterministic synchronized sleeping in the style of
//     GAF/SPAN (§2.1.1, Figures 4-5): the field is divided into cells;
//     cell members wake simultaneously at round boundaries and re-elect
//     one working node (the one with most remaining energy). When the
//     elected worker fails unexpectedly mid-round, the cell is unmonitored
//     until the next boundary — the "gap" PEAS's randomized wakeups avoid.
//
// The baselines run on a lightweight simulation (no radio contention):
// both schemes' election traffic is local and rare, and the quantities
// compared — lifetimes and gap durations — are timing properties.
package baseline

import (
	"math"
	"sort"

	"peas/internal/energy"
	"peas/internal/geom"
	"peas/internal/stats"
)

// Config parameterizes a baseline run.
type Config struct {
	Field            geom.Field
	N                int
	Energy           energy.Profile
	InitialEnergyMin float64
	InitialEnergyMax float64
	// CellSize is the SyncSleep cell edge; one worker per cell. As in
	// GAF, the cell is sized so a single worker anywhere in the cell
	// covers it entirely: Rs/sqrt(2) ≈ 7 m for the paper's 10 m sensing
	// range.
	CellSize float64
	// RoundLength is the SyncSleep re-election period in seconds.
	RoundLength float64
	// FailureRate is in failures per second over the whole network.
	FailureRate float64
	// Horizon bounds the simulated time.
	Horizon float64
	Seed    int64
}

// DefaultConfig mirrors the paper's PEAS evaluation set-up for the
// baseline schemes.
func DefaultConfig(n int, seed int64) Config {
	return Config{
		Field:            geom.NewField(50, 50),
		N:                n,
		Energy:           energy.MotesProfile(),
		InitialEnergyMin: 54,
		InitialEnergyMax: 60,
		CellSize:         7,
		RoundLength:      500,
		FailureRate:      0,
		Horizon:          60000,
		Seed:             seed,
	}
}

// GapStats summarizes monitoring interruptions across cells.
type GapStats struct {
	// Count is the number of distinct gaps observed.
	Count int
	// TotalDuration is the summed gap time in seconds.
	TotalDuration float64
	// MaxDuration is the longest single gap.
	MaxDuration float64
	// MeanDuration is TotalDuration / Count (0 when Count == 0).
	MeanDuration float64
}

func (g *GapStats) add(d float64) {
	if d <= 0 {
		return
	}
	g.Count++
	g.TotalDuration += d
	if d > g.MaxDuration {
		g.MaxDuration = d
	}
}

func (g *GapStats) finish() {
	if g.Count > 0 {
		g.MeanDuration = g.TotalDuration / float64(g.Count)
	}
}

// Result is the outcome of a baseline run.
type Result struct {
	// CoverageLifetime is when the fraction of cells with a live worker
	// drops below 90% (AlwaysOn: fraction of nodes alive).
	CoverageLifetime float64
	// Gaps summarizes worker-replacement interruptions.
	Gaps GapStats
	// Wakeups counts synchronized wakeups (SyncSleep) over the run.
	Wakeups uint64
	// TotalConsumed is the joules consumed by the whole network.
	TotalConsumed float64
}

// nodeState is the lightweight per-node record for baseline runs.
type nodeState struct {
	pos    geom.Point
	energy float64 // remaining joules
	alive  bool
}

// AlwaysOn runs the trivial baseline: every node idles from deployment
// until depletion; injected failures remove nodes early. Its coverage
// lifetime is bounded by a single battery life no matter how many nodes
// are deployed.
func AlwaysOn(cfg Config) Result {
	root := stats.NewRNG(cfg.Seed)
	deployRNG, energyRNG, failRNG := root.Split(), root.Split(), root.Split()
	_ = deployRNG

	nodes := make([]nodeState, cfg.N)
	deaths := make([]float64, cfg.N)
	for i := range nodes {
		charge := energyRNG.Uniform(cfg.InitialEnergyMin, cfg.InitialEnergyMax)
		deaths[i] = charge / cfg.Energy.IdleW
	}
	// Injected failures truncate uniformly chosen nodes' lives.
	if cfg.FailureRate > 0 {
		t := failRNG.Exp(cfg.FailureRate)
		for t < cfg.Horizon {
			victim := failRNG.Intn(cfg.N)
			if deaths[victim] > t {
				deaths[victim] = t
			}
			t += failRNG.Exp(cfg.FailureRate)
		}
	}
	// Lifetime: when alive fraction drops below 90%.
	sorted := append([]float64(nil), deaths...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(0.1*float64(cfg.N))) - 1
	if idx < 0 {
		idx = 0
	}
	var consumed float64
	for _, d := range deaths {
		life := math.Min(d, cfg.Horizon)
		consumed += life * cfg.Energy.IdleW
	}
	return Result{
		CoverageLifetime: math.Min(sorted[idx], cfg.Horizon),
		TotalConsumed:    consumed,
	}
}

// SyncSleep runs the synchronized-sleeping baseline and reports lifetimes
// and the gap statistics of Figure 4.
func SyncSleep(cfg Config) Result {
	root := stats.NewRNG(cfg.Seed)
	deployRNG, energyRNG, failRNG := root.Split(), root.Split(), root.Split()

	positions := geom.UniformDeploy(cfg.Field, cfg.N, deployRNG)
	nodes := make([]nodeState, cfg.N)
	for i := range nodes {
		nodes[i] = nodeState{
			pos:    positions[i],
			energy: energyRNG.Uniform(cfg.InitialEnergyMin, cfg.InitialEnergyMax),
			alive:  true,
		}
	}

	// Assign nodes to cells.
	cols := int(math.Ceil(cfg.Field.Width / cfg.CellSize))
	rows := int(math.Ceil(cfg.Field.Height / cfg.CellSize))
	cells := make([][]int, cols*rows)
	for i, p := range positions {
		c := int(p.X / cfg.CellSize)
		r := int(p.Y / cfg.CellSize)
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		cells[r*cols+c] = append(cells[r*cols+c], i)
	}
	occupied := 0
	for _, members := range cells {
		if len(members) > 0 {
			occupied++
		}
	}
	if occupied == 0 {
		return Result{}
	}

	// Pre-draw failure times per node (first failure arrival wins).
	failAt := make([]float64, cfg.N)
	for i := range failAt {
		failAt[i] = math.Inf(1)
	}
	if cfg.FailureRate > 0 {
		t := failRNG.Exp(cfg.FailureRate)
		for t < cfg.Horizon {
			victim := failRNG.Intn(cfg.N)
			if t < failAt[victim] {
				failAt[victim] = t
			}
			t += failRNG.Exp(cfg.FailureRate)
		}
	}

	res := Result{}
	worker := make([]int, len(cells)) // current worker per cell, -1 none
	for i := range worker {
		worker[i] = -1
	}

	coveredCells := func() int {
		n := 0
		for ci, w := range worker {
			_ = ci
			if w >= 0 && nodes[w].alive {
				n++
			}
		}
		return n
	}

	lifetimeSet := false
	for round := 0; float64(round)*cfg.RoundLength < cfg.Horizon; round++ {
		t0 := float64(round) * cfg.RoundLength
		t1 := math.Min(t0+cfg.RoundLength, cfg.Horizon)

		// Round boundary: every alive cell member wakes for election.
		for ci, members := range cells {
			best := -1
			for _, i := range members {
				if !nodes[i].alive {
					continue
				}
				res.Wakeups++
				if best < 0 || nodes[i].energy > nodes[best].energy {
					best = i
				}
			}
			worker[ci] = best
		}

		// Advance the round: the worker idles, others sleep; failures
		// and depletion interrupt workers and open gaps until t1.
		for ci, members := range cells {
			w := worker[ci]
			if w < 0 {
				// Cell has no alive members: permanent gap, counted in
				// coverage lifetime rather than gap stats.
				continue
			}
			// Worker w runs from t0 until depletion/failure/t1.
			deplete := t0 + nodes[w].energy/cfg.Energy.IdleW
			end := math.Min(t1, math.Min(deplete, failAt[w]))
			spent := (end - t0) * cfg.Energy.IdleW
			nodes[w].energy -= spent
			res.TotalConsumed += spent
			if end < t1 {
				// Mid-round death: gap until the next boundary, but only
				// if a live replacement existed (the gap is the
				// avoidable interruption of Figure 4).
				nodes[w].alive = false
				worker[ci] = -1
				hasReplacement := false
				for _, i := range members {
					if i != w && nodes[i].alive && failAt[i] > end {
						hasReplacement = true
						break
					}
				}
				if hasReplacement {
					res.Gaps.add(t1 - end)
				}
			}
			// Sleepers drain at sleep power; failures can kill them too.
			for _, i := range members {
				if i == w || !nodes[i].alive {
					continue
				}
				end := math.Min(t1, failAt[i])
				spent := (end - t0) * cfg.Energy.SleepW
				nodes[i].energy -= spent
				res.TotalConsumed += spent
				if failAt[i] <= t1 || nodes[i].energy <= 0 {
					nodes[i].alive = false
				}
			}
		}

		if !lifetimeSet {
			frac := float64(coveredCells()) / float64(occupied)
			if frac < 0.9 {
				res.CoverageLifetime = t1
				lifetimeSet = true
			}
		}
	}
	if !lifetimeSet {
		res.CoverageLifetime = cfg.Horizon
	}
	res.Gaps.finish()
	return res
}
