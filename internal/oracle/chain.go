package oracle

import (
	"fmt"

	"peas/internal/checkpoint"
	"peas/internal/experiment"
)

// ChainResult reports one differential checkpoint verification.
type ChainResult struct {
	// Boundaries is the number of checkpoint boundaries captured by the
	// direct run.
	Boundaries int
	// FinalHash is the direct run's end-of-run state hash.
	FinalHash string
	// Mismatches lists boundaries whose resumed run diverged, as
	// "t=<boundary>: <resumed hash>" strings.
	Mismatches []string
}

// VerifyChain checks the checkpoint determinism contract exhaustively:
// it runs cfg once, capturing a snapshot every `every` simulated seconds
// plus the final state, then resumes a fresh run from every captured
// boundary and requires each resumed run to end bit-identical (equal
// StateHash) to the direct run. This is the differential form of the
// "checkpoint+resume reproduces the direct run" invariant: a divergence
// at any boundary means some state escaped the snapshot or the restore
// path rounds differently than the uninterrupted trajectory.
//
// cfg must not already use the checkpoint hooks (CheckpointEvery,
// OnCheckpoint, Resume); VerifyChain owns them.
func VerifyChain(cfg experiment.RunConfig, every float64) (*ChainResult, error) {
	if cfg.CheckpointEvery != 0 || cfg.OnCheckpoint != nil || cfg.Resume != nil {
		return nil, fmt.Errorf("oracle: VerifyChain owns the checkpoint hooks")
	}
	if every <= 0 {
		return nil, fmt.Errorf("oracle: checkpoint interval %v must be positive", every)
	}

	var snaps []*checkpoint.Snapshot
	direct := cfg
	direct.CaptureFinal = true
	direct.CheckpointEvery = every
	direct.OnCheckpoint = func(s *checkpoint.Snapshot) bool {
		snaps = append(snaps, s)
		return false
	}
	res, err := experiment.Run(direct)
	if err != nil {
		return nil, err
	}
	out := &ChainResult{
		Boundaries: len(snaps),
		FinalHash:  res.FinalState.StateHashHex(),
	}

	for _, snap := range snaps {
		resumed := experiment.RunConfig{
			Resume:       snap,
			CaptureFinal: true,
			Trace:        cfg.Trace,
			OnNetwork:    cfg.OnNetwork,
		}
		rres, err := experiment.Run(resumed)
		if err != nil {
			return nil, fmt.Errorf("oracle: resume from t=%.1f: %w", snap.SimTime, err)
		}
		if h := rres.FinalState.StateHashHex(); h != out.FinalHash {
			out.Mismatches = append(out.Mismatches,
				fmt.Sprintf("t=%.1f: %s", snap.SimTime, h))
		}
	}
	return out, nil
}

// Err returns nil when every resumed run matched the direct run.
func (r *ChainResult) Err() error {
	if len(r.Mismatches) == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %d of %d checkpoint resumes diverged from direct hash %s (first: %s)",
		len(r.Mismatches), r.Boundaries, r.FinalHash, r.Mismatches[0])
}
