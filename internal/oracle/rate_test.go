package oracle

// The analytic-rate test checks §2.2's central claim end to end: Adaptive
// Sleeping drives the aggregate probing rate observed by a working node
// to the configured λd, and the §2.2.1 model says the wakeup arrivals
// form a Poisson process, so inter-probe gaps must look exponential with
// rate ≈ λd.
//
// The measurement deliberately reconstructs the model's own regime — one
// tight cluster of nodes, diameter < Rp, so exactly one node works at a
// time and every wakeup PROBE reaches it. On the full §4 field the gap
// pool mixes neighborhoods of different density and turn-off cycling,
// which breaks exponentiality for reasons the analysis never claims to
// cover.

import (
	"math"
	"testing"

	"peas/internal/core"
	"peas/internal/experiment"
	"peas/internal/geom"
	"peas/internal/node"
	"peas/internal/radio"
	"peas/internal/stats"
)

func TestProbeRateMatchesAnalytic(t *testing.T) {
	const (
		n       = 30
		horizon = 14000.0
		settle  = 2000.0 // initial λ0 aggregate is 3/s; let adaptation converge
		sample  = 200    // fixed n so D·√n is comparable across code changes
		lambdaD = 0.02
		// The multiplicative update λ <- λ·λd/λ̂ makes individual rates
		// random-walk around the target, so the aggregate is a slightly
		// over-dispersed Poisson; across seeds D·√n lands in 0.5-2.0.
		// 2.5 still cleanly rejects uniform (~5) and degenerate (~9) data.
		ksCap = 2.5
	)

	ncfg := node.DefaultConfig(n, 1)
	pos := make([]geom.Point, n)
	for i := range pos {
		// Ring of diameter 2 m < Rp = 3 m: every node hears every node.
		ang := 2 * math.Pi * float64(i) / n
		pos[i] = geom.Point{X: 25 + math.Cos(ang), Y: 25 + math.Sin(ang)}
	}
	ncfg.Positions = pos

	var times []float64
	maxWorking := 0
	cfg := experiment.RunConfig{
		Network: ncfg,
		Horizon: horizon,
		OnNetwork: func(net *node.Network) {
			prevTx := net.Medium.OnTransmit
			net.Medium.OnTransmit = func(pkt radio.Packet) {
				if prevTx != nil {
					prevTx(pkt)
				}
				// Seq > 0 frames are retries within one probing round;
				// only Seq 0 marks a fresh wakeup arrival.
				if probe, ok := pkt.Payload.(core.Probe); ok && probe.Seq == 0 {
					times = append(times, net.Engine.Now())
					if w := net.WorkingCount(); w > maxWorking {
						maxWorking = w
					}
				}
			}
		},
	}
	if _, err := experiment.Run(cfg); err != nil {
		t.Fatal(err)
	}

	if maxWorking != 1 {
		t.Errorf("cluster should keep exactly one worker, saw %d concurrent", maxWorking)
	}
	var gaps []float64
	for i := 1; i < len(times); i++ {
		if times[i-1] >= settle {
			gaps = append(gaps, times[i]-times[i-1])
		}
	}
	if len(gaps) < sample {
		t.Fatalf("only %d gaps after settle, want >= %d", len(gaps), sample)
	}
	gaps = gaps[:sample]

	rate := 1 / Mean(gaps)
	t.Logf("measured aggregate probe rate %.4f/s (λd=%.4f/s)", rate, lambdaD)
	if rate < lambdaD/1.35 || rate > lambdaD*1.35 {
		t.Errorf("measured rate %.4f/s is not within 35%% of λd=%.4f/s", rate, lambdaD)
	}

	d, nn := ExpKS(gaps)
	stat := d * math.Sqrt(float64(nn))
	t.Logf("KS: D=%.4f n=%d D·√n=%.3f", d, nn, stat)
	if stat > ksCap {
		t.Errorf("inter-probe gaps reject the exponential shape: D·√n=%.3f > %.1f", stat, ksCap)
	}
}

// TestExpKSRejectsNonExponential sanity-checks the statistic itself:
// exponential data passes, uniform and constant data fail, so a pass in
// TestProbeRateMatchesAnalytic is informative.
func TestExpKSRejectsNonExponential(t *testing.T) {
	exp := make([]float64, 400)
	uni := make([]float64, 400)
	con := make([]float64, 400)
	r := stats.NewRNG(77)
	for i := range exp {
		exp[i] = r.Exp(0.02)
		uni[i] = r.Uniform(0, 100)
		con[i] = 50
	}
	if d, n := ExpKS(exp); d*math.Sqrt(float64(n)) > 2.0 {
		t.Errorf("exponential sample rejected: D·√n=%.3f", d*math.Sqrt(float64(n)))
	}
	if d, n := ExpKS(uni); d*math.Sqrt(float64(n)) < 2.5 {
		t.Errorf("uniform sample accepted: D·√n=%.3f", d*math.Sqrt(float64(n)))
	}
	if d, n := ExpKS(con); d*math.Sqrt(float64(n)) < 2.5 {
		t.Errorf("constant sample accepted: D·√n=%.3f", d*math.Sqrt(float64(n)))
	}
}
