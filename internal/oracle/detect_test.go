package oracle

// Detection tests: a checker that never fires is indistinguishable from
// one that checks nothing, so every invariant is exercised against a
// deliberately injected violation. The injections are white-box — they
// bypass the model's own guards, which is exactly what a regression in
// those guards would do.

import (
	"math"
	"testing"

	"peas/internal/core"
	"peas/internal/geom"
	"peas/internal/node"
	"peas/internal/radio"
	"peas/internal/stats"
)

func newCheckedNet(t *testing.T, n int, seed int64, cfg Config) (*node.Network, *Checker) {
	t.Helper()
	ncfg := node.DefaultConfig(n, seed)
	net, err := node.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	c := Attach(net, cfg)
	net.Start()
	return net, c
}

func hasInvariant(c *Checker, name string) bool {
	for _, v := range c.Violations() {
		if v.Invariant == name {
			return true
		}
	}
	return false
}

func TestDetectsSleepingTransmit(t *testing.T) {
	net, c := newCheckedNet(t, 20, 3, DefaultConfig())
	net.Run(100)
	var sleeper *node.Node
	for _, n := range net.Nodes {
		if n.Alive() && n.State() == core.Sleeping {
			sleeper = n
			break
		}
	}
	if sleeper == nil {
		t.Fatal("no sleeping node at t=100")
	}
	// Put a frame on the air from the sleeping node, bypassing the
	// node-layer liveness guard.
	net.Medium.Broadcast(radio.Packet{From: radio.NodeID(sleeper.ID()), Size: 25, Range: 3})
	if !hasInvariant(c, "tx-discipline") {
		t.Errorf("sleeping-node transmission not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsDeadTransmit(t *testing.T) {
	net, c := newCheckedNet(t, 20, 3, DefaultConfig())
	net.Run(100)
	victim := net.Nodes[0]
	victim.Fail(node.InjectedFailure)
	net.Medium.Broadcast(radio.Packet{From: radio.NodeID(victim.ID()), Size: 25, Range: 3})
	if !hasInvariant(c, "tx-discipline") {
		t.Errorf("dead-node transmission not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsRxWhileSleeping(t *testing.T) {
	net, c := newCheckedNet(t, 20, 3, DefaultConfig())
	net.Run(100)
	for _, n := range net.Nodes {
		if n.Alive() && n.State() == core.Sleeping {
			// Hand a frame straight past the medium's listening guard.
			c.checkDeliver(n, radio.Packet{From: 1, Size: 25})
			break
		}
	}
	if !hasInvariant(c, "rx-discipline") {
		t.Errorf("delivery to sleeping node not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsClockRegression(t *testing.T) {
	_, c := newCheckedNet(t, 5, 3, DefaultConfig())
	c.observeEvent(10)
	c.observeEvent(9.5)
	if !hasInvariant(c, "timer-monotonic") {
		t.Errorf("clock regression not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsNonFiniteEventTime(t *testing.T) {
	_, c := newCheckedNet(t, 5, 3, DefaultConfig())
	c.observeEvent(math.NaN())
	if !hasInvariant(c, "timer-monotonic") {
		t.Errorf("NaN event time not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsLedgerCorruption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 5
	net, c := newCheckedNet(t, 20, 3, cfg)
	net.Run(50)
	// Conjure 5 J out of nowhere: remaining charge rises and the ledger
	// identity initial == remaining + consumed breaks.
	b := net.Nodes[0].Battery()
	st := b.Snapshot()
	st.Remaining += 5
	b.Restore(st)
	net.Run(60)
	if !hasInvariant(c, "energy-ledger") {
		t.Errorf("ledger corruption not flagged; violations: %v", c.Violations())
	}
	if !hasInvariant(c, "energy-monotone") {
		t.Errorf("rising charge not flagged; violations: %v", c.Violations())
	}
}

func TestDetectsUndeadBattery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Interval = 5
	net, c := newCheckedNet(t, 20, 3, cfg)
	net.Run(50)
	// Mark a battery dead while its node keeps running. One scan of
	// slack is allowed (lazy settling can observe the exhaustion before
	// the depletion event fires), so run two full intervals.
	b := net.Nodes[0].Battery()
	st := b.Snapshot()
	st.Dead = true
	b.Restore(st)
	net.Run(65)
	if !hasInvariant(c, "lifecycle") {
		t.Errorf("dead battery with live node not flagged; violations: %v", c.Violations())
	}
}

// TestDetectsUnresolvedOverlap engineers the §4 race — two nodes probing
// concurrently so neither hears a REPLY and both start working within
// Rp — and then pretends the elder broadcast plenty of REPLYs without
// resolving the pair.
func TestDetectsUnresolvedOverlap(t *testing.T) {
	// Pick node seeds whose first wakeup draws land close enough that
	// the second prober's window closes before the first worker's REPLY
	// could reach it (window 0.1 s, probes in the first half).
	const lambda0 = 0.1
	w1 := stats.NewRNG(1).Exp(lambda0)
	seed2 := int64(-1)
	for s := int64(2); s < 20000; s++ {
		w2 := stats.NewRNG(s).Exp(lambda0)
		if d := w2 - w1; d > 0.001 && d < 0.04 {
			seed2 = s
			break
		}
	}
	if seed2 < 0 {
		t.Fatal("no seed pair with overlapping probe windows found")
	}

	ncfg := node.DefaultConfig(2, 9)
	ncfg.Positions = []geom.Point{{X: 25, Y: 25}, {X: 26, Y: 25}}
	ncfg.NodeSeeds = []int64{1, seed2}
	net, err := node.NewNetwork(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := DefaultConfig()
	ocfg.Interval = 5
	ocfg.OverlapGrace = 30
	ocfg.OverlapReplies = 3
	c := Attach(net, ocfg)
	net.Start()
	net.Run(w1 + 1)
	if net.WorkingCount() != 2 {
		t.Fatalf("race not reproduced: %d working nodes at t=%.2f", net.WorkingCount(), w1+1)
	}

	// With only two nodes no third prober exists, so the elder never
	// replies and the unresolvable pair is correctly tolerated.
	net.Run(w1 + 50)
	if len(c.Violations()) != 0 {
		t.Fatalf("pair with no resolution opportunities was flagged: %v", c.Violations())
	}

	// Now claim the elder replied repeatedly; the younger should have
	// yielded, so the next scan must flag the pair.
	if len(c.pairs) != 1 {
		t.Fatalf("pair table has %d entries, want 1", len(c.pairs))
	}
	for _, p := range c.pairs {
		p.elderReplies = ocfg.OverlapReplies
	}
	net.Run(w1 + 60)
	if !hasInvariant(c, "working-overlap") {
		t.Errorf("unresolved redundant pair not flagged; violations: %v", c.Violations())
	}
}

func TestViolationCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxViolations = 3
	_, c := newCheckedNet(t, 5, 3, cfg)
	for i := 0; i < 10; i++ {
		c.observeEvent(math.NaN())
	}
	if len(c.Violations()) != 3 {
		t.Errorf("recorded %d violations, want cap 3", len(c.Violations()))
	}
	if c.Dropped() != 7 {
		t.Errorf("dropped %d, want 7", c.Dropped())
	}
	if c.Err() == nil {
		t.Error("Err() should be non-nil with violations recorded")
	}
}
