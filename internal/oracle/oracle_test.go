package oracle

import (
	"testing"

	"peas/internal/experiment"
	"peas/internal/node"
)

// TestBaselineZeroViolations runs the paper's §4 baseline — 160 nodes on
// the 50x50 m field with multi-PROBE, adaptive sleeping and the
// redundant-worker turn-off all enabled, the base failure rate, and the
// data workload — with every invariant armed, and expects silence.
func TestBaselineZeroViolations(t *testing.T) {
	var c *Checker
	cfg := experiment.RunConfig{
		Network:          node.DefaultConfig(160, 7),
		FailuresPer5000s: experiment.BaseFailuresPer5000,
		Horizon:          5000,
		Forwarding:       true,
		OnNetwork: func(net *node.Network) {
			c = Attach(net, DefaultConfig())
		},
	}
	if _, err := experiment.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("OnNetwork hook never ran")
	}
	for _, v := range c.Violations() {
		t.Errorf("violation: %s", v)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestOracleDoesNotPerturb asserts the non-interference contract: a run
// with the checker attached ends in the exact same model state (equal
// StateHash) as the same run without it. Everything the oracle observes
// would be meaningless if observation nudged the trajectory.
func TestOracleDoesNotPerturb(t *testing.T) {
	base := experiment.RunConfig{
		Network:          node.DefaultConfig(60, 42),
		FailuresPer5000s: 10,
		Horizon:          2000,
		Forwarding:       true,
		CaptureFinal:     true,
	}
	plain, err := experiment.Run(base)
	if err != nil {
		t.Fatal(err)
	}

	instrumented := base
	var c *Checker
	instrumented.OnNetwork = func(net *node.Network) {
		c = Attach(net, DefaultConfig())
	}
	checked, err := experiment.Run(instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Error(err)
	}

	ph, ch := plain.FinalState.StateHashHex(), checked.FinalState.StateHashHex()
	if ph != ch {
		t.Errorf("oracle perturbed the run: plain %s vs instrumented %s", ph, ch)
	}
}

// TestScenarioSweep arms the checker across the protocol/radio corner
// scenarios: collisions off, fixed transmission power, packet loss,
// signal irregularity, turn-off disabled, single-PROBE. None may violate
// an invariant (checks that a configuration can break — e.g. the overlap
// rule under loss — disarm themselves).
func TestScenarioSweep(t *testing.T) {
	mutate := map[string]func(*node.Config){
		"no-collisions": func(c *node.Config) { c.Radio.CollisionsEnabled = false },
		"fixed-power":   func(c *node.Config) { c.Radio.FixedPower = true },
		"loss-10pct":    func(c *node.Config) { c.Radio.LossRate = 0.10 },
		"irregular":     func(c *node.Config) { c.Radio.Irregularity = 0.3 },
		"no-turnoff":    func(c *node.Config) { c.Protocol.TurnoffEnabled = false },
		"single-probe":  func(c *node.Config) { c.Protocol.NumProbes = 1 },
	}
	for name, mut := range mutate {
		t.Run(name, func(t *testing.T) {
			ncfg := node.DefaultConfig(80, 21)
			mut(&ncfg)
			var c *Checker
			cfg := experiment.RunConfig{
				Network:          ncfg,
				FailuresPer5000s: 10,
				Horizon:          2500,
				OnNetwork: func(net *node.Network) {
					c = Attach(net, DefaultConfig())
				},
			}
			if _, err := experiment.Run(cfg); err != nil {
				t.Fatal(err)
			}
			for _, v := range c.Violations() {
				t.Errorf("violation: %s", v)
			}
		})
	}
}
