package oracle

// Metamorphic tests: relations the paper implies must hold between runs
// whose configurations differ only in a symmetry the physics cannot see.
// Node IDs are bookkeeping, so relabeling the deployment must change
// nothing observable; space is homogeneous, so rigidly translating the
// deployment must change nothing either; and independent seeds must
// yield statistically unrelated runs.

import (
	"math"
	"testing"

	"peas/internal/energy"
	"peas/internal/experiment"
	"peas/internal/geom"
	"peas/internal/node"
	"peas/internal/stats"
)

// metaResult is everything one metamorphic run exposes for comparison.
type metaResult struct {
	stats *experiment.RunStats
	// series is the (t, working, byK...) sample log, compared exactly.
	series [][]float64
	// batteries maps each node's physical position to its final battery
	// state, compared bit-exactly.
	batteries map[geom.Point]energy.BatteryState
}

func runMeta(t *testing.T, ncfg node.Config, failures float64, horizon float64) *metaResult {
	t.Helper()
	out := &metaResult{batteries: make(map[geom.Point]energy.BatteryState)}
	cfg := experiment.RunConfig{
		Network:          ncfg,
		FailuresPer5000s: failures,
		Horizon:          horizon,
		OnSample: func(tm float64, working int, byK []float64) {
			row := append([]float64{tm, float64(working)}, byK...)
			out.series = append(out.series, row)
		},
		OnFinish: func(net *node.Network) {
			for _, n := range net.Nodes {
				out.batteries[n.Pos()] = n.Battery().Snapshot()
			}
		},
	}
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out.stats = res
	return out
}

// compareMeta asserts two runs are observationally identical up to the
// applied symmetry: integer-derived aggregates and per-sample series
// bit-identical, per-physical-node batteries bit-identical (keyed
// through mapPos), and ID-order floating-point sums within one part in
// 1e9 (their addition order is the only thing the symmetry changes).
func compareMeta(t *testing.T, a, b *metaResult, mapPos func(geom.Point) geom.Point) {
	t.Helper()
	if a.stats.Wakeups != b.stats.Wakeups {
		t.Errorf("wakeups: %d vs %d", a.stats.Wakeups, b.stats.Wakeups)
	}
	if a.stats.MeanWorking != b.stats.MeanWorking {
		t.Errorf("mean working: %v vs %v", a.stats.MeanWorking, b.stats.MeanWorking)
	}
	if a.stats.AllDeadAt != b.stats.AllDeadAt {
		t.Errorf("all-dead-at: %v vs %v", a.stats.AllDeadAt, b.stats.AllDeadAt)
	}
	if a.stats.CoverageLifetime != b.stats.CoverageLifetime {
		t.Errorf("coverage lifetimes: %v vs %v", a.stats.CoverageLifetime, b.stats.CoverageLifetime)
	}
	if a.stats.InitialCoverage != b.stats.InitialCoverage {
		t.Errorf("initial coverage: %v vs %v", a.stats.InitialCoverage, b.stats.InitialCoverage)
	}
	if a.stats.FailuresInjected != b.stats.FailuresInjected {
		t.Errorf("failures: %d vs %d", a.stats.FailuresInjected, b.stats.FailuresInjected)
	}
	if a.stats.PacketsSent != b.stats.PacketsSent ||
		a.stats.PacketsDelivered != b.stats.PacketsDelivered ||
		a.stats.PacketsCollided != b.stats.PacketsCollided {
		t.Errorf("packets: %d/%d/%d vs %d/%d/%d",
			a.stats.PacketsSent, a.stats.PacketsDelivered, a.stats.PacketsCollided,
			b.stats.PacketsSent, b.stats.PacketsDelivered, b.stats.PacketsCollided)
	}
	relTol := func(x, y float64) bool {
		scale := math.Max(math.Abs(x), 1)
		return math.Abs(x-y) <= 1e-9*scale
	}
	if !relTol(a.stats.TotalEnergy, b.stats.TotalEnergy) {
		t.Errorf("total energy: %v vs %v", a.stats.TotalEnergy, b.stats.TotalEnergy)
	}
	if !relTol(a.stats.ProtocolEnergy, b.stats.ProtocolEnergy) {
		t.Errorf("protocol energy: %v vs %v", a.stats.ProtocolEnergy, b.stats.ProtocolEnergy)
	}

	if len(a.series) != len(b.series) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.series), len(b.series))
	}
	for i := range a.series {
		ra, rb := a.series[i], b.series[i]
		if len(ra) != len(rb) {
			t.Fatalf("sample %d widths differ", i)
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("sample %d field %d: %v vs %v", i, j, ra[j], rb[j])
			}
		}
	}

	if len(a.batteries) != len(b.batteries) {
		t.Fatalf("battery counts differ: %d vs %d", len(a.batteries), len(b.batteries))
	}
	for pos, sa := range a.batteries {
		sb, ok := b.batteries[mapPos(pos)]
		if !ok {
			t.Fatalf("no counterpart for node at %v", pos)
		}
		if sa != sb {
			t.Errorf("battery at %v differs: %+v vs %+v", pos, sa, sb)
		}
	}
}

// TestRelabelingInvariance permutes node IDs — same physical ensemble of
// (position, RNG seed) pairs, reversed assignment order — and requires
// every observable to match, bit-for-bit where the computation is
// order-independent. Initial charges are pinned equal (charge draws
// attach to IDs) and failures/forwarding are off (the injector picks
// victims by ID and the sink workload is position-anchored to IDs).
func TestRelabelingInvariance(t *testing.T) {
	const n = 80
	field := geom.NewField(50, 50)
	rng := stats.NewRNG(123)
	positions := geom.UniformDeploy(field, n, rng)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}

	base := node.DefaultConfig(n, 99)
	base.Positions = positions
	base.NodeSeeds = seeds
	base.InitialEnergyMin = 57
	base.InitialEnergyMax = 57

	perm := base
	perm.Positions = make([]geom.Point, n)
	perm.NodeSeeds = make([]int64, n)
	for i := 0; i < n; i++ {
		perm.Positions[i] = positions[n-1-i]
		perm.NodeSeeds[i] = seeds[n-1-i]
	}

	a := runMeta(t, base, 0, 2500)
	b := runMeta(t, perm, 0, 2500)
	compareMeta(t, a, b, func(p geom.Point) geom.Point { return p })
}

// TestTranslationInvariance rigidly translates the deployment by
// (128, 128) m inside a fixed 220x220 m field. Positions are snapped to
// a 1/8 m grid so the translated coordinates, and therefore every
// pairwise distance, are exact in float64; the shift is a multiple of
// the 1 m coverage-lattice spacing so the covered-point counts translate
// exactly too. The cluster keeps a full sensing range (10 m) clear of
// the field boundary in both placements, so no coverage circle is
// clipped on one side only. IDs are untouched, so ID-keyed randomness
// (charges, node seeds, failure victims) is identical across the pair
// and failures can stay on.
func TestTranslationInvariance(t *testing.T) {
	const (
		n     = 80
		shift = 128.0
	)
	field := geom.NewField(220, 220)
	rng := stats.NewRNG(321)
	posA := make([]geom.Point, n)
	for i := range posA {
		posA[i] = geom.Point{
			X: 16 + math.Round(rng.Uniform(0, 50)*8)/8,
			Y: 16 + math.Round(rng.Uniform(0, 50)*8)/8,
		}
	}
	posB := make([]geom.Point, n)
	for i := range posB {
		posB[i] = geom.Point{X: posA[i].X + shift, Y: posA[i].Y + shift}
	}

	base := node.DefaultConfig(n, 99)
	base.Field = field
	base.Positions = posA
	moved := base
	moved.Positions = posB

	a := runMeta(t, base, 10, 2500)
	b := runMeta(t, moved, 10, 2500)
	compareMeta(t, a, b, func(p geom.Point) geom.Point {
		return geom.Point{X: p.X + shift, Y: p.Y + shift}
	})
}

// TestSeedIndependence runs adjacent seeds and requires the working-node
// series to be uncorrelated: the increments of the two series must not
// track each other. With ~100 samples the null standard error of the
// correlation is ~0.1, so the 0.5 threshold is a >4σ test that still
// can't flake into a false pass for genuinely coupled streams.
func TestSeedIndependence(t *testing.T) {
	collect := func(seed int64) []float64 {
		var series []float64
		cfg := experiment.RunConfig{
			Network: node.DefaultConfig(80, seed),
			Horizon: 2500,
			OnSample: func(tm float64, working int, byK []float64) {
				series = append(series, float64(working))
			},
		}
		if _, err := experiment.Run(cfg); err != nil {
			t.Fatal(err)
		}
		return series
	}
	sa := collect(1000)
	sb := collect(1001)
	if len(sa) != len(sb) || len(sa) < 50 {
		t.Fatalf("series lengths %d vs %d", len(sa), len(sb))
	}
	// Drop the boot transient: the deterministic 0 -> steady-state ramp
	// is common to every run and would dominate the correlation.
	sa, sb = sa[20:], sb[20:]
	identical := true
	for i := range sa {
		if sa[i] != sb[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("different seeds produced identical working series")
	}
	diff := func(xs []float64) []float64 {
		out := make([]float64, len(xs)-1)
		for i := range out {
			out[i] = xs[i+1] - xs[i]
		}
		return out
	}
	if r := Pearson(diff(sa), diff(sb)); math.Abs(r) > 0.5 {
		t.Errorf("seed streams correlate: r=%v", r)
	}
}
