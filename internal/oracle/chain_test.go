package oracle

// Differential test: checkpoint + resume at every boundary must land on
// the exact state the uninterrupted run reaches. VerifyChain carries the
// whole comparison; the tests here drive it over a failure-injecting,
// forwarding run and over the degenerate no-boundary case, and check
// that it refuses configs that would fight over the checkpoint hooks.

import (
	"strings"
	"testing"

	"peas/internal/experiment"
	"peas/internal/node"
)

func TestCheckpointChainBitExact(t *testing.T) {
	cfg := experiment.RunConfig{
		Network:          node.DefaultConfig(50, 11),
		FailuresPer5000s: 10,
		Horizon:          1500,
		Forwarding:       true,
	}
	res, err := VerifyChain(cfg, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Boundaries < 3 {
		t.Fatalf("only %d checkpoint boundaries exercised, want >= 3", res.Boundaries)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if res.FinalHash == "" {
		t.Fatal("no final hash recorded")
	}
}

// TestCheckpointChainWithOracle resumes with the invariant checker
// attached to every segment: the resume path must tolerate observers the
// same way a fresh start does, and no segment may violate an invariant.
func TestCheckpointChainWithOracle(t *testing.T) {
	var checkers []*Checker
	cfg := experiment.RunConfig{
		Network: node.DefaultConfig(40, 23),
		Horizon: 1200,
		OnNetwork: func(net *node.Network) {
			checkers = append(checkers, Attach(net, DefaultConfig()))
		},
	}
	res, err := VerifyChain(cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	// One checker per run: the direct run plus one per resumed boundary.
	if want := 1 + res.Boundaries; len(checkers) != want {
		t.Errorf("OnNetwork ran %d times, want %d", len(checkers), want)
	}
	for i, c := range checkers {
		if err := c.Err(); err != nil {
			t.Errorf("segment %d: %v", i, err)
		}
	}
}

func TestVerifyChainRejectsCheckpointingConfig(t *testing.T) {
	cfg := experiment.RunConfig{
		Network:         node.DefaultConfig(10, 1),
		Horizon:         100,
		CheckpointEvery: 50,
	}
	if _, err := VerifyChain(cfg, 25); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("config with its own checkpoint hooks accepted: err=%v", err)
	}
}
