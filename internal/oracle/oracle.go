// Package oracle is a runtime invariant checker for the PEAS simulator.
// A Checker attaches read-only observers to a deployed network — the
// event engine, the radio medium, and the per-node receivers — and
// continuously verifies properties the model must never violate:
//
//   - clock/timer monotonicity: every executed event carries a finite
//     timestamp no earlier than the previous one;
//   - transmit discipline: only alive, non-sleeping nodes put frames on
//     the air (paper §2.1: a sleeping node's radio is off);
//   - receive discipline: frames are only delivered to alive, listening
//     nodes;
//   - energy conservation: each battery's ledger balances — initial
//     charge equals remaining charge plus the per-mode consumption sums
//     — remaining charge never increases, consumption never decreases,
//     and an exhausted battery implies a dead node;
//   - lifecycle consistency: a node is alive exactly while its protocol
//     state is not Dead, and its battery power mode matches its state;
//   - working-overlap resolution (§4): two working nodes within Rp of
//     each other are redundant; once the elder of the pair has
//     broadcast enough REPLYs for the younger to have heard one, the
//     turn-off extension must have resolved the pair.
//
// The observers never mutate model state, consume no model randomness,
// and only add read-only events to the schedule, so an instrumented run
// follows the exact trajectory of an uninstrumented one — attaching the
// oracle does not perturb what it measures (the golden determinism test
// of internal/experiment holds with and without it).
package oracle

import (
	"fmt"
	"math"

	"peas/internal/core"
	"peas/internal/energy"
	"peas/internal/node"
	"peas/internal/radio"
	"peas/internal/sim"
)

// Violation is one observed invariant breach.
type Violation struct {
	// T is the simulation time of the observation.
	T float64
	// Invariant names the broken property (e.g. "energy-ledger").
	Invariant string
	// Node is the offending node, or -1 when the breach is not
	// node-specific.
	Node core.NodeID
	// Detail is a human-readable description with the observed values.
	Detail string
}

// String formats the violation for logs.
func (v Violation) String() string {
	if v.Node < 0 {
		return fmt.Sprintf("t=%.3f [%s] %s", v.T, v.Invariant, v.Detail)
	}
	return fmt.Sprintf("t=%.3f [%s] node %d: %s", v.T, v.Invariant, v.Node, v.Detail)
}

// Config tunes the checker.
type Config struct {
	// Interval is the period of the read-only scan that checks energy
	// ledgers, lifecycle consistency and working overlap. Zero selects
	// 10 s.
	Interval float64
	// EnergyTolerance is the relative tolerance of the battery ledger
	// identity, scaled by the initial charge. Zero selects 1e-9.
	EnergyTolerance float64
	// OverlapGrace is how long a redundant working pair must persist
	// before it can be flagged. Zero selects 200 s.
	OverlapGrace float64
	// OverlapReplies is how many REPLY broadcasts by the pair's elder
	// must fail to resolve the pair before it is flagged; each broadcast
	// reaches the younger node unless a collision eats it, so several
	// unresolved ones indicate a turn-off bug rather than channel noise.
	// Zero selects 8.
	OverlapReplies int
	// MaxViolations caps recording; further breaches only bump the
	// dropped counter. Zero selects 100.
	MaxViolations int
}

// DefaultConfig returns the standard checker tuning.
func DefaultConfig() Config {
	return Config{
		Interval:        10,
		EnergyTolerance: 1e-9,
		OverlapGrace:    200,
		OverlapReplies:  8,
		MaxViolations:   100,
	}
}

func (c *Config) fill() {
	if c.Interval <= 0 {
		c.Interval = 10
	}
	if c.EnergyTolerance <= 0 {
		c.EnergyTolerance = 1e-9
	}
	if c.OverlapGrace <= 0 {
		c.OverlapGrace = 200
	}
	if c.OverlapReplies <= 0 {
		c.OverlapReplies = 8
	}
	if c.MaxViolations <= 0 {
		c.MaxViolations = 100
	}
}

// pairState tracks one observed redundant working pair.
type pairState struct {
	since        float64     // when the overlap was first observed
	elder        core.NodeID // the longer-working node of the pair
	elderReplies int         // elder REPLY broadcasts while the pair persisted
	flagged      bool
}

// Checker holds the observer state for one network.
type Checker struct {
	cfg Config
	net *node.Network
	rp  float64

	violations []Violation
	dropped    int

	// Clock monotonicity.
	lastEventT float64

	// Energy ledgers: previous scan's per-node remaining charge and
	// total consumption, and how many consecutive scans a battery has
	// been dead with its node still alive (one scan of slack absorbs
	// the instant where lazy settling marks the battery dead before the
	// depletion event fires).
	lastRemaining []float64
	lastConsumed  []float64
	deadScans     []int

	// Working overlap, keyed by (low ID, high ID). Disabled when the
	// §4 turn-off extension is off (redundant pairs are then expected)
	// or when channel loss, signal irregularity, or an attached fault
	// injector can legitimately keep the elder's REPLYs from the younger
	// node.
	pairs        map[[2]core.NodeID]*pairState
	overlapAlive bool
}

// Attach builds a checker for net and wires its observers. Call before
// net.Start (or, on a resumed run, right after the restore) so no event
// escapes observation. The experiment runner's OnNetwork hook is the
// natural attachment point.
func Attach(net *node.Network, cfg Config) *Checker {
	cfg.fill()
	ncfg := net.Config()
	c := &Checker{
		cfg:           cfg,
		net:           net,
		rp:            ncfg.Protocol.ProbingRange,
		lastEventT:    net.Engine.Now(),
		lastRemaining: make([]float64, len(net.Nodes)),
		lastConsumed:  make([]float64, len(net.Nodes)),
		deadScans:     make([]int, len(net.Nodes)),
		pairs:         make(map[[2]core.NodeID]*pairState),
		overlapAlive: ncfg.Protocol.TurnoffEnabled &&
			ncfg.Radio.LossRate == 0 && ncfg.Radio.Irregularity == 0 &&
			net.Medium.Faults() == nil,
	}
	for i, n := range net.Nodes {
		st := n.Battery().Snapshot()
		c.lastRemaining[i] = st.Remaining
		c.lastConsumed[i] = consumedTotal(st)
	}

	prevEvent := net.Engine.OnEvent
	net.Engine.OnEvent = func(t sim.Time) {
		if prevEvent != nil {
			prevEvent(t)
		}
		c.observeEvent(t)
	}
	prevTx := net.Medium.OnTransmit
	net.Medium.OnTransmit = func(pkt radio.Packet) {
		if prevTx != nil {
			prevTx(pkt)
		}
		c.observeTransmit(pkt)
	}
	for i, n := range net.Nodes {
		net.Medium.Attach(radio.NodeID(i), &checkedReceiver{n: n, c: c})
	}
	net.Engine.NewTicker(cfg.Interval, c.scan)
	return c
}

// Violations returns the recorded breaches in observation order.
func (c *Checker) Violations() []Violation { return c.violations }

// Dropped returns how many breaches exceeded the recording cap.
func (c *Checker) Dropped() int { return c.dropped }

// Err returns nil when no invariant was violated, else an error
// summarizing the first breach and the total count.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("oracle: %d invariant violation(s), first: %s",
		len(c.violations)+c.dropped, c.violations[0])
}

func (c *Checker) report(inv string, id core.NodeID, format string, args ...any) {
	if len(c.violations) >= c.cfg.MaxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, Violation{
		T:         c.net.Engine.Now(),
		Invariant: inv,
		Node:      id,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// observeEvent checks clock monotonicity on every executed event.
func (c *Checker) observeEvent(t float64) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		c.report("timer-monotonic", -1, "event timestamp %v is not finite", t)
		return
	}
	if t < c.lastEventT {
		c.report("timer-monotonic", -1,
			"event at %v executed after event at %v", t, c.lastEventT)
		return
	}
	c.lastEventT = t
}

// observeTransmit checks transmit discipline the instant a frame goes on
// the air, and counts overlap-resolution opportunities (elder REPLYs).
func (c *Checker) observeTransmit(pkt radio.Packet) {
	id := core.NodeID(pkt.From)
	if int(id) < 0 || int(id) >= len(c.net.Nodes) {
		c.report("tx-discipline", id, "transmission from unknown node")
		return
	}
	n := c.net.Nodes[id]
	if !n.Alive() {
		c.report("tx-discipline", id, "dead node transmitted a %d-byte frame", pkt.Size)
		return
	}
	if n.State() == core.Sleeping {
		c.report("tx-discipline", id, "sleeping node transmitted a %d-byte frame", pkt.Size)
		return
	}
	if _, ok := pkt.Payload.(core.Reply); ok {
		for key, p := range c.pairs {
			if p.elder != id {
				continue
			}
			if key[0] != id && key[1] != id {
				continue
			}
			other := key[0]
			if other == id {
				other = key[1]
			}
			if c.net.Nodes[id].Working() && c.net.Nodes[other].Working() {
				p.elderReplies++
			}
		}
	}
}

// checkDeliver verifies receive discipline right before a frame is handed
// to the protocol layer.
func (c *Checker) checkDeliver(n *node.Node, pkt radio.Packet) {
	if !n.Alive() {
		c.report("rx-discipline", n.ID(), "frame from node %d delivered to a dead node", pkt.From)
		return
	}
	if n.State() == core.Sleeping {
		c.report("rx-discipline", n.ID(), "frame from node %d delivered to a sleeping node", pkt.From)
	}
}

// checkedReceiver interposes the oracle between the medium and a node.
type checkedReceiver struct {
	n *node.Node
	c *Checker
}

var _ radio.Receiver = (*checkedReceiver)(nil)

func (r *checkedReceiver) Listening() bool { return r.n.Listening() }

func (r *checkedReceiver) Deliver(pkt radio.Packet, dist float64) {
	r.c.checkDeliver(r.n, pkt)
	r.n.Deliver(pkt, dist)
}

// scan runs the periodic read-only checks. It uses only non-settling
// battery snapshots: settling would split pending drain into different
// floating-point roundings and nudge the model off its trajectory.
func (c *Checker) scan() {
	now := c.net.Engine.Now()
	tol := c.cfg.EnergyTolerance
	for i, n := range c.net.Nodes {
		st := n.Battery().Snapshot()
		total := consumedTotal(st)

		// Ledger identity: initial == remaining + per-mode sums, up to
		// accumulated rounding proportional to the charge.
		scale := st.Initial
		if scale < 1 {
			scale = 1
		}
		if diff := st.Initial - st.Remaining - total; math.Abs(diff) > tol*scale {
			c.report("energy-ledger", n.ID(),
				"initial %.9g J != remaining %.9g J + consumed %.9g J (off by %.3g J)",
				st.Initial, st.Remaining, total, diff)
		}
		if st.Remaining < 0 {
			c.report("energy-ledger", n.ID(), "remaining charge is negative: %.9g J", st.Remaining)
		}
		if st.Remaining > c.lastRemaining[i]+tol*scale {
			c.report("energy-monotone", n.ID(),
				"remaining charge rose from %.9g J to %.9g J", c.lastRemaining[i], st.Remaining)
		}
		if total < c.lastConsumed[i]-tol*scale {
			c.report("energy-monotone", n.ID(),
				"consumption fell from %.9g J to %.9g J", c.lastConsumed[i], total)
		}
		c.lastRemaining[i] = st.Remaining
		c.lastConsumed[i] = total

		// An exhausted battery must kill the node. Lazy settling can mark
		// the battery dead at the exact instant the depletion event is due
		// but not yet executed, so one full scan interval of slack is
		// allowed before flagging.
		if st.Dead && n.Alive() {
			c.deadScans[i]++
			if c.deadScans[i] >= 2 {
				c.report("lifecycle", n.ID(), "battery dead but node still alive after %.0f s",
					float64(c.deadScans[i]-1)*c.cfg.Interval)
			}
		} else {
			c.deadScans[i] = 0
		}

		// Protocol state, liveness flag and battery mode must agree.
		state := n.State()
		if n.Alive() == (state == core.Dead) {
			c.report("lifecycle", n.ID(), "alive=%v but protocol state is %v", n.Alive(), state)
		}
		if n.Alive() {
			wantSleep := state == core.Sleeping
			isSleep := st.Mode == energy.Sleep
			if wantSleep != isSleep {
				c.report("lifecycle", n.ID(), "state %v but battery mode %v", state, st.Mode)
			}
		}
	}
	c.scanOverlap(now)
}

// scanOverlap maintains the redundant-pair table and flags pairs the §4
// turn-off extension failed to resolve despite enough elder REPLYs.
func (c *Checker) scanOverlap(now float64) {
	if !c.overlapAlive {
		return
	}
	// Collect the working set once; deployments keep it small (§5: ~25
	// workers for 160 deployed), so the pair scan is cheap.
	working := working(c.net)
	current := make(map[[2]core.NodeID]bool, len(c.pairs))
	for i := 0; i < len(working); i++ {
		for j := i + 1; j < len(working); j++ {
			a, b := working[i], working[j]
			if a.Pos().Dist(b.Pos()) > c.rp {
				continue
			}
			wa, wb := a.Protocol().TimeWorking(), b.Protocol().TimeWorking()
			if wa == wb {
				// A perfectly tied pair cannot be resolved: §4 only lets a
				// strictly longer-working node turn off a younger one.
				continue
			}
			key := pairKey(a.ID(), b.ID())
			current[key] = true
			p := c.pairs[key]
			if p == nil {
				p = &pairState{since: now, elder: a.ID()}
				if wb > wa {
					p.elder = b.ID()
				}
				c.pairs[key] = p
			}
			if !p.flagged && now-p.since >= c.cfg.OverlapGrace &&
				p.elderReplies >= c.cfg.OverlapReplies {
				p.flagged = true
				younger := key[0]
				if younger == p.elder {
					younger = key[1]
				}
				c.report("working-overlap", younger,
					"working within Rp=%.1f m of working node %d for %.0f s; %d elder REPLYs failed to turn it off",
					c.rp, p.elder, now-p.since, p.elderReplies)
			}
		}
	}
	for key := range c.pairs {
		if !current[key] {
			delete(c.pairs, key)
		}
	}
}

func working(net *node.Network) []*node.Node {
	out := make([]*node.Node, 0, len(net.Nodes)/4)
	for _, n := range net.Nodes {
		if n.Working() {
			out = append(out, n)
		}
	}
	return out
}

func pairKey(a, b core.NodeID) [2]core.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]core.NodeID{a, b}
}

func consumedTotal(st energy.BatteryState) float64 {
	var total float64
	for _, v := range st.ConsumedByMode {
		total += v
	}
	return total
}
