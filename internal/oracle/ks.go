package oracle

import (
	"math"
	"sort"
)

// ExpKS computes the Kolmogorov-Smirnov statistic of samples against the
// exponential distribution whose rate is fitted from the sample mean
// (rate = 1/mean). It returns the statistic D and the sample count.
//
// Because the rate is estimated from the same data, D is stochastically
// smaller than under a fully specified null (the Lilliefors effect), so
// comparing D·√n against a plain-KS critical value is conservative:
// exponential data essentially never exceeds it, while data from a
// different shape (uniform, deterministic, heavy-tailed) does.
func ExpKS(samples []float64) (d float64, n int) {
	n = len(samples)
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	if mean <= 0 {
		return 1, n
	}
	rate := 1 / mean

	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		f := 1 - math.Exp(-rate*x) // fitted exponential CDF
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return d, n
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Pearson returns the sample correlation coefficient of two equal-length
// series, or 0 when either side is degenerate.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
