// Package grab implements GRAB-style cost-field data forwarding at the
// packet level, over the same radio medium the PEAS protocol uses. It is
// the full-fidelity counterpart of internal/forward (which models delivery
// as working-set connectivity):
//
//   - the sink periodically floods an ADV frame; every working node keeps
//     its cost — the minimum hop count to the sink heard so far this
//     epoch — and rebroadcasts once per epoch (a classic gradient flood);
//   - the source broadcasts each report with the cost of its best
//     neighbor; a working node forwards a report iff its own cost is
//     lower than the cost stamped in the frame (so frames flow strictly
//     downhill, GRAB's mesh), at most once per report;
//   - the sink counts a report as delivered the first time it hears it.
//
// Because frames ride the real medium, deliveries experience airtime,
// carrier sense, collisions and losses. internal/forward remains the
// default for lifetime sweeps (it is ~20x cheaper); package grab exists
// to validate that abstraction and to study MAC effects on data traffic
// (see the grabcheck experiment).
package grab

import (
	"math"

	"peas/internal/core"
	"peas/internal/geom"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/radio"
	"peas/internal/stats"
)

// Frame types carried in radio packets.
type Adv struct {
	// Epoch identifies the flood round.
	Epoch int
	// Cost is the hop distance of the transmitter from the sink.
	Cost int
}

// Report is one data report in flight.
type Report struct {
	// Seq identifies the report.
	Seq int
	// Cost is the transmitter's cost; receivers forward only if their
	// own cost is strictly lower (downhill rule).
	Cost int
}

// Config parameterizes the packet-level workload.
type Config struct {
	// Source and Sink positions (paper: opposite corners).
	Source geom.Point
	Sink   geom.Point
	// Period between report generations (paper: 10 s).
	Period float64
	// AdvPeriod between sink cost-field floods.
	AdvPeriod float64
	// ReportSize and AdvSize in bytes.
	ReportSize int
	AdvSize    int
	// HopRange for data frames (paper: max transmitting range, 10 m).
	HopRange float64
	// ForwardJitterMax bounds the random delay before a node
	// rebroadcasts an ADV or report, de-synchronizing the flood.
	ForwardJitterMax float64
}

// DefaultConfig returns the paper-shaped workload for the given field.
func DefaultConfig(field geom.Field) Config {
	return Config{
		Source:           geom.Point{X: 1, Y: 1},
		Sink:             geom.Point{X: field.Width - 1, Y: field.Height - 1},
		Period:           10,
		AdvPeriod:        100,
		ReportSize:       64,
		AdvSize:          25,
		HopRange:         10,
		ForwardJitterMax: 0.05,
	}
}

// nodeState is the per-node GRAB state: a cost and per-epoch/report
// dedup flags. Costs live outside the PEAS protocol, as the paper's
// layering prescribes (PEAS maintains the working set; GRAB rides it).
type nodeState struct {
	cost      int
	epoch     int
	advSent   bool
	forwarded map[int]bool // report seq -> already relayed
}

// Harness runs the packet-level workload on a network. The source and
// sink are modelled as two extra radio endpoints at fixed positions: the
// sink floods ADVs and counts deliveries; the source stamps and emits
// reports.
type Harness struct {
	cfg   Config
	net   *node.Network
	rng   *stats.RNG
	state []nodeState
	ratio *metrics.Ratio

	epoch     int
	seq       int
	delivered map[int]bool
	// sinkCostOfSource caches whether the source currently has a
	// finite-cost neighbor (set when generating).
	generated int
}

// NewHarness attaches the packet-level GRAB workload. Call Start before
// running.
func NewHarness(cfg Config, net *node.Network) *Harness {
	h := &Harness{
		cfg:       cfg,
		net:       net,
		rng:       stats.NewRNG(net.Config().Seed ^ 0x6a7a5),
		state:     make([]nodeState, len(net.Nodes)),
		ratio:     metrics.NewRatio("grab-success"),
		delivered: make(map[int]bool),
	}
	for i := range h.state {
		h.state[i].cost = math.MaxInt32
		h.state[i].forwarded = make(map[int]bool)
	}
	return h
}

// Start hooks frame delivery and schedules the ADV flood and report
// generation.
func (h *Harness) Start() {
	prev := h.net.OnDeliver
	h.net.OnDeliver = func(id core.NodeID, pkt radio.Packet, dist float64) {
		if prev != nil {
			prev(id, pkt, dist)
		}
		h.onFrame(id, pkt)
	}
	h.net.Engine.NewTicker(h.cfg.AdvPeriod, h.flood)
	// First flood immediately after boot so early reports have a field.
	h.net.Engine.Schedule(1, h.flood)
	h.net.Engine.NewTicker(h.cfg.Period, h.generate)
}

// flood starts a new cost-field epoch from the sink. Per-node state is
// not reset here: nodes keep their previous cost (so reports keep flowing
// during the refresh) and roll over when the new epoch's ADV reaches
// them.
func (h *Harness) flood() {
	h.epoch++
	// The sink transmits ADV(cost=0) from its corner: deliver it to
	// working nodes in range directly (the sink is not an indexed node,
	// so emulate its broadcast with a range query).
	h.injectAt(h.cfg.Sink, Adv{Epoch: h.epoch, Cost: 0})
}

// injectAt delivers a frame from an off-network endpoint (source or sink)
// to every listening working node within HopRange of pos.
func (h *Harness) injectAt(pos geom.Point, payload any) {
	h.net.Index.Within(pos, h.cfg.HopRange, func(i int, _ float64) {
		n := h.net.Nodes[i]
		if n.Working() {
			h.handle(core.NodeID(i), payload)
		}
	})
}

// onFrame handles frames relayed between in-network nodes.
func (h *Harness) onFrame(id core.NodeID, pkt radio.Packet) {
	switch pkt.Payload.(type) {
	case Adv, Report:
		h.handle(id, pkt.Payload)
	}
}

func (h *Harness) handle(id core.NodeID, payload any) {
	n := h.net.Nodes[id]
	if !n.Working() {
		return // only working nodes participate in the gradient
	}
	st := &h.state[id]
	switch msg := payload.(type) {
	case Adv:
		switch {
		case msg.Epoch > st.epoch:
			// New epoch reaches this node: adopt and rebroadcast once.
			st.epoch = msg.Epoch
			st.cost = msg.Cost + 1
			st.advSent = false
			// Report-dedup entries from finished reports can go now.
			if len(st.forwarded) > 1024 {
				st.forwarded = make(map[int]bool)
			}
		case msg.Epoch == st.epoch && msg.Cost+1 < st.cost:
			// Same epoch, better gradient: adopt silently (one ADV per
			// node per epoch keeps the flood linear in nodes).
			st.cost = msg.Cost + 1
		default:
			return
		}
		if st.advSent {
			return
		}
		st.advSent = true
		cost := st.cost
		h.net.Engine.Schedule(h.rng.Uniform(0, h.cfg.ForwardJitterMax), func() {
			if !n.Working() {
				return
			}
			h.net.Medium.Broadcast(radio.Packet{
				From:    radio.NodeID(id),
				Size:    h.cfg.AdvSize,
				Range:   h.cfg.HopRange,
				Payload: Adv{Epoch: h.epoch, Cost: cost},
			})
		})
	case Report:
		if st.forwarded[msg.Seq] || st.cost >= msg.Cost {
			return // not downhill from the transmitter, or already sent
		}
		st.forwarded[msg.Seq] = true
		// Delivery check: the sink hears any transmission within range.
		if n.Pos().Dist(h.cfg.Sink) <= h.cfg.HopRange {
			h.deliver(msg.Seq)
		}
		cost := st.cost
		h.net.Engine.Schedule(h.rng.Uniform(0, h.cfg.ForwardJitterMax), func() {
			if !n.Working() {
				return
			}
			h.net.Medium.Broadcast(radio.Packet{
				From:    radio.NodeID(id),
				Size:    h.cfg.ReportSize,
				Range:   h.cfg.HopRange,
				Payload: Report{Seq: msg.Seq, Cost: cost},
			})
		})
	}
}

func (h *Harness) deliver(seq int) {
	if h.delivered[seq] {
		return
	}
	h.delivered[seq] = true
}

// generate emits one report from the source and schedules the delivery
// verdict after a generous multi-hop deadline (the cumulative ratio is
// observed then, so in-flight reports are not counted as lost).
func (h *Harness) generate() {
	h.generated++
	seq := h.seq
	h.seq++
	// The source stamps an effectively infinite cost so any working
	// neighbor with a finite cost forwards.
	h.injectAt(h.cfg.Source, Report{Seq: seq, Cost: math.MaxInt32})
	deadline := h.cfg.Period / 2
	h.net.Engine.Schedule(deadline, func() {
		h.ratio.Observe(h.net.Engine.Now(), h.delivered[seq])
	})
}

// Ratio exposes the cumulative delivery recorder.
func (h *Harness) Ratio() *metrics.Ratio { return h.ratio }

// DeliveryLifetime returns the 90% cumulative-success crossing.
func (h *Harness) DeliveryLifetime(threshold float64) (float64, bool) {
	return h.ratio.Series().FirstBelow(threshold, 1)
}
