package grab

import (
	"testing"

	"peas/internal/forward"
	"peas/internal/node"
)

func testNet(t *testing.T, n int, seed int64) *node.Network {
	t.Helper()
	net, err := node.NewNetwork(node.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestPacketLevelDelivery(t *testing.T) {
	net := testNet(t, 480, 41)
	h := NewHarness(DefaultConfig(net.Field), net)
	h.Start()
	net.Start()
	net.Run(1500)

	gen, succ := h.Ratio().Counts()
	if gen < 100 {
		t.Fatalf("only %d verdicts in 1500 s", gen)
	}
	ratio := float64(succ) / float64(gen)
	t.Logf("packet-level delivery: %d/%d (%.2f)", succ, gen, ratio)
	// Real MAC effects (collisions, refresh transients) cost a few
	// percent, but a healthy 480-node working set must deliver the
	// overwhelming majority of reports.
	if ratio < 0.85 {
		t.Errorf("delivery ratio %.2f below 0.85", ratio)
	}
}

// TestAbstractionAgreement cross-validates the connectivity-level
// forwarding model (internal/forward) against the packet-level gradient:
// over a healthy working set both should deliver nearly everything, and
// over an empty working set both must deliver nothing.
func TestAbstractionAgreement(t *testing.T) {
	net := testNet(t, 480, 43)
	pk := NewHarness(DefaultConfig(net.Field), net)
	ab := forward.NewHarness(forward.DefaultConfig(net.Field), net)
	pk.Start()
	ab.Start()
	net.Start()
	net.Run(1200)

	_, pkSucc := pk.Ratio().Counts()
	_, abSucc := ab.Ratio().Counts()
	pkRatio := pk.Ratio().Value()
	abRatio := ab.Ratio().Value()
	t.Logf("packet=%.3f abstract=%.3f (succ %d vs %d)", pkRatio, abRatio, pkSucc, abSucc)
	if abRatio-pkRatio > 0.15 {
		t.Errorf("abstraction too optimistic: packet %.2f vs abstract %.2f", pkRatio, abRatio)
	}
	if pkRatio > abRatio+0.01 {
		t.Errorf("packet-level delivered more than connectivity allows: %.3f > %.3f",
			pkRatio, abRatio)
	}
}

func TestNoDeliveryWithoutWorkers(t *testing.T) {
	net := testNet(t, 100, 44)
	h := NewHarness(DefaultConfig(net.Field), net)
	h.Start()
	// Network never started: nobody works, nothing flows.
	net.Run(300)
	if _, succ := h.Ratio().Counts(); succ != 0 {
		t.Errorf("%d deliveries with no working nodes", succ)
	}
}

func TestSparseNetworkPartitioned(t *testing.T) {
	// 20 nodes on 50x50 m cannot bridge 68 m with 10 m hops reliably.
	net := testNet(t, 20, 45)
	h := NewHarness(DefaultConfig(net.Field), net)
	h.Start()
	net.Start()
	net.Run(500)
	if h.Ratio().Value() > 0.5 {
		t.Errorf("sparse partitioned network delivered %.2f", h.Ratio().Value())
	}
}

func TestCostFieldMonotone(t *testing.T) {
	net := testNet(t, 480, 46)
	h := NewHarness(DefaultConfig(net.Field), net)
	h.Start()
	net.Start()
	net.Run(400)

	// Every working node with a finite cost must have the sink within
	// cost * HopRange (hop-count geometry lower bound).
	for i, st := range h.state {
		if !net.Nodes[i].Working() || st.cost >= 1<<30 {
			continue
		}
		maxReach := float64(st.cost) * h.cfg.HopRange
		if d := net.Nodes[i].Pos().Dist(h.cfg.Sink); d > maxReach+1e-9 {
			t.Fatalf("node %d: cost %d cannot cover distance %.1f", i, st.cost, d)
		}
	}
}
