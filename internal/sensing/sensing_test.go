package sensing

import (
	"math"
	"testing"

	"peas/internal/geom"
	"peas/internal/stats"
)

func TestTargetStaysInField(t *testing.T) {
	f := geom.NewField(30, 30)
	tg := NewTarget(0, f, 2, stats.NewRNG(1))
	for i := 0; i < 5000; i++ {
		tg.Advance(1)
		if !f.Contains(tg.Pos) {
			t.Fatalf("target escaped to %v at step %d", tg.Pos, i)
		}
	}
}

func TestTargetMoves(t *testing.T) {
	f := geom.NewField(30, 30)
	tg := NewTarget(0, f, 1.5, stats.NewRNG(2))
	start := tg.Pos
	tg.Advance(10)
	moved := start.Dist(tg.Pos)
	// Straight-line displacement is at most speed*time; waypoint turns
	// make it shorter but it should not be zero.
	if moved == 0 || moved > 15+1e-9 {
		t.Errorf("moved %v in 10 s at 1.5 m/s", moved)
	}
}

func TestTargetSpeedRespected(t *testing.T) {
	f := geom.NewField(1000, 1000) // huge field: rarely hits a waypoint
	tg := NewTarget(0, f, 3, stats.NewRNG(3))
	prev := tg.Pos
	for i := 0; i < 100; i++ {
		tg.Advance(1)
		if d := prev.Dist(tg.Pos); d > 3+1e-9 {
			t.Fatalf("target covered %v m in 1 s at 3 m/s", d)
		}
		prev = tg.Pos
	}
}

func TestTrackerAlwaysDetectedWhenCovered(t *testing.T) {
	f := geom.NewField(20, 20)
	tr := NewTracker(f, 100 /* covers everything */, 3, 2, stats.NewRNG(4))
	sensors := []geom.Point{{X: 10, Y: 10}}
	for now := 1.0; now <= 100; now++ {
		tr.Observe(now, sensors)
	}
	r := tr.Report()
	if r.DetectedFraction < 0.999 {
		t.Errorf("detected fraction %v under full coverage", r.DetectedFraction)
	}
	if r.Exposures != 0 {
		t.Errorf("%d exposures under full coverage", r.Exposures)
	}
}

func TestTrackerNeverDetectedWithoutSensors(t *testing.T) {
	f := geom.NewField(20, 20)
	tr := NewTracker(f, 5, 2, 2, stats.NewRNG(5))
	for now := 1.0; now <= 50; now++ {
		tr.Observe(now, nil)
	}
	r := tr.Report()
	if r.DetectedFraction != 0 {
		t.Errorf("detected fraction %v with no sensors", r.DetectedFraction)
	}
}

func TestTrackerExposureIntervals(t *testing.T) {
	f := geom.NewField(20, 20)
	tr := NewTracker(f, 3, 1, 0 /* stationary target */, stats.NewRNG(6))
	pos := tr.Targets()[0].Pos
	near := []geom.Point{pos}

	tr.Observe(1, near) // detected
	tr.Observe(2, nil)  // exposure starts at t=2
	tr.Observe(3, nil)  // still exposed
	tr.Observe(4, near) // exposure ends: 2 seconds
	tr.Observe(5, near) // detected

	r := tr.Report()
	if r.Exposures != 1 {
		t.Fatalf("exposures = %d, want 1", r.Exposures)
	}
	if math.Abs(r.MeanExposure-2) > 1e-9 || math.Abs(r.MaxExposure-2) > 1e-9 {
		t.Errorf("exposure duration %v/%v, want 2", r.MeanExposure, r.MaxExposure)
	}
	// 3 of 5 observed seconds detected (t=1 dt=1, t=4 dt=1, t=5 dt=1).
	if math.Abs(r.DetectedFraction-3.0/5) > 1e-9 {
		t.Errorf("detected fraction %v, want 0.6", r.DetectedFraction)
	}
}
