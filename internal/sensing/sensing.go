// Package sensing models the application workload PEAS exists to serve:
// detecting events in the field. Mobile targets (the paper's motivating
// example is animal tracking) move through the deployment; a target is
// detected whenever a *working* node has it within sensing range. The
// package measures detection latency and exposure — how long a target
// moves unobserved — which is what the application's "interruptions in
// sensing" tolerance (§2.2.1) is about.
package sensing

import (
	"math"

	"peas/internal/geom"
	"peas/internal/stats"
)

// Target is a mobile point following a random-waypoint trajectory:
// pick a uniform waypoint, move toward it at Speed, repeat.
type Target struct {
	ID    int
	Pos   geom.Point
	Speed float64 // meters/second

	waypoint geom.Point
	rng      *stats.RNG
	field    geom.Field
}

// NewTarget places a target uniformly in the field with the given speed.
func NewTarget(id int, field geom.Field, speed float64, rng *stats.RNG) *Target {
	t := &Target{
		ID:    id,
		Speed: speed,
		rng:   rng,
		field: field,
	}
	t.Pos = geom.Point{X: rng.Uniform(0, field.Width), Y: rng.Uniform(0, field.Height)}
	t.pickWaypoint()
	return t
}

func (t *Target) pickWaypoint() {
	t.waypoint = geom.Point{
		X: t.rng.Uniform(0, t.field.Width),
		Y: t.rng.Uniform(0, t.field.Height),
	}
}

// Advance moves the target dt seconds along its trajectory, possibly
// through several waypoints.
func (t *Target) Advance(dt float64) {
	remaining := t.Speed * dt
	for remaining > 0 {
		d := t.Pos.Dist(t.waypoint)
		if d <= remaining {
			t.Pos = t.waypoint
			remaining -= d
			t.pickWaypoint()
			if d == 0 {
				// Degenerate waypoint on our position; avoid spinning.
				return
			}
			continue
		}
		frac := remaining / d
		t.Pos = geom.Point{
			X: t.Pos.X + (t.waypoint.X-t.Pos.X)*frac,
			Y: t.Pos.Y + (t.waypoint.Y-t.Pos.Y)*frac,
		}
		remaining = 0
	}
}

// Tracker measures per-target detection over time. Call Observe
// periodically with the current working-node positions.
type Tracker struct {
	field        geom.Field
	sensingRange float64
	targets      []*Target
	lastT        float64

	// Per-target exposure state.
	exposedSince []float64 // NaN while detected
	exposures    []float64 // completed undetected intervals
	detectedTime float64
	totalTime    float64
}

// NewTracker creates count targets with the given speed.
func NewTracker(field geom.Field, sensingRange float64, count int, speed float64, rng *stats.RNG) *Tracker {
	tr := &Tracker{
		field:        field,
		sensingRange: sensingRange,
		exposedSince: make([]float64, count),
	}
	for i := 0; i < count; i++ {
		tr.targets = append(tr.targets, NewTarget(i, field, speed, rng.Split()))
		tr.exposedSince[i] = math.NaN()
	}
	return tr
}

// Targets exposes the targets (e.g. for rendering).
func (tr *Tracker) Targets() []*Target { return tr.targets }

// Observe advances every target to time now and classifies it as
// detected (a working node within sensing range) or exposed.
func (tr *Tracker) Observe(now float64, working []geom.Point) {
	dt := now - tr.lastT
	if dt < 0 {
		dt = 0
	}
	tr.lastT = now
	tr.totalTime += dt * float64(len(tr.targets))

	var idx *geom.Index
	if len(working) > 0 {
		idx = geom.NewIndex(tr.field, working, tr.sensingRange)
	}
	for i, tg := range tr.targets {
		tg.Advance(dt)
		detected := false
		if idx != nil {
			idx.Within(tg.Pos, tr.sensingRange, func(int, float64) { detected = true })
		}
		switch {
		case detected && !math.IsNaN(tr.exposedSince[i]):
			// Exposure ends.
			tr.exposures = append(tr.exposures, now-tr.exposedSince[i])
			tr.exposedSince[i] = math.NaN()
		case !detected && math.IsNaN(tr.exposedSince[i]):
			// Exposure begins.
			tr.exposedSince[i] = now
		}
		if detected {
			tr.detectedTime += dt
		}
	}
}

// Report summarizes the tracking quality.
type Report struct {
	// DetectedFraction is the fraction of target-time spent detected.
	DetectedFraction float64
	// Exposures is the number of completed undetected intervals.
	Exposures int
	// MeanExposure and MaxExposure describe the undetected intervals in
	// seconds (completed intervals only).
	MeanExposure float64
	MaxExposure  float64
}

// Report computes the summary at the end of an observation run.
func (tr *Tracker) Report() Report {
	r := Report{Exposures: len(tr.exposures)}
	if tr.totalTime > 0 {
		r.DetectedFraction = tr.detectedTime / tr.totalTime
	}
	if len(tr.exposures) > 0 {
		r.MeanExposure = stats.Mean(tr.exposures)
		for _, e := range tr.exposures {
			if e > r.MaxExposure {
				r.MaxExposure = e
			}
		}
	}
	return r
}
