package durable

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the writable-file surface the atomic write protocol needs:
// append bytes, force them to stable storage, release the descriptor.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the syscall surface the durability layer is written against.
// Production code uses OS; tests substitute a FaultFS to inject
// ENOSPC, short writes, simulated crashes between any two syscalls,
// and torn renames.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, making renames and removals
	// within it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }

// SyncDir implements FS. Filesystems that cannot fsync a directory
// (some network and FUSE mounts report EINVAL or ENOTSUP) degrade to a
// no-op: the rename itself is still atomic, only its durability across
// power loss is weakened, and failing the write for it would hurt more.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return nil
}
