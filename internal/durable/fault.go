package durable

import (
	"errors"
	"io"
	"io/fs"
	"sync"
	"time"
)

// ErrCrashed is returned by every mutating operation after a FaultFS
// crash point fires: the simulated machine is off, nothing reaches the
// disk anymore.
var ErrCrashed = errors.New("durable: simulated crash: filesystem offline")

// FaultFS wraps an FS and injects disk faults deterministically:
//
//   - FailWrites makes every File.Write fail with a chosen error
//     (ENOSPC being the canonical tenant) without persisting anything.
//   - ShortWrites makes every File.Write persist only a prefix and
//     report io.ErrShortWrite, modeling a torn in-place write.
//   - CrashAt(n) arms a crash point at the n-th mutating operation:
//     that operation is interrupted (a write persists a prefix, a
//     rename is dropped — or torn, see TornRenames) and every later
//     mutation fails with ErrCrashed. The state left behind on the
//     inner FS is exactly what a SIGKILL or power loss at that syscall
//     boundary would leave; tests then reopen the directory with a
//     clean FS to simulate the restart.
//   - TornRenames makes a crashing rename leave a partial copy of the
//     source at the destination, modeling non-atomic renames on
//     filesystems without POSIX semantics — the case only the CRC
//     frame can catch.
//
// Reads pass through uncounted and keep working after a crash, so a
// test can inspect the post-crash disk through the same handle.
type FaultFS struct {
	inner FS

	mu          sync.Mutex
	ops         int
	crashAt     int
	crashed     bool
	writeErr    error
	shortWrites bool
	tornRenames bool
	delay       time.Duration
}

// NewFaultFS wraps inner (nil = the real filesystem).
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OS{}
	}
	return &FaultFS{inner: inner}
}

// Slow returns an FS whose every mutating operation sleeps d first:
// the crash-soak harness runs peas-serve with a slowed FS so randomized
// SIGKILLs land inside durable-write windows with useful probability.
func Slow(inner FS, d time.Duration) FS {
	f := NewFaultFS(inner)
	f.SetDelay(d)
	return f
}

// Ops returns the number of mutating operations attempted so far; with
// a fixed workload it is deterministic, which is what lets crash-sweep
// tests enumerate every interruption point.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the armed crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// CrashAt arms the crash point at the n-th (1-based) mutating
// operation, counted from now; n <= 0 disarms.
func (f *FaultFS) CrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.crashed = false
	f.crashAt = n
}

// FailWrites makes every File.Write fail with err (nil restores normal
// writes).
func (f *FaultFS) FailWrites(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr = err
}

// ShortWrites toggles torn in-place writes: half the bytes land, then
// io.ErrShortWrite.
func (f *FaultFS) ShortWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWrites = on
}

// TornRenames toggles non-atomic crashing renames.
func (f *FaultFS) TornRenames(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tornRenames = on
}

// SetDelay makes every mutating operation sleep d before executing.
func (f *FaultFS) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Reset disarms every fault and zeroes the operation counter.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.crashAt = 0
	f.crashed = false
	f.writeErr = nil
	f.shortWrites = false
	f.tornRenames = false
}

// step accounts one mutating operation. It returns interrupt=true when
// this operation is the armed crash point (the caller applies its
// partial effect, then the disk is off), and ErrCrashed for every
// operation after it.
func (f *FaultFS) step() (interrupt bool, err error) {
	f.mu.Lock()
	d := f.delay
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrCrashed
	}
	f.ops++
	if f.crashAt > 0 && f.ops == f.crashAt {
		f.crashed = true
		return true, nil
	}
	return false, nil
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if interrupt, err := f.step(); err != nil || interrupt {
		if interrupt {
			return ErrCrashed
		}
		return err
	}
	return f.inner.MkdirAll(dir)
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if interrupt, err := f.step(); err != nil || interrupt {
		if interrupt {
			return nil, ErrCrashed
		}
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// ReadFile implements FS (uncounted; works after a crash).
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// ReadDir implements FS (uncounted; works after a crash).
func (f *FaultFS) ReadDir(dir string) ([]fs.DirEntry, error) { return f.inner.ReadDir(dir) }

// Rename implements FS. A crashing rename is dropped — or, with
// TornRenames, leaves a partial destination the CRC frame must catch.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	interrupt, err := f.step()
	if err != nil {
		return err
	}
	if interrupt {
		f.mu.Lock()
		torn := f.tornRenames
		f.mu.Unlock()
		if torn {
			if data, rerr := f.inner.ReadFile(oldpath); rerr == nil && len(data) > 0 {
				if dst, cerr := f.inner.Create(newpath); cerr == nil {
					_, _ = dst.Write(data[:(len(data)+1)/2])
					_ = dst.Close()
				}
			}
		}
		return ErrCrashed
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if interrupt, err := f.step(); err != nil || interrupt {
		if interrupt {
			return ErrCrashed
		}
		return err
	}
	return f.inner.Remove(name)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if interrupt, err := f.step(); err != nil || interrupt {
		if interrupt {
			return ErrCrashed
		}
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes file mutations through the parent's fault logic.
type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write implements File. Injection order: configured write errors
// (ENOSPC) first, then short writes, then the crash point — a crashing
// write persists a prefix, like a page that made it to disk before the
// power died.
func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	werr := w.fs.writeErr
	short := w.fs.shortWrites
	w.fs.mu.Unlock()
	if werr != nil {
		return 0, werr
	}
	interrupt, err := w.fs.step()
	if err != nil {
		return 0, err
	}
	if interrupt {
		n, _ := w.inner.Write(p[:len(p)/2])
		return n, ErrCrashed
	}
	if short {
		n, err := w.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return w.inner.Write(p)
}

// Sync implements File.
func (w *faultFile) Sync() error {
	if interrupt, err := w.fs.step(); err != nil || interrupt {
		if interrupt {
			return ErrCrashed
		}
		return err
	}
	return w.inner.Sync()
}

// Close implements File. Close always releases the descriptor — a
// crashed process still has its files closed by the kernel — but
// reports the crash so protocol code stops.
func (w *faultFile) Close() error {
	interrupt, err := w.fs.step()
	cerr := w.inner.Close()
	if err != nil {
		return err
	}
	if interrupt {
		return ErrCrashed
	}
	return cerr
}
