// Package durable provides crash-only file persistence: atomic,
// fsync'd, CRC-framed single-file writes with an injectable filesystem
// fault layer. It is the foundation the jobqueue state store is built
// on, and the contract it offers is deliberately narrow:
//
//   - WriteFile persists a payload with write-tmp → fsync(file) →
//     rename → fsync(dir). After a crash at ANY point, the destination
//     path holds either the complete previous payload or the complete
//     new payload — never a mix — because the only mutation of the
//     destination is an atomic rename of fully-synced bytes.
//   - Every payload is wrapped in a CRC-32C frame, so damage that the
//     protocol cannot rule out (torn renames on non-POSIX filesystems,
//     media corruption, a file truncated by an operator) is *detected*
//     at read time and surfaced as ErrCorrupt instead of being parsed.
//   - ReadFile verifies the frame and returns the payload, or
//     ErrCorrupt. Callers decide policy (the jobqueue quarantines).
//
// The FS interface abstracts the handful of syscalls involved so tests
// can interpose a FaultFS that injects ENOSPC, short writes, simulated
// crashes between any two syscalls, and torn renames — which is how the
// crash-point sweep tests prove the old-or-new guarantee holds at every
// interruption boundary.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// ErrCorrupt reports a file whose frame failed validation: wrong magic,
// impossible length, or a CRC mismatch. The payload cannot be trusted.
var ErrCorrupt = errors.New("durable: corrupt frame")

// frameMagic identifies a durable frame; the trailing byte is the frame
// format version.
var frameMagic = [8]byte{'P', 'E', 'A', 'S', 'D', 'U', 'R', 1}

// headerSize is magic(8) + payload length(4) + CRC-32C(4).
const headerSize = 16

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64, and with better error-detection spread than IEEE).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame wraps payload in the durable frame: magic, little-endian payload
// length, CRC-32C of the payload, then the payload bytes.
func Frame(payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, frameMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// Unframe validates data as a durable frame and returns the payload.
// Truncated, oversized, or bit-flipped input returns an error wrapping
// ErrCorrupt; it never panics and never returns a damaged payload.
func Unframe(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if [8]byte(data[:8]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(data[8:])
	if int(n) != len(data)-headerSize {
		return nil, fmt.Errorf("%w: header claims %d payload bytes, file carries %d", ErrCorrupt, n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[12:]); got != want {
		return nil, fmt.Errorf("%w: CRC %08x, frame records %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// TmpSuffix marks in-progress writes. A file carrying it was never
// renamed into place and holds no committed data; recovery sweeps are
// free to delete it.
const TmpSuffix = ".tmp"

// WriteFile atomically persists payload at path, framed:
//
//	write path.tmp → fsync(path.tmp) → close → rename(tmp, path) → fsync(dir)
//
// On any error the destination is untouched (the previous payload, if
// any, remains committed) and the temporary file is best-effort removed.
func WriteFile(fsys FS, path string, payload []byte) error {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("durable: mkdir %s: %w", dir, err)
	}
	tmp := path + TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: create %s: %w", tmp, err)
	}
	frame := Frame(payload)
	if _, err := f.Write(frame); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("durable: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("durable: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("durable: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("durable: rename %s: %w", path, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: fsync dir %s: %w", dir, err)
	}
	return nil
}

// ReadFile reads path and validates its frame, returning the payload.
// A missing file returns the underlying not-exist error; a present but
// damaged file returns an error wrapping ErrCorrupt.
func ReadFile(fsys FS, path string) ([]byte, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := Unframe(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}
