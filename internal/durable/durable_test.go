package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestFrameRoundTrip pins the frame layout: framed payloads round-trip,
// and the empty payload is legal.
func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xA5}, 4096)} {
		got, err := Unframe(Frame(payload))
		if err != nil {
			t.Fatalf("Unframe(Frame(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip of %d bytes diverged", len(payload))
		}
	}
}

// TestUnframeRejectsEveryCorruption is the frame's detection sweep: a
// bit flip at every byte offset and a truncation at every boundary must
// each yield ErrCorrupt — no mutation may pass validation.
func TestUnframeRejectsEveryCorruption(t *testing.T) {
	frame := Frame([]byte("the canonical payload under test, long enough to matter"))
	for off := 0; off < len(frame); off++ {
		mutated := bytes.Clone(frame)
		mutated[off] ^= 0x40
		if _, err := Unframe(mutated); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at offset %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	for n := 0; n < len(frame); n++ {
		if _, err := Unframe(frame[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	if _, err := Unframe(append(bytes.Clone(frame), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing garbage byte passed validation")
	}
}

// TestWriteFileRoundTrip covers the happy path on the real filesystem,
// including overwrite.
func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "state.bin")
	fsys := OS{}
	for _, payload := range []string{"first", "second, longer than the first"} {
		if err := WriteFile(fsys, path, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(fsys, path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != payload {
			t.Fatalf("read %q, want %q", got, payload)
		}
	}
	if _, err := os.Stat(path + TmpSuffix); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind after a clean write")
	}
}

// writeOps measures how many mutating operations one successful
// WriteFile performs, so the crash sweep can enumerate them all.
func writeOps(t *testing.T) int {
	t.Helper()
	f := NewFaultFS(OS{})
	if err := WriteFile(f, filepath.Join(t.TempDir(), "probe.bin"), []byte("probe")); err != nil {
		t.Fatal(err)
	}
	return f.Ops()
}

// TestCrashPointSweep is the core durability proof: for a crash at
// every syscall boundary of an overwriting WriteFile, the destination
// afterwards holds either the complete old payload or the complete new
// payload — ReadFile (on a clean FS, simulating the restart) never
// reports corruption and never returns a mix.
func TestCrashPointSweep(t *testing.T) {
	old, new_ := []byte("old committed payload"), []byte("new payload being written when the machine died")
	total := writeOps(t)
	if total < 6 {
		t.Fatalf("WriteFile performed only %d ops; protocol steps missing", total)
	}

	for k := 1; k <= total; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "state.bin")
		if err := WriteFile(OS{}, path, old); err != nil {
			t.Fatal(err)
		}
		f := NewFaultFS(OS{})
		f.CrashAt(k)
		err := WriteFile(f, path, new_)
		if k <= total && err == nil {
			t.Fatalf("crash at op %d: WriteFile succeeded", k)
		}
		if !f.Crashed() {
			t.Fatalf("crash at op %d never fired (run took %d ops)", k, f.Ops())
		}

		// Restart: reopen the directory with a clean FS.
		got, rerr := ReadFile(OS{}, path)
		if rerr != nil {
			t.Fatalf("crash at op %d: post-crash read failed: %v", k, rerr)
		}
		if !bytes.Equal(got, old) && !bytes.Equal(got, new_) {
			t.Fatalf("crash at op %d: destination holds neither old nor new payload: %q", k, got)
		}
	}
}

// TestCrashPointSweepFreshFile covers first-ever writes: after a crash
// at any boundary the destination either does not exist or holds the
// complete payload; a leftover .tmp never validates as committed state.
func TestCrashPointSweepFreshFile(t *testing.T) {
	payload := []byte("first payload ever written to this path")
	total := writeOps(t)
	for k := 1; k <= total; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "state.bin")
		f := NewFaultFS(OS{})
		f.CrashAt(k)
		_ = WriteFile(f, path, payload)

		got, err := ReadFile(OS{}, path)
		switch {
		case os.IsNotExist(err):
			// Nothing committed — fine.
		case err != nil:
			t.Fatalf("crash at op %d: %v", k, err)
		case !bytes.Equal(got, payload):
			t.Fatalf("crash at op %d: committed partial payload %q", k, got)
		}
	}
}

// TestTornRenameDetected models a filesystem whose rename is not
// atomic: the destination ends up with half the frame. The CRC must
// refuse it — this is the failure mode the frame exists for.
func TestTornRenameDetected(t *testing.T) {
	total := writeOps(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	f := NewFaultFS(OS{})
	f.TornRenames(true)
	f.CrashAt(total - 1) // the rename is the second-to-last op
	err := WriteFile(f, path, []byte("payload destined to tear"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed at the rename", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("torn rename left no destination: %v", err)
	}
	if _, err := ReadFile(OS{}, path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn destination read back as valid: err = %v, want ErrCorrupt", err)
	}
}

// TestENOSPC: a full disk fails the write, leaves the destination's
// previous payload committed, and leaves no temporary file.
func TestENOSPC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFile(OS{}, path, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	f := NewFaultFS(OS{})
	f.FailWrites(syscall.ENOSPC)
	if err := WriteFile(f, path, []byte("doomed")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	got, err := ReadFile(OS{}, path)
	if err != nil || string(got) != "committed" {
		t.Fatalf("previous payload damaged: %q, %v", got, err)
	}
	if _, err := os.Stat(path + TmpSuffix); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind after ENOSPC")
	}
}

// TestShortWrite: a torn in-place write errors out and never commits.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	f := NewFaultFS(OS{})
	f.ShortWrites(true)
	if err := WriteFile(f, path, []byte("will tear")); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("short write committed a destination file")
	}
}

// TestOpCountDeterminism: the same workload takes the same number of
// operations, the property the crash sweep and the kill9 soak rely on.
func TestOpCountDeterminism(t *testing.T) {
	a, b := writeOps(t), writeOps(t)
	if a != b {
		t.Fatalf("op counts %d vs %d for identical workloads", a, b)
	}
}
