package forward

import (
	"testing"

	"peas/internal/energy"
	"peas/internal/geom"
	"peas/internal/node"
)

func testNet(t *testing.T, n int, seed int64) *node.Network {
	t.Helper()
	net, err := node.NewNetwork(node.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestDefaultConfigCorners(t *testing.T) {
	cfg := DefaultConfig(geom.NewField(50, 50))
	if cfg.Source != (geom.Point{X: 1, Y: 1}) || cfg.Sink != (geom.Point{X: 49, Y: 49}) {
		t.Errorf("source/sink: %+v", cfg)
	}
	if cfg.Period != 10 || cfg.HopRange != 10 {
		t.Errorf("workload params: %+v", cfg)
	}
}

func TestReportsFlowOverWorkingSet(t *testing.T) {
	net := testNet(t, 320, 21)
	h := NewHarness(DefaultConfig(net.Field), net)
	h.Start()
	net.Start()
	net.Run(1000)

	gen, succ := h.Ratio().Counts()
	if gen != 100 {
		t.Errorf("generated %d reports in 1000 s, want 100", gen)
	}
	// A 320-node deployment keeps the field connected: nearly every
	// report must arrive.
	if float64(succ) < 0.95*float64(gen) {
		t.Errorf("delivered %d of %d", succ, gen)
	}
	if h.Hops().Len() != succ {
		t.Errorf("hop series %d entries for %d deliveries", h.Hops().Len(), succ)
	}
	// Paths across a 68-meter diagonal with 10 m hops need >= 6 hops.
	if h.Hops().MaxV() < 6 {
		t.Errorf("max hops %v implausibly small", h.Hops().MaxV())
	}
	if lt, dropped := h.DeliveryLifetime(0.9); dropped {
		t.Errorf("delivery lifetime dropped at %v during healthy phase", lt)
	}
}

func TestDeliveryFailsWithoutWorkers(t *testing.T) {
	net := testNet(t, 50, 22)
	h := NewHarness(DefaultConfig(net.Field), net)
	h.Start()
	// Do not start the network: no node ever works.
	net.Run(200)
	gen, succ := h.Ratio().Counts()
	if gen == 0 {
		t.Fatal("no reports generated")
	}
	if succ != 0 {
		t.Errorf("%d deliveries with no working nodes", succ)
	}
	if lt, dropped := h.DeliveryLifetime(0.9); !dropped || lt != 10 {
		t.Errorf("lifetime = (%v, %v), want (10, true)", lt, dropped)
	}
}

func TestPathEnergyCharged(t *testing.T) {
	net := testNet(t, 320, 23)
	h := NewHarness(DefaultConfig(net.Field), net)
	h.Start()
	net.Start()
	net.Run(500)
	// Some node on some path must have paid data-transmit energy.
	var dataTx float64
	for _, n := range net.Nodes {
		dataTx += n.Battery().ConsumedIn(net.Engine.Now(), energy.DataTransmit)
	}
	if dataTx <= 0 {
		t.Error("no data-transmit energy charged along delivery paths")
	}
}
