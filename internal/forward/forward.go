// Package forward provides the data-delivery substrate of the evaluation.
// The paper delivers source reports to a sink with GRAB [11], a cost-field
// (gradient) forwarding protocol running over the working nodes. This
// package reproduces GRAB's role in the evaluation:
//
//   - the sink maintains a hop-count cost field over the current working
//     set (GRAB's periodically refreshed ADV flood);
//   - a report generated at the source is delivered iff a relay path of
//     working nodes exists from source to sink with per-hop range Rt
//     (GRAB's forwarding mesh follows decreasing cost, so delivery
//     succeeds exactly when the gradient is connected);
//   - nodes on the delivery path are charged transmit/receive energy for
//     the report.
//
// The cumulative success ratio and the 90% data-delivery lifetime match
// the paper's definitions (§5.2).
package forward

import (
	"peas/internal/energy"
	"peas/internal/geom"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/sim"
	"peas/internal/stats"
)

// Config parameterizes the source/sink workload.
type Config struct {
	// Source and Sink positions; the paper places them "in opposite
	// corners of the field".
	Source geom.Point
	Sink   geom.Point
	// Period between report generations (paper: 10 s).
	Period float64
	// ReportSize in bytes for energy accounting of relayed reports.
	ReportSize int
	// HopRange is the per-hop radio range for data traffic (paper: the
	// maximum transmitting range, 10 m).
	HopRange float64
	// MeshWidth is GRAB's credit-controlled mesh width: the number of
	// node-disjoint paths a report travels. 0 or 1 selects single-path
	// forwarding.
	MeshWidth int
	// HopLossRate is an i.i.d. per-hop data-frame loss probability; a
	// report is delivered if at least one mesh path survives end to end.
	HopLossRate float64
	// Seed drives the per-hop loss sampling. Zero derives a fixed seed.
	Seed int64
}

// DefaultConfig returns the paper's workload over the given field: source
// and sink in opposite corners, one 64-byte report every 10 seconds,
// 10-meter hops.
func DefaultConfig(field geom.Field) Config {
	return Config{
		Source:     geom.Point{X: 1, Y: 1},
		Sink:       geom.Point{X: field.Width - 1, Y: field.Height - 1},
		Period:     10,
		ReportSize: 64,
		HopRange:   10,
		MeshWidth:  1,
	}
}

// Harness drives the source/sink workload on a network.
type Harness struct {
	cfg    Config
	net    *node.Network
	ratio  *metrics.Ratio
	hops   *metrics.Series
	rng    *stats.RNG
	ticker *sim.Ticker
}

// NewHarness attaches the workload to net. Call Start before running the
// simulation.
func NewHarness(cfg Config, net *node.Network) *Harness {
	if cfg.MeshWidth < 1 {
		cfg.MeshWidth = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = net.Config().Seed ^ 0x9e3779b9
	}
	return &Harness{
		cfg:   cfg,
		net:   net,
		ratio: metrics.NewRatio("data-success-ratio"),
		hops:  metrics.NewSeries("delivery-hops"),
		rng:   stats.NewRNG(seed),
	}
}

// Start schedules periodic report generation.
func (h *Harness) Start() {
	h.ticker = h.net.Engine.NewTicker(h.cfg.Period, h.generate)
}

// HarnessState is the serializable state of the workload: the delivery
// recorders, the per-hop loss RNG stream, and the phase of the report
// generator.
type HarnessState struct {
	Generated   int
	Succeeded   int
	RatioPoints []metrics.Point
	HopsPoints  []metrics.Point
	RNG         stats.RNGState
	// NextGenAt is the absolute time of the next report generation
	// (sim.Forever when the generator is stopped).
	NextGenAt float64
}

// Snapshot captures the harness state without mutating it.
func (h *Harness) Snapshot() HarnessState {
	gen, succ := h.ratio.Counts()
	st := HarnessState{
		Generated:   gen,
		Succeeded:   succ,
		RatioPoints: h.ratio.Series().Points(),
		HopsPoints:  h.hops.Points(),
		RNG:         h.rng.State(),
		NextGenAt:   sim.Forever,
	}
	if h.ticker != nil {
		st.NextGenAt = h.ticker.NextAt()
	}
	return st
}

// Resume overwrites the harness with a captured state and re-arms the
// report generator at its exact recorded phase. Call it instead of Start
// when restoring a checkpoint.
func (h *Harness) Resume(st HarnessState) {
	h.ratio.Restore(st.Generated, st.Succeeded, st.RatioPoints)
	h.hops.Restore(st.HopsPoints)
	h.rng.Restore(st.RNG)
	if st.NextGenAt < sim.Forever {
		h.ticker = h.net.Engine.NewTickerAt(st.NextGenAt, h.cfg.Period, h.generate)
	}
}

// generate creates one report and attempts delivery through the current
// working set.
func (h *Harness) generate() {
	now := h.net.Engine.Now()
	working := h.workingNodes()
	positions := make([]geom.Point, len(working))
	for i, n := range working {
		positions[i] = n.Pos()
	}
	paths := disjointPaths(h.net.Field, positions, h.cfg.Source, h.cfg.Sink,
		h.cfg.HopRange, h.cfg.MeshWidth)
	if len(paths) == 0 {
		h.ratio.Observe(now, false)
		return
	}
	// The report is delivered if any mesh path survives the per-hop
	// losses; energy is spent on every attempted path either way.
	delivered := false
	for _, path := range paths {
		if pathSurvives(len(path)+1, h.cfg.HopLossRate, h.rng) {
			delivered = true
		}
		h.chargePath(working, path)
	}
	h.ratio.Observe(now, delivered)
	if delivered {
		h.hops.Record(now, float64(len(paths[0])+1))
	}
}

// workingNodes snapshots the alive working nodes.
func (h *Harness) workingNodes() []*node.Node {
	out := make([]*node.Node, 0, len(h.net.Nodes)/4)
	for _, n := range h.net.Nodes {
		if n.Working() {
			out = append(out, n)
		}
	}
	return out
}

// chargePath debits each relay for one report transmission and reception
// at the node's radio rates, on top of its idle draw.
func (h *Harness) chargePath(working []*node.Node, path []int) {
	cfg := h.net.Config()
	airtime := float64(h.cfg.ReportSize) * 8 / cfg.Radio.BitsPerSecond
	txExtra := (cfg.Energy.TransmitW - cfg.Energy.IdleW) * airtime
	rxExtra := (cfg.Energy.ReceiveW - cfg.Energy.IdleW) * airtime
	for _, i := range path {
		n := working[i]
		h.net.ChargeExtra(n.ID(), energy.DataTransmit, txExtra)
		h.net.ChargeExtra(n.ID(), energy.DataReceive, rxExtra)
	}
}

// Ratio exposes the cumulative success-ratio recorder.
func (h *Harness) Ratio() *metrics.Ratio { return h.ratio }

// Hops exposes the per-delivery hop-count series.
func (h *Harness) Hops() *metrics.Series { return h.hops }

// DeliveryLifetime returns the data-delivery lifetime: the time at which
// the cumulative success ratio first drops below threshold (paper: 90%).
// ok is false when the ratio never dropped during the run.
func (h *Harness) DeliveryLifetime(threshold float64) (lifetime float64, ok bool) {
	return h.ratio.Series().FirstBelow(threshold, 1)
}
