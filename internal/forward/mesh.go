package forward

import (
	"peas/internal/connectivity"
	"peas/internal/geom"
	"peas/internal/stats"
)

// GRAB forwards each report along a mesh of interleaved paths whose width
// is controlled by the report's credit: more credit widens the mesh,
// trading energy for delivery robustness on lossy links. This file
// implements that mechanism at the level the evaluation needs:
// node-disjoint shortest paths plus per-hop loss sampling.

// disjointPaths returns up to width node-disjoint relay paths from a to b
// (as indices into relays), computed greedily: shortest path first, then
// shortest among the remaining relays, and so on. A direct a->b reach
// yields one empty path.
func disjointPaths(field geom.Field, relays []geom.Point, a, b geom.Point, rt float64, width int) [][]int {
	if width < 1 {
		width = 1
	}
	var paths [][]int
	available := make([]geom.Point, len(relays))
	copy(available, relays)
	// index map from the shrinking "available" view back to relays.
	backing := make([]int, len(relays))
	for i := range backing {
		backing[i] = i
	}
	for len(paths) < width {
		path, ok := connectivity.ShortestPath(field, available, a, b, rt)
		if !ok {
			break
		}
		if path == nil {
			// Direct reach: one hop, no relays; wider meshes add nothing.
			paths = append(paths, nil)
			break
		}
		orig := make([]int, len(path))
		for i, idx := range path {
			orig[i] = backing[idx]
		}
		paths = append(paths, orig)

		// Remove the used relays for node-disjointness.
		used := make(map[int]bool, len(path))
		for _, idx := range path {
			used[idx] = true
		}
		var nextAvail []geom.Point
		var nextBack []int
		for i := range available {
			if !used[i] {
				nextAvail = append(nextAvail, available[i])
				nextBack = append(nextBack, backing[i])
			}
		}
		available = nextAvail
		backing = nextBack
	}
	return paths
}

// pathSurvives samples per-hop Bernoulli losses for one path. hops is the
// number of transmissions: len(path relays) + 1.
func pathSurvives(hops int, lossRate float64, rng *stats.RNG) bool {
	if lossRate <= 0 {
		return true
	}
	for h := 0; h < hops; h++ {
		if rng.Float64() < lossRate {
			return false
		}
	}
	return true
}
