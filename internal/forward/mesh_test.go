package forward

import (
	"testing"

	"peas/internal/geom"
	"peas/internal/stats"
)

func TestDisjointPathsBasics(t *testing.T) {
	f := geom.NewField(50, 50)
	src, dst := geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 0}
	// Two parallel relay chains.
	relays := []geom.Point{
		{X: 10, Y: 0}, {X: 20, Y: 0}, // chain A
		{X: 8, Y: 6}, {X: 16, Y: 6}, {X: 24, Y: 6}, // chain B
	}
	paths := disjointPaths(f, relays, src, dst, 10, 2)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	// Node-disjointness.
	seen := map[int]bool{}
	for _, p := range paths {
		for _, i := range p {
			if seen[i] {
				t.Fatalf("relay %d used by two paths: %v", i, paths)
			}
			seen[i] = true
		}
	}
	// First path is the shortest (chain A: 2 relays).
	if len(paths[0]) != 2 {
		t.Errorf("first path has %d relays, want 2", len(paths[0]))
	}
}

func TestDisjointPathsWidthExceedsAvailable(t *testing.T) {
	f := geom.NewField(50, 50)
	src, dst := geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 0}
	relays := []geom.Point{{X: 10, Y: 0}, {X: 20, Y: 0}} // one chain only
	paths := disjointPaths(f, relays, src, dst, 10, 5)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
}

func TestDisjointPathsDirectReach(t *testing.T) {
	f := geom.NewField(50, 50)
	src, dst := geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 0}
	paths := disjointPaths(f, []geom.Point{{X: 2, Y: 0}}, src, dst, 10, 3)
	if len(paths) != 1 || paths[0] != nil {
		t.Fatalf("direct reach: %v", paths)
	}
}

func TestDisjointPathsUnreachable(t *testing.T) {
	f := geom.NewField(50, 50)
	paths := disjointPaths(f, nil, geom.Point{X: 0, Y: 0}, geom.Point{X: 40, Y: 0}, 10, 2)
	if len(paths) != 0 {
		t.Fatalf("unreachable: %v", paths)
	}
}

func TestPathSurvives(t *testing.T) {
	rng := stats.NewRNG(1)
	if !pathSurvives(100, 0, rng) {
		t.Error("zero loss must always survive")
	}
	// 5 hops at 50% loss: survival = 0.5^5 ≈ 3.1%.
	const trials = 20000
	survived := 0
	for i := 0; i < trials; i++ {
		if pathSurvives(5, 0.5, rng) {
			survived++
		}
	}
	got := float64(survived) / trials
	if got < 0.02 || got > 0.045 {
		t.Errorf("5-hop survival at 50%% loss = %v, want ≈ 0.031", got)
	}
}

// TestMeshWidthImprovesDelivery is the GRAB robustness property: under
// lossy hops, widening the mesh raises the delivery ratio at the cost of
// extra relayed energy.
func TestMeshWidthImprovesDelivery(t *testing.T) {
	ratioAt := func(width int) float64 {
		net := testNet(t, 480, 31)
		cfg := DefaultConfig(net.Field)
		cfg.MeshWidth = width
		cfg.HopLossRate = 0.15
		h := NewHarness(cfg, net)
		h.Start()
		net.Start()
		net.Run(2000)
		return h.Ratio().Value()
	}
	single := ratioAt(1)
	wide := ratioAt(3)
	t.Logf("delivery ratio at 15%% hop loss: width1=%v width3=%v", single, wide)
	// Per-path survival over ~8 hops at 15% loss is ≈0.27, so one path
	// delivers ~27% and three disjoint paths ≈ 1-(1-0.27)³ ≈ 0.6.
	if wide < single+0.15 {
		t.Errorf("mesh width did not improve delivery enough: %v -> %v", single, wide)
	}
}
