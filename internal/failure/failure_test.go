package failure

import (
	"math"
	"testing"

	"peas/internal/node"
	"peas/internal/stats"
)

func TestRateConversion(t *testing.T) {
	if got := RatePer5000s(10.66); math.Abs(got-10.66/5000) > 1e-15 {
		t.Errorf("rate = %v", got)
	}
}

func testNetwork(t *testing.T, n int) *node.Network {
	t.Helper()
	net, err := node.NewNetwork(node.DefaultConfig(n, 33))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestInjectorKillsAtConfiguredRate(t *testing.T) {
	net := testNetwork(t, 100)
	// 20 failures per 5000 s over 5000 s: expect ≈ 20 failures.
	inj := NewInjector(net, RatePer5000s(20), stats.NewRNG(5))
	net.Start()
	inj.Start()
	net.Run(5000)
	got := inj.Injected()
	if got < 8 || got > 35 {
		t.Errorf("injected %d failures, want ≈ 20", got)
	}
	if len(inj.Victims()) != got {
		t.Errorf("victims %d != injected %d", len(inj.Victims()), got)
	}
	// Victims are actually dead.
	for _, id := range inj.Victims() {
		if net.Nodes[id].Alive() {
			t.Errorf("victim %d still alive", id)
		}
		diedAt, cause := net.Nodes[id].DiedAt()
		if cause != node.InjectedFailure {
			t.Errorf("victim %d cause = %v at %v", id, cause, diedAt)
		}
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	net := testNetwork(t, 20)
	inj := NewInjector(net, 0, stats.NewRNG(1))
	net.Start()
	inj.Start()
	net.Run(2000)
	if inj.Injected() != 0 {
		t.Errorf("injected %d with zero rate", inj.Injected())
	}
}

func TestInjectorStop(t *testing.T) {
	net := testNetwork(t, 50)
	inj := NewInjector(net, RatePer5000s(5000), stats.NewRNG(2)) // 1/s
	net.Start()
	inj.Start()
	net.Run(10)
	count := inj.Injected()
	if count == 0 {
		t.Fatal("no failures before stop")
	}
	inj.Stop()
	net.Run(100)
	if inj.Injected() != count {
		t.Errorf("failures continued after Stop: %d -> %d", count, inj.Injected())
	}
}

func TestInjectorExhaustsNetwork(t *testing.T) {
	net := testNetwork(t, 10)
	inj := NewInjector(net, 10 /* 10 per second */, stats.NewRNG(3))
	net.Start()
	inj.Start()
	net.Run(100)
	if alive := net.AliveCount(); alive != 0 {
		t.Errorf("%d nodes still alive under extreme failure rate", alive)
	}
	if inj.Injected() != 10 {
		t.Errorf("injected = %d, want all 10", inj.Injected())
	}
}

func TestVictimsCopy(t *testing.T) {
	net := testNetwork(t, 10)
	inj := NewInjector(net, 1, stats.NewRNG(4))
	net.Start()
	inj.Start()
	net.Run(5)
	v := inj.Victims()
	if len(v) == 0 {
		t.Skip("no victims drawn")
	}
	v[0] = -99
	if inj.Victims()[0] == -99 {
		t.Error("Victims aliased internal slice")
	}
}
