package failure

import (
	"math"
	"testing"

	"peas/internal/core"
	"peas/internal/node"
	"peas/internal/stats"
)

func TestRateConversion(t *testing.T) {
	if got := RatePer5000s(10.66); math.Abs(got-10.66/5000) > 1e-15 {
		t.Errorf("rate = %v", got)
	}
}

func testNetwork(t *testing.T, n int) *node.Network {
	t.Helper()
	net, err := node.NewNetwork(node.DefaultConfig(n, 33))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestInjectorKillsAtConfiguredRate(t *testing.T) {
	net := testNetwork(t, 100)
	// 20 failures per 5000 s over 5000 s: expect ≈ 20 failures.
	inj := NewInjector(net, RatePer5000s(20), stats.NewRNG(5))
	net.Start()
	inj.Start()
	net.Run(5000)
	got := inj.Injected()
	if got < 8 || got > 35 {
		t.Errorf("injected %d failures, want ≈ 20", got)
	}
	if len(inj.Victims()) != got {
		t.Errorf("victims %d != injected %d", len(inj.Victims()), got)
	}
	// Victims are actually dead.
	for _, id := range inj.Victims() {
		if net.Nodes[id].Alive() {
			t.Errorf("victim %d still alive", id)
		}
		diedAt, cause := net.Nodes[id].DiedAt()
		if cause != node.InjectedFailure {
			t.Errorf("victim %d cause = %v at %v", id, cause, diedAt)
		}
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	net := testNetwork(t, 20)
	inj := NewInjector(net, 0, stats.NewRNG(1))
	net.Start()
	inj.Start()
	net.Run(2000)
	if inj.Injected() != 0 {
		t.Errorf("injected %d with zero rate", inj.Injected())
	}
}

func TestInjectorStop(t *testing.T) {
	net := testNetwork(t, 50)
	inj := NewInjector(net, RatePer5000s(5000), stats.NewRNG(2)) // 1/s
	net.Start()
	inj.Start()
	net.Run(10)
	count := inj.Injected()
	if count == 0 {
		t.Fatal("no failures before stop")
	}
	inj.Stop()
	net.Run(100)
	if inj.Injected() != count {
		t.Errorf("failures continued after Stop: %d -> %d", count, inj.Injected())
	}
}

func TestInjectorExhaustsNetwork(t *testing.T) {
	net := testNetwork(t, 10)
	inj := NewInjector(net, 10 /* 10 per second */, stats.NewRNG(3))
	net.Start()
	inj.Start()
	net.Run(100)
	if alive := net.AliveCount(); alive != 0 {
		t.Errorf("%d nodes still alive under extreme failure rate", alive)
	}
	if inj.Injected() != 10 {
		t.Errorf("injected = %d, want all 10", inj.Injected())
	}
}

// TestInterFailureGapsAreExponential checks the §5.2 arrival process
// statistically: with recovery keeping the victim pool alive, observed
// inter-failure gaps at rate λ=1/s must have mean ≈ 1/λ and coefficient
// of variation ≈ 1 — the exponential signature (a periodic process would
// show CV ≈ 0, a clustered one CV ≫ 1).
func TestInterFailureGapsAreExponential(t *testing.T) {
	net := testNetwork(t, 100)
	inj := NewInjector(net, 1.0, stats.NewRNG(7))
	inj.SetRecovery(0.5) // transient crashes: the pool never thins out
	var times []float64
	inj.SetHooks(func(core.NodeID) { times = append(times, net.Engine.Now()) }, nil)
	net.Start()
	inj.Start()
	net.Run(1000)

	if len(times) < 800 {
		t.Fatalf("only %d arrivals in 1000 s at 1/s", len(times))
	}
	var sum, sumSq float64
	n := len(times) - 1
	for i := 1; i < len(times); i++ {
		g := times[i] - times[i-1]
		sum += g
		sumSq += g * g
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	cv := math.Sqrt(variance) / mean
	if mean < 0.85 || mean > 1.15 {
		t.Errorf("mean inter-failure gap %.3f s, want ≈ 1.0", mean)
	}
	if cv < 0.85 || cv > 1.15 {
		t.Errorf("gap CV %.3f, want ≈ 1 (exponential)", cv)
	}
}

// TestVictimsUniformOverAliveNodes drives ~2000 transient strikes over
// 100 nodes and checks the victim histogram is consistent with uniform
// selection: essentially every node gets struck, and no node is struck
// wildly more often than the mean.
func TestVictimsUniformOverAliveNodes(t *testing.T) {
	net := testNetwork(t, 100)
	inj := NewInjector(net, 2.0, stats.NewRNG(8))
	inj.SetRecovery(1)
	net.Start()
	inj.Start()
	net.Run(1000)

	victims := inj.Victims()
	if len(victims) < 1600 {
		t.Fatalf("only %d strikes", len(victims))
	}
	counts := make(map[core.NodeID]int)
	for _, id := range victims {
		counts[id]++
	}
	if len(counts) < 95 {
		t.Errorf("only %d of 100 nodes ever struck; selection not uniform", len(counts))
	}
	mean := float64(len(victims)) / 100
	for id, c := range counts {
		if float64(c) > 2.5*mean {
			t.Errorf("node %d struck %d times (mean %.1f); selection not uniform", id, c, mean)
		}
	}
}

// TestVictimPoliciesFilterCorrectly verifies the policy predicates at the
// selection layer (PickAlive), where the victim's pre-strike state is
// still observable: WorkingOnly only yields working nodes, SleepingOnly
// only non-working ones, and the default draws both classes roughly in
// proportion to their population — the paper's "randomly distributed"
// failures hit sleepers and workers alike.
func TestVictimPoliciesFilterCorrectly(t *testing.T) {
	net := testNetwork(t, 100)
	net.Start()
	net.Run(400) // let roles settle past the boot transient

	working, alive := 0, 0
	for _, n := range net.Nodes {
		if n.Alive() {
			alive++
			if n.Working() {
				working++
			}
		}
	}
	if working == 0 || working == alive {
		t.Fatalf("degenerate role split: %d working of %d alive", working, alive)
	}

	rng := stats.NewRNG(9)
	for i := 0; i < 300; i++ {
		if v := net.PickAlive(rng, WorkingOnly.Filter()); v == nil || !v.Working() {
			t.Fatalf("WorkingOnly yielded %v", v)
		}
		if v := net.PickAlive(rng, SleepingOnly.Filter()); v == nil || v.Working() {
			t.Fatalf("SleepingOnly yielded a working node")
		}
	}

	const draws = 4000
	workingDraws := 0
	for i := 0; i < draws; i++ {
		if net.PickAlive(rng, AnyAlive.Filter()).Working() {
			workingDraws++
		}
	}
	got := float64(workingDraws) / draws
	want := float64(working) / float64(alive)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("AnyAlive drew working nodes at rate %.3f, population fraction %.3f", got, want)
	}
}

// TestRecoveryRevivesEveryVictim: with SetRecovery, every injected crash
// must be matched by a completed revival once the downtime elapses.
func TestRecoveryRevivesEveryVictim(t *testing.T) {
	net := testNetwork(t, 50)
	inj := NewInjector(net, 1.0, stats.NewRNG(10))
	inj.SetRecovery(5)
	fails, recovers := 0, 0
	inj.SetHooks(func(core.NodeID) { fails++ }, func(core.NodeID) { recovers++ })
	net.Start()
	inj.Start()
	net.Run(200)
	inj.Stop()
	net.Run(250) // drain pending revivals

	if fails == 0 {
		t.Fatal("no failures injected")
	}
	if fails != inj.Injected() {
		t.Errorf("onFail fired %d times, Injected() = %d", fails, inj.Injected())
	}
	if recovers != fails {
		t.Errorf("%d recoveries for %d transient failures", recovers, fails)
	}
	if alive := net.AliveCount(); alive != 50 {
		t.Errorf("%d of 50 alive after all revivals", alive)
	}
}

func TestVictimsCopy(t *testing.T) {
	net := testNetwork(t, 10)
	inj := NewInjector(net, 1, stats.NewRNG(4))
	net.Start()
	inj.Start()
	net.Run(5)
	v := inj.Victims()
	if len(v) == 0 {
		t.Skip("no victims drawn")
	}
	v[0] = -99
	if inj.Victims()[0] == -99 {
		t.Error("Victims aliased internal slice")
	}
}
