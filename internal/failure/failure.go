// Package failure injects random node failures into a running network,
// reproducing the paper's robustness methodology (§5.2): "we artificially
// inject node failures which are randomly distributed over time ... The
// failure rate denotes the average number of failures per unit time."
package failure

import (
	"peas/internal/core"
	"peas/internal/node"
	"peas/internal/stats"
)

// RatePer5000s converts the paper's "failures per 5000 seconds" unit into
// failures per second.
func RatePer5000s(failures float64) float64 { return failures / 5000 }

// Injector schedules Poisson-distributed failures on a network. Failures
// pick a uniformly random alive node, so both working and sleeping nodes
// fail, as in the paper.
type Injector struct {
	net      *node.Network
	rng      *stats.RNG
	rate     float64 // failures per second
	injected int
	victims  []core.NodeID
	stopped  bool
}

// NewInjector attaches an injector with the given rate (failures/second)
// to the network. Call Start to schedule the first failure. A rate of 0
// produces no failures.
func NewInjector(net *node.Network, rate float64, rng *stats.RNG) *Injector {
	return &Injector{net: net, rng: rng, rate: rate}
}

// Start schedules the first failure arrival.
func (in *Injector) Start() {
	if in.rate <= 0 {
		return
	}
	in.scheduleNext()
}

// Stop prevents further failures from being injected.
func (in *Injector) Stop() { in.stopped = true }

// Injected returns how many failures have been injected so far.
func (in *Injector) Injected() int { return in.injected }

// Victims returns the IDs of the failed nodes in order of failure.
func (in *Injector) Victims() []core.NodeID {
	return append([]core.NodeID(nil), in.victims...)
}

func (in *Injector) scheduleNext() {
	delay := in.rng.Exp(in.rate)
	in.net.Engine.Schedule(delay, func() {
		if in.stopped {
			return
		}
		if id := in.net.FailRandomAlive(in.rng); id >= 0 {
			in.injected++
			in.victims = append(in.victims, id)
		}
		in.scheduleNext()
	})
}
