// Package failure injects random node failures into a running network,
// reproducing the paper's robustness methodology (§5.2): "we artificially
// inject node failures which are randomly distributed over time ... The
// failure rate denotes the average number of failures per unit time."
package failure

import (
	"peas/internal/core"
	"peas/internal/node"
	"peas/internal/stats"
)

// RatePer5000s converts the paper's "failures per 5000 seconds" unit into
// failures per second.
func RatePer5000s(failures float64) float64 { return failures / 5000 }

// VictimPolicy selects which alive nodes are eligible victims.
type VictimPolicy int

// Victim policies.
const (
	// AnyAlive picks uniformly over all alive nodes, working and sleeping
	// alike — the paper's §5.2 methodology and the default.
	AnyAlive VictimPolicy = iota
	// WorkingOnly targets nodes currently in Working mode, stressing the
	// replacement machinery directly.
	WorkingOnly
	// SleepingOnly targets alive nodes not currently working, thinning
	// the reserve the protocol draws replacements from.
	SleepingOnly
)

// Filter returns the node predicate the policy stands for (nil means
// every alive node qualifies), in the shape Network.PickAlive accepts.
func (p VictimPolicy) Filter() func(*node.Node) bool {
	switch p {
	case WorkingOnly:
		return func(n *node.Node) bool { return n.Working() }
	case SleepingOnly:
		return func(n *node.Node) bool { return !n.Working() }
	default:
		return nil
	}
}

// Injector schedules Poisson-distributed failures on a network. By
// default failures pick a uniformly random alive node, so both working
// and sleeping nodes fail, as in the paper; SetPolicy narrows the victim
// set and SetRecovery makes failures transient (crash + revive) instead
// of fail-stop.
type Injector struct {
	net      *node.Network
	rng      *stats.RNG
	rate     float64 // failures per second
	injected int
	victims  []core.NodeID
	stopped  bool
	nextAt   float64 // absolute time of the pending arrival; -1 when none

	policy    VictimPolicy
	downtime  float64 // > 0: transient failures that revive after this long
	onFail    func(core.NodeID)
	onRecover func(core.NodeID)
}

// NewInjector attaches an injector with the given rate (failures/second)
// to the network. Call Start to schedule the first failure. A rate of 0
// produces no failures.
func NewInjector(net *node.Network, rate float64, rng *stats.RNG) *Injector {
	return &Injector{net: net, rng: rng, rate: rate, nextAt: -1}
}

// SetPolicy selects the victim policy. Call before Start. Non-default
// policies are for chaos campaigns; InjectorState does not carry them, so
// they are incompatible with checkpoint snapshots (chaos runs never
// checkpoint).
func (in *Injector) SetPolicy(p VictimPolicy) { in.policy = p }

// SetRecovery makes injected failures transient: victims crash (battery
// preserved, volatile state lost) and revive after downtime seconds. Call
// before Start; zero restores fail-stop. Like SetPolicy, recovery is a
// chaos-campaign feature outside the checkpoint contract.
func (in *Injector) SetRecovery(downtime float64) { in.downtime = downtime }

// SetHooks installs per-failure observers: onFail fires for every injected
// failure (fail-stop or transient), onRecover when a transient victim
// comes back. Either may be nil.
func (in *Injector) SetHooks(onFail, onRecover func(core.NodeID)) {
	in.onFail = onFail
	in.onRecover = onRecover
}

// Start schedules the first failure arrival.
func (in *Injector) Start() {
	if in.rate <= 0 {
		return
	}
	in.scheduleNext()
}

// Stop prevents further failures from being injected.
func (in *Injector) Stop() { in.stopped = true }

// Injected returns how many failures have been injected so far.
func (in *Injector) Injected() int { return in.injected }

// Victims returns the IDs of the failed nodes in order of failure.
func (in *Injector) Victims() []core.NodeID {
	return append([]core.NodeID(nil), in.victims...)
}

func (in *Injector) scheduleNext() {
	delay := in.rng.Exp(in.rate)
	in.nextAt = in.net.Engine.Now() + delay
	in.net.Engine.At(in.nextAt, in.arrive)
}

func (in *Injector) arrive() {
	if in.stopped {
		return
	}
	victim := in.net.PickAlive(in.rng, in.policy.Filter())
	if victim != nil {
		id := victim.ID()
		if in.downtime > 0 {
			victim.Crash()
			down := in.downtime
			in.net.Engine.Schedule(down, func() {
				if victim.Revive() && in.onRecover != nil {
					in.onRecover(id)
				}
			})
		} else {
			victim.Fail(node.InjectedFailure)
		}
		in.injected++
		in.victims = append(in.victims, id)
		if in.onFail != nil {
			in.onFail(id)
		}
	}
	in.scheduleNext()
}

// InjectorState is the serializable state of an injector: the failure
// history, the RNG stream, and the pending arrival deadline.
type InjectorState struct {
	Injected int
	Victims  []core.NodeID
	Stopped  bool
	// NextAt is the absolute time of the pending failure arrival, or a
	// negative value when none is scheduled.
	NextAt float64
	RNG    stats.RNGState
}

// Snapshot captures the injector state without mutating it.
func (in *Injector) Snapshot() InjectorState {
	return InjectorState{
		Injected: in.injected,
		Victims:  append([]core.NodeID(nil), in.victims...),
		Stopped:  in.stopped,
		NextAt:   in.nextAt,
		RNG:      in.rng.State(),
	}
}

// Resume overwrites the injector with a captured state and re-arms the
// pending arrival at its exact recorded deadline. Call it instead of
// Start when restoring a checkpoint.
func (in *Injector) Resume(st InjectorState) {
	in.injected = st.Injected
	in.victims = append([]core.NodeID(nil), st.Victims...)
	in.stopped = st.Stopped
	in.nextAt = st.NextAt
	in.rng.Restore(st.RNG)
	if !in.stopped && in.rate > 0 && st.NextAt >= 0 {
		in.net.Engine.At(st.NextAt, in.arrive)
	}
}
