// Package chaos is a deterministic, scripted fault-injection engine for
// the PEAS reproduction. It drives one fault vocabulary against both
// substrates — the discrete-event simulator (internal/radio +
// internal/failure) and the live goroutine runtime (package peasnet) —
// so robustness claims can be exercised under the same fault classes the
// paper's §5.2 methodology and the related duty-cycling literature
// (bursty loss, node churn) call for:
//
//   - message loss: uniform i.i.d. and Gilbert-Elliott bursty;
//   - duplication, reordering, and bounded extra delay;
//   - network partitions with heal;
//   - node faults beyond fail-stop: transient fail-recover with
//     configurable downtime, and crash-restart that resumes a node from
//     its last checkpoint.
//
// Everything is a pure function of a plan and a seed: per-frame fault
// decisions come from a dedicated stats.RNG stream, victim selection from
// another, and all scheduling goes through the owning substrate's clock.
// Same plan + same seed ⇒ the same faults at the same instants, which is
// what makes a chaos campaign's final state hash reproducible.
//
// Every fault fired is counted per class through a metrics.Counters set,
// so a campaign can prove each class actually exercised the system
// rather than silently doing nothing.
package chaos

import "peas/internal/metrics"

// FaultClass names one kind of injectable fault. Plan events carry a
// class; counters are keyed by the class's counter name.
type FaultClass string

// The fault vocabulary.
const (
	// Loss drops each delivery independently with a fixed probability.
	Loss FaultClass = "loss"
	// BurstLoss drops deliveries through a two-state Gilbert-Elliott
	// channel: a Markov chain alternating good/bad states with separate
	// loss probabilities, producing the bursty loss real radios exhibit.
	BurstLoss FaultClass = "burst-loss"
	// Duplicate delivers extra copies of a frame, as retransmitting link
	// layers do.
	Duplicate FaultClass = "dup"
	// Reorder delays selected frames enough to land behind frames
	// transmitted later.
	Reorder FaultClass = "reorder"
	// Delay adds bounded extra latency to selected deliveries.
	Delay FaultClass = "delay"
	// Partition splits the nodes into groups that cannot hear each
	// other; the event's end time heals the partition.
	Partition FaultClass = "partition"
	// FailStop kills nodes permanently (the paper's §5.2 failure model).
	FailStop FaultClass = "fail-stop"
	// FailRecover crashes nodes transiently: volatile state is lost, the
	// battery survives, and the node reboots after a configured downtime.
	FailRecover FaultClass = "fail-recover"
	// CrashRestart crashes a node and later resumes it from its last
	// checkpoint (protocol state, RNG stream, battery), modelling a
	// supervised restart from stable storage.
	CrashRestart FaultClass = "crash-restart"
)

// Counter names, shared by both substrates so CLI summaries render
// uniformly. Drop counters split by cause; node-fault counters count
// injections and completed recoveries separately.
const (
	CtrDropLoss      = "drop.loss"
	CtrDropBurst     = "drop.burst"
	CtrDropPartition = "drop.partition"
	CtrDup           = "dup"
	CtrReorder       = "reorder"
	CtrDelay         = "delay"
	CtrFailStop      = "fail.stop"
	CtrFailRecover   = "fail.recover"
	CtrRecovered     = "recovered"
	CtrCrash         = "crash"
	CtrRestarted     = "restarted"
)

// CounterFor returns the counter name that proves the given fault class
// fired end to end. Recovery-style classes map to their completion
// counter: an injected crash whose node never came back did not exercise
// the class.
func CounterFor(class FaultClass) string {
	switch class {
	case Loss:
		return CtrDropLoss
	case BurstLoss:
		return CtrDropBurst
	case Duplicate:
		return CtrDup
	case Reorder:
		return CtrReorder
	case Delay:
		return CtrDelay
	case Partition:
		return CtrDropPartition
	case FailStop:
		return CtrFailStop
	case FailRecover:
		return CtrRecovered
	case CrashRestart:
		return CtrRestarted
	default:
		return string(class)
	}
}

// Unexercised returns the fault classes among classes whose completion
// counter is still zero in counters. A strict campaign fails when any
// planned class went unexercised.
func Unexercised(classes []FaultClass, counters *metrics.Counters) []FaultClass {
	var missing []FaultClass
	for _, cl := range classes {
		if counters.Get(CounterFor(cl)) == 0 {
			missing = append(missing, cl)
		}
	}
	return missing
}
