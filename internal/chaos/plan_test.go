package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateRejectsMalformedPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"empty", Plan{Name: "e"}, "no events"},
		{"unknown class", Plan{Events: []Event{{Class: "meteor", At: 1}}}, "unknown class"},
		{"negative at", Plan{Events: []Event{{Class: Loss, At: -1}}}, "negative start"},
		{"until before at", Plan{Events: []Event{{Class: Loss, At: 5, Until: 3}}}, "until"},
		{"probability above one", Plan{Events: []Event{{Class: Duplicate, At: 1, Rate: 1.5}}}, "outside [0,1]"},
		{"probability negative", Plan{Events: []Event{{Class: Delay, At: 1, Rate: -0.1}}}, "outside [0,1]"},
		{"unknown split", Plan{Events: []Event{{Class: Partition, At: 1, Split: "diagonal"}}}, "unknown split"},
		{"negative rate", Plan{Events: []Event{{Class: FailStop, At: 1, Rate: -8}}}, "negative rate"},
		{"negative count", Plan{Events: []Event{{Class: FailStop, At: 1, Count: -1}}}, "negative count"},
		{"negative downtime", Plan{Events: []Event{{Class: FailRecover, At: 1, Downtime: -5}}}, "negative downtime"},
		{"unknown policy", Plan{Events: []Event{{Class: FailStop, At: 1, Policy: "dead"}}}, "unknown policy"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	ok := Plan{Events: []Event{
		{Class: Partition, At: 10, Until: 20, Split: "random"},
		{Class: Partition, At: 30, Until: 40, Split: "stripe"},
		{Class: CrashRestart, At: 5, Policy: "working"},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestParseSortsEventsByStart(t *testing.T) {
	p, err := Parse([]byte(`{"seed": 3, "events": [
		{"class": "delay", "at": 50, "rate": 0.2},
		{"class": "loss", "at": 10, "rate": 0.1},
		{"class": "fail-stop", "at": 30, "count": 2}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 {
		t.Errorf("seed = %d", p.Seed)
	}
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i].At < p.Events[i-1].At {
			t.Fatalf("events not sorted by At: %v", p.Events)
		}
	}
}

func TestLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	body := `{"events": [{"class": "burst-loss", "at": 100, "until": 200, "pGoodBad": 0.1, "lossBad": 1}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != path {
		t.Errorf("Name = %q, want the path as default", p.Name)
	}
	ev := p.Events[0]
	if ev.Class != BurstLoss || ev.Until != 200 || ev.PGoodBad != 0.1 || ev.LossBad != 1 {
		t.Errorf("event = %+v", ev)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("Load of missing file succeeded")
	}
	if _, err := Load(path + "x"); err == nil {
		t.Error("Load of missing file succeeded")
	}
}

func TestMixedPlanCoversEveryClass(t *testing.T) {
	p := MixedPlan(2000, 7)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	got := p.Classes()
	all := []FaultClass{Loss, BurstLoss, Duplicate, Reorder, Delay, Partition, FailStop, FailRecover, CrashRestart}
	if len(got) != len(all) {
		t.Fatalf("mixed plan schedules %d classes, want %d: %v", len(got), len(all), got)
	}
	seen := make(map[FaultClass]bool)
	for _, cl := range got {
		seen[cl] = true
	}
	for _, cl := range all {
		if !seen[cl] {
			t.Errorf("mixed plan missing class %s", cl)
		}
	}
	for _, ev := range p.Events {
		if ev.Until > 2000 || ev.At >= 2000 {
			t.Errorf("event %s outside horizon: %+v", ev.Class, ev)
		}
	}
}
