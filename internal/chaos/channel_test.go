package chaos

import (
	"math"
	"testing"

	"peas/internal/metrics"
)

func judgeN(ch *Channel, n int) []Decision {
	out := make([]Decision, n)
	for i := range out {
		out[i] = ch.JudgeFrame(0, 1)
	}
	return out
}

func TestLossRateStatistics(t *testing.T) {
	counters := metrics.NewCounters()
	ch := NewChannel(11, counters)
	ch.SetLoss(0.3)
	const n = 20000
	drops := 0
	for _, d := range judgeN(ch, n) {
		if d.Drop {
			if d.Cause != Loss {
				t.Fatalf("drop cause = %v", d.Cause)
			}
			drops++
		}
	}
	rate := float64(drops) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("empirical loss rate %.3f, want ≈ 0.3", rate)
	}
	if got := counters.Get(CtrDropLoss); got != uint64(drops) {
		t.Errorf("counter %d != observed drops %d", got, drops)
	}
}

func TestBurstLossIsBursty(t *testing.T) {
	// lossBad=1, lossGood=0: drops exactly trace the bad state, whose
	// stationary probability is pGB/(pGB+pBG) and whose mean dwell is
	// 1/pBG frames — far burstier than i.i.d. loss at the same rate.
	ch := NewChannel(13, nil)
	ch.SetBurst(0.05, 0.25, 0, 1)
	const n = 50000
	drops, runs, runLen := 0, 0, 0
	var runSum int
	for _, d := range judgeN(ch, n) {
		if d.Drop {
			if d.Cause != BurstLoss {
				t.Fatalf("drop cause = %v", d.Cause)
			}
			drops++
			runLen++
		} else if runLen > 0 {
			runs++
			runSum += runLen
			runLen = 0
		}
	}
	rate := float64(drops) / n
	if want := 0.05 / (0.05 + 0.25); math.Abs(rate-want) > 0.03 {
		t.Errorf("burst loss rate %.3f, want ≈ %.3f", rate, want)
	}
	meanRun := float64(runSum) / float64(runs)
	if meanRun < 2.5 {
		t.Errorf("mean drop-run length %.2f; bursts should average ≈ 4 frames", meanRun)
	}
	ch.ClearBurst()
	for _, d := range judgeN(ch, 1000) {
		if d.Drop {
			t.Fatal("drops after ClearBurst")
		}
	}
}

func TestDuplicationDelayReorderCompose(t *testing.T) {
	counters := metrics.NewCounters()
	ch := NewChannel(17, counters)
	ch.SetDuplication(0.2)
	ch.SetDelay(0.3, 0.04)
	ch.SetReorder(0.1, 0.06)
	const n = 20000
	dups, delays := 0, 0
	for _, d := range judgeN(ch, n) {
		if d.Drop {
			t.Fatal("unexpected drop")
		}
		if d.Copies > 0 {
			dups++
		}
		if d.Delay > 0 {
			delays++
		}
		// Max possible: 0.04 (delay) + 0.06 (reorder), composed.
		if d.Delay < 0 || d.Delay > 0.1+1e-9 {
			t.Fatalf("delay %v outside [0, 0.1]", d.Delay)
		}
	}
	if rate := float64(dups) / n; math.Abs(rate-0.2) > 0.02 {
		t.Errorf("dup rate %.3f, want ≈ 0.2", rate)
	}
	// P(any delay) = 1 - (1-0.3)(1-0.1) = 0.37.
	if rate := float64(delays) / n; math.Abs(rate-0.37) > 0.02 {
		t.Errorf("delayed fraction %.3f, want ≈ 0.37", rate)
	}
	if counters.Get(CtrDup) == 0 || counters.Get(CtrDelay) == 0 || counters.Get(CtrReorder) == 0 {
		t.Errorf("counters missing: %v", counters.Snapshot())
	}
}

func TestReorderDelayBounds(t *testing.T) {
	ch := NewChannel(19, nil)
	ch.SetReorder(1, 0.08)
	for _, d := range judgeN(ch, 2000) {
		if d.Delay < 0.04-1e-9 || d.Delay > 0.08+1e-9 {
			t.Fatalf("reorder delay %v outside [max/2, max]", d.Delay)
		}
	}
}

func TestPartitionDropsWithoutConsumingRNG(t *testing.T) {
	// Partition decisions are deterministic: a channel that judged a
	// thousand cross-group frames must produce the same downstream RNG
	// decisions as one that never saw them.
	a := NewChannel(23, nil)
	b := NewChannel(23, nil)
	b.SetPartition([]int{0, 0, 1})
	if !b.Partitioned() {
		t.Fatal("Partitioned() = false")
	}
	for i := 0; i < 1000; i++ {
		d := b.JudgeFrame(0, 2)
		if !d.Drop || d.Cause != Partition {
			t.Fatalf("cross-group frame not dropped: %+v", d)
		}
	}
	if d := b.JudgeFrame(0, 1); d.Drop {
		t.Fatal("same-group frame dropped")
	}
	b.Heal()
	if b.Partitioned() {
		t.Fatal("Partitioned() = true after Heal")
	}
	a.SetLoss(0.5)
	b.SetLoss(0.5)
	for i := 0; i < 500; i++ {
		da, db := a.JudgeFrame(0, 1), b.JudgeFrame(0, 1)
		if da != db {
			t.Fatalf("decision %d diverged after partition traffic: %+v vs %+v", i, da, db)
		}
	}
}

func TestSameSeedSameDecisions(t *testing.T) {
	mk := func() *Channel {
		ch := NewChannel(29, nil)
		ch.SetLoss(0.1)
		ch.SetBurst(0.05, 0.25, 0, 0.9)
		ch.SetDuplication(0.1)
		ch.SetDelay(0.2, 0.05)
		ch.SetReorder(0.1, 0.06)
		return ch
	}
	a, b := mk(), mk()
	for i := 0; i < 5000; i++ {
		da, db := a.JudgeFrame(i%7, i%5), b.JudgeFrame(i%7, i%5)
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

func TestCounterForAndUnexercised(t *testing.T) {
	counters := metrics.NewCounters()
	counters.Add(CtrDropLoss, 1)
	counters.Add(CtrRestarted, 1)
	missing := Unexercised([]FaultClass{Loss, CrashRestart, FailRecover, Partition}, counters)
	if len(missing) != 2 || missing[0] != FailRecover || missing[1] != Partition {
		t.Errorf("Unexercised = %v", missing)
	}
	// Recovery classes complete only when the node comes back.
	if CounterFor(FailRecover) != CtrRecovered || CounterFor(CrashRestart) != CtrRestarted {
		t.Error("recovery classes must map to their completion counters")
	}
}
