package chaos

import (
	"fmt"

	"peas/internal/core"
	"peas/internal/failure"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/radio"
	"peas/internal/stats"
)

// radioFaults adapts a Channel to the simulator's radio fault hook.
type radioFaults struct{ ch *Channel }

var _ radio.FaultInjector = radioFaults{}

func (r radioFaults) JudgeFrame(from, to radio.NodeID) radio.FaultDecision {
	d := r.ch.JudgeFrame(int(from), int(to))
	return radio.FaultDecision{Drop: d.Drop, Copies: d.Copies, Delay: d.Delay}
}

// Controller drives a Plan against a simulated network: it owns the
// fault Channel on the radio medium, schedules every plan event on the
// simulation engine, and runs the node-fault arrival processes.
type Controller struct {
	net       *node.Network
	plan      *Plan
	channel   *Channel
	counters  *metrics.Counters
	victimRNG *stats.RNG
	partRNG   *stats.RNG
	injectors []*failure.Injector
}

// AttachSim wires plan into net. Call after NewNetwork and before
// Start/Run; the plan's events are scheduled on the network's engine
// relative to time zero. Fault counters accumulate into counters (a
// fresh set when nil). All randomness derives from plan.Seed, so the
// same plan against the same network reproduces the same faults.
func AttachSim(net *node.Network, plan *Plan, counters *metrics.Counters) (*Controller, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if counters == nil {
		counters = metrics.NewCounters()
	}
	root := stats.NewRNG(plan.Seed)
	ctl := &Controller{
		net:       net,
		plan:      plan,
		channel:   NewChannel(0, counters),
		counters:  counters,
		victimRNG: root.Split(),
	}
	ctl.channel.rng = root.Split()
	ctl.partRNG = root.Split()
	net.Medium.SetFaultInjector(radioFaults{ch: ctl.channel})

	// Split one RNG stream per Poisson node-fault event up front, in plan
	// order, so stream assignment does not depend on event firing order.
	for i := range plan.Events {
		ev := &plan.Events[i]
		if channelClass(ev.Class) || ev.Rate <= 0 {
			continue
		}
		inj := failure.NewInjector(net, failure.RatePer5000s(ev.Rate), root.Split())
		inj.SetPolicy(policyFor(ev.Policy))
		switch ev.Class {
		case FailStop:
			inj.SetHooks(func(core.NodeID) { ctl.counters.Add(CtrFailStop, 1) }, nil)
		case FailRecover:
			inj.SetRecovery(downtimeOf(ev))
			inj.SetHooks(
				func(core.NodeID) { ctl.counters.Add(CtrFailRecover, 1) },
				func(core.NodeID) { ctl.counters.Add(CtrRecovered, 1) })
		case CrashRestart:
			return nil, fmt.Errorf("chaos: crash-restart events are point events; use count, not rate")
		}
		ctl.injectors = append(ctl.injectors, inj)
		ctl.scheduleWindowed(ev, inj)
	}
	for i := range plan.Events {
		ev := &plan.Events[i]
		if channelClass(ev.Class) {
			ctl.scheduleChannel(ev)
		} else if ev.Rate <= 0 {
			ctl.schedulePoint(ev)
		}
	}
	return ctl, nil
}

// Channel returns the fault decision engine (read-mostly; tests use it).
func (c *Controller) Channel() *Channel { return c.channel }

// Counters returns the per-fault-class counters.
func (c *Controller) Counters() *metrics.Counters { return c.counters }

// Unexercised returns the planned fault classes that never completed.
func (c *Controller) Unexercised() []FaultClass {
	return Unexercised(c.plan.Classes(), c.counters)
}

func (c *Controller) scheduleChannel(ev *Event) {
	ch := c.channel
	// Partition groups are drawn now, at attach time in plan order, so the
	// assignment never depends on event firing order.
	var groups []int
	if ev.Class == Partition {
		groups = c.partitionGroups(ev)
	}
	apply := func() {
		switch ev.Class {
		case Loss:
			ch.SetLoss(ev.Rate)
		case BurstLoss:
			pGB, pBG := ev.PGoodBad, ev.PBadGood
			lg, lb := ev.LossGood, ev.LossBad
			if pGB == 0 {
				pGB = 0.05
			}
			if pBG == 0 {
				pBG = 0.25
			}
			if lb == 0 {
				lb = 0.9
			}
			ch.SetBurst(pGB, pBG, lg, lb)
		case Duplicate:
			ch.SetDuplication(ev.Rate)
		case Reorder:
			ch.SetReorder(ev.Rate, delayOf(ev))
		case Delay:
			ch.SetDelay(ev.Rate, delayOf(ev))
		case Partition:
			ch.SetPartition(groups)
		}
	}
	revert := func() {
		switch ev.Class {
		case Loss:
			ch.SetLoss(0)
		case BurstLoss:
			ch.ClearBurst()
		case Duplicate:
			ch.SetDuplication(0)
		case Reorder:
			ch.SetReorder(0, 0)
		case Delay:
			ch.SetDelay(0, 0)
		case Partition:
			ch.Heal()
		}
	}
	c.net.Engine.At(ev.At, apply)
	if ev.Until > 0 {
		c.net.Engine.At(ev.Until, revert)
	}
}

func (c *Controller) scheduleWindowed(ev *Event, inj *failure.Injector) {
	c.net.Engine.At(ev.At, inj.Start)
	if ev.Until > 0 {
		c.net.Engine.At(ev.Until, inj.Stop)
	}
}

// schedulePoint strikes Count victims exactly at ev.At.
func (c *Controller) schedulePoint(ev *Event) {
	count := ev.Count
	if count <= 0 {
		count = 1
	}
	c.net.Engine.At(ev.At, func() {
		for i := 0; i < count; i++ {
			victim := c.pickVictim(ev)
			if victim == nil {
				return
			}
			c.strike(ev, victim)
		}
	})
}

func (c *Controller) pickVictim(ev *Event) *node.Node {
	if ev.Victim != nil {
		id := *ev.Victim
		if id < 0 || id >= len(c.net.Nodes) || !c.net.Nodes[id].Alive() {
			return nil
		}
		return c.net.Nodes[id]
	}
	return c.net.PickAlive(c.victimRNG, policyFor(ev.Policy).Filter())
}

func (c *Controller) strike(ev *Event, victim *node.Node) {
	switch ev.Class {
	case FailStop:
		victim.Fail(node.InjectedFailure)
		c.counters.Add(CtrFailStop, 1)
	case FailRecover:
		victim.Crash()
		c.counters.Add(CtrFailRecover, 1)
		c.net.Engine.Schedule(downtimeOf(ev), func() {
			if victim.Revive() {
				c.counters.Add(CtrRecovered, 1)
			}
		})
	case CrashRestart:
		// The victim's "last checkpoint" is taken at the crash instant —
		// the sim analogue of peasnet's supervised checkpoint stream,
		// where the snapshot is at most one supervision period old.
		st := victim.Protocol().Snapshot()
		victim.Crash()
		c.counters.Add(CtrCrash, 1)
		c.net.Engine.Schedule(downtimeOf(ev), func() {
			if victim.ReviveFrom(st) {
				c.counters.Add(CtrRestarted, 1)
			}
		})
	}
}

// partitionGroups builds the node->group assignment for a partition
// event. "stripe" (the default) cuts the field into vertical stripes —
// a spatial cut modelling a severed corridor; note that with the paper's
// 3 m probing range a single stripe boundary severs only the few active
// links that happen to straddle it. "random" assigns groups uniformly
// from the plan's seeded stream, severing a fraction of every
// neighborhood, which guarantees the class is observable on any
// deployment.
func (c *Controller) partitionGroups(ev *Event) []int {
	groups := ev.Groups
	if groups < 2 {
		groups = 2
	}
	out := make([]int, len(c.net.Nodes))
	if ev.Split == "random" {
		for i := range out {
			out[i] = c.partRNG.Intn(groups)
		}
		return out
	}
	w := c.net.Field.Width / float64(groups)
	for i, n := range c.net.Nodes {
		g := int(n.Pos().X / w)
		if g >= groups {
			g = groups - 1
		}
		if g < 0 {
			g = 0
		}
		out[i] = g
	}
	return out
}

func policyFor(s string) failure.VictimPolicy {
	switch s {
	case "working":
		return failure.WorkingOnly
	case "sleeping":
		return failure.SleepingOnly
	default:
		return failure.AnyAlive
	}
}

func delayOf(ev *Event) float64 {
	if ev.Delay > 0 {
		return ev.Delay
	}
	return 0.05
}

func downtimeOf(ev *Event) float64 {
	if ev.Downtime > 0 {
		return ev.Downtime
	}
	return 100
}
