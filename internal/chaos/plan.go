package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Event is one scripted fault. Channel-impairment classes (loss,
// burst-loss, dup, reorder, delay, partition) apply at At and revert at
// Until (0 = rest of the run); overlapping events of the same class
// override each other, last writer wins. Node-fault classes (fail-stop,
// fail-recover, crash-restart) either fire a Poisson arrival process over
// [At, Until) when Rate > 0, or strike Count victims exactly at At.
type Event struct {
	// At and Until bound the event window in protocol seconds.
	At    float64 `json:"at"`
	Until float64 `json:"until,omitempty"`
	// Class is the fault class to apply.
	Class FaultClass `json:"class"`
	// Rate: drop/duplicate/delay/reorder probability in [0,1] for channel
	// classes; failures per 5000 s (the paper's §5.2 unit) for node
	// classes.
	Rate float64 `json:"rate,omitempty"`
	// Gilbert-Elliott parameters (burst-loss only); zero values take the
	// defaults pGB=0.05, pBG=0.25, lossGood=0, lossBad=0.9.
	PGoodBad float64 `json:"pGoodBad,omitempty"`
	PBadGood float64 `json:"pBadGood,omitempty"`
	LossGood float64 `json:"lossGood,omitempty"`
	LossBad  float64 `json:"lossBad,omitempty"`
	// Delay is the maximum extra latency in seconds (delay and reorder
	// classes; default 0.05).
	Delay float64 `json:"delay,omitempty"`
	// Groups is the partition group count (partition only; default 2).
	Groups int `json:"groups,omitempty"`
	// Split picks the partition geometry: "stripe" (default) cuts the
	// field into Groups vertical stripes — spatial, as a severed relay
	// corridor would be, but with a small probing range a single cut may
	// sever few active links — while "random" assigns nodes to groups
	// uniformly (seeded), severing a fraction of every neighborhood.
	Split string `json:"split,omitempty"`
	// Victim pins the struck node ID for point node faults; nil picks
	// victims at random under Policy.
	Victim *int `json:"victim,omitempty"`
	// Count is how many victims a point node-fault event strikes
	// (default 1; ignored when Rate > 0).
	Count int `json:"count,omitempty"`
	// Downtime is seconds until recovery (fail-recover, crash-restart;
	// default 100).
	Downtime float64 `json:"downtime,omitempty"`
	// Policy narrows victim selection: "any" (default), "working", or
	// "sleeping".
	Policy string `json:"policy,omitempty"`
}

// Plan is a scripted chaos campaign: a seed for the fault RNG streams
// plus the event schedule.
type Plan struct {
	Name   string  `json:"name,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// channelClass reports whether the class impairs the channel (as opposed
// to striking nodes).
func channelClass(cl FaultClass) bool {
	switch cl {
	case Loss, BurstLoss, Duplicate, Reorder, Delay, Partition:
		return true
	}
	return false
}

func knownClass(cl FaultClass) bool {
	switch cl {
	case Loss, BurstLoss, Duplicate, Reorder, Delay, Partition,
		FailStop, FailRecover, CrashRestart:
		return true
	}
	return false
}

// Validate checks the plan for structural errors.
func (p *Plan) Validate() error {
	if len(p.Events) == 0 {
		return fmt.Errorf("chaos: plan %q has no events", p.Name)
	}
	for i, ev := range p.Events {
		if !knownClass(ev.Class) {
			return fmt.Errorf("chaos: event %d: unknown class %q", i, ev.Class)
		}
		if ev.At < 0 {
			return fmt.Errorf("chaos: event %d (%s): negative start %v", i, ev.Class, ev.At)
		}
		if ev.Until != 0 && ev.Until <= ev.At {
			return fmt.Errorf("chaos: event %d (%s): until %v <= at %v", i, ev.Class, ev.Until, ev.At)
		}
		if channelClass(ev.Class) {
			if ev.Class != Partition && (ev.Rate < 0 || ev.Rate > 1) {
				return fmt.Errorf("chaos: event %d (%s): probability %v outside [0,1]", i, ev.Class, ev.Rate)
			}
			switch ev.Split {
			case "", "stripe", "random":
			default:
				return fmt.Errorf("chaos: event %d (%s): unknown split %q", i, ev.Class, ev.Split)
			}
			continue
		}
		if ev.Rate < 0 {
			return fmt.Errorf("chaos: event %d (%s): negative rate %v", i, ev.Class, ev.Rate)
		}
		if ev.Count < 0 {
			return fmt.Errorf("chaos: event %d (%s): negative count", i, ev.Class)
		}
		if ev.Downtime < 0 {
			return fmt.Errorf("chaos: event %d (%s): negative downtime", i, ev.Class)
		}
		switch ev.Policy {
		case "", "any", "working", "sleeping":
		default:
			return fmt.Errorf("chaos: event %d (%s): unknown policy %q", i, ev.Class, ev.Policy)
		}
	}
	return nil
}

// Classes returns the distinct fault classes the plan schedules, in
// first-appearance order.
func (p *Plan) Classes() []FaultClass {
	seen := make(map[FaultClass]bool)
	var out []FaultClass
	for _, ev := range p.Events {
		if !seen[ev.Class] {
			seen[ev.Class] = true
			out = append(out, ev.Class)
		}
	}
	return out
}

// Parse decodes and validates a JSON plan.
func Parse(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("chaos: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return &p, nil
}

// Load reads a JSON plan from disk.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", path, err)
	}
	if p.Name == "" {
		p.Name = path
	}
	return p, nil
}

// MixedPlan returns the built-in campaign exercising every fault class
// within the given horizon: staggered channel impairments, a §5.2-style
// fail-stop arrival process, transient fail-recover churn, and one
// crash-restart of a working node. Deterministic under the given seed.
func MixedPlan(horizon float64, seed int64) *Plan {
	h := horizon
	return &Plan{
		Name: "mixed",
		Seed: seed,
		Events: []Event{
			{Class: Loss, At: 0.05 * h, Until: 0.30 * h, Rate: 0.15},
			{Class: Duplicate, At: 0.05 * h, Until: 0.95 * h, Rate: 0.05},
			{Class: Reorder, At: 0.05 * h, Until: 0.95 * h, Rate: 0.05, Delay: 0.05},
			{Class: FailStop, At: 0.10 * h, Until: 0.90 * h, Rate: 8},
			{Class: FailRecover, At: 0.10 * h, Until: 0.75 * h, Rate: 8, Downtime: 0.03 * h},
			{Class: BurstLoss, At: 0.35 * h, Until: 0.55 * h},
			{Class: Delay, At: 0.55 * h, Until: 0.70 * h, Rate: 0.30, Delay: 0.08},
			{Class: Partition, At: 0.55 * h, Until: 0.75 * h, Groups: 2, Split: "random"},
			{Class: CrashRestart, At: 0.60 * h, Downtime: 0.04 * h, Policy: "working"},
		},
	}
}
