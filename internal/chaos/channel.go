package chaos

import (
	"peas/internal/metrics"
	"peas/internal/stats"
)

// Decision says what to do with one (frame, receiver) delivery. The zero
// value delivers the frame normally.
type Decision struct {
	// Drop suppresses the delivery entirely; Cause records which fault
	// class decided so.
	Drop  bool
	Cause FaultClass
	// Copies is the number of EXTRA copies to deliver (duplication).
	Copies int
	// Delay is extra latency in protocol seconds added to every copy.
	Delay float64
}

// Channel is the substrate-independent per-frame fault decision engine:
// given a (sender, receiver) pair it decides drop/duplicate/delay from
// its own seeded RNG stream and the currently configured impairments.
//
// A Channel is deliberately single-threaded — the simulator consults it
// from the event loop, the live runtime wraps it in peasnet.ChaosInjector
// which serializes access. Judged frames advance the RNG and the
// Gilbert-Elliott chain, so the decision sequence is a deterministic
// function of (seed, configuration history, judged-frame sequence).
type Channel struct {
	rng      *stats.RNG
	counters *metrics.Counters

	lossRate float64 // uniform i.i.d. drop probability

	// Gilbert-Elliott bursty loss: a two-state Markov chain stepped once
	// per judged frame.
	burst    bool
	inBad    bool
	pGB, pBG float64 // good->bad and bad->good transition probabilities
	lossGood float64
	lossBad  float64

	dupRate float64 // per-delivery probability of one extra copy

	reorderRate  float64 // probability of deferring a frame behind later traffic
	reorderDelay float64 // max deferral in seconds

	delayRate float64 // probability of bounded extra latency
	delayMax  float64 // max extra latency in seconds

	// partition[i] is node i's group; frames between different groups are
	// dropped. nil means no partition.
	partition []int
}

// NewChannel returns a Channel drawing decisions from the given seed and
// counting fired faults into counters (a fresh set when nil).
func NewChannel(seed int64, counters *metrics.Counters) *Channel {
	if counters == nil {
		counters = metrics.NewCounters()
	}
	return &Channel{rng: stats.NewRNG(seed), counters: counters}
}

// Counters returns the channel's fault counters.
func (c *Channel) Counters() *metrics.Counters { return c.counters }

// SetLoss sets the uniform i.i.d. drop probability (0 disables).
func (c *Channel) SetLoss(p float64) { c.lossRate = clamp01(p) }

// SetBurst enables Gilbert-Elliott bursty loss. pGB and pBG are the
// per-frame good->bad and bad->good transition probabilities; lossGood
// and lossBad the drop probabilities within each state. The chain starts
// in the good state.
func (c *Channel) SetBurst(pGB, pBG, lossGood, lossBad float64) {
	c.burst = true
	c.inBad = false
	c.pGB = clamp01(pGB)
	c.pBG = clamp01(pBG)
	c.lossGood = clamp01(lossGood)
	c.lossBad = clamp01(lossBad)
}

// ClearBurst disables bursty loss.
func (c *Channel) ClearBurst() { c.burst = false }

// SetDuplication sets the per-delivery probability of one extra copy.
func (c *Channel) SetDuplication(p float64) { c.dupRate = clamp01(p) }

// SetReorder makes a fraction p of deliveries defer by a uniform draw
// from [maxDelay/2, maxDelay], long enough to land behind frames sent
// later (maxDelay should exceed a few frame airtimes).
func (c *Channel) SetReorder(p, maxDelay float64) {
	c.reorderRate = clamp01(p)
	c.reorderDelay = maxDelay
}

// SetDelay adds a uniform extra latency from [0, maxDelay] to a fraction
// p of deliveries.
func (c *Channel) SetDelay(p, maxDelay float64) {
	c.delayRate = clamp01(p)
	c.delayMax = maxDelay
}

// SetPartition installs a node->group assignment; deliveries crossing
// group boundaries are dropped. Nodes beyond len(groups) are treated as
// group 0.
func (c *Channel) SetPartition(groups []int) { c.partition = groups }

// Heal removes the partition.
func (c *Channel) Heal() { c.partition = nil }

// Partitioned reports whether a partition is active.
func (c *Channel) Partitioned() bool { return c.partition != nil }

func (c *Channel) group(id int) int {
	if id < 0 || id >= len(c.partition) {
		return 0
	}
	return c.partition[id]
}

// JudgeFrame decides the fate of one delivery from node `from` to node
// `to`, counting whatever fired. Checks run in severity order: partition
// (deterministic, no RNG draw), bursty loss, uniform loss, then the
// non-fatal duplicate/delay/reorder impairments, which compose.
func (c *Channel) JudgeFrame(from, to int) Decision {
	if c.partition != nil && c.group(from) != c.group(to) {
		c.counters.Add(CtrDropPartition, 1)
		return Decision{Drop: true, Cause: Partition}
	}
	if c.burst {
		if c.inBad {
			if c.rng.Float64() < c.pBG {
				c.inBad = false
			}
		} else {
			if c.rng.Float64() < c.pGB {
				c.inBad = true
			}
		}
		p := c.lossGood
		if c.inBad {
			p = c.lossBad
		}
		if p > 0 && c.rng.Float64() < p {
			c.counters.Add(CtrDropBurst, 1)
			return Decision{Drop: true, Cause: BurstLoss}
		}
	}
	if c.lossRate > 0 && c.rng.Float64() < c.lossRate {
		c.counters.Add(CtrDropLoss, 1)
		return Decision{Drop: true, Cause: Loss}
	}
	var d Decision
	if c.dupRate > 0 && c.rng.Float64() < c.dupRate {
		d.Copies++
		c.counters.Add(CtrDup, 1)
	}
	if c.delayRate > 0 && c.rng.Float64() < c.delayRate {
		d.Delay += c.rng.Uniform(0, c.delayMax)
		c.counters.Add(CtrDelay, 1)
	}
	if c.reorderRate > 0 && c.rng.Float64() < c.reorderRate {
		d.Delay += c.rng.Uniform(c.reorderDelay/2, c.reorderDelay)
		c.counters.Add(CtrReorder, 1)
	}
	return d
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
