package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModeString(t *testing.T) {
	tests := []struct {
		m    Mode
		want string
	}{
		{Sleep, "sleep"},
		{Idle, "idle"},
		{Receive, "receive"},
		{Transmit, "transmit"},
		{DataReceive, "data-receive"},
		{DataTransmit, "data-transmit"},
		{Mode(99), "Mode(99)"},
	}
	for _, tc := range tests {
		if got := tc.m.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.m), got, tc.want)
		}
	}
}

func TestMotesProfile(t *testing.T) {
	p := MotesProfile()
	// Paper §5.1: 60, 12, 12, 0.03 mW.
	if p.Power(Transmit) != 0.060 || p.Power(Receive) != 0.012 ||
		p.Power(Idle) != 0.012 || p.Power(Sleep) != 0.00003 {
		t.Errorf("profile %+v does not match the paper", p)
	}
	if p.Power(DataTransmit) != p.Power(Transmit) {
		t.Error("data transmit must draw transmit power")
	}
	if p.Power(Mode(99)) != p.IdleW {
		t.Error("unknown mode should fall back to idle")
	}
}

func TestIdleLifetimeMatchesPaper(t *testing.T) {
	// "The initial energy of a node is randomly chosen from the range of
	// 54-60 J ... allowing the node to operate about 4500-5000 seconds
	// in reception/idle modes."
	p := MotesProfile()
	b := NewBattery(p, 54)
	b.SetMode(0, Idle)
	life := b.DepletionTime(0)
	if life != 4500 {
		t.Errorf("54 J idle life = %v s, want 4500", life)
	}
	b2 := NewBattery(p, 60)
	b2.SetMode(0, Idle)
	if got := b2.DepletionTime(0); got != 5000 {
		t.Errorf("60 J idle life = %v s, want 5000", got)
	}
}

func TestBatteryDrainAndModes(t *testing.T) {
	p := MotesProfile()
	b := NewBattery(p, 10)
	if b.Mode() != Sleep {
		t.Fatal("batteries boot in sleep mode")
	}
	b.SetMode(100, Idle) // 100 s of sleep: 3e-3 J
	if got := b.ConsumedIn(100, Sleep); math.Abs(got-0.003) > 1e-12 {
		t.Errorf("sleep consumption = %v, want 0.003", got)
	}
	b.SetMode(200, Sleep) // 100 s of idle: 1.2 J
	if got := b.ConsumedIn(200, Idle); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("idle consumption = %v, want 1.2", got)
	}
	wantRemaining := 10 - 0.003 - 1.2
	if got := b.Remaining(200); math.Abs(got-wantRemaining) > 1e-12 {
		t.Errorf("remaining = %v, want %v", got, wantRemaining)
	}
}

func TestBatterySpend(t *testing.T) {
	b := NewBattery(MotesProfile(), 1)
	if !b.Spend(0, Transmit, 0.4) {
		t.Fatal("spend within charge should succeed")
	}
	if got := b.ConsumedIn(0, Transmit); got != 0.4 {
		t.Errorf("transmit consumption = %v", got)
	}
	// Overdraw kills the battery and reports failure.
	if b.Spend(0, Transmit, 2) {
		t.Fatal("overdraw should fail")
	}
	if !b.Dead() {
		t.Error("overdrawn battery should be dead")
	}
	if b.Remaining(0) != 0 {
		t.Errorf("dead battery remaining = %v", b.Remaining(0))
	}
	if b.Spend(1, Idle, 0.1) {
		t.Error("spending from a dead battery should fail")
	}
}

func TestBatteryKill(t *testing.T) {
	b := NewBattery(MotesProfile(), 50)
	b.SetMode(0, Idle)
	b.Kill(100)
	if !b.Dead() {
		t.Fatal("killed battery should be dead")
	}
	// Settled drain up to the kill instant is retained.
	if got := b.ConsumedIn(100, Idle); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("consumption at kill = %v, want 1.2", got)
	}
	if b.DepletionTime(200) != 200 {
		t.Error("dead battery depletes now")
	}
}

func TestBatteryTimeNeverRewinds(t *testing.T) {
	b := NewBattery(MotesProfile(), 10)
	b.SetMode(100, Idle)
	// An out-of-order settle must not produce negative consumption.
	if got := b.Remaining(50); got > 10 {
		t.Errorf("remaining grew: %v", got)
	}
	b.SetMode(200, Sleep)
	if got := b.Consumed(200); got <= 0 {
		t.Errorf("consumed = %v", got)
	}
}

// TestEnergyConservation is the core battery invariant: consumed plus
// remaining equals the initial charge, regardless of the mode/spend
// sequence applied.
func TestEnergyConservation(t *testing.T) {
	err := quick.Check(func(ops []struct {
		Dt    uint16
		Kind  uint8
		Spend uint16
	}) bool {
		b := NewBattery(MotesProfile(), 20)
		now := 0.0
		modes := []Mode{Sleep, Idle, Receive, Transmit}
		for _, op := range ops {
			now += float64(op.Dt) / 100
			if op.Kind%3 == 0 {
				b.Spend(now, Transmit, float64(op.Spend)/1e4)
			} else {
				b.SetMode(now, modes[int(op.Kind)%len(modes)])
			}
			if b.Dead() {
				break
			}
		}
		total := b.Consumed(now) + b.Remaining(now)
		return math.Abs(total-20) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Error(err)
	}
}

func TestDepletionTimeProjection(t *testing.T) {
	b := NewBattery(MotesProfile(), 12)
	b.SetMode(0, Idle)
	want := 12 / 0.012
	if got := b.DepletionTime(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("depletion = %v, want %v", got, want)
	}
	// After advancing halfway, the projection shifts accordingly.
	if got := b.DepletionTime(want / 2); math.Abs(got-want) > 1e-6 {
		t.Errorf("mid-life depletion = %v, want %v", got, want)
	}
	// Zero-draw profile never depletes.
	z := NewBattery(Profile{}, 1)
	if got := z.DepletionTime(0); got < 1e100 {
		t.Errorf("zero-draw depletion = %v", got)
	}
}
