// Package energy models the sensor-node battery and mode-based power
// draw. Parameters follow the paper's Berkeley-Motes-like configuration
// (§5.1): 60 mW transmitting, 12 mW receiving, 12 mW idle, 0.03 mW
// sleeping, with 54-60 J of initial energy (≈4500-5000 s of rx/idle life).
//
// The battery drains linearly in the current power mode. Callers settle the
// accumulated drain on every mode change and can ask for the projected
// depletion time so the simulator can schedule a death event instead of
// polling.
package energy

import "fmt"

// Mode is a node power mode.
type Mode int

// Power modes. Transmit and Receive are transient packet states layered on
// top of Idle by the radio; Sleep and Idle are the long-lived states the
// PEAS state machine switches between.
const (
	Sleep Mode = iota + 1
	Idle
	Receive
	Transmit
	// DataReceive and DataTransmit draw the same power as Receive and
	// Transmit but are accounted separately, so protocol overhead
	// (PROBE/REPLY traffic) and application data traffic can be told
	// apart in Table 1.
	DataReceive
	DataTransmit
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Sleep:
		return "sleep"
	case Idle:
		return "idle"
	case Receive:
		return "receive"
	case Transmit:
		return "transmit"
	case DataReceive:
		return "data-receive"
	case DataTransmit:
		return "data-transmit"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Profile holds per-mode power draw in watts.
type Profile struct {
	TransmitW float64
	ReceiveW  float64
	IdleW     float64
	SleepW    float64
}

// MotesProfile is the paper's hardware profile (§5.1): 60/12/12/0.03 mW.
func MotesProfile() Profile {
	return Profile{
		TransmitW: 0.060,
		ReceiveW:  0.012,
		IdleW:     0.012,
		SleepW:    0.00003,
	}
}

// Power returns the draw in watts for mode m.
func (p Profile) Power(m Mode) float64 {
	switch m {
	case Sleep:
		return p.SleepW
	case Idle:
		return p.IdleW
	case Receive, DataReceive:
		return p.ReceiveW
	case Transmit, DataTransmit:
		return p.TransmitW
	default:
		return p.IdleW
	}
}

// Battery tracks remaining energy for one node. It is driven by the
// simulation clock: the owner calls SetMode with the current time on every
// transition, and Drain settles elapsed consumption lazily.
type Battery struct {
	profile   Profile
	initial   float64 // joules
	remaining float64 // joules, settled up to lastT
	mode      Mode
	lastT     float64
	dead      bool

	// byMode accumulates consumed joules per mode for overhead accounting.
	byMode map[Mode]float64
}

// NewBattery returns a battery with the given initial charge in joules,
// starting in Sleep mode at time 0 (PEAS nodes boot asleep).
func NewBattery(profile Profile, joules float64) *Battery {
	return &Battery{
		profile:   profile,
		initial:   joules,
		remaining: joules,
		mode:      Sleep,
		byMode:    make(map[Mode]float64, 4),
	}
}

// Initial returns the initial charge in joules.
func (b *Battery) Initial() float64 { return b.initial }

// Mode returns the current power mode.
func (b *Battery) Mode() Mode { return b.mode }

// Dead reports whether the battery has been exhausted (or force-killed).
func (b *Battery) Dead() bool { return b.dead }

// settle accrues consumption in the current mode up to time now.
func (b *Battery) settle(now float64) {
	if b.dead || now <= b.lastT {
		b.lastT = maxf(b.lastT, now)
		return
	}
	dt := now - b.lastT
	used := b.profile.Power(b.mode) * dt
	if used >= b.remaining {
		used = b.remaining
		b.dead = true
	}
	b.remaining -= used
	b.byMode[b.mode] += used
	b.lastT = now
}

// SetMode settles consumption and switches to mode m at time now.
func (b *Battery) SetMode(now float64, m Mode) {
	b.settle(now)
	b.mode = m
}

// Remaining settles up to now and returns the remaining joules.
func (b *Battery) Remaining(now float64) float64 {
	b.settle(now)
	return b.remaining
}

// Consumed settles up to now and returns total joules consumed, including
// any Spend charges.
func (b *Battery) Consumed(now float64) float64 {
	b.settle(now)
	return b.initial - b.remaining
}

// ConsumedIn settles up to now and returns the joules consumed in mode m.
func (b *Battery) ConsumedIn(now float64, m Mode) float64 {
	b.settle(now)
	return b.byMode[m]
}

// Spend charges an instantaneous amount of energy (e.g. a packet's TX or
// RX cost computed as power x airtime) attributed to mode m. It reports
// whether the battery survived the charge.
func (b *Battery) Spend(now float64, m Mode, joules float64) bool {
	b.settle(now)
	if b.dead {
		return false
	}
	if joules >= b.remaining {
		b.byMode[m] += b.remaining
		b.remaining = 0
		b.dead = true
		return false
	}
	b.remaining -= joules
	b.byMode[m] += joules
	return true
}

// DepletionTime returns the absolute time at which the battery empties if
// it stays in its current mode. A dead battery depletes "now"; a zero-draw
// mode never depletes and returns +Inf via a very large value.
func (b *Battery) DepletionTime(now float64) float64 {
	b.settle(now)
	if b.dead {
		return now
	}
	p := b.profile.Power(b.mode)
	if p <= 0 {
		return maxFloat
	}
	return now + b.remaining/p
}

// BatteryState is the serializable state of a battery, as captured by the
// checkpoint subsystem. Fields are raw (unsettled): a snapshot must not
// settle, because settling splits the pending drain into two floating-
// point subtractions and would nudge the checkpointed run off the
// trajectory of an uninterrupted one.
type BatteryState struct {
	Initial   float64
	Remaining float64
	Mode      Mode
	LastT     float64
	Dead      bool
	// ConsumedByMode[m-1] is the settled consumption in mode m, in the
	// Sleep..DataTransmit constant order.
	ConsumedByMode [6]float64
}

// Snapshot captures the battery state without settling.
func (b *Battery) Snapshot() BatteryState {
	st := BatteryState{
		Initial:   b.initial,
		Remaining: b.remaining,
		Mode:      b.mode,
		LastT:     b.lastT,
		Dead:      b.dead,
	}
	for m := Sleep; m <= DataTransmit; m++ {
		st.ConsumedByMode[m-1] = b.byMode[m]
	}
	return st
}

// Restore overwrites the battery with a captured state.
func (b *Battery) Restore(st BatteryState) {
	b.initial = st.Initial
	b.remaining = st.Remaining
	b.mode = st.Mode
	b.lastT = st.LastT
	b.dead = st.Dead
	b.byMode = make(map[Mode]float64, len(st.ConsumedByMode))
	for m := Sleep; m <= DataTransmit; m++ {
		if v := st.ConsumedByMode[m-1]; v != 0 {
			b.byMode[m] = v
		}
	}
}

// Kill settles consumption and marks the battery dead regardless of
// remaining charge. Injected node failures (paper §5.2: "failures are
// deaths not incurred by energy depletions") use this.
func (b *Battery) Kill(now float64) {
	b.settle(now)
	b.dead = true
}

const maxFloat = 1.797693134862315708145274237317043567981e308

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
