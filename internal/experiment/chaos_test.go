// Chaos detection suite: proves every scripted fault class actually
// fires against the simulator, that PEAS keeps its invariants under
// fault load, and that chaos campaigns are reproducible. Lives in an
// external test package because the oracle imports experiment.
package experiment_test

import (
	"strings"
	"testing"

	"peas/internal/chaos"
	"peas/internal/checkpoint"
	"peas/internal/experiment"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/oracle"
)

func chaosConfig(n int, seed int64, horizon float64, plan *chaos.Plan, counters *metrics.Counters) experiment.RunConfig {
	return experiment.RunConfig{
		Network: node.DefaultConfig(n, seed),
		Horizon: horizon,
		// The plan is the only fault source; the runner's own §5.2
		// injector stays off.
		FailuresPer5000s: 0,
		Chaos:            plan,
		ChaosCounters:    counters,
	}
}

func TestMixedPlanExercisesEveryClassUnderOracle(t *testing.T) {
	const horizon = 2000
	plan := chaos.MixedPlan(horizon, 7)
	counters := metrics.NewCounters()
	cfg := chaosConfig(120, 7, horizon, plan, counters)
	var chk *oracle.Checker
	cfg.OnNetwork = func(net *node.Network) { chk = oracle.Attach(net, oracle.DefaultConfig()) }

	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if missing := chaos.Unexercised(plan.Classes(), counters); len(missing) > 0 {
		t.Errorf("fault classes never fired: %v (counters: %v)", missing, counters.Snapshot())
	}
	if err := chk.Err(); err != nil {
		t.Errorf("invariant oracle under chaos: %v", err)
	}
	if chk.Dropped() > 0 {
		t.Errorf("oracle dropped %d violations", chk.Dropped())
	}
	for name, v := range res.Chaos {
		if counters.Get(name) != v {
			t.Errorf("RunStats.Chaos[%s] = %d, counters say %d", name, v, counters.Get(name))
		}
	}
	// Graceful degradation, not collapse: the network still boots to near
	// full sensing coverage with the mixed plan active.
	if res.InitialCoverage[0] < 0.9 {
		t.Errorf("initial 1-coverage %.3f under chaos; expected near-full", res.InitialCoverage[0])
	}
}

func TestChaosCampaignDeterminism(t *testing.T) {
	const horizon = 1200
	run := func() string {
		cfg := chaosConfig(80, 11, horizon, chaos.MixedPlan(horizon, 11), nil)
		cfg.CaptureFinal = true
		res, err := experiment.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalState.StateHashHex()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same plan + seed produced different final state hashes:\n  %s\n  %s", a, b)
	}
}

func TestChaosRejectsCheckpointCombinations(t *testing.T) {
	plan := chaos.MixedPlan(1000, 1)
	resume := chaosConfig(40, 1, 1000, plan, nil)
	resume.Resume = &checkpoint.Snapshot{Net: node.DefaultConfig(40, 1)}
	if _, err := experiment.Run(resume); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Errorf("Chaos+Resume: err = %v, want resume rejection", err)
	}
	periodic := chaosConfig(40, 1, 1000, plan, nil)
	periodic.CheckpointEvery = 100
	periodic.OnCheckpoint = func(*checkpoint.Snapshot) bool { return false }
	if _, err := experiment.Run(periodic); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Errorf("Chaos+CheckpointEvery: err = %v, want checkpoint rejection", err)
	}
}

func TestCrashRestartResumesPinnedSimNode(t *testing.T) {
	victim := 3
	plan := &chaos.Plan{
		Name: "pinned-crash",
		Seed: 5,
		Events: []chaos.Event{
			{Class: chaos.CrashRestart, At: 600, Downtime: 50, Victim: &victim},
		},
	}
	counters := metrics.NewCounters()
	cfg := chaosConfig(60, 5, 1500, plan, counters)
	var chk *oracle.Checker
	cfg.OnNetwork = func(net *node.Network) { chk = oracle.Attach(net, oracle.DefaultConfig()) }
	if _, err := experiment.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := counters.Get(chaos.CtrCrash); got != 1 {
		t.Errorf("crash counter = %d, want 1", got)
	}
	// restarted increments only when ReviveFrom accepts the checkpoint —
	// the node rebooted with its pre-crash protocol state.
	if got := counters.Get(chaos.CtrRestarted); got != 1 {
		t.Errorf("restarted counter = %d, want 1 (checkpoint resume failed?)", got)
	}
	if err := chk.Err(); err != nil {
		t.Errorf("oracle after crash-restart: %v", err)
	}
}
