package experiment

import (
	"fmt"
	"math"
	"sort"

	"peas/internal/baseline"
	"peas/internal/connectivity"
	"peas/internal/coverage"
	"peas/internal/failure"
	"peas/internal/geom"
	"peas/internal/node"
	"peas/internal/stats"
)

// EstimatorStudy reproduces the §2.2.1 analysis of the aggregate-rate
// estimator: for a Poisson probing process of known rate λ, the k-interval
// estimator λ̂ = k/(t-t0) should be within ~1% of λ with >99% confidence
// once k >= 16.
func EstimatorStudy(seed int64) *Table {
	t := &Table{
		Caption: "§2.2.1: rate-estimator accuracy vs. window size k (true λ = 0.02/s)",
		Headers: []string{"k", "mean-rel-err", "p99-rel-err", "windows"},
	}
	const (
		trueRate = 0.02
		trials   = 2000
	)
	rng := stats.NewRNG(seed)
	for _, k := range []int{4, 8, 16, 32, 64} {
		errs := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			est := newPoissonEstimate(rng, trueRate, k)
			errs = append(errs, math.Abs(est-trueRate)/trueRate)
		}
		s := stats.Summarize(errs)
		t.AddRow(fmt.Sprint(k), ffloat(s.Mean), ffloat(percentile(errs, 0.99)),
			fmt.Sprint(trials))
	}
	t.AddNote("paper: k >= 16 gives <1%% error in the measured mean interval " +
		"with >99%% confidence; k = 32 chosen for margin. The relative error " +
		"of one λ̂ window scales as 1/sqrt(k) (CLT).")
	return t
}

// newPoissonEstimate draws k exponential inter-arrival intervals at rate
// lambda and returns one estimator window's λ̂.
func newPoissonEstimate(rng *stats.RNG, lambda float64, k int) float64 {
	var elapsed float64
	for i := 0; i < k; i++ {
		elapsed += rng.Exp(lambda)
	}
	return float64(k) / elapsed
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// ConnectivityStudy checks the §3 claims on PEAS equilibria: working-node
// separation, the (1+√5)Rp nearest-neighbor bound for interior nodes, and
// connectivity under Rt >= (1+√5)Rp.
func ConnectivityStudy(seeds int, rootSeed int64) *Table {
	t := &Table{
		Caption: "§3: working-set geometry and asymptotic connectivity",
		Headers: []string{"seed", "working", "min-pair(m)", "max-nearest(m)", "components@Rt=10"},
	}
	bound := connectivity.SeparationBound * 3 // (1+√5)·Rp for Rp = 3
	connectedRuns := 0
	var posBuf []geom.Point
	for s := 0; s < seeds; s++ {
		cfg := RunConfig{
			Network: node.DefaultConfig(480, derivedSeed(rootSeed, 200, s)),
			Horizon: 400, // past the boot transient, before depletion
		}
		net, err := node.NewNetwork(cfg.Network)
		if err != nil {
			continue
		}
		net.Start()
		net.Run(cfg.Horizon)
		posBuf = net.AppendWorkingPositions(posBuf[:0])
		a := connectivity.Analyze(net.Field, posBuf, 10)
		if a.Connected {
			connectedRuns++
		}
		t.AddRow(fmt.Sprint(s), fmt.Sprint(a.Working),
			fmt.Sprintf("%.2f", a.MinPairDist), fmt.Sprintf("%.2f", a.MaxNearestDist),
			fmt.Sprint(a.Components))
	}
	t.AddNote("theory: nearest working neighbor within (1+√5)Rp = %.2f m for "+
		"interior nodes of a dense deployment; Rt = 10 m > %.2f m fails the "+
		"Theorem 3.1 premise only marginally (10 < 9.71 is false), so the "+
		"working set should be connected", bound, bound)
	t.AddNote("%d/%d runs fully connected at Rt = 10 m", connectedRuns, seeds)
	return t
}

// GapStudy compares monitoring-interruption gaps between PEAS's randomized
// wakeups and the synchronized-sleeping baseline (Figures 4-5): after a
// worker fails, how long until a replacement takes over?
func GapStudy(seeds int, rootSeed int64) *Table {
	t := &Table{
		Caption: "§2.1.1 (Figs. 4-5): replacement gaps, PEAS vs. synchronized sleeping",
		Headers: []string{"scheme", "mean-gap(s)", "max-gap(s)", "gaps", "cov-lifetime(s)"},
	}

	var peasGaps []float64
	var peasMax float64
	peasCount := 0
	var peasLifetime float64
	for s := 0; s < seeds; s++ {
		mean, max, count, lt := peasGapRun(derivedSeed(rootSeed, 300, s))
		if count > 0 {
			peasGaps = append(peasGaps, mean)
			if max > peasMax {
				peasMax = max
			}
			peasCount += count
		}
		peasLifetime += lt
	}
	t.AddRow("PEAS", ffloat(stats.Mean(peasGaps)), ffloat(peasMax),
		fmt.Sprint(peasCount), fsec(peasLifetime/float64(seeds)))

	var syncMeans []float64
	var syncMax float64
	syncCount := 0
	var syncLifetime float64
	for s := 0; s < seeds; s++ {
		cfg := baseline.DefaultConfig(480, derivedSeed(rootSeed, 301, s))
		cfg.FailureRate = failurePerSecond(32)
		cfg.Horizon = 12000
		res := baseline.SyncSleep(cfg)
		if res.Gaps.Count > 0 {
			syncMeans = append(syncMeans, res.Gaps.MeanDuration)
			if res.Gaps.MaxDuration > syncMax {
				syncMax = res.Gaps.MaxDuration
			}
			syncCount += res.Gaps.Count
		}
		syncLifetime += res.CoverageLifetime
	}
	t.AddRow("SyncSleep", ffloat(stats.Mean(syncMeans)), ffloat(syncMax),
		fmt.Sprint(syncCount), fsec(syncLifetime/float64(seeds)))
	t.AddNote("PEAS gaps are bounded by the (adaptive) probing interval "+
		"≈1/λd = %.0f s; synchronized sleeping leaves cells dark until the "+
		"next round boundary (round length %.0f s)", 1/0.02, 500.0)
	return t
}

func failurePerSecond(per5000 float64) float64 { return per5000 / 5000 }

// peasGapRun measures replacement gaps in a PEAS run: for a lattice of
// observation points, a gap is a maximal interval during which a
// previously covered point has no working node within sensing range while
// alive nodes remain nearby. Returns (mean, max, count, coverageLifetime).
func peasGapRun(seed int64) (mean, max float64, count int, lifetime float64) {
	cfg := node.DefaultConfig(480, seed)
	net, err := node.NewNetwork(cfg)
	if err != nil {
		return 0, 0, 0, 0
	}
	inj := failure.NewInjector(net, failure.RatePer5000s(32), stats.NewRNG(seed^0x5f3759df))
	lattice := coverage.NewLattice(cfg.Field, 5) // 11x11 observation points
	// The 1 Hz observation loop runs 12000 times per seed; the incremental
	// engine makes each tick O(observation points) reads instead of a full
	// working-disk restamp plus a spatial-index rebuild.
	inc := attachIncremental(net, lattice, 1)
	tracker := coverage.NewTracker(1)

	const (
		horizon  = 12000
		interval = 1.0
	)
	// gapStart[i] > 0 while observation point i is uncovered.
	gapStart := make([]float64, lattice.Len())
	covered := make([]bool, lattice.Len())
	var gaps []float64
	byK := make([]float64, 0, 1)
	mask := make([]bool, 0, lattice.Len())
	net.Engine.NewTicker(interval, func() {
		now := net.Engine.Now()
		byK = inc.FractionInto(byK)
		tracker.Record(now, byK)
		mask = inc.CoveredMaskInto(mask)
		for i, cov := range mask {
			switch {
			case cov && gapStart[i] > 0:
				gaps = append(gaps, now-gapStart[i])
				gapStart[i] = 0
				covered[i] = true
			case cov:
				covered[i] = true
			case !cov && covered[i] && gapStart[i] == 0:
				// Only count interruptions of previously covered points
				// while the network is still young enough to recover.
				gapStart[i] = now
			}
		}
	})
	net.Start()
	inj.Start()
	net.Run(horizon)

	for _, g := range gaps {
		if g > max {
			max = g
		}
	}
	lifetime, _ = tracker.Lifetime(1, LifetimeThreshold, CoverageSustain)
	return stats.Mean(gaps), max, len(gaps), lifetime
}

// LossStudy reproduces the §4 loss-compensation experiment: with 1 vs 3
// PROBE transmissions per wakeup under increasing packet-loss rates, how
// many redundant workers appear?
func LossStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§4: multi-PROBE loss compensation (480 nodes, t=600 s)",
		Headers: []string{"loss-rate", "workers(1 probe)", "workers(3 probes)", "overhead(3)"},
	}
	for _, loss := range []float64{0, 0.05, 0.10, 0.20} {
		w1 := lossRun(rootSeed, loss, 1)
		w3, overhead := lossRunOverhead(rootSeed, loss, 3)
		t.AddRow(fmt.Sprintf("%.0f%%", 100*loss), fmt.Sprintf("%.1f", w1),
			fmt.Sprintf("%.1f", w3), fpct(overhead))
	}
	t.AddNote("paper: three PROBEs work well against loss rates up to 10%%, " +
		"with energy overhead still below 1%%")
	return t
}

func lossRun(rootSeed int64, loss float64, probes int) float64 {
	w, _ := lossRunOverhead(rootSeed, loss, probes)
	return w
}

func lossRunOverhead(rootSeed int64, loss float64, probes int) (meanWorking, overhead float64) {
	const runs = 3
	for r := 0; r < runs; r++ {
		cfg := node.DefaultConfig(480, derivedSeed(rootSeed, 400+probes, r))
		cfg.Radio.LossRate = loss
		cfg.Protocol.NumProbes = probes
		rs, err := Run(RunConfig{Network: cfg, Horizon: 600})
		if err != nil {
			continue
		}
		meanWorking += rs.MeanWorking
		overhead += rs.OverheadRatio
	}
	return meanWorking / runs, overhead / runs
}

// TurnoffStudy measures the §4 redundant-worker turn-off extension: the
// boot-up race promotes some extra workers; with the extension enabled,
// overlapping workers resolve and the working set shrinks toward the
// packing bound.
func TurnoffStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§4: redundant-worker turn-off extension (480 nodes, t=1200 s)",
		Headers: []string{"turnoff", "mean-working", "min-pair-dist(m)", "turnoffs"},
	}
	var posBuf []geom.Point
	for _, enabled := range []bool{false, true} {
		var working, minPair, turnoffs float64
		const runs = 3
		for r := 0; r < runs; r++ {
			cfg := node.DefaultConfig(480, derivedSeed(rootSeed, 500, r))
			cfg.Protocol.TurnoffEnabled = enabled
			net, err := node.NewNetwork(cfg)
			if err != nil {
				continue
			}
			net.Start()
			net.Run(1200)
			working += float64(net.WorkingCount())
			posBuf = net.AppendWorkingPositions(posBuf[:0])
			a := connectivity.Analyze(net.Field, posBuf, 10)
			minPair += a.MinPairDist
			for _, n := range net.Nodes {
				turnoffs += float64(n.Protocol().Stats().Turnoffs)
			}
		}
		t.AddRow(fmt.Sprint(enabled), fmt.Sprintf("%.1f", working/runs),
			fmt.Sprintf("%.2f", minPair/runs), fmt.Sprintf("%.1f", turnoffs/runs))
	}
	t.AddNote("the extension lets the longer-working of two mutually audible " +
		"workers turn the younger off, pushing pair separation toward Rp = 3 m")
	return t
}
