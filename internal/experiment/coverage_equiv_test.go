package experiment

import (
	"testing"

	"peas/internal/checkpoint"
	"peas/internal/coverage"
	"peas/internal/node"
)

// TestIncrementalMatchesLegacyDuringRun is the run-level differential:
// on every periodic coverage sample of a live simulation (failures and
// forwarding on, so the working set churns through deaths as well as
// protocol transitions), the incremental engine's byK vector must be
// bit-identical to a from-scratch Lattice.Fraction over the same
// network's working positions.
func TestIncrementalMatchesLegacyDuringRun(t *testing.T) {
	for _, seed := range []int64{4, 17} {
		cfg := RunConfig{
			Network:          node.DefaultConfig(120, seed),
			Horizon:          2600,
			FailuresPer5000s: 20,
			Forwarding:       true,
		}
		lattice := coverage.NewLattice(cfg.Network.Field, 1)
		var net *node.Network
		cfg.OnNetwork = func(n *node.Network) { net = n }
		samples := 0
		cfg.OnSample = func(now float64, working int, byK []float64) {
			samples++
			want := lattice.Fraction(net.WorkingPositions(), SensingRange, MaxCoverageK)
			if len(byK) != len(want) {
				t.Fatalf("seed %d t=%v: byK has %d entries, want %d", seed, now, len(byK), len(want))
			}
			for k := range want {
				if byK[k] != want[k] {
					t.Fatalf("seed %d t=%v K=%d: incremental %v != legacy %v",
						seed, now, k+1, byK[k], want[k])
				}
			}
			if want := net.WorkingCount(); working != want {
				t.Fatalf("seed %d t=%v: working count %d != %d", seed, now, working, want)
			}
		}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if samples < 50 {
			t.Fatalf("seed %d: only %d samples; differential barely exercised", seed, samples)
		}
	}
}

// TestCheckpointResumeCoverageSamples checks the resume-rebuild path of
// the incremental engine: a run suspended at a mid-run checkpoint and
// resumed through the codec must record exactly the direct run's tracker
// samples (times and byK vectors bit-identical) and reach the identical
// final StateHash.
func TestCheckpointResumeCoverageSamples(t *testing.T) {
	cfg := RunConfig{
		Network:          node.DefaultConfig(60, 12),
		Horizon:          2400,
		FailuresPer5000s: 15,
		Forwarding:       true,
	}

	direct := cfg
	direct.CaptureFinal = true
	a, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}

	var mid *checkpoint.Snapshot
	half := cfg
	half.CheckpointEvery = cfg.Horizon / 2
	half.OnCheckpoint = func(s *checkpoint.Snapshot) bool {
		mid = s
		return true
	}
	if _, err := Run(half); err != nil {
		t.Fatal(err)
	}
	if mid == nil {
		t.Fatal("no checkpoint captured")
	}
	decoded, err := checkpoint.DecodeBytes(mid.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(RunConfig{Resume: decoded, CaptureFinal: true})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := c.FinalState.StateHashHex(), a.FinalState.StateHashHex(); got != want {
		t.Errorf("final StateHash: resumed %s != direct %s", got, want)
	}
	ds, rs := a.FinalState.TrackerSamples, c.FinalState.TrackerSamples
	if len(ds) != len(rs) {
		t.Fatalf("tracker samples: direct %d, resumed %d", len(ds), len(rs))
	}
	for i := range ds {
		if ds[i].T != rs[i].T {
			t.Fatalf("sample %d: time %v != %v", i, rs[i].T, ds[i].T)
		}
		for k := range ds[i].ByK {
			if ds[i].ByK[k] != rs[i].ByK[k] {
				t.Fatalf("sample %d K=%d: resumed %v != direct %v",
					i, k+1, rs[i].ByK[k], ds[i].ByK[k])
			}
		}
	}
	if a.CoverageSamples != c.CoverageSamples {
		t.Errorf("CoverageSamples: direct %d, resumed %d", a.CoverageSamples, c.CoverageSamples)
	}
	// Sanity: a resumed run must actually have crossed the suspend point.
	crossed := false
	for _, s := range rs {
		if s.T > mid.SimTime {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Error("no tracker sample beyond the checkpoint time; resume path untested")
	}
}
