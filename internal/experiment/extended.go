package experiment

import (
	"fmt"
	"math"

	"peas/internal/connectivity"
	"peas/internal/coverage"
	"peas/internal/geom"
	"peas/internal/node"
	"peas/internal/stats"
)

// DeploymentDistributionStudy explores §4's "Distribution of deployed
// nodes": uniform, even (grid with jitter) and clustered deployments of
// the same population, comparing coverage lifetime. The paper argues
// "evenly deployed nodes will work longer than those deployed
// irregularly".
func DeploymentDistributionStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§4: deployment distribution vs. coverage lifetime (480 nodes)",
		Headers: []string{"distribution", "1-cov life(s)", "4-cov life(s)", "mean-working"},
	}
	const runs = 3
	type gen func(field geom.Field, n int, rng *stats.RNG) []geom.Point
	cases := []struct {
		name string
		gen  gen
	}{
		{"grid+jitter", func(f geom.Field, n int, rng *stats.RNG) []geom.Point {
			return geom.GridDeploy(f, n, 1.0, rng)
		}},
		{"uniform", func(f geom.Field, n int, rng *stats.RNG) []geom.Point {
			return geom.UniformDeploy(f, n, rng)
		}},
		{"clustered", func(f geom.Field, n int, rng *stats.RNG) []geom.Point {
			return geom.ClusterDeploy(f, n, 8, 6, rng)
		}},
	}
	for ci, c := range cases {
		var life1, life4, working float64
		for r := 0; r < runs; r++ {
			cfg := node.DefaultConfig(480, derivedSeed(rootSeed, 600+ci, r))
			rng := stats.NewRNG(cfg.Seed)
			cfg.Positions = c.gen(cfg.Field, cfg.N, rng)
			rs, err := Run(RunConfig{
				Network:          cfg,
				FailuresPer5000s: BaseFailuresPer5000,
			})
			if err != nil {
				continue
			}
			life1 += rs.CoverageLifetime[0]
			life4 += rs.CoverageLifetime[3]
			working += rs.MeanWorking
		}
		t.AddRow(c.name, fsec(life1/runs), fsec(life4/runs),
			fmt.Sprintf("%.1f", working/runs))
	}
	t.AddNote("§4: uneven deployments die earlier because sparse regions " +
		"exhaust their local redundancy first; even deployment works longest")
	return t
}

// FixedPowerStudy reproduces §4's fixed-transmission-power mode: every
// frame is transmitted at full power (10 m) and receivers filter by
// signal-strength threshold equivalent to Rp. The working density and
// coverage should match the variable-power mode; the energy overhead is
// higher because every PROBE/REPLY burns full transmit power.
func FixedPowerStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§4: variable vs. fixed transmission power (480 nodes, t=1200 s)",
		Headers: []string{"power mode", "mean-working", "1-cov@1200s", "overhead"},
	}
	const runs = 3
	for _, fixed := range []bool{false, true} {
		name := "variable"
		if fixed {
			name = "fixed+threshold"
		}
		var working, cov, overhead float64
		for r := 0; r < runs; r++ {
			cfg := node.DefaultConfig(480, derivedSeed(rootSeed, 700, r))
			cfg.Radio.FixedPower = fixed
			rs, err := Run(RunConfig{Network: cfg, Horizon: 1200})
			if err != nil {
				continue
			}
			working += rs.MeanWorking
			cov += rs.InitialCoverage[0]
			overhead += rs.OverheadRatio
		}
		t.AddRow(name, fmt.Sprintf("%.1f", working/runs),
			ffloat(cov/runs), fpct(overhead/runs))
	}
	t.AddNote("the threshold filter preserves the probing semantics, so the " +
		"working set is equivalent; fixed power pays more energy per frame")
	return t
}

// RpSweepStudy varies the probing range Rp and checks both the working
// density tradeoff (§2.1: Rp sets the redundancy) and the Theorem 3.1
// connectivity condition Rt >= (1+√5)·Rp: with Rt = 10 m the condition
// holds up to Rp ≈ 3.09 m; larger probing ranges risk a partitioned
// working set.
func RpSweepStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§2.1/§3: probing range Rp vs. density and connectivity (480 nodes, t=600 s)",
		Headers: []string{"Rp(m)", "(1+√5)Rp", "cond holds", "mean-working", "components@Rt=10", "4-cov"},
	}
	const runs = 3
	// One observation lattice serves every evaluation below: all runs
	// share the default 50 x 50 m field, and coverageAt only reads it.
	lattice := coverage.NewLattice(node.DefaultConfig(480, 0).Field, 2)
	var posBuf []geom.Point
	for _, rp := range []float64{2, 2.5, 3, 4, 5, 6} {
		bound := connectivity.SeparationBound * rp
		holds := bound <= 10
		var working, components, cov4 float64
		for r := 0; r < runs; r++ {
			cfg := node.DefaultConfig(480, derivedSeed(rootSeed, 800, r))
			cfg.Protocol.ProbingRange = rp
			net, err := node.NewNetwork(cfg)
			if err != nil {
				continue
			}
			net.Start()
			net.Run(600)
			posBuf = net.AppendWorkingPositions(posBuf[:0])
			a := connectivity.Analyze(net.Field, posBuf, 10)
			working += float64(a.Working)
			components += float64(a.Components)
			cov4 += coverageAt(lattice, posBuf, 4)
		}
		t.AddRow(fmt.Sprintf("%.1f", rp), fmt.Sprintf("%.2f", bound),
			fmt.Sprint(holds), fmt.Sprintf("%.1f", working/runs),
			fmt.Sprintf("%.1f", components/runs), ffloat(cov4/runs))
	}
	t.AddNote("larger Rp thins the working set: fewer workers, less " +
		"redundancy, and beyond the Theorem 3.1 bound the working graph can " +
		"partition even though sleepers would bridge the gaps")
	return t
}

// coverageAt samples the K-coverage fraction of the given working set on
// a caller-owned (hoisted, reusable) observation lattice.
func coverageAt(lattice *coverage.Lattice, working []geom.Point, k int) float64 {
	return lattice.FractionK(working, SensingRange, k)
}

// BootStudy reproduces §2.1's boot-up discussion: "the initial value of λ
// decides how quickly the network acquires enough number of working nodes
// during the boot-up phase". For each λ0 it measures the time until the
// application's density requirement — 90% 4-coverage, as in §5.2 — is
// first met.
func BootStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§2.1: initial probing rate λ0 vs. boot-up time (480 nodes)",
		Headers: []string{"λ0 (1/s)", "t to 90% 4-coverage (s)", "workers @ t"},
	}
	// The lattice depends only on the (shared) field, so every λ0 case
	// reuses one instead of rebuilding it per configuration.
	lattice := coverage.NewLattice(node.DefaultConfig(480, 0).Field, 2)
	for _, lambda0 := range []float64{0.012, 0.05, 0.1, 0.3} {
		cfg := node.DefaultConfig(480, derivedSeed(rootSeed, 900, 0))
		cfg.Protocol.InitialRate = lambda0
		net, err := node.NewNetwork(cfg)
		if err != nil {
			continue
		}
		// The 5 s poll loop reads the incremental engine: working-set
		// transitions maintain the counts, so each poll is O(maxK).
		inc := attachIncremental(net, lattice, 4)
		bootT := math.NaN()
		workers := 0
		net.Engine.NewTicker(5, func() {
			if !math.IsNaN(bootT) {
				return
			}
			if inc.FractionK(4) >= 0.9 {
				bootT = net.Engine.Now()
				workers = inc.WorkingCount()
				net.Engine.Stop()
			}
		})
		net.Start()
		net.Run(2000)
		cell := "never"
		if !math.IsNaN(bootT) {
			cell = fsec(bootT)
		}
		t.AddRow(ffloat(lambda0), cell, fmt.Sprint(workers))
	}
	t.AddNote("paper: λ0 = 0.012 wakes 50%% of nodes within the first minute; " +
		"the evaluation uses λ0 = 0.1 'so that the number of working nodes " +
		"quickly stabilizes'")
	return t
}

// DensityStudy checks Lemma 3.1's premise empirically: with n nodes
// uniformly deployed on an l x l field split into c x c cells (c = Rp),
// how many cells are empty? The lemma requires c²n ≈ k·l²·ln(l) with
// k > 2 for asymptotically-all-cells-occupied.
func DensityStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§3 (Lemma 3.1): empty Rp-cells vs. deployment size (50x50 m, c = 3 m)",
		Headers: []string{"nodes", "k = c²n/(l²·ln l)", "empty cells", "of"},
	}
	const (
		l = 50.0
		c = 3.0
	)
	cols := int(math.Ceil(l / c))
	rng := stats.NewRNG(rootSeed)
	for _, n := range []int{160, 320, 480, 640, 800, 1600} {
		k := c * c * float64(n) / (l * l * math.Log(l))
		// Average empty-cell count over a few deployments.
		const runs = 5
		empty := 0
		for r := 0; r < runs; r++ {
			pts := geom.UniformDeploy(geom.NewField(l, l), n, rng)
			occupied := make([]bool, cols*cols)
			for _, p := range pts {
				ci := int(p.X / c)
				ri := int(p.Y / c)
				if ci >= cols {
					ci = cols - 1
				}
				if ri >= cols {
					ri = cols - 1
				}
				occupied[ri*cols+ci] = true
			}
			for _, o := range occupied {
				if !o {
					empty++
				}
			}
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.2f", k),
			fmt.Sprintf("%.1f", float64(empty)/runs), fmt.Sprint(cols*cols))
	}
	t.AddNote("Lemma 3.1: E[empty cells] -> 0 when k > d = 2; at this field " +
		"size the expected count is already near zero once k approaches 2")
	return t
}
