package experiment

import (
	"fmt"

	"peas/internal/checkpoint"
	"peas/internal/coverage"
	"peas/internal/failure"
	"peas/internal/forward"
	"peas/internal/geom"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/sim"
)

// quiescenceRetry is how long a due checkpoint waits before re-checking
// the radio medium for quiescence. Captures happen only when no frame is
// in flight, so pending deliveries never need to be serialized; the retry
// event itself reads state without mutating it, so deferral cannot perturb
// the trajectory.
const quiescenceRetry = 1e-3

// captureSnapshot assembles a full-state snapshot of a running
// simulation. It never mutates model state: batteries stay unsettled, RNG
// streams are copied, and pending timers are read out as absolute
// deadlines.
func captureSnapshot(cfg RunConfig, horizon, spacing float64, net *node.Network,
	tracker *coverage.Tracker, working *metrics.Series, sampler *sim.Ticker,
	inj *failure.Injector, fw *forward.Harness) *checkpoint.Snapshot {
	netCfg := cfg.Network
	if netCfg.Positions == nil {
		// Materialize the deployment so a restore rebuilds the identical
		// geometry without replaying the placement draws.
		pts := make([]geom.Point, len(net.Nodes))
		for i, n := range net.Nodes {
			pts[i] = n.Pos()
		}
		netCfg.Positions = pts
	}
	s := &checkpoint.Snapshot{
		SimTime:          net.Engine.Now(),
		Horizon:          horizon,
		FailuresPer5000s: cfg.FailuresPer5000s,
		Forwarding:       cfg.Forwarding,
		CoverageSpacing:  spacing,
		Net:              netCfg,
		Nodes:            net.SnapshotNodes(),
		Medium:           net.Medium.Snapshot(),
		Injector:         inj.Snapshot(),
		TrackerSamples:   tracker.Samples(),
		WorkingSeries:    working.Points(),
		NextSampleAt:     sampler.NextAt(),
	}
	if fw != nil {
		h := fw.Snapshot()
		s.Forward = &h
	}
	return s
}

// resumeRun positions a freshly constructed network at a snapshot:
// restore mutable state first, then rebuild the pending event schedule in
// the same order a fresh run creates it (coverage sampler, forwarding
// generator, per-node timers and death events in node-ID order, failure
// injector), so any events tied at the same instant replay in the original
// order.
func resumeRun(net *node.Network, snap *checkpoint.Snapshot, sample func(),
	fw *forward.Harness, inj *failure.Injector) (*sim.Ticker, error) {
	net.Engine.SetNow(snap.SimTime)
	if err := net.RestoreNodes(snap.Nodes); err != nil {
		return nil, err
	}
	if err := net.Medium.Restore(snap.Medium); err != nil {
		return nil, err
	}
	sampler := net.Engine.NewTickerAt(snap.NextSampleAt, CoverageInterval, sample)
	if fw != nil && snap.Forward != nil {
		fw.Resume(*snap.Forward)
	}
	net.ResumeSchedule(snap.Nodes)
	inj.Resume(snap.Injector)
	return sampler, nil
}

// scheduleCheckpoints arms the periodic capture. Due checkpoints defer in
// quiescenceRetry steps until the radio medium has no frame in flight,
// then capture and hand the snapshot to onCkpt; a true return stops the
// run at the capture point.
func scheduleCheckpoints(net *node.Network, every float64,
	capture func() *checkpoint.Snapshot, onCkpt func(*checkpoint.Snapshot) bool) {
	nominal := net.Engine.Now() + every
	var tick func()
	tick = func() {
		if net.Medium.InFlight() > 0 {
			net.Engine.At(net.Engine.Now()+quiescenceRetry, tick)
			return
		}
		if onCkpt(capture()) {
			net.Engine.Stop()
			return
		}
		for nominal <= net.Engine.Now() {
			nominal += every
		}
		net.Engine.At(nominal, tick)
	}
	net.Engine.At(nominal, tick)
}

// VerifyResult reports one checkpoint/resume equivalence check.
type VerifyResult struct {
	// CheckpointAt is the capture time of the mid-run snapshot.
	CheckpointAt float64
	// Horizon is the compared end time.
	Horizon float64
	// DirectHash is the final state hash of the uninterrupted run.
	DirectHash string
	// ResumedHash is the final state hash of the checkpoint-then-resume
	// run.
	ResumedHash string
	// Match reports whether the two hashes are equal.
	Match bool
}

// VerifyCheckpoint checks the determinism contract of the checkpoint
// subsystem on one configuration: it runs seed→horizon directly, runs
// again stopping at a checkpoint near horizon/2, pushes that snapshot
// through the binary codec, resumes it to the horizon, and compares the
// final state hashes. Equal hashes mean the restored run is bit-identical
// to the uninterrupted one.
func VerifyCheckpoint(cfg RunConfig) (*VerifyResult, error) {
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon(cfg.Network.N)
	}
	cfg.Trace = nil
	cfg.CheckpointEvery = 0
	cfg.OnCheckpoint = nil
	cfg.Resume = nil

	direct := cfg
	direct.CaptureFinal = true
	a, err := Run(direct)
	if err != nil {
		return nil, fmt.Errorf("direct run: %w", err)
	}

	var mid *checkpoint.Snapshot
	half := cfg
	half.CheckpointEvery = cfg.Horizon / 2
	half.OnCheckpoint = func(s *checkpoint.Snapshot) bool {
		mid = s
		return true
	}
	if _, err := Run(half); err != nil {
		return nil, fmt.Errorf("checkpointed run: %w", err)
	}
	if mid == nil {
		return nil, fmt.Errorf("no checkpoint captured before the %v s horizon", cfg.Horizon)
	}
	// Push the snapshot through the wire format so the verify covers the
	// codec, not just the in-memory capture.
	decoded, err := checkpoint.DecodeBytes(mid.EncodeBytes())
	if err != nil {
		return nil, fmt.Errorf("codec round trip: %w", err)
	}

	resumed := RunConfig{Resume: decoded, CaptureFinal: true}
	c, err := Run(resumed)
	if err != nil {
		return nil, fmt.Errorf("resumed run: %w", err)
	}

	res := &VerifyResult{
		CheckpointAt: mid.SimTime,
		Horizon:      cfg.Horizon,
		DirectHash:   a.FinalState.StateHashHex(),
		ResumedHash:  c.FinalState.StateHashHex(),
	}
	res.Match = res.DirectHash == res.ResumedHash
	return res, nil
}
