package experiment

import (
	"testing"

	"peas/internal/node"
)

// TestSmokeRun exercises a short full-stack run and sanity-checks the
// working-set behaviour PEAS must exhibit.
func TestSmokeRun(t *testing.T) {
	cfg := RunConfig{
		Network:          node.DefaultConfig(160, 42),
		FailuresPer5000s: BaseFailuresPer5000,
		Horizon:          1200,
		Forwarding:       true,
	}
	rs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("meanWorking=%.1f wakeups=%d overhead=%.3f%% totalE=%.1fJ protoE=%.2fJ",
		rs.MeanWorking, rs.Wakeups, 100*rs.OverheadRatio, rs.TotalEnergy, rs.ProtocolEnergy)
	t.Logf("initialCoverage=%v pkts sent=%d delivered=%d collided=%d",
		rs.InitialCoverage, rs.PacketsSent, rs.PacketsDelivered, rs.PacketsCollided)
	t.Logf("reports gen=%d del=%d", rs.ReportsGenerated, rs.ReportsDelivered)

	if rs.MeanWorking < 20 || rs.MeanWorking > 160 {
		t.Errorf("mean working count %.1f outside plausible range", rs.MeanWorking)
	}
	if rs.InitialCoverage[0] < 0.95 {
		t.Errorf("1-coverage after boot = %.3f, want >= 0.95", rs.InitialCoverage[0])
	}
	if rs.ReportsGenerated == 0 || rs.ReportsDelivered == 0 {
		t.Errorf("forwarding inactive: gen=%d del=%d", rs.ReportsGenerated, rs.ReportsDelivered)
	}
	if rs.Wakeups == 0 {
		t.Error("no wakeups recorded")
	}
}
