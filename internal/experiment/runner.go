// Package experiment reproduces the paper's evaluation (§5): one runner
// per figure/table plus the ablation studies called out in DESIGN.md. All
// experiments are deterministic functions of their options' seed.
package experiment

import (
	"fmt"
	"math"

	"peas/internal/chaos"
	"peas/internal/checkpoint"
	"peas/internal/core"
	"peas/internal/coverage"
	"peas/internal/failure"
	"peas/internal/forward"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/sim"
	"peas/internal/stats"
	"peas/internal/trace"
)

// Thresholds and sampling parameters of the paper's metrics.
const (
	// LifetimeThreshold: "both threshold values are chosen as 90%".
	LifetimeThreshold = 0.9
	// MaxCoverageK: the paper reports 3-, 4- and 5-coverage; we track
	// up to 5.
	MaxCoverageK = 5
	// CoverageInterval is the sampling period of the coverage lattice.
	CoverageInterval = 25.0
	// CoverageSustain is how many consecutive below-threshold samples
	// end the coverage lifetime (tolerating transient dips Adaptive
	// Sleeping repairs within ~1/λd; see DESIGN.md).
	CoverageSustain = 3
	// SensingRange: "the sensing and maximum transmitting ranges are
	// both 10 meters".
	SensingRange = 10.0
	// BaseFailuresPer5000 is the failure rate of Figs. 9-11 / Table 1.
	BaseFailuresPer5000 = 10.66
)

// RunConfig configures one simulation run.
type RunConfig struct {
	// Network is the deployment and protocol configuration.
	Network node.Config
	// FailuresPer5000s is the injected failure rate in the paper's
	// unit (failures per 5000 seconds).
	FailuresPer5000s float64
	// Horizon bounds the simulated time in seconds. Zero selects a
	// deployment-proportional horizon long enough for every node to die.
	Horizon float64
	// Forwarding enables the source/sink data workload.
	Forwarding bool
	// CoverageSpacing is the lattice spacing in meters (0 => 1 m).
	CoverageSpacing float64
	// Trace, when non-nil, records structured simulation events.
	Trace *trace.Recorder
	// OnSample, when non-nil, receives every periodic coverage sample:
	// the time, the working-node count, and the K-coverage fractions
	// (index 0 is 1-coverage).
	OnSample func(t float64, working int, byK []float64)
	// OnFinish, when non-nil, runs after the simulation completes, with
	// the network still intact — e.g. to render a final snapshot.
	OnFinish func(net *node.Network)
	// OnNetwork, when non-nil, runs once the network is fully built and
	// instrumented but before any event executes — the attachment point
	// for read-only observers like the runtime invariant oracle. It fires
	// on fresh starts (before Start) and on resumed runs (after the
	// snapshot is restored).
	OnNetwork func(net *node.Network)

	// CheckpointEvery, when positive with OnCheckpoint set, captures a
	// full-state snapshot every that many simulated seconds (deferred by
	// up to a few milliseconds to the next quiescent radio boundary).
	CheckpointEvery float64
	// OnCheckpoint receives each periodic snapshot; returning true stops
	// the run at the capture point.
	OnCheckpoint func(s *checkpoint.Snapshot) (stop bool)
	// Resume, when non-nil, continues a checkpointed run instead of
	// booting a fresh one. The snapshot supplies the network
	// configuration and experiment knobs; Network, FailuresPer5000s,
	// Forwarding and CoverageSpacing in this config are ignored, and
	// Horizon only applies when positive (to extend the run past the
	// snapshot's recorded horizon).
	Resume *checkpoint.Snapshot
	// CaptureFinal captures the end-of-run state into RunStats.FinalState
	// so callers can compare state hashes across runs.
	CaptureFinal bool

	// Supervisor, when non-nil, is attached to the run's engine: a
	// controller goroutine may set Supervisor.Stop to request cooperative
	// preemption (the run loop polls it every few hundred events) and may
	// watch Supervisor.Beat for event progress. Preemption keeps the
	// clock at the stop point and the pending schedule intact.
	Supervisor *sim.Supervisor
	// OnPreempt, when non-nil, receives a full-state snapshot captured at
	// the preemption point after a Supervisor stop: the run first drains
	// in-flight radio frames to the next quiescent boundary (single
	// events, no new horizon), then captures, exactly like a periodic
	// checkpoint. The snapshot resumes bit-exact through Resume. Ignored
	// for chaos runs — chaos state lives outside the snapshot format.
	OnPreempt func(s *checkpoint.Snapshot)

	// Chaos, when non-nil, attaches the scripted fault-plan engine to the
	// run: channel impairments on the radio medium plus node-fault events,
	// all derived from the plan's seed. Chaos state lives outside the
	// checkpoint format, so it cannot combine with Resume or
	// CheckpointEvery (the determinism check for chaos runs is instead
	// same-plan+seed double-run final-hash equality via CaptureFinal).
	Chaos *chaos.Plan
	// ChaosCounters, when non-nil, receives the per-fault-class counters;
	// a fresh set is allocated otherwise. RunStats.Chaos exposes the
	// final values either way.
	ChaosCounters *metrics.Counters
}

// DefaultHorizon returns a horizon long enough for a deployment of n
// nodes to exhaust itself: system lifetime scales roughly linearly at one
// battery life (~5000 s) per 160 deployed nodes in the paper's setup.
func DefaultHorizon(n int) float64 {
	return 6000 + 8000*float64(n)/160
}

// RunStats is everything a single run produces.
type RunStats struct {
	// CoverageLifetime[k-1] is the K-coverage lifetime for K=1..MaxCoverageK.
	CoverageLifetime [MaxCoverageK]float64
	// CoverageDropped[k-1] reports whether the K-coverage actually
	// crossed the threshold inside the horizon.
	CoverageDropped [MaxCoverageK]bool
	// InitialCoverage[k-1] is the K-coverage fraction once the boot
	// transient settles (first sample after 300 s).
	InitialCoverage [MaxCoverageK]float64
	// DeliveryLifetime is the 90% cumulative-success crossing (0 when
	// forwarding was disabled).
	DeliveryLifetime float64
	DeliveryDropped  bool
	// ReportsGenerated/Delivered are the forwarding totals.
	ReportsGenerated int
	ReportsDelivered int
	// Wakeups is the total probe rounds across all nodes.
	Wakeups uint64
	// CoverageSamples is how many periodic coverage observations the run
	// recorded (resumed samples included) — a deterministic work counter
	// the bench gate tracks alongside events/packets/wakeups.
	CoverageSamples int
	// ProtocolEnergy is the joules attributed to PEAS operation
	// (Table 1 numerator).
	ProtocolEnergy float64
	// TotalEnergy is the joules consumed by the network overall
	// (Table 1 denominator).
	TotalEnergy float64
	// OverheadRatio is ProtocolEnergy / TotalEnergy.
	OverheadRatio float64
	// MeanWorking is the mean working-node count after boot-up.
	MeanWorking float64
	// FailuresInjected counts injected (non-depletion) deaths.
	FailuresInjected int
	// FailedFraction is FailuresInjected / N.
	FailedFraction float64
	// AllDeadAt is when the last node died (horizon if some survived).
	AllDeadAt float64
	// PacketsSent/Delivered/Collided are medium counters.
	PacketsSent      uint64
	PacketsDelivered uint64
	PacketsCollided  uint64
	// Preempted reports that the run was stopped early by a
	// RunConfig.Supervisor rather than finishing its horizon; the other
	// metrics then describe the truncated trajectory.
	Preempted bool
	// FinalState is the end-of-run snapshot (nil unless CaptureFinal).
	// It is excluded from JSON so RunStats can travel over the service
	// wire; the snapshot's StateHash is reported separately.
	FinalState *checkpoint.Snapshot `json:"-"`
	// Chaos holds the final per-fault-class counters of a chaos run (nil
	// otherwise).
	Chaos map[string]uint64
}

// Run executes one simulation and gathers the paper's metrics. When
// cfg.Resume holds a checkpoint the run continues it — restoring the full
// model state and pending event schedule — instead of booting fresh.
func Run(cfg RunConfig) (*RunStats, error) {
	snap := cfg.Resume
	if snap != nil {
		cfg.Network = snap.Net
		cfg.FailuresPer5000s = snap.FailuresPer5000s
		cfg.Forwarding = snap.Forwarding
		cfg.CoverageSpacing = snap.CoverageSpacing
		if cfg.Horizon <= 0 {
			cfg.Horizon = snap.Horizon
		}
	}
	net, err := node.NewNetwork(cfg.Network)
	if err != nil {
		return nil, err
	}
	var chaosCtl *chaos.Controller
	if cfg.Chaos != nil {
		if snap != nil {
			return nil, fmt.Errorf("experiment: chaos plans cannot resume from a checkpoint (chaos state is outside the snapshot format)")
		}
		if cfg.CheckpointEvery > 0 {
			return nil, fmt.Errorf("experiment: chaos plans cannot take mid-run checkpoints; compare final-state hashes instead")
		}
		chaosCtl, err = chaos.AttachSim(net, cfg.Chaos, cfg.ChaosCounters)
		if err != nil {
			return nil, err
		}
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = DefaultHorizon(cfg.Network.N)
	}

	// Coverage sampling. The incremental engine keeps per-lattice-point
	// counts current through the working-transition hook, so each periodic
	// sample is an O(MaxCoverageK) histogram suffix sum instead of
	// re-stamping every working disk — the per-tick cost is proportional
	// to working-set churn, not working-set size. The legacy
	// Lattice.Fraction path remains the differential-testing reference
	// (see internal/coverage and the equivalence tests).
	spacing := cfg.CoverageSpacing
	if spacing <= 0 {
		spacing = 1
	}
	lattice := coverage.NewLattice(cfg.Network.Field, spacing)
	inc := attachIncremental(net, lattice, MaxCoverageK)
	tracker := coverage.NewTracker(MaxCoverageK)
	workingSeries := metrics.NewSeries("working")
	byKBuf := make([]float64, 0, MaxCoverageK)
	sample := func() {
		now := net.Engine.Now()
		byKBuf = inc.FractionInto(byKBuf)
		tracker.Record(now, byKBuf)
		working := inc.WorkingCount()
		workingSeries.Record(now, float64(working))
		if cfg.OnSample != nil {
			cfg.OnSample(now, working, byKBuf)
		}
	}
	var sampler *sim.Ticker
	if snap == nil {
		sampler = net.Engine.NewTicker(CoverageInterval, sample)
	}

	// Failure injection.
	injRNG := stats.NewRNG(cfg.Network.Seed ^ 0x5f3759df)
	inj := failure.NewInjector(net, failure.RatePer5000s(cfg.FailuresPer5000s), injRNG)

	// Forwarding workload.
	var fw *forward.Harness
	if cfg.Forwarding {
		fw = forward.NewHarness(forward.DefaultConfig(cfg.Network.Field), net)
		if snap == nil {
			fw.Start()
		}
	}

	// Stop early once the deployment is exhausted.
	allDeadAt := math.NaN()
	alive := cfg.Network.N
	if snap != nil {
		alive = 0
		for i := range snap.Nodes {
			if snap.Nodes[i].Alive {
				alive++
			}
		}
	}
	net.OnDeath = func(_ core.NodeID, _ node.DeathCause) {
		alive--
		if alive == 0 {
			allDeadAt = net.Engine.Now()
			net.Engine.Stop()
		}
	}
	net.OnRevive = func(core.NodeID) { alive++ }
	if cfg.Trace != nil {
		// Attach last so the recorder chains the hooks above.
		trace.Attach(cfg.Trace, net)
	}

	if snap == nil {
		if cfg.OnNetwork != nil {
			cfg.OnNetwork(net)
		}
		net.Start()
		inj.Start()
		sample() // t=0 observation
	} else {
		tracker.Restore(snap.TrackerSamples)
		workingSeries.Restore(snap.WorkingSeries)
		sampler, err = resumeRun(net, snap, sample, fw, inj)
		if err != nil {
			return nil, err
		}
		// Checkpoint restores bypass the working-transition hook, so
		// reconstruct the incremental counts from the restored working set.
		inc.Rebuild(func(i int) bool { return net.Nodes[i].Working() })
		if cfg.OnNetwork != nil {
			cfg.OnNetwork(net)
		}
	}

	capture := func() *checkpoint.Snapshot {
		return captureSnapshot(cfg, horizon, spacing, net, tracker,
			workingSeries, sampler, inj, fw)
	}
	if cfg.CheckpointEvery > 0 && cfg.OnCheckpoint != nil {
		scheduleCheckpoints(net, cfg.CheckpointEvery, capture, cfg.OnCheckpoint)
	}

	if cfg.Supervisor != nil {
		net.Engine.Supervise(cfg.Supervisor)
	}
	net.Run(horizon)
	preempted := cfg.Supervisor != nil && net.Engine.Preempted()
	if preempted && cfg.OnPreempt != nil && cfg.Chaos == nil {
		// Preemption can land mid-transmission; checkpoints only capture
		// at radio-quiescent boundaries, so single-step the engine until
		// the in-flight frames settle (the same boundary the periodic
		// scheduler waits for, reached event-by-event instead of by
		// deferred retry).
		for net.Medium.InFlight() > 0 && net.Engine.Step() {
		}
		cfg.OnPreempt(capture())
	}
	if cfg.OnFinish != nil && !preempted {
		cfg.OnFinish(net)
	}

	// Collect results.
	res := &RunStats{
		Wakeups:          net.TotalWakeups(),
		CoverageSamples:  len(tracker.Samples()),
		ProtocolEnergy:   net.ProtocolEnergy(),
		TotalEnergy:      net.TotalConsumed(),
		MeanWorking:      workingSeries.MeanAfter(300),
		FailuresInjected: inj.Injected(),
		FailedFraction:   float64(inj.Injected()) / float64(cfg.Network.N),
		AllDeadAt:        horizon,
	}
	if !math.IsNaN(allDeadAt) {
		res.AllDeadAt = allDeadAt
	}
	if res.TotalEnergy > 0 {
		res.OverheadRatio = res.ProtocolEnergy / res.TotalEnergy
	}
	for k := 1; k <= MaxCoverageK; k++ {
		lt, dropped := tracker.Lifetime(k, LifetimeThreshold, CoverageSustain)
		res.CoverageLifetime[k-1] = lt
		res.CoverageDropped[k-1] = dropped
	}
	for _, s := range tracker.Samples() {
		if s.T >= 300 {
			copy(res.InitialCoverage[:], s.ByK)
			break
		}
	}
	if fw != nil {
		lt, dropped := fw.DeliveryLifetime(LifetimeThreshold)
		res.DeliveryLifetime = lt
		res.DeliveryDropped = dropped
		res.ReportsGenerated, res.ReportsDelivered = fw.Ratio().Counts()
	}
	res.PacketsSent, res.PacketsDelivered, res.PacketsCollided, _, _ = net.Medium.Stats()
	if chaosCtl != nil {
		res.Chaos = chaosCtl.Counters().Snapshot()
	}
	res.Preempted = preempted
	if cfg.CaptureFinal && !preempted {
		res.FinalState = capture()
	}
	return res, nil
}
