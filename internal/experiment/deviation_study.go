package experiment

import (
	"peas/internal/node"
)

// DeviationStudy ablates each deviation this implementation makes from a
// literal reading of the paper (DESIGN.md §5), demonstrating why each is
// load-bearing: the row reverts exactly one deviation and re-measures the
// 4-coverage lifetime and the steady working set on the 480-node setup.
func DeviationStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "DESIGN.md §5 ablation: revert one deviation at a time (480 nodes)",
		Headers: []string{"variant", "4-cov lifetime(s)", "mean-working", "wakeups"},
	}
	variants := []struct {
		name   string
		mutate func(*node.Config)
	}{
		{"as-shipped", func(*node.Config) {}},
		{"stale λ̂ (paper-literal estimator)", func(c *node.Config) {
			c.Protocol.StaleEstimates = true
		}},
		{"no carrier sense", func(c *node.Config) {
			c.Radio.CSMAEnabled = false
		}},
		{"no §4 turn-off", func(c *node.Config) {
			c.Protocol.TurnoffEnabled = false
		}},
	}
	for vi, v := range variants {
		const runs = 2
		var life, working, wakeups float64
		for r := 0; r < runs; r++ {
			cfg := node.DefaultConfig(480, derivedSeed(rootSeed, 995+vi, r))
			v.mutate(&cfg)
			rs, err := Run(RunConfig{
				Network:          cfg,
				FailuresPer5000s: BaseFailuresPer5000,
			})
			if err != nil {
				continue
			}
			life += rs.CoverageLifetime[3]
			working += rs.MeanWorking
			wakeups += float64(rs.Wakeups)
		}
		t.AddRow(v.name, fsec(life/runs), fsec(working/runs), fsec(wakeups/runs))
	}
	t.AddNote("stale λ̂ collapses the lifetime to one battery generation " +
		"(sleepers spiral into near-infinite sleep and never replace dead " +
		"workers); no-CSMA and no-turn-off inflate the working set and burn " +
		"the deployment early")
	return t
}
