package experiment

import (
	"fmt"

	"peas/internal/energy"
	"peas/internal/forward"
	"peas/internal/node"
)

// MeshStudy measures GRAB's credit/mesh-width tradeoff over the PEAS
// working set: under lossy data hops, widening the forwarding mesh raises
// the delivery ratio at the cost of extra relayed energy (GRAB [11]
// trades exactly this way via per-report credits).
func MeshStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "GRAB substrate: mesh width vs. delivery under per-hop loss (480 nodes, t=2000 s)",
		Headers: []string{"hop-loss", "width", "delivery-ratio", "data energy (J)"},
	}
	for _, loss := range []float64{0.05, 0.15} {
		for _, width := range []int{1, 2, 3} {
			ratio, dataE := meshRun(derivedSeed(rootSeed, 950, width), loss, width)
			t.AddRow(fpct(loss), fmt.Sprint(width), ffloat(ratio),
				fmt.Sprintf("%.3f", dataE))
		}
	}
	t.AddNote("a report is delivered if any of its node-disjoint mesh paths " +
		"survives; wider meshes burn proportionally more relay energy")
	return t
}

func meshRun(seed int64, loss float64, width int) (ratio, dataEnergy float64) {
	cfg := node.DefaultConfig(480, seed)
	net, err := node.NewNetwork(cfg)
	if err != nil {
		return 0, 0
	}
	fcfg := forward.DefaultConfig(cfg.Field)
	fcfg.HopLossRate = loss
	fcfg.MeshWidth = width
	h := forward.NewHarness(fcfg, net)
	h.Start()
	net.Start()
	net.Run(2000)

	now := net.Engine.Now()
	var dataE float64
	for _, n := range net.Nodes {
		dataE += n.Battery().ConsumedIn(now, energy.DataTransmit)
		dataE += n.Battery().ConsumedIn(now, energy.DataReceive)
	}
	return h.Ratio().Value(), dataE
}
