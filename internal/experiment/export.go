package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteCSV writes the table as CSV: a header row then the data rows.
// Notes and the caption are emitted as comment-like trailing rows only
// when includeNotes is set.
func (t *Table) WriteCSV(w io.Writer, includeNotes bool) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("csv header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csv row %d: %w", i, err)
		}
	}
	if includeNotes {
		for _, n := range t.Notes {
			if err := cw.Write([]string{"# " + n}); err != nil {
				return fmt.Errorf("csv note: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown writes the table as GitHub-flavored markdown, the format
// EXPERIMENTS.md uses.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b []byte
	b = append(b, "### "...)
	b = append(b, t.Caption...)
	b = append(b, "\n\n|"...)
	for _, h := range t.Headers {
		b = append(b, ' ')
		b = append(b, h...)
		b = append(b, " |"...)
	}
	b = append(b, "\n|"...)
	for range t.Headers {
		b = append(b, "---|"...)
	}
	b = append(b, '\n')
	for _, row := range t.Rows {
		b = append(b, '|')
		for _, cell := range row {
			b = append(b, ' ')
			b = append(b, cell...)
			b = append(b, " |"...)
		}
		b = append(b, '\n')
	}
	for _, n := range t.Notes {
		b = append(b, "\n> "...)
		b = append(b, n...)
		b = append(b, '\n')
	}
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}

// tableJSON is the serialized form of a Table.
type tableJSON struct {
	Caption string              `json:"caption"`
	Columns []string            `json:"columns"`
	Rows    []map[string]string `json:"rows"`
	Notes   []string            `json:"notes,omitempty"`
}

// WriteJSON writes the table as a JSON document with one object per row,
// keyed by column name.
func (t *Table) WriteJSON(w io.Writer) error {
	doc := tableJSON{
		Caption: t.Caption,
		Columns: t.Headers,
		Notes:   t.Notes,
		Rows:    make([]map[string]string, 0, len(t.Rows)),
	}
	for _, row := range t.Rows {
		obj := make(map[string]string, len(row))
		for i, cell := range row {
			if i < len(t.Headers) {
				obj[t.Headers[i]] = cell
			}
		}
		doc.Rows = append(doc.Rows, obj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
