package experiment

import "testing"

func TestShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	opts := DefaultOptions()
	opts.Runs = 1
	opts.Forwarding = true
	res, err := DeploymentSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s\n%s\n%s", res.Fig9(), res.Fig10(), res.Fig11(), res.Table1())
}
