package experiment

import (
	"testing"

	"peas/internal/node"
	"peas/internal/trace"
)

func TestRunHooks(t *testing.T) {
	recorder := trace.NewRecorder(0)
	samples := 0
	var lastWorking int
	finished := false
	cfg := RunConfig{
		Network: node.DefaultConfig(60, 51),
		Horizon: 300,
		Trace:   recorder,
		OnSample: func(ts float64, working int, byK []float64) {
			samples++
			lastWorking = working
			if len(byK) != MaxCoverageK {
				t.Errorf("byK has %d entries", len(byK))
			}
		},
		OnFinish: func(net *node.Network) {
			finished = true
			if net.Engine.Now() != 300 {
				t.Errorf("OnFinish at t=%v", net.Engine.Now())
			}
		},
	}
	rs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One sample at t=0 plus one per CoverageInterval.
	want := 1 + int(300/CoverageInterval)
	if samples != want {
		t.Errorf("samples = %d, want %d", samples, want)
	}
	if lastWorking <= 0 {
		t.Error("no working nodes in final sample")
	}
	if !finished {
		t.Error("OnFinish not called")
	}
	if recorder.Len() == 0 {
		t.Error("trace recorder captured nothing")
	}
	if s := recorder.Summarize(); s.ByKind[trace.KindState] == 0 {
		t.Error("no state events traced")
	}
	if rs.Wakeups == 0 {
		t.Error("run produced no wakeups")
	}
}

// TestRunTraceChainsAllDeadStop verifies the trace hook does not break
// the early-exit-when-exhausted logic that is installed on OnDeath.
func TestRunTraceChainsAllDeadStop(t *testing.T) {
	recorder := trace.NewRecorder(0)
	cfg := RunConfig{
		Network:          node.DefaultConfig(30, 53),
		FailuresPer5000s: 5000 * 10, // ~10 failures/s: exhausts quickly
		Horizon:          5000,
		Trace:            recorder,
	}
	rs, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.AllDeadAt >= 5000 {
		t.Errorf("network should exhaust early, AllDeadAt=%v", rs.AllDeadAt)
	}
	deaths := recorder.Summarize().ByKind[trace.KindDeath]
	if deaths != 30 {
		t.Errorf("trace saw %d deaths, want 30", deaths)
	}
}
