package experiment

import (
	"errors"
	"reflect"
	"testing"
)

// TestParallelEqualsSequential is the determinism contract of the worker
// pool: the same options produce identical points regardless of
// parallelism.
func TestParallelEqualsSequential(t *testing.T) {
	opts := fastOptions()
	opts.Parallel = 1
	seq, err := DeploymentSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	par, err := DeploymentSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Errorf("parallel sweep diverged:\nseq %+v\npar %+v", seq.Points, par.Points)
	}
}

func TestRunGridPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := runGrid(3, 2, 4, func(point, run int) (*RunStats, error) {
		if point == 1 && run == 1 {
			return nil, boom
		}
		return &RunStats{}, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestRunGridShapes(t *testing.T) {
	grid, err := runGrid(2, 3, 0, func(point, run int) (*RunStats, error) {
		return &RunStats{Wakeups: uint64(point*10 + run)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || len(grid[0]) != 3 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	for p := 0; p < 2; p++ {
		for r := 0; r < 3; r++ {
			if grid[p][r].Wakeups != uint64(p*10+r) {
				t.Errorf("grid[%d][%d] = %d", p, r, grid[p][r].Wakeups)
			}
		}
	}
}

func TestAggregateSkipsNilRuns(t *testing.T) {
	runs := []*RunStats{
		{DeliveryLifetime: 10, Wakeups: 4},
		nil,
		{DeliveryLifetime: 20, Wakeups: 8},
	}
	pt := aggregateDeployment(160, runs)
	if pt.DeliveryLifetime != 15 || pt.Wakeups != 6 {
		t.Errorf("aggregate %+v", pt)
	}
	fp := aggregateFailure(5.33, runs)
	if fp.DeliveryLifetime != 15 {
		t.Errorf("failure aggregate %+v", fp)
	}
	empty := aggregateDeployment(160, []*RunStats{nil})
	if empty.DeliveryLifetime != 0 {
		t.Errorf("empty aggregate %+v", empty)
	}
}
