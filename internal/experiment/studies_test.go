package experiment

import (
	"strings"
	"testing"
)

// TestAllStudiesRender executes every study end to end (full scale, so
// skipped with -short) and checks structural soundness of the rendered
// tables.
func TestAllStudiesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale studies")
	}
	studies := map[string]func() *Table{
		"estimator":    func() *Table { return EstimatorStudy(1) },
		"connectivity": func() *Table { return ConnectivityStudy(2, 1) },
		"loss":         func() *Table { return LossStudy(1) },
		"turnoff":      func() *Table { return TurnoffStudy(1) },
		"distribution": func() *Table { return DeploymentDistributionStudy(1) },
		"fixedpower":   func() *Table { return FixedPowerStudy(1) },
		"rpsweep":      func() *Table { return RpSweepStudy(1) },
		"boot":         func() *Table { return BootStudy(1) },
		"density":      func() *Table { return DensityStudy(1) },
		"mesh":         func() *Table { return MeshStudy(1) },
		"grabcheck":    func() *Table { return GrabCheckStudy(1) },
		"irregularity": func() *Table { return IrregularityStudy(1) },
		"tracking":     func() *Table { return TrackingStudy(1) },
	}
	for name, build := range studies {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tbl := build()
			if tbl.Caption == "" || len(tbl.Headers) == 0 {
				t.Fatalf("%s: empty table metadata", name)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: no rows", name)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Errorf("%s row %d has %d cells for %d headers",
						name, i, len(row), len(tbl.Headers))
				}
			}
			out := tbl.String()
			if !strings.Contains(out, tbl.Caption) {
				t.Errorf("%s: caption missing from output", name)
			}
			// Every study must render to CSV and JSON.
			var csvB, jsonB strings.Builder
			if err := tbl.WriteCSV(&csvB, true); err != nil {
				t.Errorf("%s csv: %v", name, err)
			}
			if err := tbl.WriteJSON(&jsonB); err != nil {
				t.Errorf("%s json: %v", name, err)
			}
		})
	}
}

// TestGapStudyStructure runs the §2.1.1 comparison at one seed and
// verifies PEAS's gaps are shorter than synchronized sleeping's.
func TestGapStudyStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale study")
	}
	tbl := GapStudy(1, 1)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var peasGap, syncGap, peasN, syncN float64
	if _, err := sscan(tbl.Rows[0][1], &peasGap); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[1][1], &syncGap); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[0][3], &peasN); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[1][3], &syncN); err != nil {
		t.Fatal(err)
	}
	if peasGap <= 0 || syncGap <= 0 {
		t.Skipf("no gaps observed at this seed: peas=%v sync=%v", peasGap, syncGap)
	}
	// Comparing raw mean gaps is outlier-dominated when one scheme has
	// far fewer gaps (a single long PEAS gap vs a dozen short sync ones);
	// the robust §2.1.1 claim is about total uncovered time, count × mean.
	if peasGap*peasN >= syncGap*syncN {
		t.Errorf("PEAS total dark time %.0f s (%v gaps of %v s) should beat synchronized sleeping %.0f s (%v gaps of %v s)",
			peasGap*peasN, peasN, peasGap, syncGap*syncN, syncN, syncGap)
	}
}
