package experiment

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: a caption, column headers and
// string rows. cmd/peas-bench renders the same rows the paper reports.
type Table struct {
	Caption string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form footnote rendered below the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned plain text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Caption)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

func fsec(v float64) string   { return fmt.Sprintf("%.0f", v) }
func ffloat(v float64) string { return fmt.Sprintf("%.3f", v) }
func fpct(v float64) string   { return fmt.Sprintf("%.3f%%", 100*v) }
