package experiment

import (
	"fmt"

	"peas/internal/failure"
	"peas/internal/geom"
	"peas/internal/node"
	"peas/internal/sensing"
	"peas/internal/stats"
)

// TrackingStudy measures end-to-end sensing quality — the application
// metric behind the paper's coverage arguments — with mobile targets
// roaming the field. It sweeps the §2.2.1 tolerance knob λd: the paper's
// animal-tracking example sets λd = 1/300 s⁻¹ to accept monitoring
// interruptions up to 5 minutes. Undetected intervals (exposures) should
// track ≈1/λd once workers start dying and being replaced.
//
// The deployment is deliberately lean (240 nodes, 5 m detection range)
// and the run crosses the first depletion wave, so replacement gaps
// actually show up in the detection record.
func TrackingStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "Application view: mobile-target tracking vs. λd (240 nodes, 5 m detection, t=9000 s)",
		Headers: []string{"λd (1/s)", "tolerance 1/λd", "detected-frac", "exposures", "mean-gap(s)", "max-gap(s)"},
	}
	for i, lambdaD := range []float64{0.02, 1.0 / 150, 1.0 / 300} {
		rep := trackingRun(derivedSeed(rootSeed, 990, i), lambdaD)
		t.AddRow(ffloat(lambdaD), fmt.Sprintf("%.0f s", 1/lambdaD),
			ffloat(rep.DetectedFraction), fmt.Sprint(rep.Exposures),
			ffloat(rep.MeanExposure), ffloat(rep.MaxExposure))
	}
	t.AddNote("§2.2.1: the application picks λd from its interruption " +
		"tolerance; lower λd probes (and spends) less but leaves longer " +
		"undetected intervals when workers die")
	return t
}

func trackingRun(seed int64, lambdaD float64) sensing.Report {
	cfg := node.DefaultConfig(240, seed)
	cfg.Protocol.DesiredRate = lambdaD
	net, err := node.NewNetwork(cfg)
	if err != nil {
		return sensing.Report{}
	}
	inj := failure.NewInjector(net, failure.RatePer5000s(16),
		stats.NewRNG(seed^0x5f3759df))
	const detectRange = 5.0
	tracker := sensing.NewTracker(cfg.Field, detectRange, 4, 1.5, stats.NewRNG(seed^0x7e57))
	var posBuf []geom.Point
	net.Engine.NewTicker(5, func() {
		posBuf = net.AppendWorkingPositions(posBuf[:0])
		tracker.Observe(net.Engine.Now(), posBuf)
	})
	net.Start()
	inj.Start()
	net.Run(9000)
	return tracker.Report()
}
