package experiment

import (
	"peas/internal/core"
	"peas/internal/coverage"
	"peas/internal/geom"
	"peas/internal/node"
)

// attachIncremental builds the O(Δworking) coverage engine over net's
// deployment on lattice and subscribes it to the network's
// working-transition hook, chaining any hook already installed. Attach
// before net.Start (or before restoring a snapshot); on a resumed run,
// follow up with inc.Rebuild over the restored working set, since
// checkpoint restores bypass the hook.
func attachIncremental(net *node.Network, lattice *coverage.Lattice, maxK int) *coverage.Incremental {
	positions := make([]geom.Point, len(net.Nodes))
	for i, n := range net.Nodes {
		positions[i] = n.Pos()
	}
	inc := coverage.NewIncremental(lattice, positions, SensingRange, maxK)
	prev := net.OnWorkingChange
	net.OnWorkingChange = func(id core.NodeID, working bool) {
		inc.Set(int(id), working)
		if prev != nil {
			prev(id, working)
		}
	}
	return inc
}
