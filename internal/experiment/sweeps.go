package experiment

import (
	"fmt"

	"peas/internal/node"
	"peas/internal/stats"
)

// Options configures a sweep.
type Options struct {
	// Runs is the number of independent seeds averaged per sweep point
	// (paper: "the results are averaged over 5 simulation runs").
	Runs int
	// Seed is the root seed; run r of point i uses a derived seed.
	Seed int64
	// Deployments overrides the deployment sizes of the deployment
	// sweep (paper: 160, 320, 480, 640, 800).
	Deployments []int
	// FailureRates overrides the failure rates (per 5000 s) of the
	// failure sweep (paper: 5.33 .. 48 step 5.33).
	FailureRates []float64
	// FailureNodes is the deployment size of the failure sweep
	// (paper: 480).
	FailureNodes int
	// Forwarding toggles the data workload (needed for Figs. 10/13).
	Forwarding bool
	// Parallel bounds the number of simulations run concurrently
	// (0 = GOMAXPROCS). Runs are independent and individually seeded,
	// so parallel results equal sequential results exactly.
	Parallel int
}

// DefaultOptions returns the paper's evaluation setup.
func DefaultOptions() Options {
	return Options{
		Runs:         5,
		Seed:         1,
		Deployments:  []int{160, 320, 480, 640, 800},
		FailureRates: []float64{5.33, 10.66, 16, 21.33, 26.66, 32, 37.33, 42.66, 48},
		FailureNodes: 480,
		Forwarding:   true,
	}
}

func (o *Options) normalize() {
	d := DefaultOptions()
	if o.Runs <= 0 {
		o.Runs = d.Runs
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if len(o.Deployments) == 0 {
		o.Deployments = d.Deployments
	}
	if len(o.FailureRates) == 0 {
		o.FailureRates = d.FailureRates
	}
	if o.FailureNodes == 0 {
		o.FailureNodes = d.FailureNodes
	}
}

// derivedSeed gives every (sweep point, run) pair an independent stream.
func derivedSeed(root int64, point, run int) int64 {
	r := stats.NewRNG(root + int64(point)*1_000_003 + int64(run)*7_919)
	return r.Int63()
}

// DeploymentPoint aggregates the runs at one deployment size.
type DeploymentPoint struct {
	N int
	// CoverageLifetime[k-1] is the mean K-coverage lifetime.
	CoverageLifetime [MaxCoverageK]float64
	DeliveryLifetime float64
	Wakeups          float64
	ProtocolEnergy   float64
	TotalEnergy      float64
	OverheadRatio    float64
	MeanWorking      float64
	FailedFraction   float64
	// Coverage4CI and DeliveryCI are 95% confidence half-widths of the
	// 4-coverage and delivery lifetimes across the runs.
	Coverage4CI float64
	DeliveryCI  float64
}

// DeploymentSweepResult holds the shared sweep behind Figures 9, 10, 11
// and Table 1.
type DeploymentSweepResult struct {
	Points []DeploymentPoint
}

// DeploymentSweep reproduces the §5.2 varying-population experiment:
// deployments of 160..800 nodes at the base failure rate, averaged over
// opts.Runs seeds.
func DeploymentSweep(opts Options) (*DeploymentSweepResult, error) {
	opts.normalize()
	grid, err := runGrid(len(opts.Deployments), opts.Runs, opts.Parallel,
		func(point, run int) (*RunStats, error) {
			cfg := RunConfig{
				Network:          node.DefaultConfig(opts.Deployments[point], derivedSeed(opts.Seed, point, run)),
				FailuresPer5000s: BaseFailuresPer5000,
				Forwarding:       opts.Forwarding,
			}
			return Run(cfg)
		})
	if err != nil {
		return nil, fmt.Errorf("deployment sweep: %w", err)
	}
	out := &DeploymentSweepResult{}
	for pi, n := range opts.Deployments {
		out.Points = append(out.Points, aggregateDeployment(n, grid[pi]))
	}
	return out, nil
}

// Fig9 renders the coverage-lifetime-vs-deployment series (3-, 4-,
// 5-coverage).
func (r *DeploymentSweepResult) Fig9() *Table {
	t := &Table{
		Caption: "Figure 9: coverage lifetime vs. deployment number (seconds)",
		Headers: []string{"nodes", "3-coverage", "4-coverage", "5-coverage", "mean-working"},
	}
	var xs, y3 []float64
	for _, p := range r.Points {
		cov4 := fsec(p.CoverageLifetime[3])
		if p.Coverage4CI > 0 {
			cov4 = fmt.Sprintf("%s±%.0f", cov4, p.Coverage4CI)
		}
		t.AddRow(fmt.Sprint(p.N), fsec(p.CoverageLifetime[2]),
			cov4, fsec(p.CoverageLifetime[4]),
			fmt.Sprintf("%.1f", p.MeanWorking))
		xs = append(xs, float64(p.N))
		y3 = append(y3, p.CoverageLifetime[2])
	}
	slope, _ := stats.LinearFit(xs, y3)
	t.AddNote("3-coverage linear fit: %.1f s per additional node (r=%.3f)",
		slope, stats.PearsonR(xs, y3))
	return t
}

// Fig10 renders the data-delivery-lifetime-vs-deployment series.
func (r *DeploymentSweepResult) Fig10() *Table {
	t := &Table{
		Caption: "Figure 10: data delivery lifetime vs. deployment number (seconds)",
		Headers: []string{"nodes", "delivery-lifetime"},
	}
	var xs, ys []float64
	for _, p := range r.Points {
		cell := fsec(p.DeliveryLifetime)
		if p.DeliveryCI > 0 {
			cell = fmt.Sprintf("%s±%.0f", cell, p.DeliveryCI)
		}
		t.AddRow(fmt.Sprint(p.N), cell)
		xs = append(xs, float64(p.N))
		ys = append(ys, p.DeliveryLifetime)
	}
	slope, _ := stats.LinearFit(xs, ys)
	t.AddNote("linear fit: %.1f s per additional node (r=%.3f); paper: "+
		"≈6000 s per additional 160 nodes", slope, stats.PearsonR(xs, ys))
	return t
}

// Fig11 renders total wakeups vs deployment number.
func (r *DeploymentSweepResult) Fig11() *Table {
	t := &Table{
		Caption: "Figure 11: average total wakeup count vs. deployment number",
		Headers: []string{"nodes", "wakeups"},
	}
	var xs, ys []float64
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.N), fsec(p.Wakeups))
		xs = append(xs, float64(p.N))
		ys = append(ys, p.Wakeups)
	}
	t.AddNote("linear growth check: r=%.3f", stats.PearsonR(xs, ys))
	return t
}

// Table1 renders the energy-overhead table.
func (r *DeploymentSweepResult) Table1() *Table {
	t := &Table{
		Caption: "Table 1: energy overhead for deployment numbers",
		Headers: []string{"nodes", "overhead (J)", "total (J)", "overhead ratio"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprint(p.N), fmt.Sprintf("%.2f", p.ProtocolEnergy),
			fmt.Sprintf("%.0f", p.TotalEnergy), fpct(p.OverheadRatio))
	}
	t.AddNote("paper: 11.58 J/0.143%% at 160 nodes up to 111.11 J/0.267%% at 800; always <0.3%%")
	return t
}

// FailurePoint aggregates the runs at one failure rate.
type FailurePoint struct {
	RatePer5000      float64
	CoverageLifetime [MaxCoverageK]float64
	DeliveryLifetime float64
	Wakeups          float64
	OverheadRatio    float64
	FailedFraction   float64
	// Coverage4CI and DeliveryCI are 95% confidence half-widths.
	Coverage4CI float64
	DeliveryCI  float64
}

// FailureSweepResult holds the shared sweep behind Figures 12-14.
type FailureSweepResult struct {
	Points []FailurePoint
}

// FailureSweep reproduces the §5.3 robustness experiment: 480 nodes with
// failure rates from 5.33 to 48 per 5000 s.
func FailureSweep(opts Options) (*FailureSweepResult, error) {
	opts.normalize()
	grid, err := runGrid(len(opts.FailureRates), opts.Runs, opts.Parallel,
		func(point, run int) (*RunStats, error) {
			cfg := RunConfig{
				Network:          node.DefaultConfig(opts.FailureNodes, derivedSeed(opts.Seed, 100+point, run)),
				FailuresPer5000s: opts.FailureRates[point],
				Forwarding:       opts.Forwarding,
			}
			return Run(cfg)
		})
	if err != nil {
		return nil, fmt.Errorf("failure sweep: %w", err)
	}
	out := &FailureSweepResult{}
	for pi, rate := range opts.FailureRates {
		out.Points = append(out.Points, aggregateFailure(rate, grid[pi]))
	}
	return out, nil
}

// Fig12 renders coverage lifetime vs failure rate.
func (r *FailureSweepResult) Fig12() *Table {
	t := &Table{
		Caption: "Figure 12: coverage lifetime vs. failure rate (480 nodes)",
		Headers: []string{"rate/5000s", "failed-frac", "4-coverage", "3-coverage"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.2f", p.RatePer5000), fpct(p.FailedFraction),
			fsec(p.CoverageLifetime[3]), fsec(p.CoverageLifetime[2]))
	}
	if n := len(r.Points); n >= 2 {
		first, last := r.Points[0].CoverageLifetime[3], r.Points[n-1].CoverageLifetime[3]
		if first > 0 {
			t.AddNote("4-coverage lifetime drop at max rate: %.1f%% (paper: 12-20%%)",
				100*(1-last/first))
		}
	}
	return t
}

// Fig13 renders data delivery lifetime vs failure rate.
func (r *FailureSweepResult) Fig13() *Table {
	t := &Table{
		Caption: "Figure 13: data delivery lifetime vs. failure rate (480 nodes)",
		Headers: []string{"rate/5000s", "delivery-lifetime"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.2f", p.RatePer5000), fsec(p.DeliveryLifetime))
	}
	if n := len(r.Points); n >= 2 {
		first, last := r.Points[0].DeliveryLifetime, r.Points[n-1].DeliveryLifetime
		if first > 0 {
			t.AddNote("drop at max rate: %.1f%% (paper: ≈20%%)", 100*(1-last/first))
		}
	}
	return t
}

// Fig14 renders wakeups vs failure rate.
func (r *FailureSweepResult) Fig14() *Table {
	t := &Table{
		Caption: "Figure 14: average total wakeup count vs. failure rate (480 nodes)",
		Headers: []string{"rate/5000s", "wakeups", "overhead-ratio"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%.2f", p.RatePer5000), fsec(p.Wakeups), fpct(p.OverheadRatio))
	}
	t.AddNote("paper: wakeups decrease with failure rate; overhead constantly <0.25%%")
	return t
}
