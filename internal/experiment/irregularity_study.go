package experiment

import (
	"fmt"

	"peas/internal/node"
	"peas/internal/stats"
)

// IrregularityStudy reproduces §4's attenuation-irregularity claim:
// "working nodes in areas with poorer signal reception can be denser than
// those in other areas. We believe that this is desirable because it is
// only with more working nodes in such areas that the same level of
// robustness is maintained."
//
// For each irregularity degree, the study correlates each working node's
// local reception quality with the local working density: a negative
// correlation confirms poor-reception areas end up denser.
func IrregularityStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§4: signal-attenuation irregularity vs. worker placement (480 nodes, t=800 s)",
		Headers: []string{"irregularity", "mean-working", "corr(quality, density)", "density poor/good"},
	}
	for _, irr := range []float64{0, 0.2, 0.4} {
		var workers float64
		var corrs []float64
		var ratios []float64
		const runs = 3
		for r := 0; r < runs; r++ {
			cfg := node.DefaultConfig(480, derivedSeed(rootSeed, 980, r))
			cfg.Radio.Irregularity = irr
			net, err := node.NewNetwork(cfg)
			if err != nil {
				continue
			}
			net.Start()
			net.Run(800)
			workers += float64(net.WorkingCount())
			if irr > 0 {
				c, ratio := qualityDensityCorrelation(net)
				corrs = append(corrs, c)
				ratios = append(ratios, ratio)
			}
		}
		corrCell, ratioCell := "n/a", "n/a"
		if len(corrs) > 0 {
			corrCell = ffloat(stats.Mean(corrs))
			ratioCell = fmt.Sprintf("%.2f", stats.Mean(ratios))
		}
		t.AddRow(fmt.Sprintf("%.1f", irr), fmt.Sprintf("%.1f", workers/runs),
			corrCell, ratioCell)
	}
	t.AddNote("negative correlation (and a poor/good density ratio above 1) " +
		"confirms the paper's prediction: poorer reception shrinks the " +
		"effective probing range, so PEAS keeps more workers there")
	return t
}

// qualityDensityCorrelation computes, over the working nodes, the Pearson
// correlation between each worker's area reception quality and the number
// of other workers within Rp; it also returns the mean local density of
// workers in below-median-quality areas divided by that of the rest.
func qualityDensityCorrelation(net *node.Network) (corr, poorGoodRatio float64) {
	working := net.WorkingPositions()
	if len(working) < 4 {
		return 0, 1
	}
	rp := net.Config().Protocol.ProbingRange
	var quals, density []float64
	for _, p := range working {
		quals = append(quals, net.Medium.QualityAt(p))
		count := 0
		for _, q := range working {
			if p != q && p.Dist(q) <= 2*rp {
				count++
			}
		}
		density = append(density, float64(count))
	}
	corr = stats.PearsonR(quals, density)

	med := stats.Summarize(quals).Median
	var poor, good []float64
	for i, q := range quals {
		if q < med {
			poor = append(poor, density[i])
		} else {
			good = append(good, density[i])
		}
	}
	gm := stats.Mean(good)
	if gm == 0 {
		return corr, 1
	}
	return corr, stats.Mean(poor) / gm
}
