package experiment

import (
	"runtime"
	"testing"

	"peas/internal/checkpoint"
	"peas/internal/node"
)

// TestCheckpointResumeVerify is the subsystem's acceptance criterion:
// for multiple seeds, running seed→horizon directly and running via a
// mid-run checkpoint pushed through the codec and resumed must end in
// bit-identical model state.
func TestCheckpointResumeVerify(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		cfg := RunConfig{
			Network:          node.DefaultConfig(40, seed),
			Horizon:          3000,
			FailuresPer5000s: 10,
			Forwarding:       true,
		}
		res, err := VerifyCheckpoint(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Match {
			t.Errorf("seed %d: direct %s != resumed %s (checkpoint at %v s)",
				seed, res.DirectHash, res.ResumedHash, res.CheckpointAt)
		}
	}
}

// TestCheckpointResumeVerifyIrregularRadio repeats the check under the
// harder physical layer: radio irregularity and random loss exercise the
// medium RNG and the quiescence deferral (CSMA backoffs in flight at the
// nominal capture time).
func TestCheckpointResumeVerifyIrregularRadio(t *testing.T) {
	net := node.DefaultConfig(120, 3)
	net.Radio.Irregularity = 0.5
	net.Radio.LossRate = 0.05
	cfg := RunConfig{Network: net, Horizon: 2600, FailuresPer5000s: 20, Forwarding: true}
	res, err := VerifyCheckpoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match {
		t.Errorf("direct %s != resumed %s", res.DirectHash, res.ResumedHash)
	}
}

// TestPeriodicCapturesDoNotPerturb checks that taking snapshots is
// observation-only: a run with periodic captures ends in exactly the
// state of the same run without them.
func TestPeriodicCapturesDoNotPerturb(t *testing.T) {
	run := func(every float64) string {
		cfg := RunConfig{
			Network:          node.DefaultConfig(60, 9),
			Horizon:          2000,
			FailuresPer5000s: 10,
			Forwarding:       true,
			CaptureFinal:     true,
		}
		if every > 0 {
			cfg.CheckpointEvery = every
			cfg.OnCheckpoint = func(*checkpoint.Snapshot) bool { return false }
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalState.StateHashHex()
	}
	plain := run(0)
	captured := run(333.3)
	if plain != captured {
		t.Errorf("periodic captures perturbed the run: %s vs %s", plain, captured)
	}
}

// goldenFinalHash pins the end state of the reference run below on amd64.
// It detects unintended trajectory changes: any edit to the RNG, the
// event ordering, or the model physics shows up here. Update it
// deliberately when such a change is intended (run the test with -v to
// see the new hash).
const goldenFinalHash = "2faa254f39768f3548902c755fdc6ae83defa121c1e3fdccaf1cdf6a2686c3d1"

// TestGoldenDeterminism runs one fixed configuration twice and asserts
// the full state hash matches at every sample point and at the end; on
// amd64 the final hash must also equal the committed golden value.
// Cross-architecture the trajectory may legitimately differ (Go permits
// fused multiply-add contraction, and libm kernels are
// architecture-specific), so only the two-run equality is asserted
// elsewhere.
func TestGoldenDeterminism(t *testing.T) {
	run := func() (mids []string, final string) {
		cfg := RunConfig{
			Network:          node.DefaultConfig(60, 42),
			Horizon:          2000,
			FailuresPer5000s: 10,
			Forwarding:       true,
			CaptureFinal:     true,
			CheckpointEvery:  500,
			OnCheckpoint: func(s *checkpoint.Snapshot) bool {
				mids = append(mids, s.StateHashHex())
				return false
			},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return mids, res.FinalState.StateHashHex()
	}
	midsA, finalA := run()
	midsB, finalB := run()
	if len(midsA) == 0 {
		t.Fatal("no mid-run samples captured")
	}
	if len(midsA) != len(midsB) {
		t.Fatalf("sample count differs across runs: %d vs %d", len(midsA), len(midsB))
	}
	for i := range midsA {
		if midsA[i] != midsB[i] {
			t.Errorf("sample %d differs across identical runs: %s vs %s", i, midsA[i], midsB[i])
		}
	}
	if finalA != finalB {
		t.Errorf("final state differs across identical runs: %s vs %s", finalA, finalB)
	}
	t.Logf("final state hash: %s", finalA)
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden hash is pinned on amd64; running on %s", runtime.GOARCH)
	}
	if finalA != goldenFinalHash {
		t.Errorf("final hash %s does not match committed golden %s", finalA, goldenFinalHash)
	}
}
