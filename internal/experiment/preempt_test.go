package experiment

import (
	"testing"

	"peas/internal/checkpoint"
	"peas/internal/node"
	"peas/internal/sim"
)

// TestPreemptResumeBitExact is the acceptance criterion of cooperative
// preemption: a run stopped mid-flight by a supervisor leaves a snapshot
// that, resumed to the original horizon, ends in bit-identical state to
// the same run executed without interruption.
func TestPreemptResumeBitExact(t *testing.T) {
	base := func() RunConfig {
		return RunConfig{
			Network:          node.DefaultConfig(40, 5),
			Horizon:          3000,
			FailuresPer5000s: 10,
			Forwarding:       true,
		}
	}

	// Reference: uninterrupted run.
	ref := base()
	ref.CaptureFinal = true
	refStats, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := refStats.FinalState.StateHashHex()

	// Preempted run. The whole simulation executes in microseconds of
	// wall time, so a wall-clock controller cannot reliably land a stop
	// inside it; instead the flag is raised mid-trajectory from a sample
	// callback — the identical atomic store a controller goroutine would
	// make, caught at the next poll boundary.
	var sup sim.Supervisor
	var snap *checkpoint.Snapshot
	pre := base()
	pre.Supervisor = &sup
	pre.OnPreempt = func(s *checkpoint.Snapshot) { snap = s }
	pre.OnSample = func(simT float64, _ int, _ []float64) {
		if simT >= 1500 {
			sup.Stop.Store(true)
		}
	}
	preStats, err := Run(pre)
	if err != nil {
		t.Fatal(err)
	}
	if !preStats.Preempted {
		t.Fatalf("run finished before the supervisor could preempt it (executed=%d)", sup.Beat.Load())
	}
	if snap == nil {
		t.Fatal("OnPreempt was not called for a preempted run")
	}
	if snap.SimTime <= 0 || snap.SimTime >= 3000 {
		t.Fatalf("preempt snapshot time %v outside (0, horizon)", snap.SimTime)
	}

	// Resume from the preempt snapshot and compare end states. The
	// snapshot travels through the codec to prove the on-disk form works.
	decoded, err := checkpoint.DecodeBytes(snap.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	res := RunConfig{Resume: decoded, CaptureFinal: true}
	resStats, err := Run(res)
	if err != nil {
		t.Fatal(err)
	}
	got := resStats.FinalState.StateHashHex()
	if got != want {
		t.Errorf("preempt at %v s: resumed hash %s != direct hash %s", snap.SimTime, got, want)
	}
}

// TestPreemptSkipsFinalCapture pins the contract that a preempted run
// reports Preempted and does not pretend to have a final state.
func TestPreemptSkipsFinalCapture(t *testing.T) {
	var sup sim.Supervisor
	sup.Stop.Store(true) // preempt at the first poll boundary
	cfg := RunConfig{
		Network:      node.DefaultConfig(30, 2),
		Horizon:      2000,
		Supervisor:   &sup,
		CaptureFinal: true,
	}
	var snap *checkpoint.Snapshot
	cfg.OnPreempt = func(s *checkpoint.Snapshot) { snap = s }
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Preempted {
		t.Fatal("expected Preempted with Stop pre-set")
	}
	if stats.FinalState != nil {
		t.Error("preempted run captured FinalState")
	}
	if snap == nil {
		t.Error("preempted run produced no OnPreempt snapshot")
	}
}
