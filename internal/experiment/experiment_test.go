package experiment

import (
	"fmt"
	"strings"
	"testing"

	"peas/internal/node"
)

// fastOptions shrinks sweeps so harness tests stay quick while still
// exercising the full pipeline.
func fastOptions() Options {
	return Options{
		Runs:         1,
		Seed:         3,
		Deployments:  []int{160, 320},
		FailureRates: []float64{5.33, 48},
		FailureNodes: 240,
		Forwarding:   true,
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := RunConfig{
		Network:          node.DefaultConfig(120, 5),
		FailuresPer5000s: BaseFailuresPer5000,
		Horizon:          2000,
		Forwarding:       true,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// RunStats contains a map (chaos counters), so compare via formatting.
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("same config diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := RunConfig{Network: node.DefaultConfig(0, 1)}
	if _, err := Run(cfg); err == nil {
		t.Error("want error for empty network")
	}
}

func TestDefaultHorizonScalesWithDeployment(t *testing.T) {
	if DefaultHorizon(800) <= DefaultHorizon(160) {
		t.Error("horizon must grow with deployment size")
	}
	// Long enough for a 160-node network to exhaust itself (~7000 s).
	if DefaultHorizon(160) < 8000 {
		t.Errorf("horizon(160) = %v too short", DefaultHorizon(160))
	}
}

func TestDeploymentSweepShape(t *testing.T) {
	res, err := DeploymentSweep(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	small, large := res.Points[0], res.Points[1]
	// The headline claim: more nodes, longer life (Figs. 9-10).
	if large.CoverageLifetime[3] <= small.CoverageLifetime[3] {
		t.Errorf("4-coverage lifetime did not grow: %v -> %v",
			small.CoverageLifetime[3], large.CoverageLifetime[3])
	}
	if large.DeliveryLifetime <= small.DeliveryLifetime {
		t.Errorf("delivery lifetime did not grow: %v -> %v",
			small.DeliveryLifetime, large.DeliveryLifetime)
	}
	// Fig. 11: wakeups grow with deployment.
	if large.Wakeups <= small.Wakeups {
		t.Errorf("wakeups did not grow: %v -> %v", small.Wakeups, large.Wakeups)
	}
	// Table 1: overhead below 1%.
	for _, p := range res.Points {
		if p.OverheadRatio <= 0 || p.OverheadRatio > 0.01 {
			t.Errorf("overhead ratio %v at n=%d outside (0, 1%%]", p.OverheadRatio, p.N)
		}
	}
	// Tables render with one row per point.
	for _, tbl := range []*Table{res.Fig9(), res.Fig10(), res.Fig11(), res.Table1()} {
		if len(tbl.Rows) != len(res.Points) {
			t.Errorf("%q has %d rows", tbl.Caption, len(tbl.Rows))
		}
		if !strings.Contains(tbl.String(), "160") {
			t.Errorf("%q output missing deployment size", tbl.Caption)
		}
	}
}

func TestFailureSweepShape(t *testing.T) {
	res, err := FailureSweep(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	calm, harsh := res.Points[0], res.Points[1]
	// §5.3: the failed fraction approaches the paper's ~38-42% at rate 48.
	if harsh.FailedFraction < 0.25 || harsh.FailedFraction > 0.55 {
		t.Errorf("failed fraction at max rate = %v", harsh.FailedFraction)
	}
	// Robustness: lifetime degrades, but not catastrophically (>50%).
	if harsh.CoverageLifetime[3] >= calm.CoverageLifetime[3] {
		t.Logf("note: harsh lifetime %v >= calm %v (seeds can do this at small scale)",
			harsh.CoverageLifetime[3], calm.CoverageLifetime[3])
	}
	if harsh.CoverageLifetime[3] < calm.CoverageLifetime[3]/2 {
		t.Errorf("coverage lifetime collapsed: %v -> %v",
			calm.CoverageLifetime[3], harsh.CoverageLifetime[3])
	}
	// Fig. 14: fewer sleepers at higher failure rates -> fewer wakeups.
	if harsh.Wakeups >= calm.Wakeups {
		t.Errorf("wakeups did not decrease: %v -> %v", calm.Wakeups, harsh.Wakeups)
	}
	for _, tbl := range []*Table{res.Fig12(), res.Fig13(), res.Fig14()} {
		if len(tbl.Rows) != len(res.Points) {
			t.Errorf("%q has %d rows", tbl.Caption, len(tbl.Rows))
		}
	}
}

func TestEstimatorStudyAccuracyImprovesWithK(t *testing.T) {
	tbl := EstimatorStudy(1)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Column 1 is the mean relative error; it must decrease from k=4 to
	// k=64.
	var first, last float64
	if _, err := sscan(tbl.Rows[0][1], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[len(tbl.Rows)-1][1], &last); err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Errorf("estimator error did not shrink with k: %v -> %v", first, last)
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	o.normalize()
	d := DefaultOptions()
	if o.Runs != d.Runs || o.Seed != d.Seed || len(o.Deployments) != len(d.Deployments) ||
		len(o.FailureRates) != len(d.FailureRates) || o.FailureNodes != d.FailureNodes {
		t.Errorf("normalize: %+v", o)
	}
}

func TestDerivedSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for p := 0; p < 10; p++ {
		for r := 0; r < 10; r++ {
			s := derivedSeed(1, p, r)
			if seen[s] {
				t.Fatalf("duplicate seed for point %d run %d", p, r)
			}
			seen[s] = true
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Caption: "cap",
		Headers: []string{"a", "longer"},
	}
	tbl.AddRow("1", "2")
	tbl.AddNote("hello %d", 5)
	out := tbl.String()
	for _, want := range []string{"cap", "a", "longer", "1", "2", "note: hello 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTurnoffStudyReducesWorkers(t *testing.T) {
	tbl := TurnoffStudy(1)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var off, on float64
	if _, err := sscan(tbl.Rows[0][1], &off); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[1][1], &on); err != nil {
		t.Fatal(err)
	}
	if on >= off {
		t.Errorf("turn-off did not reduce the working set: %v -> %v", off, on)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := percentile(xs, 1); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := percentile(xs, 0.5); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("percentile sorted the caller's slice")
	}
}

// sscan parses a single float from a table cell.
func sscan(cell string, out *float64) (int, error) {
	return fmt.Sscan(strings.TrimSuffix(cell, "%"), out)
}
