package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"peas/internal/stats"
)

// runGrid executes do(point, run) for every pair on up to parallel worker
// goroutines and returns the results indexed as [point][run]. Each run is
// an independent simulation with its own derived seed, so parallel
// execution is exactly as deterministic as sequential execution. The
// first error aborts scheduling of remaining work.
func runGrid(points, runs, parallel int, do func(point, run int) (*RunStats, error)) ([][]*RunStats, error) {
	if parallel <= 0 {
		parallel = runtime.NumCPU()
	}
	if parallel > points*runs {
		parallel = points * runs
	}
	if parallel < 1 {
		parallel = 1
	}

	out := make([][]*RunStats, points)
	for i := range out {
		out[i] = make([]*RunStats, runs)
	}

	type job struct{ point, run int }
	jobs := make(chan job)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				rs, err := do(j.point, j.run)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("point %d run %d: %w", j.point, j.run, err)
				}
				out[j.point][j.run] = rs
				mu.Unlock()
			}
		}()
	}
	for p := 0; p < points; p++ {
		for r := 0; r < runs; r++ {
			mu.Lock()
			abort := firstErr != nil
			mu.Unlock()
			if abort {
				break
			}
			jobs <- job{point: p, run: r}
		}
	}
	close(jobs)
	wg.Wait()
	return out, firstErr
}

// aggregateDeployment folds one deployment point's runs into a mean point
// with 95% confidence half-widths on the headline metrics.
func aggregateDeployment(n int, runs []*RunStats) DeploymentPoint {
	var pt DeploymentPoint
	pt.N = n
	var cov4s, delivs []float64
	count := 0
	for _, rs := range runs {
		if rs == nil {
			continue
		}
		count++
		cov4s = append(cov4s, rs.CoverageLifetime[3])
		delivs = append(delivs, rs.DeliveryLifetime)
		for k := 0; k < MaxCoverageK; k++ {
			pt.CoverageLifetime[k] += rs.CoverageLifetime[k]
		}
		pt.DeliveryLifetime += rs.DeliveryLifetime
		pt.Wakeups += float64(rs.Wakeups)
		pt.ProtocolEnergy += rs.ProtocolEnergy
		pt.TotalEnergy += rs.TotalEnergy
		pt.OverheadRatio += rs.OverheadRatio
		pt.MeanWorking += rs.MeanWorking
		pt.FailedFraction += rs.FailedFraction
	}
	if count == 0 {
		return pt
	}
	div := float64(count)
	for k := 0; k < MaxCoverageK; k++ {
		pt.CoverageLifetime[k] /= div
	}
	pt.DeliveryLifetime /= div
	pt.Wakeups /= div
	pt.ProtocolEnergy /= div
	pt.TotalEnergy /= div
	pt.OverheadRatio /= div
	pt.MeanWorking /= div
	pt.FailedFraction /= div
	pt.Coverage4CI = stats.CI95(cov4s)
	pt.DeliveryCI = stats.CI95(delivs)
	return pt
}

// aggregateFailure folds one failure-rate point's runs into a mean point.
func aggregateFailure(rate float64, runs []*RunStats) FailurePoint {
	var pt FailurePoint
	pt.RatePer5000 = rate
	var cov4s, delivs []float64
	count := 0
	for _, rs := range runs {
		if rs == nil {
			continue
		}
		count++
		cov4s = append(cov4s, rs.CoverageLifetime[3])
		delivs = append(delivs, rs.DeliveryLifetime)
		for k := 0; k < MaxCoverageK; k++ {
			pt.CoverageLifetime[k] += rs.CoverageLifetime[k]
		}
		pt.DeliveryLifetime += rs.DeliveryLifetime
		pt.Wakeups += float64(rs.Wakeups)
		pt.OverheadRatio += rs.OverheadRatio
		pt.FailedFraction += rs.FailedFraction
	}
	if count == 0 {
		return pt
	}
	div := float64(count)
	for k := 0; k < MaxCoverageK; k++ {
		pt.CoverageLifetime[k] /= div
	}
	pt.DeliveryLifetime /= div
	pt.Wakeups /= div
	pt.OverheadRatio /= div
	pt.FailedFraction /= div
	pt.Coverage4CI = stats.CI95(cov4s)
	pt.DeliveryCI = stats.CI95(delivs)
	return pt
}
