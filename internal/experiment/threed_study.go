package experiment

import (
	"fmt"
	"math"

	"peas/internal/geom3"
	"peas/internal/stats"
)

// ThreeDStudy exercises the paper's §3 footnote — "the model applies to
// three-dimensional as well" — by running the probing rule in a volume:
// nodes wake sequentially (the regime the §3 analysis assumes), start
// working iff no worker is within Rp, and we measure the resulting
// working set's separation, volumetric 1-coverage at the sensing range,
// and connectivity at the transmitting range.
//
// The 2-D bound (1+√5)·Rp is specific to the planar grid argument, so
// the 3-D table reports the measured max nearest-worker distance for
// comparison rather than asserting the planar constant.
func ThreeDStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "§3 footnote: the probing rule in 3-D (25x25x25 m, Rp = 3 m, Rs = Rt = 10 m)",
		Headers: []string{"nodes", "working", "min-pair(m)", "max-nearest(m)", "1-coverage", "connected@10m"},
	}
	box := geom3.NewBox(25, 25, 25)
	for _, n := range []int{500, 1000, 2000} {
		res := threeDRun(box, n, derivedSeed(rootSeed, 1200, n))
		t.AddRow(fmt.Sprint(n), fmt.Sprint(res.working),
			fmt.Sprintf("%.2f", res.minPair), fmt.Sprintf("%.2f", res.maxNearest),
			ffloat(res.coverage), fmt.Sprint(res.connected))
	}
	t.AddNote("sequential ideal probing, as in the §3 model; in 3-D the same " +
		"rule yields Rp-separated workers whose 10 m balls cover the volume " +
		"and whose graph is connected at the 10 m transmitting range")
	return t
}

type threeDResult struct {
	working    int
	minPair    float64
	maxNearest float64
	coverage   float64
	connected  bool
}

// threeDRun applies the probing rule sequentially to a random wake order:
// exactly the random sequential adsorption process PEAS's Probing
// Environment realizes under an ideal channel.
func threeDRun(box geom3.Box, n int, seed int64) threeDResult {
	rng := stats.NewRNG(seed)
	const (
		rp = 3.0
		rs = 10.0
		rt = 10.0
	)
	pts := geom3.UniformDeploy(box, n, rng)
	order := rng.Perm(n)
	var working []geom3.Point
	for _, i := range order {
		ok := true
		for _, w := range working {
			if pts[i].Dist(w) <= rp {
				ok = false
				break
			}
		}
		if ok {
			working = append(working, pts[i])
		}
	}

	res := threeDResult{working: len(working), minPair: math.Inf(1)}
	// Pairwise separation and nearest-worker distances.
	nearest := make([]float64, len(working))
	for i := range nearest {
		nearest[i] = math.Inf(1)
	}
	for i := range working {
		for j := i + 1; j < len(working); j++ {
			d := working[i].Dist(working[j])
			if d < res.minPair {
				res.minPair = d
			}
			if d < nearest[i] {
				nearest[i] = d
			}
			if d < nearest[j] {
				nearest[j] = d
			}
		}
	}
	for _, d := range nearest {
		if d > res.maxNearest {
			res.maxNearest = d
		}
	}

	// Volumetric 1-coverage on a 2.5 m lattice.
	idx := geom3.NewIndex(box, working, rs)
	total, covered := 0, 0
	for x := 0.0; x <= box.Width; x += 2.5 {
		for y := 0.0; y <= box.Height; y += 2.5 {
			for z := 0.0; z <= box.Depth; z += 2.5 {
				total++
				if idx.CountWithin(geom3.Point{X: x, Y: y, Z: z}, rs) > 0 {
					covered++
				}
			}
		}
	}
	if total > 0 {
		res.coverage = float64(covered) / float64(total)
	}

	// Connectivity at Rt via union-find.
	uf := stats.NewUnionFind(len(working))
	for i := range working {
		for j := i + 1; j < len(working); j++ {
			if working[i].Dist(working[j]) <= rt {
				uf.Union(i, j)
			}
		}
	}
	res.connected = len(working) > 0 && uf.Components() == 1
	return res
}
