package experiment

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func exportTable() *Table {
	t := &Table{
		Caption: "test table",
		Headers: []string{"nodes", "lifetime"},
	}
	t.AddRow("160", "4835")
	t.AddRow("320", "10910")
	t.AddNote("a note")
	return t
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := exportTable().WriteCSV(&b, true); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(strings.ReplaceAll(b.String(), "# ", "")))
	r.FieldsPerRecord = -1 // note rows have a single field
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // header + 2 rows + note
		t.Fatalf("rows = %d:\n%s", len(rows), b.String())
	}
	if rows[0][0] != "nodes" || rows[1][0] != "160" || rows[2][1] != "10910" {
		t.Errorf("csv content: %v", rows)
	}
}

func TestWriteCSVWithoutNotes(t *testing.T) {
	var b strings.Builder
	if err := exportTable().WriteCSV(&b, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "a note") {
		t.Error("notes leaked into note-free CSV")
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := exportTable().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Caption string              `json:"caption"`
		Columns []string            `json:"columns"`
		Rows    []map[string]string `json:"rows"`
		Notes   []string            `json:"notes"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Caption != "test table" || len(doc.Rows) != 2 || len(doc.Notes) != 1 {
		t.Errorf("json doc: %+v", doc)
	}
	if doc.Rows[0]["nodes"] != "160" || doc.Rows[1]["lifetime"] != "10910" {
		t.Errorf("json rows: %+v", doc.Rows)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := exportTable().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### test table", "| nodes | lifetime |", "|---|---|", "| 160 | 4835 |", "> a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
