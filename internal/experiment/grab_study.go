package experiment

import (
	"fmt"

	"peas/internal/forward"
	"peas/internal/grab"
	"peas/internal/node"
)

// GrabCheckStudy cross-validates the two data-forwarding substrates: the
// connectivity-level model used in the lifetime sweeps (internal/forward)
// against the packet-level cost-field gradient riding the real radio
// (internal/grab). Agreement within a few percent justifies using the
// cheap model for the Figures 10/13 sweeps.
func GrabCheckStudy(rootSeed int64) *Table {
	t := &Table{
		Caption: "GRAB cross-validation: packet-level gradient vs. connectivity model",
		Headers: []string{"nodes", "packet-level ratio", "connectivity ratio", "gap"},
	}
	for _, n := range []int{160, 320, 480} {
		net, err := node.NewNetwork(node.DefaultConfig(n, derivedSeed(rootSeed, 970, n)))
		if err != nil {
			continue
		}
		pk := grab.NewHarness(grab.DefaultConfig(net.Field), net)
		ab := forward.NewHarness(forward.DefaultConfig(net.Field), net)
		pk.Start()
		ab.Start()
		net.Start()
		net.Run(1500)
		pkR, abR := pk.Ratio().Value(), ab.Ratio().Value()
		t.AddRow(fmt.Sprint(n), ffloat(pkR), ffloat(abR), ffloat(abR-pkR))
	}
	t.AddNote("the packet-level gradient pays a few percent to collisions, " +
		"cost-tie dead ends and refresh transients; the connectivity model " +
		"upper-bounds it, so lifetime crossings measured with the model are " +
		"slightly optimistic but shape-preserving")
	return t
}
