package experiment

import "testing"

func TestShapeFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	opts := DefaultOptions()
	opts.Runs = 1
	opts.FailureRates = []float64{5.33, 16, 26.66, 37.33, 48}
	res, err := FailureSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s\n%s", res.Fig12(), res.Fig13(), res.Fig14())
}
