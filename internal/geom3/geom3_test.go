package geom3

import (
	"math"
	"sort"
	"testing"

	"peas/internal/stats"
)

func TestDist(t *testing.T) {
	a, b := Point{0, 0, 0}, Point{1, 2, 2}
	if got := a.Dist(b); math.Abs(got-3) > 1e-12 {
		t.Errorf("dist = %v, want 3", got)
	}
	if a.Dist(a) != 0 {
		t.Error("self distance")
	}
}

func TestBox(t *testing.T) {
	b := NewBox(10, 20, 30)
	if b.Volume() != 6000 {
		t.Errorf("volume %v", b.Volume())
	}
	if !b.Contains(Point{10, 20, 30}) || !b.Contains(Point{0, 0, 0}) {
		t.Error("corners must be contained")
	}
	if b.Contains(Point{10.1, 0, 0}) || b.Contains(Point{0, 0, -0.1}) {
		t.Error("outside points contained")
	}
}

func TestUniformDeploy(t *testing.T) {
	b := NewBox(20, 20, 20)
	pts := UniformDeploy(b, 5000, stats.NewRNG(1))
	var cx, cy, cz float64
	for _, p := range pts {
		if !b.Contains(p) {
			t.Fatalf("point %v outside box", p)
		}
		cx += p.X
		cy += p.Y
		cz += p.Z
	}
	n := float64(len(pts))
	for _, c := range []float64{cx / n, cy / n, cz / n} {
		if math.Abs(c-10) > 0.5 {
			t.Errorf("centroid coordinate %v far from 10", c)
		}
	}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	b := NewBox(20, 20, 20)
	rng := stats.NewRNG(3)
	pts := UniformDeploy(b, 300, rng)
	for _, cell := range []float64{1.5, 4, 25} {
		idx := NewIndex(b, pts, cell)
		if idx.Len() != 300 {
			t.Fatalf("len %d", idx.Len())
		}
		for trial := 0; trial < 30; trial++ {
			center := Point{rng.Uniform(0, 20), rng.Uniform(0, 20), rng.Uniform(0, 20)}
			radius := rng.Uniform(0, 8)
			var got []int
			idx.Within(center, radius, func(i int, dist float64) {
				got = append(got, i)
				if math.Abs(dist-center.Dist(pts[i])) > 1e-9 {
					t.Fatalf("dist mismatch")
				}
			})
			var want []int
			for i, p := range pts {
				if center.Dist(p) <= radius {
					want = append(want, i)
				}
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("cell=%v: %d vs %d points", cell, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cell=%v: sets differ", cell)
				}
			}
			if idx.CountWithin(center, radius) != len(want) {
				t.Fatal("CountWithin mismatch")
			}
		}
	}
}

func TestIndexEdge(t *testing.T) {
	b := NewBox(5, 5, 5)
	idx := NewIndex(b, []Point{{1, 1, 1}}, 0) // zero cell defaults
	if idx.CountWithin(Point{1, 1, 1}, 0.5) != 1 {
		t.Error("zero-cell index broken")
	}
	idx.Within(Point{1, 1, 1}, -1, func(int, float64) {
		t.Error("negative radius matched")
	})
	if idx.At(0) != (Point{1, 1, 1}) {
		t.Error("At")
	}
}
