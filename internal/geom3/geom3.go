// Package geom3 provides three-dimensional geometry for the paper's §3
// footnote: "The model applies to three-dimensional as well." It mirrors
// internal/geom for volumes: points, boxes, uniform deployment, and a
// bucket-grid index, enough to run the probing rule and check coverage
// and connectivity in 3-D (see the threed experiment).
package geom3

import (
	"math"

	"peas/internal/stats"
)

// Point is a position in 3-D space, in meters.
type Point struct {
	X, Y, Z float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Box is an axis-aligned volume [0,W] x [0,H] x [0,D].
type Box struct {
	Width, Height, Depth float64
}

// NewBox returns a box of the given dimensions.
func NewBox(w, h, d float64) Box { return Box{Width: w, Height: h, Depth: d} }

// Volume returns the box volume in cubic meters.
func (b Box) Volume() float64 { return b.Width * b.Height * b.Depth }

// Contains reports whether p lies inside the box (inclusive).
func (b Box) Contains(p Point) bool {
	return p.X >= 0 && p.X <= b.Width &&
		p.Y >= 0 && p.Y <= b.Height &&
		p.Z >= 0 && p.Z <= b.Depth
}

// UniformDeploy places n points uniformly at random in the box.
func UniformDeploy(b Box, n int, rng *stats.RNG) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: rng.Uniform(0, b.Width),
			Y: rng.Uniform(0, b.Height),
			Z: rng.Uniform(0, b.Depth),
		}
	}
	return pts
}

// Index is a bucket-grid spatial index over fixed 3-D points.
type Index struct {
	cell    float64
	nx      int
	ny      int
	nz      int
	buckets [][]int
	points  []Point
}

// NewIndex builds an index with the given bucket edge length.
func NewIndex(b Box, points []Point, cellSize float64) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	nx := int(math.Ceil(b.Width/cellSize)) + 1
	ny := int(math.Ceil(b.Height/cellSize)) + 1
	nz := int(math.Ceil(b.Depth/cellSize)) + 1
	idx := &Index{
		cell:    cellSize,
		nx:      nx,
		ny:      ny,
		nz:      nz,
		buckets: make([][]int, nx*ny*nz),
		points:  append([]Point(nil), points...),
	}
	for i, p := range idx.points {
		at := idx.bucketOf(p)
		idx.buckets[at] = append(idx.buckets[at], i)
	}
	return idx
}

func (idx *Index) clampAxis(v float64, n int) int {
	c := int(v / idx.cell)
	if c < 0 {
		c = 0
	}
	if c >= n {
		c = n - 1
	}
	return c
}

func (idx *Index) bucketOf(p Point) int {
	x := idx.clampAxis(p.X, idx.nx)
	y := idx.clampAxis(p.Y, idx.ny)
	z := idx.clampAxis(p.Z, idx.nz)
	return (z*idx.ny+y)*idx.nx + x
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.points) }

// At returns point i.
func (idx *Index) At(i int) Point { return idx.points[i] }

// Within calls fn for every indexed point within radius of center.
func (idx *Index) Within(center Point, radius float64, fn func(i int, dist float64)) {
	if radius < 0 {
		return
	}
	x0 := idx.clampAxis(center.X-radius, idx.nx)
	x1 := idx.clampAxis(center.X+radius, idx.nx)
	y0 := idx.clampAxis(center.Y-radius, idx.ny)
	y1 := idx.clampAxis(center.Y+radius, idx.ny)
	z0 := idx.clampAxis(center.Z-radius, idx.nz)
	z1 := idx.clampAxis(center.Z+radius, idx.nz)
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				for _, i := range idx.buckets[(z*idx.ny+y)*idx.nx+x] {
					if d := center.Dist(idx.points[i]); d <= radius {
						fn(i, d)
					}
				}
			}
		}
	}
}

// CountWithin returns how many indexed points lie within radius of center.
func (idx *Index) CountWithin(center Point, radius float64) int {
	n := 0
	idx.Within(center, radius, func(int, float64) { n++ })
	return n
}
