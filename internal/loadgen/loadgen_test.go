package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"peas/internal/jobqueue"
	"peas/internal/server"
)

// TestPlanDeterminism is the reproducibility acceptance criterion:
// planning the same Mix twice yields the identical submitted key
// multiset (same hash, same per-item keys in order), and a different
// seed yields a different one.
func TestPlanDeterminism(t *testing.T) {
	mix := Mix{Seed: 42, Jobs: 60, DuplicateRatio: 0.3, FollowFraction: 0.5, ChaosFraction: 0.2, LongJobs: 2}
	a, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 62 {
		t.Fatalf("plan sizes %d vs %d, want 62", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("item %d: key %s vs %s — plan not seed-deterministic", i, a[i].Key, b[i].Key)
		}
		if a[i].Follow != b[i].Follow || a[i].Duplicate != b[i].Duplicate || a[i].Arrival != b[i].Arrival {
			t.Fatalf("item %d: flags/arrival differ across identical plans", i)
		}
	}
	if KeyMultisetHash(a) != KeyMultisetHash(b) {
		t.Fatal("key multiset hashes differ for identical mixes")
	}

	other, err := Plan(Mix{Seed: 43, Jobs: 60, DuplicateRatio: 0.3, FollowFraction: 0.5, ChaosFraction: 0.2, LongJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if KeyMultisetHash(a) == KeyMultisetHash(other) {
		t.Fatal("different seeds produced the same key multiset")
	}
}

// TestPlanShape checks the synthesized workload's structural
// invariants: the duplicate count tracks the configured ratio, long
// jobs are distinct chaos-free drain victims at the plan tail, and
// arrivals are non-decreasing.
func TestPlanShape(t *testing.T) {
	mix := Mix{Seed: 7, Jobs: 400, DuplicateRatio: 0.35, ChaosFraction: 0.25, LongJobs: 3}
	items, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}

	dups := planDuplicates(items)
	rate := float64(dups) / float64(mix.Jobs)
	if rate < 0.25 || rate > 0.45 {
		t.Errorf("planned duplicate rate %.3f far from configured 0.35", rate)
	}
	if got := mix.Jobs - distinctKeys(items[:mix.Jobs]); got != dups {
		t.Errorf("duplicate submissions %d but only %d repeated keys", dups, got)
	}

	seenLong := make(map[string]struct{})
	for i, it := range items {
		if i > 0 && it.Arrival < items[i-1].Arrival {
			t.Fatalf("item %d arrives before item %d", i, i-1)
		}
		if !it.Long {
			continue
		}
		if i < mix.Jobs {
			t.Errorf("long job at index %d, before the plan tail", i)
		}
		if it.Spec.Chaos != nil {
			t.Error("long job carries a chaos plan; it could not checkpoint-suspend")
		}
		if it.Spec.Horizon != 600000 {
			t.Errorf("long job horizon %v, want 1000x default (600000)", it.Spec.Horizon)
		}
		if it.Spec.Network.N != 2000 {
			t.Errorf("long job N %d, want 50x default (2000)", it.Spec.Network.N)
		}
		if _, dup := seenLong[it.Key]; dup {
			t.Error("long jobs must have distinct keys")
		}
		seenLong[it.Key] = struct{}{}
	}
	if len(seenLong) != mix.LongJobs {
		t.Errorf("%d long jobs, want %d", len(seenLong), mix.LongJobs)
	}
}

func TestHashLedgerDetectsDivergence(t *testing.T) {
	l := newHashLedger()
	if !l.observe("k1", "aa", false) || !l.observe("k1", "aa", true) {
		t.Fatal("matching hashes flagged as divergent")
	}
	if l.observe("k1", "bb", false) {
		t.Fatal("divergent hash not flagged")
	}
	if !l.observe("k2", "", false) {
		t.Fatal("empty hash must be ignored")
	}
	keys, mismatches, resumed := l.stats()
	if keys != 1 || mismatches != 1 || resumed != 1 {
		t.Fatalf("stats = (%d,%d,%d), want (1,1,1)", keys, mismatches, resumed)
	}
	if _, ok := l.hashFor("k2"); ok {
		t.Fatal("ignored empty hash was recorded")
	}
}

// startService boots a real pool + HTTP server for the load generator
// to drive, returning its base URL.
func startService(t *testing.T, cfg jobqueue.Config) string {
	t.Helper()
	pool := jobqueue.New(cfg)
	pool.Start()
	ts := httptest.NewServer(server.New(pool, cfg.Workers))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Shutdown(ctx)
	})
	return ts.URL
}

// TestRunClosedLoop drives a live service with a mixed closed-loop
// workload and checks the report end to end: every job reaches done,
// the observed coalesce+cache rate matches the planned duplicate rate
// exactly (the cache is big enough that no duplicate misses), the
// hashes agree across fresh/cached/coalesced paths, and the evaluated
// report passes its SLO.
func TestRunClosedLoop(t *testing.T) {
	url := startService(t, jobqueue.Config{Workers: 4, QueueDepth: 64, CacheCap: 256})

	cfg := Config{
		Mix:         Mix{Seed: 1234, Jobs: 24, DuplicateRatio: 0.4, FollowFraction: 0.5, ChaosFraction: 0.2},
		Mode:        ModeClosed,
		Concurrency: 6,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := Run(ctx, url, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Submitted != 24 || rep.Done != 24 {
		t.Fatalf("submitted=%d done=%d, want 24/24", rep.Submitted, rep.Done)
	}
	if got := rep.Coalesced + rep.Cached; got != rep.PlannedDuplicates {
		t.Errorf("coalesced+cached = %d, want exactly %d planned duplicates", got, rep.PlannedDuplicates)
	}
	if rep.HashMismatches != 0 || rep.HashedKeys != rep.DistinctKeys {
		t.Errorf("hashes: %d mismatches over %d keys (plan has %d distinct)",
			rep.HashMismatches, rep.HashedKeys, rep.DistinctKeys)
	}
	if !rep.Pass {
		t.Errorf("report failed its SLO: %+v", rep.Assertions)
	}
	if rep.E2ELatency.Count != 24 || rep.E2ELatency.P99Seconds <= 0 {
		t.Errorf("e2e latency summary incomplete: %+v", rep.E2ELatency)
	}

	// Reproducibility over the wire: a second run of the same mix
	// reports the identical key multiset hash.
	items, err := Plan(cfg.Mix)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeyMultisetHash != KeyMultisetHash(items) {
		t.Error("report's key multiset hash differs from a re-planned one")
	}
}

// TestRunOpenLoop exercises the fixed-arrival-rate mode: arrivals are
// paced by the plan's seeded Poisson offsets, and the run still
// converges to all-done with consistent hashes.
func TestRunOpenLoop(t *testing.T) {
	url := startService(t, jobqueue.Config{Workers: 4, QueueDepth: 64, CacheCap: 256})

	cfg := Config{
		Mix:  Mix{Seed: 99, Jobs: 16, DuplicateRatio: 0.25, FollowFraction: 0.25, RateHz: 200},
		Mode: ModeOpen,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := Run(ctx, url, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeOpen {
		t.Fatalf("mode %q, want open", rep.Mode)
	}
	if rep.Submitted != 16 || rep.Done != 16 {
		t.Fatalf("submitted=%d done=%d, want 16/16", rep.Submitted, rep.Done)
	}
	if rep.HashMismatches != 0 {
		t.Errorf("hash mismatches: %d", rep.HashMismatches)
	}
	if !rep.Pass {
		t.Errorf("report failed its SLO: %+v", rep.Assertions)
	}
}

// TestReportEvaluate pins the SLO gate logic itself: lost jobs,
// duplicate-rate drift and latency bounds each flip Pass.
func TestReportEvaluate(t *testing.T) {
	base := Report{
		Submitted: 10, Done: 10,
		PlannedDuplicateRate: 0.3, ObservedDuplicateRate: 0.3,
		SubmitLatency: LatencySummary{P99Seconds: 0.01},
		E2ELatency:    LatencySummary{P99Seconds: 0.5},
	}

	r := base
	r.evaluate(SLO{})
	if !r.Pass {
		t.Errorf("clean report failed: %+v", r.Assertions)
	}

	r = base
	r.TimedOut = 1
	r.evaluate(SLO{})
	if r.Pass {
		t.Error("timed-out job did not fail zero-lost-jobs")
	}

	r = base
	r.Suspended = 1
	r.evaluate(SLO{AllowSuspended: true})
	if !r.Pass {
		t.Errorf("suspended job failed despite AllowSuspended: %+v", r.Assertions)
	}
	r = base
	r.Suspended = 1
	r.evaluate(SLO{})
	if r.Pass {
		t.Error("suspended job passed without AllowSuspended")
	}

	r = base
	r.ObservedDuplicateRate = 0.4
	r.evaluate(SLO{DuplicateRateTolerance: 0.05})
	if r.Pass {
		t.Error("0.1 duplicate-rate drift passed a 0.05 tolerance")
	}

	r = base
	r.evaluate(SLO{MaxE2EP99Seconds: 0.1})
	if r.Pass {
		t.Error("e2e p99 0.5s passed a 0.1s bound")
	}
	r = base
	r.evaluate(SLO{MaxE2EP99Seconds: 1.0, MaxSubmitP99Seconds: 0.1})
	if !r.Pass {
		t.Errorf("in-bound latencies failed: %+v", r.Assertions)
	}
}
