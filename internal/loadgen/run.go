package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"peas/internal/client"
	"peas/internal/jobqueue"
	"peas/internal/metrics"
	"peas/internal/server/api"
)

// Run modes.
const (
	// ModeClosed drives the service with a fixed number of concurrent
	// submitters, each waiting for its job's terminal state before
	// taking the next item (throughput adapts to the server).
	ModeClosed = "closed"
	// ModeOpen submits at the plan's seeded Poisson arrival times
	// regardless of completions (arrival rate is fixed; queueing shows
	// up as latency, the production-facing regime).
	ModeOpen = "open"
)

// Config configures one load run.
type Config struct {
	// Mix is the workload synthesis configuration.
	Mix Mix
	// Mode is ModeClosed (default) or ModeOpen.
	Mode string
	// Concurrency is the closed-loop submitter count (0 = 8). Open
	// loop ignores it: every arrival gets its own goroutine.
	Concurrency int
	// Retry bounds SubmitWithRetry on 429s.
	Retry client.RetryPolicy
	// JobTimeout bounds one submission end to end (0 = 120s); a job
	// that is not terminal by then counts as timed out — lost.
	JobTimeout time.Duration
	// SLO is the pass/fail contract evaluated into the report.
	SLO SLO
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	return c
}

// hashLedger records the StateHash observed per content key and flags
// divergence. The engine is bit-exact deterministic, so two
// observations of one key — fresh, cached, resumed after a drain, or
// restarted from a persisted spec — must agree; a mismatch is a
// correctness failure, not noise. The soak harness shares one ledger
// across every cycle so reproduction is checked across restarts.
type hashLedger struct {
	mu         sync.Mutex
	byKey      map[string]string
	mismatches int
	resumed    int
}

func newHashLedger() *hashLedger { return &hashLedger{byKey: make(map[string]string)} }

// observe records one (key, hash) observation; empty hashes (stubbed
// runs, sweep results) are ignored. It returns false on divergence.
func (l *hashLedger) observe(key, hash string, resumed bool) bool {
	if hash == "" {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if resumed {
		l.resumed++
	}
	if prev, ok := l.byKey[key]; ok {
		if prev != hash {
			l.mismatches++
			return false
		}
		return true
	}
	l.byKey[key] = hash
	return true
}

func (l *hashLedger) stats() (keys, mismatches, resumed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byKey), l.mismatches, l.resumed
}

func (l *hashLedger) hashFor(key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.byKey[key]
	return h, ok
}

// collector aggregates per-item outcomes across submitter goroutines.
type collector struct {
	mu          sync.Mutex
	accepted    int
	coalesced   int
	cached      int
	rejected    int
	done        int
	failed      int
	panicFailed int
	suspended   int
	interrupted int
	timedOut    int
	skipped     int
	retries     int

	suspendedKeys []string

	submitLat *metrics.Histogram
	e2eLat    *metrics.Histogram
	ledger    *hashLedger
}

func newCollector(ledger *hashLedger) *collector {
	if ledger == nil {
		ledger = newHashLedger()
	}
	return &collector{
		submitLat: metrics.NewHistogram(),
		e2eLat:    metrics.NewHistogram(),
		ledger:    ledger,
	}
}

func (c *collector) addRetry() {
	c.mu.Lock()
	c.retries++
	c.mu.Unlock()
}

func (c *collector) outcome(o jobqueue.Outcome) {
	c.mu.Lock()
	switch o {
	case jobqueue.OutcomeAccepted:
		c.accepted++
	case jobqueue.OutcomeCoalesced:
		c.coalesced++
	case jobqueue.OutcomeCached:
		c.cached++
	}
	c.mu.Unlock()
}

func (c *collector) terminal(state jobqueue.State, it Item) {
	c.mu.Lock()
	switch state {
	case jobqueue.StateDone:
		c.done++
	case jobqueue.StateFailed:
		// A planned injected-panic job failing is the expected outcome
		// (panic isolation working); anything else failing is a defect.
		if it.Panic {
			c.panicFailed++
		} else {
			c.failed++
		}
	case jobqueue.StateSuspended:
		c.suspended++
		c.suspendedKeys = append(c.suspendedKeys, it.Key)
	}
	c.mu.Unlock()
}

func (c *collector) add(field *int) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// runner executes plan items against one service instance.
type runner struct {
	c   *client.Client
	cfg Config
	col *collector
	// halt, once set, makes submitters skip remaining items — the soak
	// harness sets it when it SIGTERMs the server mid-cycle.
	halt atomic.Bool
}

func newRunner(c *client.Client, cfg Config, ledger *hashLedger) *runner {
	return &runner{c: c, cfg: cfg.withDefaults(), col: newCollector(ledger)}
}

// runPlan executes all items in the configured mode.
func (r *runner) runPlan(ctx context.Context, items []Item) {
	if r.cfg.Mode == ModeOpen {
		r.runOpen(ctx, items)
		return
	}
	r.runClosed(ctx, items)
}

func (r *runner) runClosed(ctx context.Context, items []Item) {
	ch := make(chan Item)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range ch {
				if r.halt.Load() || ctx.Err() != nil {
					r.col.add(&r.col.skipped)
					continue
				}
				r.do(ctx, it)
			}
		}()
	}
	for _, it := range items {
		ch <- it
	}
	close(ch)
	wg.Wait()
}

func (r *runner) runOpen(ctx context.Context, items []Item) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, it := range items {
		if r.halt.Load() || ctx.Err() != nil {
			r.col.add(&r.col.skipped)
			continue
		}
		if wait := it.Arrival - time.Since(start); wait > 0 {
			select {
			case <-ctx.Done():
				r.col.add(&r.col.skipped)
				continue
			case <-time.After(wait):
			}
		}
		wg.Add(1)
		go func(it Item) {
			defer wg.Done()
			r.do(ctx, it)
		}(it)
	}
	wg.Wait()
}

// do executes one planned submission end to end: submit (with bounded
// 429 retries), then follow the job to a terminal state over SSE or by
// polling, recording latencies, the outcome class and the StateHash.
func (r *runner) do(ctx context.Context, it Item) {
	jctx, cancel := context.WithTimeout(ctx, r.cfg.JobTimeout)
	defer cancel()

	pol := r.cfg.Retry
	inner := pol.OnRetry
	pol.OnRetry = func(attempt int, wait time.Duration) {
		r.col.addRetry()
		if inner != nil {
			inner(attempt, wait)
		}
	}

	t0 := time.Now()
	resp, err := r.c.SubmitWithRetry(jctx, it.Spec, pol)
	if err != nil {
		var retryable *client.RetryableError
		switch {
		case errors.As(err, &retryable):
			r.col.add(&r.col.rejected)
		case jctx.Err() != nil && ctx.Err() == nil:
			r.col.add(&r.col.timedOut)
		default:
			// Transport failure — during a soak drain this is the
			// expected fate of in-flight submissions.
			r.col.add(&r.col.interrupted)
		}
		return
	}
	r.col.submitLat.Observe(time.Since(t0).Seconds())
	r.col.outcome(resp.Outcome)

	if resp.Outcome == jobqueue.OutcomeCached {
		r.col.e2eLat.Observe(time.Since(t0).Seconds())
		r.col.terminal(jobqueue.StateDone, it)
		if res := resp.Job.Result; res != nil {
			r.col.ledger.observe(it.Key, res.StateHash, res.Resumed)
		}
		return
	}

	var info *api.JobInfo
	if it.Follow {
		// Follow the SSE stream to its end (the terminal event closes
		// it), then read the authoritative state once.
		if serr := r.c.Events(jctx, resp.Job.ID, func(jobqueue.Event) bool { return true }); serr != nil && jctx.Err() == nil {
			// Stream broke without the context expiring: server drain
			// or restart; fall through to the poll, which classifies.
			_ = serr
		}
		info, err = r.c.Job(jctx, resp.Job.ID)
	} else {
		info, err = r.c.Wait(jctx, resp.Job.ID)
	}

	switch {
	case info != nil && info.State == jobqueue.StateDone:
		r.col.e2eLat.Observe(time.Since(t0).Seconds())
		r.col.terminal(jobqueue.StateDone, it)
		if info.Result != nil {
			r.col.ledger.observe(it.Key, info.Result.StateHash, info.Result.Resumed)
		}
	case info != nil && (info.State == jobqueue.StateFailed || info.State == jobqueue.StateSuspended):
		r.col.terminal(info.State, it)
	case info != nil && it.Follow:
		// SSE ended but the job is still live (stream broken by a
		// drain); fall back to polling for the remaining budget.
		if winfo, werr := r.c.Wait(jctx, resp.Job.ID); werr == nil && winfo.State == jobqueue.StateDone {
			r.col.e2eLat.Observe(time.Since(t0).Seconds())
			r.col.terminal(jobqueue.StateDone, it)
			if winfo.Result != nil {
				r.col.ledger.observe(it.Key, winfo.Result.StateHash, winfo.Result.Resumed)
			}
		} else if winfo != nil && (winfo.State == jobqueue.StateFailed || winfo.State == jobqueue.StateSuspended) {
			r.col.terminal(winfo.State, it)
		} else if jctx.Err() != nil && ctx.Err() == nil {
			r.col.add(&r.col.timedOut)
		} else {
			r.col.add(&r.col.interrupted)
		}
	case jctx.Err() != nil && ctx.Err() == nil:
		r.col.add(&r.col.timedOut)
	default:
		r.col.add(&r.col.interrupted)
	}
}

// report assembles the run report from the collected outcomes.
// precached lists content keys already resident in the server's result
// cache before the run started (a soak cycle's recovered jobs): their
// first submission answers "cached" without a planned duplicate, so
// the expected duplicate rate shifts accordingly.
func (r *runner) report(items []Item, wall time.Duration, precached map[string]struct{}) *Report {
	col := r.col
	col.mu.Lock()
	defer col.mu.Unlock()

	planned := planDuplicates(items)
	expected := planned
	if len(precached) > 0 {
		seen := make(map[string]struct{})
		for _, it := range items {
			if _, dup := seen[it.Key]; dup {
				continue
			}
			seen[it.Key] = struct{}{}
			if _, ok := precached[it.Key]; ok {
				expected++
			}
		}
	}

	submitted := col.accepted + col.coalesced + col.cached
	keys, mismatches, _ := col.ledger.stats()
	rep := &Report{
		Seed:            r.cfg.Mix.Seed,
		Mode:            r.cfg.Mode,
		Jobs:            len(items),
		Concurrency:     r.cfg.Concurrency,
		RateHz:          r.cfg.Mix.withDefaults().RateHz,
		KeyMultisetHash: KeyMultisetHash(items),
		DistinctKeys:    distinctKeys(items),

		PlannedDuplicates: expected,
		PlannedPanicJobs:  planPanicJobs(items),

		Submitted:     submitted,
		Accepted:      col.accepted,
		Coalesced:     col.coalesced,
		Cached:        col.cached,
		SubmitRetries: col.retries,
		Rejected:      col.rejected,

		Done:           col.done,
		Failed:         col.failed,
		PanicFailed:    col.panicFailed,
		Suspended:      col.suspended,
		Interrupted:    col.interrupted,
		TimedOut:       col.timedOut,
		HashMismatches: mismatches,
		HashedKeys:     keys,

		WallSeconds:   wall.Seconds(),
		SubmitLatency: summarize(col.submitLat),
		E2ELatency:    summarize(col.e2eLat),
	}
	if rep.Jobs > 0 {
		rep.PlannedDuplicateRate = float64(expected) / float64(rep.Jobs)
	}
	if submitted > 0 {
		rep.ObservedDuplicateRate = float64(col.coalesced+col.cached) / float64(submitted)
	}
	if wall > 0 {
		rep.ThroughputJobsPerSec = float64(col.done) / wall.Seconds()
	}
	return rep
}

// Run executes one full load run against the service at baseURL and
// returns the evaluated report. The plan is synthesized from cfg.Mix,
// so two calls with the same configuration submit the identical
// multiset of content keys.
func Run(ctx context.Context, baseURL string, cfg Config) (*Report, error) {
	items, err := Plan(cfg.Mix)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("loadgen: empty plan")
	}
	r := newRunner(client.New(baseURL), cfg, nil)

	// Probe the server's result cache for the plan's distinct keys
	// before driving load: keys already resident (a prior run, a soak
	// cycle) answer "cached" on first submission without being planned
	// duplicates, so the duplicate-rate assertion must expect them.
	precached := make(map[string]struct{})
	seen := make(map[string]struct{})
	for _, it := range items {
		if _, dup := seen[it.Key]; dup {
			continue
		}
		seen[it.Key] = struct{}{}
		if _, err := r.c.Result(ctx, it.Key); err == nil {
			precached[it.Key] = struct{}{}
		} else if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}

	t0 := time.Now()
	r.runPlan(ctx, items)
	rep := r.report(items, time.Since(t0), precached)
	rep.evaluate(r.cfg.SLO)
	return rep, nil
}
