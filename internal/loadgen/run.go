package loadgen

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"peas/internal/client"
	"peas/internal/jobqueue"
	"peas/internal/metrics"
	"peas/internal/server/api"
)

// Run modes.
const (
	// ModeClosed drives the service with a fixed number of concurrent
	// submitters, each waiting for its job's terminal state before
	// taking the next item (throughput adapts to the server).
	ModeClosed = "closed"
	// ModeOpen submits at the plan's seeded Poisson arrival times
	// regardless of completions (arrival rate is fixed; queueing shows
	// up as latency, the production-facing regime).
	ModeOpen = "open"
)

// Config configures one load run.
type Config struct {
	// Mix is the workload synthesis configuration.
	Mix Mix
	// Mode is ModeClosed (default) or ModeOpen.
	Mode string
	// Concurrency is the closed-loop submitter count (0 = 8). Open
	// loop ignores it: every arrival gets its own goroutine.
	Concurrency int
	// Retry bounds SubmitWithRetry on 429s.
	Retry client.RetryPolicy
	// JobTimeout bounds one submission end to end (0 = 120s); a job
	// that is not terminal by then counts as timed out — lost.
	JobTimeout time.Duration
	// SLO is the pass/fail contract evaluated into the report.
	SLO SLO
}

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 120 * time.Second
	}
	return c
}

// hashLedger records the StateHash observed per content key and flags
// divergence. The engine is bit-exact deterministic, so two
// observations of one key — fresh, cached, resumed after a drain, or
// restarted from a persisted spec — must agree; a mismatch is a
// correctness failure, not noise. The soak harness shares one ledger
// across every cycle so reproduction is checked across restarts.
type hashLedger struct {
	mu         sync.Mutex
	byKey      map[string]string
	mismatches int
	resumed    int
}

func newHashLedger() *hashLedger { return &hashLedger{byKey: make(map[string]string)} }

// observe records one (key, hash) observation; empty hashes (stubbed
// runs, sweep results) are ignored. It returns false on divergence.
func (l *hashLedger) observe(key, hash string, resumed bool) bool {
	if hash == "" {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if resumed {
		l.resumed++
	}
	if prev, ok := l.byKey[key]; ok {
		if prev != hash {
			l.mismatches++
			return false
		}
		return true
	}
	l.byKey[key] = hash
	return true
}

func (l *hashLedger) stats() (keys, mismatches, resumed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byKey), l.mismatches, l.resumed
}

func (l *hashLedger) hashFor(key string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.byKey[key]
	return h, ok
}

// collector aggregates per-item outcomes across submitter goroutines.
type collector struct {
	mu          sync.Mutex
	accepted    int
	coalesced   int
	cached      int
	rejected    int
	done        int
	failed      int
	panicFailed int
	suspended   int
	interrupted int
	timedOut    int
	skipped     int
	retries     int

	cancelled        int
	cancelDone       int
	cancelCollateral int
	hangPreempted    int
	deadlineExceeded int
	deadlineRejected int

	suspendedKeys []string

	submitLat *metrics.Histogram
	e2eLat    *metrics.Histogram
	ledger    *hashLedger
}

func newCollector(ledger *hashLedger) *collector {
	if ledger == nil {
		ledger = newHashLedger()
	}
	return &collector{
		submitLat: metrics.NewHistogram(),
		e2eLat:    metrics.NewHistogram(),
		ledger:    ledger,
	}
}

func (c *collector) addRetry() {
	c.mu.Lock()
	c.retries++
	c.mu.Unlock()
}

func (c *collector) outcome(o jobqueue.Outcome) {
	c.mu.Lock()
	switch o {
	case jobqueue.OutcomeAccepted:
		c.accepted++
	case jobqueue.OutcomeCoalesced:
		c.coalesced++
	case jobqueue.OutcomeCached:
		c.cached++
	}
	c.mu.Unlock()
}

func (c *collector) terminal(state jobqueue.State, it Item, errMsg string) {
	c.mu.Lock()
	switch state {
	case jobqueue.StateDone:
		c.done++
		if it.Cancel {
			// The planned cancel lost the race to completion — the other
			// legitimate outcome of best-effort cancellation.
			c.cancelDone++
		}
	case jobqueue.StateFailed:
		switch {
		// A planned injected-panic job failing is the expected outcome
		// (panic isolation working); a planned hang job failing with the
		// watchdog's message is the expected outcome (stall detection
		// working); anything else failing is a defect.
		case it.Panic:
			c.panicFailed++
		case it.Hang && strings.Contains(errMsg, "watchdog"):
			c.hangPreempted++
		default:
			c.failed++
		}
	case jobqueue.StateCancelled:
		if it.Cancel {
			c.cancelled++
		} else {
			// A coalesced duplicate rode a primary job that another item
			// cancelled: acceptable collateral, reported but not a defect.
			c.cancelCollateral++
		}
	case jobqueue.StateDeadline:
		if it.Deadline > 0 {
			c.deadlineExceeded++
		} else {
			c.cancelCollateral++
		}
	case jobqueue.StateSuspended:
		c.suspended++
		c.suspendedKeys = append(c.suspendedKeys, it.Key)
	}
	c.mu.Unlock()
}

func (c *collector) add(field *int) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

// runner executes plan items against one service instance.
type runner struct {
	c   *client.Client
	cfg Config
	col *collector
	// halt, once set, makes submitters skip remaining items — the soak
	// harness sets it when it SIGTERMs the server mid-cycle.
	halt atomic.Bool
	// baseline is the pre-run /healthz snapshot taken when the SLO
	// requests leak checking.
	baseline *api.HealthResponse
}

func newRunner(c *client.Client, cfg Config, ledger *hashLedger) *runner {
	return &runner{c: c, cfg: cfg.withDefaults(), col: newCollector(ledger)}
}

// runPlan executes all items in the configured mode.
func (r *runner) runPlan(ctx context.Context, items []Item) {
	if r.cfg.Mode == ModeOpen {
		r.runOpen(ctx, items)
		return
	}
	r.runClosed(ctx, items)
}

func (r *runner) runClosed(ctx context.Context, items []Item) {
	ch := make(chan Item)
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range ch {
				if r.halt.Load() || ctx.Err() != nil {
					r.col.add(&r.col.skipped)
					continue
				}
				r.do(ctx, it)
			}
		}()
	}
	for _, it := range items {
		ch <- it
	}
	close(ch)
	wg.Wait()
}

func (r *runner) runOpen(ctx context.Context, items []Item) {
	start := time.Now()
	var wg sync.WaitGroup
	for _, it := range items {
		if r.halt.Load() || ctx.Err() != nil {
			r.col.add(&r.col.skipped)
			continue
		}
		if wait := it.Arrival - time.Since(start); wait > 0 {
			select {
			case <-ctx.Done():
				r.col.add(&r.col.skipped)
				continue
			case <-time.After(wait):
			}
		}
		wg.Add(1)
		go func(it Item) {
			defer wg.Done()
			r.do(ctx, it)
		}(it)
	}
	wg.Wait()
}

// do executes one planned submission end to end: submit (with bounded
// 429 retries), then follow the job to a terminal state over SSE or by
// polling, recording latencies, the outcome class and the StateHash.
func (r *runner) do(ctx context.Context, it Item) {
	jctx, cancel := context.WithTimeout(ctx, r.cfg.JobTimeout)
	defer cancel()

	pol := r.cfg.Retry
	inner := pol.OnRetry
	pol.OnRetry = func(attempt int, wait time.Duration) {
		r.col.addRetry()
		if inner != nil {
			inner(attempt, wait)
		}
	}

	t0 := time.Now()
	resp, err := r.c.SubmitWithRetry(jctx, it.Spec, pol)
	if err != nil {
		var retryable *client.RetryableError
		switch {
		case errors.As(err, &retryable):
			if it.Deadline > 0 && retryable.Code == api.CodeDeadlineInfeasible {
				// Deadline-aware admission fast-rejected the unmeetable
				// budget: an enforcement outcome the plan expects, not a
				// lost submission.
				r.col.add(&r.col.deadlineRejected)
			} else {
				r.col.add(&r.col.rejected)
			}
		case jctx.Err() != nil && ctx.Err() == nil:
			r.col.add(&r.col.timedOut)
		default:
			// Transport failure — during a soak drain this is the
			// expected fate of in-flight submissions.
			r.col.add(&r.col.interrupted)
		}
		return
	}
	r.col.submitLat.Observe(time.Since(t0).Seconds())
	r.col.outcome(resp.Outcome)

	if resp.Outcome == jobqueue.OutcomeCached {
		r.col.e2eLat.Observe(time.Since(t0).Seconds())
		r.col.terminal(jobqueue.StateDone, it, "")
		if res := resp.Job.Result; res != nil {
			r.col.ledger.observe(it.Key, res.StateHash, res.Resumed)
		}
		return
	}

	// Planned cancellation: fire DELETE after the seeded delay, racing
	// the job's own lifecycle on purpose — it may still be queued, be
	// mid-run, or have already completed, and every outcome is asserted.
	if it.Cancel {
		id := resp.Job.ID
		var cancelWG sync.WaitGroup
		cancelWG.Add(1)
		go func() {
			defer cancelWG.Done()
			select {
			case <-jctx.Done():
				return
			case <-time.After(it.CancelAfter):
			}
			_, _ = r.c.Cancel(jctx, id)
		}()
		defer cancelWG.Wait()
	}

	// finish records info when it is terminal and reports whether it was.
	finish := func(info *api.JobInfo) bool {
		if info == nil || !info.State.Terminal() {
			return false
		}
		if info.State == jobqueue.StateDone {
			r.col.e2eLat.Observe(time.Since(t0).Seconds())
			if info.Result != nil {
				r.col.ledger.observe(it.Key, info.Result.StateHash, info.Result.Resumed)
			}
		}
		r.col.terminal(info.State, it, info.Error)
		return true
	}

	var info *api.JobInfo
	if it.Follow {
		// Follow the SSE stream to its end (the terminal event closes
		// it), then read the authoritative state once.
		if serr := r.c.Events(jctx, resp.Job.ID, func(jobqueue.Event) bool { return true }); serr != nil && jctx.Err() == nil {
			// Stream broke without the context expiring: server drain
			// or restart; fall through to the poll, which classifies.
			_ = serr
		}
		info, _ = r.c.Job(jctx, resp.Job.ID)
	} else {
		// Wait returns an error alongside info for every non-done
		// terminal state; the state switch below is the classifier.
		info, _ = r.c.Wait(jctx, resp.Job.ID)
	}

	switch {
	case finish(info):
	case info != nil && it.Follow:
		// SSE ended but the job is still live (stream broken by a
		// drain); fall back to polling for the remaining budget.
		winfo, _ := r.c.Wait(jctx, resp.Job.ID)
		if finish(winfo) {
			break
		}
		if jctx.Err() != nil && ctx.Err() == nil {
			r.col.add(&r.col.timedOut)
		} else {
			r.col.add(&r.col.interrupted)
		}
	case jctx.Err() != nil && ctx.Err() == nil:
		r.col.add(&r.col.timedOut)
	default:
		r.col.add(&r.col.interrupted)
	}
}

// report assembles the run report from the collected outcomes.
// precached lists content keys already resident in the server's result
// cache before the run started (a soak cycle's recovered jobs): their
// first submission answers "cached" without a planned duplicate, so
// the expected duplicate rate shifts accordingly.
func (r *runner) report(items []Item, wall time.Duration, precached map[string]struct{}) *Report {
	col := r.col
	col.mu.Lock()
	defer col.mu.Unlock()

	planned := planDuplicates(items)
	expected := planned
	if len(precached) > 0 {
		seen := make(map[string]struct{})
		for _, it := range items {
			if _, dup := seen[it.Key]; dup {
				continue
			}
			seen[it.Key] = struct{}{}
			if _, ok := precached[it.Key]; ok {
				expected++
			}
		}
	}

	submitted := col.accepted + col.coalesced + col.cached
	keys, mismatches, _ := col.ledger.stats()
	rep := &Report{
		Seed:            r.cfg.Mix.Seed,
		Mode:            r.cfg.Mode,
		Jobs:            len(items),
		Concurrency:     r.cfg.Concurrency,
		RateHz:          r.cfg.Mix.withDefaults().RateHz,
		KeyMultisetHash: KeyMultisetHash(items),
		DistinctKeys:    distinctKeys(items),

		PlannedDuplicates:   expected,
		PlannedPanicJobs:    planPanicJobs(items),
		PlannedCancels:      planCancels(items),
		PlannedHangJobs:     planHangJobs(items),
		PlannedDeadlineJobs: planDeadlineJobs(items),

		Submitted:     submitted,
		Accepted:      col.accepted,
		Coalesced:     col.coalesced,
		Cached:        col.cached,
		SubmitRetries: col.retries,
		Rejected:      col.rejected,

		Done:           col.done,
		Failed:         col.failed,
		PanicFailed:    col.panicFailed,
		Suspended:      col.suspended,
		Interrupted:    col.interrupted,
		TimedOut:       col.timedOut,
		HashMismatches: mismatches,
		HashedKeys:     keys,

		Cancelled:        col.cancelled,
		CancelRacedDone:  col.cancelDone,
		CancelCollateral: col.cancelCollateral,
		HangPreempted:    col.hangPreempted,
		DeadlineExceeded: col.deadlineExceeded,
		DeadlineRejected: col.deadlineRejected,

		WallSeconds:   wall.Seconds(),
		SubmitLatency: summarize(col.submitLat),
		E2ELatency:    summarize(col.e2eLat),
	}
	if rep.Jobs > 0 {
		rep.PlannedDuplicateRate = float64(expected) / float64(rep.Jobs)
	}
	if submitted > 0 {
		rep.ObservedDuplicateRate = float64(col.coalesced+col.cached) / float64(submitted)
	}
	if wall > 0 {
		rep.ThroughputJobsPerSec = float64(col.done) / wall.Seconds()
	}
	return rep
}

// Run executes one full load run against the service at baseURL and
// returns the evaluated report. The plan is synthesized from cfg.Mix,
// so two calls with the same configuration submit the identical
// multiset of content keys.
func Run(ctx context.Context, baseURL string, cfg Config) (*Report, error) {
	items, err := Plan(cfg.Mix)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("loadgen: empty plan")
	}
	r := newRunner(client.New(baseURL), cfg, nil)

	// Probe the server's result cache for the plan's distinct keys
	// before driving load: keys already resident (a prior run, a soak
	// cycle) answer "cached" on first submission without being planned
	// duplicates, so the duplicate-rate assertion must expect them.
	precached := make(map[string]struct{})
	seen := make(map[string]struct{})
	for _, it := range items {
		if _, dup := seen[it.Key]; dup {
			continue
		}
		seen[it.Key] = struct{}{}
		if _, err := r.c.Result(ctx, it.Key); err == nil {
			precached[it.Key] = struct{}{}
		} else if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}

	// Leak checking brackets the run with /healthz snapshots: the
	// baseline before any load, and a settled view after.
	if r.cfg.SLO.CheckLeaks {
		h, herr := r.c.Health(ctx)
		if herr != nil {
			return nil, fmt.Errorf("loadgen: pre-run health snapshot: %w", herr)
		}
		r.baseline = h
	}

	t0 := time.Now()
	r.runPlan(ctx, items)
	rep := r.report(items, time.Since(t0), precached)

	if r.cfg.SLO.CheckLeaks {
		rep.GoroutinesBefore = r.baseline.Goroutines
		if err := r.settle(ctx, rep); err != nil {
			return nil, err
		}
	}
	rep.evaluate(r.cfg.SLO)
	return rep, nil
}

// settle polls /healthz after the plan drained, waiting for the pool to
// go quiescent (no in-flight runs, empty queue) and the goroutine count
// to converge back toward the pre-run baseline. Teardown is
// asynchronous — worker unwind, SSE handler exit, HTTP connection
// close — so the check is a bounded convergence poll, not an instant
// assertion; the last observation is recorded either way and the SLO
// assertions judge it.
func (r *runner) settle(ctx context.Context, rep *Report) error {
	const (
		budget   = 30 * time.Second
		interval = 100 * time.Millisecond
		slack    = 16
	)
	deadline := time.Now().Add(budget)
	for {
		h, err := r.c.Health(ctx)
		if err != nil {
			return fmt.Errorf("loadgen: post-run health snapshot: %w", err)
		}
		rep.FinalInFlight = h.InFlight
		rep.FinalQueueDepth = h.QueueDepth
		rep.GoroutinesAfter = h.Goroutines
		if h.InFlight == 0 && h.QueueDepth == 0 && h.Goroutines <= rep.GoroutinesBefore+slack {
			return nil
		}
		if time.Now().After(deadline) {
			return nil // assertions report the unconverged observation
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}
