// Package loadgen is the deterministic load-generation and soak-testing
// harness of the simulation service. It synthesizes a seeded workload
// plan — a sequence of job specs with a tunable duplicate-key ratio, an
// SSE-follow fraction, a chaos-job fraction and Poisson arrival times —
// and drives a peas-serve instance with it in open-loop (fixed arrival
// rate) or closed-loop (fixed concurrency) mode through the typed
// client, so the client itself is exercised under real concurrency.
//
// Everything the generator sends is a pure function of the seed: two
// runs with the same Mix submit the identical multiset of content keys
// (see KeyMultisetHash), which is what makes observed cache-hit and
// coalesce rates assertable against the configured mix, and what makes
// soak results comparable across drain/restart cycles.
package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"peas/internal/chaos"
	"peas/internal/experiment"
	"peas/internal/jobqueue"
	"peas/internal/node"
	"peas/internal/stats"
)

// Mix configures the synthesized workload.
type Mix struct {
	// Seed drives every random choice in the plan.
	Seed int64 `json:"seed"`
	// Jobs is the number of submissions (0 = 100).
	Jobs int `json:"jobs"`
	// DuplicateRatio is the probability that a submission reuses an
	// earlier distinct spec instead of minting a new one, the knob that
	// sets the target cache-hit + singleflight-coalesce rate.
	DuplicateRatio float64 `json:"duplicateRatio"`
	// FollowFraction is the probability that a submission follows its
	// job over the SSE event stream instead of polling.
	FollowFraction float64 `json:"followFraction"`
	// ChaosFraction is the probability that a freshly minted spec
	// carries a scripted chaos plan (exercising the fault-injection and
	// restart-from-spec paths).
	ChaosFraction float64 `json:"chaosFraction"`
	// N is the deployment size per job (0 = 40: tens of milliseconds of
	// wall time per run, so a plan of hundreds of jobs stays snappy).
	N int `json:"n"`
	// Horizon is the simulated seconds per job (0 = 600).
	Horizon float64 `json:"horizon"`
	// RateHz is the open-loop arrival rate in submissions per second
	// (0 = 50). Arrival offsets are drawn from a Poisson process at
	// this rate, pre-computed so they too are seed-deterministic.
	RateHz float64 `json:"rateHz"`
	// LongJobs appends this many distinct long-horizon jobs at the end
	// of the plan (0 = none). The soak harness uses them as guaranteed
	// drain victims: they are still running when the server is
	// SIGTERMed, so they must checkpoint-suspend and resume.
	LongJobs int `json:"longJobs,omitempty"`
	// LongHorizon is the simulated seconds for long jobs (0 = 1000x
	// Horizon, comfortably past the network's lifetime so the horizon
	// never cuts the run short).
	LongHorizon float64 `json:"longHorizon,omitempty"`
	// LongN is the deployment size for long jobs (0 = 50x N). Wall time
	// scales with N (the event count does), not with the horizon — once
	// the network dies the event queue drains no matter how far the
	// horizon reaches — so a big deployment is what buys the soak a
	// multi-second window to observe the job running and SIGTERM the
	// server mid-run.
	LongN int `json:"longN,omitempty"`
	// PanicJobs inserts this many distinct jobs carrying the injected
	// Spec.Panic fault between the normal and the long jobs (0 = none).
	// The crash-soak harness uses them to prove panic isolation: each
	// must land in the failed state with a stack trace while the worker
	// pool keeps executing everything around it.
	PanicJobs int `json:"panicJobs,omitempty"`
	// CancelFraction is the probability that a submission is cancelled
	// at a seeded point in its lifecycle (0 = none). Cancel timing is
	// drawn uniformly over a short window, so cancels land while queued,
	// mid-run, or after completion (a deliberate race — cancellation is
	// best-effort, and a cancel that loses to completion must leave the
	// job done). Fault-injection items (panic, hang, deadline) are never
	// cancel candidates: their expected outcome would become ambiguous.
	CancelFraction float64 `json:"cancelFraction,omitempty"`
	// HangJobs inserts this many distinct jobs carrying the injected
	// Spec.Hang fault (0 = none). Each wedges its worker without event
	// progress; with a stall window configured on the server, the
	// watchdog must preempt every one (failed state, watchdog message)
	// while the surrounding jobs keep completing.
	HangJobs int `json:"hangJobs,omitempty"`
	// DeadlineJobs inserts this many big-deployment jobs carrying a
	// DeadlineSeconds budget far below their multi-second runtime
	// (0 = none). Each must be killed by deadline enforcement — either
	// deadline_exceeded after admission or fast-rejected as infeasible —
	// never completed and never lost.
	DeadlineJobs int `json:"deadlineJobs,omitempty"`
}

func (m Mix) withDefaults() Mix {
	if m.Jobs <= 0 {
		m.Jobs = 100
	}
	if m.N <= 0 {
		m.N = 40
	}
	if m.Horizon <= 0 {
		m.Horizon = 600
	}
	if m.RateHz <= 0 {
		m.RateHz = 50
	}
	if m.LongHorizon <= 0 {
		m.LongHorizon = 1000 * m.Horizon
	}
	if m.LongN <= 0 {
		m.LongN = 50 * m.N
	}
	return m
}

// Item is one planned submission.
type Item struct {
	// Index is the submission's position in the plan.
	Index int
	// Spec is the job to submit (already normalized).
	Spec *jobqueue.Spec
	// Key is the spec's content address, precomputed so reports and
	// assertions never depend on server responses.
	Key string
	// Duplicate marks a submission that reuses an earlier spec.
	Duplicate bool
	// Follow marks a submission that follows the job over SSE.
	Follow bool
	// Long marks a long-horizon drain-victim job (soak mode).
	Long bool
	// Panic marks an injected-panic job: it is expected to fail (with
	// the panic stack in its error) rather than complete.
	Panic bool
	// Cancel marks a submission the runner cancels CancelAfter after
	// submitting; its expected terminal state is cancelled or — when the
	// cancel loses the race — done.
	Cancel bool
	// CancelAfter is the seeded delay between submit and DELETE.
	CancelAfter time.Duration
	// Hang marks an injected-hang job: expected to be preempted by the
	// server's watchdog (failed state, watchdog message).
	Hang bool
	// Deadline is the job's DeadlineSeconds budget (0 = unbounded);
	// planned deadline jobs carry one their runtime cannot meet.
	Deadline float64
	// Arrival is the open-loop arrival offset from the run start.
	Arrival time.Duration
}

// Plan synthesizes the workload: a pure function of the mix. The
// returned items are already normalized and keyed.
func Plan(mix Mix) ([]Item, error) {
	mix = mix.withDefaults()
	if mix.DuplicateRatio < 0 || mix.DuplicateRatio > 1 {
		return nil, fmt.Errorf("loadgen: duplicate ratio %v outside [0,1]", mix.DuplicateRatio)
	}
	if mix.FollowFraction < 0 || mix.FollowFraction > 1 {
		return nil, fmt.Errorf("loadgen: follow fraction %v outside [0,1]", mix.FollowFraction)
	}
	if mix.ChaosFraction < 0 || mix.ChaosFraction > 1 {
		return nil, fmt.Errorf("loadgen: chaos fraction %v outside [0,1]", mix.ChaosFraction)
	}
	if mix.CancelFraction < 0 || mix.CancelFraction > 1 {
		return nil, fmt.Errorf("loadgen: cancel fraction %v outside [0,1]", mix.CancelFraction)
	}

	rng := stats.NewRNG(mix.Seed)
	items := make([]Item, 0, mix.Jobs+mix.LongJobs)
	// distinct tracks the specs minted so far; duplicates re-submit a
	// uniformly drawn earlier one (its normalized spec is shared — the
	// transport only marshals it, never mutates it).
	type minted struct {
		spec *jobqueue.Spec
		key  string
	}
	var distinct []minted
	var arrival time.Duration

	mint := func(n int, horizon float64, long bool) (minted, error) {
		spec := &jobqueue.Spec{
			Network:          node.DefaultConfig(n, rng.Int63()),
			FailuresPer5000s: experiment.BaseFailuresPer5000,
			Horizon:          horizon,
		}
		// Long jobs never carry chaos plans: a chaos run cannot
		// checkpoint, and the soak needs its drain victims to suspend
		// with a snapshot and resume bit-exactly.
		if !long && rng.Float64() < mix.ChaosFraction {
			spec.Chaos = chaos.MixedPlan(horizon, rng.Int63())
		}
		if err := spec.Normalize(); err != nil {
			return minted{}, fmt.Errorf("loadgen: synthesized invalid spec: %w", err)
		}
		return minted{spec: spec, key: spec.Key()}, nil
	}

	// drawCancel marks an item for a seeded cancellation. Every RNG draw
	// is gated on the knob so zero-knob mixes keep the exact draw sequence
	// (and hence key multiset) they had before cancellation existed.
	// Duplicates are never candidates: a cancel on a coalesced submission
	// would kill the shared primary job and make both outcomes ambiguous.
	drawCancel := func(it *Item) {
		if mix.CancelFraction <= 0 || it.Duplicate {
			return
		}
		if rng.Float64() < mix.CancelFraction {
			it.Cancel = true
			it.CancelAfter = time.Duration(rng.Float64() * float64(200*time.Millisecond))
		}
	}

	for i := 0; i < mix.Jobs; i++ {
		// Poisson arrivals: exponential inter-arrival gaps at RateHz.
		arrival += time.Duration(rng.Exp(mix.RateHz) * float64(time.Second))
		it := Item{Index: i, Follow: rng.Float64() < mix.FollowFraction, Arrival: arrival}
		if len(distinct) > 0 && rng.Float64() < mix.DuplicateRatio {
			m := distinct[rng.Intn(len(distinct))]
			it.Spec, it.Key, it.Duplicate = m.spec, m.key, true
		} else {
			m, err := mint(mix.N, mix.Horizon, false)
			if err != nil {
				return nil, err
			}
			distinct = append(distinct, m)
			it.Spec, it.Key = m.spec, m.key
		}
		drawCancel(&it)
		items = append(items, it)
	}
	for i := 0; i < mix.PanicJobs; i++ {
		arrival += time.Duration(rng.Exp(mix.RateHz) * float64(time.Second))
		spec := &jobqueue.Spec{
			Network:          node.DefaultConfig(mix.N, rng.Int63()),
			FailuresPer5000s: experiment.BaseFailuresPer5000,
			Horizon:          mix.Horizon,
			Panic:            true,
		}
		if err := spec.Normalize(); err != nil {
			return nil, fmt.Errorf("loadgen: synthesized invalid panic spec: %w", err)
		}
		items = append(items, Item{
			Index: len(items), Spec: spec, Key: spec.Key(), Panic: true, Arrival: arrival,
		})
	}
	for i := 0; i < mix.HangJobs; i++ {
		arrival += time.Duration(rng.Exp(mix.RateHz) * float64(time.Second))
		spec := &jobqueue.Spec{
			Network:          node.DefaultConfig(mix.N, rng.Int63()),
			FailuresPer5000s: experiment.BaseFailuresPer5000,
			Horizon:          mix.Horizon,
			Hang:             true,
		}
		if err := spec.Normalize(); err != nil {
			return nil, fmt.Errorf("loadgen: synthesized invalid hang spec: %w", err)
		}
		items = append(items, Item{
			Index: len(items), Spec: spec, Key: spec.Key(), Hang: true, Arrival: arrival,
		})
	}
	for i := 0; i < mix.DeadlineJobs; i++ {
		arrival += time.Duration(rng.Exp(mix.RateHz) * float64(time.Second))
		// Big deployments (multi-second runs) with a 250ms budget: the
		// deadline can never be met, so enforcement — not luck — decides
		// the outcome.
		m, err := mint(mix.LongN, mix.LongHorizon, true)
		if err != nil {
			return nil, err
		}
		m.spec.DeadlineSeconds = 0.25
		items = append(items, Item{
			Index: len(items), Spec: m.spec, Key: m.key, Deadline: 0.25, Arrival: arrival,
		})
	}
	for i := 0; i < mix.LongJobs; i++ {
		arrival += time.Duration(rng.Exp(mix.RateHz) * float64(time.Second))
		m, err := mint(mix.LongN, mix.LongHorizon, true)
		if err != nil {
			return nil, err
		}
		it := Item{
			Index: len(items), Spec: m.spec, Key: m.key, Long: true, Arrival: arrival,
		}
		drawCancel(&it)
		items = append(items, it)
	}
	return items, nil
}

// planPanicJobs counts the planned injected-panic submissions.
func planPanicJobs(items []Item) int {
	n := 0
	for _, it := range items {
		if it.Panic {
			n++
		}
	}
	return n
}

// planCancels counts the planned cancelled submissions.
func planCancels(items []Item) int {
	n := 0
	for _, it := range items {
		if it.Cancel {
			n++
		}
	}
	return n
}

// planHangJobs counts the planned injected-hang submissions.
func planHangJobs(items []Item) int {
	n := 0
	for _, it := range items {
		if it.Hang {
			n++
		}
	}
	return n
}

// planDeadlineJobs counts the planned unmeetable-deadline submissions.
func planDeadlineJobs(items []Item) int {
	n := 0
	for _, it := range items {
		if it.Deadline > 0 {
			n++
		}
	}
	return n
}

// KeyMultisetHash is the reproducibility witness of a plan: the hex
// SHA-256 over the sorted multiset of submitted content keys. Two runs
// with the same Mix produce the same hash; any change to the synthesis
// logic, the spec canonicalization or the RNG shows up here.
func KeyMultisetHash(items []Item) string {
	keys := make([]string, len(items))
	for i, it := range items {
		keys[i] = it.Key
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// planDuplicates counts the planned duplicate submissions.
func planDuplicates(items []Item) int {
	n := 0
	for _, it := range items {
		if it.Duplicate {
			n++
		}
	}
	return n
}

// distinctKeys counts the unique content keys in the plan.
func distinctKeys(items []Item) int {
	seen := make(map[string]struct{}, len(items))
	for _, it := range items {
		seen[it.Key] = struct{}{}
	}
	return len(seen)
}
