package loadgen

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"peas/internal/client"
	"peas/internal/experiment"
	"peas/internal/jobqueue"
	"peas/internal/server/api"
	"peas/internal/stats"
)

// Kill9Config configures a SIGKILL crash soak: repeated cycles of the
// same seeded plan against a managed peas-serve that is SIGKILLed —
// not drained — at seeded points mid-run, including inside durable
// write windows. Every restart must account for every admitted job:
// recovered or quarantined, never lost, never duplicated into a
// corrupt cache entry.
type Kill9Config struct {
	// Server is the managed peas-serve instance template. DurableDelay
	// defaults to 2ms so SIGKILLs have a real window to land between
	// the syscalls of a durable write.
	Server ServerProc
	// Cycles is the number of boot/kill cycles (minimum 2, default 4).
	// Every cycle but the last ends in a SIGKILL; the final cycle runs
	// undisturbed, stops gracefully and is gated on the SLO.
	Cycles int
	// Load is the per-cycle load configuration. Mix.LongJobs is forced
	// to at least 2 and Mix.PanicJobs to at least 1 (the kill9 soak
	// also proves panic isolation under crash-recovery).
	Load Config
	// KillSeed drives every kill-timing choice; same seed, same
	// choreography.
	KillSeed int64
	// KillMin/KillMax bound the early-kill delay drawn per cycle
	// (defaults 25ms..800ms after the cycle's submissions start).
	KillMin, KillMax time.Duration
	// CycleTimeout bounds one cycle (0 = 5 min).
	CycleTimeout time.Duration
	// Log receives harness progress lines (nil = discard).
	Log io.Writer
}

func (kc Kill9Config) withDefaults() Kill9Config {
	if kc.Cycles < 2 {
		kc.Cycles = 4
	}
	if kc.CycleTimeout <= 0 {
		kc.CycleTimeout = 5 * time.Minute
	}
	if kc.KillMin <= 0 {
		kc.KillMin = 25 * time.Millisecond
	}
	if kc.KillMax <= kc.KillMin {
		kc.KillMax = kc.KillMin + 775*time.Millisecond
	}
	if kc.Load.Mix.LongJobs < 2 {
		kc.Load.Mix.LongJobs = 2
	}
	if kc.Load.Mix.PanicJobs < 1 {
		kc.Load.Mix.PanicJobs = 1
	}
	if kc.Server.DurableDelay <= 0 {
		kc.Server.DurableDelay = 2 * time.Millisecond
	}
	return kc
}

// Kill9Cycle summarizes one boot/kill cycle.
type Kill9Cycle struct {
	Cycle int `json:"cycle"`
	// Mode is "early-kill" (SIGKILL at a seeded delay after submissions
	// start), "drain-kill" (SIGTERM, then SIGKILL the moment checkpoint
	// files start appearing — mid durable write when the jitter lands
	// inside one), or "final" (undisturbed, graceful stop).
	Mode string `json:"mode"`
	// KillDelay is the seeded early-kill delay (early-kill mode only).
	KillDelay time.Duration `json:"killDelayNanos,omitempty"`
	// BootRecovered/BootQuarantined are the server's own /healthz
	// counters right after boot.
	BootRecovered   uint64 `json:"bootRecovered"`
	BootQuarantined uint64 `json:"bootQuarantined"`
	// AccountingOK verifies recovered + quarantined == the spec files
	// present when the previous cycle was killed: every admitted job is
	// accounted for across the crash.
	AccountingOK     bool   `json:"accountingOk"`
	AccountingDetail string `json:"accountingDetail,omitempty"`
	// Recovered-job resolution at this boot.
	Recovered     int `json:"recovered"`
	ResumedDone   int `json:"resumedDone"`
	RestartedDone int `json:"restartedDone"`
	PanicFailed   int `json:"panicFailed"`
	// State-dir census at the moment of this cycle's kill.
	SpecsAtKill int `json:"specsAtKill"`
	CkptsAtKill int `json:"ckptsAtKill"`
	TmpAtKill   int `json:"tmpAtKill"`
	// The cycle's own submission outcomes.
	Submitted   int `json:"submitted"`
	Done        int `json:"done"`
	Suspended   int `json:"suspended"`
	Interrupted int `json:"interrupted"`
}

// Kill9Report is the machine-readable crash-soak outcome.
type Kill9Report struct {
	Cycles          []Kill9Cycle `json:"cycles"`
	KeyMultisetHash string       `json:"keyMultisetHash"`
	ReferenceKeys   int          `json:"referenceKeys"`
	// Kills counts SIGKILLs delivered; SpecsKilled sums the spec files
	// on disk across those kills (the jobs recovery had to account
	// for); CkptsKilled sums the complete checkpoint files killed with
	// them (each must resume at the next boot).
	Kills       int `json:"kills"`
	SpecsKilled int `json:"specsKilled"`
	CkptsKilled int `json:"ckptsKilled"`
	// TotalQuarantined sums the per-boot quarantine counters. On a real
	// filesystem SIGKILL cannot tear an fsync'd rename, so this is
	// normally 0 — the accounting assertion is what carries the weight.
	TotalQuarantined uint64 `json:"totalQuarantined"`
	TotalResumed     int    `json:"totalResumed"`
	TotalRestarted   int    `json:"totalRestarted"`
	HashMismatches   int    `json:"hashMismatches"`
	UnresolvedKeys   int    `json:"unresolvedKeys"`
	AccountingErrors int    `json:"accountingErrors"`
	// LeftoverStateFiles counts persisted job files after the final
	// graceful stop (the quarantine dir is not counted: quarantined
	// files are kept for inspection by design).
	LeftoverStateFiles int `json:"leftoverStateFiles"`

	FinalReport *Report     `json:"finalReport"`
	Assertions  []Assertion `json:"assertions"`
	Pass        bool        `json:"pass"`
}

// SoakKill9 runs the crash soak. Cycle choreography alternates between
// early kills (a seeded delay into the submission storm, landing mid
// persistSpec when the dice say so) and drain kills (SIGTERM first so
// checkpoint writes start, then SIGKILL racing the durable-write
// protocol). Each next boot must account for every spec file that was
// on disk at kill time — recovered or quarantined — and every resumed
// job must reproduce the reference StateHash computed in-process
// before any server ran.
func SoakKill9(ctx context.Context, kc Kill9Config) (*Kill9Report, error) {
	kc = kc.withDefaults()
	items, err := Plan(kc.Load.Mix)
	if err != nil {
		return nil, err
	}
	// Recovered jobs re-enter the queue at boot alongside the fresh
	// plan; size the queue so accounting never competes with 429s.
	if kc.Server.Queue < len(items)+8 {
		kc.Server.Queue = len(items) + 8
	}

	panicKeys := make(map[string]struct{})
	for _, it := range items {
		if it.Panic {
			panicKeys[it.Key] = struct{}{}
		}
	}

	ledger := newHashLedger()
	rep := &Kill9Report{KeyMultisetHash: KeyMultisetHash(items)}

	// Reference pass: ground-truth hashes for the long jobs, computed
	// in-process before any server runs, so a recovered run that
	// diverges is caught against an independent witness.
	for _, it := range items {
		if !it.Long {
			continue
		}
		if _, ok := ledger.hashFor(it.Key); ok {
			continue
		}
		st, err := experiment.Run(it.Spec.RunConfig())
		if err != nil {
			return nil, fmt.Errorf("loadgen: reference run: %w", err)
		}
		if st.FinalState == nil {
			return nil, fmt.Errorf("loadgen: reference run captured no final state")
		}
		ledger.observe(it.Key, st.FinalState.StateHashHex(), false)
		rep.ReferenceKeys++
	}
	logf(kc.Log, "kill9: plan %d items (%d distinct, %d panic), %d reference hashes, seed %d",
		len(items), distinctKeys(items), len(panicKeys), rep.ReferenceKeys, kc.KillSeed)

	rng := stats.NewRNG(kc.KillSeed)
	proc := kc.Server
	prevSpecs := -1 // spec-file census at the previous cycle's kill; -1 = no prior kill
	for cycle := 0; cycle < kc.Cycles; cycle++ {
		cctx, cancel := context.WithTimeout(ctx, kc.CycleTimeout)
		res, finalRep, err := runKill9Cycle(cctx, &proc, kc, items, ledger, panicKeys, rng, cycle, prevSpecs)
		cancel()
		if err != nil {
			if proc.cmd != nil {
				_ = proc.cmd.Process.Kill()
				_ = proc.cmd.Wait()
			}
			return nil, fmt.Errorf("loadgen: kill9 cycle %d: %w", cycle, err)
		}
		rep.Cycles = append(rep.Cycles, res)
		rep.TotalResumed += res.ResumedDone
		rep.TotalRestarted += res.RestartedDone
		rep.TotalQuarantined += res.BootQuarantined
		if !res.AccountingOK {
			rep.AccountingErrors++
		}
		if res.Mode != "final" {
			rep.Kills++
			rep.SpecsKilled += res.SpecsAtKill
			rep.CkptsKilled += res.CkptsAtKill
			prevSpecs = res.SpecsAtKill
		}
		if finalRep != nil {
			rep.FinalReport = finalRep
		}
		logf(kc.Log, "kill9: cycle %d (%s): submitted=%d done=%d specsAtKill=%d ckptsAtKill=%d tmpAtKill=%d bootRecovered=%d bootQuarantined=%d resumed=%d restarted=%d",
			cycle, res.Mode, res.Submitted, res.Done, res.SpecsAtKill, res.CkptsAtKill, res.TmpAtKill,
			res.BootRecovered, res.BootQuarantined, res.ResumedDone, res.RestartedDone)
	}

	if entries, err := os.ReadDir(kc.Server.StateDir); err == nil {
		for _, ent := range entries {
			if ent.IsDir() {
				continue // quarantine/ is kept for inspection by design
			}
			name := ent.Name()
			if strings.HasSuffix(name, ".spec.json") || strings.HasSuffix(name, ".ckpt") || strings.HasSuffix(name, ".tmp") {
				rep.LeftoverStateFiles++
			}
		}
	}

	_, mismatches, _ := ledger.stats()
	rep.HashMismatches = mismatches
	for _, it := range items {
		if it.Panic {
			continue // designed to fail: never produces a hash
		}
		if _, ok := ledger.hashFor(it.Key); !ok {
			rep.UnresolvedKeys++
		}
	}

	rep.evaluate()
	return rep, nil
}

// evaluate fills the kill9 assertions and the pass verdict.
func (r *Kill9Report) evaluate() {
	add := func(name string, ok bool, format string, args ...any) {
		r.Assertions = append(r.Assertions, Assertion{Name: name, Ok: ok, Detail: fmt.Sprintf(format, args...)})
	}
	add("kill9-cycles-exercised", r.Kills >= 1 && r.SpecsKilled >= 1,
		"kills=%d specs on disk across kills=%d (a kill with zero persisted jobs proves nothing)",
		r.Kills, r.SpecsKilled)
	add("recovered-accounting", r.AccountingErrors == 0,
		"boots where recovered+quarantined != specs at kill: %d of %d cycles",
		r.AccountingErrors, len(r.Cycles))
	add("zero-lost-jobs", r.UnresolvedKeys == 0,
		"non-panic plan keys with no terminal StateHash: %d", r.UnresolvedKeys)
	add("hash-consistency", r.HashMismatches == 0,
		"mismatches=%d (resumed=%d restarted=%d, reference keys=%d)",
		r.HashMismatches, r.TotalResumed, r.TotalRestarted, r.ReferenceKeys)
	// A file named *.ckpt (not *.tmp) passed the whole durable-write
	// protocol before the kill, so every one present at a kill must
	// resume bit-exactly at a later boot — none may quarantine.
	add("checkpoint-resume-exercised", r.CkptsKilled == 0 || r.TotalResumed >= 1,
		"complete checkpoints killed=%d, resumed completions=%d", r.CkptsKilled, r.TotalResumed)
	add("state-dir-drained", r.LeftoverStateFiles == 0,
		"persisted job files after the final graceful stop: %d", r.LeftoverStateFiles)
	add("final-slo", r.FinalReport != nil && r.FinalReport.Pass,
		"final cycle report pass=%v", r.FinalReport != nil && r.FinalReport.Pass)

	r.Pass = true
	for _, a := range r.Assertions {
		if !a.Ok {
			r.Pass = false
		}
	}
}

// runKill9Cycle boots the server, checks crash accounting against the
// previous kill's census, resolves recovered jobs, runs the plan, and
// — on non-final cycles — SIGKILLs the server per the cycle's mode.
func runKill9Cycle(ctx context.Context, proc *ServerProc, kc Kill9Config, items []Item, ledger *hashLedger, panicKeys map[string]struct{}, rng *stats.RNG, cycle, prevSpecs int) (Kill9Cycle, *Report, error) {
	res := Kill9Cycle{Cycle: cycle}
	final := cycle == kc.Cycles-1
	switch {
	case final:
		res.Mode = "final"
	case cycle%2 == 0:
		res.Mode = "early-kill"
	default:
		res.Mode = "drain-kill"
	}
	// Draw the cycle's dice up front so the choreography is a pure
	// function of the seed regardless of which branches run.
	earlyDelay := kc.KillMin + time.Duration(rng.Uniform(0, float64(kc.KillMax-kc.KillMin)))
	drainJitter := time.Duration(rng.Uniform(0, float64(20*time.Millisecond)))
	res.KillDelay = earlyDelay

	if err := proc.Start(ctx); err != nil {
		return res, nil, err
	}
	c := client.New(proc.URL())

	health, err := c.Health(ctx)
	if err != nil {
		return res, nil, fmt.Errorf("health after boot: %w", err)
	}
	res.BootRecovered = health.JobsRecovered
	res.BootQuarantined = health.JobsQuarantined
	res.AccountingOK = true
	if prevSpecs >= 0 {
		accounted := res.BootRecovered + res.BootQuarantined
		res.AccountingOK = accounted == uint64(prevSpecs)
		res.AccountingDetail = fmt.Sprintf("recovered(%d) + quarantined(%d) = %d vs %d spec files at kill",
			res.BootRecovered, res.BootQuarantined, accounted, prevSpecs)
	}

	// The drain-kill mode attacks the jobs this boot just recovered:
	// they are the only work guaranteed to be running fresh (the kill
	// erased the result cache, but a prior cycle's early kill left
	// their specs on disk), so the SIGTERM catches them mid-run and
	// the SIGKILL races their checkpoint writes. It submits nothing.
	if res.Mode == "drain-kill" {
		awaitAnyJobRunning(ctx, c, 30*time.Second)
		if err := proc.Signal(syscall.SIGTERM); err != nil {
			return res, nil, err
		}
		// Kill the moment the first complete checkpoint lands: that
		// ckpt survived the full durable protocol (it must resume at a
		// later boot), while sibling writes still in their *.tmp phase
		// are torn by the kill.
		awaitCheckpointFiles(ctx, proc.StateDir, 20*time.Second)
		time.Sleep(drainJitter)
		if err := proc.Kill(); err != nil {
			return res, nil, err
		}
		res.SpecsAtKill, res.CkptsAtKill, res.TmpAtKill = censusStateDir(proc.StateDir)
		return res, nil, nil
	}

	rs, err := resolveRecovered(ctx, c, ledger, make(map[string]struct{}), panicKeys)
	if err != nil {
		return res, nil, err
	}
	res.Recovered, res.ResumedDone, res.RestartedDone, res.PanicFailed = rs.Recovered, rs.ResumedDone, rs.RestartedDone, rs.PanicFailed

	// The kill erases the in-memory cache, so "already cached" keys
	// cannot be predicted across cycles; duplicate-rate is only gated
	// on the final (undisturbed) report, via precached from this boot's
	// recovered completions — none on a fresh dir, all re-executed ones
	// after a kill.
	precached := make(map[string]struct{})
	if final {
		for _, info := range mustJobs(ctx, c) {
			if info.Result != nil {
				precached[info.Key] = struct{}{}
			}
		}
	}

	runCfg := kc.Load
	runCfg.SLO.AllowSuspended = !final
	r := newRunner(c, runCfg, ledger)

	runDone := make(chan struct{})
	t0 := time.Now()
	go func() {
		defer close(runDone)
		r.runPlan(ctx, items)
	}()

	if !final {
		// early-kill: SIGKILL a seeded delay into the submission storm
		// — when the delay lands inside a persistSpec window (widened
		// by -durable-delay), the kill tears a durable write in
		// progress.
		select {
		case <-time.After(earlyDelay):
		case <-runDone:
		case <-ctx.Done():
		}
		r.halt.Store(true)
		if err := proc.Kill(); err != nil {
			return res, nil, err
		}
		res.SpecsAtKill, res.CkptsAtKill, res.TmpAtKill = censusStateDir(proc.StateDir)
	}
	<-runDone
	wall := time.Since(t0)

	cycleRep := r.report(items, wall, precached)
	res.Submitted = cycleRep.Submitted
	res.Done = cycleRep.Done
	res.Suspended = cycleRep.Suspended
	res.Interrupted = cycleRep.Interrupted

	if !final {
		return res, nil, nil
	}
	if err := proc.Stop(30 * time.Second); err != nil {
		return res, nil, err
	}
	cycleRep.evaluate(runCfg.SLO)
	return res, cycleRep, nil
}

// mustJobs lists the server's jobs, tolerating errors (used only to
// seed the duplicate-rate expectation; an error just means none).
func mustJobs(ctx context.Context, c *client.Client) []api.JobInfo {
	infos, err := c.Jobs(ctx)
	if err != nil {
		return nil
	}
	return infos
}

// awaitAnyJobRunning polls the job list until at least one job is in
// the running state (a recovered job picked up by a worker), every job
// already reached a terminal state (nothing left to drain — the cycle
// degenerates to a plain kill), or the timeout passes.
func awaitAnyJobRunning(ctx context.Context, c *client.Client, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		infos, err := c.Jobs(ctx)
		if err != nil {
			return
		}
		live := 0
		for _, info := range infos {
			switch info.State {
			case jobqueue.StateRunning:
				return
			case jobqueue.StateQueued:
				live++
			}
		}
		if live == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// awaitCheckpointFiles polls the state dir until a complete checkpoint
// file appears (one whose durable write finished — it must resume at a
// later boot), no spec files remain (the drain completed everything
// without suspending), or the timeout passes.
func awaitCheckpointFiles(ctx context.Context, dir string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if m, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(m) > 0 {
			return
		}
		if m, _ := filepath.Glob(filepath.Join(dir, "*.spec.json")); len(m) == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// censusStateDir counts the persisted state files in dir at one
// instant: complete spec files, complete checkpoints, and in-flight
// durable-write temporaries. Subdirectories (quarantine/) are skipped.
func censusStateDir(dir string) (specs, ckpts, tmps int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, 0
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			tmps++
		case strings.HasSuffix(name, ".spec.json"):
			specs++
		case strings.HasSuffix(name, ".ckpt"):
			ckpts++
		}
	}
	return specs, ckpts, tmps
}
