package loadgen

import (
	"fmt"
	"math"

	"peas/internal/metrics"
)

// SLO is the pass/fail contract a load run is gated on. Zero-valued
// latency bounds are disabled; the duplicate-rate tolerance defaults
// to 0.02 absolute.
type SLO struct {
	// MaxSubmitP99Seconds bounds the 99th-percentile submit latency
	// (request to 2xx/terminal response, including retries).
	MaxSubmitP99Seconds float64 `json:"maxSubmitP99Seconds,omitempty"`
	// MaxE2EP99Seconds bounds the 99th-percentile end-to-end latency
	// (submit to observed terminal state).
	MaxE2EP99Seconds float64 `json:"maxE2EP99Seconds,omitempty"`
	// DuplicateRateTolerance is the allowed absolute deviation between
	// the observed coalesced+cached rate and the planned duplicate rate.
	DuplicateRateTolerance float64 `json:"duplicateRateTolerance,omitempty"`
	// AllowSuspended accepts suspended terminal states (soak cycles
	// drain the server on purpose; a plain load run treats suspension
	// as a lost job).
	AllowSuspended bool `json:"allowSuspended,omitempty"`
	// CheckLeaks asserts the service came out of the run clean: no
	// orphaned workers (in-flight and queue depth drained to zero) and
	// no goroutine growth beyond slack. The cancellation storm sets it;
	// it requires the runner to snapshot /healthz before and after.
	CheckLeaks bool `json:"checkLeaks,omitempty"`
}

func (s SLO) withDefaults() SLO {
	if s.DuplicateRateTolerance <= 0 {
		s.DuplicateRateTolerance = 0.02
	}
	return s
}

// LatencySummary is the HDR-histogram digest the report carries.
type LatencySummary struct {
	Count       uint64  `json:"count"`
	MeanSeconds float64 `json:"meanSeconds"`
	P50Seconds  float64 `json:"p50Seconds"`
	P90Seconds  float64 `json:"p90Seconds"`
	P99Seconds  float64 `json:"p99Seconds"`
	MaxSeconds  float64 `json:"maxSeconds"`
}

func summarize(h *metrics.Histogram) LatencySummary {
	qs := h.Quantiles(0.50, 0.90, 0.99)
	return LatencySummary{
		Count:       h.Count(),
		MeanSeconds: h.Mean(),
		P50Seconds:  qs[0],
		P90Seconds:  qs[1],
		P99Seconds:  qs[2],
		MaxSeconds:  h.Max(),
	}
}

// Assertion is one pass/fail SLO check with its evidence.
type Assertion struct {
	Name   string `json:"name"`
	Ok     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Report is the machine-readable outcome of one load run. Every field
// a CI gate needs is here; Pass is the conjunction of all assertions.
type Report struct {
	// Workload identity.
	Seed            int64   `json:"seed"`
	Mode            string  `json:"mode"`
	Jobs            int     `json:"jobs"`
	Concurrency     int     `json:"concurrency,omitempty"`
	RateHz          float64 `json:"rateHz,omitempty"`
	KeyMultisetHash string  `json:"keyMultisetHash"`
	DistinctKeys    int     `json:"distinctKeys"`

	// Planned vs observed duplicate mix.
	PlannedDuplicates     int     `json:"plannedDuplicates"`
	PlannedDuplicateRate  float64 `json:"plannedDuplicateRate"`
	ObservedDuplicateRate float64 `json:"observedDuplicateRate"`
	// PlannedPanicJobs counts the injected-panic submissions in the
	// plan; each is expected to fail (panic isolation) and is tallied in
	// PanicFailed, never in Failed.
	PlannedPanicJobs int `json:"plannedPanicJobs,omitempty"`
	// PlannedCancels counts the submissions the runner cancelled at a
	// seeded lifecycle point; each must land cancelled (Cancelled) or —
	// when the cancel lost the race — done (CancelRacedDone).
	PlannedCancels int `json:"plannedCancels,omitempty"`
	// PlannedHangJobs counts the injected-hang submissions; each must be
	// preempted by the server watchdog (HangPreempted).
	PlannedHangJobs int `json:"plannedHangJobs,omitempty"`
	// PlannedDeadlineJobs counts the unmeetable-deadline submissions;
	// each must be killed by enforcement — DeadlineExceeded after
	// admission or DeadlineRejected at the door — never completed.
	PlannedDeadlineJobs int `json:"plannedDeadlineJobs,omitempty"`

	// Submission outcomes.
	Submitted     int `json:"submitted"`
	Accepted      int `json:"accepted"`
	Coalesced     int `json:"coalesced"`
	Cached        int `json:"cached"`
	SubmitRetries int `json:"submitRetries"`
	Rejected      int `json:"rejected"`

	// Terminal outcomes.
	Done           int `json:"done"`
	Failed         int `json:"failed"`
	PanicFailed    int `json:"panicFailed,omitempty"`
	Suspended      int `json:"suspended"`
	Interrupted    int `json:"interrupted"`
	TimedOut       int `json:"timedOut"`
	HashMismatches int `json:"hashMismatches"`
	HashedKeys     int `json:"hashedKeys"`
	// Cancellation and enforcement outcomes. CancelRacedDone counts
	// planned cancels that lost the race to completion (legitimate);
	// CancelCollateral counts coalesced duplicates that were terminated
	// because another item cancelled their shared primary job (reported,
	// never a failure).
	Cancelled        int `json:"cancelled,omitempty"`
	CancelRacedDone  int `json:"cancelRacedDone,omitempty"`
	CancelCollateral int `json:"cancelCollateral,omitempty"`
	HangPreempted    int `json:"hangPreempted,omitempty"`
	DeadlineExceeded int `json:"deadlineExceeded,omitempty"`
	DeadlineRejected int `json:"deadlineRejected,omitempty"`

	// Service hygiene, populated when SLO.CheckLeaks is set: goroutine
	// counts from /healthz before the run and after a post-run settle,
	// plus the pool's final in-flight and queue-depth gauges.
	GoroutinesBefore int `json:"goroutinesBefore,omitempty"`
	GoroutinesAfter  int `json:"goroutinesAfter,omitempty"`
	FinalInFlight    int `json:"finalInFlight"`
	FinalQueueDepth  int `json:"finalQueueDepth"`

	// Latency and throughput.
	WallSeconds          float64        `json:"wallSeconds"`
	ThroughputJobsPerSec float64        `json:"throughputJobsPerSec"`
	SubmitLatency        LatencySummary `json:"submitLatency"`
	E2ELatency           LatencySummary `json:"e2eLatency"`

	Assertions []Assertion `json:"assertions"`
	Pass       bool        `json:"pass"`
}

// evaluate runs the SLO assertions over the collected outcomes and
// fills Assertions/Pass.
func (r *Report) evaluate(slo SLO) {
	slo = slo.withDefaults()
	add := func(name string, ok bool, format string, args ...any) {
		r.Assertions = append(r.Assertions, Assertion{
			Name: name, Ok: ok, Detail: fmt.Sprintf(format, args...),
		})
	}

	lost := r.Rejected + r.TimedOut + r.Interrupted
	if !slo.AllowSuspended {
		lost += r.Suspended
	}
	add("zero-lost-jobs", lost == 0,
		"rejected=%d timedOut=%d interrupted=%d suspended=%d (allowSuspended=%v)",
		r.Rejected, r.TimedOut, r.Interrupted, r.Suspended, slo.AllowSuspended)
	add("zero-failed-jobs", r.Failed == 0, "failed=%d (expected panic failures tallied separately: %d)", r.Failed, r.PanicFailed)
	if r.PlannedPanicJobs > 0 && !slo.AllowSuspended {
		// Only gated on undisturbed runs: a cycle killed mid-flight may
		// never have submitted its panic jobs.
		add("panic-containment", r.PanicFailed == r.PlannedPanicJobs,
			"panicFailed=%d of %d planned injected-panic jobs landed failed (pool survived: surrounding jobs completed)",
			r.PanicFailed, r.PlannedPanicJobs)
	}
	if r.PlannedCancels > 0 && !slo.AllowSuspended {
		// Best-effort cancellation has exactly two legitimate endings per
		// planned cancel: the job lands cancelled, or completion won the
		// race and it lands done. Anything else means a cancel was lost.
		add("cancel-accounting", r.Cancelled+r.CancelRacedDone == r.PlannedCancels,
			"cancelled=%d + racedDone=%d of %d planned cancels (collateral coalesced terminations: %d)",
			r.Cancelled, r.CancelRacedDone, r.PlannedCancels, r.CancelCollateral)
	}
	if r.PlannedHangJobs > 0 && !slo.AllowSuspended {
		add("hang-containment", r.HangPreempted == r.PlannedHangJobs,
			"hangPreempted=%d of %d planned hang jobs were watchdog-preempted",
			r.HangPreempted, r.PlannedHangJobs)
	}
	if r.PlannedDeadlineJobs > 0 && !slo.AllowSuspended {
		add("deadline-enforcement", r.DeadlineExceeded+r.DeadlineRejected == r.PlannedDeadlineJobs,
			"deadlineExceeded=%d + fastRejected=%d of %d planned unmeetable-deadline jobs",
			r.DeadlineExceeded, r.DeadlineRejected, r.PlannedDeadlineJobs)
	}
	if slo.CheckLeaks {
		add("zero-orphaned-workers", r.FinalInFlight == 0 && r.FinalQueueDepth == 0,
			"post-run inFlight=%d queueDepth=%d (all cancelled/killed work released its worker)",
			r.FinalInFlight, r.FinalQueueDepth)
		// Goroutine counts are noisy (GC workers, connection pools), so
		// the gate allows fixed slack over the pre-run baseline; a real
		// per-job leak in a storm of dozens of jobs blows far past it.
		const slack = 16
		add("no-goroutine-leak", r.GoroutinesAfter <= r.GoroutinesBefore+slack,
			"goroutines before=%d after=%d (slack %d)",
			r.GoroutinesBefore, r.GoroutinesAfter, slack)
	}
	add("hash-consistency", r.HashMismatches == 0,
		"mismatches=%d over %d hashed keys", r.HashMismatches, r.HashedKeys)

	dev := math.Abs(r.ObservedDuplicateRate - r.PlannedDuplicateRate)
	add("duplicate-rate", dev <= slo.DuplicateRateTolerance,
		"observed coalesced+cached rate %.4f vs planned %.4f (|Δ|=%.4f, tol %.4f)",
		r.ObservedDuplicateRate, r.PlannedDuplicateRate, dev, slo.DuplicateRateTolerance)

	if slo.MaxSubmitP99Seconds > 0 {
		add("submit-p99", r.SubmitLatency.P99Seconds <= slo.MaxSubmitP99Seconds,
			"p99 %.4fs vs bound %.4fs", r.SubmitLatency.P99Seconds, slo.MaxSubmitP99Seconds)
	}
	if slo.MaxE2EP99Seconds > 0 {
		add("e2e-p99", r.E2ELatency.P99Seconds <= slo.MaxE2EP99Seconds,
			"p99 %.4fs vs bound %.4fs", r.E2ELatency.P99Seconds, slo.MaxE2EP99Seconds)
	}

	r.Pass = true
	for _, a := range r.Assertions {
		if !a.Ok {
			r.Pass = false
		}
	}
}
