package loadgen

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"peas/internal/client"
	"peas/internal/experiment"
	"peas/internal/jobqueue"
)

// ServerProc manages one peas-serve child process for soak cycles.
type ServerProc struct {
	// Bin is the path to the peas-serve binary.
	Bin string
	// Addr is the listen address (0 = "127.0.0.1:18742").
	Addr string
	// StateDir enables drain persistence; the soak requires it.
	StateDir string
	// Workers and Queue configure the pool (0 = 2 and 64).
	Workers int
	Queue   int
	// DrainBudget is the server's -drain flag (0 = 150ms). The soak
	// keeps it short on purpose: a mid-cycle SIGTERM must outpace the
	// long jobs so they checkpoint-suspend instead of finishing.
	DrainBudget time.Duration
	// CheckpointEvery is the drain-checkpoint cadence in simulated
	// seconds (0 = 50: long jobs reach a suspend boundary within
	// milliseconds of wall time).
	CheckpointEvery float64
	// DurableDelay, when positive, is passed as the server's
	// -durable-delay flag: every state-store disk operation sleeps this
	// long, widening the window a SIGKILL can land inside a durable
	// write (the kill9 soak's whole point).
	DurableDelay time.Duration
	// Log receives the child's stdout/stderr (nil = discard).
	Log io.Writer

	cmd *exec.Cmd
}

func (s *ServerProc) withDefaults() {
	if s.Addr == "" {
		s.Addr = "127.0.0.1:18742"
	}
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.Queue <= 0 {
		s.Queue = 64
	}
	if s.DrainBudget <= 0 {
		s.DrainBudget = 150 * time.Millisecond
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 50
	}
}

// URL returns the service base URL.
func (s *ServerProc) URL() string { return "http://" + s.Addr }

// Start launches the child and waits for /healthz to answer.
func (s *ServerProc) Start(ctx context.Context) error {
	s.withDefaults()
	if s.Bin == "" {
		return fmt.Errorf("loadgen: soak requires a peas-serve binary path")
	}
	if s.StateDir == "" {
		return fmt.Errorf("loadgen: soak requires a state dir")
	}
	args := []string{
		"-addr", s.Addr,
		"-workers", strconv.Itoa(s.Workers),
		"-queue", strconv.Itoa(s.Queue),
		"-state-dir", s.StateDir,
		"-drain", s.DrainBudget.String(),
		"-checkpoint-every", strconv.FormatFloat(s.CheckpointEvery, 'g', -1, 64),
	}
	if s.DurableDelay > 0 {
		args = append(args, "-durable-delay", s.DurableDelay.String())
	}
	cmd := exec.Command(s.Bin, args...)
	cmd.Stdout = s.Log
	cmd.Stderr = s.Log
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("loadgen: starting %s: %w", s.Bin, err)
	}
	s.cmd = cmd

	c := client.New(s.URL())
	deadline := time.Now().Add(15 * time.Second)
	for {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		_, err := c.Health(hctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return fmt.Errorf("loadgen: server at %s not healthy in time: %w", s.Addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Stop SIGTERMs the child and waits for it to exit (the server drains:
// running jobs get DrainBudget, then checkpoint-suspend). A non-zero
// exit or a wait beyond the timeout is an error.
func (s *ServerProc) Stop(timeout time.Duration) error {
	if s.cmd == nil || s.cmd.Process == nil {
		return fmt.Errorf("loadgen: server not running")
	}
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("loadgen: SIGTERM: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		s.cmd = nil
		if err != nil {
			return fmt.Errorf("loadgen: server exited non-zero after SIGTERM: %w", err)
		}
		return nil
	case <-time.After(timeout):
		_ = s.cmd.Process.Kill()
		<-done
		s.cmd = nil
		return fmt.Errorf("loadgen: server did not drain within %s; killed", timeout)
	}
}

// Signal sends sig to the running child without waiting for it.
func (s *ServerProc) Signal(sig os.Signal) error {
	if s.cmd == nil || s.cmd.Process == nil {
		return fmt.Errorf("loadgen: server not running")
	}
	return s.cmd.Process.Signal(sig)
}

// Kill SIGKILLs the child — no drain, no checkpoint, the crash the
// kill9 soak exists to inflict — and reaps it. The child's non-zero
// exit is the expected outcome, not an error; a child that already
// exited (e.g. a SIGTERM drain finishing before the kill landed) is
// reaped the same way.
func (s *ServerProc) Kill() error {
	if s.cmd == nil || s.cmd.Process == nil {
		return fmt.Errorf("loadgen: server not running")
	}
	_ = s.cmd.Process.Kill()
	_ = s.cmd.Wait()
	s.cmd = nil
	return nil
}

// SoakConfig configures a drain/restart soak.
type SoakConfig struct {
	// Server is the managed peas-serve instance template.
	Server ServerProc
	// Cycles is the number of submit cycles (minimum 2). Every cycle
	// but the last ends in a mid-run SIGTERM while the plan's
	// long-horizon jobs are running; the final cycle runs to completion
	// and is evaluated against the SLO.
	Cycles int
	// Load is the per-cycle load configuration. Mix.LongJobs is forced
	// to at least 2 — they are the guaranteed drain victims.
	Load Config
	// CycleTimeout bounds one cycle (0 = 5 min).
	CycleTimeout time.Duration
	// Log receives harness progress lines (nil = discard).
	Log io.Writer
}

// CycleResult summarizes one soak cycle.
type CycleResult struct {
	Cycle int `json:"cycle"`
	// Recovered is the number of persisted jobs the fresh server
	// re-admitted at boot; ResumedDone of them completed with a drain
	// checkpoint (bit-exact resume), RestartedDone from their spec.
	Recovered     int `json:"recovered"`
	ResumedDone   int `json:"resumedDone"`
	RestartedDone int `json:"restartedDone"`
	// Drained reports that the mid-cycle SIGTERM fired while all long
	// jobs were observed running (the intended drain victim state).
	Drained bool `json:"drained"`
	// Submitted/Done/Suspended/Interrupted are the cycle's own
	// submission outcomes (not the recovered jobs').
	Submitted   int `json:"submitted"`
	Done        int `json:"done"`
	Suspended   int `json:"suspended"`
	Interrupted int `json:"interrupted"`
}

// SoakReport is the machine-readable soak outcome.
type SoakReport struct {
	Cycles          []CycleResult `json:"cycles"`
	KeyMultisetHash string        `json:"keyMultisetHash"`
	// ReferenceKeys counts plan keys whose StateHash was computed
	// in-process before any server ran — the independent ground truth
	// resumed jobs are checked against.
	ReferenceKeys  int `json:"referenceKeys"`
	TotalSuspended int `json:"totalSuspended"`
	TotalResumed   int `json:"totalResumed"`
	RecoveredFails int `json:"recoveredFails"`
	HashMismatches int `json:"hashMismatches"`
	UnresolvedKeys int `json:"unresolvedKeys"`
	// LeftoverStateFiles counts persisted job files after the final
	// graceful stop; anything non-zero means a job was abandoned.
	LeftoverStateFiles int `json:"leftoverStateFiles"`

	FinalReport *Report     `json:"finalReport"`
	Assertions  []Assertion `json:"assertions"`
	Pass        bool        `json:"pass"`
}

func (sc SoakConfig) withDefaults() SoakConfig {
	if sc.Cycles < 2 {
		sc.Cycles = 2
	}
	if sc.CycleTimeout <= 0 {
		sc.CycleTimeout = 5 * time.Minute
	}
	if sc.Load.Mix.LongJobs < 2 {
		sc.Load.Mix.LongJobs = 2
	}
	return sc
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// Soak runs the drain/restart soak: cycles of the same seeded plan
// against a managed peas-serve, each non-final cycle SIGTERMed while
// its long jobs run (forcing checkpoint-suspend), each next cycle
// first resolving the recovered jobs and checking that resumed runs
// reproduce the independently computed reference StateHash. The final
// cycle runs undisturbed and is gated on the SLO.
func Soak(ctx context.Context, sc SoakConfig) (*SoakReport, error) {
	sc = sc.withDefaults()
	items, err := Plan(sc.Load.Mix)
	if err != nil {
		return nil, err
	}

	ledger := newHashLedger()
	rep := &SoakReport{KeyMultisetHash: KeyMultisetHash(items)}

	// Reference pass: compute the long jobs' ground-truth hashes
	// in-process, before any server runs. A resumed job that diverges
	// from an uninterrupted run of the same spec is then caught as a
	// ledger mismatch, not silently self-consistent.
	for _, it := range items {
		if !it.Long {
			continue
		}
		if _, ok := ledger.hashFor(it.Key); ok {
			continue
		}
		stats, err := experiment.Run(it.Spec.RunConfig())
		if err != nil {
			return nil, fmt.Errorf("loadgen: reference run: %w", err)
		}
		if stats.FinalState == nil {
			return nil, fmt.Errorf("loadgen: reference run captured no final state")
		}
		ledger.observe(it.Key, stats.FinalState.StateHashHex(), false)
		rep.ReferenceKeys++
	}
	logf(sc.Log, "soak: plan %d items (%d distinct keys), %d reference hashes",
		len(items), distinctKeys(items), rep.ReferenceKeys)

	proc := sc.Server
	stateDir := proc.StateDir
	for cycle := 0; cycle < sc.Cycles; cycle++ {
		cctx, cancel := context.WithTimeout(ctx, sc.CycleTimeout)
		res, finalRep, err := runSoakCycle(cctx, &proc, sc, items, ledger, cycle)
		cancel()
		if err != nil {
			if proc.cmd != nil {
				_ = proc.cmd.Process.Kill()
				_ = proc.cmd.Wait()
			}
			return nil, fmt.Errorf("loadgen: cycle %d: %w", cycle, err)
		}
		rep.Cycles = append(rep.Cycles, res)
		rep.TotalSuspended += res.Suspended
		rep.TotalResumed += res.ResumedDone
		if finalRep != nil {
			rep.FinalReport = finalRep
		}
		logf(sc.Log, "soak: cycle %d: submitted=%d done=%d suspended=%d interrupted=%d recovered=%d resumed=%d",
			cycle, res.Submitted, res.Done, res.Suspended, res.Interrupted, res.Recovered, res.ResumedDone)
	}

	// Count abandoned persisted jobs after the final graceful stop.
	if entries, err := os.ReadDir(stateDir); err == nil {
		for _, ent := range entries {
			if strings.HasSuffix(ent.Name(), ".spec.json") || strings.HasSuffix(ent.Name(), ".ckpt") {
				rep.LeftoverStateFiles++
			}
		}
	}

	_, mismatches, _ := ledger.stats()
	rep.HashMismatches = mismatches
	unresolved := make(map[string]struct{})
	for _, it := range items {
		// Panic jobs are designed to fail — they never produce a hash.
		if it.Panic {
			continue
		}
		if _, ok := ledger.hashFor(it.Key); !ok {
			unresolved[it.Key] = struct{}{}
		}
	}
	rep.UnresolvedKeys = len(unresolved)

	rep.evaluate(sc)
	return rep, nil
}

// evaluate fills the soak assertions and the pass verdict.
func (r *SoakReport) evaluate(sc SoakConfig) {
	add := func(name string, ok bool, format string, args ...any) {
		r.Assertions = append(r.Assertions, Assertion{Name: name, Ok: ok, Detail: fmt.Sprintf(format, args...)})
	}
	add("drain-suspension-exercised", r.TotalSuspended >= 1 || r.TotalResumed >= 1,
		"suspended=%d resumed=%d across %d cycles", r.TotalSuspended, r.TotalResumed, len(r.Cycles))
	add("resumed-jobs-reproduce-hash", r.TotalResumed >= 1 && r.HashMismatches == 0,
		"resumed=%d hashMismatches=%d (reference keys: %d)", r.TotalResumed, r.HashMismatches, r.ReferenceKeys)
	add("zero-lost-jobs", r.UnresolvedKeys == 0 && r.RecoveredFails == 0,
		"unresolvedKeys=%d recoveredFails=%d", r.UnresolvedKeys, r.RecoveredFails)
	add("clean-final-drain", r.LeftoverStateFiles == 0,
		"leftover persisted job files: %d", r.LeftoverStateFiles)
	add("final-cycle-slo", r.FinalReport != nil && r.FinalReport.Pass,
		"final cycle report pass=%v", r.FinalReport != nil && r.FinalReport.Pass)

	r.Pass = true
	for _, a := range r.Assertions {
		if !a.Ok {
			r.Pass = false
		}
	}
}

// runSoakCycle boots the server, resolves recovered jobs, runs the
// plan, and — on non-final cycles — SIGTERMs the server while the long
// jobs are running. It returns the final cycle's SLO report when this
// is the last cycle.
func runSoakCycle(ctx context.Context, proc *ServerProc, sc SoakConfig, items []Item, ledger *hashLedger, cycle int) (CycleResult, *Report, error) {
	res := CycleResult{Cycle: cycle}
	final := cycle == sc.Cycles-1

	if err := proc.Start(ctx); err != nil {
		return res, nil, err
	}
	c := client.New(proc.URL())

	// Resolve jobs the fresh server recovered from the state dir
	// before adding new load, so every prior cycle's in-flight work is
	// accounted for (and so the final cycle knows which keys are
	// already cached).
	precached := make(map[string]struct{})
	rs, err := resolveRecovered(ctx, c, ledger, precached, nil)
	if err != nil {
		return res, nil, err
	}
	res.Recovered, res.ResumedDone, res.RestartedDone = rs.Recovered, rs.ResumedDone, rs.RestartedDone

	runCfg := sc.Load
	if final {
		runCfg.SLO.AllowSuspended = false
	} else {
		// Mid-cycle outcomes are bookkeeping, not the SLO gate.
		runCfg.SLO.AllowSuspended = true
	}
	r := newRunner(c, runCfg, ledger)

	runDone := make(chan struct{})
	t0 := time.Now()
	go func() {
		defer close(runDone)
		r.runPlan(ctx, items)
	}()

	if !final {
		res.Drained = awaitLongJobsRunning(ctx, c, items, runDone)
		r.halt.Store(true)
		if err := proc.Stop(30 * time.Second); err != nil {
			return res, nil, err
		}
	}
	<-runDone
	wall := time.Since(t0)

	cycleRep := r.report(items, wall, precached)
	res.Submitted = cycleRep.Submitted
	res.Done = cycleRep.Done
	res.Suspended = cycleRep.Suspended
	res.Interrupted = cycleRep.Interrupted

	if !final {
		return res, nil, nil
	}
	// Final cycle: nothing should be running after the plan completes,
	// so the graceful stop must drain cleanly.
	if err := proc.Stop(30 * time.Second); err != nil {
		return res, nil, err
	}
	cycleRep.evaluate(runCfg.SLO)
	return res, cycleRep, nil
}

// recoveredStats summarizes the recovered-job resolution at one boot.
type recoveredStats struct {
	// Recovered is the job count the fresh server re-admitted at boot.
	Recovered int
	// ResumedDone completed from a drain checkpoint; RestartedDone
	// completed from their spec alone.
	ResumedDone   int
	RestartedDone int
	// PanicFailed counts recovered jobs that failed but whose key is an
	// injected-panic spec: the expected outcome, not a loss.
	PanicFailed int
}

// resolveRecovered waits for every job the fresh server re-admitted at
// boot to reach a terminal state, feeding their hashes to the ledger.
// Keys of completed recovered jobs are added to precached: their
// results now sit in this server's cache. A failed recovered job is an
// error — unless its key is in panicKeys, where failing is the spec's
// whole purpose (injected panic, isolated by the pool).
func resolveRecovered(ctx context.Context, c *client.Client, ledger *hashLedger, precached map[string]struct{}, panicKeys map[string]struct{}) (recoveredStats, error) {
	var rs recoveredStats
	first := true
	for {
		infos, err := c.Jobs(ctx)
		if err != nil {
			return rs, fmt.Errorf("listing recovered jobs: %w", err)
		}
		if first {
			rs.Recovered = len(infos)
			first = false
		}
		pending := 0
		for _, info := range infos {
			switch info.State {
			case jobqueue.StateQueued, jobqueue.StateRunning:
				pending++
			}
		}
		if pending == 0 {
			for _, info := range infos {
				if info.State != jobqueue.StateDone || info.Result == nil {
					continue
				}
				ledger.observe(info.Key, info.Result.StateHash, info.Result.Resumed)
				precached[info.Key] = struct{}{}
				if info.Result.Resumed {
					rs.ResumedDone++
				} else {
					rs.RestartedDone++
				}
			}
			for _, info := range infos {
				if info.State != jobqueue.StateFailed {
					continue
				}
				if _, ok := panicKeys[info.Key]; ok {
					rs.PanicFailed++
					continue
				}
				return rs, fmt.Errorf("recovered job %s failed: %s", info.ID, info.Error)
			}
			return rs, nil
		}
		select {
		case <-ctx.Done():
			return rs, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// awaitLongJobsRunning polls the job list until every long-job key has
// a job in the running state — the moment the SIGTERM is guaranteed
// live drain victims — or the runner finishes first (nothing left to
// suspend; reported as an un-drained cycle). A 60s failsafe fires the
// drain regardless.
func awaitLongJobsRunning(ctx context.Context, c *client.Client, items []Item, runDone <-chan struct{}) bool {
	longKeys := make(map[string]struct{})
	for _, it := range items {
		if it.Long {
			longKeys[it.Key] = struct{}{}
		}
	}
	if len(longKeys) == 0 {
		return false
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		select {
		case <-runDone:
			return false
		case <-ctx.Done():
			return false
		case <-time.After(25 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			return false
		}
		infos, err := c.Jobs(ctx)
		if err != nil {
			return false
		}
		running := 0
		for _, info := range infos {
			if _, ok := longKeys[info.Key]; ok && info.State == jobqueue.StateRunning {
				running++
			}
		}
		if running == len(longKeys) {
			return true
		}
	}
}

// stateDirGlob lists the persisted job files in a state dir (exposed
// for the binary's diagnostics).
func stateDirGlob(dir string) []string {
	spec, _ := filepath.Glob(filepath.Join(dir, "*.spec.json"))
	ckpt, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	return append(spec, ckpt...)
}
