package loadgen

import (
	"context"
	"testing"
	"time"

	"peas/internal/jobqueue"
)

// TestPlanStormShape pins the structural invariants of a plan with the
// cancellation-storm knobs turned on: cancels are drawn only from
// unambiguous candidates, fault-injection items carry their faults, and
// the whole thing stays seed-deterministic down to the cancel timings.
func TestPlanStormShape(t *testing.T) {
	mix := Mix{
		Seed: 11, Jobs: 200, DuplicateRatio: 0.3,
		CancelFraction: 0.5, HangJobs: 2, DeadlineJobs: 2, LongJobs: 1,
	}
	items, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 205 {
		t.Fatalf("plan size %d, want 205 (200 normal + 2 hang + 2 deadline + 1 long)", len(items))
	}

	for i, it := range items {
		if it.Cancel {
			if it.Duplicate {
				t.Errorf("item %d: duplicate drawn as cancel candidate (outcome would be ambiguous)", i)
			}
			if it.Panic || it.Hang || it.Deadline > 0 {
				t.Errorf("item %d: fault-injection item drawn as cancel candidate", i)
			}
			if it.CancelAfter < 0 || it.CancelAfter >= 200*time.Millisecond {
				t.Errorf("item %d: cancel delay %v outside [0, 200ms)", i, it.CancelAfter)
			}
		}
		if it.Hang && !it.Spec.Hang {
			t.Errorf("item %d: hang item without Spec.Hang", i)
		}
		if it.Deadline > 0 {
			if it.Spec.DeadlineSeconds != it.Deadline {
				t.Errorf("item %d: Deadline %v but Spec.DeadlineSeconds %v", i, it.Deadline, it.Spec.DeadlineSeconds)
			}
			if it.Spec.Chaos != nil {
				t.Errorf("item %d: deadline job carries a chaos plan; it could not park a checkpoint", i)
			}
		}
	}
	if got := planHangJobs(items); got != 2 {
		t.Errorf("planned hang jobs %d, want 2", got)
	}
	if got := planDeadlineJobs(items); got != 2 {
		t.Errorf("planned deadline jobs %d, want 2", got)
	}

	// The draw rate should track the knob over the candidate population
	// (non-duplicate normal items plus long items).
	candidates := mix.Jobs - planDuplicates(items) + mix.LongJobs
	rate := float64(planCancels(items)) / float64(candidates)
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("cancel draw rate %.3f over %d candidates, far from configured 0.5", rate, candidates)
	}

	// Determinism extends to the cancel choices and timings.
	again, err := Plan(mix)
	if err != nil {
		t.Fatal(err)
	}
	if KeyMultisetHash(items) != KeyMultisetHash(again) {
		t.Fatal("storm plans with identical mixes diverge in key multiset")
	}
	for i := range items {
		if items[i].Cancel != again[i].Cancel || items[i].CancelAfter != again[i].CancelAfter {
			t.Fatalf("item %d: cancel draw differs across identical plans", i)
		}
	}
}

// TestRunCancellationStorm is the end-to-end robustness gate of this
// package: a closed-loop workload where a seeded fraction of jobs is
// cancelled at random lifecycle points while injected-hang jobs wedge
// workers and unmeetable-deadline jobs demand enforcement — all at
// once, against one live service. The SLO asserts full accounting
// (every planned cancel lands cancelled or raced-to-done, every hang is
// watchdog-preempted, every deadline is enforced), bit-exact hashes for
// everything that completed, and a service left clean: no orphaned
// workers, no goroutine growth.
func TestRunCancellationStorm(t *testing.T) {
	// The stall window must sit comfortably above the slowest legitimate
	// inter-beat gap — the big long-job deployments take hundreds of
	// milliseconds to set up under the race detector — while staying
	// small enough that hung workers are reclaimed within the test
	// budget. Truly hung jobs show zero beats, so 2s is still decisive.
	url := startService(t, jobqueue.Config{
		Workers: 4, QueueDepth: 64, CacheCap: 256,
		StateDir: t.TempDir(), CheckpointEvery: 200,
		StallWindow: 2 * time.Second,
	})

	cfg := Config{
		Mix: Mix{
			Seed: 777, Jobs: 30, DuplicateRatio: 0.2, FollowFraction: 0.3,
			CancelFraction: 0.4, HangJobs: 3, DeadlineJobs: 2, LongJobs: 2,
		},
		Mode:        ModeClosed,
		Concurrency: 8,
		// Cancels perturb the observed duplicate rate (a duplicate of a
		// cancelled key re-admits as accepted, resuming the parked
		// checkpoint), so the rate assertion is disabled; the hash ledger
		// still gates correctness.
		SLO: SLO{CheckLeaks: true, DuplicateRateTolerance: 1.0},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	rep, err := Run(ctx, url, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.PlannedCancels == 0 {
		t.Fatal("storm plan drew no cancels; the seed/knob combination is broken")
	}
	if rep.PlannedHangJobs != 3 || rep.PlannedDeadlineJobs != 2 {
		t.Fatalf("planned hang=%d deadline=%d, want 3/2", rep.PlannedHangJobs, rep.PlannedDeadlineJobs)
	}

	// Full cancellation accounting: nothing planned goes missing.
	if rep.Cancelled+rep.CancelRacedDone != rep.PlannedCancels {
		t.Errorf("cancelled=%d + racedDone=%d, want %d planned cancels (collateral=%d)",
			rep.Cancelled, rep.CancelRacedDone, rep.PlannedCancels, rep.CancelCollateral)
	}
	if rep.HangPreempted != rep.PlannedHangJobs {
		t.Errorf("hangPreempted=%d, want %d", rep.HangPreempted, rep.PlannedHangJobs)
	}
	if rep.DeadlineExceeded+rep.DeadlineRejected != rep.PlannedDeadlineJobs {
		t.Errorf("deadlineExceeded=%d + rejected=%d, want %d", rep.DeadlineExceeded, rep.DeadlineRejected, rep.PlannedDeadlineJobs)
	}
	if rep.Failed != 0 {
		t.Errorf("unexpected plain failures: %d", rep.Failed)
	}
	if rep.HashMismatches != 0 {
		t.Errorf("hash mismatches under cancellation: %d", rep.HashMismatches)
	}

	// The service came out the other side clean.
	if rep.FinalInFlight != 0 || rep.FinalQueueDepth != 0 {
		t.Errorf("post-storm inFlight=%d queueDepth=%d, want 0/0", rep.FinalInFlight, rep.FinalQueueDepth)
	}
	if !rep.Pass {
		t.Errorf("storm report failed its SLO: %+v", rep.Assertions)
	}
}
