// Package radio simulates the broadcast wireless medium the PEAS protocol
// runs over. It models what the paper's PARSEC/Motes substrate provided:
//
//   - range-limited broadcast with selectable per-packet transmission power
//     (paper §2: "each sensor node may vary its transmission power and
//     choose a power level to cover a circular area given a radius");
//   - finite link capacity (20 Kbps), so a 25-byte PROBE occupies the
//     channel for 10 ms;
//   - collisions: a listening node covered by two temporally overlapping
//     transmissions receives neither;
//   - optional i.i.d. packet loss (for the §4 loss-compensation study);
//   - optional fixed-transmission-power mode with a received-signal
//     threshold filter (paper §4).
//
// Energy is charged to the transmitter and to every listening node in
// range for the packet's airtime.
package radio

import (
	"fmt"
	"math"

	"peas/internal/geom"
	"peas/internal/sim"
	"peas/internal/stats"
)

// NodeID identifies a node on the medium; it is the node's index in the
// deployment.
type NodeID int

// Packet is a frame on the medium. Payload semantics belong to the
// protocol layer; the radio only needs the size for airtime and energy.
type Packet struct {
	From    NodeID
	Size    int     // bytes
	Range   float64 // requested coverage radius, meters
	Payload any
}

// Receiver is the protocol-facing endpoint for one node.
type Receiver interface {
	// Listening reports whether the node's radio is powered on. Sleeping
	// nodes return false and receive nothing.
	Listening() bool
	// Deliver hands a successfully received packet (with the measured
	// distance from the transmitter) to the protocol layer.
	Deliver(pkt Packet, dist float64)
}

// FaultDecision is the fate a FaultInjector assigns to one (frame,
// receiver) pair. The zero value is "deliver normally".
type FaultDecision struct {
	// Drop discards the frame before delivery (the airtime energy is
	// still charged: the bits were on the air, the payload was lost).
	Drop bool
	// Copies is how many extra duplicate deliveries to schedule, modelling
	// a duplicating channel or link-layer retransmissions.
	Copies int
	// Delay is extra latency in seconds added to the delivery (and to any
	// duplicates), modelling queueing or reordering: a delayed frame can
	// arrive after frames transmitted later.
	Delay float64
}

// FaultInjector decides, per (frame, receiver) pair, whether the chaos
// layer drops, duplicates or delays the delivery. Implementations must be
// deterministic functions of their own seeded RNG streams so faulted runs
// stay exactly reproducible. The medium consults the injector after the
// collision model: collisions are physics, injected faults come on top.
type FaultInjector interface {
	JudgeFrame(from, to NodeID) FaultDecision
}

// EnergySink receives per-packet energy charges. The node layer implements
// it on top of the battery model.
type EnergySink interface {
	// SpendTx charges the transmitting node for seconds of airtime.
	SpendTx(id NodeID, seconds float64)
	// SpendRx charges a listening node for seconds of airtime.
	SpendRx(id NodeID, seconds float64)
}

// Config sets the physical-layer parameters.
type Config struct {
	// BitsPerSecond is the raw channel capacity (paper: 20 Kbps).
	BitsPerSecond float64
	// MaxRange caps any requested transmission range (paper: 10 m).
	MaxRange float64
	// LossRate is an i.i.d. per-receiver drop probability in [0,1).
	LossRate float64
	// CollisionsEnabled turns the overlap-collision model on.
	CollisionsEnabled bool
	// CSMAEnabled makes transmitters carrier-sense: a node that can hear
	// an ongoing transmission defers its own until the channel clears,
	// plus a random backoff. Motes-class radios carrier-sense; without
	// it, a working node's multiple REPLYs (§4) collide with each other.
	CSMAEnabled bool
	// CSMABackoffMax is the maximum random deferral added after the
	// channel clears, in seconds. Zero selects 5 ms.
	CSMABackoffMax float64
	// FixedPower, when true, transmits every packet at MaxRange and lets
	// receivers apply a signal-strength threshold equivalent to the
	// requested Range (paper §4, "Nodes with fixed transmission power").
	FixedPower bool
	// Irregularity sets the degree of per-area signal-attenuation
	// irregularity in [0, 1): each ~5 m region draws a reception quality
	// q in [1-irr, 1+irr] and perceives transmitters at effective
	// distance dist/q (paper §4). Zero disables the model.
	Irregularity float64
}

// DefaultConfig returns the paper's physical layer: 20 Kbps, 10 m maximum
// range, collisions on, no extra random loss.
func DefaultConfig() Config {
	return Config{
		BitsPerSecond:     20000,
		MaxRange:          10,
		LossRate:          0,
		CollisionsEnabled: true,
		CSMAEnabled:       true,
		CSMABackoffMax:    0.005,
	}
}

// delivery is one pooled in-flight frame record. A single record serves
// every scheduled copy of a (frame, receiver) pair — fault-injected
// duplicates share it instead of allocating one closure per copy — and is
// returned to the medium's free list when the last copy lands.
type delivery struct {
	m      *Medium
	to     int32
	copies int32 // scheduled copies still to execute
	dist   float64
	pkt    Packet
	next   *delivery // free-list link
}

// runDelivery is the shared engine callback for every delivery record.
func runDelivery(a any) {
	d := a.(*delivery)
	m := d.m
	m.inflight--
	d.copies--
	m.deliver(int(d.to), d.pkt, d.dist)
	if d.copies <= 0 {
		d.pkt = Packet{} // drop the payload reference
		d.next = m.freeDel
		m.freeDel = d
	}
}

// deferral is one pooled carrier-sense retry record.
type deferral struct {
	m    *Medium
	pkt  Packet
	next *deferral // free-list link
}

// runDeferral is the shared engine callback for every deferral record.
func runDeferral(a any) {
	r := a.(*deferral)
	m := r.m
	pkt := r.pkt
	m.inflight--
	// Release before re-broadcasting: a renewed deferral reuses the record.
	r.pkt = Packet{}
	r.next = m.freeDef
	m.freeDef = r
	// The sender may have slept or died during the deferral; a powered-down
	// radio cannot resume the transmission.
	if snd := m.nodes[pkt.From]; snd == nil || !snd.Listening() {
		return
	}
	m.Broadcast(pkt)
}

// Medium is the shared broadcast channel.
type Medium struct {
	cfg     Config
	engine  *sim.Engine
	idx     *geom.Index
	rng     *stats.RNG
	nodes   []Receiver
	sink    EnergySink
	quality *qualityField // nil when irregularity is off
	busyEnd []sim.Time    // per-receiver: end of last reception overlapping now
	corrupt []bool        // per-receiver: current reception window corrupted
	freeDel *delivery     // delivery-record pool
	freeDef *deferral     // carrier-sense retry pool
	// inflight counts engine events the medium still owes: pending
	// deliveries and carrier-sense retries. The checkpoint subsystem only
	// snapshots when it is zero — a quiescent radio boundary — so frames
	// in flight never need to be serialized.
	inflight int

	// OnTransmit, when set, observes every frame put on the air. It fires
	// after carrier-sense deferrals resolve, at the moment the
	// transmission actually starts. Observers must be read-only.
	OnTransmit func(pkt Packet)

	// faults, when non-nil, is the chaos layer's per-delivery hook.
	faults FaultInjector

	// Counters for the experiment harness.
	sent      uint64
	delivered uint64
	collided  uint64
	lost      uint64
	deferred  uint64
	bytesSent uint64
}

// NewMedium builds a medium over the deployed positions. Receivers are
// attached afterwards with Attach, one per deployed point.
func NewMedium(cfg Config, engine *sim.Engine, idx *geom.Index, rng *stats.RNG, sink EnergySink) *Medium {
	n := idx.Len()
	m := &Medium{
		cfg:     cfg,
		engine:  engine,
		idx:     idx,
		rng:     rng,
		nodes:   make([]Receiver, n),
		sink:    sink,
		busyEnd: make([]sim.Time, n),
		corrupt: make([]bool, n),
	}
	if cfg.Irregularity > 0 {
		// A coarse per-area field large enough to cover every indexed
		// position; the field dimensions are recovered from the index.
		var maxX, maxY float64
		for i := 0; i < n; i++ {
			p := idx.At(i)
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
		m.quality = newQualityField(geom.NewField(maxX+1, maxY+1), cfg.Irregularity, rng.Split())
	}
	return m
}

// Attach registers the receiver for node id.
func (m *Medium) Attach(id NodeID, r Receiver) { m.nodes[id] = r }

// Airtime returns the channel occupancy of a packet of size bytes.
func (m *Medium) Airtime(size int) float64 {
	return float64(size) * 8 / m.cfg.BitsPerSecond
}

// Stats reports medium counters: packets sent, delivered, lost to
// collisions, lost to random drops, and total bytes transmitted.
func (m *Medium) Stats() (sent, delivered, collided, lost, bytes uint64) {
	return m.sent, m.delivered, m.collided, m.lost, m.bytesSent
}

// Deferred reports how many transmissions carrier sense postponed.
func (m *Medium) Deferred() uint64 { return m.deferred }

// SetFaultInjector installs (or, with nil, removes) the chaos layer's
// per-delivery fault hook. Runs with an injector installed are still
// deterministic, but their state is not captured by Snapshot, so chaos
// campaigns do not support checkpoint resume.
func (m *Medium) SetFaultInjector(f FaultInjector) { m.faults = f }

// Faults returns the installed fault injector, or nil. The invariant
// oracle uses it to detect chaos runs and relax loss-sensitive checks.
func (m *Medium) Faults() FaultInjector { return m.faults }

// InFlight returns the number of pending medium events: deliveries whose
// airtime has not elapsed plus carrier-sense retries. Zero means the
// channel is quiescent and the medium state is fully captured by
// Snapshot.
func (m *Medium) InFlight() int { return m.inflight }

// MediumState is the serializable state of the medium at a quiescent
// boundary: the traffic counters, the per-receiver channel-occupancy
// bookkeeping, and the loss/backoff RNG stream.
type MediumState struct {
	Sent, Delivered, Collided, Lost, Deferred, BytesSent uint64

	BusyEnd []float64
	Corrupt []bool
	RNG     stats.RNGState
}

// Snapshot captures the medium state. It must only be called when
// InFlight() == 0; frames in flight are not representable.
func (m *Medium) Snapshot() MediumState {
	return MediumState{
		Sent:      m.sent,
		Delivered: m.delivered,
		Collided:  m.collided,
		Lost:      m.lost,
		Deferred:  m.deferred,
		BytesSent: m.bytesSent,
		BusyEnd:   append([]float64(nil), m.busyEnd...),
		Corrupt:   append([]bool(nil), m.corrupt...),
		RNG:       m.rng.State(),
	}
}

// Restore overwrites the medium's mutable state with a captured one. The
// static parts — config, index, quality field — are rebuilt by
// reconstructing the medium from its config first.
func (m *Medium) Restore(st MediumState) error {
	if len(st.BusyEnd) != len(m.busyEnd) || len(st.Corrupt) != len(m.corrupt) {
		return fmt.Errorf("radio: snapshot is for %d receivers, medium has %d",
			len(st.BusyEnd), len(m.busyEnd))
	}
	m.sent = st.Sent
	m.delivered = st.Delivered
	m.collided = st.Collided
	m.lost = st.Lost
	m.deferred = st.Deferred
	m.bytesSent = st.BytesSent
	copy(m.busyEnd, st.BusyEnd)
	copy(m.corrupt, st.Corrupt)
	m.rng.Restore(st.RNG)
	return nil
}

// Broadcast transmits pkt from its sender's deployed position. Delivery
// callbacks run one airtime later. The transmitter is charged airtime at
// TX power; every listening node inside the physical coverage is charged
// airtime at RX power whether or not the frame survives.
func (m *Medium) Broadcast(pkt Packet) {
	if pkt.Range > m.cfg.MaxRange {
		pkt.Range = m.cfg.MaxRange
	}
	if pkt.Range <= 0 {
		return
	}
	airtime := m.Airtime(pkt.Size)
	now := m.engine.Now()

	// Carrier sense: defer while the channel is audibly busy at the
	// transmitter (including its own previous transmission). The retry is
	// a pooled record, not a fresh closure.
	if m.cfg.CSMAEnabled && m.busyEnd[pkt.From] > now {
		backoffMax := m.cfg.CSMABackoffMax
		if backoffMax <= 0 {
			backoffMax = 0.005
		}
		m.deferred++
		delay := m.busyEnd[pkt.From] - now + m.rng.Uniform(0, backoffMax)
		r := m.freeDef
		if r != nil {
			m.freeDef = r.next
			r.next = nil
		} else {
			r = &deferral{m: m}
		}
		r.pkt = pkt
		m.inflight++
		m.engine.ScheduleArg(delay, runDeferral, r)
		return
	}
	if m.OnTransmit != nil {
		m.OnTransmit(pkt)
	}
	m.sent++
	m.bytesSent += uint64(pkt.Size)
	m.sink.SpendTx(pkt.From, airtime)

	// Physical coverage: with fixed power the signal reaches MaxRange and
	// receivers filter by strength; with variable power it reaches
	// exactly the requested range.
	physRange := pkt.Range
	if m.cfg.FixedPower {
		physRange = m.cfg.MaxRange
	}

	center := m.idx.At(int(pkt.From))
	end := now + airtime
	// The transmitter occupies its own channel for the airtime, so its
	// next carrier-sensed transmission starts after this one ends.
	if end > m.busyEnd[pkt.From] {
		m.busyEnd[pkt.From] = end
	}
	// With irregular attenuation, good-reception areas hear farther.
	queryRange := physRange
	if m.quality != nil {
		queryRange = physRange * (1 + m.cfg.Irregularity)
	}
	// Counter updates are batched in locals and flushed once after the
	// receiver sweep; nothing can observe the medium counters mid-event.
	var collided, lost uint64
	// The sweep works on squared distances (Within2) and takes the Sqrt
	// only for frames that survive the filters. When a distance-derived
	// quantity feeds a legacy comparison (irregularity, fixed power) the
	// exact historical arithmetic — Sqrt first, then divide/compare — is
	// reproduced so trajectories stay bit-identical.
	m.idx.Within2(center, queryRange, func(i int, d2 float64) {
		if NodeID(i) == pkt.From {
			return
		}
		rcv := m.nodes[i]
		if rcv == nil || !rcv.Listening() {
			return
		}
		dist := -1.0 // computed lazily from d2
		if m.quality != nil {
			// Effective distance at the receiver's area quality.
			dist = math.Sqrt(d2) / m.quality.at(m.idx.At(i))
			if dist > physRange {
				return
			}
		}
		m.sink.SpendRx(NodeID(i), airtime)

		corrupted := false
		if m.cfg.CollisionsEnabled {
			if m.busyEnd[i] > now {
				// Overlapping reception: both frames are lost.
				m.corrupt[i] = true
				corrupted = true
				collided++
			} else {
				m.corrupt[i] = false
			}
			if end > m.busyEnd[i] {
				m.busyEnd[i] = end
			}
		}
		if !corrupted && m.cfg.LossRate > 0 && m.rng.Float64() < m.cfg.LossRate {
			lost++
			return
		}
		// Threshold filter under fixed power: the receiver only reacts
		// to frames whose strength corresponds to the requested range.
		if m.cfg.FixedPower {
			if dist < 0 {
				dist = math.Sqrt(d2)
			}
			if dist > pkt.Range {
				return
			}
		}
		deliverAt := end
		copies := 1
		if m.faults != nil {
			fd := m.faults.JudgeFrame(pkt.From, NodeID(i))
			if fd.Drop {
				return
			}
			deliverAt += fd.Delay
			copies += fd.Copies
		}
		if dist < 0 {
			dist = math.Sqrt(d2)
		}
		d := m.freeDel
		if d != nil {
			m.freeDel = d.next
			d.next = nil
		} else {
			d = &delivery{m: m}
		}
		d.to = int32(i)
		d.copies = int32(copies)
		d.dist = dist
		d.pkt = pkt
		for c := 0; c < copies; c++ {
			m.inflight++
			m.engine.AtArg(deliverAt, runDelivery, d)
		}
	})
	m.collided += collided
	m.lost += lost
}

func (m *Medium) deliver(i int, pkt Packet, dist float64) {
	rcv := m.nodes[i]
	if rcv == nil || !rcv.Listening() {
		// The node slept or died while the frame was in flight.
		return
	}
	if m.cfg.CollisionsEnabled && m.corrupt[i] {
		// The window this frame belonged to was corrupted by overlap.
		// The flag resets when a new non-overlapping window starts.
		return
	}
	m.delivered++
	rcv.Deliver(pkt, dist)
}
