package radio

import (
	"math"
	"testing"

	"peas/internal/geom"
	"peas/internal/sim"
	"peas/internal/stats"
)

// sinkRecorder records per-node airtime charges.
type sinkRecorder struct {
	tx map[NodeID]float64
	rx map[NodeID]float64
}

func newSinkRecorder() *sinkRecorder {
	return &sinkRecorder{tx: map[NodeID]float64{}, rx: map[NodeID]float64{}}
}

func (s *sinkRecorder) SpendTx(id NodeID, secs float64) { s.tx[id] += secs }
func (s *sinkRecorder) SpendRx(id NodeID, secs float64) { s.rx[id] += secs }

// stubReceiver is a configurable protocol endpoint.
type stubReceiver struct {
	listening bool
	got       []Packet
	dists     []float64
}

func (r *stubReceiver) Listening() bool { return r.listening }
func (r *stubReceiver) Deliver(pkt Packet, dist float64) {
	r.got = append(r.got, pkt)
	r.dists = append(r.dists, dist)
}

// testMedium builds a medium over explicit positions with CSMA and
// collisions configurable.
func testMedium(cfg Config, positions []geom.Point) (*Medium, *sim.Engine, []*stubReceiver, *sinkRecorder) {
	engine := sim.NewEngine()
	field := geom.NewField(100, 100)
	idx := geom.NewIndex(field, positions, 3)
	sink := newSinkRecorder()
	m := NewMedium(cfg, engine, idx, stats.NewRNG(1), sink)
	receivers := make([]*stubReceiver, len(positions))
	for i := range positions {
		receivers[i] = &stubReceiver{listening: true}
		m.Attach(NodeID(i), receivers[i])
	}
	return m, engine, receivers, sink
}

func TestAirtime(t *testing.T) {
	cfg := DefaultConfig()
	m, _, _, _ := testMedium(cfg, []geom.Point{{X: 0, Y: 0}})
	// Paper: 25-byte packets at 20 Kbps = 10 ms.
	if got := m.Airtime(25); math.Abs(got-0.010) > 1e-12 {
		t.Errorf("airtime(25) = %v, want 0.010", got)
	}
}

func TestBroadcastDeliversWithinRange(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 5, Y: 0}}
	m, engine, rcv, sink := testMedium(DefaultConfig(), positions)

	m.Broadcast(Packet{From: 0, Size: 25, Range: 3, Payload: "hello"})
	engine.Run(sim.Forever)

	if len(rcv[1].got) != 1 {
		t.Fatalf("in-range receiver got %d packets", len(rcv[1].got))
	}
	if rcv[1].got[0].Payload != "hello" || math.Abs(rcv[1].dists[0]-2) > 1e-9 {
		t.Errorf("payload/dist: %+v / %v", rcv[1].got[0], rcv[1].dists[0])
	}
	if len(rcv[2].got) != 0 {
		t.Error("out-of-range receiver got the packet")
	}
	if len(rcv[0].got) != 0 {
		t.Error("transmitter received its own packet")
	}
	// Energy: transmitter charged once, in-range listener charged.
	if sink.tx[0] != m.Airtime(25) {
		t.Errorf("tx charge %v", sink.tx[0])
	}
	if sink.rx[1] != m.Airtime(25) {
		t.Errorf("rx charge %v", sink.rx[1])
	}
	if sink.rx[2] != 0 {
		t.Error("out-of-range node was charged")
	}
}

func TestSleepingNodesReceiveNothing(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	m, engine, rcv, sink := testMedium(DefaultConfig(), positions)
	rcv[1].listening = false
	m.Broadcast(Packet{From: 0, Size: 25, Range: 3})
	engine.Run(sim.Forever)
	if len(rcv[1].got) != 0 {
		t.Error("sleeping node received a packet")
	}
	if sink.rx[1] != 0 {
		t.Error("sleeping node was charged for reception")
	}
}

func TestNodeSleepsWhileFrameInFlight(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	m, engine, rcv, _ := testMedium(DefaultConfig(), positions)
	m.Broadcast(Packet{From: 0, Size: 25, Range: 3})
	engine.Schedule(0.005, func() { rcv[1].listening = false })
	engine.Run(sim.Forever)
	if len(rcv[1].got) != 0 {
		t.Error("node that slept mid-flight still received the frame")
	}
}

func TestRangeCappedAtMaxRange(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 12, Y: 0}}
	m, engine, rcv, _ := testMedium(DefaultConfig(), positions) // MaxRange 10
	m.Broadcast(Packet{From: 0, Size: 25, Range: 50})
	engine.Run(sim.Forever)
	if len(rcv[1].got) != 0 {
		t.Error("packet travelled beyond MaxRange")
	}
	// Non-positive range transmits nothing.
	sent0, _, _, _, _ := m.Stats()
	m.Broadcast(Packet{From: 0, Size: 25, Range: 0})
	engine.Run(sim.Forever)
	sent1, _, _, _, _ := m.Stats()
	if sent1 != sent0 {
		t.Error("zero-range packet was transmitted")
	}
}

func TestCollisionBetweenOverlappingFrames(t *testing.T) {
	// Two transmitters out of carrier-sense range of each other (hidden
	// terminals), one receiver between them.
	positions := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 2, Y: 0}}
	cfg := DefaultConfig()
	cfg.CSMAEnabled = false // force the overlap
	m, engine, rcv, _ := testMedium(cfg, positions)

	engine.Schedule(0, func() { m.Broadcast(Packet{From: 0, Size: 25, Range: 3}) })
	engine.Schedule(0.005, func() { m.Broadcast(Packet{From: 1, Size: 25, Range: 3}) })
	engine.Run(sim.Forever)

	if len(rcv[2].got) != 0 {
		t.Errorf("receiver decoded %d frames out of a collision", len(rcv[2].got))
	}
	_, _, collided, _, _ := m.Stats()
	if collided == 0 {
		t.Error("collision not counted")
	}
}

func TestNonOverlappingFramesBothDeliver(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 2, Y: 0}}
	cfg := DefaultConfig()
	cfg.CSMAEnabled = false
	m, engine, rcv, _ := testMedium(cfg, positions)
	engine.Schedule(0, func() { m.Broadcast(Packet{From: 0, Size: 25, Range: 3}) })
	engine.Schedule(0.02, func() { m.Broadcast(Packet{From: 1, Size: 25, Range: 3}) })
	engine.Run(sim.Forever)
	if len(rcv[2].got) != 2 {
		t.Errorf("got %d frames, want 2", len(rcv[2].got))
	}
}

func TestCSMADefersInsteadOfColliding(t *testing.T) {
	// Transmitters within carrier-sense range: the second defers and
	// both frames arrive.
	positions := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	m, engine, rcv, _ := testMedium(DefaultConfig(), positions)
	engine.Schedule(0, func() { m.Broadcast(Packet{From: 0, Size: 25, Range: 3}) })
	engine.Schedule(0.005, func() { m.Broadcast(Packet{From: 1, Size: 25, Range: 3}) })
	engine.Run(sim.Forever)
	if len(rcv[2].got) != 2 {
		t.Errorf("receiver got %d frames, want 2 (CSMA deferral)", len(rcv[2].got))
	}
	if m.Deferred() == 0 {
		t.Error("no deferral counted")
	}
}

func TestRandomLoss(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	cfg := DefaultConfig()
	cfg.LossRate = 0.5
	m, engine, rcv, _ := testMedium(cfg, positions)
	const n = 2000
	for i := 0; i < n; i++ {
		d := float64(i) * 0.05 // spaced out: no collisions
		engine.Schedule(d, func() { m.Broadcast(Packet{From: 0, Size: 25, Range: 3}) })
	}
	engine.Run(sim.Forever)
	got := len(rcv[1].got)
	if got < n*4/10 || got > n*6/10 {
		t.Errorf("with 50%% loss, delivered %d of %d", got, n)
	}
	_, _, _, lost, _ := m.Stats()
	if int(lost)+got != n {
		t.Errorf("lost(%d) + delivered(%d) != sent(%d)", lost, got, n)
	}
}

func TestFixedPowerThresholdFilter(t *testing.T) {
	// §4: with fixed transmission power, receivers filter by signal
	// strength equivalent to the requested range. A node at 5 m hears
	// the frame (physical coverage = MaxRange) but must not react when
	// the requested range is 3 m.
	positions := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 2, Y: 0}}
	cfg := DefaultConfig()
	cfg.FixedPower = true
	m, engine, rcv, sink := testMedium(cfg, positions)
	m.Broadcast(Packet{From: 0, Size: 25, Range: 3})
	engine.Run(sim.Forever)
	if len(rcv[1].got) != 0 {
		t.Error("beyond-threshold node reacted to the frame")
	}
	if sink.rx[1] == 0 {
		t.Error("node inside physical coverage should still pay reception energy")
	}
	if len(rcv[2].got) != 1 {
		t.Error("within-threshold node missed the frame")
	}
}

func TestStatsCounters(t *testing.T) {
	positions := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	m, engine, _, _ := testMedium(DefaultConfig(), positions)
	m.Broadcast(Packet{From: 0, Size: 25, Range: 3})
	engine.Run(sim.Forever)
	sent, delivered, collided, lost, bytes := m.Stats()
	if sent != 1 || delivered != 1 || collided != 0 || lost != 0 || bytes != 25 {
		t.Errorf("stats = %d %d %d %d %d", sent, delivered, collided, lost, bytes)
	}
}
