package radio

import (
	"testing"

	"peas/internal/geom"
	"peas/internal/sim"
	"peas/internal/stats"
)

func TestQualityFieldUniformWhenOff(t *testing.T) {
	q := newQualityField(geom.NewField(50, 50), 0, stats.NewRNG(1))
	for x := 0.0; x <= 50; x += 7 {
		for y := 0.0; y <= 50; y += 7 {
			if got := q.at(geom.Point{X: x, Y: y}); got != 1 {
				t.Fatalf("quality at (%v,%v) = %v, want 1", x, y, got)
			}
		}
	}
}

func TestQualityFieldBounded(t *testing.T) {
	const irr = 0.4
	q := newQualityField(geom.NewField(50, 50), irr, stats.NewRNG(2))
	seenLow, seenHigh := false, false
	for x := 0.0; x <= 50; x += 2.5 {
		for y := 0.0; y <= 50; y += 2.5 {
			v := q.at(geom.Point{X: x, Y: y})
			if v < 1-irr || v > 1+irr {
				t.Fatalf("quality %v outside [%v, %v]", v, 1-irr, 1+irr)
			}
			if v < 0.9 {
				seenLow = true
			}
			if v > 1.1 {
				seenHigh = true
			}
		}
	}
	if !seenLow || !seenHigh {
		t.Error("quality field shows no spatial variation")
	}
}

func TestQualityFieldClampsOutside(t *testing.T) {
	q := newQualityField(geom.NewField(10, 10), 0.2, stats.NewRNG(3))
	// Out-of-field queries clamp to edge cells rather than panicking.
	_ = q.at(geom.Point{X: -5, Y: -5})
	_ = q.at(geom.Point{X: 100, Y: 100})
}

func TestIrregularityChangesReception(t *testing.T) {
	// Two nodes near the edge of range: with quality < 1 the receiver
	// misses the frame; with quality > 1 it hears it. Verify both
	// behaviours occur across seeds.
	positions := []geom.Point{{X: 10, Y: 10}, {X: 12.9, Y: 10}}
	heardWith, heardWithout := 0, 0
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		cfg := DefaultConfig()
		cfg.Irregularity = 0.4
		engine := sim.NewEngine()
		idx := geom.NewIndex(geom.NewField(50, 50), positions, 3)
		m := NewMedium(cfg, engine, idx, stats.NewRNG(seed), newSinkRecorder())
		rcv := &stubReceiver{listening: true}
		m.Attach(0, &stubReceiver{listening: true})
		m.Attach(1, rcv)
		m.Broadcast(Packet{From: 0, Size: 25, Range: 3})
		engine.Run(sim.Forever)
		if len(rcv.got) > 0 {
			heardWith++
		}

		// Control without irregularity: always heard at 2.9 < 3 m.
		cfg.Irregularity = 0
		engine2 := sim.NewEngine()
		m2 := NewMedium(cfg, engine2, idx, stats.NewRNG(seed), newSinkRecorder())
		rcv2 := &stubReceiver{listening: true}
		m2.Attach(0, &stubReceiver{listening: true})
		m2.Attach(1, rcv2)
		m2.Broadcast(Packet{From: 0, Size: 25, Range: 3})
		engine2.Run(sim.Forever)
		if len(rcv2.got) > 0 {
			heardWithout++
		}
	}
	if heardWithout != trials {
		t.Errorf("control reception %d/%d", heardWithout, trials)
	}
	if heardWith == 0 || heardWith == trials {
		t.Errorf("irregular reception %d/%d shows no variation", heardWith, trials)
	}
}

func TestQualityAtWithoutIrregularity(t *testing.T) {
	positions := []geom.Point{{X: 1, Y: 1}}
	m, _, _, _ := testMedium(DefaultConfig(), positions)
	if m.QualityAt(geom.Point{X: 1, Y: 1}) != 1 {
		t.Error("quality should be 1 when irregularity is off")
	}
}
