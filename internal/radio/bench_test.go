package radio

import (
	"testing"

	"peas/internal/geom"
	"peas/internal/sim"
	"peas/internal/stats"
)

// Microbenchmark for the broadcast hot path: a dense grid where every
// transmission reaches many listeners. Run with
//
//	go test ./internal/radio -run=NONE -bench=. -benchmem
//
// The steady-state allocs/op must stay at 0: delivery records come from
// the medium's free list and engine events from the engine's pool.

// benchReceiver counts deliveries without recording them, so the benchmark
// measures the medium rather than a growing capture slice.
type benchReceiver struct{ n int }

func (r *benchReceiver) Listening() bool         { return true }
func (r *benchReceiver) Deliver(Packet, float64) { r.n++ }

func benchMedium(cfg Config) (*Medium, *sim.Engine) {
	var positions []geom.Point
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			positions = append(positions, geom.Point{X: float64(c) * 3, Y: float64(r) * 3})
		}
	}
	engine := sim.NewEngine()
	field := geom.NewField(100, 100)
	idx := geom.NewIndex(field, positions, 3)
	m := NewMedium(cfg, engine, idx, stats.NewRNG(1), newSinkRecorder())
	for i := range positions {
		m.Attach(NodeID(i), &benchReceiver{})
	}
	return m, engine
}

func benchBroadcast(b *testing.B, cfg Config) {
	m, engine := benchMedium(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Broadcast(Packet{From: NodeID(i % 64), Size: 25, Range: 10})
		engine.Run(engine.Now() + 1)
	}
}

func BenchmarkBroadcast(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CSMAEnabled = false
	benchBroadcast(b, cfg)
}

func BenchmarkBroadcastFixedPower(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CSMAEnabled = false
	cfg.FixedPower = true
	benchBroadcast(b, cfg)
}

func BenchmarkBroadcastIrregular(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CSMAEnabled = false
	cfg.Irregularity = 0.3
	benchBroadcast(b, cfg)
}

func BenchmarkBroadcastWithFaultCopies(b *testing.B) {
	cfg := DefaultConfig()
	cfg.CSMAEnabled = false
	m, engine := benchMedium(cfg)
	m.SetFaultInjector(fixedCopies{n: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Broadcast(Packet{From: NodeID(i % 64), Size: 25, Range: 10})
		engine.Run(engine.Now() + 1)
	}
}
