package radio

import (
	"math"
	"testing"

	"peas/internal/geom"
	"peas/internal/sim"
	"peas/internal/stats"
)

// TestEnergyChargesMatchTraffic is the radio's accounting identity: the
// transmitter-side airtime charged equals packets-sent times airtime, and
// every in-range listening receiver is charged exactly once per frame.
func TestEnergyChargesMatchTraffic(t *testing.T) {
	field := geom.NewField(30, 30)
	rng := stats.NewRNG(9)
	positions := geom.UniformDeploy(field, 40, rng)
	engine := sim.NewEngine()
	idx := geom.NewIndex(field, positions, 3)
	sink := newSinkRecorder()
	cfg := DefaultConfig()
	cfg.CSMAEnabled = false // deferrals would split charges across time
	m := NewMedium(cfg, engine, idx, stats.NewRNG(1), sink)
	receivers := make([]*stubReceiver, len(positions))
	for i := range positions {
		receivers[i] = &stubReceiver{listening: true}
		m.Attach(NodeID(i), receivers[i])
	}

	const frames = 200
	for i := 0; i < frames; i++ {
		from := NodeID(i % len(positions))
		delay := float64(i) * 0.05
		engine.Schedule(delay, func() {
			m.Broadcast(Packet{From: from, Size: 25, Range: 3})
		})
	}
	engine.Run(sim.Forever)

	airtime := m.Airtime(25)
	var totalTx float64
	for _, v := range sink.tx {
		totalTx += v
	}
	sent, _, _, _, _ := m.Stats()
	if want := float64(sent) * airtime; math.Abs(totalTx-want) > 1e-9 {
		t.Errorf("tx charges %v != sent x airtime %v", totalTx, want)
	}

	// Receiver charges: one airtime per (frame, in-range listener).
	var wantRx float64
	for i := 0; i < frames; i++ {
		from := i % len(positions)
		idx.Within(positions[from], 3, func(j int, _ float64) {
			if j != from {
				wantRx += airtime
			}
		})
	}
	var totalRx float64
	for _, v := range sink.rx {
		totalRx += v
	}
	if math.Abs(totalRx-wantRx) > 1e-9 {
		t.Errorf("rx charges %v != expected %v", totalRx, wantRx)
	}
}

// TestMediumDeterminism re-runs an identical broadcast storm and checks
// the counters agree exactly.
func TestMediumDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		field := geom.NewField(20, 20)
		positions := geom.UniformDeploy(field, 60, stats.NewRNG(4))
		engine := sim.NewEngine()
		idx := geom.NewIndex(field, positions, 3)
		m := NewMedium(DefaultConfig(), engine, idx, stats.NewRNG(2), newSinkRecorder())
		for i := range positions {
			m.Attach(NodeID(i), &stubReceiver{listening: true})
		}
		jitter := stats.NewRNG(3)
		for i := 0; i < 500; i++ {
			from := NodeID(i % len(positions))
			engine.Schedule(jitter.Uniform(0, 10), func() {
				m.Broadcast(Packet{From: from, Size: 25, Range: 3})
			})
		}
		engine.Run(sim.Forever)
		sent, delivered, collided, _, _ := m.Stats()
		return sent, delivered, collided
	}
	s1, d1, c1 := run()
	s2, d2, c2 := run()
	if s1 != s2 || d1 != d2 || c1 != c2 {
		t.Errorf("medium diverged: (%d,%d,%d) vs (%d,%d,%d)", s1, d1, c1, s2, d2, c2)
	}
	if d1 == 0 {
		t.Error("storm delivered nothing")
	}
}
