package radio

import (
	"peas/internal/geom"
	"peas/internal/stats"
)

// §4: "In a harsh environment, irregularities in signal attenuation may
// generate different signal strengths in different areas, thus working
// nodes in areas with poorer signal reception can be denser than those in
// other areas. We believe that this is desirable..."
//
// The irregularity model assigns each region of the field a reception
// quality factor q ∈ [1-irr, 1+irr], drawn once per run on a coarse
// lattice. A receiver at quality q perceives a transmitter at effective
// distance dist/q: poor-quality areas (q < 1) hear signals as weaker
// (farther), shrinking the effective probing range there — which makes
// PEAS keep more workers in exactly those areas.

// qualityField is a coarse per-area reception-quality map.
type qualityField struct {
	cell    float64
	cols    int
	rows    int
	factors []float64
}

// newQualityField draws the per-cell factors. irr = 0 yields uniform 1.0.
func newQualityField(field geom.Field, irr float64, rng *stats.RNG) *qualityField {
	const cell = 5.0
	cols := int(field.Width/cell) + 1
	rows := int(field.Height/cell) + 1
	q := &qualityField{cell: cell, cols: cols, rows: rows,
		factors: make([]float64, cols*rows)}
	for i := range q.factors {
		if irr <= 0 {
			q.factors[i] = 1
		} else {
			q.factors[i] = rng.Uniform(1-irr, 1+irr)
		}
	}
	return q
}

// at returns the quality factor of the area containing p.
func (q *qualityField) at(p geom.Point) float64 {
	c := int(p.X / q.cell)
	r := int(p.Y / q.cell)
	if c < 0 {
		c = 0
	}
	if c >= q.cols {
		c = q.cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= q.rows {
		r = q.rows - 1
	}
	return q.factors[r*q.cols+c]
}

// QualityAt exposes the reception quality of the area containing p, for
// the irregularity experiments. It returns 1 when irregularity is off.
func (m *Medium) QualityAt(p geom.Point) float64 {
	if m.quality == nil {
		return 1
	}
	return m.quality.at(p)
}
