package radio

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"peas/internal/geom"
	"peas/internal/sim"
	"peas/internal/stats"
)

// Tests for the pooled fault-copy delivery path: one delivery record per
// (frame, receiver) pair regardless of how many duplicate copies the chaos
// layer schedules, and exact reproducibility of a fault-heavy broadcast
// storm across two identical runs.

// fixedCopies duplicates every frame with a constant number of extra copies.
type fixedCopies struct{ n int }

func (f fixedCopies) JudgeFrame(from, to NodeID) FaultDecision {
	return FaultDecision{Copies: f.n}
}

// scriptedInjector makes pseudo-random drop/duplicate/delay decisions from
// its own seeded stream, like the chaos channel does.
type scriptedInjector struct{ rng *stats.RNG }

func (s *scriptedInjector) JudgeFrame(from, to NodeID) FaultDecision {
	var fd FaultDecision
	switch r := s.rng.Float64(); {
	case r < 0.2:
		fd.Drop = true
	case r < 0.5:
		fd.Copies = 1 + int(s.rng.Uint64()%3)
	}
	if s.rng.Float64() < 0.3 {
		fd.Delay = s.rng.Float64() * 0.05
	}
	return fd
}

func freeDeliveryRecords(m *Medium) int {
	n := 0
	for d := m.freeDel; d != nil; d = d.next {
		n++
	}
	return n
}

func TestFaultCopiesShareOneDeliveryRecord(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CSMAEnabled = false
	m, engine, receivers, _ := testMedium(cfg, []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}})
	m.SetFaultInjector(fixedCopies{n: 3})

	m.Broadcast(Packet{From: 0, Size: 25, Range: 10})
	engine.Run(sim.Forever)
	if got := len(receivers[1].got); got != 4 {
		t.Fatalf("receiver got %d deliveries, want 4 (original + 3 duplicates)", got)
	}
	if n := freeDeliveryRecords(m); n != 1 {
		t.Fatalf("free list holds %d delivery records after the run, want 1 shared record", n)
	}

	// A second faulted broadcast must reuse the pooled record, not allocate
	// a second one.
	m.Broadcast(Packet{From: 0, Size: 25, Range: 10})
	engine.Run(sim.Forever)
	if got := len(receivers[1].got); got != 8 {
		t.Fatalf("receiver got %d deliveries after second broadcast, want 8", got)
	}
	if n := freeDeliveryRecords(m); n != 1 {
		t.Fatalf("free list holds %d delivery records after reuse, want 1", n)
	}
}

// TestFaultedDeliveryDeterminism runs the same duplicate/drop/delay-laden
// broadcast storm twice and requires a bit-identical digest of every
// delivery (receiver, sender, payload, distance, in order) and of the
// medium counters. This pins the rewritten copy scheduling: one pooled
// record feeding several AtArg events must preserve the exact delivery
// order the per-copy closures produced.
func TestFaultedDeliveryDeterminism(t *testing.T) {
	run := func() string {
		cfg := DefaultConfig()
		var positions []geom.Point
		for r := 0; r < 5; r++ {
			for c := 0; c < 5; c++ {
				positions = append(positions, geom.Point{X: float64(c) * 4, Y: float64(r) * 4})
			}
		}
		m, engine, receivers, _ := testMedium(cfg, positions)
		m.SetFaultInjector(&scriptedInjector{rng: stats.NewRNG(7)})
		for i := range positions {
			i := i
			engine.At(float64(i)*0.004, func() {
				m.Broadcast(Packet{From: NodeID(i), Size: 25, Range: 10, Payload: i})
			})
		}
		engine.Run(sim.Forever)

		h := sha256.New()
		for ri, r := range receivers {
			for k, pkt := range r.got {
				fmt.Fprintf(h, "%d %d %v %.17g\n", ri, pkt.From, pkt.Payload, r.dists[k])
			}
		}
		sent, delivered, collided, lost, bytes := m.Stats()
		fmt.Fprintf(h, "%d %d %d %d %d %d\n", sent, delivered, collided, lost, bytes, m.Deferred())
		return fmt.Sprintf("%x", h.Sum(nil))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical faulted runs produced different delivery digests:\n  %s\n  %s", a, b)
	}
}
