package render

import (
	"strings"
	"testing"

	"peas/internal/node"
)

func testNet(t *testing.T) *node.Network {
	t.Helper()
	net, err := node.NewNetwork(node.DefaultConfig(120, 5))
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(300)
	return net
}

func TestASCIIShape(t *testing.T) {
	net := testNet(t)
	out := ASCII(net, 2)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 26 { // 50/2 + 1
		t.Fatalf("rows = %d", len(lines))
	}
	for i, l := range lines {
		if len(l) != 26 {
			t.Fatalf("row %d has %d cols", i, len(l))
		}
	}
	if !strings.ContainsRune(out, GlyphWorking) {
		t.Error("no working glyph in map")
	}
	if !strings.ContainsRune(out, GlyphSleeping) {
		t.Error("no sleeping glyph in map")
	}
}

func TestASCIIDefaultCell(t *testing.T) {
	net := testNet(t)
	if ASCII(net, 0) != ASCII(net, 2) {
		t.Error("zero cell should default to 2 m")
	}
}

func TestASCIIStrongestStateWins(t *testing.T) {
	net := testNet(t)
	// At a 50 m cell everything lands in one character: it must be 'W'.
	out := strings.TrimSpace(ASCII(net, 50))
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.ContainsRune(l, GlyphWorking) {
			found = true
		}
	}
	if !found {
		t.Errorf("coarse map lost the working state:\n%s", out)
	}
}

func TestSVGWellFormed(t *testing.T) {
	net := testNet(t)
	var b strings.Builder
	err := SVG(&b, net, SVGOptions{SensingRange: 10, Title: `a<b>&"c"`})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "<circle", "fill-opacity", "&lt;b&gt;"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(out, `<title>a<b>`) {
		t.Error("title not escaped")
	}
	// One disc per working node plus one dot per node.
	working := net.WorkingCount()
	circles := strings.Count(out, "<circle")
	if circles != working+len(net.Nodes) {
		t.Errorf("circles = %d, want %d", circles, working+len(net.Nodes))
	}
}

func TestSVGNoDiscsWithoutRange(t *testing.T) {
	net := testNet(t)
	var b strings.Builder
	if err := SVG(&b, net, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "<circle"); got != len(net.Nodes) {
		t.Errorf("circles = %d, want %d", got, len(net.Nodes))
	}
}
