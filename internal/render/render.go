// Package render draws deployment snapshots: an ASCII map for terminals
// and an SVG with sensing-range discs for reports. cmd/peas-sim emits
// both via -ascii and -svg.
package render

import (
	"fmt"
	"io"
	"strings"

	"peas/internal/core"
	"peas/internal/geom"
	"peas/internal/node"
)

// Glyphs of the ASCII map.
const (
	GlyphEmpty    = '.'
	GlyphSleeping = 's'
	GlyphProbing  = 'p'
	GlyphWorking  = 'W'
	GlyphDead     = 'x'
)

// ASCII renders the network as a character grid, one cell per `cell`
// meters. When several nodes share a cell the "strongest" state wins
// (working > probing > sleeping > dead).
func ASCII(net *node.Network, cell float64) string {
	if cell <= 0 {
		cell = 2
	}
	cols := int(net.Field.Width/cell) + 1
	rows := int(net.Field.Height/cell) + 1
	grid := make([]rune, cols*rows)
	for i := range grid {
		grid[i] = GlyphEmpty
	}
	rank := func(r rune) int {
		switch r {
		case GlyphWorking:
			return 4
		case GlyphProbing:
			return 3
		case GlyphSleeping:
			return 2
		case GlyphDead:
			return 1
		default:
			return 0
		}
	}
	for _, n := range net.Nodes {
		p := n.Pos()
		c := int(p.X / cell)
		r := int(p.Y / cell)
		if c >= cols {
			c = cols - 1
		}
		if r >= rows {
			r = rows - 1
		}
		g := glyphFor(n)
		at := r*cols + c
		if rank(g) > rank(grid[at]) {
			grid[at] = g
		}
	}
	var b strings.Builder
	// Draw north-up: row 0 is the top (max Y).
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			b.WriteRune(grid[r*cols+c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func glyphFor(n *node.Node) rune {
	if !n.Alive() {
		return GlyphDead
	}
	switch n.State() {
	case core.Working:
		return GlyphWorking
	case core.Probing:
		return GlyphProbing
	case core.Sleeping:
		return GlyphSleeping
	default:
		return GlyphDead
	}
}

// SVGOptions controls the vector snapshot.
type SVGOptions struct {
	// Scale is pixels per meter (0 selects 10).
	Scale float64
	// SensingRange, when positive, draws a translucent disc of that
	// radius around each working node so coverage is visible.
	SensingRange float64
	// Title is an optional caption.
	Title string
}

// SVG writes a vector snapshot of the network.
func SVG(w io.Writer, net *node.Network, opts SVGOptions) error {
	scale := opts.Scale
	if scale <= 0 {
		scale = 10
	}
	width := net.Field.Width * scale
	height := net.Field.Height * scale
	// SVG y grows downward; flip so north is up.
	flip := func(p geom.Point) (float64, float64) {
		return p.X * scale, height - p.Y*scale
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="#fcfcf8"/>`+"\n", width, height)
	if opts.Title != "" {
		fmt.Fprintf(&b, `<title>%s</title>`+"\n", xmlEscape(opts.Title))
	}
	// Coverage discs first so nodes draw on top.
	if opts.SensingRange > 0 {
		for _, n := range net.Nodes {
			if !n.Alive() || n.State() != core.Working {
				continue
			}
			x, y := flip(n.Pos())
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#7dbb6f" fill-opacity="0.10"/>`+"\n",
				x, y, opts.SensingRange*scale)
		}
	}
	for _, n := range net.Nodes {
		x, y := flip(n.Pos())
		color, r := nodeStyle(n)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func nodeStyle(n *node.Node) (color string, radius float64) {
	if !n.Alive() {
		return "#c0c0c0", 2
	}
	switch n.State() {
	case core.Working:
		return "#1a7f37", 4
	case core.Probing:
		return "#b58900", 3
	case core.Sleeping:
		return "#4078c0", 2
	default:
		return "#c0c0c0", 2
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
