package checkpoint

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"peas/internal/core"
	"peas/internal/stats"
)

// sampleLiveNode populates every field, including the slices the codec
// must length-prefix (Heard, Timers), so a round-trip exercise covers the
// full encoding.
func sampleLiveNode() *LiveNode {
	return &LiveNode{
		ID:            17,
		ProtoTime:     1234.5625,
		RNG:           stats.RNGState{State: 0xdeadbeefcafe, Inc: 0x12345},
		BatteryJoules: 41.25,
		Proto: core.ProtocolState{
			State:        core.Working,
			StateSince:   1000.5,
			Lambda:       0.021,
			WorkStart:    1000.5,
			ReplyPending: true,
			Heard: []core.Reply{
				{From: 3, RateEstimate: 0.018, DesiredRate: 0.02},
				{From: 9, RateEstimate: 0, DesiredRate: 0.02},
			},
			Stats: core.Stats{
				Wakeups: 7, ProbesSent: 21, RepliesSent: 4, RepliesHeard: 6,
				RateUpdates: 2, Turnoffs: 1,
				TimeWorking: 200.25, TimeSleeping: 900, TimeProbing: 3.5,
			},
			Estimator: core.EstimatorState{N: 5, T0: 1100, Started: true, Estimate: 0.019, Windows: 3},
			Timers: []core.TimerRec{
				{Kind: core.TimerReply, At: 1234.6},
				{Kind: core.TimerProbeSend, Probe: 2, At: 1234.7},
			},
		},
	}
}

func TestLiveNodeRoundTrip(t *testing.T) {
	s := sampleLiveNode()
	data := s.EncodeBytes()
	back, err := DecodeLiveNode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
	if s.StateHash() != back.StateHash() {
		t.Error("state hash changed across round trip")
	}
	if !bytes.Equal(data, back.EncodeBytes()) {
		t.Error("re-encoding is not bit-identical")
	}
}

func TestLiveNodeDeadAndUnmeteredCases(t *testing.T) {
	s := &LiveNode{
		ID:            0,
		BatteryJoules: -1, // battery emulation off
		Proto:         core.ProtocolState{State: core.Dead},
	}
	back, err := DecodeLiveNode(s.EncodeBytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.BatteryJoules != -1 || back.Proto.State != core.Dead {
		t.Errorf("got %+v", back)
	}
}

func TestDecodeLiveNodeRejectsCorruption(t *testing.T) {
	good := sampleLiveNode().EncodeBytes()

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'
	if _, err := DecodeLiveNode(badMagic); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: err = %v, want ErrCorrupt", err)
	}

	badVersion := append([]byte(nil), good...)
	badVersion[8] = 0xFF // version u32 follows the 8-byte magic
	if _, err := DecodeLiveNode(badVersion); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: err = %v, want ErrVersion", err)
	}

	truncated := good[:len(good)-3]
	if _, err := DecodeLiveNode(truncated); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: err = %v, want ErrCorrupt", err)
	}

	trailing := append(append([]byte(nil), good...), 0)
	if _, err := DecodeLiveNode(trailing); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
}
