package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"peas/internal/core"
	"peas/internal/coverage"
	"peas/internal/forward"
	"peas/internal/geom"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/stats"
)

// sampleSnapshot builds a snapshot exercising every field class: optional
// slices both nil and populated, the optional Forward pointer, nested
// sequences, and negative/fractional floats.
func sampleSnapshot() *Snapshot {
	s := &Snapshot{
		SimTime:          1234.5678,
		Horizon:          5000,
		FailuresPer5000s: 20,
		Forwarding:       true,
		CoverageSpacing:  1,
		NextSampleAt:     1250,
	}
	s.Net = node.Config{
		Field: geom.Field{Width: 50, Height: 50},
		N:     3,
		Seed:  42,
		Positions: []geom.Point{
			{X: 1.5, Y: 2.5}, {X: 10, Y: 20}, {X: 49, Y: 48.25},
		},
		InitialEnergyMin: 20,
		InitialEnergyMax: 30,
	}
	s.Net.Protocol.ProbingRange = 3
	s.Net.Protocol.InitialRate = 0.1
	s.Net.Protocol.TurnoffEnabled = true
	s.Net.Radio.BitsPerSecond = 19200
	s.Net.Radio.MaxRange = 10
	s.Net.Energy.IdleW = 0.012

	s.Nodes = []node.NodeState{
		{
			Alive:   true,
			DeathAt: 4321.125,
			RNG:     stats.RNGState{State: 7, Inc: 9},
		},
		{
			Alive:  false,
			Cause:  node.Depletion,
			DiedAt: 987.5,
		},
		{
			Alive: true,
		},
	}
	s.Nodes[0].Battery.Initial = 25
	s.Nodes[0].Battery.Remaining = 12.75
	s.Nodes[0].Battery.ConsumedByMode[2] = 3.5
	s.Nodes[0].Proto.State = core.Working
	s.Nodes[0].Proto.Lambda = 0.2
	s.Nodes[0].Proto.Heard = []core.Reply{
		{From: 2, RateEstimate: 0.3, DesiredRate: 0.25, TimeWorking: 100},
	}
	s.Nodes[0].Proto.Stats.Wakeups = 11
	s.Nodes[2].Proto.State = core.Sleeping
	s.Nodes[2].Proto.Timers = []core.TimerRec{
		{Kind: core.TimerWakeup, At: 1300.0625},
		{Kind: core.TimerProbeSend, Probe: 1, At: 1240.5},
	}

	s.Medium.Sent = 100
	s.Medium.Delivered = 90
	s.Medium.BusyEnd = []float64{0, 1234.5, 1200}
	s.Medium.Corrupt = []bool{false, true, false}
	s.Medium.RNG = stats.RNGState{State: 1, Inc: 3}

	s.Injector.Injected = 4
	s.Injector.Victims = []core.NodeID{1}
	s.Injector.NextAt = 1500.25
	s.Injector.RNG = stats.RNGState{State: 5, Inc: 11}

	s.Forward = &forward.HarnessState{
		Generated:   120,
		Succeeded:   118,
		RatioPoints: []metrics.Point{{T: 10, V: 1}, {T: 20, V: 0.5}},
		RNG:         stats.RNGState{State: 13, Inc: 15},
		NextGenAt:   1240,
	}

	s.TrackerSamples = []coverage.Sample{
		{T: 0, ByK: []float64{1, 0.9, 0.4}},
		{T: 25, ByK: []float64{0.99, 0.85, 0.38}},
	}
	s.WorkingSeries = []metrics.Point{{T: 0, V: 30}, {T: 50, V: 12}}
	return s
}

// TestRoundTripByteIdentical is the codec acceptance criterion: encode,
// decode, re-encode must reproduce the exact byte stream.
func TestRoundTripByteIdentical(t *testing.T) {
	for name, snap := range map[string]*Snapshot{
		"populated": sampleSnapshot(),
		"zero":      {},
	} {
		t.Run(name, func(t *testing.T) {
			first := snap.EncodeBytes()
			back, err := DecodeBytes(first)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			second := back.EncodeBytes()
			if !bytes.Equal(first, second) {
				t.Fatalf("re-encode differs: %d bytes vs %d bytes", len(first), len(second))
			}
			if snap.StateHashHex() != back.StateHashHex() {
				t.Fatalf("state hash changed across round trip")
			}
		})
	}
}

func TestEncodeDecodeStream(t *testing.T) {
	snap := sampleSnapshot()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.SimTime != snap.SimTime || len(back.Nodes) != len(snap.Nodes) {
		t.Fatalf("stream round trip lost fields: %+v", back)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data := sampleSnapshot().EncodeBytes()
	data[0] ^= 0xff
	if _, err := DecodeBytes(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	data := sampleSnapshot().EncodeBytes()
	data[8] = byte(Version + 1)
	if _, err := DecodeBytes(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := sampleSnapshot().EncodeBytes()
	for _, n := range []int{0, 4, 11, len(data) / 2, len(data) - 1} {
		if _, err := DecodeBytes(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: want ErrCorrupt, got %v", n, err)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data := append(sampleSnapshot().EncodeBytes(), 0xab)
	if _, err := DecodeBytes(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for trailing bytes, got %v", err)
	}
}

func TestDecodeRejectsOversizedCount(t *testing.T) {
	// Corrupt the node-count field (right after the fixed header and net
	// config) to a huge value; the decoder must error out instead of
	// attempting the allocation.
	snap := sampleSnapshot()
	data := snap.EncodeBytes()
	// Re-encode the fields preceding the node count to locate its offset.
	e := &enc{}
	e.buf = append(e.buf, magic[:]...)
	e.u32(Version)
	e.f64(snap.SimTime)
	e.f64(snap.Horizon)
	e.f64(snap.FailuresPer5000s)
	e.boolean(snap.Forwarding)
	e.f64(snap.CoverageSpacing)
	encodeNetConfig(e, &snap.Net)
	off := len(e.buf)
	for i := 0; i < 4; i++ {
		data[off+i] = 0xff
	}
	if _, err := DecodeBytes(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for oversized count, got %v", err)
	}
}
