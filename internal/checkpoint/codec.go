package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"peas/internal/core"
	"peas/internal/coverage"
	"peas/internal/energy"
	"peas/internal/failure"
	"peas/internal/forward"
	"peas/internal/geom"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/radio"
	"peas/internal/stats"
)

// The canonical binary format: an 8-byte magic, a uint32 version, then the
// snapshot fields in a fixed order with fixed-width little-endian scalars
// (floats as IEEE-754 bit patterns) and uint32-prefixed sequences. The
// encoding is a pure function of the snapshot value — no maps, no
// pointers, no varints — which is what makes StateHash meaningful and the
// encode/decode/encode round trip byte-identical.

var magic = [8]byte{'P', 'E', 'A', 'S', 'C', 'K', 'P', 'T'}

// ErrCorrupt reports a snapshot that is truncated or structurally invalid.
// Decode wraps it with positional detail; match with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated snapshot")

// ErrVersion reports a snapshot written by an unknown format version.
var ErrVersion = errors.New("checkpoint: unsupported format version")

// --- encoder ---

type enc struct{ buf []byte }

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) count(n int) { e.u32(uint32(n)) }

// EncodeBytes returns the canonical encoding of the snapshot.
func (s *Snapshot) EncodeBytes() []byte {
	e := &enc{buf: make([]byte, 0, 4096)}
	e.buf = append(e.buf, magic[:]...)
	e.u32(Version)

	e.f64(s.SimTime)
	e.f64(s.Horizon)
	e.f64(s.FailuresPer5000s)
	e.boolean(s.Forwarding)
	e.f64(s.CoverageSpacing)
	encodeNetConfig(e, &s.Net)

	e.count(len(s.Nodes))
	for i := range s.Nodes {
		encodeNodeState(e, &s.Nodes[i])
	}
	encodeMediumState(e, &s.Medium)
	encodeInjectorState(e, &s.Injector)
	e.boolean(s.Forward != nil)
	if s.Forward != nil {
		encodeHarnessState(e, s.Forward)
	}
	encodeSamples(e, s.TrackerSamples)
	encodePoints(e, s.WorkingSeries)
	e.f64(s.NextSampleAt)
	return e.buf
}

// Encode writes the canonical encoding to w.
func (s *Snapshot) Encode(w io.Writer) error {
	_, err := w.Write(s.EncodeBytes())
	return err
}

// AppendNetConfig appends the canonical encoding of a network
// configuration to buf and returns the extended slice. It is the same
// encoding Snapshot.EncodeBytes embeds — a pure function of the config
// value with fixed-width little-endian scalars — which makes it usable
// as a content-address: two configs encode identically exactly when they
// would drive identical simulations. The job queue derives its
// result-cache keys from it.
func AppendNetConfig(buf []byte, c *node.Config) []byte {
	e := &enc{buf: buf}
	encodeNetConfig(e, c)
	return e.buf
}

func encodeNetConfig(e *enc, c *node.Config) {
	e.f64(c.Field.Width)
	e.f64(c.Field.Height)
	e.i64(int64(c.N))

	p := &c.Protocol
	e.f64(p.ProbingRange)
	e.f64(p.InitialRate)
	e.f64(p.DesiredRate)
	e.i64(int64(p.EstimatorK))
	e.i64(int64(p.NumProbes))
	e.f64(p.ProbeWindow)
	e.f64(p.ReplyJitterMax)
	e.i64(int64(p.PacketSize))
	e.f64(p.MinRate)
	e.f64(p.MaxRate)
	e.boolean(p.TurnoffEnabled)
	e.boolean(p.StaleEstimates)

	r := &c.Radio
	e.f64(r.BitsPerSecond)
	e.f64(r.MaxRange)
	e.f64(r.LossRate)
	e.boolean(r.CollisionsEnabled)
	e.boolean(r.CSMAEnabled)
	e.f64(r.CSMABackoffMax)
	e.boolean(r.FixedPower)
	e.f64(r.Irregularity)

	e.f64(c.Energy.TransmitW)
	e.f64(c.Energy.ReceiveW)
	e.f64(c.Energy.IdleW)
	e.f64(c.Energy.SleepW)

	e.f64(c.InitialEnergyMin)
	e.f64(c.InitialEnergyMax)
	e.i64(c.Seed)

	e.boolean(c.Positions != nil)
	if c.Positions != nil {
		e.count(len(c.Positions))
		for _, pt := range c.Positions {
			e.f64(pt.X)
			e.f64(pt.Y)
		}
	}

	e.boolean(c.NodeSeeds != nil)
	if c.NodeSeeds != nil {
		e.count(len(c.NodeSeeds))
		for _, s := range c.NodeSeeds {
			e.i64(s)
		}
	}
}

func encodeRNG(e *enc, st stats.RNGState) {
	e.u64(st.State)
	e.u64(st.Inc)
}

func encodeNodeState(e *enc, st *node.NodeState) {
	e.boolean(st.Alive)
	e.i64(int64(st.Cause))
	e.f64(st.DiedAt)
	e.f64(st.DeathAt)
	encodeRNG(e, st.RNG)

	b := &st.Battery
	e.f64(b.Initial)
	e.f64(b.Remaining)
	e.u8(uint8(b.Mode))
	e.f64(b.LastT)
	e.boolean(b.Dead)
	for _, v := range b.ConsumedByMode {
		e.f64(v)
	}

	encodeProtocolState(e, &st.Proto)
}

func encodeProtocolState(e *enc, p *core.ProtocolState) {
	e.u8(uint8(p.State))
	e.f64(p.StateSince)
	e.f64(p.Lambda)
	e.f64(p.WorkStart)
	e.boolean(p.ReplyPending)
	e.count(len(p.Heard))
	for _, r := range p.Heard {
		e.i64(int64(r.From))
		e.f64(r.RateEstimate)
		e.f64(r.DesiredRate)
		e.f64(r.TimeWorking)
	}
	e.u64(p.Stats.Wakeups)
	e.u64(p.Stats.ProbesSent)
	e.u64(p.Stats.RepliesSent)
	e.u64(p.Stats.RepliesHeard)
	e.u64(p.Stats.RateUpdates)
	e.u64(p.Stats.Turnoffs)
	e.f64(p.Stats.TimeWorking)
	e.f64(p.Stats.TimeSleeping)
	e.f64(p.Stats.TimeProbing)
	e.i64(int64(p.Estimator.N))
	e.f64(p.Estimator.T0)
	e.boolean(p.Estimator.Started)
	e.f64(p.Estimator.Estimate)
	e.i64(int64(p.Estimator.Windows))
	e.count(len(p.Timers))
	for _, t := range p.Timers {
		e.u8(uint8(t.Kind))
		e.i64(int64(t.Probe))
		e.f64(t.At)
	}
}

func encodeMediumState(e *enc, st *radio.MediumState) {
	e.u64(st.Sent)
	e.u64(st.Delivered)
	e.u64(st.Collided)
	e.u64(st.Lost)
	e.u64(st.Deferred)
	e.u64(st.BytesSent)
	e.count(len(st.BusyEnd))
	for _, v := range st.BusyEnd {
		e.f64(v)
	}
	e.count(len(st.Corrupt))
	for _, v := range st.Corrupt {
		e.boolean(v)
	}
	encodeRNG(e, st.RNG)
}

func encodeInjectorState(e *enc, st *failure.InjectorState) {
	e.i64(int64(st.Injected))
	e.count(len(st.Victims))
	for _, v := range st.Victims {
		e.i64(int64(v))
	}
	e.boolean(st.Stopped)
	e.f64(st.NextAt)
	encodeRNG(e, st.RNG)
}

func encodeHarnessState(e *enc, st *forward.HarnessState) {
	e.i64(int64(st.Generated))
	e.i64(int64(st.Succeeded))
	encodePoints(e, st.RatioPoints)
	encodePoints(e, st.HopsPoints)
	encodeRNG(e, st.RNG)
	e.f64(st.NextGenAt)
}

func encodePoints(e *enc, pts []metrics.Point) {
	e.count(len(pts))
	for _, p := range pts {
		e.f64(p.T)
		e.f64(p.V)
	}
}

func encodeSamples(e *enc, samples []coverage.Sample) {
	e.count(len(samples))
	for _, s := range samples {
		e.f64(s.T)
		e.count(len(s.ByK))
		for _, v := range s.ByK {
			e.f64(v)
		}
	}
}

// --- decoder ---

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail("truncated")
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// boolean accepts only the canonical encodings 0 and 1, so every accepted
// input re-encodes byte-identically.
func (d *dec) boolean() bool {
	switch d.u8() {
	case 1:
		return true
	case 0:
		return false
	default:
		d.fail("non-canonical boolean")
		return false
	}
}

// count reads a sequence length and validates it against the bytes left,
// assuming each element occupies at least minElem bytes, so a corrupted
// length cannot drive a huge allocation.
func (d *dec) count(minElem int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*minElem > len(d.buf)-d.off {
		d.fail("sequence length exceeds remaining input")
		return 0
	}
	return n
}

// DecodeBytes parses a canonical snapshot encoding. Corrupted or
// truncated input yields an error wrapping ErrCorrupt (never a panic);
// snapshots from other format versions yield ErrVersion.
func DecodeBytes(data []byte) (*Snapshot, error) {
	d := &dec{buf: data}
	head := d.take(len(magic))
	if d.err != nil || [8]byte(head) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := d.u32(); d.err == nil && v != Version {
		return nil, fmt.Errorf("%w: got %d, this build reads %d", ErrVersion, v, Version)
	}

	s := &Snapshot{}
	s.SimTime = d.f64()
	s.Horizon = d.f64()
	s.FailuresPer5000s = d.f64()
	s.Forwarding = d.boolean()
	s.CoverageSpacing = d.f64()
	decodeNetConfig(d, &s.Net)

	n := d.count(8)
	if n > 0 {
		s.Nodes = make([]node.NodeState, n)
		for i := range s.Nodes {
			decodeNodeState(d, &s.Nodes[i])
		}
	}
	decodeMediumState(d, &s.Medium)
	decodeInjectorState(d, &s.Injector)
	if d.boolean() {
		s.Forward = &forward.HarnessState{}
		decodeHarnessState(d, s.Forward)
	}
	s.TrackerSamples = decodeSamples(d)
	s.WorkingSeries = decodePoints(d)
	s.NextSampleAt = d.f64()

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return s, nil
}

// Decode reads and parses a snapshot from r.
func Decode(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return DecodeBytes(data)
}

func decodeNetConfig(d *dec, c *node.Config) {
	c.Field.Width = d.f64()
	c.Field.Height = d.f64()
	c.N = int(d.i64())

	p := &c.Protocol
	p.ProbingRange = d.f64()
	p.InitialRate = d.f64()
	p.DesiredRate = d.f64()
	p.EstimatorK = int(d.i64())
	p.NumProbes = int(d.i64())
	p.ProbeWindow = d.f64()
	p.ReplyJitterMax = d.f64()
	p.PacketSize = int(d.i64())
	p.MinRate = d.f64()
	p.MaxRate = d.f64()
	p.TurnoffEnabled = d.boolean()
	p.StaleEstimates = d.boolean()

	r := &c.Radio
	r.BitsPerSecond = d.f64()
	r.MaxRange = d.f64()
	r.LossRate = d.f64()
	r.CollisionsEnabled = d.boolean()
	r.CSMAEnabled = d.boolean()
	r.CSMABackoffMax = d.f64()
	r.FixedPower = d.boolean()
	r.Irregularity = d.f64()

	c.Energy.TransmitW = d.f64()
	c.Energy.ReceiveW = d.f64()
	c.Energy.IdleW = d.f64()
	c.Energy.SleepW = d.f64()

	c.InitialEnergyMin = d.f64()
	c.InitialEnergyMax = d.f64()
	c.Seed = d.i64()

	if d.boolean() {
		n := d.count(16)
		c.Positions = make([]geom.Point, n)
		for i := range c.Positions {
			c.Positions[i].X = d.f64()
			c.Positions[i].Y = d.f64()
		}
	}

	if d.boolean() {
		n := d.count(8)
		c.NodeSeeds = make([]int64, n)
		for i := range c.NodeSeeds {
			c.NodeSeeds[i] = d.i64()
		}
	}
}

func decodeRNG(d *dec) stats.RNGState {
	return stats.RNGState{State: d.u64(), Inc: d.u64()}
}

func decodeNodeState(d *dec, st *node.NodeState) {
	st.Alive = d.boolean()
	st.Cause = node.DeathCause(d.i64())
	st.DiedAt = d.f64()
	st.DeathAt = d.f64()
	st.RNG = decodeRNG(d)

	b := &st.Battery
	b.Initial = d.f64()
	b.Remaining = d.f64()
	b.Mode = energy.Mode(d.u8())
	b.LastT = d.f64()
	b.Dead = d.boolean()
	for i := range b.ConsumedByMode {
		b.ConsumedByMode[i] = d.f64()
	}

	decodeProtocolState(d, &st.Proto)
}

func decodeProtocolState(d *dec, p *core.ProtocolState) {
	p.State = core.State(d.u8())
	p.StateSince = d.f64()
	p.Lambda = d.f64()
	p.WorkStart = d.f64()
	p.ReplyPending = d.boolean()
	if n := d.count(32); n > 0 {
		p.Heard = make([]core.Reply, n)
		for i := range p.Heard {
			p.Heard[i].From = core.NodeID(d.i64())
			p.Heard[i].RateEstimate = d.f64()
			p.Heard[i].DesiredRate = d.f64()
			p.Heard[i].TimeWorking = d.f64()
		}
	}
	p.Stats.Wakeups = d.u64()
	p.Stats.ProbesSent = d.u64()
	p.Stats.RepliesSent = d.u64()
	p.Stats.RepliesHeard = d.u64()
	p.Stats.RateUpdates = d.u64()
	p.Stats.Turnoffs = d.u64()
	p.Stats.TimeWorking = d.f64()
	p.Stats.TimeSleeping = d.f64()
	p.Stats.TimeProbing = d.f64()
	p.Estimator.N = int(d.i64())
	p.Estimator.T0 = d.f64()
	p.Estimator.Started = d.boolean()
	p.Estimator.Estimate = d.f64()
	p.Estimator.Windows = int(d.i64())
	if n := d.count(17); n > 0 {
		p.Timers = make([]core.TimerRec, n)
		for i := range p.Timers {
			p.Timers[i].Kind = core.TimerKind(d.u8())
			p.Timers[i].Probe = int(d.i64())
			p.Timers[i].At = d.f64()
		}
	}
}

func decodeMediumState(d *dec, st *radio.MediumState) {
	st.Sent = d.u64()
	st.Delivered = d.u64()
	st.Collided = d.u64()
	st.Lost = d.u64()
	st.Deferred = d.u64()
	st.BytesSent = d.u64()
	if n := d.count(8); n > 0 {
		st.BusyEnd = make([]float64, n)
		for i := range st.BusyEnd {
			st.BusyEnd[i] = d.f64()
		}
	}
	if n := d.count(1); n > 0 {
		st.Corrupt = make([]bool, n)
		for i := range st.Corrupt {
			st.Corrupt[i] = d.boolean()
		}
	}
	st.RNG = decodeRNG(d)
}

func decodeInjectorState(d *dec, st *failure.InjectorState) {
	st.Injected = int(d.i64())
	if n := d.count(8); n > 0 {
		st.Victims = make([]core.NodeID, n)
		for i := range st.Victims {
			st.Victims[i] = core.NodeID(d.i64())
		}
	}
	st.Stopped = d.boolean()
	st.NextAt = d.f64()
	st.RNG = decodeRNG(d)
}

func decodeHarnessState(d *dec, st *forward.HarnessState) {
	st.Generated = int(d.i64())
	st.Succeeded = int(d.i64())
	st.RatioPoints = decodePoints(d)
	st.HopsPoints = decodePoints(d)
	st.RNG = decodeRNG(d)
	st.NextGenAt = d.f64()
}

func decodePoints(d *dec) []metrics.Point {
	n := d.count(16)
	if n == 0 {
		return nil
	}
	pts := make([]metrics.Point, n)
	for i := range pts {
		pts[i].T = d.f64()
		pts[i].V = d.f64()
	}
	return pts
}

func decodeSamples(d *dec) []coverage.Sample {
	n := d.count(12)
	if n == 0 {
		return nil
	}
	samples := make([]coverage.Sample, n)
	for i := range samples {
		samples[i].T = d.f64()
		if k := d.count(8); k > 0 {
			samples[i].ByK = make([]float64, k)
			for j := range samples[i].ByK {
				samples[i].ByK[j] = d.f64()
			}
		}
	}
	return samples
}
