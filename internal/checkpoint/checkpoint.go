// Package checkpoint implements versioned snapshot/restore for the whole
// simulation. A Snapshot captures, at a quiescent event boundary (no radio
// frames in flight), the full model state: per-node PEAS state machines
// with their pending timers re-expressed as serializable records, battery
// charge, RNG stream positions, the failure schedule, the data workload,
// and the metric series. The experiment runner (internal/experiment) takes
// and restores snapshots; this package owns the in-memory representation,
// the canonical binary codec, and the state hash.
//
// Determinism contract: restoring a snapshot and running to time T yields
// bit-identical model state to running the original simulation to T
// without interruption. StateHash turns that from an assumption into a
// checked invariant — equal hashes mean equal states, and the hash is
// cheap enough to compare at many sample times (see the verify mode of
// cmd/peas-sim).
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"

	"peas/internal/coverage"
	"peas/internal/failure"
	"peas/internal/forward"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/radio"
)

// Version is the checkpoint format version written into the header.
// Decoders reject other versions rather than guessing.
//
// History: v1 original format; v2 added the optional Net.NodeSeeds
// sequence after Net.Positions.
const Version uint32 = 2

// Snapshot is the full state of a simulation run at one instant.
type Snapshot struct {
	// SimTime is the simulation clock at the capture boundary.
	SimTime float64
	// Horizon is the resolved absolute end time of the run, so a resume
	// needs no external configuration (it may still be overridden to
	// extend a finished run).
	Horizon float64
	// FailuresPer5000s, Forwarding and CoverageSpacing are the
	// experiment-level knobs of the run.
	FailuresPer5000s float64
	Forwarding       bool
	CoverageSpacing  float64
	// Net is the full deployment configuration. The static parts of the
	// simulation — positions, spatial index, radio quality field — are
	// deterministically rebuilt from it on restore; only mutable state is
	// carried explicitly.
	Net node.Config
	// Nodes is the mutable per-node state, indexed by node ID.
	Nodes []node.NodeState
	// Medium is the radio channel state (counters, occupancy, RNG).
	Medium radio.MediumState
	// Injector is the failure schedule state.
	Injector failure.InjectorState
	// Forward is the data-workload state; nil when forwarding is off.
	Forward *forward.HarnessState
	// TrackerSamples is the coverage history recorded so far.
	TrackerSamples []coverage.Sample
	// WorkingSeries is the working-node-count history.
	WorkingSeries []metrics.Point
	// NextSampleAt is the absolute deadline of the next periodic coverage
	// sample.
	NextSampleAt float64
}

// StateHash is the SHA-256 of the canonical encoding. Two runs are in the
// same state exactly when their snapshots hash equal; comparing hashes is
// the cheap divergence check the verify mode and the determinism tests
// build on.
func (s *Snapshot) StateHash() [sha256.Size]byte {
	return sha256.Sum256(s.EncodeBytes())
}

// StateHashHex returns StateHash as a hex string.
func (s *Snapshot) StateHashHex() string {
	h := s.StateHash()
	return hex.EncodeToString(h[:])
}
