package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecodeBytes feeds arbitrary bytes to the snapshot decoder: it must
// never panic and never over-allocate from a corrupted length field, and
// whatever it accepts must re-encode byte-identically and decode again to
// the same bytes.
func FuzzDecodeBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(magic[:])
	f.Add((&Snapshot{}).EncodeBytes())
	f.Add(sampleSnapshot().EncodeBytes())
	// A valid header with a hostile node count.
	hostile := append([]byte{}, magic[:]...)
	hostile = append(hostile, 1, 0, 0, 0)
	hostile = append(hostile, bytes.Repeat([]byte{0xff}, 64)...)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeBytes(data)
		if err != nil {
			return
		}
		first := snap.EncodeBytes()
		if !bytes.Equal(first, data) {
			t.Fatalf("accepted input does not re-encode identically: %d vs %d bytes",
				len(data), len(first))
		}
		back, err := DecodeBytes(first)
		if err != nil {
			t.Fatalf("re-decode of accepted input failed: %v", err)
		}
		if !bytes.Equal(back.EncodeBytes(), first) {
			t.Fatal("second round trip diverged")
		}
	})
}
