package checkpoint

import (
	"crypto/sha256"
	"fmt"
	"io"

	"peas/internal/core"
	"peas/internal/stats"
)

// LiveNode is the per-node checkpoint of the live runtime (package
// peasnet): everything a supervisor needs to rebuild one crashed node
// and resume it from where the snapshot was taken — the protocol clock,
// the node's private RNG stream, the remaining battery charge, and the
// full protocol state including pending timers. Unlike Snapshot, which
// captures a whole simulated network at a quiescent boundary, a LiveNode
// is captured per node on its event loop while the rest of the cluster
// keeps running.
type LiveNode struct {
	// ID is the node identifier on the transport.
	ID int
	// ProtoTime is the node's protocol clock at capture.
	ProtoTime float64
	// RNG is the node's private random stream.
	RNG stats.RNGState
	// BatteryJoules is the remaining virtual charge; negative means
	// battery emulation was off.
	BatteryJoules float64
	// Proto is the serializable protocol state.
	Proto core.ProtocolState
}

// LiveVersion is the LiveNode format version.
const LiveVersion uint32 = 1

var liveMagic = [8]byte{'P', 'E', 'A', 'S', 'L', 'I', 'V', 'E'}

// EncodeBytes returns the canonical encoding of the live-node
// checkpoint, in the same fixed-order little-endian style as Snapshot.
func (s *LiveNode) EncodeBytes() []byte {
	e := &enc{buf: make([]byte, 0, 512)}
	e.buf = append(e.buf, liveMagic[:]...)
	e.u32(LiveVersion)
	e.i64(int64(s.ID))
	e.f64(s.ProtoTime)
	encodeRNG(e, s.RNG)
	e.f64(s.BatteryJoules)
	encodeProtocolState(e, &s.Proto)
	return e.buf
}

// Encode writes the canonical encoding to w.
func (s *LiveNode) Encode(w io.Writer) error {
	_, err := w.Write(s.EncodeBytes())
	return err
}

// StateHash returns the SHA-256 of the canonical encoding.
func (s *LiveNode) StateHash() [32]byte { return sha256.Sum256(s.EncodeBytes()) }

// DecodeLiveNode parses a canonical live-node checkpoint. Corrupted or
// truncated input yields an error wrapping ErrCorrupt; unknown versions
// yield ErrVersion.
func DecodeLiveNode(data []byte) (*LiveNode, error) {
	d := &dec{buf: data}
	head := d.take(len(liveMagic))
	if d.err != nil || [8]byte(head) != liveMagic {
		return nil, fmt.Errorf("%w: bad live-node magic", ErrCorrupt)
	}
	if v := d.u32(); d.err == nil && v != LiveVersion {
		return nil, fmt.Errorf("%w: got %d, this build reads %d", ErrVersion, v, LiveVersion)
	}
	s := &LiveNode{}
	s.ID = int(d.i64())
	s.ProtoTime = d.f64()
	s.RNG = decodeRNG(d)
	s.BatteryJoules = d.f64()
	decodeProtocolState(d, &s.Proto)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return s, nil
}
