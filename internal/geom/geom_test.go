package geom

import (
	"math"
	"testing"
	"testing/quick"

	"peas/internal/stats"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same", Point{1, 1}, Point{1, 1}, 0},
		{"unit-x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Dist = %v, want %v", got, tc.want)
			}
			if got := tc.p.Dist2(tc.q); math.Abs(got-tc.want*tc.want) > 1e-9 {
				t.Errorf("Dist2 = %v, want %v", got, tc.want*tc.want)
			}
		})
	}
}

func TestDistProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Symmetry.
	if err := quick.Check(func(ax, ay, bx, by float64) bool {
		if bad(ax) || bad(ay) || bad(bx) || bad(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}, cfg); err != nil {
		t.Error("symmetry:", err)
	}
	// Triangle inequality.
	if err := quick.Check(func(ax, ay, bx, by, cx, cy float64) bool {
		if bad(ax) || bad(ay) || bad(bx) || bad(by) || bad(cx) || bad(cy) {
			return true
		}
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}, cfg); err != nil {
		t.Error("triangle inequality:", err)
	}
}

func bad(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 }

func TestFieldContainsClamp(t *testing.T) {
	f := NewField(50, 30)
	if f.Area() != 1500 {
		t.Errorf("area = %v", f.Area())
	}
	if !f.Contains(Point{0, 0}) || !f.Contains(Point{50, 30}) {
		t.Error("corners must be contained")
	}
	if f.Contains(Point{50.1, 0}) || f.Contains(Point{-0.1, 5}) {
		t.Error("outside points must not be contained")
	}
	if got := f.Clamp(Point{60, -5}); got != (Point{50, 0}) {
		t.Errorf("clamp = %v", got)
	}
	if got := f.Center(); got != (Point{25, 15}) {
		t.Errorf("center = %v", got)
	}
}

func TestUniformDeploy(t *testing.T) {
	f := NewField(50, 50)
	rng := stats.NewRNG(1)
	pts := UniformDeploy(f, 2000, rng)
	if len(pts) != 2000 {
		t.Fatalf("got %d points", len(pts))
	}
	var cx, cy float64
	for _, p := range pts {
		if !f.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(pts))
	cy /= float64(len(pts))
	if math.Abs(cx-25) > 1.5 || math.Abs(cy-25) > 1.5 {
		t.Errorf("centroid (%v, %v) far from field center", cx, cy)
	}
}

func TestGridDeploy(t *testing.T) {
	f := NewField(50, 50)
	pts := GridDeploy(f, 100, 0, stats.NewRNG(1))
	if len(pts) != 100 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !f.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
	}
	// Without jitter, points form a regular lattice: min pairwise
	// distance equals the lattice pitch (5 m for 100 points on 50x50).
	min := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < min {
				min = d
			}
		}
	}
	if math.Abs(min-5) > 1e-9 {
		t.Errorf("lattice pitch = %v, want 5", min)
	}
	if GridDeploy(f, 0, 0, stats.NewRNG(1)) != nil {
		t.Error("zero nodes should deploy nil")
	}
}

func TestGridDeployJitterStaysInField(t *testing.T) {
	f := NewField(20, 20)
	pts := GridDeploy(f, 64, 3, stats.NewRNG(2))
	for _, p := range pts {
		if !f.Contains(p) {
			t.Fatalf("jittered point %v escaped the field", p)
		}
	}
}
