// Package geom provides the two-dimensional geometry used by the PEAS
// simulator: points, distances, rectangular deployment fields, uniform node
// placement, and a bucket-grid spatial index for range queries.
package geom

import (
	"fmt"
	"math"

	"peas/internal/stats"
)

// Point is a position in the 2-D deployment field, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Range
// checks compare against a squared radius to avoid the Sqrt in hot paths.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String renders the point as "(x, y)" with centimeter precision.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Field is an axis-aligned rectangular deployment area [0,W] x [0,H].
type Field struct {
	Width, Height float64
}

// NewField returns a field of the given dimensions in meters.
func NewField(width, height float64) Field {
	return Field{Width: width, Height: height}
}

// Area returns the field area in square meters.
func (f Field) Area() float64 { return f.Width * f.Height }

// Contains reports whether p lies inside the field (inclusive).
func (f Field) Contains(p Point) bool {
	return p.X >= 0 && p.X <= f.Width && p.Y >= 0 && p.Y <= f.Height
}

// Clamp returns p restricted to the field boundary.
func (f Field) Clamp(p Point) Point {
	return Point{
		X: math.Max(0, math.Min(f.Width, p.X)),
		Y: math.Max(0, math.Min(f.Height, p.Y)),
	}
}

// Center returns the field's center point.
func (f Field) Center() Point { return Point{X: f.Width / 2, Y: f.Height / 2} }

// UniformDeploy places n nodes uniformly at random in the field, as in the
// paper's evaluation ("nodes are uniformly distributed in the field
// initially and remain stationary once deployed").
func UniformDeploy(f Field, n int, rng *stats.RNG) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Uniform(0, f.Width), Y: rng.Uniform(0, f.Height)}
	}
	return pts
}

// ClusterDeploy places n nodes around `clusters` uniformly chosen hotspot
// centers with Gaussian spread sigma, clamped to the field — the "uneven
// distribution" of paper §4, which "may cause the system to function for
// less time because regions with fewer nodes will die out much earlier".
func ClusterDeploy(f Field, n, clusters int, sigma float64, rng *stats.RNG) []Point {
	if n <= 0 {
		return nil
	}
	if clusters < 1 {
		clusters = 1
	}
	centers := UniformDeploy(f, clusters, rng)
	pts := make([]Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		pts[i] = f.Clamp(Point{
			X: c.X + sigma*rng.Normal(),
			Y: c.Y + sigma*rng.Normal(),
		})
	}
	return pts
}

// GridDeploy places n nodes on a near-square lattice with optional uniform
// jitter, a deployment alternative discussed in paper §4 ("evenly deployed
// nodes will work longer than those deployed irregularly").
func GridDeploy(f Field, n int, jitter float64, rng *stats.RNG) []Point {
	if n <= 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(n) * f.Width / f.Height)))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	dx := f.Width / float64(cols)
	dy := f.Height / float64(rows)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		p := Point{
			X: (float64(c) + 0.5) * dx,
			Y: (float64(r) + 0.5) * dy,
		}
		if jitter > 0 {
			p.X += rng.Uniform(-jitter, jitter)
			p.Y += rng.Uniform(-jitter, jitter)
		}
		pts = append(pts, f.Clamp(p))
	}
	return pts
}
