package geom

import (
	"math"
	"testing"

	"peas/internal/stats"
)

func TestClusterDeployStaysInField(t *testing.T) {
	f := NewField(50, 50)
	pts := ClusterDeploy(f, 500, 8, 6, stats.NewRNG(1))
	if len(pts) != 500 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !f.Contains(p) {
			t.Fatalf("point %v escaped the field", p)
		}
	}
}

func TestClusterDeployIsClustered(t *testing.T) {
	f := NewField(50, 50)
	rng := stats.NewRNG(2)
	clustered := ClusterDeploy(f, 400, 4, 3, rng.Split())
	uniform := UniformDeploy(f, 400, rng.Split())

	// Clustered deployments have a much smaller mean nearest-neighbor
	// distance than uniform ones of the same size.
	if c, u := meanNearest(clustered), meanNearest(uniform); c >= u*0.8 {
		t.Errorf("clustered NN distance %v not < uniform %v", c, u)
	}
}

func meanNearest(pts []Point) float64 {
	var sum float64
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum / float64(len(pts))
}

func TestClusterDeployEdgeCases(t *testing.T) {
	f := NewField(10, 10)
	if ClusterDeploy(f, 0, 3, 2, stats.NewRNG(1)) != nil {
		t.Error("zero points")
	}
	// Zero clusters clamps to one.
	pts := ClusterDeploy(f, 10, 0, 1, stats.NewRNG(1))
	if len(pts) != 10 {
		t.Errorf("points = %d", len(pts))
	}
}

func TestDeploymentsDiffer(t *testing.T) {
	f := NewField(50, 50)
	a := UniformDeploy(f, 50, stats.NewRNG(1))
	b := UniformDeploy(f, 50, stats.NewRNG(2))
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds gave the same deployment")
	}
	// Same seed gives the same deployment.
	c := UniformDeploy(f, 50, stats.NewRNG(1))
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same seed diverged")
		}
	}
}
