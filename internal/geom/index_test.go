package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"peas/internal/stats"
)

// TestIndexMatchesBruteForce is the core property of the spatial index:
// Within must return exactly the points a linear scan finds.
func TestIndexMatchesBruteForce(t *testing.T) {
	f := NewField(50, 50)
	rng := stats.NewRNG(4)
	pts := UniformDeploy(f, 400, rng)
	for _, cell := range []float64{0.5, 3, 10, 100} {
		idx := NewIndex(f, pts, cell)
		for trial := 0; trial < 50; trial++ {
			center := Point{rng.Uniform(-5, 55), rng.Uniform(-5, 55)}
			radius := rng.Uniform(0, 15)

			var got []int
			idx.Within(center, radius, func(i int, dist float64) {
				got = append(got, i)
				// The index reports sqrt(Dist2); Dist uses Hypot, which
				// can differ by an ulp.
				if want := center.Dist(pts[i]); dist < want-1e-9 || dist > want+1e-9 {
					t.Fatalf("reported dist %v, want %v", dist, want)
				}
			})
			var want []int
			for i, p := range pts {
				if center.Dist(p) <= radius {
					want = append(want, i)
				}
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("cell=%v: got %d points, want %d", cell, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cell=%v: got %v, want %v", cell, got, want)
				}
			}
			if n := idx.CountWithin(center, radius); n != len(want) {
				t.Fatalf("CountWithin = %d, want %d", n, len(want))
			}
		}
	}
}

func TestIndexEdgeCases(t *testing.T) {
	f := NewField(10, 10)
	idx := NewIndex(f, []Point{{0, 0}, {10, 10}, {5, 5}}, 3)
	if idx.Len() != 3 {
		t.Fatalf("len = %d", idx.Len())
	}
	if idx.At(2) != (Point{5, 5}) {
		t.Errorf("At(2) = %v", idx.At(2))
	}
	// Negative radius finds nothing.
	if n := idx.CountWithin(Point{5, 5}, -1); n != 0 {
		t.Errorf("negative radius: %d", n)
	}
	// Zero radius finds exactly coincident points.
	if n := idx.CountWithin(Point{5, 5}, 0); n != 1 {
		t.Errorf("zero radius: %d, want 1", n)
	}
	// Radius covering all.
	if n := idx.CountWithin(Point{5, 5}, 100); n != 3 {
		t.Errorf("huge radius: %d, want 3", n)
	}
	// Empty index.
	empty := NewIndex(f, nil, 1)
	if n := empty.CountWithin(Point{1, 1}, 5); n != 0 {
		t.Errorf("empty index returned %d", n)
	}
	// Non-positive cell size falls back to a sane default.
	weird := NewIndex(f, []Point{{1, 1}}, 0)
	if n := weird.CountWithin(Point{1, 1}, 1); n != 1 {
		t.Errorf("zero cell size: %d, want 1", n)
	}
}

// TestIndexFieldEdges pins behavior for points sitting exactly on the
// field boundary and for query centers on or beyond it: edge points live
// in the clamped outermost buckets and must still be found from either
// side, including by centers outside the field entirely.
func TestIndexFieldEdges(t *testing.T) {
	f := NewField(12, 12)
	pts := []Point{
		{0, 0}, {12, 0}, {0, 12}, {12, 12}, // corners
		{6, 0}, {6, 12}, {0, 6}, {12, 6}, // edge midpoints
	}
	idx := NewIndex(f, pts, 4)
	for i, p := range pts {
		if n := idx.CountWithin(p, 0); n < 1 {
			t.Errorf("point %d at %v not found at zero radius", i, p)
		}
	}
	// A center outside the field must still see boundary points in range.
	if n := idx.CountWithin(Point{-3, -3}, 5); n != 1 {
		t.Errorf("outside corner query: %d points, want 1 (the (0,0) corner)", n)
	}
	if n := idx.CountWithin(Point{15, 6}, 3); n != 1 {
		t.Errorf("outside edge query: %d points, want 1 (the (12,6) midpoint)", n)
	}
	// Far outside: nothing in range.
	if n := idx.CountWithin(Point{100, 100}, 10); n != 0 {
		t.Errorf("distant query returned %d points", n)
	}
	// Points outside the declared field are clamped into the border
	// buckets at build time but keep their true coordinates.
	stray := NewIndex(f, []Point{{-2, 5}, {14, 5}}, 4)
	if n := stray.CountWithin(Point{-2, 5}, 0.5); n != 1 {
		t.Errorf("stray point below origin: %d, want 1", n)
	}
	if n := stray.CountWithin(Point{14, 5}, 0.5); n != 1 {
		t.Errorf("stray point past width: %d, want 1", n)
	}
}

// TestIndexBucketBorderStraddling exercises queries whose circle edge
// lands exactly on bucket borders and on point positions: a point at
// distance == radius is included (the contract says inclusive), whether
// it sits inside the center's bucket, in an adjacent one, or exactly on
// the shared border line.
func TestIndexBucketBorderStraddling(t *testing.T) {
	f := NewField(20, 20)
	// Points on every bucket-border crossing of row y=10 (cell = 5), plus
	// off-border controls.
	pts := []Point{
		{5, 10}, {10, 10}, {15, 10}, // on vertical borders
		{10, 5}, {10, 15}, // on horizontal borders
		{7.5, 10}, {12.5, 10}, // bucket interiors
	}
	idx := NewIndex(f, pts, 5)

	// Center exactly on a 4-bucket corner; radius exactly reaching the
	// neighboring border points.
	if n := idx.CountWithin(Point{10, 10}, 5); n != 7 {
		t.Errorf("corner-centered query r=5: %d points, want all 7", n)
	}
	// Radius epsilon short of the border points: only the center point
	// and the interior ones within range survive.
	if n := idx.CountWithin(Point{10, 10}, 5-1e-9); n != 3 {
		t.Errorf("r=5-eps: %d points, want 3 (center + two interiors)", n)
	}
	// Exact inclusion at distance == radius across a bucket border.
	if n := idx.CountWithin(Point{7.5, 10}, 2.5); n != 3 {
		t.Errorf("interior center r=2.5: %d, want 3 (itself + borders at 5 and 10)", n)
	}
	// A zero-radius query on a border point finds exactly that point.
	if n := idx.CountWithin(Point{5, 10}, 0); n != 1 {
		t.Errorf("zero radius on border: %d, want 1", n)
	}
}

// TestIndexDegenerateCellSize checks the cellSize guard rails: zero and
// negative sizes fall back to the 1 m default instead of panicking or
// corrupting bucket arithmetic.
func TestIndexDegenerateCellSize(t *testing.T) {
	f := NewField(10, 10)
	pts := UniformDeploy(f, 60, stats.NewRNG(9))
	for _, cell := range []float64{0, -1, -1e9} {
		idx := NewIndex(f, pts, cell)
		center := Point{5, 5}
		want := 0
		for _, p := range pts {
			if center.Dist(p) <= 4 {
				want++
			}
		}
		if got := idx.CountWithin(center, 4); got != want {
			t.Errorf("cellSize=%v: got %d points, want %d", cell, got, want)
		}
	}
	// Cell size far larger than the field degenerates to one bucket and
	// must still answer correctly.
	one := NewIndex(f, pts, 1e6)
	if got, want := one.CountWithin(Point{5, 5}, 100), len(pts); got != want {
		t.Errorf("giant cell: got %d, want %d", got, want)
	}
}

func TestIndexDeterministicOrder(t *testing.T) {
	f := NewField(20, 20)
	pts := UniformDeploy(f, 100, stats.NewRNG(8))
	idx := NewIndex(f, pts, 3)
	collect := func() []int {
		var order []int
		idx.Within(Point{10, 10}, 8, func(i int, _ float64) { order = append(order, i) })
		return order
	}
	first := collect()
	for trial := 0; trial < 5; trial++ {
		again := collect()
		if len(again) != len(first) {
			t.Fatal("iteration order changed length")
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatal("iteration order is not deterministic")
			}
		}
	}
}

func TestIndexCopiesInput(t *testing.T) {
	f := NewField(10, 10)
	pts := []Point{{1, 1}}
	idx := NewIndex(f, pts, 1)
	pts[0] = Point{9, 9}
	if idx.At(0) != (Point{1, 1}) {
		t.Error("index aliased caller's slice")
	}
}

func TestIndexQuick(t *testing.T) {
	f := NewField(30, 30)
	err := quick.Check(func(seed int64, radius float64) bool {
		if radius < 0 || radius > 40 || bad(radius) {
			return true
		}
		rng := stats.NewRNG(seed)
		pts := UniformDeploy(f, 50, rng)
		idx := NewIndex(f, pts, 2.5)
		center := Point{rng.Uniform(0, 30), rng.Uniform(0, 30)}
		want := 0
		for _, p := range pts {
			if center.Dist(p) <= radius {
				want++
			}
		}
		return idx.CountWithin(center, radius) == want
	}, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Error(err)
	}
}
