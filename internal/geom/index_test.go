package geom

import (
	"sort"
	"testing"
	"testing/quick"

	"peas/internal/stats"
)

// TestIndexMatchesBruteForce is the core property of the spatial index:
// Within must return exactly the points a linear scan finds.
func TestIndexMatchesBruteForce(t *testing.T) {
	f := NewField(50, 50)
	rng := stats.NewRNG(4)
	pts := UniformDeploy(f, 400, rng)
	for _, cell := range []float64{0.5, 3, 10, 100} {
		idx := NewIndex(f, pts, cell)
		for trial := 0; trial < 50; trial++ {
			center := Point{rng.Uniform(-5, 55), rng.Uniform(-5, 55)}
			radius := rng.Uniform(0, 15)

			var got []int
			idx.Within(center, radius, func(i int, dist float64) {
				got = append(got, i)
				// The index reports sqrt(Dist2); Dist uses Hypot, which
				// can differ by an ulp.
				if want := center.Dist(pts[i]); dist < want-1e-9 || dist > want+1e-9 {
					t.Fatalf("reported dist %v, want %v", dist, want)
				}
			})
			var want []int
			for i, p := range pts {
				if center.Dist(p) <= radius {
					want = append(want, i)
				}
			}
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("cell=%v: got %d points, want %d", cell, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cell=%v: got %v, want %v", cell, got, want)
				}
			}
			if n := idx.CountWithin(center, radius); n != len(want) {
				t.Fatalf("CountWithin = %d, want %d", n, len(want))
			}
		}
	}
}

func TestIndexEdgeCases(t *testing.T) {
	f := NewField(10, 10)
	idx := NewIndex(f, []Point{{0, 0}, {10, 10}, {5, 5}}, 3)
	if idx.Len() != 3 {
		t.Fatalf("len = %d", idx.Len())
	}
	if idx.At(2) != (Point{5, 5}) {
		t.Errorf("At(2) = %v", idx.At(2))
	}
	// Negative radius finds nothing.
	if n := idx.CountWithin(Point{5, 5}, -1); n != 0 {
		t.Errorf("negative radius: %d", n)
	}
	// Zero radius finds exactly coincident points.
	if n := idx.CountWithin(Point{5, 5}, 0); n != 1 {
		t.Errorf("zero radius: %d, want 1", n)
	}
	// Radius covering all.
	if n := idx.CountWithin(Point{5, 5}, 100); n != 3 {
		t.Errorf("huge radius: %d, want 3", n)
	}
	// Empty index.
	empty := NewIndex(f, nil, 1)
	if n := empty.CountWithin(Point{1, 1}, 5); n != 0 {
		t.Errorf("empty index returned %d", n)
	}
	// Non-positive cell size falls back to a sane default.
	weird := NewIndex(f, []Point{{1, 1}}, 0)
	if n := weird.CountWithin(Point{1, 1}, 1); n != 1 {
		t.Errorf("zero cell size: %d, want 1", n)
	}
}

func TestIndexDeterministicOrder(t *testing.T) {
	f := NewField(20, 20)
	pts := UniformDeploy(f, 100, stats.NewRNG(8))
	idx := NewIndex(f, pts, 3)
	collect := func() []int {
		var order []int
		idx.Within(Point{10, 10}, 8, func(i int, _ float64) { order = append(order, i) })
		return order
	}
	first := collect()
	for trial := 0; trial < 5; trial++ {
		again := collect()
		if len(again) != len(first) {
			t.Fatal("iteration order changed length")
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatal("iteration order is not deterministic")
			}
		}
	}
}

func TestIndexCopiesInput(t *testing.T) {
	f := NewField(10, 10)
	pts := []Point{{1, 1}}
	idx := NewIndex(f, pts, 1)
	pts[0] = Point{9, 9}
	if idx.At(0) != (Point{1, 1}) {
		t.Error("index aliased caller's slice")
	}
}

func TestIndexQuick(t *testing.T) {
	f := NewField(30, 30)
	err := quick.Check(func(seed int64, radius float64) bool {
		if radius < 0 || radius > 40 || bad(radius) {
			return true
		}
		rng := stats.NewRNG(seed)
		pts := UniformDeploy(f, 50, rng)
		idx := NewIndex(f, pts, 2.5)
		center := Point{rng.Uniform(0, 30), rng.Uniform(0, 30)}
		want := 0
		for _, p := range pts {
			if center.Dist(p) <= radius {
				want++
			}
		}
		return idx.CountWithin(center, radius) == want
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}
