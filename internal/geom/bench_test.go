package geom

import (
	"testing"

	"peas/internal/stats"
)

// Microbenchmarks for the spatial index hot path. Run with
//
//	go test ./internal/geom -run=NONE -bench=. -benchmem
//
// Within2 and CountWithin are called on every broadcast and every coverage
// sample respectively; both must report 0 allocs/op.

func benchIndex(n int) (*Index, []Point) {
	field := NewField(50, 50)
	rng := stats.NewRNG(1)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	return NewIndex(field, pts, 3), pts
}

func BenchmarkNewIndex(b *testing.B) {
	field := NewField(50, 50)
	rng := stats.NewRNG(1)
	pts := make([]Point, 400)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(field, pts, 3)
	}
}

func BenchmarkWithin2(b *testing.B) {
	idx, pts := benchIndex(400)
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Within2(pts[i%len(pts)], 10, func(j int, d2 float64) { sink += j })
	}
	_ = sink
}

func BenchmarkWithin(b *testing.B) {
	idx, pts := benchIndex(400)
	sink := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Within(pts[i%len(pts)], 10, func(j int, dist float64) { sink += dist })
	}
	_ = sink
}

func BenchmarkCountWithin(b *testing.B) {
	idx, pts := benchIndex(400)
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += idx.CountWithin(pts[i%len(pts)], 3)
	}
	_ = sink
}
