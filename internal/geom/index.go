package geom

import "math"

// Index is a bucket-grid spatial index over a fixed set of points. The
// radio medium queries it on every broadcast to find candidate receivers,
// so lookups must not scan all nodes.
//
// The index is built once at deployment time; sensor nodes are stationary
// (paper §5.2), so there is no update path.
type Index struct {
	field   Field
	cell    float64
	cols    int
	rows    int
	buckets [][]int
	points  []Point
}

// NewIndex builds an index over points with the given bucket edge length.
// A cell size near the dominant query radius keeps candidate sets small.
func NewIndex(field Field, points []Point, cellSize float64) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	cols := int(math.Ceil(field.Width/cellSize)) + 1
	rows := int(math.Ceil(field.Height/cellSize)) + 1
	idx := &Index{
		field:   field,
		cell:    cellSize,
		cols:    cols,
		rows:    rows,
		buckets: make([][]int, cols*rows),
		points:  append([]Point(nil), points...),
	}
	for i, p := range idx.points {
		b := idx.bucketOf(p)
		idx.buckets[b] = append(idx.buckets[b], i)
	}
	return idx
}

func (idx *Index) bucketOf(p Point) int {
	c := int(p.X / idx.cell)
	r := int(p.Y / idx.cell)
	if c < 0 {
		c = 0
	}
	if c >= idx.cols {
		c = idx.cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= idx.rows {
		r = idx.rows - 1
	}
	return r*idx.cols + c
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.points) }

// At returns the position of point i.
func (idx *Index) At(i int) Point { return idx.points[i] }

// Within calls fn for every indexed point within radius of center,
// including a point exactly at the radius. fn receives the point's index
// and its distance from center. Iteration order is deterministic (bucket
// scan order) so simulations remain reproducible.
func (idx *Index) Within(center Point, radius float64, fn func(i int, dist float64)) {
	if radius < 0 {
		return
	}
	r2 := radius * radius
	c0 := int((center.X - radius) / idx.cell)
	c1 := int((center.X + radius) / idx.cell)
	r0 := int((center.Y - radius) / idx.cell)
	r1 := int((center.Y + radius) / idx.cell)
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= idx.cols {
		c1 = idx.cols - 1
	}
	if r1 >= idx.rows {
		r1 = idx.rows - 1
	}
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			for _, i := range idx.buckets[row*idx.cols+col] {
				d2 := center.Dist2(idx.points[i])
				if d2 <= r2 {
					fn(i, math.Sqrt(d2))
				}
			}
		}
	}
}

// CountWithin returns the number of indexed points within radius of center.
func (idx *Index) CountWithin(center Point, radius float64) int {
	n := 0
	idx.Within(center, radius, func(int, float64) { n++ })
	return n
}
