package geom

import "math"

// Index is a bucket-grid spatial index over a fixed set of points. The
// radio medium queries it on every broadcast to find candidate receivers,
// so lookups must not scan all nodes.
//
// The index is built once at deployment time; sensor nodes are stationary
// (paper §5.2), so there is no update path.
type Index struct {
	field Field
	cell  float64
	cols  int
	rows  int
	// Buckets in CSR layout: the members of bucket b are
	// entries[starts[b]:starts[b+1]], in ascending point order. One flat
	// backing array replaces a slice-of-slices: two allocations at build
	// time and contiguous scans at query time.
	starts  []int32
	entries []int32
	points  []Point
}

// NewIndex builds an index over points with the given bucket edge length.
// A cell size near the dominant query radius keeps candidate sets small.
func NewIndex(field Field, points []Point, cellSize float64) *Index {
	if cellSize <= 0 {
		cellSize = 1
	}
	cols := int(math.Ceil(field.Width/cellSize)) + 1
	rows := int(math.Ceil(field.Height/cellSize)) + 1
	idx := &Index{
		field:  field,
		cell:   cellSize,
		cols:   cols,
		rows:   rows,
		starts: make([]int32, cols*rows+1),
		points: append([]Point(nil), points...),
	}
	// Counting pass, prefix sum, fill pass: starts[b] ends up at the
	// beginning of bucket b and the fill (in point order) keeps each
	// bucket's members ascending, which pins the deterministic visit order.
	counts := make([]int32, cols*rows)
	for _, p := range idx.points {
		counts[idx.bucketOf(p)]++
	}
	var sum int32
	for b, c := range counts {
		idx.starts[b] = sum
		sum += c
	}
	idx.starts[len(counts)] = sum
	idx.entries = make([]int32, sum)
	fill := make([]int32, cols*rows)
	copy(fill, idx.starts[:len(counts)])
	for i, p := range idx.points {
		b := idx.bucketOf(p)
		idx.entries[fill[b]] = int32(i)
		fill[b]++
	}
	return idx
}

func (idx *Index) bucketOf(p Point) int {
	c := int(p.X / idx.cell)
	r := int(p.Y / idx.cell)
	if c < 0 {
		c = 0
	}
	if c >= idx.cols {
		c = idx.cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= idx.rows {
		r = idx.rows - 1
	}
	return r*idx.cols + c
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.points) }

// At returns the position of point i.
func (idx *Index) At(i int) Point { return idx.points[i] }

// Within calls fn for every indexed point within radius of center,
// including a point exactly at the radius. fn receives the point's index
// and its distance from center. Iteration order is deterministic (bucket
// scan order) so simulations remain reproducible.
func (idx *Index) Within(center Point, radius float64, fn func(i int, dist float64)) {
	idx.Within2(center, radius, func(i int, d2 float64) {
		fn(i, math.Sqrt(d2))
	})
}

// Within2 is the hot-path variant of Within: fn receives the squared
// distance, so callers that filter most candidates (the radio medium
// visits every in-range node but delivers to few) pay for a Sqrt only on
// the points they keep. Inclusion is decided on squared values exactly as
// in Within — the two visit identical point sets in identical order.
func (idx *Index) Within2(center Point, radius float64, fn func(i int, d2 float64)) {
	if radius < 0 {
		return
	}
	r2 := radius * radius
	c0 := int((center.X - radius) / idx.cell)
	c1 := int((center.X + radius) / idx.cell)
	r0 := int((center.Y - radius) / idx.cell)
	r1 := int((center.Y + radius) / idx.cell)
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= idx.cols {
		c1 = idx.cols - 1
	}
	if r1 >= idx.rows {
		r1 = idx.rows - 1
	}
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			b := row*idx.cols + col
			for _, i := range idx.entries[idx.starts[b]:idx.starts[b+1]] {
				d2 := center.Dist2(idx.points[i])
				if d2 <= r2 {
					fn(int(i), d2)
				}
			}
		}
	}
}

// CountWithin returns the number of indexed points within radius of center.
// The loop is inlined rather than layered over Within: counting pays no
// callback indirection per candidate.
func (idx *Index) CountWithin(center Point, radius float64) int {
	if radius < 0 {
		return 0
	}
	r2 := radius * radius
	c0 := int((center.X - radius) / idx.cell)
	c1 := int((center.X + radius) / idx.cell)
	r0 := int((center.Y - radius) / idx.cell)
	r1 := int((center.Y + radius) / idx.cell)
	if c0 < 0 {
		c0 = 0
	}
	if r0 < 0 {
		r0 = 0
	}
	if c1 >= idx.cols {
		c1 = idx.cols - 1
	}
	if r1 >= idx.rows {
		r1 = idx.rows - 1
	}
	n := 0
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			b := row*idx.cols + col
			for _, i := range idx.entries[idx.starts[b]:idx.starts[b+1]] {
				if center.Dist2(idx.points[i]) <= r2 {
					n++
				}
			}
		}
	}
	return n
}
