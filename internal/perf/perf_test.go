package perf

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCPUProfileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatalf("StartCPUProfile: %v", err)
	}
	// Burn a little CPU so the profile is not empty on fast machines.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("cpu profile is empty")
	}
}

func TestHeapProfileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pprof")
	if err := WriteHeapProfile(path); err != nil {
		t.Fatalf("WriteHeapProfile: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.out")
	stop, err := StartTrace(path)
	if err != nil {
		t.Fatalf("StartTrace: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("trace is empty")
	}
}

func TestAllocMeterCountsAllocations(t *testing.T) {
	var m AllocMeter
	m.Start()
	sink := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 64))
	}
	if len(sink) != 1000 {
		t.Fatal("unreachable")
	}
	if got := m.Allocs(); got < 1000 {
		t.Fatalf("Allocs() = %d, want >= 1000", got)
	}
	if got := m.Bytes(); got < 64*1000 {
		t.Fatalf("Bytes() = %d, want >= 64000", got)
	}
}

func TestProfileErrorsOnBadPath(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "x")
	if _, err := StartCPUProfile(bad); err == nil {
		t.Error("StartCPUProfile: want error for unwritable path")
	}
	if err := WriteHeapProfile(bad); err == nil {
		t.Error("WriteHeapProfile: want error for unwritable path")
	}
	if _, err := StartTrace(bad); err == nil {
		t.Error("StartTrace: want error for unwritable path")
	}
}
