// Package perf provides the profiling capture helpers behind the
// performance-engineering workflow (DESIGN.md §9): one-call CPU, heap and
// execution-trace capture plus an allocation meter for deriving the
// allocs-per-event regression metric. cmd/peas-bench wires these to the
// -cpuprofile/-memprofile flags; ad-hoc experiments can use them directly.
package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("perf: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("perf: starting cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// collection timing) and writes the allocation profile to path. The
// "allocs" profile is used rather than "heap" so cumulative allocation
// sites show up even after their objects die — that is what matters when
// chasing allocs/event.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: creating heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		return fmt.Errorf("perf: writing heap profile: %w", err)
	}
	return nil
}

// StartTrace begins a runtime execution trace written to path and returns
// the function that stops it and closes the file.
func StartTrace(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("perf: creating trace: %w", err)
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("perf: starting trace: %w", err)
	}
	return func() error {
		trace.Stop()
		return f.Close()
	}, nil
}

// AllocMeter measures heap allocation counts across a region of code via
// runtime.MemStats deltas. Allocation counts of a deterministic
// single-goroutine simulation are themselves deterministic, which is what
// lets the bench gate treat allocs/event as a hard regression metric
// where wall time can only be advisory.
type AllocMeter struct {
	start runtime.MemStats
}

// Start runs a GC to settle pending frees and records the baseline.
func (m *AllocMeter) Start() {
	runtime.GC()
	runtime.ReadMemStats(&m.start)
}

// Allocs returns the number of heap objects allocated since Start.
func (m *AllocMeter) Allocs() uint64 {
	var now runtime.MemStats
	runtime.ReadMemStats(&now)
	return now.Mallocs - m.start.Mallocs
}

// Bytes returns the number of heap bytes allocated since Start.
func (m *AllocMeter) Bytes() uint64 {
	var now runtime.MemStats
	runtime.ReadMemStats(&now)
	return now.TotalAlloc - m.start.TotalAlloc
}
