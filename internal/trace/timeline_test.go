package trace

import (
	"strings"
	"testing"

	"peas/internal/node"
)

func timelineEvents() []Event {
	return []Event{
		{T: 0, Kind: KindState, Node: 0, Detail: "sleeping"},
		{T: 0, Kind: KindState, Node: 1, Detail: "sleeping"},
		{T: 5, Kind: KindState, Node: 0, Detail: "probing"},
		{T: 5.1, Kind: KindState, Node: 0, Detail: "working"},
		{T: 9, Kind: KindState, Node: 1, Detail: "probing"},
		{T: 9.1, Kind: KindState, Node: 1, Detail: "sleeping"},
		{T: 100, Kind: KindDeath, Node: 0, Detail: "failure"},
	}
}

func TestTimeline(t *testing.T) {
	tl := Timeline(timelineEvents())
	if len(tl) != 7 {
		t.Fatalf("points = %d", len(tl))
	}
	// After the working transition at t=5.1: 1 working, 1 sleeping.
	p := tl[3]
	if p.Working != 1 || p.Sleeping != 1 || p.Dead != 0 {
		t.Errorf("t=5.1 point %+v", p)
	}
	// Final point: node 0 dead, node 1 sleeping.
	final := tl[len(tl)-1]
	if final.Working != 0 || final.Dead != 1 || final.Sleeping != 1 {
		t.Errorf("final point %+v", final)
	}
}

func TestTimelineIgnoresPackets(t *testing.T) {
	events := append(timelineEvents(), Event{T: 50, Kind: KindPacket, Node: 0})
	if len(Timeline(events)) != 7 {
		t.Error("packet events should not add timeline points")
	}
}

func TestDownsample(t *testing.T) {
	tl := make([]TimelinePoint, 100)
	for i := range tl {
		tl[i] = TimelinePoint{T: float64(i)}
	}
	ds := Downsample(tl, 10)
	if len(ds) != 10 {
		t.Fatalf("len = %d", len(ds))
	}
	if ds[0].T != 0 || ds[9].T != 99 {
		t.Errorf("endpoints %v %v", ds[0].T, ds[9].T)
	}
	if got := Downsample(tl, 0); len(got) != 100 {
		t.Error("n=0 should keep everything")
	}
	if got := Downsample(tl[:5], 10); len(got) != 5 {
		t.Error("short input unchanged")
	}
}

func TestFormatTimeline(t *testing.T) {
	out := FormatTimeline(Timeline(timelineEvents()), 20)
	if !strings.Contains(out, "working nodes over time") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "W=1") {
		t.Errorf("working count missing:\n%s", out)
	}
	if FormatTimeline(nil, 10) != "(empty timeline)\n" {
		t.Error("empty timeline rendering")
	}
}

func TestDeathTimesSorted(t *testing.T) {
	events := []Event{
		{T: 9, Kind: KindDeath, Node: 2},
		{T: 3, Kind: KindDeath, Node: 1},
		{T: 5, Kind: KindState, Node: 0, Detail: "working"},
	}
	deaths := DeathTimes(events)
	if len(deaths) != 2 || deaths[0].Node != 1 || deaths[1].Node != 2 {
		t.Errorf("deaths %+v", deaths)
	}
}

// TestTimelineFromRealTrace runs a short simulation and checks the
// reconstructed timeline agrees with the network's final state.
func TestTimelineFromRealTrace(t *testing.T) {
	net, err := node.NewNetwork(node.DefaultConfig(60, 21))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(0)
	Attach(r, net)
	net.Start()
	net.Run(400)

	tl := Timeline(r.Events())
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	final := tl[len(tl)-1]
	if final.Working != net.WorkingCount() {
		t.Errorf("timeline working %d != network %d", final.Working, net.WorkingCount())
	}
	if final.Working+final.Sleeping+final.Probing+final.Dead != 60 {
		t.Errorf("timeline does not account for all nodes: %+v", final)
	}
}
