package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL feeds arbitrary text to the trace parser: it must never
// panic, and whatever events it accepts must survive a write/read round
// trip.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"t":1,"kind":"state","node":2,"detail":"working"}`)
	f.Add(`{"t":1}` + "\n" + `{"t":2,"kind":"death","node":0}`)
	f.Add(`garbage`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		r := NewRecorder(0)
		for _, ev := range events {
			r.Record(ev)
		}
		var buf bytes.Buffer
		if err := r.WriteJSONL(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(back))
		}
		for i := range back {
			if back[i] != events[i] {
				t.Fatalf("event %d changed: %#v -> %#v", i, events[i], back[i])
			}
		}
	})
}
