// Package trace records structured simulation events for debugging,
// visualization and post-hoc analysis. Events are appended to a Recorder
// and can be streamed as JSON Lines (one event per line), the format
// cmd/peas-sim emits with -trace.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind labels an event type.
type Kind string

// Event kinds emitted by the simulation observers.
const (
	KindState  Kind = "state"  // node changed operation mode
	KindDeath  Kind = "death"  // node died (depletion or failure)
	KindPacket Kind = "packet" // frame delivered to a node
	KindReport Kind = "report" // data report generated / delivered
	KindCustom Kind = "custom" // experiment-defined marker
)

// Event is one timed simulation occurrence.
type Event struct {
	// T is the simulation time in seconds.
	T float64 `json:"t"`
	// Kind labels the event type.
	Kind Kind `json:"kind"`
	// Node is the primary node involved, -1 when not applicable.
	Node int `json:"node"`
	// Detail is a kind-specific human-readable payload.
	Detail string `json:"detail,omitempty"`
	// Value is a kind-specific numeric payload.
	Value float64 `json:"value,omitempty"`
}

// Recorder buffers events in order. It is safe for use from a single
// simulation goroutine; Flush may be called from any goroutine after the
// run completes.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	limit  int
}

// NewRecorder returns a recorder that keeps at most limit events
// (0 means unlimited). When the limit is reached, further events are
// dropped and counted.
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Record appends an event.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, ev)
}

// Recordf appends an event with a formatted detail string.
func (r *Recorder) Recordf(t float64, kind Kind, node int, format string, args ...any) {
	r.Record(Event{T: t, Kind: kind, Node: node, Detail: fmt.Sprintf(format, args...)})
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the buffered events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// ByKind returns the buffered events of one kind, in order.
func (r *Recorder) ByKind(kind Kind) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, ev := range r.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL streams the buffered events as JSON Lines.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("encode event: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON Lines stream back into events, the inverse of
// WriteJSONL.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	dec := json.NewDecoder(rd)
	var out []Event
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return out, fmt.Errorf("decode event %d: %w", len(out), err)
		}
		out = append(out, ev)
	}
	return out, nil
}

// Summary aggregates a trace for quick inspection.
type Summary struct {
	Total  int          `json:"total"`
	ByKind map[Kind]int `json:"byKind"`
	ByNode map[int]int  `json:"-"`
	FirstT float64      `json:"firstT"`
	LastT  float64      `json:"lastT"`
}

// Summarize computes a Summary of the buffered events.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		ByKind: make(map[Kind]int),
		ByNode: make(map[int]int),
	}
	s.Total = len(r.events)
	for i, ev := range r.events {
		s.ByKind[ev.Kind]++
		s.ByNode[ev.Node]++
		if i == 0 {
			s.FirstT = ev.T
		}
		s.LastT = ev.T
	}
	return s
}
