package trace

import (
	"fmt"
	"sort"
	"strings"
)

// TimelinePoint is the number of nodes in each mode at one instant.
type TimelinePoint struct {
	T        float64
	Working  int
	Sleeping int
	Probing  int
	Dead     int
}

// Timeline reconstructs the per-mode population over time from a trace's
// state and death events. Events must be time-ordered, as recorded.
func Timeline(events []Event) []TimelinePoint {
	// Track every node's last known mode.
	mode := map[int]string{}
	var out []TimelinePoint
	count := func(t float64) TimelinePoint {
		p := TimelinePoint{T: t}
		for _, m := range mode {
			switch m {
			case "working":
				p.Working++
			case "sleeping":
				p.Sleeping++
			case "probing":
				p.Probing++
			case "dead":
				p.Dead++
			}
		}
		return p
	}
	for _, ev := range events {
		switch ev.Kind {
		case KindState:
			mode[ev.Node] = ev.Detail
		case KindDeath:
			mode[ev.Node] = "dead"
		default:
			continue
		}
		out = append(out, count(ev.T))
	}
	return out
}

// Downsample keeps at most n points of a timeline, evenly spaced,
// always retaining the first and last.
func Downsample(tl []TimelinePoint, n int) []TimelinePoint {
	if n <= 0 || len(tl) <= n {
		return tl
	}
	out := make([]TimelinePoint, 0, n)
	step := float64(len(tl)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, tl[int(float64(i)*step)])
	}
	return out
}

// FormatTimeline renders a timeline as a fixed-width text chart of the
// working population, for terminal inspection of traces.
func FormatTimeline(tl []TimelinePoint, width int) string {
	if len(tl) == 0 {
		return "(empty timeline)\n"
	}
	if width <= 0 {
		width = 60
	}
	maxWorking := 0
	for _, p := range tl {
		if p.Working > maxWorking {
			maxWorking = p.Working
		}
	}
	if maxWorking == 0 {
		maxWorking = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "working nodes over time (max %d)\n", maxWorking)
	pts := Downsample(tl, 20)
	for _, p := range pts {
		bar := int(float64(p.Working) / float64(maxWorking) * float64(width))
		fmt.Fprintf(&b, "%9.1fs |%-*s| W=%-4d S=%-4d dead=%d\n",
			p.T, width, strings.Repeat("#", bar), p.Working, p.Sleeping, p.Dead)
	}
	return b.String()
}

// DeathTimes extracts (time, node) pairs of all deaths, sorted by time.
func DeathTimes(events []Event) []Event {
	var out []Event
	for _, ev := range events {
		if ev.Kind == KindDeath {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
