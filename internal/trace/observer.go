package trace

import (
	"peas/internal/core"
	"peas/internal/node"
	"peas/internal/radio"
)

// Attach wires a Recorder into a network's observer hooks, chaining any
// hooks already installed. Call before net.Start.
func Attach(r *Recorder, net *node.Network) {
	prevState := net.OnState
	net.OnState = func(id core.NodeID, s core.State) {
		if prevState != nil {
			prevState(id, s)
		}
		r.Record(Event{
			T:      net.Engine.Now(),
			Kind:   KindState,
			Node:   int(id),
			Detail: s.String(),
		})
	}
	prevDeath := net.OnDeath
	net.OnDeath = func(id core.NodeID, cause node.DeathCause) {
		if prevDeath != nil {
			prevDeath(id, cause)
		}
		r.Record(Event{
			T:      net.Engine.Now(),
			Kind:   KindDeath,
			Node:   int(id),
			Detail: cause.String(),
		})
	}
	prevDeliver := net.OnDeliver
	net.OnDeliver = func(id core.NodeID, pkt radio.Packet, dist float64) {
		if prevDeliver != nil {
			prevDeliver(id, pkt, dist)
		}
		detail := "frame"
		switch pkt.Payload.(type) {
		case core.Probe:
			detail = "probe"
		case core.Reply:
			detail = "reply"
		}
		r.Record(Event{
			T:      net.Engine.Now(),
			Kind:   KindPacket,
			Node:   int(id),
			Detail: detail,
			Value:  dist,
		})
	}
}
