package trace

import (
	"bytes"
	"strings"
	"testing"

	"peas/internal/core"
	"peas/internal/node"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{T: 1, Kind: KindState, Node: 3, Detail: "working"})
	r.Recordf(2, KindCustom, -1, "marker %d", 7)
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Detail != "working" || evs[1].Detail != "marker 7" {
		t.Errorf("events: %+v", evs)
	}
	// Events returns a copy.
	evs[0].Detail = "mutated"
	if r.Events()[0].Detail != "working" {
		t.Error("Events aliased internal storage")
	}
	if got := r.ByKind(KindCustom); len(got) != 1 || got[0].Node != -1 {
		t.Errorf("ByKind: %+v", got)
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{T: float64(i), Kind: KindCustom})
	}
	if r.Len() != 2 {
		t.Errorf("limit not enforced: %d", r.Len())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{T: 1.5, Kind: KindState, Node: 2, Detail: "probing"})
	r.Record(Event{T: 2.5, Kind: KindPacket, Node: 4, Detail: "reply", Value: 2.25})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("lines = %d", got)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1] != r.Events()[1] {
		t.Errorf("round trip: %+v", back)
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"t":1}` + "\n" + `garbage`))
	if err == nil {
		t.Error("want decode error")
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{T: 1, Kind: KindState, Node: 0})
	r.Record(Event{T: 2, Kind: KindState, Node: 1})
	r.Record(Event{T: 9, Kind: KindDeath, Node: 0})
	s := r.Summarize()
	if s.Total != 3 || s.ByKind[KindState] != 2 || s.ByKind[KindDeath] != 1 {
		t.Errorf("summary %+v", s)
	}
	if s.FirstT != 1 || s.LastT != 9 {
		t.Errorf("time span %v-%v", s.FirstT, s.LastT)
	}
	if s.ByNode[0] != 2 {
		t.Errorf("node 0 count = %d", s.ByNode[0])
	}
}

func TestAttachRecordsSimulation(t *testing.T) {
	net, err := node.NewNetwork(node.DefaultConfig(40, 3))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(0)
	Attach(r, net)
	net.Start()
	net.Run(200)

	s := r.Summarize()
	if s.ByKind[KindState] == 0 {
		t.Error("no state events recorded")
	}
	if s.ByKind[KindPacket] == 0 {
		t.Error("no packet events recorded")
	}
	// Every packet event labels its payload type.
	for _, ev := range r.ByKind(KindPacket) {
		if ev.Detail != "probe" && ev.Detail != "reply" {
			t.Fatalf("unlabelled packet event %+v", ev)
		}
	}
}

func TestAttachChainsExistingHooks(t *testing.T) {
	net, err := node.NewNetwork(node.DefaultConfig(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	prior := 0
	net.OnState = func(core.NodeID, core.State) { prior++ }
	r := NewRecorder(0)
	Attach(r, net)
	net.Start()
	net.Run(50)
	if prior == 0 {
		t.Error("pre-existing OnState hook was not chained")
	}
	if got := r.Summarize().ByKind[KindState]; got != prior {
		t.Errorf("recorder saw %d state events, prior hook %d", got, prior)
	}
}
