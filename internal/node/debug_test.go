package node

import (
	"testing"

	"peas/internal/core"
	"peas/internal/geom"
)

// TestProbeReplySleep checks the fundamental PEAS exchange: a node that
// probes within range of a working node must hear a REPLY and go back to
// sleep.
func TestProbeReplySleep(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	cfg.Positions = []geom.Point{{X: 10, Y: 10}, {X: 11, Y: 10}}
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(200)

	working := 0
	for _, n := range net.Nodes {
		t.Logf("node %d: state=%v rate=%v wakeups=%d repliesHeard=%d probesSent=%d repliesSent=%d",
			n.ID(), n.State(), n.Protocol().Rate(), n.Protocol().Stats().Wakeups,
			n.Protocol().Stats().RepliesHeard, n.Protocol().Stats().ProbesSent,
			n.Protocol().Stats().RepliesSent)
		if n.Working() {
			working++
		}
	}
	sent, delivered, collided, lost, _ := net.Medium.Stats()
	t.Logf("medium: sent=%d delivered=%d collided=%d lost=%d", sent, delivered, collided, lost)
	if working != 1 {
		t.Errorf("want exactly 1 working node, got %d", working)
	}
	for _, n := range net.Nodes {
		if !n.Working() && n.State() != core.Sleeping && n.State() != core.Probing {
			t.Errorf("node %d in unexpected state %v", n.ID(), n.State())
		}
	}
}
