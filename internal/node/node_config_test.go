package node

import (
	"testing"

	"peas/internal/core"
	"peas/internal/geom"
	"peas/internal/radio"
)

// TestFixedPowerNetworkEquivalent checks §4's fixed-transmission-power
// recipe end to end: the working set produced with threshold filtering is
// statistically equivalent to the variable-power one.
func TestFixedPowerNetworkEquivalent(t *testing.T) {
	counts := map[bool]int{}
	for _, fixed := range []bool{false, true} {
		cfg := DefaultConfig(240, 61)
		cfg.Radio.FixedPower = fixed
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.Start()
		net.Run(500)
		counts[fixed] = net.WorkingCount()
	}
	lo, hi := counts[false], counts[true]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo*4 < hi*3 { // >25% apart would mean the threshold filter is off
		t.Errorf("working sets diverge: variable=%d fixed=%d", counts[false], counts[true])
	}
}

// TestIrregularNetworkDenserWorkers checks §4's irregularity prediction
// at the network level: attenuation irregularity increases the total
// working count (poor areas need more workers).
func TestIrregularNetworkDenserWorkers(t *testing.T) {
	var plain, irregular int
	const runs = 3
	for r := 0; r < runs; r++ {
		cfg := DefaultConfig(480, int64(70+r))
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.Start()
		net.Run(600)
		plain += net.WorkingCount()

		cfg2 := DefaultConfig(480, int64(70+r))
		cfg2.Radio.Irregularity = 0.4
		net2, err := NewNetwork(cfg2)
		if err != nil {
			t.Fatal(err)
		}
		net2.Start()
		net2.Run(600)
		irregular += net2.WorkingCount()
	}
	if irregular <= plain {
		t.Errorf("irregular channel should need more workers: %d vs %d",
			irregular, plain)
	}
}

// TestSingleProbeLossierPromotesMore is the §4 loss-compensation effect
// at the network level.
func TestSingleProbeLossierPromotesMore(t *testing.T) {
	workingWith := func(probes int) int {
		cfg := DefaultConfig(300, 81)
		cfg.Radio.LossRate = 0.15
		cfg.Protocol.NumProbes = probes
		net, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		net.Start()
		net.Run(500)
		return net.WorkingCount()
	}
	single := workingWith(1)
	triple := workingWith(3)
	if triple >= single {
		t.Errorf("3 probes should suppress loss-induced promotions: 1-probe=%d 3-probe=%d",
			single, triple)
	}
}

// TestExplicitPositions verifies deterministic deployments round-trip
// into node positions.
func TestExplicitPositions(t *testing.T) {
	pos := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 5, Y: 6}}
	cfg := DefaultConfig(3, 1)
	cfg.Positions = pos
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range net.Nodes {
		if n.Pos() != pos[i] {
			t.Errorf("node %d at %v, want %v", i, n.Pos(), pos[i])
		}
	}
}

// TestBatteryChargesWithinConfiguredRange verifies the 54-60 J draw.
func TestBatteryChargesWithinConfiguredRange(t *testing.T) {
	net, err := NewNetwork(DefaultConfig(200, 91))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range net.Nodes {
		c := n.Battery().Initial()
		if c < 54 || c > 60 {
			t.Fatalf("initial charge %v outside [54, 60]", c)
		}
	}
}

// TestDeadNodesStopTransmitting drives a network past several deaths and
// confirms dead nodes neither transmit nor receive.
func TestDeadNodesStopTransmitting(t *testing.T) {
	cfg := DefaultConfig(100, 97)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var deadDeliveries int
	net.OnDeliver = func(id core.NodeID, _ radio.Packet, _ float64) {
		if !net.Nodes[id].Alive() {
			deadDeliveries++
		}
	}
	net.Start()
	net.Run(100)
	// Kill half the nodes and watch the medium.
	for i := 0; i < 50; i++ {
		net.Nodes[i].Fail(InjectedFailure)
	}
	net.Run(400)
	if deadDeliveries != 0 {
		t.Errorf("%d deliveries to dead nodes", deadDeliveries)
	}
	// Energy mode of the dead: no further drain.
	now := net.Engine.Now()
	before := net.Nodes[0].Battery().Consumed(now)
	net.Run(800)
	after := net.Nodes[0].Battery().Consumed(net.Engine.Now())
	if after != before {
		t.Errorf("dead node kept consuming: %v -> %v", before, after)
	}
}
