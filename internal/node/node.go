// Package node glues the simulation substrates together into sensor
// nodes: each Node owns a battery (internal/energy), a radio endpoint
// (internal/radio) and a PEAS protocol instance (internal/core), and
// implements the protocol's Platform interface on top of the
// discrete-event engine (internal/sim).
package node

import (
	"peas/internal/core"
	"peas/internal/energy"
	"peas/internal/geom"
	"peas/internal/radio"
	"peas/internal/sim"
	"peas/internal/stats"
)

// DeathCause says why a node died.
type DeathCause int

// Death causes.
const (
	// Depletion is normal battery exhaustion.
	Depletion DeathCause = iota + 1
	// InjectedFailure is an artificial failure (paper §5.2: "failures
	// are deaths not incurred by energy depletions").
	InjectedFailure
	// TransientFailure is an artificial failure the node later recovers
	// from: the node powers off (losing volatile protocol state) but its
	// battery is preserved, so a Revive can bring it back. The chaos
	// layer's fail-recover and crash-restart fault classes use it.
	TransientFailure
)

// String returns the cause name.
func (c DeathCause) String() string {
	switch c {
	case Depletion:
		return "depletion"
	case InjectedFailure:
		return "failure"
	case TransientFailure:
		return "transient-failure"
	default:
		return "unknown"
	}
}

// Node is one simulated sensor.
type Node struct {
	id      core.NodeID
	pos     geom.Point
	network *Network

	battery    *energy.Battery
	proto      *core.Protocol
	rng        *stats.RNG
	deathEvent *sim.Event
	alive      bool
	cause      DeathCause
	diedAt     float64
	// wasWorking is the last Working() status reported through
	// Network.OnWorkingChange; SetState diffs against it so the hook
	// fires exactly once per flip.
	wasWorking bool
}

var (
	_ core.Platform         = (*Node)(nil)
	_ core.AbsolutePlatform = (*Node)(nil)
	_ radio.Receiver        = (*Node)(nil)
)

// ID returns the node identifier.
func (n *Node) ID() core.NodeID { return n.id }

// Pos returns the node's deployed position.
func (n *Node) Pos() geom.Point { return n.pos }

// Alive reports whether the node is still running.
func (n *Node) Alive() bool { return n.alive }

// DiedAt returns when the node died, and the cause. It returns (0, 0)
// while the node is alive.
func (n *Node) DiedAt() (float64, DeathCause) {
	if n.alive {
		return 0, 0
	}
	return n.diedAt, n.cause
}

// State returns the node's protocol state.
func (n *Node) State() core.State { return n.proto.State() }

// Working reports whether the node is alive and in Working mode.
func (n *Node) Working() bool { return n.alive && n.proto.State() == core.Working }

// Protocol exposes the node's PEAS state machine (read-mostly: tests and
// metrics use it for rates and counters).
func (n *Node) Protocol() *core.Protocol { return n.proto }

// Battery exposes the node's battery for energy accounting.
func (n *Node) Battery() *energy.Battery { return n.battery }

// --- core.Platform implementation ---

// Now returns the simulation time.
func (n *Node) Now() float64 { return n.network.Engine.Now() }

// After schedules fn on the simulation engine.
func (n *Node) After(d float64, fn func()) { n.network.Engine.Schedule(d, fn) }

// At schedules fn at an absolute simulation time. The protocol uses it
// (via core.AbsolutePlatform) so restored timers re-arm at their exact
// recorded deadlines.
func (n *Node) At(at float64, fn func()) { n.network.Engine.At(at, fn) }

// AtArg schedules a shared callback with a pooled argument record (via
// core.ArgPlatform), keeping the protocol timer hot path allocation-free.
func (n *Node) AtArg(at float64, fn func(any), arg any) { n.network.Engine.AtArg(at, fn, arg) }

// Broadcast transmits a protocol frame over the shared medium.
func (n *Node) Broadcast(size int, radius float64, payload any) {
	if !n.alive {
		return
	}
	n.network.Medium.Broadcast(radio.Packet{
		From:    radio.NodeID(n.id),
		Size:    size,
		Range:   radius,
		Payload: payload,
	})
}

// SetState maps protocol modes onto battery power modes and keeps the
// scheduled depletion event consistent.
func (n *Node) SetState(s core.State) {
	now := n.Now()
	switch s {
	case core.Sleeping:
		n.battery.SetMode(now, energy.Sleep)
	case core.Probing, core.Working:
		n.battery.SetMode(now, energy.Idle)
	case core.Dead:
		// Battery handling happens in die/failNow.
	}
	n.rescheduleDeath()
	// Every Working flip passes through here: protocol transitions call
	// SetState via enter(), deaths via proto.Fail()->enter(Dead) (with
	// alive already false), and crash-restarts via ReviveFrom's explicit
	// SetState. The diff against wasWorking keeps the hook edge-triggered.
	if w := n.Working(); w != n.wasWorking {
		n.wasWorking = w
		if n.network.OnWorkingChange != nil {
			n.network.OnWorkingChange(n.id, w)
		}
	}
	if n.network.OnState != nil {
		n.network.OnState(n.id, s)
	}
}

// Rand returns the node's private random stream.
func (n *Node) Rand() *stats.RNG { return n.rng }

// --- radio.Receiver implementation ---

// Listening reports whether the radio can receive: the node must be alive
// and not sleeping.
func (n *Node) Listening() bool {
	return n.alive && n.proto.State() != core.Sleeping
}

// Deliver hands a received frame to the protocol.
func (n *Node) Deliver(pkt radio.Packet, dist float64) {
	if !n.alive {
		return
	}
	n.proto.HandleMessage(pkt.Payload, dist)
	if n.network.OnDeliver != nil {
		n.network.OnDeliver(n.id, pkt, dist)
	}
}

// --- lifecycle ---

func (n *Node) start() {
	n.alive = true
	n.proto.Start()
}

// Fail kills the node immediately with the given cause.
func (n *Node) Fail(cause DeathCause) {
	if !n.alive {
		return
	}
	n.battery.Kill(n.Now())
	n.die(cause)
}

// Crash powers the node off without depleting its battery: volatile
// protocol state is lost but the remaining charge survives, so Revive or
// ReviveFrom can bring the node back later. The chaos layer uses it for
// the fail-recover and crash-restart fault classes. A crashed node draws
// sleep-level current while down.
func (n *Node) Crash() {
	if !n.alive {
		return
	}
	n.battery.SetMode(n.Now(), energy.Sleep)
	n.die(TransientFailure)
}

// Revive reboots a transiently failed node from scratch: a fresh protocol
// boot (volatile state was lost) over the preserved battery. It reports
// whether the node came back; permanent deaths (depletion, fail-stop) and
// exhausted batteries stay down.
func (n *Node) Revive() bool {
	if !n.revivable() {
		return false
	}
	n.alive = true
	n.cause = 0
	n.diedAt = 0
	n.proto.Reboot()
	if n.network.OnRevive != nil {
		n.network.OnRevive(n.id)
	}
	return true
}

// ReviveFrom restarts a transiently failed node from a captured protocol
// snapshot, modelling a crash-restart that resumes from a checkpoint on
// stable storage. Pending timers whose deadlines passed during the
// downtime fire immediately after the restore. The downtime itself is not
// attributed to the restored mode's time-in-state accumulators.
func (n *Node) ReviveFrom(st core.ProtocolState) bool {
	if !n.revivable() || st.State == core.Dead {
		return false
	}
	n.alive = true
	n.cause = 0
	n.diedAt = 0
	st.StateSince = n.Now()
	n.proto.RestoreState(st)
	// Re-apply the restored mode's side effects (battery mode, death
	// scheduling, observer hooks) that RestoreState bypasses.
	n.SetState(st.State)
	n.proto.ResumeTimers(st.Timers)
	if n.network.OnRevive != nil {
		n.network.OnRevive(n.id)
	}
	return true
}

func (n *Node) revivable() bool {
	return !n.alive && n.cause == TransientFailure && !n.battery.Dead()
}

func (n *Node) die(cause DeathCause) {
	if !n.alive {
		return
	}
	n.alive = false
	n.cause = cause
	n.diedAt = n.Now()
	if n.deathEvent != nil {
		n.network.Engine.Cancel(n.deathEvent)
		n.deathEvent = nil
	}
	n.proto.Fail()
	if n.network.OnDeath != nil {
		n.network.OnDeath(n.id, cause)
	}
}

// rescheduleDeath re-anchors the battery-depletion event after any change
// to the drain rate or remaining charge.
func (n *Node) rescheduleDeath() {
	if !n.alive {
		return
	}
	if n.deathEvent != nil {
		n.network.Engine.Cancel(n.deathEvent)
		n.deathEvent = nil
	}
	if n.battery.Dead() {
		n.die(Depletion)
		return
	}
	t := n.battery.DepletionTime(n.Now())
	if t >= sim.Forever {
		return
	}
	n.scheduleDeathAt(t)
}

// runDeathEvent is the shared depletion callback; the event argument is
// the node itself, so the constant re-arming on every energy spend
// allocates nothing.
func runDeathEvent(a any) {
	n := a.(*Node)
	n.deathEvent = nil
	if n.alive && n.battery.Remaining(n.Now()) <= 1e-12 {
		n.die(Depletion)
	} else {
		n.rescheduleDeath()
	}
}

// scheduleDeathAt arms the depletion event at the absolute time t. The
// checkpoint restore path calls it with the captured deadline rather than
// recomputing one: recomputation would settle the battery and shift the
// deadline by an ulp off the uninterrupted run's.
func (n *Node) scheduleDeathAt(t float64) {
	n.deathEvent = n.network.Engine.AtArg(t, runDeathEvent, n)
}
