package node

import (
	"fmt"
	"math"
	"testing"

	"peas/internal/core"
	"peas/internal/energy"
	"peas/internal/geom"
	"peas/internal/radio"
	"peas/internal/stats"
)

func TestNewNetworkValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.N = 0 }},
		{"bad protocol", func(c *Config) { c.Protocol.ProbingRange = -1 }},
		{"bad energy range", func(c *Config) { c.InitialEnergyMin = 10; c.InitialEnergyMax = 5 }},
		{"zero energy", func(c *Config) { c.InitialEnergyMin = 0; c.InitialEnergyMax = 0 }},
		{"positions mismatch", func(c *Config) { c.Positions = []geom.Point{{X: 1, Y: 1}} }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(10, 1)
			tc.mutate(&cfg)
			if _, err := NewNetwork(cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() (uint64, float64, int) {
		net, err := NewNetwork(DefaultConfig(120, 77))
		if err != nil {
			t.Fatal(err)
		}
		net.Start()
		net.Run(1500)
		return net.TotalWakeups(), net.TotalConsumed(), net.WorkingCount()
	}
	w1, e1, c1 := run()
	w2, e2, c2 := run()
	if w1 != w2 || e1 != e2 || c1 != c2 {
		t.Errorf("same seed diverged: (%d, %v, %d) vs (%d, %v, %d)",
			w1, e1, c1, w2, e2, c2)
	}
}

func TestNetworkSeedsDiffer(t *testing.T) {
	netA, err := NewNetwork(DefaultConfig(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	netB, err := NewNetwork(DefaultConfig(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range netA.Nodes {
		if netA.Nodes[i].Pos() == netB.Nodes[i].Pos() {
			same++
		}
	}
	if same == len(netA.Nodes) {
		t.Error("different seeds produced identical deployments")
	}
}

// TestPeaSeparationIdealChannel checks the §3 "peas" property in the
// regime the analysis assumes: ideal probing (every PROBE is answered
// and every REPLY heard). With collisions disabled, any violation of the
// Rp separation is a protocol bug, not channel physics.
func TestPeaSeparationIdealChannel(t *testing.T) {
	cfg := DefaultConfig(200, 5)
	cfg.Radio.CollisionsEnabled = false
	cfg.Protocol.TurnoffEnabled = false
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(2500)

	working := net.WorkingPositions()
	if len(working) < 20 {
		t.Fatalf("only %d working nodes", len(working))
	}
	violations := 0
	for i := range working {
		for j := i + 1; j < len(working); j++ {
			if working[i].Dist(working[j]) < cfg.Protocol.ProbingRange {
				violations++
			}
		}
	}
	// With an ideal channel the only possible violation is two probers
	// racing inside one probe window (neither is working yet, so
	// neither replies); at λ0=0.1 boot density a handful of races can
	// slip through.
	if violations > len(working)/20 {
		t.Errorf("%d working pairs closer than Rp among %d workers",
			violations, len(working))
	}
}

func TestFailedWorkerGetsReplaced(t *testing.T) {
	cfg := DefaultConfig(150, 9)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(600) // past boot-up
	before := net.WorkingCount()
	if before == 0 {
		t.Fatal("no working nodes after boot")
	}

	// Kill every working node at t=600.
	for _, n := range net.Nodes {
		if n.Working() {
			n.Fail(InjectedFailure)
		}
	}
	if net.WorkingCount() != 0 {
		t.Fatal("kill failed")
	}

	// Each dead worker's neighborhood refills at the desired aggregate
	// probing rate λd = 0.02/s (mean 50 s to the first replacement), and
	// the set then densifies wakeup by wakeup toward the packing bound.
	net.Run(600 + 100)
	if got := net.WorkingCount(); got == 0 {
		t.Fatal("no replacement worker within 100 s")
	}
	net.Run(600 + 1500)
	after := net.WorkingCount()
	if after < before/2 {
		t.Errorf("replacement too weak: %d workers before, %d after 1500 s", before, after)
	}
}

func TestEnergyConservationNetworkWide(t *testing.T) {
	cfg := DefaultConfig(80, 13)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var initial float64
	for _, n := range net.Nodes {
		initial += n.Battery().Initial()
	}
	net.Start()
	net.Run(3000)
	now := net.Engine.Now()
	var consumed, remaining float64
	for _, n := range net.Nodes {
		consumed += n.Battery().Consumed(now)
		remaining += n.Battery().Remaining(now)
	}
	if math.Abs(consumed+remaining-initial) > 1e-6 {
		t.Errorf("energy leak: consumed %v + remaining %v != initial %v",
			consumed, remaining, initial)
	}
}

func TestDepletionDeathsScheduled(t *testing.T) {
	// With abundant redundancy, the first-generation workers deplete at
	// ~4500-5000 s; their deaths must be recorded with the right cause.
	cfg := DefaultConfig(100, 17)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(5200)
	depleted := 0
	for _, n := range net.Nodes {
		if n.Alive() {
			continue
		}
		diedAt, cause := n.DiedAt()
		if cause != Depletion {
			t.Errorf("node %d died of %v", n.ID(), cause)
		}
		if diedAt < 4000 || diedAt > 5200 {
			t.Errorf("node %d depleted at %v, outside the battery window", n.ID(), diedAt)
		}
		depleted++
	}
	if depleted == 0 {
		t.Error("no depletion deaths by t=5200")
	}
}

func TestObserverHooks(t *testing.T) {
	cfg := DefaultConfig(30, 19)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var states, deaths, delivers int
	net.OnState = func(core.NodeID, core.State) { states++ }
	net.OnDeath = func(core.NodeID, DeathCause) { deaths++ }
	net.OnDeliver = func(core.NodeID, radio.Packet, float64) { delivers++ }
	net.Start()
	net.FailRandomAlive(stats.NewRNG(1))
	net.Run(100)
	if states == 0 {
		t.Error("no state transitions observed")
	}
	if deaths != 1 {
		t.Errorf("deaths observed = %d, want 1", deaths)
	}
	if delivers == 0 {
		t.Error("no deliveries observed")
	}
}

// TestWorkingChangeHookTracksWorkingSet replays a run with failures and
// revives while mirroring OnWorkingChange into a shadow set; at several
// instants the shadow must equal a fresh Working() scan, and the hook
// must be strictly edge-triggered (no repeated same-direction events).
func TestWorkingChangeHookTracksWorkingSet(t *testing.T) {
	cfg := DefaultConfig(80, 31)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadow := make([]bool, cfg.N)
	flips := 0
	net.OnWorkingChange = func(id core.NodeID, working bool) {
		if shadow[id] == working {
			t.Fatalf("node %d: repeated OnWorkingChange(%v) without an opposite edge", id, working)
		}
		shadow[id] = working
		flips++
	}
	verify := func(at string) {
		t.Helper()
		for i, n := range net.Nodes {
			if shadow[i] != n.Working() {
				t.Fatalf("%s: node %d shadow=%v Working()=%v", at, i, shadow[i], n.Working())
			}
		}
	}
	net.Start()
	rng := stats.NewRNG(5)
	for _, until := range []float64{50, 200, 600} {
		net.Run(until)
		verify(fmt.Sprintf("t=%v", until))
		net.FailRandomAlive(rng)
		verify("after injected failure")
	}
	// Crash a working node and revive it: the hook must see both edges.
	var victim *Node
	for _, n := range net.Nodes {
		if n.Working() {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Fatal("no working node to crash")
	}
	victim.Crash()
	verify("after crash")
	if !victim.Revive() {
		t.Fatal("revive failed")
	}
	net.Run(net.Engine.Now() + 300)
	verify("after revive")
	if flips == 0 {
		t.Error("no working transitions observed")
	}
}

func TestFailRandomAliveExhaustion(t *testing.T) {
	cfg := DefaultConfig(3, 23)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	rng := stats.NewRNG(2)
	seen := map[core.NodeID]bool{}
	for i := 0; i < 3; i++ {
		id := net.FailRandomAlive(rng)
		if id < 0 || seen[id] {
			t.Fatalf("bad victim %d (seen=%v)", id, seen)
		}
		seen[id] = true
	}
	if id := net.FailRandomAlive(rng); id != -1 {
		t.Errorf("exhausted network returned victim %d", id)
	}
}

func TestChargeExtraKillsOnOverdraw(t *testing.T) {
	cfg := DefaultConfig(5, 29)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	victim := net.Nodes[0]
	net.ChargeExtra(victim.ID(), energy.DataTransmit, 1e6)
	if victim.Alive() {
		t.Error("overdrawn node still alive")
	}
	if _, cause := victim.DiedAt(); cause != Depletion {
		t.Errorf("cause = %v", cause)
	}
	// Charging a dead node is a no-op.
	net.ChargeExtra(victim.ID(), energy.DataTransmit, 1)
}

func TestProtocolEnergyPositiveAndBounded(t *testing.T) {
	cfg := DefaultConfig(100, 31)
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	net.Run(2000)
	pe := net.ProtocolEnergy()
	total := net.TotalConsumed()
	if pe <= 0 {
		t.Error("protocol energy should be positive")
	}
	if pe > total*0.05 {
		t.Errorf("protocol energy %v exceeds 5%% of total %v", pe, total)
	}
}
