package node

import (
	"testing"
)

// End-to-end microbenchmark: a full PEAS network simulated for a fixed
// horizon. Run with
//
//	go test ./internal/node -run=NONE -bench=. -benchmem
//
// This is the number the allocs-per-event gate tracks at system level;
// the per-op allocations here are dominated by network construction, so
// watch B/op trends rather than absolutes.

func benchNetwork(b *testing.B, n int, horizon float64) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net, err := NewNetwork(DefaultConfig(n, 7))
		if err != nil {
			b.Fatal(err)
		}
		net.Start()
		net.Run(horizon)
	}
}

func BenchmarkNetwork80(b *testing.B)  { benchNetwork(b, 80, 600) }
func BenchmarkNetwork320(b *testing.B) { benchNetwork(b, 320, 600) }
