package node

import (
	"fmt"

	"peas/internal/core"
	"peas/internal/energy"
	"peas/internal/geom"
	"peas/internal/radio"
	"peas/internal/sim"
	"peas/internal/stats"
)

// Config describes one simulated sensor network.
type Config struct {
	// Field is the deployment area (paper: 50 x 50 m²).
	Field geom.Field
	// N is the number of deployed nodes.
	N int
	// Protocol holds the PEAS parameters applied to every node.
	Protocol core.Config
	// Radio holds the physical-layer parameters.
	Radio radio.Config
	// Energy is the power profile (paper: Berkeley-Motes-like).
	Energy energy.Profile
	// InitialEnergyMin/Max bound the uniform initial charge in joules
	// (paper: 54-60 J "to simulate the variance of battery lifetime").
	InitialEnergyMin float64
	InitialEnergyMax float64
	// Seed determines every random choice in the run.
	Seed int64
	// Positions, when non-nil, overrides uniform deployment (len == N).
	Positions []geom.Point
	// NodeSeeds, when non-nil, pins each node's private RNG seed
	// (len == N). Together with Positions this makes per-node randomness
	// a property of the physical node rather than of its index, so a
	// deployment can be relabeled (IDs permuted) without changing any
	// node's behavior — the lever the metamorphic relabeling tests use.
	NodeSeeds []int64
}

// DefaultConfig returns the paper's evaluation setup (§5.1-5.2) for n
// deployed nodes.
func DefaultConfig(n int, seed int64) Config {
	return Config{
		Field:            geom.NewField(50, 50),
		N:                n,
		Protocol:         core.DefaultConfig(),
		Radio:            radio.DefaultConfig(),
		Energy:           energy.MotesProfile(),
		InitialEnergyMin: 54,
		InitialEnergyMax: 60,
		Seed:             seed,
	}
}

// Network is a deployed sensor network bound to a simulation engine.
type Network struct {
	Engine *sim.Engine
	Field  geom.Field
	Index  *geom.Index
	Medium *radio.Medium
	Nodes  []*Node

	cfg Config

	// OnState, OnDeath, OnRevive and OnDeliver are optional observer hooks
	// used by the metrics layer; they may be nil. Set them before Start.
	// OnRevive fires when a transiently failed node comes back via Revive
	// or ReviveFrom.
	OnState   func(id core.NodeID, s core.State)
	OnDeath   func(id core.NodeID, cause DeathCause)
	OnRevive  func(id core.NodeID)
	OnDeliver func(id core.NodeID, pkt radio.Packet, dist float64)
	// OnWorkingChange fires exactly when a node's Working() status flips —
	// on entering Working, and on leaving it for any reason (sleep, probe,
	// death, crash). Every live path funnels through Node.SetState, so the
	// hook sees each transition once; checkpoint restores bypass it (the
	// resume path rebuilds derived state from the restored working set).
	// The incremental coverage engine subscribes here to keep per-sample
	// work proportional to working-set churn.
	OnWorkingChange func(id core.NodeID, working bool)
}

// energyAdapter charges packet airtime to node batteries. The extra
// charge over the node's continuous mode draw is used, so the lazily
// settled mode drain plus packet charges conserve energy exactly.
type energyAdapter struct{ net *Network }

var _ radio.EnergySink = (*energyAdapter)(nil)

func (a *energyAdapter) SpendTx(id radio.NodeID, seconds float64) {
	a.spend(id, seconds, a.net.cfg.Energy.TransmitW)
}

func (a *energyAdapter) SpendRx(id radio.NodeID, seconds float64) {
	a.spend(id, seconds, a.net.cfg.Energy.ReceiveW)
}

func (a *energyAdapter) spend(id radio.NodeID, seconds, watts float64) {
	n := a.net.Nodes[id]
	if !n.alive {
		return
	}
	now := a.net.Engine.Now()
	base := a.net.cfg.Energy.Power(n.battery.Mode())
	extra := (watts - base) * seconds
	if extra <= 0 {
		return
	}
	mode := energy.Receive
	if watts == a.net.cfg.Energy.TransmitW {
		mode = energy.Transmit
	}
	if !n.battery.Spend(now, mode, extra) {
		n.die(Depletion)
		return
	}
	n.rescheduleDeath()
}

// NewNetwork deploys a network according to cfg. The nodes are created
// but idle; call Start to boot the protocol on every node.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("node: network size %d must be positive", cfg.N)
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialEnergyMax < cfg.InitialEnergyMin || cfg.InitialEnergyMin <= 0 {
		return nil, fmt.Errorf("node: invalid initial energy range [%v, %v]",
			cfg.InitialEnergyMin, cfg.InitialEnergyMax)
	}
	if cfg.Positions != nil && len(cfg.Positions) != cfg.N {
		return nil, fmt.Errorf("node: %d positions for %d nodes", len(cfg.Positions), cfg.N)
	}
	if cfg.NodeSeeds != nil && len(cfg.NodeSeeds) != cfg.N {
		return nil, fmt.Errorf("node: %d node seeds for %d nodes", len(cfg.NodeSeeds), cfg.N)
	}

	root := stats.NewRNG(cfg.Seed)
	deployRNG := root.Split()
	energyRNG := root.Split()
	radioRNG := root.Split()
	nodeSeedRNG := root.Split()

	positions := cfg.Positions
	if positions == nil {
		positions = geom.UniformDeploy(cfg.Field, cfg.N, deployRNG)
	}

	engine := sim.NewEngine()
	// Bucket size near Rp keeps probe-range queries cheap while still
	// serving the 10 m data-forwarding queries.
	idx := geom.NewIndex(cfg.Field, positions, cfg.Protocol.ProbingRange)

	net := &Network{
		Engine: engine,
		Field:  cfg.Field,
		Index:  idx,
		Nodes:  make([]*Node, cfg.N),
		cfg:    cfg,
	}
	net.Medium = radio.NewMedium(cfg.Radio, engine, idx, radioRNG, &energyAdapter{net: net})

	for i := 0; i < cfg.N; i++ {
		charge := energyRNG.Uniform(cfg.InitialEnergyMin, cfg.InitialEnergyMax)
		// The derived seed stream is always drawn so explicit NodeSeeds
		// leave every other RNG stream's draw order untouched.
		seed := nodeSeedRNG.Int63()
		if cfg.NodeSeeds != nil {
			seed = cfg.NodeSeeds[i]
		}
		n := &Node{
			id:      core.NodeID(i),
			pos:     positions[i],
			network: net,
			battery: energy.NewBattery(cfg.Energy, charge),
			rng:     stats.NewRNG(seed),
		}
		n.proto = core.New(core.NodeID(i), cfg.Protocol, n)
		net.Nodes[i] = n
		net.Medium.Attach(radio.NodeID(i), n)
	}
	return net, nil
}

// Config returns the configuration the network was built with.
func (net *Network) Config() Config { return net.cfg }

// Start boots every node at the current simulation time.
func (net *Network) Start() {
	for _, n := range net.Nodes {
		n.start()
	}
}

// Run advances the simulation to the given time.
func (net *Network) Run(until sim.Time) { net.Engine.Run(until) }

// AliveCount returns the number of alive nodes.
func (net *Network) AliveCount() int {
	c := 0
	for _, n := range net.Nodes {
		if n.alive {
			c++
		}
	}
	return c
}

// WorkingCount returns the number of alive working nodes.
func (net *Network) WorkingCount() int {
	c := 0
	for _, n := range net.Nodes {
		if n.Working() {
			c++
		}
	}
	return c
}

// WorkingPositions returns the positions of all alive working nodes in a
// fresh slice. Callers that sample repeatedly should reuse a buffer via
// AppendWorkingPositions instead.
func (net *Network) WorkingPositions() []geom.Point {
	return net.AppendWorkingPositions(make([]geom.Point, 0, len(net.Nodes)/4))
}

// AppendWorkingPositions appends the positions of all alive working nodes
// to pts and returns the extended slice. Periodic samplers pass the same
// buffer re-sliced to pts[:0] each tick, keeping the scan allocation-free
// once the buffer has grown to the working-set high-water mark. Every
// in-repo consumer (connectivity analysis, sensing trackers, coverage
// estimators) uses the positions transiently, so sharing one buffer
// across sequential evaluations is safe.
func (net *Network) AppendWorkingPositions(pts []geom.Point) []geom.Point {
	for _, n := range net.Nodes {
		if n.Working() {
			pts = append(pts, n.pos)
		}
	}
	return pts
}

// TotalWakeups sums the probe rounds of all nodes, the Figure 11/14
// overhead metric.
func (net *Network) TotalWakeups() uint64 {
	var total uint64
	for _, n := range net.Nodes {
		total += n.proto.Stats().Wakeups
	}
	return total
}

// TotalConsumed returns the joules consumed so far across all nodes.
func (net *Network) TotalConsumed() float64 {
	now := net.Engine.Now()
	var total float64
	for _, n := range net.Nodes {
		total += n.battery.Consumed(now)
	}
	return total
}

// ProtocolEnergy returns the joules attributable to PEAS operations:
// packet transmit/receive charges plus idle listening during probe
// windows. This is the "energy overhead" of Table 1.
func (net *Network) ProtocolEnergy() float64 {
	now := net.Engine.Now()
	var total float64
	for _, n := range net.Nodes {
		total += n.battery.ConsumedIn(now, energy.Transmit)
		total += n.battery.ConsumedIn(now, energy.Receive)
		// Idle drain during Probing windows: settled mode drain is
		// recorded under Idle for both probing and working; attribute
		// probe-window idle time via the protocol's accumulator.
		total += n.proto.Stats().TimeProbing * net.cfg.Energy.IdleW
	}
	return total
}

// ChargeExtra debits an instantaneous energy amount from node id,
// attributed to mode, keeping the scheduled depletion event consistent.
// The forwarding substrate uses it for relayed data reports.
func (net *Network) ChargeExtra(id core.NodeID, mode energy.Mode, joules float64) {
	n := net.Nodes[id]
	if !n.alive || joules <= 0 {
		return
	}
	if !n.battery.Spend(net.Engine.Now(), mode, joules) {
		n.die(Depletion)
		return
	}
	n.rescheduleDeath()
}

// PickAlive returns a uniformly chosen alive node satisfying filter (nil
// accepts every alive node), or nil when none qualifies. The failure
// injector's victim policies build on it.
func (net *Network) PickAlive(rng *stats.RNG, filter func(*Node) bool) *Node {
	candidates := make([]*Node, 0, len(net.Nodes))
	for _, n := range net.Nodes {
		if n.alive && (filter == nil || filter(n)) {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[rng.Intn(len(candidates))]
}

// FailRandomAlive kills one uniformly chosen alive node and returns its
// ID, or -1 when none are left. The failure injector uses it.
func (net *Network) FailRandomAlive(rng *stats.RNG) core.NodeID {
	victim := net.PickAlive(rng, nil)
	if victim == nil {
		return -1
	}
	victim.Fail(InjectedFailure)
	return victim.id
}
