package node

import (
	"fmt"

	"peas/internal/core"
	"peas/internal/energy"
	"peas/internal/sim"
	"peas/internal/stats"
)

// NodeState is the serializable state of one simulated sensor: liveness,
// the private RNG stream, the battery, the protocol state machine with
// its pending timers, and the scheduled depletion deadline.
type NodeState struct {
	Alive  bool
	Cause  DeathCause
	DiedAt float64
	// DeathAt is the absolute deadline of the pending battery-depletion
	// event, or a negative value when none is scheduled.
	DeathAt float64
	RNG     stats.RNGState
	Battery energy.BatteryState
	Proto   core.ProtocolState
}

// SnapshotNodes captures the mutable per-node state of the whole
// deployment. It does not mutate anything: batteries stay unsettled and
// protocol instances untouched, so taking a snapshot cannot perturb the
// trajectory.
func (net *Network) SnapshotNodes() []NodeState {
	states := make([]NodeState, len(net.Nodes))
	for i, n := range net.Nodes {
		st := NodeState{
			Alive:   n.alive,
			Cause:   n.cause,
			DiedAt:  n.diedAt,
			DeathAt: -1,
			RNG:     n.rng.State(),
			Battery: n.battery.Snapshot(),
			Proto:   n.proto.Snapshot(),
		}
		if n.deathEvent != nil {
			st.DeathAt = n.deathEvent.Time()
		}
		states[i] = st
	}
	return states
}

// RestoreNodes overwrites the mutable state of a freshly constructed
// network with captured node states. It only patches fields; pending
// timers and death events are re-armed by ResumeSchedule once the engine
// clock is positioned at the snapshot time.
func (net *Network) RestoreNodes(states []NodeState) error {
	if len(states) != len(net.Nodes) {
		return fmt.Errorf("node: snapshot has %d nodes, network has %d",
			len(states), len(net.Nodes))
	}
	for i, st := range states {
		n := net.Nodes[i]
		n.alive = st.Alive
		n.cause = st.Cause
		n.diedAt = st.DiedAt
		n.rng.Restore(st.RNG)
		n.battery.Restore(st.Battery)
		n.proto.RestoreState(st.Proto)
		// Sync the edge-trigger baseline without firing OnWorkingChange:
		// restores are bulk state loads, and consumers rebuild their
		// derived state from the restored working set instead.
		n.wasWorking = n.Working()
	}
	return nil
}

// ResumeSchedule rebuilds the engine events a restored deployment owes:
// each alive node's pending protocol timers (in recorded order) and its
// battery-depletion event at the captured deadline. Call it after
// RestoreNodes with the engine clock at the snapshot time.
func (net *Network) ResumeSchedule(states []NodeState) {
	for i, st := range states {
		n := net.Nodes[i]
		if !st.Alive {
			continue
		}
		n.proto.ResumeTimers(st.Proto.Timers)
		if st.DeathAt >= 0 && st.DeathAt < sim.Forever {
			n.scheduleDeathAt(st.DeathAt)
		}
	}
}
