// Package core implements the PEAS protocol itself: the Probing
// Environment and Adaptive Sleeping components of the paper (§2), the
// PROBE/REPLY message exchange, the aggregate probing-rate estimator
// (§2.2), and the robustness extensions of §4 (multi-PROBE loss
// compensation, redundant-worker turn-off, multi-working-neighbor rate
// rule).
//
// The protocol is written against a small Platform interface so the same
// state machine runs unchanged inside the discrete-event simulator
// (internal/node) and the live goroutine runtime (peasnet).
package core

import (
	"errors"
	"fmt"
)

// Default protocol parameters from the paper's evaluation (§5.1-5.2).
const (
	// DefaultProbingRange is Rp in meters.
	DefaultProbingRange = 3.0
	// DefaultInitialRate is the boot-time per-node probing rate λ0 in
	// wakeups/second ("0.1 wakeup/sec so that the number of working
	// nodes quickly stabilizes").
	DefaultInitialRate = 0.1
	// DefaultDesiredRate is the desired aggregate probing rate λd in
	// wakeups/second ("0.02 wakeup/sec, a wakeup every 50 seconds
	// perceived by a working node").
	DefaultDesiredRate = 0.02
	// DefaultEstimatorK is the PROBE count threshold k of the λ̂
	// estimator ("we select k = 32 based on experimental studies").
	DefaultEstimatorK = 32
	// DefaultNumProbes is the number of PROBE transmissions per wakeup
	// ("three PROBEs work well against loss rates of up to 10%").
	DefaultNumProbes = 3
	// DefaultProbeWindow is how long a probing node keeps its radio on
	// waiting for REPLYs, in seconds ("waits for 100ms during which
	// working nodes randomly back off to send REPLYs").
	DefaultProbeWindow = 0.100
	// DefaultPacketSize is the PROBE/REPLY frame size in bytes ("the
	// packet size of PROBE and REPLY messages is 25 bytes").
	DefaultPacketSize = 25
)

// Config holds the tunable parameters of one PEAS node.
type Config struct {
	// ProbingRange is Rp: a prober starts working unless a working node
	// exists within this radius. Chosen by the application from its
	// sensing/communication redundancy requirements (§2.1).
	ProbingRange float64
	// InitialRate is λ0, the boot-time probing rate.
	InitialRate float64
	// DesiredRate is λd, the target aggregate probing rate perceived by
	// each working node.
	DesiredRate float64
	// EstimatorK is the PROBE-count threshold of the rate estimator.
	EstimatorK int
	// NumProbes is how many PROBE copies a wakeup transmits, spread over
	// the first half of the probe window (§4 loss compensation).
	NumProbes int
	// ProbeWindow is the listening window after the first PROBE.
	ProbeWindow float64
	// ReplyJitterMax bounds the uniform random backoff a working node
	// applies before sending a REPLY. Zero selects 60% of ProbeWindow,
	// which keeps the latest REPLY plus airtime inside the window.
	ReplyJitterMax float64
	// PacketSize is the PROBE/REPLY size in bytes.
	PacketSize int
	// MinRate and MaxRate clamp the adapted per-node rate λ so a wild
	// estimate cannot freeze a node (sleep ≈ forever) or melt it
	// (continuous probing). Zero selects DesiredRate/1e4 and 1.0.
	MinRate float64
	MaxRate float64
	// TurnoffEnabled activates the §4 extension: a working node that
	// overhears a REPLY from a longer-working neighbor within Rp goes
	// back to sleep.
	TurnoffEnabled bool
	// StaleEstimates makes REPLYs carry the last completed estimator
	// window verbatim, as a literal reading of §2.2 prescribes. This
	// reproduces the Adaptive Sleeping death spiral documented in
	// DESIGN.md §5 (stale boot-time rates drive all sleepers into
	// near-infinite sleep); it exists for the deviation ablation and
	// must stay false in real deployments.
	StaleEstimates bool
}

// DefaultConfig returns the paper's evaluation parameters.
func DefaultConfig() Config {
	return Config{
		ProbingRange: DefaultProbingRange,
		InitialRate:  DefaultInitialRate,
		DesiredRate:  DefaultDesiredRate,
		EstimatorK:   DefaultEstimatorK,
		NumProbes:    DefaultNumProbes,
		ProbeWindow:  DefaultProbeWindow,
		PacketSize:   DefaultPacketSize,
		// The §4 error-correction extension is on by default: occasional
		// REPLY losses (collisions, hidden terminals) promote redundant
		// workers, and without the turn-off those errors only accumulate
		// over a long-lived network.
		TurnoffEnabled: true,
	}
}

// ErrInvalidConfig wraps all Config validation failures so callers can
// match them with errors.Is.
var ErrInvalidConfig = errors.New("peas: invalid config")

// Validate normalizes defaults for zero optional fields and reports
// whether the configuration is usable.
func (c *Config) Validate() error {
	if c.ProbingRange <= 0 {
		return fmt.Errorf("%w: probing range %v must be positive", ErrInvalidConfig, c.ProbingRange)
	}
	if c.InitialRate <= 0 {
		return fmt.Errorf("%w: initial rate %v must be positive", ErrInvalidConfig, c.InitialRate)
	}
	if c.DesiredRate <= 0 {
		return fmt.Errorf("%w: desired rate %v must be positive", ErrInvalidConfig, c.DesiredRate)
	}
	if c.EstimatorK <= 0 {
		return fmt.Errorf("%w: estimator k %d must be positive", ErrInvalidConfig, c.EstimatorK)
	}
	if c.NumProbes <= 0 {
		return fmt.Errorf("%w: probe count %d must be positive", ErrInvalidConfig, c.NumProbes)
	}
	if c.ProbeWindow <= 0 {
		return fmt.Errorf("%w: probe window %v must be positive", ErrInvalidConfig, c.ProbeWindow)
	}
	if c.PacketSize <= 0 {
		return fmt.Errorf("%w: packet size %d must be positive", ErrInvalidConfig, c.PacketSize)
	}
	if c.ReplyJitterMax == 0 {
		c.ReplyJitterMax = 0.6 * c.ProbeWindow
	}
	if c.ReplyJitterMax < 0 || c.ReplyJitterMax >= c.ProbeWindow {
		return fmt.Errorf("%w: reply jitter %v must be in [0, probe window)", ErrInvalidConfig, c.ReplyJitterMax)
	}
	if c.MinRate == 0 {
		c.MinRate = c.DesiredRate / 1e4
	}
	if c.MaxRate == 0 {
		c.MaxRate = 1.0
	}
	if c.MinRate < 0 || c.MaxRate <= c.MinRate {
		return fmt.Errorf("%w: rate clamp [%v, %v] is empty", ErrInvalidConfig, c.MinRate, c.MaxRate)
	}
	return nil
}
