package core

// NodeID identifies a PEAS node. It matches radio.NodeID in the simulator
// and the peer index in the live runtime.
type NodeID int

// Probe is the PROBE message a newly woken node broadcasts within its
// probing range Rp to discover whether any working node is present (§2.1).
type Probe struct {
	From NodeID
	// Seq distinguishes the NumProbes copies of one wakeup so a working
	// node can rate-estimate on wakeups rather than raw frames.
	Seq int
}

// Reply is the REPLY a working node sends back within Rp. It piggybacks
// the Adaptive Sleeping feedback (§2.2) and the working-duration used by
// the §4 turn-off extension.
type Reply struct {
	From NodeID
	// RateEstimate is λ̂, the working node's most recent measurement of
	// the aggregate probing rate of its sleeping neighbors. Zero means
	// the node has not completed a measurement yet; probers then leave
	// their rate unchanged.
	RateEstimate float64
	// DesiredRate is λd as configured at the working node.
	DesiredRate float64
	// TimeWorking is how long the sender has been in the Working mode,
	// in seconds (§4: longer-working nodes may turn off younger ones,
	// not vice versa).
	TimeWorking float64
}
