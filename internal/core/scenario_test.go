package core

import (
	"testing"

	"peas/internal/geom"
	"peas/internal/sim"
	"peas/internal/stats"
)

// miniNet wires several Protocol instances over an ideal instantaneous
// medium (perfect delivery within Rp, no airtime, no losses) on one
// engine. It tests protocol-level emergent behaviour with no radio
// physics in the way.
type miniNet struct {
	engine    *sim.Engine
	positions []geom.Point
	protos    []*Protocol
	platforms []*miniPlatform
}

type miniPlatform struct {
	net *miniNet
	id  int
	rng *stats.RNG
}

var _ Platform = (*miniPlatform)(nil)

func (p *miniPlatform) Now() float64               { return p.net.engine.Now() }
func (p *miniPlatform) After(d float64, fn func()) { p.net.engine.Schedule(d, fn) }
func (p *miniPlatform) SetState(State)             {}
func (p *miniPlatform) Rand() *stats.RNG           { return p.rng }

func (p *miniPlatform) Broadcast(_ int, radius float64, payload any) {
	from := p.net.positions[p.id]
	for i, proto := range p.net.protos {
		if i == p.id || proto.State() == Dead {
			continue
		}
		// Sleeping nodes cannot receive.
		if proto.State() == Sleeping {
			continue
		}
		d := from.Dist(p.net.positions[i])
		if d <= radius {
			// Instantaneous, loss-free delivery.
			proto.HandleMessage(payload, d)
		}
	}
}

func newMiniNet(positions []geom.Point, cfg Config, seed int64) *miniNet {
	net := &miniNet{
		engine:    sim.NewEngine(),
		positions: positions,
	}
	rng := stats.NewRNG(seed)
	for i := range positions {
		p := &miniPlatform{net: net, id: i, rng: rng.Split()}
		net.platforms = append(net.platforms, p)
		net.protos = append(net.protos, New(NodeID(i), cfg, p))
	}
	return net
}

func (n *miniNet) start()            { forEach(n.protos, (*Protocol).Start) }
func (n *miniNet) run(until float64) { n.engine.Run(until) }
func (n *miniNet) working() (out []int) {
	for i, p := range n.protos {
		if p.State() == Working {
			out = append(out, i)
		}
	}
	return out
}

func forEach(ps []*Protocol, fn func(*Protocol)) {
	for _, p := range ps {
		fn(p)
	}
}

func TestMiniNetOneWorkerPerRegion(t *testing.T) {
	// Three nodes within one Rp region: exactly one must end up working.
	positions := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	net := newMiniNet(positions, DefaultConfig(), 3)
	net.start()
	net.run(500)
	if got := net.working(); len(got) != 1 {
		t.Errorf("working = %v, want exactly one", got)
	}
}

func TestMiniNetDistantRegionsBothWork(t *testing.T) {
	// Two nodes 5 m apart (> Rp = 3): both must work.
	positions := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}}
	net := newMiniNet(positions, DefaultConfig(), 5)
	net.start()
	net.run(500)
	if got := net.working(); len(got) != 2 {
		t.Errorf("working = %v, want both", got)
	}
}

func TestMiniNetReplacementChain(t *testing.T) {
	// Five co-located nodes: kill the worker repeatedly; each time a
	// sleeper must take over, until the region is exhausted.
	positions := make([]geom.Point, 5)
	for i := range positions {
		positions[i] = geom.Point{X: float64(i) * 0.5, Y: 0}
	}
	net := newMiniNet(positions, DefaultConfig(), 7)
	net.start()
	net.run(300)

	for round := 0; round < 5; round++ {
		workers := net.working()
		if len(workers) != 1 {
			t.Fatalf("round %d: working = %v, want one", round, workers)
		}
		net.protos[workers[0]].Fail()
		// Sleepers have adapted (possibly very low) rates; wait in
		// slices until a replacement emerges or the region is out of
		// alive nodes. Later generations can carry rates around 1e-4
		// (mean sleep ~10^4 s), so the allowance is generous.
		alive := 0
		for _, p := range net.protos {
			if p.State() != Dead {
				alive++
			}
		}
		for waited := 0; waited < 100 && len(net.working()) == 0 && alive > 0; waited++ {
			net.run(net.engine.Now() + 2000)
		}
	}
	if got := net.working(); len(got) != 0 {
		t.Errorf("after exhausting all nodes, working = %v", got)
	}
	for i, p := range net.protos {
		if p.State() != Dead && p.State() != Sleeping {
			t.Errorf("node %d in state %v after exhaustion", i, p.State())
		}
	}
}

func TestMiniNetAggregateRateConverges(t *testing.T) {
	// One worker with many sleepers: after enough probe rounds, the
	// sleepers' aggregate rate should hover near λd.
	cfg := DefaultConfig()
	positions := []geom.Point{{X: 0, Y: 0}}
	for i := 0; i < 12; i++ {
		positions = append(positions, geom.Point{X: 0.5 + 0.1*float64(i), Y: 0.5})
	}
	net := newMiniNet(positions, cfg, 11)
	// Make node 0 the worker by booting it first.
	net.protos[0].Start()
	net.run(200)
	if net.protos[0].State() != Working {
		t.Fatal("node 0 did not become the worker")
	}
	for _, p := range net.protos[1:] {
		p.Start()
	}
	net.run(20000)

	var aggregate float64
	for _, p := range net.protos[1:] {
		if p.State() == Sleeping {
			aggregate += p.Rate()
		}
	}
	// The measured aggregate fluctuates around λd (paper §2.2.1);
	// accept a factor-3 band after convergence.
	if aggregate < cfg.DesiredRate/3 || aggregate > cfg.DesiredRate*3 {
		t.Errorf("aggregate sleeper rate %v, want ≈ λd = %v", aggregate, cfg.DesiredRate)
	}
}

func TestMiniNetTurnoffResolvesDoubleWorkers(t *testing.T) {
	// Force two workers into one region by booting them in isolation,
	// then "moving" them together is impossible — instead boot both
	// simultaneously with probing disabled interference: with an ideal
	// medium, simultaneous probe windows can double-promote. Emulate
	// the §4 resolution by injecting each other's REPLYs.
	cfg := DefaultConfig()
	cfg.TurnoffEnabled = true
	positions := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	net := newMiniNet(positions, cfg, 13)
	// Promote both directly through the engine: start them at the same
	// instant so both probe before either works.
	net.protos[0].Start()
	net.protos[1].Start()
	// Find a moment when both work; if the race never happens, force it
	// by failing nothing and just checking the invariant resolution
	// path via synthetic REPLYs.
	net.run(2000)
	w := net.working()
	if len(w) == 2 {
		// The turnoff should have resolved this already via organic
		// REPLY traffic; nudge with one more probing round.
		net.run(net.engine.Now() + 5000)
		if len(net.working()) == 2 {
			t.Error("two workers within Rp persisted despite turnoff")
		}
		return
	}
	// Organic case: only one worker — inject a synthetic older REPLY to
	// the worker and verify it yields.
	if len(w) != 1 {
		t.Fatalf("working = %v", w)
	}
	worker := net.protos[w[0]]
	worker.HandleMessage(Reply{From: 99, RateEstimate: 0.02,
		TimeWorking: worker.TimeWorking() + 1000}, 2)
	if worker.State() != Sleeping {
		t.Errorf("worker did not yield to an older one: %v", worker.State())
	}
}
