package core

import (
	"fmt"

	"peas/internal/stats"
)

// State is a PEAS node operation mode (paper Figure 1), plus the terminal
// Dead state a node enters on energy depletion or injected failure.
type State int

// Operation modes.
const (
	Sleeping State = iota + 1
	Probing
	Working
	Dead
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Sleeping:
		return "sleeping"
	case Probing:
		return "probing"
	case Working:
		return "working"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Platform is the environment a Protocol instance runs in. The simulator
// and the live runtime provide implementations; both must invoke all
// Protocol methods and After callbacks from a single logical thread per
// node network (the simulator is single-threaded; peasnet serializes per
// network).
type Platform interface {
	// Now returns the current time in seconds.
	Now() float64
	// After schedules fn once, d seconds from now. Callbacks must not
	// run concurrently with message delivery.
	After(d float64, fn func())
	// Broadcast transmits payload so it covers radius meters, in a frame
	// of size bytes.
	Broadcast(size int, radius float64, payload any)
	// SetState informs the platform of a mode change so it can adjust
	// radio power state and battery mode.
	SetState(s State)
	// Rand returns the node's private random stream.
	Rand() *stats.RNG
}

// Stats are cumulative per-node protocol counters.
type Stats struct {
	Wakeups      uint64 // probe rounds begun
	ProbesSent   uint64 // PROBE frames transmitted
	RepliesSent  uint64 // REPLY frames transmitted
	RepliesHeard uint64 // REPLYs received while probing
	RateUpdates  uint64 // Adaptive Sleeping rate adjustments applied
	Turnoffs     uint64 // times this node slept via the §4 extension
	TimeWorking  float64
	TimeSleeping float64
	TimeProbing  float64
}

// Protocol is the per-node PEAS state machine. It keeps no per-neighbor
// state: a sleeping/probing node holds only its rate λ; a working node
// holds only the two-field rate estimator.
type Protocol struct {
	id       NodeID
	cfg      Config
	platform Platform

	state        State
	stateSince   float64
	gen          uint64 // invalidates stale After callbacks
	lambda       float64
	estimator    RateEstimator // embedded by value: one fewer object per node
	workStart    float64
	heard        []Reply    // REPLYs collected during the current probe window
	replyPending bool       // a REPLY broadcast is already scheduled
	timers       []TimerRec // pending timers, serializable for checkpoints
	stats        Stats

	// argPlatform is non-nil when the platform supports allocation-free
	// arg scheduling; timers then ride pooled timerEvent records instead
	// of per-arm closures.
	argPlatform ArgPlatform
	freeTimers  *timerEvent
	// probeBox caches the boxed PROBE payloads (one per sequence number):
	// a node's PROBE contents never change, so the interface boxing
	// allocation is paid once instead of on every transmission.
	probeBox []any
}

// New returns a Protocol for node id. cfg must have been validated; New
// validates again defensively and panics on error, since an invalid
// config here is a programming error in the platform layer.
func New(id NodeID, cfg Config, platform Platform) *Protocol {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Protocol{
		id:        id,
		cfg:       cfg,
		platform:  platform,
		state:     Sleeping,
		lambda:    cfg.InitialRate,
		estimator: *NewRateEstimator(cfg.EstimatorK),
	}
	p.argPlatform, _ = platform.(ArgPlatform)
	return p
}

// ID returns the node identifier.
func (p *Protocol) ID() NodeID { return p.id }

// State returns the current operation mode.
func (p *Protocol) State() State { return p.state }

// Rate returns the node's current probing rate λ.
func (p *Protocol) Rate() float64 { return p.lambda }

// Stats returns a copy of the node's counters, with the time-in-state
// accumulators settled up to the current instant.
func (p *Protocol) Stats() Stats {
	s := p.stats
	dt := p.platform.Now() - p.stateSince
	switch p.state {
	case Working:
		s.TimeWorking += dt
	case Sleeping:
		s.TimeSleeping += dt
	case Probing:
		s.TimeProbing += dt
	}
	return s
}

// TimeWorking returns how long the node has been in Working mode, or 0
// when it is not working. REPLYs carry this value for the §4 extension.
func (p *Protocol) TimeWorking() float64 {
	if p.state != Working {
		return 0
	}
	return p.platform.Now() - p.workStart
}

// Start boots the node: it enters Sleeping mode and schedules its first
// wakeup from the exponential distribution with rate λ0.
func (p *Protocol) Start() {
	p.enter(Sleeping)
	p.scheduleWakeup()
}

// Fail transitions the node to Dead immediately, modelling energy
// depletion or an injected failure. All pending callbacks become no-ops.
func (p *Protocol) Fail() {
	if p.state == Dead {
		return
	}
	p.enter(Dead)
}

// Reboot restarts a failed state machine from scratch, as a rebooted node
// would: volatile state — the adapted rate λ, the estimator, REPLYs heard
// — resets to boot values, while the cumulative counters survive for the
// harness. The chaos layer's fail-recover fault class uses it.
func (p *Protocol) Reboot() {
	p.lambda = p.cfg.InitialRate
	p.estimator.Reset()
	p.heard = p.heard[:0]
	p.Start()
}

// enter performs the bookkeeping common to all transitions.
func (p *Protocol) enter(s State) {
	now := p.platform.Now()
	dt := now - p.stateSince
	switch p.state {
	case Working:
		p.stats.TimeWorking += dt
	case Sleeping:
		p.stats.TimeSleeping += dt
	case Probing:
		p.stats.TimeProbing += dt
	}
	p.state = s
	p.stateSince = now
	p.gen++ // every pending timer below is now invalid ...
	p.timers = p.timers[:0] // ... so the serializable records go too
	p.replyPending = false
	p.platform.SetState(s)
}

// dispatch performs the protocol action a pending timer record encodes.
// It is the single Kind->action mapping, shared by live arming and by the
// checkpoint-restore rebuild.
func (p *Protocol) dispatch(rec TimerRec) {
	switch rec.Kind {
	case TimerWakeup:
		p.wake()
	case TimerProbeSend:
		p.sendProbe(rec.Probe)
	case TimerProbeEnd:
		p.endProbe()
	case TimerReply:
		p.fireReply()
	}
}

// timerEvent is one pooled pending-timer record: the scheduler's argument
// for the shared runTimer callback. Records recycle through the owning
// Protocol's free list, so arming a timer allocates nothing.
type timerEvent struct {
	p    *Protocol
	rec  TimerRec
	gen  uint64
	next *timerEvent
}

// runTimer is the shared firing callback for every pooled timer record.
func runTimer(a any) {
	t := a.(*timerEvent)
	p := t.p
	rec, gen := t.rec, t.gen
	t.next = p.freeTimers
	p.freeTimers = t
	if p.gen == gen && p.state != Dead {
		p.removeTimer(rec)
		p.dispatch(rec)
	}
}

// scheduleTimer arms the timer described by rec, guarded by the current
// generation: if the node has transitioned since, the callback does
// nothing. The record stays in p.timers while the timer is pending, which
// is what lets a checkpoint capture the node's outstanding schedule as
// plain data and a restore rebuild it via ResumeTimers.
func (p *Protocol) scheduleTimer(rec TimerRec) {
	p.timers = append(p.timers, rec)
	gen := p.gen
	// Schedule at the absolute recorded deadline when the platform can:
	// re-arming a restored timer via now+(at-now) would round the deadline
	// and nudge the resumed trajectory off the original by an ulp.
	if ap := p.argPlatform; ap != nil {
		t := p.freeTimers
		if t != nil {
			p.freeTimers = t.next
			t.next = nil
		} else {
			t = &timerEvent{p: p}
		}
		t.rec = rec
		t.gen = gen
		ap.AtArg(rec.At, runTimer, t)
		return
	}
	wrapped := func() {
		if p.gen == gen && p.state != Dead {
			p.removeTimer(rec)
			p.dispatch(rec)
		}
	}
	if ap, ok := p.platform.(AbsolutePlatform); ok {
		ap.At(rec.At, wrapped)
		return
	}
	p.platform.After(rec.At-p.platform.Now(), wrapped)
}

// afterTimer schedules the rec action after d seconds.
func (p *Protocol) afterTimer(kind TimerKind, probe int, d float64) {
	if d < 0 {
		d = 0
	}
	p.scheduleTimer(TimerRec{Kind: kind, Probe: probe, At: p.platform.Now() + d})
}

func (p *Protocol) removeTimer(rec TimerRec) {
	for i, r := range p.timers {
		if r == rec {
			p.timers = append(p.timers[:i], p.timers[i+1:]...)
			return
		}
	}
}

func (p *Protocol) scheduleWakeup() {
	ts := p.platform.Rand().Exp(p.lambda)
	p.afterTimer(TimerWakeup, 0, ts)
}

// wake begins a probe round (Sleeping -> Probing in Figure 1).
func (p *Protocol) wake() {
	p.stats.Wakeups++
	p.heard = p.heard[:0]
	p.enter(Probing)

	// First PROBE immediately; the remaining copies are spread uniformly
	// over the first half of the window so their REPLYs still fit (§4:
	// "these multiple messages are randomly spread over a small time
	// interval to reduce collisions").
	p.sendProbe(0)
	for i := 1; i < p.cfg.NumProbes; i++ {
		delay := p.platform.Rand().Uniform(0, p.cfg.ProbeWindow/2)
		p.afterTimer(TimerProbeSend, i, delay)
	}
	p.afterTimer(TimerProbeEnd, 0, p.cfg.ProbeWindow)
}

func (p *Protocol) sendProbe(seq int) {
	p.stats.ProbesSent++
	for len(p.probeBox) <= seq {
		p.probeBox = append(p.probeBox, Probe{From: p.id, Seq: len(p.probeBox)})
	}
	p.platform.Broadcast(p.cfg.PacketSize, p.cfg.ProbingRange, p.probeBox[seq])
}

// endProbe closes the probe window: hearing at least one REPLY sends the
// node back to sleep with an adapted rate; silence promotes it to Working.
func (p *Protocol) endProbe() {
	if len(p.heard) == 0 {
		p.startWorking()
		return
	}
	p.adaptRate()
	p.enter(Sleeping)
	p.scheduleWakeup()
}

// adaptRate applies the Adaptive Sleeping update λ <- λ·λd/λ̂ using the
// REPLY with the largest measurement, which yields the lowest probing rate
// (§4: a prober with several working neighbors is not critical to
// replacing any one of them).
func (p *Protocol) adaptRate() {
	var best Reply
	for _, r := range p.heard {
		if r.RateEstimate > best.RateEstimate {
			best = r
		}
	}
	if best.RateEstimate <= 0 {
		// No working neighbor has completed a measurement yet; keep λ.
		return
	}
	desired := best.DesiredRate
	if desired <= 0 {
		desired = p.cfg.DesiredRate
	}
	p.lambda = clamp(p.lambda*desired/best.RateEstimate, p.cfg.MinRate, p.cfg.MaxRate)
	p.stats.RateUpdates++
}

func (p *Protocol) startWorking() {
	p.enter(Working)
	p.workStart = p.platform.Now()
	p.estimator.Reset()
}

// HandleMessage dispatches a received frame. dist is the measured distance
// to the transmitter; the radio layer guarantees dist <= Rp for delivered
// PROBE/REPLY frames.
func (p *Protocol) HandleMessage(payload any, dist float64) {
	switch msg := payload.(type) {
	case Probe:
		p.onProbe(msg)
	case Reply:
		p.onReply(msg)
	}
	_ = dist
}

func (p *Protocol) onProbe(msg Probe) {
	if p.state != Working {
		return // only working nodes respond to PROBEs
	}
	if msg.Seq == 0 {
		// Rate-estimate on wakeups, not on retransmitted copies: the
		// aggregate Poisson process of §2.2.1 is the process of wakeup
		// events. Retransmissions still trigger REPLYs below.
		p.estimator.Observe(p.platform.Now())
	}
	// A REPLY is a broadcast heard by every prober within Rp, so one
	// pending REPLY answers every PROBE copy and every concurrent
	// prober; coalescing keeps the channel usable during the boot-up
	// probing storm. The random backoff reduces REPLY collisions when
	// several workers hear the same PROBE (§2.1).
	if p.replyPending {
		return
	}
	p.replyPending = true
	jitter := p.platform.Rand().Uniform(0, p.cfg.ReplyJitterMax)
	p.afterTimer(TimerReply, 0, jitter)
}

// fireReply transmits the backed-off REPLY scheduled by onProbe.
func (p *Protocol) fireReply() {
	p.replyPending = false
	if p.state != Working {
		return
	}
	p.stats.RepliesSent++
	estimate := p.estimator.Report(p.platform.Now())
	if p.cfg.StaleEstimates {
		estimate = p.estimator.Estimate()
	}
	p.platform.Broadcast(p.cfg.PacketSize, p.cfg.ProbingRange, Reply{
		From:         p.id,
		RateEstimate: estimate,
		DesiredRate:  p.cfg.DesiredRate,
		TimeWorking:  p.TimeWorking(),
	})
}

func (p *Protocol) onReply(msg Reply) {
	switch p.state {
	case Probing:
		p.stats.RepliesHeard++
		p.heard = append(p.heard, msg)
	case Working:
		if !p.cfg.TurnoffEnabled || msg.From == p.id {
			return
		}
		// §4 extension: two working nodes within Rp of each other are
		// redundant; the younger one yields so routing state on the
		// elder stays stable.
		if p.TimeWorking() < msg.TimeWorking {
			p.stats.Turnoffs++
			p.enter(Sleeping)
			p.scheduleWakeup()
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
