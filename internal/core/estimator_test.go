package core

import (
	"math"
	"testing"
	"testing/quick"

	"peas/internal/stats"
)

func TestEstimatorExactRate(t *testing.T) {
	// Probes arriving exactly every 2 s: λ̂ must be exactly 0.5.
	e := NewRateEstimator(4)
	times := []float64{10, 12, 14, 16, 18}
	var got float64
	var done bool
	for _, ts := range times {
		got, done = e.Observe(ts)
	}
	if !done {
		t.Fatal("window should complete at the 5th probe (k=4 intervals)")
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("λ̂ = %v, want 0.5", got)
	}
	if e.Estimate() != got || e.Windows() != 1 {
		t.Errorf("estimate %v windows %d", e.Estimate(), e.Windows())
	}
}

func TestEstimatorWindowRestart(t *testing.T) {
	e := NewRateEstimator(2)
	e.Observe(0) // opens window
	e.Observe(1)
	if _, done := e.Observe(2); !done {
		t.Fatal("first window")
	}
	// Second window: probes at 2 (restart anchor), 4, 6 -> rate 0.5.
	e.Observe(4)
	got, done := e.Observe(6)
	if !done || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("second window λ̂ = %v done=%v", got, done)
	}
	if e.Windows() != 2 {
		t.Errorf("windows = %d", e.Windows())
	}
}

func TestEstimatorPoissonAccuracy(t *testing.T) {
	// §2.2.1: with k >= 16, the measured mean interval is within 1% of
	// the truth with >99% confidence. Verify the k=32 estimator lands
	// within a few percent almost always.
	rng := stats.NewRNG(5)
	const (
		trueRate = 0.02
		trials   = 1000
	)
	bad := 0
	for trial := 0; trial < trials; trial++ {
		e := NewRateEstimator(32)
		now := 0.0
		var got float64
		for done := false; !done; {
			now += rng.Exp(trueRate)
			got, done = e.Observe(now)
		}
		if math.Abs(got-trueRate)/trueRate > 0.5 {
			bad++
		}
	}
	// Relative error of λ̂ over one k=32 window is ~1/sqrt(32) ≈ 18%;
	// errors beyond 50% sit ~2-3σ out, so they stay below ~5% of trials.
	if bad > trials/20 {
		t.Errorf("%d/%d windows off by more than 50%%", bad, trials)
	}
}

func TestEstimatorUnbiasedOnMeanInterval(t *testing.T) {
	// The paper estimates via the mean interval T_a = 1/λ; check that
	// 1/λ̂ averages to the true mean interval.
	rng := stats.NewRNG(9)
	const trueRate = 0.1
	var sumInterval float64
	const trials = 3000
	for trial := 0; trial < trials; trial++ {
		e := NewRateEstimator(32)
		now := 0.0
		var got float64
		for done := false; !done; {
			now += rng.Exp(trueRate)
			got, done = e.Observe(now)
		}
		sumInterval += 1 / got
	}
	mean := sumInterval / trials
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("mean measured interval = %v, want ≈ 10", mean)
	}
}

func TestEstimatorSimultaneousArrivals(t *testing.T) {
	e := NewRateEstimator(2)
	e.Observe(5)
	e.Observe(5)
	if _, done := e.Observe(5); done {
		t.Error("zero-elapsed window must not publish an estimate")
	}
	if e.Estimate() != 0 {
		t.Errorf("estimate = %v, want 0", e.Estimate())
	}
}

func TestEstimatorReset(t *testing.T) {
	e := NewRateEstimator(2)
	e.Observe(0)
	e.Observe(1)
	e.Observe(2)
	e.Reset()
	if e.Estimate() != 0 || e.Windows() != 0 {
		t.Error("reset did not clear state")
	}
	if got := e.Report(100); got != 0 {
		t.Errorf("report after reset = %v", got)
	}
}

func TestEstimatorDefaultK(t *testing.T) {
	e := NewRateEstimator(0)
	if e.k != DefaultEstimatorK {
		t.Errorf("k = %d, want default %d", e.k, DefaultEstimatorK)
	}
}

func TestReportBoundsStaleEstimate(t *testing.T) {
	// A window completed at a high rate; then probes stop. Report must
	// decay toward zero instead of repeating the stale estimate — this
	// is what prevents the Adaptive Sleeping death spiral.
	e := NewRateEstimator(2)
	e.Observe(0)
	e.Observe(0.5)
	e.Observe(1.0) // λ̂ = 2.0, new window opens at t=1
	if e.Estimate() != 2.0 {
		t.Fatalf("estimate = %v", e.Estimate())
	}
	// Shortly after, the stale estimate is still reported (the running
	// bound is larger).
	if got := e.Report(1.1); got != 2.0 {
		t.Errorf("fresh report = %v, want 2.0", got)
	}
	// Long after, with no probes, the bound takes over: (0+1)/(100-1).
	got := e.Report(100)
	want := 1.0 / 99
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("stale report = %v, want %v", got, want)
	}
}

func TestReportBeforeFirstWindow(t *testing.T) {
	e := NewRateEstimator(32)
	if e.Report(10) != 0 {
		t.Error("no probes at all: report must be 0")
	}
	e.Observe(0)
	if e.Report(5) != 0 {
		t.Error("one probe: report must still be 0 (needs n >= 2)")
	}
	e.Observe(1)
	e.Observe(2)
	got := e.Report(4)
	want := 3.0 / 4 // (n=2 + 1) / (4 - 0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("early report = %v, want %v", got, want)
	}
}

func TestReportNeverExceedsCompletedEstimate(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := stats.NewRNG(seed)
		e := NewRateEstimator(8)
		now := 0.0
		for i := 0; i < 50; i++ {
			now += rng.Exp(0.5)
			e.Observe(now)
		}
		if e.Estimate() == 0 {
			return true
		}
		// At any later time, the report is bounded by the estimate.
		for _, dt := range []float64{0.1, 1, 10, 1000} {
			if e.Report(now+dt) > e.Estimate() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}
