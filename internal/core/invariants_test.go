package core

import (
	"testing"
	"testing/quick"

	"peas/internal/stats"
)

// invariantPlatform wraps fakePlatform with per-call invariant checks.
type invariantPlatform struct {
	*fakePlatform
	t     *testing.T
	proto *Protocol
}

func (p *invariantPlatform) Broadcast(size int, radius float64, payload any) {
	// Invariant: only probing nodes send PROBEs; only working nodes
	// send REPLYs; dead/sleeping nodes send nothing.
	switch payload.(type) {
	case Probe:
		if p.proto.State() != Probing {
			p.t.Errorf("PROBE sent in state %v", p.proto.State())
		}
	case Reply:
		if p.proto.State() != Working {
			p.t.Errorf("REPLY sent in state %v", p.proto.State())
		}
	}
	if radius <= 0 || size <= 0 {
		p.t.Errorf("broadcast with size=%d radius=%v", size, radius)
	}
	p.fakePlatform.Broadcast(size, radius, payload)
}

// TestProtocolInvariantsUnderRandomTraffic drives one node with random
// message sequences and checks global invariants after every step:
//
//   - λ stays within [MinRate, MaxRate];
//   - no transmissions from sleeping or dead nodes (checked on every
//     Broadcast above);
//   - the state is always one of the four legal ones;
//   - a failed node stays dead.
func TestProtocolInvariantsUnderRandomTraffic(t *testing.T) {
	err := quick.Check(func(seed int64, script []uint8) bool {
		f := newFakePlatform(seed)
		inv := &invariantPlatform{fakePlatform: f, t: t}
		cfg := DefaultConfig()
		p := New(1, cfg, inv)
		inv.proto = p
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		p.Start()
		rng := stats.NewRNG(seed)

		failed := false
		for _, op := range script {
			switch op % 6 {
			case 0:
				f.engine.Run(f.engine.Now() + rng.Uniform(0, 30))
			case 1:
				p.HandleMessage(Probe{From: NodeID(2 + op%5), Seq: int(op % 3)}, rng.Uniform(0, 3))
			case 2:
				p.HandleMessage(Reply{
					From:         NodeID(2 + op%5),
					RateEstimate: rng.Uniform(0, 2),
					DesiredRate:  cfg.DesiredRate,
					TimeWorking:  rng.Uniform(0, 5000),
				}, rng.Uniform(0, 3))
			case 3:
				f.engine.Step()
			case 4:
				if op%16 == 4 { // fail occasionally
					p.Fail()
					failed = true
				}
			case 5:
				p.HandleMessage("garbage", 1) // unknown payloads ignored
			}

			// Global invariants.
			switch p.State() {
			case Sleeping, Probing, Working, Dead:
			default:
				t.Errorf("illegal state %v", p.State())
				return false
			}
			if failed && p.State() != Dead {
				t.Error("failed node resurrected")
				return false
			}
			if r := p.Rate(); r < cfg.MinRate-1e-15 || r > cfg.MaxRate+1e-15 {
				t.Errorf("rate %v escaped [%v, %v]", r, cfg.MinRate, cfg.MaxRate)
				return false
			}
		}
		// Drain: no pending event may violate invariants either.
		f.engine.Run(f.engine.Now() + 1000)
		st := p.Stats()
		if st.TimeSleeping < 0 || st.TimeProbing < 0 || st.TimeWorking < 0 {
			t.Errorf("negative state time: %+v", st)
			return false
		}
		return !t.Failed()
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}

// TestProtocolStateTimesSumToClock checks the accounting identity under
// random schedules: sleeping + probing + working time equals elapsed
// time until death.
func TestProtocolStateTimesSumToClock(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		f := newFakePlatform(seed)
		p := New(1, DefaultConfig(), f)
		p.Start()
		rng := stats.NewRNG(seed)
		for i := 0; i < 20; i++ {
			f.engine.Run(f.engine.Now() + rng.Uniform(0, 50))
			if rng.Float64() < 0.3 {
				p.HandleMessage(Reply{From: 2, RateEstimate: 0.02, DesiredRate: 0.02}, 1)
			}
		}
		st := p.Stats()
		total := st.TimeSleeping + st.TimeProbing + st.TimeWorking
		now := f.engine.Now()
		return total > now-1e-6 && total < now+1e-6
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}
