package core

// RateEstimator measures the aggregate probing rate λ perceived by a
// working node (paper §2.2, Figure 6). It keeps exactly the two states the
// paper prescribes — a PROBE counter N and the window start t0 — and no
// per-neighbor information.
//
// The first observed PROBE opens a measurement window (N=0, t0=t). Each
// subsequent PROBE increments N. When N reaches the threshold k, the
// estimate λ̂ = k / (t - t0) is published, and a new window opens at t.
type RateEstimator struct {
	k        int
	n        int
	t0       float64
	started  bool
	estimate float64
	windows  int
}

// NewRateEstimator returns an estimator with threshold k. k must be
// positive; the paper selects k = 32 so that, by the central limit
// theorem, the measured mean interval is within 1% of the truth with >99%
// confidence (k >= 16 suffices; 32 adds margin for REPLY backoff and
// processing latency).
func NewRateEstimator(k int) *RateEstimator {
	if k <= 0 {
		k = DefaultEstimatorK
	}
	return &RateEstimator{k: k}
}

// Observe records a PROBE arrival at time t and returns (λ̂, true) when
// this arrival completes a measurement window.
func (e *RateEstimator) Observe(t float64) (float64, bool) {
	if !e.started {
		e.started = true
		e.n = 0
		e.t0 = t
		return 0, false
	}
	e.n++
	if e.n < e.k {
		return 0, false
	}
	elapsed := t - e.t0
	if elapsed <= 0 {
		// k simultaneous arrivals (possible in degenerate tests); keep
		// the previous estimate and restart the window.
		e.n = 0
		e.t0 = t
		return 0, false
	}
	e.estimate = float64(e.k) / elapsed
	e.windows++
	e.n = 0
	e.t0 = t
	return e.estimate, true
}

// Estimate returns the most recent λ̂, or 0 when no window has completed.
func (e *RateEstimator) Estimate() float64 { return e.estimate }

// Report returns the rate to piggyback on a REPLY at time t.
//
// The paper reports the last completed window's λ̂. Used verbatim, that
// estimate can be arbitrarily stale: at the desired rate λd = 0.02/s a
// k = 32 window spans 1600 s, so after the boot-up transient every REPLY
// still carries the boot-time (very high) rate, each wakeup multiplies the
// sleeper's λ by λd/λ̂_stale << 1, and the whole neighborhood spirals into
// near-infinite sleep — no failed worker is ever replaced. (DESIGN.md
// documents this deviation.)
//
// Report therefore bounds the completed estimate by the running window's
// own evidence: if the current window has been open for (t - t0) with N
// probes, the aggregate rate is at most about (N+1)/(t-t0), so the
// reported value is min(λ̂, (N+1)/(t-t0)). At a steady rate the bound
// exceeds λ̂ and the paper's estimator is reported unchanged; during a
// rate collapse the bound decays and the feedback loop recovers. Before
// any window completes, the running ratio is reported once at least two
// probes have arrived.
func (e *RateEstimator) Report(t float64) float64 {
	if !e.started || t <= e.t0 {
		return e.estimate
	}
	running := (float64(e.n) + 1) / (t - e.t0)
	if e.estimate == 0 {
		if e.n >= 2 {
			return running
		}
		return 0
	}
	if running < e.estimate {
		return running
	}
	return e.estimate
}

// Windows returns how many measurement windows have completed.
func (e *RateEstimator) Windows() int { return e.windows }

// Reset clears all estimator state, as when a node re-enters Working mode.
func (e *RateEstimator) Reset() {
	e.n = 0
	e.t0 = 0
	e.started = false
	e.estimate = 0
	e.windows = 0
}
