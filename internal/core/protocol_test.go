package core

import (
	"testing"

	"peas/internal/sim"
	"peas/internal/stats"
)

// fakePlatform drives a Protocol on a private simulation engine and
// records its broadcasts and state changes.
type fakePlatform struct {
	engine *sim.Engine
	rng    *stats.RNG
	sent   []any
	states []State
}

var _ Platform = (*fakePlatform)(nil)

func newFakePlatform(seed int64) *fakePlatform {
	return &fakePlatform{engine: sim.NewEngine(), rng: stats.NewRNG(seed)}
}

func (f *fakePlatform) Now() float64               { return f.engine.Now() }
func (f *fakePlatform) After(d float64, fn func()) { f.engine.Schedule(d, fn) }
func (f *fakePlatform) Broadcast(_ int, _ float64, payload any) {
	f.sent = append(f.sent, payload)
}
func (f *fakePlatform) SetState(s State) { f.states = append(f.states, s) }
func (f *fakePlatform) Rand() *stats.RNG { return f.rng }

func (f *fakePlatform) probes() []Probe {
	var out []Probe
	for _, p := range f.sent {
		if pr, ok := p.(Probe); ok {
			out = append(out, pr)
		}
	}
	return out
}

func (f *fakePlatform) replies() []Reply {
	var out []Reply
	for _, p := range f.sent {
		if r, ok := p.(Reply); ok {
			out = append(out, r)
		}
	}
	return out
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Sleeping, "sleeping"}, {Probing, "probing"}, {Working, "working"},
		{Dead, "dead"}, {State(42), "State(42)"},
	}
	for _, tc := range tests {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d: got %q want %q", int(tc.s), got, tc.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"zero probing range", func(c *Config) { c.ProbingRange = 0 }, false},
		{"negative initial rate", func(c *Config) { c.InitialRate = -1 }, false},
		{"zero desired rate", func(c *Config) { c.DesiredRate = 0 }, false},
		{"zero k", func(c *Config) { c.EstimatorK = 0 }, false},
		{"zero probes", func(c *Config) { c.NumProbes = 0 }, false},
		{"zero window", func(c *Config) { c.ProbeWindow = 0 }, false},
		{"zero packet", func(c *Config) { c.PacketSize = 0 }, false},
		{"jitter beyond window", func(c *Config) { c.ReplyJitterMax = 1 }, false},
		{"inverted clamp", func(c *Config) { c.MinRate = 2; c.MaxRate = 1 }, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestConfigValidateFillsDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.ReplyJitterMax <= 0 || cfg.ReplyJitterMax >= cfg.ProbeWindow {
		t.Errorf("jitter default %v", cfg.ReplyJitterMax)
	}
	if cfg.MinRate <= 0 || cfg.MaxRate <= cfg.MinRate {
		t.Errorf("rate clamp [%v, %v]", cfg.MinRate, cfg.MaxRate)
	}
}

func TestLoneNodeStartsWorking(t *testing.T) {
	f := newFakePlatform(1)
	p := New(1, DefaultConfig(), f)
	p.Start()
	if p.State() != Sleeping {
		t.Fatalf("boot state = %v", p.State())
	}
	f.engine.Run(1000)
	if p.State() != Working {
		t.Fatalf("lone node should be working, is %v", p.State())
	}
	if got := len(f.probes()); got != DefaultNumProbes {
		t.Errorf("sent %d probes, want %d", got, DefaultNumProbes)
	}
	st := p.Stats()
	if st.Wakeups != 1 || st.ProbesSent != uint64(DefaultNumProbes) {
		t.Errorf("stats %+v", st)
	}
	if st.TimeWorking <= 0 {
		t.Errorf("time working %v", st.TimeWorking)
	}
}

func TestProberSleepsOnReply(t *testing.T) {
	f := newFakePlatform(2)
	p := New(1, DefaultConfig(), f)
	p.Start()
	// Run until the node enters Probing, then inject a REPLY.
	for p.State() != Probing {
		if !f.engine.Step() {
			t.Fatal("never probed")
		}
	}
	p.HandleMessage(Reply{From: 2, RateEstimate: 0.04, DesiredRate: 0.02}, 2)
	// Cross the probe-window end, but stay well before the next wakeup.
	f.engine.Run(f.engine.Now() + 0.15)
	if p.State() != Sleeping {
		t.Fatalf("prober that heard a REPLY should sleep, is %v", p.State())
	}
	// Adaptive Sleeping: λ = λ0·λd/λ̂ = 0.1·0.02/0.04 = 0.05.
	if got := p.Rate(); got != 0.05 {
		t.Errorf("adapted rate = %v, want 0.05", got)
	}
	if p.Stats().RateUpdates != 1 || p.Stats().RepliesHeard != 1 {
		t.Errorf("stats %+v", p.Stats())
	}
}

func TestProberUsesLargestEstimate(t *testing.T) {
	// §4: with several working neighbors, adjust by the largest
	// measurement, yielding the lowest probing rate.
	f := newFakePlatform(3)
	p := New(1, DefaultConfig(), f)
	p.Start()
	for p.State() != Probing {
		if !f.engine.Step() {
			t.Fatal("never probed")
		}
	}
	p.HandleMessage(Reply{From: 2, RateEstimate: 0.04, DesiredRate: 0.02}, 2)
	p.HandleMessage(Reply{From: 3, RateEstimate: 0.10, DesiredRate: 0.02}, 1)
	p.HandleMessage(Reply{From: 4, RateEstimate: 0.02, DesiredRate: 0.02}, 2.5)
	f.engine.Run(f.engine.Now() + 0.15)
	// λ = 0.1·0.02/0.10 = 0.02.
	if got := p.Rate(); got != 0.02 {
		t.Errorf("rate = %v, want 0.02 (largest λ̂ wins)", got)
	}
}

func TestProberKeepsRateWithoutEstimate(t *testing.T) {
	f := newFakePlatform(4)
	p := New(1, DefaultConfig(), f)
	p.Start()
	for p.State() != Probing {
		if !f.engine.Step() {
			t.Fatal("never probed")
		}
	}
	p.HandleMessage(Reply{From: 2, RateEstimate: 0, DesiredRate: 0.02}, 2)
	f.engine.Run(f.engine.Now() + 0.15)
	if p.State() != Sleeping {
		t.Fatalf("state %v", p.State())
	}
	if got := p.Rate(); got != DefaultInitialRate {
		t.Errorf("rate = %v, want unchanged %v", got, DefaultInitialRate)
	}
}

func TestRateClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinRate = 0.01
	cfg.MaxRate = 0.5
	f := newFakePlatform(5)
	p := New(1, cfg, f)
	p.Start()
	for p.State() != Probing {
		if !f.engine.Step() {
			t.Fatal("never probed")
		}
	}
	// Enormous estimate: would push λ to ~1e-5; clamps to MinRate.
	p.HandleMessage(Reply{From: 2, RateEstimate: 1000, DesiredRate: 0.02}, 2)
	f.engine.Run(f.engine.Now() + 0.15)
	if got := p.Rate(); got != 0.01 {
		t.Errorf("rate = %v, want clamped to 0.01", got)
	}
}

func TestWorkerRepliesToProbe(t *testing.T) {
	f := newFakePlatform(6)
	p := New(1, DefaultConfig(), f)
	p.Start()
	f.engine.Run(1000) // lone node: works
	if p.State() != Working {
		t.Fatal("not working")
	}
	nSent := len(f.sent)
	p.HandleMessage(Probe{From: 9, Seq: 0}, 2)
	f.engine.Run(f.engine.Now() + 1)
	replies := f.replies()
	if len(replies) != 1 {
		t.Fatalf("worker sent %d replies, want 1 (total sends %d -> %d)",
			len(replies), nSent, len(f.sent))
	}
	r := replies[0]
	if r.From != 1 || r.DesiredRate != DefaultDesiredRate {
		t.Errorf("reply %+v", r)
	}
	if r.TimeWorking <= 0 {
		t.Errorf("reply TimeWorking = %v", r.TimeWorking)
	}
}

func TestWorkerCoalescesReplies(t *testing.T) {
	f := newFakePlatform(7)
	p := New(1, DefaultConfig(), f)
	p.Start()
	f.engine.Run(1000)
	if p.State() != Working {
		t.Fatal("not working")
	}
	// A burst of probes (one wakeup's 3 copies + a concurrent prober)
	// must produce exactly one REPLY broadcast.
	p.HandleMessage(Probe{From: 9, Seq: 0}, 2)
	p.HandleMessage(Probe{From: 9, Seq: 1}, 2)
	p.HandleMessage(Probe{From: 9, Seq: 2}, 2)
	p.HandleMessage(Probe{From: 8, Seq: 0}, 1)
	f.engine.Run(f.engine.Now() + 1)
	if got := len(f.replies()); got != 1 {
		t.Errorf("coalescing failed: %d replies", got)
	}
	// After the pending reply went out, a new probe gets a new reply.
	p.HandleMessage(Probe{From: 7, Seq: 0}, 1)
	f.engine.Run(f.engine.Now() + 1)
	if got := len(f.replies()); got != 2 {
		t.Errorf("second probe burst: %d replies, want 2", got)
	}
}

func TestSleepingNodeIgnoresMessages(t *testing.T) {
	f := newFakePlatform(8)
	p := New(1, DefaultConfig(), f)
	p.Start()
	p.HandleMessage(Probe{From: 9}, 1)
	p.HandleMessage(Reply{From: 9, RateEstimate: 5}, 1)
	if len(f.sent) != 0 {
		t.Error("sleeping node transmitted")
	}
	if p.Rate() != DefaultInitialRate {
		t.Error("sleeping node adjusted its rate")
	}
}

func TestTurnoffYoungerWorkerYields(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TurnoffEnabled = true
	f := newFakePlatform(9)
	p := New(1, cfg, f)
	p.Start()
	f.engine.Run(1000)
	if p.State() != Working {
		t.Fatal("not working")
	}
	// A REPLY from a longer-working node within Rp: this node yields.
	older := p.TimeWorking() + 100
	p.HandleMessage(Reply{From: 2, RateEstimate: 0.02, TimeWorking: older}, 2)
	if p.State() != Sleeping {
		t.Errorf("younger worker should yield, is %v", p.State())
	}
	if p.Stats().Turnoffs != 1 {
		t.Errorf("turnoffs = %d", p.Stats().Turnoffs)
	}
}

func TestTurnoffElderWorkerStays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TurnoffEnabled = true
	f := newFakePlatform(10)
	p := New(1, cfg, f)
	p.Start()
	f.engine.Run(1000)
	if p.State() != Working {
		t.Fatal("not working")
	}
	p.HandleMessage(Reply{From: 2, RateEstimate: 0.02, TimeWorking: 0.0001}, 2)
	if p.State() != Working {
		t.Errorf("elder worker yielded to a younger one")
	}
	// Own replies must never turn the node off.
	p.HandleMessage(Reply{From: 1, RateEstimate: 0.02, TimeWorking: 1e9}, 0)
	if p.State() != Working {
		t.Error("node turned itself off")
	}
}

func TestTurnoffDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TurnoffEnabled = false
	f := newFakePlatform(11)
	p := New(1, cfg, f)
	p.Start()
	f.engine.Run(1000)
	p.HandleMessage(Reply{From: 2, RateEstimate: 0.02, TimeWorking: 1e9}, 2)
	if p.State() != Working {
		t.Error("turnoff fired while disabled")
	}
}

func TestFailSilencesNode(t *testing.T) {
	f := newFakePlatform(12)
	p := New(1, DefaultConfig(), f)
	p.Start()
	f.engine.Run(1000)
	sent := len(f.sent)
	p.Fail()
	if p.State() != Dead {
		t.Fatalf("state %v", p.State())
	}
	p.Fail() // idempotent
	p.HandleMessage(Probe{From: 9}, 1)
	f.engine.Run(f.engine.Now() + 5000)
	if len(f.sent) != sent {
		t.Error("dead node transmitted")
	}
	if p.TimeWorking() != 0 {
		t.Error("dead node reports time working")
	}
}

func TestStaleCallbacksDropped(t *testing.T) {
	// A node that transitions while callbacks are pending must not
	// execute them: kill the node right after it starts probing and
	// ensure the probe-window expiry does not promote it.
	f := newFakePlatform(13)
	p := New(1, DefaultConfig(), f)
	p.Start()
	for p.State() != Probing {
		if !f.engine.Step() {
			t.Fatal("never probed")
		}
	}
	p.Fail()
	f.engine.Run(f.engine.Now() + 100)
	if p.State() != Dead {
		t.Errorf("stale endProbe resurrected the node: %v", p.State())
	}
}

func TestWakeupsFollowConfiguredRate(t *testing.T) {
	// With REPLYs always answering (simulated by feeding a reply per
	// probe round), a node wakes at its configured rate on average.
	cfg := DefaultConfig()
	f := newFakePlatform(14)
	p := New(1, cfg, f)
	// Answer every probe instantly so the node always goes back to
	// sleep with an estimate equal to λd (rate stays λ0).
	go func() {}() // no concurrency: replies injected via engine hook below
	p.Start()
	const horizon = 2000.0
	for f.engine.Now() < horizon {
		if !f.engine.Step() {
			break
		}
		if p.State() == Probing {
			p.HandleMessage(Reply{From: 2, RateEstimate: cfg.DesiredRate, DesiredRate: cfg.DesiredRate}, 1)
		}
	}
	wakeups := float64(p.Stats().Wakeups)
	want := horizon * cfg.InitialRate // λ stays at λ0 since λ̂ == λd... rate: λ·λd/λ̂ = λ
	if wakeups < want*0.6 || wakeups > want*1.4 {
		t.Errorf("wakeups = %v over %v s, want ≈ %v", wakeups, horizon, want)
	}
}

func TestStatsTimeAccounting(t *testing.T) {
	f := newFakePlatform(15)
	p := New(1, DefaultConfig(), f)
	p.Start()
	f.engine.Run(500)
	st := p.Stats()
	total := st.TimeSleeping + st.TimeProbing + st.TimeWorking
	if total < 499 || total > 501 {
		t.Errorf("state times sum to %v, want ≈ 500", total)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(1, Config{}, newFakePlatform(1))
}
