package core

// This file defines the serializable view of a Protocol instance used by
// the checkpoint/restore subsystem (internal/checkpoint). A snapshot is
// taken at a quiescent event boundary: the state machine's fields are
// plain data, and the pending timers — normally closures inside the event
// engine — are captured as (kind, probe, deadline) records that
// ResumeTimers rebuilds into live callbacks after a restore.

// TimerKind identifies one of the protocol's pending timer types.
type TimerKind uint8

// Pending timer kinds.
const (
	// TimerWakeup ends a sleep period and begins a probe round.
	TimerWakeup TimerKind = iota + 1
	// TimerProbeSend transmits one of the NumProbes PROBE copies.
	TimerProbeSend
	// TimerProbeEnd closes the probe window.
	TimerProbeEnd
	// TimerReply transmits the backed-off REPLY of a working node.
	TimerReply
)

// TimerRec is one pending protocol timer, re-expressed as plain data.
type TimerRec struct {
	Kind TimerKind
	// Probe is the PROBE copy sequence number (TimerProbeSend only).
	Probe int
	// At is the absolute simulation-time deadline.
	At float64
}

// AbsolutePlatform is an optional Platform extension for schedulers that
// support absolute-time deadlines. When available, timers are (re)armed at
// their exact recorded deadline; the relative-delay fallback would round
// the deadline through now+(at-now) and nudge a resumed run off the
// original trajectory by an ulp.
type AbsolutePlatform interface {
	// At schedules fn at the absolute time at; past deadlines fire
	// immediately.
	At(at float64, fn func())
}

// ArgPlatform is an optional Platform extension for schedulers with an
// allocation-free absolute-time variant: fn is a shared function and arg
// carries the per-event state, so arming a timer needs no closure. When
// the platform provides it, protocol timers ride pooled records.
type ArgPlatform interface {
	// AtArg schedules fn(arg) at the absolute time at; past deadlines
	// fire immediately.
	AtArg(at float64, fn func(any), arg any)
}

// EstimatorState is the serializable state of a RateEstimator.
type EstimatorState struct {
	N        int
	T0       float64
	Started  bool
	Estimate float64
	Windows  int
}

// ProtocolState is the serializable state of one protocol instance: the
// Figure 1 mode, the Adaptive Sleeping rate, the estimator, the REPLYs
// heard in the current probe window, the cumulative counters, and the
// pending timers.
type ProtocolState struct {
	State        State
	StateSince   float64
	Lambda       float64
	WorkStart    float64
	ReplyPending bool
	Heard        []Reply
	Stats        Stats
	Estimator    EstimatorState
	Timers       []TimerRec
}

// Snapshot captures the protocol state as plain data. It does not mutate
// the instance, so taking a checkpoint cannot perturb the trajectory.
func (p *Protocol) Snapshot() ProtocolState {
	return ProtocolState{
		State:        p.state,
		StateSince:   p.stateSince,
		Lambda:       p.lambda,
		WorkStart:    p.workStart,
		ReplyPending: p.replyPending,
		Heard:        append([]Reply(nil), p.heard...),
		Stats:        p.stats,
		Estimator: EstimatorState{
			N:        p.estimator.n,
			T0:       p.estimator.t0,
			Started:  p.estimator.started,
			Estimate: p.estimator.estimate,
			Windows:  p.estimator.windows,
		},
		Timers: append([]TimerRec(nil), p.timers...),
	}
}

// RestoreState overwrites a freshly constructed protocol with a captured
// state. It deliberately bypasses enter(): the platform's SetState side
// effects (battery mode, death scheduling) are restored separately by the
// owning layer. Pending timers are NOT re-armed here — call ResumeTimers
// once the platform clock is positioned at the snapshot time.
func (p *Protocol) RestoreState(st ProtocolState) {
	p.state = st.State
	p.stateSince = st.StateSince
	p.lambda = st.Lambda
	p.workStart = st.WorkStart
	p.replyPending = st.ReplyPending
	p.heard = append(p.heard[:0], st.Heard...)
	p.stats = st.Stats
	p.estimator.n = st.Estimator.N
	p.estimator.t0 = st.Estimator.T0
	p.estimator.started = st.Estimator.Started
	p.estimator.estimate = st.Estimator.Estimate
	p.estimator.windows = st.Estimator.Windows
	p.timers = p.timers[:0]
}

// ResumeTimers rebuilds live engine callbacks for the captured pending
// timers, in their recorded order, at their exact recorded deadlines. The
// records are self-describing — dispatch maps Kind back to the action —
// so resuming is just re-arming each one.
func (p *Protocol) ResumeTimers(timers []TimerRec) {
	for _, rec := range timers {
		p.scheduleTimer(rec)
	}
}
