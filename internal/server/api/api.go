// Package api defines the wire types of the simulation service. Both
// the HTTP server (internal/server) and the typed client
// (internal/client) speak these, so they live in a leaf package with no
// transport dependencies.
package api

import (
	"time"

	"peas/internal/buildinfo"
	"peas/internal/jobqueue"
)

// SubmitRequest is the POST /api/v1/jobs body: the job spec itself.
// See jobqueue.Spec for the schema; a minimal body is
// {"network":{"N":160,"Seed":1}}.
type SubmitRequest = jobqueue.Spec

// JobInfo is the serialized view of one job.
type JobInfo struct {
	ID    string         `json:"id"`
	Key   string         `json:"key"`
	Kind  string         `json:"kind"`
	State jobqueue.State `json:"state"`
	// N, Seed and Horizon summarize the spec for listings.
	N       int     `json:"n"`
	Seed    int64   `json:"seed"`
	Horizon float64 `json:"horizon"`
	// SimT and Working are the last observed progress sample.
	SimT    float64 `json:"simT,omitempty"`
	Working int     `json:"working,omitempty"`
	// QueueWaitSeconds is the admission-to-start delay (the wait so far
	// for jobs still queued; absent for cached submissions).
	QueueWaitSeconds float64 `json:"queueWaitSeconds,omitempty"`
	// DeadlineSeconds echoes the submission's end-to-end budget (absent
	// when unbounded).
	DeadlineSeconds float64 `json:"deadlineSeconds,omitempty"`
	// CancelRequested reports that a stop (cancel, deadline or watchdog)
	// has been requested; the job may still be draining toward its
	// terminal state.
	CancelRequested bool `json:"cancelRequested,omitempty"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set on done jobs.
	Result *jobqueue.Result `json:"result,omitempty"`

	EnqueuedAt time.Time  `json:"enqueuedAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
}

// SubmitResponse answers a submission.
type SubmitResponse struct {
	// Outcome is "accepted", "coalesced" or "cached".
	Outcome jobqueue.Outcome `json:"outcome"`
	Job     JobInfo          `json:"job"`
}

// Machine-readable rejection codes carried by ErrorResponse.Code, so
// clients can branch without parsing error strings.
const (
	// CodeQueueFull: admission rejected, queue at capacity (429).
	CodeQueueFull = "queue_full"
	// CodeDeadlineInfeasible: the observed queue-wait distribution says
	// the job's deadline would expire before a worker picks it up (429).
	CodeDeadlineInfeasible = "deadline_infeasible"
	// CodePersistFailed: the spec could not be fsynced at admission, so
	// the job was rolled back rather than accepted unrecoverably (503).
	CodePersistFailed = "persist_failed"
)

// ErrorResponse is the JSON error body for every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Code classifies machine-actionable rejections (see the Code*
	// constants); empty for generic errors.
	Code string `json:"code,omitempty"`
	// RetryAfterSeconds accompanies 429/503 responses (also sent as the
	// Retry-After header).
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
}

// CancelResponse answers DELETE /api/v1/jobs/{id}.
type CancelResponse struct {
	// Requested reports whether this call actually initiated a stop:
	// false when the job was already terminal or already stopping
	// (cancellation is idempotent, so the response is still 2xx).
	Requested bool    `json:"requested"`
	Job       JobInfo `json:"job"`
}

// JobListResponse answers GET /api/v1/jobs.
type JobListResponse struct {
	Jobs []JobInfo `json:"jobs"`
}

// ResultResponse answers GET /api/v1/results/{key}.
type ResultResponse struct {
	Key    string           `json:"key"`
	Result *jobqueue.Result `json:"result"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status string         `json:"status"`
	Build  buildinfo.Info `json:"build"`
	// UptimeSeconds is time since the server booted.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	QueueDepth    int     `json:"queueDepth"`
	InFlight      int     `json:"inFlight"`
	Workers       int     `json:"workers"`
	// Goroutines is the process goroutine count — the cancellation-storm
	// harness watches it to prove cancelled work does not leak goroutines.
	Goroutines int `json:"goroutines"`
	// JobsRecovered counts jobs re-admitted from the state dir since
	// boot; JobsQuarantined counts damaged persisted jobs set aside into
	// the quarantine directory instead of recovered. A non-zero
	// quarantine count means the state dir holds files an operator
	// should inspect — the service itself stays healthy.
	JobsRecovered   uint64 `json:"jobsRecovered"`
	JobsQuarantined uint64 `json:"jobsQuarantined"`
}
