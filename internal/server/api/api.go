// Package api defines the wire types of the simulation service. Both
// the HTTP server (internal/server) and the typed client
// (internal/client) speak these, so they live in a leaf package with no
// transport dependencies.
package api

import (
	"time"

	"peas/internal/buildinfo"
	"peas/internal/jobqueue"
)

// SubmitRequest is the POST /api/v1/jobs body: the job spec itself.
// See jobqueue.Spec for the schema; a minimal body is
// {"network":{"N":160,"Seed":1}}.
type SubmitRequest = jobqueue.Spec

// JobInfo is the serialized view of one job.
type JobInfo struct {
	ID    string         `json:"id"`
	Key   string         `json:"key"`
	Kind  string         `json:"kind"`
	State jobqueue.State `json:"state"`
	// N, Seed and Horizon summarize the spec for listings.
	N       int     `json:"n"`
	Seed    int64   `json:"seed"`
	Horizon float64 `json:"horizon"`
	// SimT and Working are the last observed progress sample.
	SimT    float64 `json:"simT,omitempty"`
	Working int     `json:"working,omitempty"`
	// QueueWaitSeconds is the admission-to-start delay (the wait so far
	// for jobs still queued; absent for cached submissions).
	QueueWaitSeconds float64 `json:"queueWaitSeconds,omitempty"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set on done jobs.
	Result *jobqueue.Result `json:"result,omitempty"`

	EnqueuedAt time.Time  `json:"enqueuedAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
}

// SubmitResponse answers a submission.
type SubmitResponse struct {
	// Outcome is "accepted", "coalesced" or "cached".
	Outcome jobqueue.Outcome `json:"outcome"`
	Job     JobInfo          `json:"job"`
}

// ErrorResponse is the JSON error body for every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSeconds accompanies 429 responses (also sent as the
	// Retry-After header).
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
}

// JobListResponse answers GET /api/v1/jobs.
type JobListResponse struct {
	Jobs []JobInfo `json:"jobs"`
}

// ResultResponse answers GET /api/v1/results/{key}.
type ResultResponse struct {
	Key    string           `json:"key"`
	Result *jobqueue.Result `json:"result"`
}

// HealthResponse answers GET /healthz.
type HealthResponse struct {
	Status string         `json:"status"`
	Build  buildinfo.Info `json:"build"`
	// UptimeSeconds is time since the server booted.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	QueueDepth    int     `json:"queueDepth"`
	InFlight      int     `json:"inFlight"`
	Workers       int     `json:"workers"`
	// JobsRecovered counts jobs re-admitted from the state dir since
	// boot; JobsQuarantined counts damaged persisted jobs set aside into
	// the quarantine directory instead of recovered. A non-zero
	// quarantine count means the state dir holds files an operator
	// should inspect — the service itself stays healthy.
	JobsRecovered   uint64 `json:"jobsRecovered"`
	JobsQuarantined uint64 `json:"jobsQuarantined"`
}
