// Package server exposes the jobqueue pool over HTTP/JSON: job
// submission with admission control (429 + Retry-After on a full
// queue), job inspection, per-job lifecycle streaming over SSE, a
// content-addressed result endpoint, and the operational surface
// (/healthz, /metrics). The server owns no execution logic — it is a
// thin, faithful transport over jobqueue semantics, which is what the
// end-to-end cache-coherence tests pin down.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"

	"peas/internal/buildinfo"
	"peas/internal/jobqueue"
	"peas/internal/metrics"
	"peas/internal/server/api"
)

// Server is the HTTP face of one pool.
type Server struct {
	pool    *jobqueue.Pool
	workers int
	started time.Time
	mux     *http.ServeMux
}

// New wires a server around a started pool. workers is reported in
// /healthz (the pool does not expose its own configuration).
func New(pool *jobqueue.Pool, workers int) *Server {
	s := &Server{
		pool:    pool,
		workers: workers,
		started: time.Now(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/results/{key}", s.handleResult)
	return s
}

// writeBudget bounds how long one non-streaming response may take to
// write; the SSE handler replaces it with its own rolling deadline.
const writeBudget = 30 * time.Second

// ServeHTTP implements http.Handler. A global http.Server.WriteTimeout
// would sever long-lived SSE streams, so the write deadline is applied
// per request here instead — a fixed budget for plain JSON responses,
// pushed forward per event by the streaming handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Errors mean the transport has no deadline support (e.g. a
	// ResponseRecorder in tests); serving without one is the status quo.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(writeBudget))
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// jobInfo renders a job for the wire.
func jobInfo(j *jobqueue.Job) api.JobInfo {
	simT, working := j.Progress()
	enq, started, finished := j.Times()
	info := api.JobInfo{
		ID:         j.ID,
		Key:        j.Key,
		Kind:       j.Spec.Kind,
		State:      j.State(),
		N:          j.Spec.Network.N,
		Seed:       j.Spec.Network.Seed,
		Horizon:    j.Spec.Horizon,
		SimT:       simT,
		Working:    working,
		Result:     j.Result(),
		EnqueuedAt: enq,
	}
	if err := j.Err(); err != nil {
		info.Error = err.Error()
	}
	info.DeadlineSeconds = j.Spec.DeadlineSeconds
	info.CancelRequested = j.CancelRequested()
	if wait, _ := j.QueueWait(); wait > 0 {
		info.QueueWaitSeconds = wait.Seconds()
	}
	if !started.IsZero() {
		info.StartedAt = &started
	}
	if !finished.IsZero() {
		info.FinishedAt = &finished
	}
	return info
}

// maxSpecBytes bounds the POST /api/v1/jobs body. The largest legitimate
// spec (explicit positions and per-node seeds for a big deployment plus a
// chaos plan) stays far under this; anything bigger is a client bug or
// abuse and is cut off at 413 before it can balloon server memory.
const maxSpecBytes = 8 << 20

// retryReject writes a rejection that carries a Retry-After hint.
func retryReject(w http.ResponseWriter, status int, code string, after time.Duration, err error) {
	secs := int(after.Round(time.Second).Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, api.ErrorResponse{
		Error:             err.Error(),
		Code:              code,
		RetryAfterSeconds: secs,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobqueue.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "job spec exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	job, outcome, err := s.pool.Submit(&spec)
	if err != nil {
		var full *jobqueue.QueueFullError
		if errors.As(err, &full) {
			retryReject(w, http.StatusTooManyRequests, api.CodeQueueFull, full.RetryAfter, full)
			return
		}
		var infeasible *jobqueue.DeadlineInfeasibleError
		if errors.As(err, &infeasible) {
			// Deadline-aware admission: the queue-wait estimate says the
			// job would blow its budget before starting. Same shape as
			// queue-full — 429 plus a backoff hint — with a distinct code
			// so clients can loosen the deadline instead of just waiting.
			retryReject(w, http.StatusTooManyRequests, api.CodeDeadlineInfeasible, infeasible.RetryAfter, infeasible)
			return
		}
		var persist *jobqueue.PersistError
		if errors.As(err, &persist) {
			// The pool rolled the admission back: accepting the job would
			// promise crash recovery the disk cannot deliver. 503 tells
			// the client the rejection is the server's condition, not the
			// request's, and that a retry may succeed (transient ENOSPC).
			retryReject(w, http.StatusServiceUnavailable, api.CodePersistFailed, 5*time.Second, persist)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	if outcome == jobqueue.OutcomeCached {
		status = http.StatusOK
	}
	w.Header().Set("Location", "/api/v1/jobs/"+job.ID)
	writeJSON(w, status, api.SubmitResponse{Outcome: outcome, Job: jobInfo(job)})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.pool.Jobs()
	resp := api.JobListResponse{Jobs: make([]api.JobInfo, 0, len(jobs))}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, jobInfo(j))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.pool.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, jobInfo(job))
}

// handleCancel requests cancellation of a job. Cancellation is
// asynchronous and idempotent: 202 means this call initiated a stop (the
// job reaches cancelled/deadline_exceeded when the worker acknowledges;
// queued jobs are already terminal in the response), 200 means there was
// nothing left to do — the job is terminal or a stop is already in
// flight. Either way the body carries the job's current view.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, found, requested := s.pool.Cancel(id)
	if !found {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	status := http.StatusOK
	if requested {
		status = http.StatusAccepted
	}
	writeJSON(w, status, api.CancelResponse{Requested: requested, Job: jobInfo(job)})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok := s.pool.CachedResult(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for key %q", key)
		return
	}
	writeJSON(w, http.StatusOK, api.ResultResponse{Key: key, Result: res})
}

// handleEvents streams a job's lifecycle as Server-Sent Events: one
// "event: <type>" / "data: <json>" pair per jobqueue.Event, ending when
// the job reaches a terminal state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.pool.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// The stream outlives the per-request write budget by design, so it
	// manages its own deadline: pushed forward before every write, with
	// periodic keepalive comments so an idle stream both stays inside the
	// deadline and detects a dead client (the write fails once the peer's
	// buffers fill).
	rc := http.NewResponseController(w)
	extend := func() { _ = rc.SetWriteDeadline(time.Now().Add(writeBudget)) }
	keepalive := time.NewTicker(10 * time.Second)
	defer keepalive.Stop()

	events, cancel := job.Subscribe()
	defer cancel()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-keepalive.C:
			extend()
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			extend()
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	stats := s.pool.Stats()
	writeJSON(w, http.StatusOK, api.HealthResponse{
		Status:          "ok",
		Build:           buildinfo.Read(),
		UptimeSeconds:   time.Since(s.started).Seconds(),
		QueueDepth:      stats.QueueDepth,
		InFlight:        stats.InFlight,
		Workers:         s.workers,
		Goroutines:      runtime.NumGoroutine(),
		JobsRecovered:   stats.Counters["jobs_recovered"],
		JobsQuarantined: stats.Counters["jobs_quarantined"],
	})
}

// handleMetrics renders the pool's gauges and counters in the
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	stats := s.pool.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE peas_queue_depth gauge\npeas_queue_depth %d\n", stats.QueueDepth)
	fmt.Fprintf(w, "# TYPE peas_inflight gauge\npeas_inflight %d\n", stats.InFlight)
	fmt.Fprintf(w, "# TYPE peas_cache_entries gauge\npeas_cache_entries %d\n", stats.CacheEntries)
	fmt.Fprintf(w, "# TYPE peas_job_wall_seconds_total counter\npeas_job_wall_seconds_total %g\n", stats.WallSecondsTotal)
	// The shared counter set (jobs, cache, runs, engine events, heap
	// allocs, fault classes) in stable name order.
	names := make([]string, 0, len(stats.Counters))
	for name := range stats.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE peas_%s counter\npeas_%s %d\n", metricName(name), metricName(name), stats.Counters[name])
	}
	// Derived: allocations per engine event across all completed runs.
	if ev := stats.Counters["engine_events"]; ev > 0 {
		fmt.Fprintf(w, "# TYPE peas_allocs_per_event gauge\npeas_allocs_per_event %g\n",
			float64(stats.Counters["heap_allocs"])/float64(ev))
	}
	// Latency histograms: queue wait (admission to dequeue) and run
	// duration (worker wall time), the two halves of server-side job
	// latency the load-generation harness gates on.
	writeHistogram(w, "peas_queue_wait_seconds", s.pool.QueueWait().Snapshot())
	writeHistogram(w, "peas_run_duration_seconds", s.pool.RunDuration().Snapshot())
}

// writeHistogram renders one snapshot in the Prometheus text exposition
// format: cumulative bucket counts over the histogram's non-empty
// log-linear bucket bounds, plus sum and count.
func writeHistogram(w io.Writer, name string, snap metrics.HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for _, b := range snap.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b.UpperBound, 'g', 6, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, snap.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
}

// metricName sanitizes a counter name (which may be a chaos fault class
// like "fail-stop") into a Prometheus identifier.
func metricName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
