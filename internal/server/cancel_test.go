package server_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"peas/internal/client"
	"peas/internal/experiment"
	"peas/internal/jobqueue"
	"peas/internal/server"
)

// slowRun wraps experiment.Run, stretching wall time (~2ms per coverage
// sample) so wall-clock actions — cancels, disconnects — reliably land
// mid-run instead of racing a microsecond-fast simulation.
func slowRun(rc experiment.RunConfig) (*experiment.RunStats, error) {
	orig := rc.OnSample
	rc.OnSample = func(simT float64, working int, cov []float64) {
		if orig != nil {
			orig(simT, working, cov)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return experiment.Run(rc)
}

// TestEndToEndCancelRunning drives DELETE /api/v1/jobs/{id} against a
// job caught mid-run: the response acknowledges the request, the job
// reaches the cancelled terminal state, and the SSE stream ends with a
// cancelled event.
func TestEndToEndCancelRunning(t *testing.T) {
	dir := t.TempDir()
	c, _, _ := startService(t, jobqueue.Config{
		Workers: 1, QueueDepth: 8, StateDir: dir, CheckpointEvery: 200,
		Run: slowRun,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := testSpec(501)
	spec.Horizon = 2000
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Job.ID

	// Wait until the run is demonstrably in flight (progress observed).
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == jobqueue.StateRunning && info.SimT > 0 {
			break
		}
		if info.State.Terminal() {
			t.Fatalf("job went terminal (%s) before the cancel could land", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cr, err := c.Cancel(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Requested {
		t.Error("first cancel of a running job should report requested=true")
	}
	if !cr.Job.CancelRequested {
		t.Error("JobInfo should reflect the pending cancel request")
	}

	info, err := c.Wait(ctx, id)
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("Wait = %v, want a cancellation error", err)
	}
	if info.State != jobqueue.StateCancelled {
		t.Fatalf("terminal state = %s, want cancelled", info.State)
	}

	// A second cancel is an idempotent no-op.
	cr2, err := c.Cancel(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if cr2.Requested {
		t.Error("cancel of a terminal job should report requested=false")
	}

	// The SSE stream of a terminal job replays the cancelled event.
	var final jobqueue.Event
	if err := c.Events(ctx, id, func(ev jobqueue.Event) bool {
		final = ev
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if final.Type != jobqueue.EventCancelled {
		t.Errorf("final SSE event = %s, want cancelled", final.Type)
	}

	// Unknown IDs 404.
	var apiErr *client.APIError
	if _, err := c.Cancel(ctx, "j-999999"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("cancel of unknown job = %v, want 404", err)
	}
}

// TestEndToEndDeadlineJob submits a job whose deadline expires mid-run
// and checks the wire view: deadline_exceeded state, the deadline echoed
// in JobInfo, and the deadline counter in /metrics.
func TestEndToEndDeadlineJob(t *testing.T) {
	dir := t.TempDir()
	c, _, _ := startService(t, jobqueue.Config{
		Workers: 1, QueueDepth: 8, StateDir: dir, CheckpointEvery: 200,
		WatchdogInterval: 10 * time.Millisecond,
		Run:              slowRun,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := testSpec(511)
	spec.Horizon = 2000
	spec.DeadlineSeconds = 0.05
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.DeadlineSeconds != 0.05 {
		t.Errorf("JobInfo.DeadlineSeconds = %v, want 0.05", resp.Job.DeadlineSeconds)
	}

	info, err := c.Wait(ctx, resp.Job.ID)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("Wait = %v, want a deadline error", err)
	}
	if info.State != jobqueue.StateDeadline {
		t.Fatalf("terminal state = %s, want deadline_exceeded", info.State)
	}

	metricsText, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metricsText, "peas_jobs_deadline_exceeded 1") {
		t.Error("metrics exposition missing peas_jobs_deadline_exceeded")
	}
}

// TestEndToEndDeadlineInfeasible429 primes the queue-wait histogram and
// a backlog so deadline-aware admission fast-rejects, and checks the
// client sees a retryable 429 with the deadline_infeasible code.
func TestEndToEndDeadlineInfeasible429(t *testing.T) {
	gate := make(chan struct{})
	c, _, pool := startService(t, jobqueue.Config{
		Workers: 1, QueueDepth: 8,
		BeforeRun: func(*jobqueue.Job) { <-gate },
	})
	defer close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One job holds the worker, one sits queued, and the histogram says
	// the median queue wait is 10s.
	if _, err := c.Submit(ctx, testSpec(521)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, testSpec(522)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		pool.QueueWait().Observe(10.0)
	}

	doomed := testSpec(523)
	doomed.DeadlineSeconds = 2
	_, err := c.Submit(ctx, doomed)
	var retryable *client.RetryableError
	if !errors.As(err, &retryable) {
		t.Fatalf("Submit = %v, want *RetryableError", err)
	}
	if retryable.Code != "deadline_infeasible" {
		t.Errorf("rejection code = %q, want deadline_infeasible", retryable.Code)
	}
	if retryable.RetryAfter <= 0 {
		t.Error("429 should carry a positive Retry-After")
	}
}

// TestSubmitBodyLimits covers the request hygiene of POST /api/v1/jobs:
// an oversized body is cut off with 413 and a spec with unknown fields
// is rejected with 400 (catching client/server schema drift).
func TestSubmitBodyLimits(t *testing.T) {
	pool := jobqueue.New(jobqueue.Config{Workers: 1, QueueDepth: 4})
	pool.Start()
	ts := httptest.NewServer(server.New(pool, 1))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Shutdown(ctx)
	})

	// 8MiB + slack of valid-prefix JSON: the reader must cut it off.
	huge := append([]byte(`{"network":{"N":40,"Seed":1},"horizon":`), bytes.Repeat([]byte(" "), 9<<20)...)
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}

	// Unknown fields are schema drift, not silently-ignored extras.
	bad := strings.NewReader(`{"network":{"N":40,"Seed":1},"horizon":600,"deadline":5}`)
	resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json", bad)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-field body status = %d, want 400", resp.StatusCode)
	}

	// The real field spelled correctly still works.
	good := strings.NewReader(`{"network":{"N":40,"Seed":1},"horizon":600,"deadlineSeconds":30}`)
	resp, err = http.Post(ts.URL+"/api/v1/jobs", "application/json", good)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("valid body status = %d, want 202", resp.StatusCode)
	}
}

// TestSSEDisconnectReleasesGoroutines proves a client that walks away
// from an event stream does not leak the server's streaming goroutines:
// after the disconnects, the process goroutine count converges back to
// its baseline.
func TestSSEDisconnectReleasesGoroutines(t *testing.T) {
	dir := t.TempDir()
	c, _, _ := startService(t, jobqueue.Config{
		Workers: 1, QueueDepth: 8, StateDir: dir, CheckpointEvery: 200,
		Run: slowRun,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := testSpec(531)
	spec.Horizon = 2000
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	// Open several streams and sever them mid-job.
	const streams = 8
	done := make(chan struct{}, streams)
	for i := 0; i < streams; i++ {
		streamCtx, streamCancel := context.WithCancel(ctx)
		go func() {
			defer func() { done <- struct{}{} }()
			_ = c.Events(streamCtx, resp.Job.ID, func(jobqueue.Event) bool { return true })
		}()
		time.AfterFunc(20*time.Millisecond, streamCancel)
	}
	for i := 0; i < streams; i++ {
		<-done
	}

	// Goroutine teardown is asynchronous (handler unwind, transport
	// close), so poll for convergence instead of asserting instantly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not converge: baseline %d, now %d", baseline, now)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The job itself is unharmed by its spectators vanishing.
	if _, err := c.Wait(ctx, resp.Job.ID); err != nil {
		t.Fatalf("job after SSE disconnects: %v", err)
	}

	// /healthz exposes the goroutine gauge the storm harness watches.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Goroutines <= 0 {
		t.Error("health response missing goroutine count")
	}
}
