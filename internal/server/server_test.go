package server_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"peas/internal/client"
	"peas/internal/durable"
	"peas/internal/experiment"
	"peas/internal/jobqueue"
	"peas/internal/node"
	"peas/internal/server"
)

func testSpec(seed int64) *jobqueue.Spec {
	return &jobqueue.Spec{
		Network:          node.DefaultConfig(40, seed),
		FailuresPer5000s: experiment.BaseFailuresPer5000,
		Horizon:          600,
	}
}

func directHash(t *testing.T, spec *jobqueue.Spec) string {
	t.Helper()
	s := *spec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	stats, err := experiment.Run(s.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	return stats.FinalState.StateHashHex()
}

// startService boots a pool + HTTP server over httptest and returns a
// typed client plus the run counter.
func startService(t *testing.T, cfg jobqueue.Config) (*client.Client, *atomic.Int64, *jobqueue.Pool) {
	t.Helper()
	var runs atomic.Int64
	inner := cfg.Run
	cfg.Run = func(rc experiment.RunConfig) (*experiment.RunStats, error) {
		runs.Add(1)
		if inner != nil {
			return inner(rc)
		}
		return experiment.Run(rc)
	}
	pool := jobqueue.New(cfg)
	pool.Start()
	ts := httptest.NewServer(server.New(pool, cfg.Workers))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Shutdown(ctx)
	})
	return client.New(ts.URL), &runs, pool
}

// TestEndToEndSingleflight is the acceptance test over the wire: N
// concurrent HTTP submissions of one config execute exactly one
// underlying experiment.Run, and every response carries the StateHash
// of a direct in-process run.
func TestEndToEndSingleflight(t *testing.T) {
	spec := testSpec(101)
	want := directHash(t, spec)

	c, runs, _ := startService(t, jobqueue.Config{Workers: 4, QueueDepth: 16})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const submitters = 6
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := *testSpec(101)
			resp, err := c.Submit(ctx, &s)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = resp.Job.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, id := range ids {
		info, err := c.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if info.Result == nil || info.Result.StateHash != want {
			t.Errorf("submission %d: hash mismatch (got %+v, want %s)", i, info.Result, want)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("underlying runs = %d, want exactly 1", got)
	}

	// Resubmission after completion: served from cache with the same
	// hash, zero extra runs, and retrievable via /results/{key}.
	s := *testSpec(101)
	resp, err := c.Submit(ctx, &s)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != jobqueue.OutcomeCached {
		t.Errorf("outcome = %s, want cached", resp.Outcome)
	}
	if resp.Job.Result == nil || resp.Job.Result.StateHash != want {
		t.Error("cached submission lost the hash")
	}
	res, err := c.Result(ctx, resp.Job.Key)
	if err != nil {
		t.Fatalf("results endpoint: %v", err)
	}
	if res.StateHash != want {
		t.Errorf("results endpoint hash = %s, want %s", res.StateHash, want)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cache hit reran: %d", got)
	}

	// Metrics reflect the activity.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"peas_queue_depth", "peas_runs_executed 1", "peas_cache_hits"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestEndToEndBackpressure pins the HTTP admission contract: a full
// queue answers 429 with a Retry-After hint instead of blocking or
// silently dropping.
func TestEndToEndBackpressure(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	c, _, _ := startService(t, jobqueue.Config{
		Workers:    1,
		QueueDepth: 1,
		BeforeRun: func(*jobqueue.Job) {
			once.Do(func() { close(started) })
			<-release
		},
	})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if _, err := c.Submit(ctx, testSpec(201)); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := c.Submit(ctx, testSpec(202)); err != nil {
		t.Fatal(err)
	}

	_, err := c.Submit(ctx, testSpec(203))
	var retryable *client.RetryableError
	if !errors.As(err, &retryable) {
		t.Fatalf("overflow submit: got %v, want RetryableError", err)
	}
	if retryable.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", retryable.RetryAfter)
	}

	// Identical specs still coalesce while the queue is full.
	resp, err := c.Submit(ctx, testSpec(201))
	if err != nil {
		t.Fatalf("coalesce at full queue: %v", err)
	}
	if resp.Outcome != jobqueue.OutcomeCoalesced {
		t.Errorf("outcome = %s, want coalesced", resp.Outcome)
	}
}

// TestEndToEndSSE follows a job's event stream over real HTTP.
func TestEndToEndSSE(t *testing.T) {
	c, _, _ := startService(t, jobqueue.Config{Workers: 1, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	resp, err := c.Submit(ctx, testSpec(301))
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	var final jobqueue.Event
	err = c.Events(ctx, resp.Job.ID, func(ev jobqueue.Event) bool {
		switch ev.Type {
		case jobqueue.EventProgress:
			progress++
		case jobqueue.EventDone, jobqueue.EventFailed:
			final = ev
		}
		return true
	})
	if err != nil {
		t.Fatalf("event stream: %v", err)
	}
	if final.Type != jobqueue.EventDone {
		t.Fatalf("final event = %+v", final)
	}
	if final.Result == nil || final.Result.StateHash == "" {
		t.Error("done event carries no state hash")
	}
	if progress == 0 {
		t.Error("no progress events observed")
	}
}

// TestEndToEndHealthAndErrors covers /healthz and error mapping.
func TestEndToEndHealthAndErrors(t *testing.T) {
	c, _, _ := startService(t, jobqueue.Config{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 {
		t.Errorf("health = %+v", h)
	}
	if h.Build.GoVersion == "" {
		t.Error("health response missing build identity")
	}

	if _, err := c.Job(ctx, "j-999999"); err == nil {
		t.Error("missing job should 404")
	}
	var apiErr *client.APIError
	if _, err := c.Job(ctx, "j-999999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("missing job error = %v", err)
	}

	// Invalid spec -> 400 with the validation message.
	if _, err := c.Submit(ctx, &jobqueue.Spec{}); err == nil ||
		!strings.Contains(err.Error(), "must be positive") {
		t.Errorf("invalid spec error = %v", err)
	}
}

// TestEndToEndSSELateSubscriber attaches to a job's event stream after
// the job has already completed: the subscriber must immediately
// receive the terminal snapshot event (with the result hash) and see
// the stream close, not hang waiting for live events that will never
// come.
func TestEndToEndSSELateSubscriber(t *testing.T) {
	c, _, _ := startService(t, jobqueue.Config{Workers: 2, QueueDepth: 8})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := testSpec(71)
	resp, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, resp.Job.ID); err != nil {
		t.Fatal(err)
	}

	// The job is terminal; only now does the subscriber show up. Bound
	// the whole stream tightly: a correct server answers with the
	// snapshot and closes at once.
	sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
	defer scancel()
	var events []jobqueue.Event
	err = c.Events(sctx, resp.Job.ID, func(ev jobqueue.Event) bool {
		events = append(events, ev)
		return true
	})
	if err != nil {
		t.Fatalf("late subscription did not close cleanly: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("late subscriber saw %d events, want exactly the terminal snapshot", len(events))
	}
	ev := events[0]
	if ev.Type != jobqueue.EventDone {
		t.Fatalf("late subscriber saw %q, want %q", ev.Type, jobqueue.EventDone)
	}
	if ev.Result == nil || ev.Result.StateHash == "" {
		t.Error("terminal snapshot event carries no result hash")
	}

	// Same thing once more — replays must not be one-shot.
	var again []jobqueue.Event
	if err := c.Events(sctx, resp.Job.ID, func(ev jobqueue.Event) bool {
		again = append(again, ev)
		return true
	}); err != nil || len(again) != 1 || again[0].Type != jobqueue.EventDone {
		t.Fatalf("second late subscription: err=%v events=%d", err, len(again))
	}
}

// TestEndToEndPersistFailure503 pins the admission-durability contract
// over the wire: when the state store cannot fsync the spec, the
// submission is rejected as retryable (503 + Retry-After) rather than
// accepted without crash recovery, and once the disk recovers the same
// spec goes through.
func TestEndToEndPersistFailure503(t *testing.T) {
	ffs := durable.NewFaultFS(nil)
	ffs.FailWrites(syscall.ENOSPC)
	c, _, _ := startService(t, jobqueue.Config{
		Workers: 1, QueueDepth: 4, StateDir: t.TempDir(), FS: ffs,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	_, err := c.Submit(ctx, testSpec(201))
	var retryable *client.RetryableError
	if !errors.As(err, &retryable) {
		t.Fatalf("submit under ENOSPC: err = %v, want retryable 503", err)
	}
	if !strings.Contains(retryable.Message, "persist") {
		t.Errorf("error does not name the persistence failure: %q", retryable.Message)
	}
	if retryable.RetryAfter <= 0 {
		t.Errorf("503 carried no Retry-After hint")
	}

	// The disk recovers: SubmitWithRetry (which retries retryable
	// rejections) now lands the job.
	ffs.Reset()
	resp, err := c.SubmitWithRetry(ctx, testSpec(201), client.RetryPolicy{MaxAttempts: 3})
	if err != nil {
		t.Fatalf("submit after disk recovery: %v", err)
	}
	if _, err := c.Wait(ctx, resp.Job.ID); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndHealthQuarantine: a damaged persisted job is surfaced on
// /healthz as a quarantine count while the service reports healthy and
// keeps serving.
func TestEndToEndHealthQuarantine(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "j-000001.spec.json"), []byte("not a durable frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	pool := jobqueue.New(jobqueue.Config{Workers: 1, QueueDepth: 4, StateDir: dir})
	if _, err := pool.Recover(); err != nil {
		t.Fatalf("Recover over damage must not error: %v", err)
	}
	pool.Start()
	ts := httptest.NewServer(server.New(pool, 1))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = pool.Shutdown(ctx)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	h, err := client.New(ts.URL).Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q: quarantined damage must not mark the service unhealthy", h.Status)
	}
	if h.JobsQuarantined != 1 {
		t.Errorf("jobsQuarantined = %d, want 1", h.JobsQuarantined)
	}
	if h.JobsRecovered != 0 {
		t.Errorf("jobsRecovered = %d, want 0", h.JobsRecovered)
	}
}
