package jobqueue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"peas/internal/durable"
	"peas/internal/experiment"
)

// buildDrainState produces a state dir holding one suspended job — a
// real spec file plus a real drain checkpoint, written through the
// production path — and returns the job ID and the StateHash an
// uninterrupted run of the same spec produces.
func buildDrainState(t *testing.T) (dir, id, want string) {
	t.Helper()
	spec := testSpec(71)
	spec.Horizon = 1500
	want = directHash(t, spec)

	dir = t.TempDir()
	release := make(chan struct{})
	started := make(chan struct{})
	pool := New(Config{
		Workers:         1,
		QueueDepth:      4,
		StateDir:        dir,
		CheckpointEvery: 200,
		BeforeRun: func(*Job) {
			close(started)
			<-release
		},
	})
	pool.Start()
	s := *spec
	j, _, err := pool.Submit(&s)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- pool.Shutdown(ctx) }()
	time.Sleep(150 * time.Millisecond)
	close(release)
	if err := <-done; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if st := j.State(); st != StateSuspended {
		t.Fatalf("job state = %s, want suspended", st)
	}
	return dir, j.ID, want
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// recoverInto runs Recover on a fresh, un-started pool over dir and
// returns the pool plus the recovered count. The torn-write sweep calls
// it thousands of times; not starting workers keeps each call cheap.
func recoverInto(t *testing.T, dir string, depth int) (*Pool, int) {
	t.Helper()
	pool := New(Config{Workers: 1, QueueDepth: depth, StateDir: dir, CheckpointEvery: 200})
	n, err := pool.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return pool, n
}

// TestTornWriteSweep is the recovery acceptance sweep: for a persisted
// spec and checkpoint pair, truncate each file at every byte boundary
// and flip a bit at every byte offset; Recover must never return an
// error, and every boot must account for the job exactly once — either
// recovered (healthy or restartable spec) or quarantined (damaged
// spec), with damaged checkpoints quarantined separately and the job
// restarted from its spec.
func TestTornWriteSweep(t *testing.T) {
	srcDir, id, _ := buildDrainState(t)
	specName, ckptName := id+".spec.json", id+".ckpt"
	specData, err := os.ReadFile(filepath.Join(srcDir, specName))
	if err != nil {
		t.Fatal(err)
	}
	ckptData, err := os.ReadFile(filepath.Join(srcDir, ckptName))
	if err != nil {
		t.Fatal(err)
	}

	base := t.TempDir()
	caseNo := 0
	runCase := func(t *testing.T, spec, ckpt []byte, specDamaged bool) {
		t.Helper()
		caseNo++
		dir := filepath.Join(base, fmt.Sprintf("c%06d", caseNo))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, specName), spec, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ckptName), ckpt, 0o644); err != nil {
			t.Fatal(err)
		}
		pool, n := recoverInto(t, dir, 4)
		quarJobs := pool.Counters().Get("jobs_quarantined")
		if specDamaged {
			if n != 0 || quarJobs != 1 {
				t.Fatalf("damaged spec: recovered=%d quarantined=%d, want 0/1", n, quarJobs)
			}
			for _, name := range []string{specName, ckptName} {
				if _, err := os.Stat(filepath.Join(dir, QuarantineDir, name)); err != nil {
					t.Fatalf("damaged spec: %s not quarantined: %v", name, err)
				}
				if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
					t.Fatalf("damaged spec: %s left in state dir", name)
				}
			}
		} else {
			// Spec healthy, checkpoint damaged: the job must still come
			// back (restarting from the spec), the checkpoint set aside.
			if n != 1 || quarJobs != 0 {
				t.Fatalf("damaged ckpt: recovered=%d quarantined=%d, want 1/0", n, quarJobs)
			}
			if got := pool.Counters().Get("checkpoints_quarantined"); got != 1 {
				t.Fatalf("damaged ckpt: checkpoints_quarantined = %d, want 1", got)
			}
			if _, err := os.Stat(filepath.Join(dir, QuarantineDir, ckptName)); err != nil {
				t.Fatalf("damaged ckpt not quarantined: %v", err)
			}
			j, ok := pool.Get(id)
			if !ok {
				t.Fatal("damaged ckpt: job not tracked after recovery")
			}
			j.mu.Lock()
			resume := j.resume
			j.mu.Unlock()
			if resume != nil {
				t.Fatal("damaged ckpt: job carries a resume snapshot from a corrupt checkpoint")
			}
		}
	}

	t.Run("spec-truncations", func(t *testing.T) {
		for _, n := range sweepOffsets(len(specData)) {
			runCase(t, specData[:n], ckptData, true)
		}
	})
	t.Run("spec-bitflips", func(t *testing.T) {
		for _, off := range sweepOffsets(len(specData)) {
			mutated := append([]byte(nil), specData...)
			mutated[off] ^= 0x10
			runCase(t, mutated, ckptData, true)
		}
	})
	t.Run("ckpt-truncations", func(t *testing.T) {
		for _, n := range sweepOffsets(len(ckptData)) {
			runCase(t, specData, ckptData[:n], false)
		}
	})
	t.Run("ckpt-bitflips", func(t *testing.T) {
		// The durable frame's CRC catches any flip before the snapshot
		// codec ever parses; sweep every offset so the whole file —
		// header, codec magic, payload, trailer — is covered.
		for _, off := range sweepOffsets(len(ckptData)) {
			mutated := append([]byte(nil), ckptData...)
			mutated[off] ^= 0x10
			runCase(t, specData, mutated, false)
		}
	})
}

// sweepOffsets enumerates every offset in [0, n) — the full byte-level
// sweep the durability claim is stated over. Under -short the interior
// is strided (keeping the first 64 and last 32 bytes dense, which
// crosses every frame-header and codec boundary) so race-enabled CI
// stays fast without giving up edge coverage.
func sweepOffsets(n int) []int {
	offs := make([]int, 0, n)
	if !testing.Short() {
		for i := 0; i < n; i++ {
			offs = append(offs, i)
		}
		return offs
	}
	for i := 0; i < n; i++ {
		if i < 64 || i >= n-32 || i%17 == 0 {
			offs = append(offs, i)
		}
	}
	return offs
}

// TestTornWriteRecoveredRunsFinish closes the loop on the sweep: after
// representative damage, the recovered job actually executes to the
// reference StateHash — a checkpoint loss falls back to a from-scratch
// run with an identical final state (determinism), and the intact pair
// resumes bit-exactly.
func TestTornWriteRecoveredRunsFinish(t *testing.T) {
	srcDir, id, want := buildDrainState(t)
	specName, ckptName := id+".spec.json", id+".ckpt"

	cases := []struct {
		name        string
		damageCkpt  bool
		wantResumed bool
	}{
		{"intact-pair-resumes", false, true},
		{"damaged-ckpt-restarts", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			copyFile(t, filepath.Join(srcDir, specName), filepath.Join(dir, specName))
			copyFile(t, filepath.Join(srcDir, ckptName), filepath.Join(dir, ckptName))
			if tc.damageCkpt {
				data, err := os.ReadFile(filepath.Join(dir, ckptName))
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)/2] ^= 0xFF
				if err := os.WriteFile(filepath.Join(dir, ckptName), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			pool, n := recoverInto(t, dir, 4)
			if n != 1 {
				t.Fatalf("recovered %d jobs, want 1", n)
			}
			pool.Start()
			defer pool.Shutdown(context.Background())
			j, _ := pool.Get(id)
			res := waitResult(t, j)
			if res.Resumed != tc.wantResumed {
				t.Errorf("Resumed = %v, want %v", res.Resumed, tc.wantResumed)
			}
			if res.StateHash != want {
				t.Errorf("hash %s, want %s", res.StateHash, want)
			}
		})
	}
}

// TestRecoverSweepsTmpAndOrphans: torn .tmp files are deleted (they
// hold no committed data by protocol) and a checkpoint without a spec
// is quarantined rather than leaked or parsed.
func TestRecoverSweepsTmpAndOrphans(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"j-000003.spec.json.tmp", "j-000004.ckpt.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "j-000005.ckpt"), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}

	pool, n := recoverInto(t, dir, 4)
	if n != 0 {
		t.Fatalf("recovered %d jobs from garbage, want 0", n)
	}
	if got := pool.Counters().Get("tmp_files_swept"); got != 2 {
		t.Errorf("tmp_files_swept = %d, want 2", got)
	}
	if got := pool.Counters().Get("checkpoints_quarantined"); got != 1 {
		t.Errorf("checkpoints_quarantined = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "j-000005.ckpt")); err != nil {
		t.Errorf("orphan checkpoint not quarantined: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			t.Errorf("file %s left in state dir after sweep", ent.Name())
		}
	}
}

// writeSpecFileRaw persists a spec file exactly as the store would,
// letting tests assemble arbitrary state-dir populations.
func writeSpecFileRaw(t *testing.T, dir, id string, spec *Spec) {
	t.Helper()
	s := *spec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(specFile{ID: id, Key: s.Key(), Spec: &s})
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.WriteFile(durable.OS{}, filepath.Join(dir, id+".spec.json"), data); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverQueueOverflowLeftovers: more persisted jobs than queue
// capacity recover up to the cap; the rest stay on disk and come back
// on the NEXT restart once capacity frees up.
func TestRecoverQueueOverflowLeftovers(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 6; i++ {
		writeSpecFileRaw(t, dir, fmt.Sprintf("j-%06d", i), testSpec(int64(80+i)))
	}

	pool1, n := recoverInto(t, dir, 2)
	if n != 2 {
		t.Fatalf("first boot recovered %d jobs with QueueDepth=2, want 2", n)
	}
	pool1.Start()
	for _, id := range []string{"j-000001", "j-000002"} {
		j, ok := pool1.Get(id)
		if !ok {
			t.Fatalf("job %s not recovered on first boot", id)
		}
		waitResult(t, j)
	}
	if err := pool1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The four overflow jobs were untouched: still on disk, recovered by
	// the next boot.
	pool2, n := recoverInto(t, dir, 8)
	if n != 4 {
		t.Fatalf("second boot recovered %d jobs, want the 4 leftovers", n)
	}
	pool2.Start()
	defer pool2.Shutdown(context.Background())
	for i := 3; i <= 6; i++ {
		j, ok := pool2.Get(fmt.Sprintf("j-%06d", i))
		if !ok {
			t.Fatalf("leftover job j-%06d not recovered on second boot", i)
		}
		waitResult(t, j)
	}
}

// TestRecoverDuplicateKeyCollapse: two persisted jobs with the same
// content key (possible across crashed generations) collapse to one;
// the stale duplicate's files are removed.
func TestRecoverDuplicateKeyCollapse(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(91)
	writeSpecFileRaw(t, dir, "j-000001", spec)
	writeSpecFileRaw(t, dir, "j-000002", spec)
	writeSpecFileRaw(t, dir, "j-000003", testSpec(92))

	pool, n := recoverInto(t, dir, 8)
	if n != 2 {
		t.Fatalf("recovered %d jobs, want 2 (duplicate collapsed)", n)
	}
	if got := pool.Counters().Get("jobs_recovered_dup"); got != 1 {
		t.Errorf("jobs_recovered_dup = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "j-000002.spec.json")); !os.IsNotExist(err) {
		t.Error("stale duplicate's spec file should be removed")
	}
	if _, err := os.Stat(filepath.Join(dir, "j-000001.spec.json")); err != nil {
		t.Errorf("surviving duplicate's spec file missing: %v", err)
	}
}

// TestRecoverAdvancesIDSequence: new submissions after recovery must
// not reuse any ID seen on disk — including quarantined ones, whose
// files live on under their original names.
func TestRecoverAdvancesIDSequence(t *testing.T) {
	dir := t.TempDir()
	writeSpecFileRaw(t, dir, "j-000007", testSpec(95))
	// A damaged high-numbered spec: quarantined, but its ID is burned.
	if err := os.WriteFile(filepath.Join(dir, "j-000042.spec.json"), []byte("wreckage"), 0o644); err != nil {
		t.Fatal(err)
	}

	pool, n := recoverInto(t, dir, 8)
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	pool.Start()
	defer pool.Shutdown(context.Background())

	j, _, err := pool.Submit(testSpec(96))
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j-000043" {
		t.Errorf("post-recovery ID = %s, want j-000043 (sequence past the quarantined j-000042)", j.ID)
	}
}

// TestPersistFailureRejectsAdmission pins the accepted-means-recoverable
// contract: when the spec cannot be fsync'd (ENOSPC), Submit rolls the
// admission back and rejects with *PersistError; once the disk
// recovers, the same spec submits cleanly (nothing leaked in the
// coalescing index or the queue accounting).
func TestPersistFailureRejectsAdmission(t *testing.T) {
	ffs := durable.NewFaultFS(nil)
	ffs.FailWrites(syscall.ENOSPC)
	pool := New(Config{Workers: 1, QueueDepth: 4, StateDir: t.TempDir(), FS: ffs})
	pool.Start()
	defer pool.Shutdown(context.Background())

	spec := testSpec(101)
	_, _, err := pool.Submit(spec)
	var perr *PersistError
	if !errors.As(err, &perr) {
		t.Fatalf("Submit under ENOSPC: err = %v, want *PersistError", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("PersistError should unwrap to ENOSPC, got %v", err)
	}
	stats := pool.Stats()
	if stats.QueueDepth != 0 {
		t.Errorf("queue depth %d after rollback, want 0", stats.QueueDepth)
	}
	if len(pool.Jobs()) != 0 {
		t.Error("rolled-back job still tracked")
	}
	if got := pool.Counters().Get("persist_errors"); got != 1 {
		t.Errorf("persist_errors = %d, want 1", got)
	}

	// Disk recovers: the identical spec must now be accepted as a fresh
	// run, not coalesced onto the failed admission.
	ffs.Reset()
	j, outcome, err := pool.Submit(testSpec(101))
	if err != nil {
		t.Fatalf("resubmission after disk recovery: %v", err)
	}
	if outcome != OutcomeAccepted {
		t.Fatalf("resubmission outcome = %s, want accepted", outcome)
	}
	waitResult(t, j)
}

// TestWorkerPanicIsolation: a panicking job — via the injected
// Spec.Panic fault or a panicking executor — lands in failed with the
// stack in its error, and the pool keeps executing subsequent jobs on
// the same worker.
func TestWorkerPanicIsolation(t *testing.T) {
	dir := t.TempDir()
	pool := New(Config{Workers: 1, QueueDepth: 4, StateDir: dir})
	pool.Start()
	defer pool.Shutdown(context.Background())

	bomb := testSpec(111)
	bomb.Panic = true
	j, _, err := pool.Submit(bomb)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, werr := j.Wait(ctx); werr == nil {
		t.Fatal("panicking job reported success")
	}
	if j.State() != StateFailed {
		t.Fatalf("panicking job state = %s, want failed", j.State())
	}
	jerr := j.Err().Error()
	if !strings.Contains(jerr, "panicked") || !strings.Contains(jerr, "goroutine") {
		t.Errorf("job error missing panic stack: %q", jerr)
	}
	if got := pool.Counters().Get("jobs_panicked"); got != 1 {
		t.Errorf("jobs_panicked = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, j.ID+".spec.json")); !os.IsNotExist(err) {
		t.Error("failed job's spec file should be removed")
	}

	// The single worker survived: a normal job still executes.
	j2, _, err := pool.Submit(testSpec(112))
	if err != nil {
		t.Fatal(err)
	}
	waitResult(t, j2)

	// A panicking executor (simulation bug, not injected fault) is
	// contained the same way.
	pool2 := New(Config{
		Workers:    1,
		QueueDepth: 4,
		Run: func(experiment.RunConfig) (*experiment.RunStats, error) {
			panic("executor bug")
		},
	})
	pool2.Start()
	defer pool2.Shutdown(context.Background())
	j3, _, err := pool2.Submit(testSpec(113))
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := j3.Wait(ctx); werr == nil || !strings.Contains(werr.Error(), "executor bug") {
		t.Fatalf("executor panic not surfaced: %v", werr)
	}
	if got := pool2.Counters().Get("jobs_panicked"); got != 1 {
		t.Errorf("pool2 jobs_panicked = %d, want 1", got)
	}
}

// TestPanicSpecKeyDistinct guards the cache: an injected-panic job must
// never alias the equivalent real run's content key.
func TestPanicSpecKeyDistinct(t *testing.T) {
	a, b := testSpec(121), testSpec(121)
	b.Panic = true
	for _, s := range []*Spec{a, b} {
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Key() == b.Key() {
		t.Fatal("panic spec shares a content key with the real run")
	}
}
