package jobqueue

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"peas/internal/experiment"
)

// waitErr blocks until the job is terminal and returns the error Wait
// reported; it fails the test if the job succeeded instead.
func waitErr(t *testing.T, j *Job) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, err := j.Wait(ctx)
	if err == nil {
		t.Fatalf("job %s finished successfully; expected a terminal error", j.ID)
	}
	return err
}

func TestKeyExcludesDeadlineIncludesHang(t *testing.T) {
	// DeadlineSeconds is a scheduling constraint, not a simulation input:
	// two submissions differing only in deadline mean the same run and
	// must share a content key (coalesce / cache-hit / claim parks).
	plain := testSpec(11)
	bounded := testSpec(11)
	bounded.DeadlineSeconds = 30
	for _, s := range []*Spec{plain, bounded} {
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	if plain.Key() != bounded.Key() {
		t.Error("deadline-differing specs must share a content key")
	}

	// Hang is fault injection that changes the run's outcome, so it must
	// separate keys (a hang probe must never alias a real run's result).
	hang := testSpec(11)
	hang.Hang = true
	if err := hang.Normalize(); err != nil {
		t.Fatal(err)
	}
	if hang.Key() == plain.Key() {
		t.Error("hang probe must not share a key with the real run")
	}

	// Structurally invalid deadlines are rejected at admission.
	for _, bad := range []float64{-1, -0.001} {
		s := testSpec(11)
		s.DeadlineSeconds = bad
		if err := s.Normalize(); err == nil {
			t.Errorf("deadlineSeconds=%v should fail validation", bad)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	pool := New(Config{
		Workers:    1,
		QueueDepth: 4,
		StateDir:   dir,
		BeforeRun:  func(*Job) { <-gate },
	})
	pool.Start()
	defer pool.Shutdown(context.Background())

	// The blocker occupies the only worker, so the victim stays queued.
	blocker, _, err := pool.Submit(testSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	victim, _, err := pool.Submit(testSpec(22))
	if err != nil {
		t.Fatal(err)
	}

	if _, found, requested := pool.Cancel("j-999999"); found || requested {
		t.Error("cancel of an unknown ID should report found=false")
	}
	j, found, requested := pool.Cancel(victim.ID)
	if !found || !requested {
		t.Fatalf("Cancel(%s) = found %v requested %v, want true true", victim.ID, found, requested)
	}

	// A queued job cancels immediately: no worker involvement needed.
	if st := j.State(); st != StateCancelled {
		t.Fatalf("cancelled queued job state = %s, want cancelled", st)
	}
	if !j.CancelRequested() {
		t.Error("CancelRequested should report true after Cancel")
	}
	select {
	case <-j.Context().Done():
		if cause := context.Cause(j.Context()); !strings.Contains(cause.Error(), "cancelled") {
			t.Errorf("lifecycle context cause = %v, want a cancellation", cause)
		}
	default:
		t.Error("lifecycle context not cancelled at terminal transition")
	}
	if err := waitErr(t, j); !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("Wait error = %v, want a cancellation", err)
	}
	// Its persisted spec is gone and the coalescing slot is free: an
	// identical resubmission is a fresh admission, not a coalesce.
	if _, err := os.Stat(filepath.Join(dir, victim.ID+".spec.json")); !os.IsNotExist(err) {
		t.Error("cancelled queued job's spec file should be removed")
	}
	retry, outcome, err := pool.Submit(testSpec(22))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeAccepted {
		t.Fatalf("resubmission after cancel = %s, want accepted", outcome)
	}

	// Cancelling a terminal job is a no-op.
	if _, _, requested := pool.Cancel(victim.ID); requested {
		t.Error("cancel of a terminal job should report requested=false")
	}

	close(gate) // release the blocker; the victim's queue slot is skipped
	waitResult(t, blocker)
	waitResult(t, retry)
	if got := pool.Counters().Get("jobs_cancelled"); got != 1 {
		t.Errorf("jobs_cancelled = %d, want 1", got)
	}
}

// TestCancelRunningParksAndResumes is the flagship cancellation
// property: a run cancelled mid-flight parks a resumable checkpoint
// under its content key, and a later submission of the same spec claims
// it and ends in the bit-identical state of an uninterrupted run.
func TestCancelRunningParksAndResumes(t *testing.T) {
	spec := testSpec(51)
	spec.Horizon = 2000
	want := directHash(t, spec)

	dir := t.TempDir()
	var target atomic.Value // job ID to cancel mid-run ("" disarms)
	target.Store("")
	gate := make(chan struct{}, 4)
	var pool *Pool
	pool = New(Config{
		Workers:         1,
		QueueDepth:      4,
		StateDir:        dir,
		CheckpointEvery: 200,
		BeforeRun:       func(*Job) { <-gate },
		// The whole simulation runs in milliseconds of wall time, so a
		// wall-clock controller cannot reliably land a cancel inside it;
		// instead Cancel is issued from a coverage-sample callback once
		// the run passes 600 simulated seconds — the same API call an
		// external client would make, at a deterministic point.
		Run: func(rc experiment.RunConfig) (*experiment.RunStats, error) {
			orig := rc.OnSample
			rc.OnSample = func(simT float64, working int, cov []float64) {
				if orig != nil {
					orig(simT, working, cov)
				}
				if id, _ := target.Load().(string); id != "" && simT >= 600 {
					pool.Cancel(id)
				}
			}
			return experiment.Run(rc)
		},
	})
	pool.Start()
	defer pool.Shutdown(context.Background())

	s1 := *spec
	j1, _, err := pool.Submit(&s1)
	if err != nil {
		t.Fatal(err)
	}
	target.Store(j1.ID)
	gate <- struct{}{}

	if err := waitErr(t, j1); !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("Wait error = %v, want a cancellation", err)
	}
	if st := j1.State(); st != StateCancelled {
		t.Fatalf("mid-run cancelled job state = %s, want cancelled", st)
	}
	c := pool.Counters()
	if got := c.Get("jobs_parked"); got != 1 {
		t.Fatalf("jobs_parked = %d, want 1", got)
	}
	// The parked pair lives on disk under the cancelled job's ID.
	if _, err := os.Stat(filepath.Join(dir, j1.ID+".ckpt")); err != nil {
		t.Fatalf("parked checkpoint not on disk: %v", err)
	}

	// Resubmission of the identical spec claims the parked snapshot and
	// resumes; determinism makes the splice invisible in the end state.
	target.Store("")
	s2 := *spec
	j2, outcome, err := pool.Submit(&s2)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeAccepted {
		t.Fatalf("resubmission outcome = %s, want accepted", outcome)
	}
	gate <- struct{}{}
	res := waitResult(t, j2)
	if !res.Resumed {
		t.Error("claimed-park run should report Resumed")
	}
	if res.StateHash != want {
		t.Errorf("resumed hash %s != direct hash %s (cancel broke determinism)", res.StateHash, want)
	}
	if got := c.Get("parked_resumed"); got != 1 {
		t.Errorf("parked_resumed = %d, want 1", got)
	}
	// The claim re-homed the snapshot: the cancelled job's files are gone.
	if _, err := os.Stat(filepath.Join(dir, j1.ID+".spec.json")); !os.IsNotExist(err) {
		t.Error("claimed park should remove the cancelled job's spec file")
	}
}

// TestParkedCheckpointSurvivesRestart proves the crash-durability of a
// park: after a restart, Recover loads the cancelled run's checkpoint
// into the claim index — never the run queue — and a resubmission still
// resumes bit-exactly.
func TestParkedCheckpointSurvivesRestart(t *testing.T) {
	spec := testSpec(61)
	spec.Horizon = 2000
	want := directHash(t, spec)

	dir := t.TempDir()
	var target atomic.Value
	target.Store("")
	gate := make(chan struct{}, 2)
	var pool1 *Pool
	pool1 = New(Config{
		Workers:         1,
		QueueDepth:      4,
		StateDir:        dir,
		CheckpointEvery: 200,
		BeforeRun:       func(*Job) { <-gate },
		Run: func(rc experiment.RunConfig) (*experiment.RunStats, error) {
			orig := rc.OnSample
			rc.OnSample = func(simT float64, working int, cov []float64) {
				if orig != nil {
					orig(simT, working, cov)
				}
				if id, _ := target.Load().(string); id != "" && simT >= 600 {
					pool1.Cancel(id)
				}
			}
			return experiment.Run(rc)
		},
	})
	pool1.Start()

	s1 := *spec
	j1, _, err := pool1.Submit(&s1)
	if err != nil {
		t.Fatal(err)
	}
	target.Store(j1.ID)
	gate <- struct{}{}
	waitErr(t, j1)
	if st := j1.State(); st != StateCancelled {
		t.Fatalf("job state = %s, want cancelled", st)
	}
	if err := pool1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart. The parked pair must come back as claimable — not as a
	// resurrected runnable job (a cancelled job must stay cancelled).
	pool2 := New(Config{Workers: 1, QueueDepth: 4, StateDir: dir, CheckpointEvery: 200})
	n, err := pool2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Recover re-enqueued %d jobs; parked state must not resurrect", n)
	}
	if got := pool2.Counters().Get("jobs_parked_recovered"); got != 1 {
		t.Fatalf("jobs_parked_recovered = %d, want 1", got)
	}
	pool2.Start()
	defer pool2.Shutdown(context.Background())

	s2 := *spec
	j2, outcome, err := pool2.Submit(&s2)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeAccepted {
		t.Fatalf("post-restart resubmission outcome = %s, want accepted", outcome)
	}
	res := waitResult(t, j2)
	if !res.Resumed {
		t.Error("post-restart claim should report Resumed")
	}
	if res.StateHash != want {
		t.Errorf("post-restart resumed hash %s != direct hash %s", res.StateHash, want)
	}
}

func TestDeadlineExpiresQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	pool := New(Config{
		Workers:          1,
		QueueDepth:       4,
		WatchdogInterval: 5 * time.Millisecond,
		BeforeRun:        func(*Job) { <-gate },
	})
	pool.Start()
	defer pool.Shutdown(context.Background())

	blocker, _, err := pool.Submit(testSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(32)
	spec.DeadlineSeconds = 0.03
	j, _, err := pool.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The budget expires while the job is still queued behind the
	// blocker; the watchdog kills it without any worker involvement.
	if err := waitErr(t, j); !strings.Contains(err.Error(), "deadline") {
		t.Errorf("Wait error = %v, want a deadline expiry", err)
	}
	if st := j.State(); st != StateDeadline {
		t.Fatalf("expired queued job state = %s, want deadline_exceeded", st)
	}
	close(gate)
	waitResult(t, blocker)
	if got := pool.Counters().Get("jobs_deadline_exceeded"); got != 1 {
		t.Errorf("jobs_deadline_exceeded = %d, want 1", got)
	}
}

// TestDeadlineKillsRunningJob covers the running half of deadline
// enforcement: the watchdog preempts the run mid-flight, the job lands
// in deadline_exceeded with a parked checkpoint, and a deadline-free
// resubmission (same content key — deadlines are not part of it)
// resumes the work bit-exactly.
func TestDeadlineKillsRunningJob(t *testing.T) {
	spec := testSpec(71)
	spec.Horizon = 2000
	want := directHash(t, spec)

	dir := t.TempDir()
	pool := New(Config{
		Workers:          1,
		QueueDepth:       4,
		StateDir:         dir,
		CheckpointEvery:  200,
		WatchdogInterval: 10 * time.Millisecond,
		// Stretch the run's wall time (~2ms per 25-simulated-second
		// sample, 80 samples to the horizon) so a 50ms deadline reliably
		// lands mid-run instead of racing completion.
		Run: func(rc experiment.RunConfig) (*experiment.RunStats, error) {
			orig := rc.OnSample
			rc.OnSample = func(simT float64, working int, cov []float64) {
				if orig != nil {
					orig(simT, working, cov)
				}
				time.Sleep(2 * time.Millisecond)
			}
			return experiment.Run(rc)
		},
	})
	pool.Start()
	defer pool.Shutdown(context.Background())

	s1 := *spec
	s1.DeadlineSeconds = 0.05
	j1, _, err := pool.Submit(&s1)
	if err != nil {
		t.Fatal(err)
	}
	if err := waitErr(t, j1); !strings.Contains(err.Error(), "deadline") {
		t.Errorf("Wait error = %v, want a deadline expiry", err)
	}
	if st := j1.State(); st != StateDeadline {
		t.Fatalf("deadline-killed running job state = %s, want deadline_exceeded", st)
	}
	c := pool.Counters()
	if got := c.Get("jobs_deadline_exceeded"); got != 1 {
		t.Errorf("jobs_deadline_exceeded = %d, want 1", got)
	}
	if got := c.Get("jobs_parked"); got != 1 {
		t.Fatalf("jobs_parked = %d, want 1", got)
	}

	s2 := *spec // no deadline this time; same key either way
	j2, outcome, err := pool.Submit(&s2)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeAccepted {
		t.Fatalf("resubmission outcome = %s, want accepted", outcome)
	}
	res := waitResult(t, j2)
	if !res.Resumed {
		t.Error("claimed-park run should report Resumed")
	}
	if res.StateHash != want {
		t.Errorf("resumed hash %s != direct hash %s (deadline kill broke determinism)", res.StateHash, want)
	}
}

func TestWatchdogPreemptsHungJob(t *testing.T) {
	pool := New(Config{
		Workers:          1,
		QueueDepth:       4,
		StallWindow:      40 * time.Millisecond,
		WatchdogInterval: 5 * time.Millisecond,
	})
	pool.Start()
	defer pool.Shutdown(context.Background())

	spec := testSpec(81)
	spec.Hang = true
	j, _, err := pool.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The hang probe occupies its worker making no event progress; the
	// stall detector must notice the frozen heartbeat and preempt it.
	if err := waitErr(t, j); !strings.Contains(err.Error(), "watchdog") {
		t.Errorf("Wait error = %v, want a watchdog preemption", err)
	}
	if st := j.State(); st != StateFailed {
		t.Fatalf("hung job state = %s, want failed", st)
	}
	c := pool.Counters()
	if got := c.Get("watchdog_stalls"); got != 1 {
		t.Errorf("watchdog_stalls = %d, want 1", got)
	}
	if got := c.Get("watchdog_preemptions"); got != 1 {
		t.Errorf("watchdog_preemptions = %d, want 1", got)
	}
	// The worker slot was reclaimed: a normal job runs to completion.
	after, _, err := pool.Submit(testSpec(82))
	if err != nil {
		t.Fatal(err)
	}
	waitResult(t, after)
}

func TestDeadlineInfeasibleFastReject(t *testing.T) {
	pool := New(Config{Workers: 1, QueueDepth: 8})
	// Deliberately not started: the backlog stays queued so admission
	// sees queued > 0, and the watchdog cannot interfere.
	if _, _, err := pool.Submit(testSpec(41)); err != nil {
		t.Fatal(err)
	}
	// Prime the queue-wait histogram past its minimum sample count with
	// a 10s median: any deadline under that is hopeless.
	for i := 0; i < 8; i++ {
		pool.queueWait.Observe(10.0)
	}

	doomed := testSpec(42)
	doomed.DeadlineSeconds = 2
	_, _, err := pool.Submit(doomed)
	var dl *DeadlineInfeasibleError
	if !errors.As(err, &dl) {
		t.Fatalf("Submit = %v, want *DeadlineInfeasibleError", err)
	}
	if dl.EstimatedWait < 9*time.Second {
		t.Errorf("EstimatedWait = %s, want ~10s from the primed histogram", dl.EstimatedWait)
	}
	if dl.RetryAfter <= 0 {
		t.Error("RetryAfter should carry a positive backoff hint")
	}
	if got := pool.Counters().Get("deadline_rejected"); got != 1 {
		t.Errorf("deadline_rejected = %d, want 1", got)
	}

	// A generous deadline clears the same estimate and is admitted.
	generous := testSpec(43)
	generous.DeadlineSeconds = 60
	if _, outcome, err := pool.Submit(generous); err != nil || outcome != OutcomeAccepted {
		t.Errorf("generous deadline: outcome %s err %v, want accepted", outcome, err)
	}
	// No deadline means no constraint to check.
	if _, outcome, err := pool.Submit(testSpec(44)); err != nil || outcome != OutcomeAccepted {
		t.Errorf("no deadline: outcome %s err %v, want accepted", outcome, err)
	}
}

// TestDeadlineFeasibleWhenIdle pins the cold-start guard: with no
// backlog, any deadline is feasible regardless of the wait history — a
// worker reaches the job next.
func TestDeadlineFeasibleWhenIdle(t *testing.T) {
	pool := New(Config{Workers: 1, QueueDepth: 8})
	for i := 0; i < 8; i++ {
		pool.queueWait.Observe(10.0)
	}
	spec := testSpec(45)
	spec.DeadlineSeconds = 0.5
	if _, outcome, err := pool.Submit(spec); err != nil || outcome != OutcomeAccepted {
		t.Errorf("idle-queue deadline submission: outcome %s err %v, want accepted", outcome, err)
	}
}
