package jobqueue

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"peas/internal/checkpoint"
	"peas/internal/durable"
	"peas/internal/experiment"
	"peas/internal/metrics"
	"peas/internal/node"
	"peas/internal/oracle"
	"peas/internal/perf"
	"peas/internal/sim"
)

// RunStats and DeploymentSweepResult are re-exported so service wire
// types do not force every client onto internal/experiment directly.
type (
	RunStats              = experiment.RunStats
	DeploymentSweepResult = experiment.DeploymentSweepResult
)

// RunFunc executes one simulation. The pool defaults to experiment.Run;
// tests substitute instrumented wrappers (e.g. to count underlying
// executions for the singleflight guarantee).
type RunFunc func(cfg experiment.RunConfig) (*experiment.RunStats, error)

// Config configures a Pool.
type Config struct {
	// Workers bounds concurrent runs (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (0 = 64).
	// When the queue is full Submit fails fast with *QueueFullError.
	QueueDepth int
	// CacheCap bounds the result cache (0 = 1024); the oldest entry is
	// evicted first.
	CacheCap int
	// StateDir, when non-empty, enables persistence: specs are written
	// at admission and drain checkpoints at shutdown, so Recover can
	// resume interrupted work after a restart.
	StateDir string
	// CheckpointEvery is the drain-checkpoint cadence in simulated
	// seconds (0 = 250). Only meaningful with StateDir.
	CheckpointEvery float64
	// FS substitutes the filesystem the state store writes through
	// (nil = the real one). Tests inject a durable.FaultFS to exercise
	// ENOSPC, torn writes and crash points; peas-serve injects a slowed
	// FS under -durable-delay so the crash-soak harness can land SIGKILLs
	// inside write windows.
	FS durable.FS
	// Run substitutes the simulation executor (nil = experiment.Run).
	Run RunFunc
	// Counters receives the pool's operational counters; one fresh set
	// is allocated when nil. It is shared across all workers, which is
	// safe because metrics.Counters synchronizes internally.
	Counters *metrics.Counters
	// BeforeRun, when non-nil, runs on the worker goroutine after a job
	// is dequeued and before its simulation starts. Tests use it to
	// hold workers at a barrier.
	BeforeRun func(j *Job)
	// StallWindow enables watchdog stall detection: a running supervised
	// job whose engine heartbeat does not advance for this long is
	// preempted into the suspended state (0 disables stall detection;
	// deadline enforcement is always on). Sweep jobs aggregate many runs
	// without a single engine heartbeat and are exempt.
	StallWindow time.Duration
	// WatchdogInterval overrides the supervision scan cadence (0 = auto:
	// 100ms, or StallWindow/4 when that is shorter, floored at 10ms).
	WatchdogInterval time.Duration
}

// QueueFullError is the admission-control rejection: the queue is at
// capacity and the caller should retry after the suggested delay. The
// HTTP layer maps it to 429 with a Retry-After header.
type QueueFullError struct {
	// Depth is the queue capacity that was exhausted.
	Depth int
	// RetryAfter is the suggested backoff, derived from the observed
	// mean job wall time and the worker count.
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("jobqueue: queue full (%d queued); retry after %s", e.Depth, e.RetryAfter)
}

// ErrShuttingDown rejects submissions during a drain.
var errShuttingDown = fmt.Errorf("jobqueue: shutting down")

// PersistError is the admission-time durability rejection: the pool
// could not fsync the job's spec to the state store, so accepting the
// job would promise a recovery guarantee it cannot keep. The submission
// is rolled back and the caller should retry once the disk recovers
// (the HTTP layer maps it to 503 with a Retry-After header). Unwrap
// exposes the underlying disk error (e.g. ENOSPC).
type PersistError struct {
	Err error
}

func (e *PersistError) Error() string {
	return fmt.Sprintf("jobqueue: cannot persist job spec: %v", e.Err)
}

func (e *PersistError) Unwrap() error { return e.Err }

// DeadlineInfeasibleError is the deadline-aware admission rejection: the
// observed queue-wait distribution says the job would blow its
// DeadlineSeconds budget before a worker even picks it up, so admitting
// it would only burn a queue slot on doomed work. The HTTP layer maps it
// to 429 with a Retry-After header, like QueueFullError.
type DeadlineInfeasibleError struct {
	// DeadlineSeconds is the budget the submission carried.
	DeadlineSeconds float64
	// EstimatedWait is the queue-wait estimate that exceeded it.
	EstimatedWait time.Duration
	// RetryAfter is the suggested backoff.
	RetryAfter time.Duration
}

func (e *DeadlineInfeasibleError) Error() string {
	return fmt.Sprintf("jobqueue: %gs deadline infeasible (estimated queue wait %s); retry after %s",
		e.DeadlineSeconds, e.EstimatedWait, e.RetryAfter)
}

// Outcome reports how a submission was satisfied.
type Outcome string

const (
	// OutcomeAccepted: a new underlying run was queued.
	OutcomeAccepted Outcome = "accepted"
	// OutcomeCoalesced: an identical run is already queued or running;
	// the submission attached to it (same job ID).
	OutcomeCoalesced Outcome = "coalesced"
	// OutcomeCached: the result was served from the content-addressed
	// cache; the returned job is already done.
	OutcomeCached Outcome = "cached"
)

// Stats is a point-in-time view of the pool for /metrics.
type Stats struct {
	QueueDepth       int
	InFlight         int
	CacheEntries     int
	WallSecondsTotal float64
	Counters         map[string]uint64
}

// Pool is the worker pool plus queue, coalescing index and result cache.
type Pool struct {
	cfg      Config
	run      RunFunc
	counters *metrics.Counters

	// queueWait observes admission-to-dequeue delay per executed job;
	// runDur observes worker wall time per run. Both are histograms so
	// the service can report tail latency (p99), not just totals.
	queueWait *metrics.Histogram
	runDur    *metrics.Histogram

	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup

	// drainStop asks running jobs to stop at their next cooperative
	// boundary (checkpoint capture or coverage sample).
	drainStop atomic.Bool

	mu        sync.Mutex
	accepting bool
	seq       int
	jobs      map[string]*Job
	order     []string        // job IDs in admission order
	inflight  map[string]*Job // spec key -> queued/running job
	cache     map[string]*Result
	cacheSeq  []string // cache keys in insertion order, for eviction
	queued    int
	running   int
	wallTotal float64

	// parked holds resumable checkpoints left by cancelled/deadline-
	// killed runs, indexed by content key: a later submission of the
	// same spec claims the snapshot and continues where the preempted
	// run stopped, bit-exactly. Bounded like the cache (CacheCap, FIFO).
	parked    map[string]*parkedEntry
	parkedSeq []string
}

// parkedEntry is one preempted run's leftover: the snapshot plus the job
// ID its on-disk spec/checkpoint files are filed under.
type parkedEntry struct {
	id   string
	snap *checkpoint.Snapshot
}

// New builds a pool. Call Start to launch the workers.
func New(cfg Config) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = 1024
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 250
	}
	run := cfg.Run
	if run == nil {
		run = experiment.Run
	}
	counters := cfg.Counters
	if counters == nil {
		counters = metrics.NewCounters()
	}
	return &Pool{
		cfg:       cfg,
		run:       run,
		counters:  counters,
		queueWait: metrics.NewHistogram(),
		runDur:    metrics.NewHistogram(),
		queue:     make(chan *Job, cfg.QueueDepth),
		quit:      make(chan struct{}),
		accepting: true,
		jobs:      make(map[string]*Job),
		inflight:  make(map[string]*Job),
		cache:     make(map[string]*Result),
		parked:    make(map[string]*parkedEntry),
	}
}

// Start launches the worker goroutines and the watchdog.
func (p *Pool) Start() {
	for i := 0; i < p.cfg.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	p.wg.Add(1)
	go p.watchdog()
}

// Counters exposes the shared operational counter set.
func (p *Pool) Counters() *metrics.Counters { return p.counters }

// QueueWait exposes the queue-wait histogram: seconds between a job's
// admission and a worker dequeuing it. Cached submissions never queue
// and are not observed.
func (p *Pool) QueueWait() *metrics.Histogram { return p.queueWait }

// RunDuration exposes the run-duration histogram: worker wall seconds
// per executed job (including suspended and failed runs).
func (p *Pool) RunDuration() *metrics.Histogram { return p.runDur }

// Submit admits a job. The spec is normalized in place; invalid specs
// fail immediately. Identical in-flight submissions coalesce onto the
// existing job, completed ones are served from the cache, and a full
// queue rejects with *QueueFullError.
func (p *Pool) Submit(spec *Spec) (*Job, Outcome, error) {
	if err := spec.Normalize(); err != nil {
		return nil, "", err
	}
	key := spec.Key()
	now := time.Now()

	p.mu.Lock()
	if !p.accepting {
		p.mu.Unlock()
		return nil, "", errShuttingDown
	}
	p.counters.Add("jobs_submitted", 1)

	if res, ok := p.cache[key]; ok {
		job := p.newJobLocked(key, spec, now)
		p.mu.Unlock()
		p.counters.Add("cache_hits", 1)
		job.markDone(res, now)
		return job, OutcomeCached, nil
	}
	if primary, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		p.counters.Add("jobs_coalesced", 1)
		return primary, OutcomeCoalesced, nil
	}
	p.counters.Add("cache_misses", 1)

	if p.queued >= p.cfg.QueueDepth {
		retry := p.retryAfterLocked()
		p.mu.Unlock()
		return nil, "", &QueueFullError{Depth: p.cfg.QueueDepth, RetryAfter: retry}
	}
	if wait, infeasible := p.deadlineInfeasibleLocked(spec.DeadlineSeconds); infeasible {
		retry := p.retryAfterLocked()
		p.counters.Add("deadline_rejected", 1)
		p.mu.Unlock()
		return nil, "", &DeadlineInfeasibleError{
			DeadlineSeconds: spec.DeadlineSeconds,
			EstimatedWait:   wait,
			RetryAfter:      retry,
		}
	}
	job := p.newJobLocked(key, spec, now)
	p.inflight[key] = job
	p.queued++
	// A parked checkpoint from a cancelled/deadline-killed run of this
	// exact spec is claimed here: the new job resumes where the preempted
	// one stopped instead of restarting. Determinism makes the splice
	// invisible — the final StateHash is the uninterrupted run's.
	var claimed *parkedEntry
	if ent, ok := p.parked[key]; ok {
		delete(p.parked, key)
		for i, k := range p.parkedSeq {
			if k == key {
				p.parkedSeq = append(p.parkedSeq[:i], p.parkedSeq[i+1:]...)
				break
			}
		}
		claimed = ent
		job.resume = ent.snap
	}
	p.mu.Unlock()

	// Persist BEFORE the job becomes runnable. Accepted must mean
	// recoverable: once a worker can dequeue the job, a crash has to find
	// its spec on disk, so a persistence failure rolls the admission back
	// and rejects with *PersistError instead of accepting work that a
	// crash would silently lose.
	if err := p.persistSpec(job); err != nil {
		p.counters.Add("persist_errors", 1)
		p.rollbackAdmission(job, err)
		return nil, "", &PersistError{Err: err}
	}
	if claimed != nil {
		// Re-home the claimed snapshot under the new job's ID. Best
		// effort: if the copy fails, a crash loses only the resume
		// optimization — the new spec restarts from scratch and, by
		// determinism, still produces the identical result.
		if job.resume != nil && p.cfg.StateDir != "" {
			if err := p.persistSnapshot(job, job.resume); err != nil {
				p.counters.Add("persist_errors", 1)
			}
		}
		p.removeJobFiles(claimed.id)
		p.counters.Add("parked_resumed", 1)
	}
	p.queue <- job // cannot block: queued < QueueDepth is checked under mu
	return job, OutcomeAccepted, nil
}

// deadlineInfeasibleLocked estimates (under p.mu) whether a job with the
// given deadline budget could plausibly start in time. With an empty
// queue any deadline is feasible — a worker reaches the job next. With a
// backlog, the median of the observed queue-wait histogram is the
// estimate; it needs a minimum sample count so a cold service never
// rejects on noise.
func (p *Pool) deadlineInfeasibleLocked(deadlineSeconds float64) (time.Duration, bool) {
	if deadlineSeconds <= 0 || p.queued == 0 {
		return 0, false
	}
	const minSamples = 8
	if p.queueWait.Count() < minSamples {
		return 0, false
	}
	wait := p.queueWait.Quantile(0.5)
	if wait > deadlineSeconds {
		return time.Duration(wait * float64(time.Second)), true
	}
	return 0, false
}

// rollbackAdmission withdraws a job that was registered but never made
// runnable. Coalesced submissions may have attached to it during the
// unlocked persist window, so the job is failed (resolving any waiters)
// before its index entries are removed.
func (p *Pool) rollbackAdmission(job *Job, cause error) {
	job.markFailed(&PersistError{Err: cause}, time.Now())
	p.mu.Lock()
	if p.inflight[job.Key] == job {
		delete(p.inflight, job.Key)
	}
	delete(p.jobs, job.ID)
	for i := len(p.order) - 1; i >= 0; i-- {
		if p.order[i] == job.ID {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	p.queued--
	p.mu.Unlock()
}

// newJobLocked allocates and registers a job record.
func (p *Pool) newJobLocked(key string, spec *Spec, now time.Time) *Job {
	p.seq++
	job := newJob(fmt.Sprintf("j-%06d", p.seq), key, spec, now)
	p.jobs[job.ID] = job
	p.order = append(p.order, job.ID)
	return job
}

// retryAfterLocked estimates when a queue slot should free: the mean
// observed job wall time scaled by the queue backlog per worker.
func (p *Pool) retryAfterLocked() time.Duration {
	mean := 2 * time.Second
	if done := p.counters.Get("runs_executed"); done > 0 && p.wallTotal > 0 {
		mean = time.Duration(p.wallTotal / float64(done) * float64(time.Second))
	}
	per := float64(p.queued+1) / float64(p.cfg.Workers)
	d := time.Duration(math.Ceil(per)) * mean
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// Cancel requests cancellation of a job by ID. Unknown IDs report found
// false. Queued jobs transition to cancelled immediately; running jobs
// are preempted at the engine's next supervisor poll (checkpointable
// runs park a resumable snapshot first) and reach cancelled when the
// worker acknowledges; terminal jobs are left untouched (requested
// false). Cancellation is best-effort by design: a job that finishes
// before the preemption lands stays done.
func (p *Pool) Cancel(id string) (job *Job, found, requested bool) {
	p.mu.Lock()
	j, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return nil, false, false
	}
	return j, true, p.stop(j, CauseCancel)
}

// stop routes a stop request to a job and settles the pool-level
// bookkeeping when the job went terminal while still queued (its worker
// never ran, so nobody else will release the coalescing entry or the
// persisted spec).
func (p *Pool) stop(j *Job, cause CancelCause) bool {
	queuedTerminal, effective := j.requestStop(cause, time.Now())
	if !effective {
		return false
	}
	if queuedTerminal {
		if cause == CauseDeadline {
			p.counters.Add("jobs_deadline_exceeded", 1)
		} else {
			p.counters.Add("jobs_cancelled", 1)
		}
		p.removeJobFiles(j.ID)
		p.finishJob(j, nil, 0)
	}
	return true
}

// watchdog is the supervision loop: on every tick it enforces deadline
// budgets on queued and running jobs and, when a stall window is
// configured, preempts running jobs whose engine heartbeat stopped
// advancing. It exits with the workers on Shutdown.
func (p *Pool) watchdog() {
	defer p.wg.Done()
	interval := p.cfg.WatchdogInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
		if w := p.cfg.StallWindow; w > 0 && w/4 < interval {
			interval = w / 4
		}
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.quit:
			return
		case now := <-tick.C:
			p.superviseOnce(now)
		}
	}
}

// superviseOnce runs one watchdog scan over the non-terminal jobs (the
// coalescing index holds exactly those).
func (p *Pool) superviseOnce(now time.Time) {
	p.mu.Lock()
	active := make([]*Job, 0, len(p.inflight))
	for _, j := range p.inflight {
		active = append(active, j)
	}
	p.mu.Unlock()
	for _, j := range active {
		if at, ok := j.Deadline(); ok && now.After(at) {
			p.stop(j, CauseDeadline)
			continue
		}
		if w := p.cfg.StallWindow; w > 0 && j.checkStall(now, w) {
			p.counters.Add("watchdog_stalls", 1)
		}
	}
}

// Get returns a job by ID.
func (p *Pool) Get(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// Jobs returns every tracked job in admission order.
func (p *Pool) Jobs() []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Job, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.jobs[id])
	}
	return out
}

// CachedResult returns the cached result for a content key.
func (p *Pool) CachedResult(key string) (*Result, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	res, ok := p.cache[key]
	return res, ok
}

// Stats returns the operational gauges and counter snapshot.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		QueueDepth:       p.queued,
		InFlight:         p.running,
		CacheEntries:     len(p.cache),
		WallSecondsTotal: p.wallTotal,
		Counters:         p.counters.Snapshot(),
	}
}

// Shutdown drains the pool: no new submissions are accepted, idle
// workers exit, and running jobs get until ctx's deadline to finish.
// Past the deadline, runs are asked to stop at their next cooperative
// boundary — jobs with persistence suspend with an on-disk checkpoint
// (resumable via Recover after a restart), the rest fail. Shutdown
// returns once every worker has exited.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.accepting {
		p.mu.Unlock()
		return errShuttingDown
	}
	p.accepting = false
	p.mu.Unlock()
	close(p.quit)

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.drainStop.Store(true)
		<-done
		return ctx.Err()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		// Prefer quitting over picking up more queued work, so a drain
		// leaves not-yet-started jobs persisted instead of racing them
		// against the deadline.
		select {
		case <-p.quit:
			return
		default:
		}
		select {
		case <-p.quit:
			return
		case job := <-p.queue:
			p.execute(job)
		}
	}
}

// execute runs one job end to end on the calling worker goroutine.
func (p *Pool) execute(job *Job) {
	p.mu.Lock()
	p.queued--
	p.running++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.running--
		p.mu.Unlock()
	}()

	if p.cfg.BeforeRun != nil {
		p.cfg.BeforeRun(job)
	}
	dequeued := time.Now()
	if !job.beginRun(dequeued) {
		// Cancelled or deadline-killed while queued: the stop path
		// already made the job terminal and released its bookkeeping;
		// the queue slot just carried a husk.
		p.finishJob(job, nil, 0)
		return
	}
	if enq, _, _ := job.Times(); !enq.IsZero() {
		p.queueWait.Observe(dequeued.Sub(enq).Seconds())
	}

	var (
		res  *Result
		err  error
		snap *checkpoint.Snapshot
	)
	start := time.Now()
	res, snap, err = p.runGuarded(job)
	wall := time.Since(start).Seconds()
	p.runDur.Observe(wall)

	// The recorded stop cause decides how a preempted run terminates. A
	// completed result always wins: a cancel that lands after the last
	// event is a no-op, not a retroactive kill.
	cause := job.stopCause()
	now := time.Now()
	switch {
	case res != nil:
		res.WallSeconds = wall
		p.counters.Add("jobs_completed", 1)
		p.counters.Add("runs_executed", 1)
		job.markDone(res, now)
		p.removeJobFiles(job.ID)
		p.finishJob(job, res, wall)
	case snap != nil && (cause == CauseCancel || cause == CauseDeadline):
		// Cancelled/deadline-killed mid-run with a checkpoint in hand:
		// park it under the content key so a resubmission of the same
		// spec resumes bit-exactly instead of starting over.
		p.park(job, snap)
		if cause == CauseDeadline {
			p.counters.Add("jobs_deadline_exceeded", 1)
			job.markDeadline(now)
		} else {
			p.counters.Add("jobs_cancelled", 1)
			job.markCancelled(now)
		}
		p.finishJob(job, nil, wall)
	case snap != nil && cause == CauseWatchdog:
		// Stalled run preempted with a checkpoint: suspend it like a
		// drain would, so a restart resumes it.
		if perr := p.persistSnapshot(job, snap); perr != nil {
			p.counters.Add("persist_errors", 1)
		}
		p.counters.Add("watchdog_preemptions", 1)
		p.counters.Add("jobs_suspended", 1)
		job.markSuspended(now)
		p.finishJob(job, nil, wall)
	case snap != nil:
		// Drain checkpoint: persist and suspend.
		if perr := p.persistSnapshot(job, snap); perr != nil {
			p.counters.Add("persist_errors", 1)
			job.markFailed(fmt.Errorf("jobqueue: drain checkpoint: %w", perr), now)
			p.finishJob(job, nil, wall)
			return
		}
		p.counters.Add("jobs_suspended", 1)
		job.markSuspended(now)
		p.finishJob(job, nil, wall)
	case err == errAbortRestartable:
		// Interrupted chaos run: no snapshot, but the persisted spec
		// lets Recover restart it from scratch.
		p.counters.Add("jobs_suspended", 1)
		job.markSuspended(now)
		p.finishJob(job, nil, wall)
	case err == errPreempted:
		// Preempted without a checkpoint (chaos run, no state dir, or
		// the injected hang probe).
		switch cause {
		case CauseDeadline:
			p.counters.Add("jobs_deadline_exceeded", 1)
			job.markDeadline(now)
			p.removeJobFiles(job.ID)
		case CauseWatchdog:
			p.counters.Add("watchdog_preemptions", 1)
			if p.cfg.StateDir != "" && !job.Spec.Hang {
				// The persisted spec lets Recover restart it.
				p.counters.Add("jobs_suspended", 1)
				job.markSuspended(now)
			} else {
				p.counters.Add("jobs_failed", 1)
				job.markFailed(fmt.Errorf("jobqueue: job %s preempted by watchdog: no event progress within %s", job.ID, p.cfg.StallWindow), now)
				p.removeJobFiles(job.ID)
			}
		default:
			p.counters.Add("jobs_cancelled", 1)
			job.markCancelled(now)
			p.removeJobFiles(job.ID)
		}
		p.finishJob(job, nil, wall)
	case err != nil:
		p.counters.Add("jobs_failed", 1)
		job.markFailed(err, now)
		p.removeJobFiles(job.ID)
		p.finishJob(job, nil, wall)
	default:
		// runGuarded returned neither result, snapshot nor error — only
		// reachable through a bug; fail loudly rather than wedge waiters.
		p.counters.Add("jobs_failed", 1)
		job.markFailed(fmt.Errorf("jobqueue: job %s produced no outcome", job.ID), now)
		p.removeJobFiles(job.ID)
		p.finishJob(job, nil, wall)
	}
}

// park stores a preempted run's snapshot — in memory under the content
// key (bounded FIFO, like the cache) and on disk as a Parked spec +
// checkpoint pair so the entry survives a restart without Recover
// resurrecting the cancelled job as runnable work.
func (p *Pool) park(job *Job, snap *checkpoint.Snapshot) {
	if err := p.persistPark(job, snap); err != nil {
		// Disk park failed: drop the files so a restart cannot see a
		// half-written pair, and keep the in-memory entry (its loss on
		// crash costs only the resume optimization).
		p.counters.Add("persist_errors", 1)
		p.removeJobFiles(job.ID)
	}
	var evicted []string
	p.mu.Lock()
	if _, dup := p.parked[job.Key]; !dup {
		p.parked[job.Key] = &parkedEntry{id: job.ID, snap: snap}
		p.parkedSeq = append(p.parkedSeq, job.Key)
		for len(p.parkedSeq) > p.cfg.CacheCap {
			old := p.parkedSeq[0]
			p.parkedSeq = p.parkedSeq[1:]
			if ent, ok := p.parked[old]; ok {
				evicted = append(evicted, ent.id)
				delete(p.parked, old)
			}
		}
	} else {
		// A parked entry for this key already exists (possible only
		// through recovery edge cases); keep the older one.
		evicted = append(evicted, job.ID)
	}
	p.mu.Unlock()
	p.counters.Add("jobs_parked", 1)
	for _, id := range evicted {
		p.counters.Add("parked_evicted", 1)
		p.removeJobFiles(id)
	}
}

// runGuarded dispatches the job to its executor behind a panic
// barrier. A panicking run — a simulation bug, a poisoned spec, the
// injected Spec.Panic fault — must cost exactly one job, not the
// worker goroutine (an unrecovered panic would kill the whole daemon):
// the job fails with the stack in its error, and the pool keeps
// serving.
func (p *Pool) runGuarded(job *Job) (res *Result, snap *checkpoint.Snapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.counters.Add("jobs_panicked", 1)
			res, snap = nil, nil
			err = fmt.Errorf("jobqueue: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if job.Spec.Panic {
		panic("injected panic (spec.panic): crash-soak panic-isolation probe")
	}
	if job.Spec.Hang {
		return p.hangProbe(job)
	}
	switch job.Spec.Kind {
	case KindSweep:
		res, err = p.executeSweep(job)
	default:
		res, snap, err = p.executeRun(job)
	}
	return res, snap, err
}

// hangProbe is the injected stall fault: the worker occupies its slot
// making no event progress — the supervisor's heartbeat never advances —
// until the watchdog (or a cancel/deadline/drain) stops it. It models
// the recoverable half of "stuck worker": model code that still reaches
// the cooperative poll boundary without progressing. A callback that
// never yields at all cannot be preempted in-process — the watchdog can
// only detect it (see DESIGN.md §15).
func (p *Pool) hangProbe(job *Job) (*Result, *checkpoint.Snapshot, error) {
	super := &sim.Supervisor{}
	job.attachSupervisor(super)
	for !super.Stop.Load() {
		if p.drainStop.Load() {
			return nil, nil, errAbortRestartable
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil, nil, errPreempted
}

// finishJob updates the shared indexes after a terminal transition:
// the in-flight (coalescing) entry is released, and successful results
// enter the content-addressed cache.
func (p *Pool) finishJob(job *Job, res *Result, wall float64) {
	p.mu.Lock()
	if p.inflight[job.Key] == job {
		delete(p.inflight, job.Key)
	}
	p.wallTotal += wall
	if res != nil {
		if _, ok := p.cache[job.Key]; !ok {
			p.cache[job.Key] = res
			p.cacheSeq = append(p.cacheSeq, job.Key)
			for len(p.cacheSeq) > p.cfg.CacheCap {
				evict := p.cacheSeq[0]
				p.cacheSeq = p.cacheSeq[1:]
				delete(p.cache, evict)
				p.counters.Add("cache_evictions", 1)
			}
		}
	}
	p.mu.Unlock()
}

// executeRun performs a sim or chaos job. It returns a non-nil snapshot
// when the run was suspended at a drain checkpoint instead of finishing.
func (p *Pool) executeRun(job *Job) (*Result, *checkpoint.Snapshot, error) {
	spec := job.Spec
	cfg := spec.RunConfig()

	job.mu.Lock()
	resume := job.resume
	job.mu.Unlock()
	if resume != nil {
		cfg.Resume = resume
	}

	var (
		eng     *sim.Engine
		checker *oracle.Checker
		aborted atomic.Bool
		snap    *checkpoint.Snapshot
		presnap *checkpoint.Snapshot
	)
	cfg.OnNetwork = func(net *node.Network) {
		eng = net.Engine
		if spec.Check {
			checker = oracle.Attach(net, oracle.DefaultConfig())
		}
	}
	// The supervisor is the cancel/deadline/watchdog control surface of
	// the run: the engine heartbeats through it and honors its stop flag
	// at the next poll boundary.
	super := &sim.Supervisor{}
	job.attachSupervisor(super)
	cfg.Supervisor = super
	checkpointable := p.cfg.StateDir != "" && spec.Kind != KindChaos
	cfg.OnSample = func(t float64, working int, _ []float64) {
		job.observeProgress(t, working)
		// Non-checkpointable runs stop cooperatively at a coverage
		// sample when a drain passes its deadline; checkpointable runs
		// wait for the next capture boundary so they resume cleanly.
		if !checkpointable && p.drainStop.Load() && eng != nil {
			aborted.Store(true)
			eng.Stop()
		}
	}
	if checkpointable {
		cfg.CheckpointEvery = p.cfg.CheckpointEvery
		cfg.OnCheckpoint = func(s *checkpoint.Snapshot) bool {
			if !p.drainStop.Load() {
				return false
			}
			snap = s
			return true
		}
		// A supervisor preemption captures at the stop point, so the
		// interrupted work is parked or suspended, never discarded.
		cfg.OnPreempt = func(s *checkpoint.Snapshot) { presnap = s }
	}

	var meter perf.AllocMeter
	meter.Start()
	stats, err := p.run(cfg)
	if err != nil {
		return nil, nil, err
	}
	allocs := meter.Allocs()
	if snap != nil {
		return nil, snap, nil
	}
	if presnap != nil {
		return nil, presnap, nil
	}
	if stats.Preempted {
		// Preempted but nothing to capture (chaos or no state dir).
		return nil, nil, errPreempted
	}
	if aborted.Load() {
		if p.cfg.StateDir != "" {
			// The spec file is still on disk; Recover restarts the job
			// from scratch (chaos state cannot checkpoint).
			return nil, nil, errAbortRestartable
		}
		return nil, nil, fmt.Errorf("jobqueue: job aborted by shutdown before completion")
	}

	res := &Result{Stats: stats, Chaos: stats.Chaos, Resumed: resume != nil}
	if stats.FinalState != nil {
		res.StateHash = stats.FinalState.StateHashHex()
	}
	if eng != nil {
		res.Events = eng.Executed()
		if res.Events > 0 {
			res.AllocsPerEvent = float64(allocs) / float64(res.Events)
		}
		p.counters.Add("engine_events", res.Events)
		p.counters.Add("heap_allocs", allocs)
	}
	if checker != nil {
		res.Violations = len(checker.Violations()) + checker.Dropped()
		if cerr := checker.Err(); cerr != nil {
			return nil, nil, fmt.Errorf("jobqueue: invariant oracle: %w", cerr)
		}
	}
	return res, nil, nil
}

// errAbortRestartable marks a chaos run interrupted by a drain whose
// spec remains persisted; execute maps it to the suspended state.
var errAbortRestartable = fmt.Errorf("jobqueue: aborted by shutdown; restartable from spec")

// errPreempted marks a run stopped by its supervisor without a
// checkpoint to show for it; execute maps it to a terminal state by the
// job's recorded stop cause.
var errPreempted = fmt.Errorf("jobqueue: preempted by supervisor")

// executeSweep performs a sweep job via the §5.2 deployment sweep.
// Sweeps aggregate many runs, so they report no single StateHash and do
// not participate in drain checkpointing — a drain waits for them.
func (p *Pool) executeSweep(job *Job) (*Result, error) {
	spec := job.Spec
	res, err := experiment.DeploymentSweep(experiment.Options{
		Runs:        spec.Sweep.Runs,
		Seed:        spec.Network.Seed,
		Deployments: spec.Sweep.Deployments,
		Forwarding:  spec.Forwarding,
		// One sweep cell at a time: concurrency is the pool's job.
		Parallel: 1,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Sweep: res}, nil
}
