package jobqueue

import (
	"context"
	"fmt"
	"sync"
	"time"

	"peas/internal/checkpoint"
	"peas/internal/sim"
)

// State is a job's lifecycle stage.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: executing on a worker.
	StateRunning State = "running"
	// StateDone: finished successfully; Result is set.
	StateDone State = "done"
	// StateFailed: finished with an error (including invariant-oracle
	// violations on Check jobs); Err is set.
	StateFailed State = "failed"
	// StateSuspended: checkpointed during a drain or preempted by the
	// watchdog; the snapshot is persisted and the job resumes after a
	// restart + Recover.
	StateSuspended State = "suspended"
	// StateCancelled: stopped by an explicit Cancel request. Running
	// checkpointable work parks a resumable snapshot first, so a
	// resubmission of the same spec continues instead of restarting.
	StateCancelled State = "cancelled"
	// StateDeadline: the job's DeadlineSeconds budget expired before it
	// finished. Parks a snapshot exactly like StateCancelled.
	StateDeadline State = "deadline_exceeded"
)

// Terminal reports whether the state is final: the job will never run
// again under this ID and its worker slot (if it had one) is released.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateSuspended, StateCancelled, StateDeadline:
		return true
	}
	return false
}

// CancelCause records why a job was asked to stop; the first request
// wins and decides the terminal state.
type CancelCause string

const (
	// CauseCancel: an explicit Pool.Cancel (DELETE /jobs/{id}).
	CauseCancel CancelCause = "cancel"
	// CauseDeadline: the DeadlineSeconds budget expired.
	CauseDeadline CancelCause = "deadline"
	// CauseWatchdog: no event progress within the stall window.
	CauseWatchdog CancelCause = "watchdog"
)

// Result is what a completed job produces. Identical submissions share
// one Result through the content-addressed cache.
type Result struct {
	// StateHash is the hex SHA-256 of the final snapshot's canonical
	// encoding — the bit-exact identity of the end state. Empty for
	// sweep jobs, which aggregate many runs.
	StateHash string `json:"stateHash,omitempty"`
	// Stats holds the single-run metrics (sim and chaos jobs).
	Stats *RunStats `json:"stats,omitempty"`
	// Sweep holds the deployment-sweep table (sweep jobs).
	Sweep *DeploymentSweepResult `json:"sweep,omitempty"`
	// Chaos holds the final per-fault-class counters (chaos jobs).
	Chaos map[string]uint64 `json:"chaos,omitempty"`
	// Violations counts invariant-oracle findings on Check jobs (a
	// non-zero count fails the job, but the tally is still reported).
	Violations int `json:"violations,omitempty"`
	// WallSeconds is the worker wall time of the underlying run. Cache
	// hits report the original run's time.
	WallSeconds float64 `json:"wallSeconds"`
	// Events is the number of engine events the run executed.
	Events uint64 `json:"events,omitempty"`
	// AllocsPerEvent is heap objects allocated per executed event,
	// measured with perf.AllocMeter. With several workers active the
	// global allocation counter interleaves runs, so treat it as an
	// approximation under load; with one worker it is exact.
	AllocsPerEvent float64 `json:"allocsPerEvent,omitempty"`
	// Resumed reports that the run continued from a drain checkpoint.
	Resumed bool `json:"resumed,omitempty"`
}

// EventType classifies job lifecycle events.
type EventType string

const (
	EventQueued    EventType = "queued"
	EventStarted   EventType = "started"
	EventProgress  EventType = "progress"
	EventSuspended EventType = "suspended"
	EventDone      EventType = "done"
	EventFailed    EventType = "failed"
	EventCancelled EventType = "cancelled"
	EventDeadline  EventType = "deadline_exceeded"
)

// Event is one entry of a job's event stream. The server forwards these
// verbatim over SSE.
type Event struct {
	Type EventType `json:"type"`
	// JobID identifies the job the event belongs to.
	JobID string `json:"jobId"`
	// SimT and Horizon describe progress in simulated seconds; Fraction
	// is SimT/Horizon (progress events).
	SimT     float64 `json:"simT,omitempty"`
	Horizon  float64 `json:"horizon,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	// Working is the working-node count at the sample (progress events).
	Working int `json:"working,omitempty"`
	// Error carries the failure message (failed events).
	Error string `json:"error,omitempty"`
	// Result carries the outcome (done events).
	Result *Result `json:"result,omitempty"`
}

// Job is one tracked submission. All exported accessors are safe for
// concurrent use; the worker pool mutates it through the unexported
// methods under the job's own lock.
type Job struct {
	// ID is the queue-assigned identity ("j-<seq>"). Coalesced
	// submissions share the primary job's ID.
	ID string
	// Key is the content address of the spec (see Spec.Key).
	Key string
	// Spec is the normalized submission.
	Spec *Spec

	mu         sync.Mutex
	state      State
	err        error
	result     *Result
	simT       float64
	working    int
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
	// resume, when set, is the drain or park snapshot the next run
	// continues from (populated by Recover or a parked-checkpoint claim).
	resume *checkpoint.Snapshot

	// ctx is the job's lifecycle context: it is cancelled (with a cause)
	// the moment the job reaches a terminal state, so request-scoped work
	// tied to the job — streaming, polling, waiting — can unwind through
	// the standard context mechanism.
	ctx       context.Context
	ctxCancel context.CancelCauseFunc

	// super is the engine supervisor of the current run (nil unless a
	// supervised run is executing). cancelCause records the first stop
	// request; deadlineAt is the absolute DeadlineSeconds expiry (zero
	// when unbounded). lastBeat/lastBeatAt track watchdog stall
	// detection.
	super       *sim.Supervisor
	cancelCause CancelCause
	deadlineAt  time.Time
	lastBeat    uint64
	lastBeatAt  time.Time

	subs    map[int]chan Event
	nextSub int
	dropped uint64
}

func newJob(id, key string, spec *Spec, now time.Time) *Job {
	ctx, cancel := context.WithCancelCause(context.Background())
	j := &Job{
		ID:         id,
		Key:        key,
		Spec:       spec,
		state:      StateQueued,
		enqueuedAt: now,
		ctx:        ctx,
		ctxCancel:  cancel,
		subs:       make(map[int]chan Event),
	}
	if spec.DeadlineSeconds > 0 {
		j.deadlineAt = now.Add(time.Duration(spec.DeadlineSeconds * float64(time.Second)))
	}
	return j
}

// State returns the current lifecycle stage.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the outcome (nil until done).
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Err returns the failure (nil unless failed).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Context returns the job's lifecycle context: it is done once the job
// reaches a terminal state, with context.Cause reporting why (the
// terminal error for failed/cancelled/deadline jobs). Callers can hang
// request-scoped work off it instead of polling State.
func (j *Job) Context() context.Context { return j.ctx }

// Deadline returns the absolute expiry of the job's DeadlineSeconds
// budget, if one was set.
func (j *Job) Deadline() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadlineAt, !j.deadlineAt.IsZero()
}

// CancelRequested reports whether a stop has been requested (or already
// taken effect) for this job.
func (j *Job) CancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelCause != "" || j.state == StateCancelled || j.state == StateDeadline
}

// Progress returns the last observed simulated time and working-node
// count.
func (j *Job) Progress() (simT float64, working int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.simT, j.working
}

// Times returns the enqueue, start and finish instants (zero when the
// stage has not been reached).
func (j *Job) Times() (enqueued, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enqueuedAt, j.startedAt, j.finishedAt
}

// QueueWait returns how long the job sat admitted-but-not-running and
// whether it has started. Jobs still queued report the wait so far, so
// the value is observable (and monotone) before a worker picks the job
// up; cached submissions, which never queue, report zero.
func (j *Job) QueueWait() (time.Duration, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.enqueuedAt.IsZero() {
		return 0, false
	}
	if j.startedAt.IsZero() {
		if j.state == StateQueued {
			return time.Since(j.enqueuedAt), false
		}
		return 0, false // cached: done without ever queueing
	}
	return j.startedAt.Sub(j.enqueuedAt), true
}

// DroppedEvents reports how many events were discarded because a
// subscriber's buffer was full.
func (j *Job) DroppedEvents() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// subscriberBuffer bounds each subscriber's backlog. A slow consumer
// loses intermediate progress events rather than stalling the worker;
// terminal events are delivered with a blocking send only if the channel
// still has room, so even they are best-effort per subscriber (the
// job's final state is always available via State/Result).
const subscriberBuffer = 64

// Subscribe returns a channel of the job's events plus a cancel
// function. The current state is replayed as a first synthetic event so
// late subscribers see a consistent stream; the channel is closed after
// a terminal event (done/failed/suspended) or on cancel.
func (j *Job) Subscribe() (<-chan Event, func()) {
	j.mu.Lock()
	ch := make(chan Event, subscriberBuffer)
	ch <- j.snapshotEventLocked()
	terminal := j.state.Terminal()
	var id int
	if terminal {
		close(ch)
	} else {
		id = j.nextSub
		j.nextSub++
		j.subs[id] = ch
	}
	j.mu.Unlock()

	cancel := func() {
		j.mu.Lock()
		if c, ok := j.subs[id]; ok && c == ch {
			delete(j.subs, id)
			close(c)
		}
		j.mu.Unlock()
	}
	if terminal {
		cancel = func() {}
	}
	return ch, cancel
}

// Wait blocks until the job reaches a terminal state and returns its
// result. Failed jobs return their error, suspended jobs an error
// explaining that the job will resume after a restart.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	ch, cancel := j.Subscribe()
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case _, ok := <-ch:
			if !ok {
				// Stream closed on a terminal event; fall through to
				// read the final state below.
			} else {
				continue
			}
		}
		switch j.State() {
		case StateDone:
			return j.Result(), nil
		case StateFailed, StateCancelled, StateDeadline:
			return nil, j.Err()
		case StateSuspended:
			return nil, fmt.Errorf("jobqueue: job %s suspended by shutdown; resumes after restart", j.ID)
		default:
			return nil, fmt.Errorf("jobqueue: job %s event stream closed in state %s", j.ID, j.State())
		}
	}
}

// snapshotEventLocked renders the current state as an event.
func (j *Job) snapshotEventLocked() Event {
	ev := Event{JobID: j.ID, SimT: j.simT, Horizon: j.Spec.Horizon, Working: j.working}
	if j.Spec.Horizon > 0 {
		ev.Fraction = j.simT / j.Spec.Horizon
	}
	switch j.state {
	case StateQueued:
		ev.Type = EventQueued
	case StateRunning:
		if j.startedAt.IsZero() || j.simT == 0 {
			ev.Type = EventStarted
		} else {
			ev.Type = EventProgress
		}
	case StateDone:
		ev.Type = EventDone
		ev.Result = j.result
	case StateFailed:
		ev.Type = EventFailed
		if j.err != nil {
			ev.Error = j.err.Error()
		}
	case StateSuspended:
		ev.Type = EventSuspended
	case StateCancelled:
		ev.Type = EventCancelled
		if j.err != nil {
			ev.Error = j.err.Error()
		}
	case StateDeadline:
		ev.Type = EventDeadline
		if j.err != nil {
			ev.Error = j.err.Error()
		}
	}
	return ev
}

// publishLocked fans ev out to subscribers, dropping it per subscriber
// when the buffer is full. Terminal events also close the channels.
func (j *Job) publishLocked(ev Event, terminal bool) {
	for id, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			j.dropped++
		}
		if terminal {
			delete(j.subs, id)
			close(ch)
		}
	}
}

// beginRun claims a queued job for execution. It returns false when the
// job is no longer claimable — cancelled or deadline-killed while it sat
// in the queue — in which case the worker must skip it.
func (j *Job) beginRun(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.startedAt = now
	j.lastBeatAt = now
	j.publishLocked(Event{Type: EventStarted, JobID: j.ID, Horizon: j.Spec.Horizon}, false)
	return true
}

// attachSupervisor installs the engine supervisor of the job's current
// run. A stop requested before the run started (the cancel-vs-dequeue
// race) is forwarded immediately so the run preempts at its first poll
// boundary.
func (j *Job) attachSupervisor(s *sim.Supervisor) {
	j.mu.Lock()
	j.super = s
	if j.cancelCause != "" {
		s.Stop.Store(true)
	}
	j.mu.Unlock()
}

// requestStop records a stop request. Queued jobs transition to their
// terminal state immediately (queuedTerminal true — the caller must then
// release pool-level bookkeeping); running jobs get the cause recorded
// and their supervisor flagged, and reach the terminal state when the
// worker acknowledges. The first cause wins; requests on terminal or
// already-stopping jobs report effective false.
func (j *Job) requestStop(cause CancelCause, now time.Time) (queuedTerminal, effective bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.cancelCause != "" {
		return false, false
	}
	if j.state == StateQueued {
		j.cancelCause = cause
		j.terminalStopLocked(cause, now)
		return true, true
	}
	j.cancelCause = cause
	if j.super != nil {
		j.super.Stop.Store(true)
	}
	return false, true
}

// stopCause returns the recorded stop cause ("" when none).
func (j *Job) stopCause() CancelCause {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelCause
}

// checkStall advances watchdog bookkeeping for a running supervised job
// and fires a preemption when the heartbeat has not moved within window.
// It returns true exactly once per stall (the first cause wins).
func (j *Job) checkStall(now time.Time, window time.Duration) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.super == nil {
		return false
	}
	beat := j.super.Beat.Load()
	if beat != j.lastBeat || j.lastBeatAt.IsZero() {
		j.lastBeat = beat
		j.lastBeatAt = now
		return false
	}
	if now.Sub(j.lastBeatAt) < window || j.cancelCause != "" {
		return false
	}
	j.cancelCause = CauseWatchdog
	j.super.Stop.Store(true)
	return true
}

// terminalStopLocked finalizes a cancel/deadline stop: state, error,
// terminal event, lifecycle-context cancellation.
func (j *Job) terminalStopLocked(cause CancelCause, now time.Time) {
	switch cause {
	case CauseDeadline:
		j.state = StateDeadline
		j.err = fmt.Errorf("jobqueue: job %s exceeded its %gs deadline", j.ID, j.Spec.DeadlineSeconds)
		j.finishedAt = now
		j.publishLocked(Event{Type: EventDeadline, JobID: j.ID, SimT: j.simT, Error: j.err.Error()}, true)
	default:
		j.state = StateCancelled
		j.err = fmt.Errorf("jobqueue: job %s cancelled", j.ID)
		j.finishedAt = now
		j.publishLocked(Event{Type: EventCancelled, JobID: j.ID, SimT: j.simT, Error: j.err.Error()}, true)
	}
	j.ctxCancel(j.err)
}

// markCancelled and markDeadline are the worker-side acknowledgements of
// a stop: the run has been preempted (and any snapshot parked), so the
// job reaches its terminal state.
func (j *Job) markCancelled(now time.Time) {
	j.mu.Lock()
	j.terminalStopLocked(CauseCancel, now)
	j.mu.Unlock()
}

func (j *Job) markDeadline(now time.Time) {
	j.mu.Lock()
	j.terminalStopLocked(CauseDeadline, now)
	j.mu.Unlock()
}

// progressStride is the minimum horizon fraction between emitted
// progress events, so a long run does not flood subscribers with every
// 25-second coverage sample.
const progressStride = 0.01

func (j *Job) observeProgress(simT float64, working int) {
	j.mu.Lock()
	prev := j.simT
	j.simT = simT
	j.working = working
	h := j.Spec.Horizon
	if h > 0 && (simT-prev) >= progressStride*h {
		ev := Event{Type: EventProgress, JobID: j.ID, SimT: simT, Horizon: h,
			Fraction: simT / h, Working: working}
		j.publishLocked(ev, false)
	}
	j.mu.Unlock()
}

func (j *Job) markDone(res *Result, now time.Time) {
	j.mu.Lock()
	j.state = StateDone
	j.result = res
	j.finishedAt = now
	j.publishLocked(Event{Type: EventDone, JobID: j.ID, Result: res}, true)
	j.ctxCancel(errJobFinished)
	j.mu.Unlock()
}

func (j *Job) markFailed(err error, now time.Time) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = err
	j.finishedAt = now
	j.publishLocked(Event{Type: EventFailed, JobID: j.ID, Error: err.Error()}, true)
	j.ctxCancel(err)
	j.mu.Unlock()
}

func (j *Job) markSuspended(now time.Time) {
	j.mu.Lock()
	j.state = StateSuspended
	j.finishedAt = now
	j.publishLocked(Event{Type: EventSuspended, JobID: j.ID, SimT: j.simT}, true)
	j.ctxCancel(errJobSuspended)
	j.mu.Unlock()
}

// errJobFinished and errJobSuspended are the lifecycle-context causes of
// the non-error terminal states (context.Cause never reports nil once a
// context is cancelled, so each terminal state gets a distinct cause).
var (
	errJobFinished  = fmt.Errorf("jobqueue: job finished")
	errJobSuspended = fmt.Errorf("jobqueue: job suspended")
)
