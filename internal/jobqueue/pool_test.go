package jobqueue

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peas/internal/chaos"
	"peas/internal/experiment"
	"peas/internal/node"
)

// testSpec is a deployment small enough that a full run takes tens of
// milliseconds but still exercises the whole engine.
func testSpec(seed int64) *Spec {
	return &Spec{
		Network:          node.DefaultConfig(40, seed),
		FailuresPer5000s: experiment.BaseFailuresPer5000,
		Horizon:          600,
	}
}

// directHash runs the spec in-process, bypassing the pool, and returns
// the final StateHash — the reference every cached/coalesced result
// must match.
func directHash(t *testing.T, spec *Spec) string {
	t.Helper()
	s := *spec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	stats, err := experiment.Run(s.RunConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalState == nil {
		t.Fatal("direct run captured no final state")
	}
	return stats.FinalState.StateHashHex()
}

func waitResult(t *testing.T, j *Job) *Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("job %s: %v", j.ID, err)
	}
	return res
}

func TestSpecKeyCanonicalization(t *testing.T) {
	// A minimal submission and one with the defaults spelled out mean
	// the same simulation, so they must share a content key.
	minimal := &Spec{Network: node.Config{N: 40, Seed: 3}, Horizon: 600}
	explicit := &Spec{Network: node.DefaultConfig(40, 3), Horizon: 600}
	for _, s := range []*Spec{minimal, explicit} {
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	if minimal.Key() != explicit.Key() {
		t.Error("defaulted and explicit specs should share a key")
	}

	other := &Spec{Network: node.Config{N: 40, Seed: 4}, Horizon: 600}
	if err := other.Normalize(); err != nil {
		t.Fatal(err)
	}
	if other.Key() == minimal.Key() {
		t.Error("different seeds must not collide")
	}

	// An unresolved horizon normalizes to the explicit default.
	auto := &Spec{Network: node.Config{N: 40, Seed: 3}}
	if err := auto.Normalize(); err != nil {
		t.Fatal(err)
	}
	if auto.Horizon != experiment.DefaultHorizon(40) {
		t.Errorf("horizon = %v, want resolved default", auto.Horizon)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []*Spec{
		{}, // no N
		{Kind: "warp", Network: node.Config{N: 4}},                       // unknown kind
		{Kind: KindChaos, Network: node.Config{N: 4}},                    // chaos without plan
		{Kind: KindSim, Network: node.Config{N: 4}, Sweep: &SweepSpec{}}, // sweep options on a sim job
	}
	for i, s := range cases {
		if err := s.Normalize(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

// TestSingleflightAndCache is the end-to-end acceptance test: N
// concurrent submissions of one config execute exactly one underlying
// run, and every response carries the same StateHash as a direct
// in-process run.
func TestSingleflightAndCache(t *testing.T) {
	spec := testSpec(11)
	want := directHash(t, spec)

	var runs atomic.Int64
	pool := New(Config{
		Workers:    4,
		QueueDepth: 16,
		Run: func(cfg experiment.RunConfig) (*experiment.RunStats, error) {
			runs.Add(1)
			return experiment.Run(cfg)
		},
	})
	pool.Start()
	defer pool.Shutdown(context.Background())

	const submitters = 8
	var wg sync.WaitGroup
	jobs := make([]*Job, submitters)
	outcomes := make([]Outcome, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := *testSpec(11) // fresh copy per submitter
			j, outcome, err := pool.Submit(&s)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
			outcomes[i] = outcome
		}(i)
	}
	wg.Wait()

	for i, j := range jobs {
		if j == nil {
			t.Fatalf("submission %d did not yield a job", i)
		}
		res := waitResult(t, j)
		if res.StateHash != want {
			t.Errorf("submission %d (%s): hash %s, want %s", i, outcomes[i], res.StateHash, want)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("underlying runs = %d, want exactly 1", got)
	}

	// A later identical submission is a pure cache hit: done instantly,
	// same hash, still one run.
	s := *testSpec(11)
	j, outcome, err := pool.Submit(&s)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeCached {
		t.Errorf("outcome = %s, want %s", outcome, OutcomeCached)
	}
	if j.State() != StateDone {
		t.Errorf("cached job state = %s, want done", j.State())
	}
	if res := j.Result(); res == nil || res.StateHash != want {
		t.Errorf("cached result hash mismatch")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cache hit triggered a run: %d", got)
	}

	stats := pool.Stats()
	if stats.Counters["cache_hits"] == 0 {
		t.Error("no cache hits recorded")
	}
	if stats.Counters["runs_executed"] != 1 {
		t.Errorf("runs_executed = %d, want 1", stats.Counters["runs_executed"])
	}
}

// TestQueueFullBackpressure pins admission control: with one worker held
// at a barrier and a single queue slot occupied, the next distinct
// submission must be rejected immediately with a retry hint.
func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	pool := New(Config{
		Workers:    1,
		QueueDepth: 1,
		BeforeRun: func(*Job) {
			once.Do(func() { close(started) })
			<-release
		},
	})
	pool.Start()
	defer func() {
		pool.Shutdown(context.Background())
	}()

	j1, outcome, err := pool.Submit(testSpec(21))
	if err != nil || outcome != OutcomeAccepted {
		t.Fatalf("first submit: %v (%s)", err, outcome)
	}
	<-started // the worker holds j1; the queue is empty again

	if _, outcome, err = pool.Submit(testSpec(22)); err != nil || outcome != OutcomeAccepted {
		t.Fatalf("second submit should occupy the queue slot: %v (%s)", err, outcome)
	}

	_, _, err = pool.Submit(testSpec(23))
	var full *QueueFullError
	if !errors.As(err, &full) {
		t.Fatalf("third submit: got %v, want QueueFullError", err)
	}
	if full.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s", full.RetryAfter)
	}

	// Coalescing onto the running job must still work at full queue.
	if _, outcome, err = pool.Submit(testSpec(21)); err != nil || outcome != OutcomeCoalesced {
		t.Fatalf("coalesce at full queue: %v (%s)", err, outcome)
	}

	close(release)
	waitResult(t, j1)
}

// TestDrainCheckpointResume exercises the graceful-shutdown contract: a
// run that outlives the drain deadline is checkpointed to the state dir,
// and a fresh pool recovers it and finishes with the exact StateHash of
// an uninterrupted run.
func TestDrainCheckpointResume(t *testing.T) {
	spec := testSpec(31)
	spec.Horizon = 1500
	want := directHash(t, spec)

	dir := t.TempDir()
	release := make(chan struct{})
	started := make(chan struct{})
	pool := New(Config{
		Workers:         1,
		QueueDepth:      4,
		StateDir:        dir,
		CheckpointEvery: 200,
		BeforeRun: func(*Job) {
			close(started)
			<-release
		},
	})
	pool.Start()

	s := *spec
	j, _, err := pool.Submit(&s)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Start the drain with an immediate deadline, give drainStop time to
	// latch, then let the run begin: its first checkpoint boundary must
	// suspend it.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- pool.Shutdown(ctx) }()
	time.Sleep(150 * time.Millisecond)
	close(release)
	if err := <-done; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if st := j.State(); st != StateSuspended {
		t.Fatalf("job state = %s, want suspended", st)
	}
	if _, err := os.Stat(filepath.Join(dir, j.ID+".ckpt")); err != nil {
		t.Fatalf("drain checkpoint not persisted: %v", err)
	}

	// Restart: a fresh pool recovers the job and resumes it to the same
	// final state as the uninterrupted run.
	pool2 := New(Config{Workers: 1, QueueDepth: 4, StateDir: dir, CheckpointEvery: 200})
	n, err := pool2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	pool2.Start()
	defer pool2.Shutdown(context.Background())

	j2, ok := pool2.Get(j.ID)
	if !ok {
		t.Fatalf("recovered job %s not found", j.ID)
	}
	res := waitResult(t, j2)
	if !res.Resumed {
		t.Error("recovered run should report Resumed")
	}
	if res.StateHash != want {
		t.Errorf("resumed hash %s, want %s (determinism across drain broken)", res.StateHash, want)
	}
	// Completion clears the persisted state.
	if _, err := os.Stat(filepath.Join(dir, j.ID+".spec.json")); !os.IsNotExist(err) {
		t.Error("spec file should be removed after completion")
	}
}

// TestChaosJobRuns covers the chaos kind end to end: a scripted plan
// runs under the pool, reports fault counters, and its hash matches the
// direct run (chaos runs are deterministic per plan+seed).
func TestChaosJobRuns(t *testing.T) {
	plan := chaos.MixedPlan(800, 5)
	spec := &Spec{
		Network: node.DefaultConfig(40, 5),
		Horizon: 800,
		Chaos:   plan,
	}
	want := directHash(t, spec)

	pool := New(Config{Workers: 2, QueueDepth: 4})
	pool.Start()
	defer pool.Shutdown(context.Background())

	s := *spec
	j, _, err := pool.Submit(&s)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, j)
	if res.StateHash != want {
		t.Errorf("chaos hash %s, want %s", res.StateHash, want)
	}
	if len(res.Chaos) == 0 {
		t.Error("chaos job reported no fault counters")
	}
}

// TestCheckJobArmsOracle verifies that Check jobs attach the invariant
// oracle and report a violation tally.
func TestCheckJobArmsOracle(t *testing.T) {
	spec := testSpec(41)
	spec.Check = true

	pool := New(Config{Workers: 1, QueueDepth: 4})
	pool.Start()
	defer pool.Shutdown(context.Background())

	j, _, err := pool.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, j)
	if res.Violations != 0 {
		t.Errorf("healthy run reported %d violations", res.Violations)
	}
	if res.Events == 0 {
		t.Error("run reported no engine events")
	}
}

// TestSweepJob runs a tiny deployment sweep through the pool.
func TestSweepJob(t *testing.T) {
	spec := &Spec{
		Kind:    KindSweep,
		Network: node.Config{N: 30, Seed: 2},
		Sweep:   &SweepSpec{Deployments: []int{30}, Runs: 1},
	}
	pool := New(Config{Workers: 1, QueueDepth: 4})
	pool.Start()
	defer pool.Shutdown(context.Background())

	j, _, err := pool.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := waitResult(t, j)
	if res.Sweep == nil || len(res.Sweep.Points) != 1 {
		t.Fatalf("sweep result = %+v", res.Sweep)
	}
	if res.Sweep.Points[0].N != 30 {
		t.Errorf("sweep point N = %d", res.Sweep.Points[0].N)
	}
}

// TestEventStream checks the SSE-facing event feed: a subscriber sees
// started -> progress -> done in order, with monotonic progress.
func TestEventStream(t *testing.T) {
	pool := New(Config{Workers: 1, QueueDepth: 4})
	pool.Start()
	defer pool.Shutdown(context.Background())

	j, _, err := pool.Submit(testSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelSub := j.Subscribe()
	defer cancelSub()

	var sawStart, sawProgress, sawDone bool
	lastT := -1.0
	deadline := time.After(60 * time.Second)
	for !sawDone {
		select {
		case ev, ok := <-ch:
			if !ok {
				if !sawDone {
					t.Fatal("stream closed before done event")
				}
				break
			}
			switch ev.Type {
			case EventQueued, EventStarted:
				sawStart = true
			case EventProgress:
				sawProgress = true
				if ev.SimT < lastT {
					t.Errorf("progress went backwards: %v after %v", ev.SimT, lastT)
				}
				lastT = ev.SimT
			case EventDone:
				sawDone = true
				if ev.Result == nil || ev.Result.StateHash == "" {
					t.Error("done event carries no result hash")
				}
			case EventFailed:
				t.Fatalf("job failed: %s", ev.Error)
			}
		case <-deadline:
			t.Fatal("timed out waiting for events")
		}
	}
	if !sawStart || !sawProgress {
		t.Errorf("stream incomplete: start=%v progress=%v", sawStart, sawProgress)
	}
}

func TestSubmitValidatesEarly(t *testing.T) {
	pool := New(Config{Workers: 1, QueueDepth: 1})
	pool.Start()
	defer pool.Shutdown(context.Background())
	if _, _, err := pool.Submit(&Spec{}); err == nil {
		t.Fatal("invalid spec must be rejected at admission")
	}
	if _, _, err := pool.Submit(&Spec{Kind: "nope", Network: node.Config{N: 4}}); err == nil ||
		!strings.Contains(err.Error(), "unknown job kind") {
		t.Fatalf("unknown kind: %v", err)
	}
}

// TestCacheFIFOEvictionOrder pins the cache replacement policy: entries
// leave in insertion order, the cache_evictions counter tracks each
// eviction, and a re-submitted evicted key re-executes and re-enters
// the cache at the tail.
func TestCacheFIFOEvictionOrder(t *testing.T) {
	pool := New(Config{Workers: 1, QueueDepth: 8, CacheCap: 2})
	pool.Start()
	defer pool.Shutdown(context.Background())

	specs := []*Spec{testSpec(61), testSpec(62), testSpec(63)}
	keys := make([]string, len(specs))
	for i, spec := range specs {
		j, outcome, err := pool.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != OutcomeAccepted {
			t.Fatalf("submission %d: outcome %s, want accepted", i, outcome)
		}
		keys[i] = j.Key
		waitResult(t, j)
	}

	// Three inserts through a two-entry cache: the first key (oldest)
	// is out, the newer two are in.
	if _, ok := pool.CachedResult(keys[0]); ok {
		t.Error("oldest key survived eviction (not FIFO)")
	}
	for _, k := range keys[1:] {
		if _, ok := pool.CachedResult(k); !ok {
			t.Errorf("recent key %s missing from cache", k)
		}
	}
	if got := pool.Counters().Get("cache_evictions"); got != 1 {
		t.Errorf("cache_evictions = %d, want 1", got)
	}

	// The evicted key must re-execute (a cache miss, not a hit) and its
	// re-insertion pushes out the now-oldest entry.
	j, outcome, err := pool.Submit(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeAccepted {
		t.Fatalf("evicted key resubmission: outcome %s, want accepted", outcome)
	}
	waitResult(t, j)
	if _, ok := pool.CachedResult(keys[1]); ok {
		t.Error("second-oldest key survived the re-insertion eviction")
	}
	for _, k := range []string{keys[2], keys[0]} {
		if _, ok := pool.CachedResult(k); !ok {
			t.Errorf("key %s missing from cache after re-insertion", k)
		}
	}
	if got := pool.Counters().Get("cache_evictions"); got != 2 {
		t.Errorf("cache_evictions = %d, want 2", got)
	}
}

// TestCacheEvictionConcurrent races many distinct submissions through a
// tiny cache: whatever the finish order, the count of evictions must be
// exactly inserts minus capacity and the cache must end at capacity.
// Run under -race this also guards the eviction path's locking.
func TestCacheEvictionConcurrent(t *testing.T) {
	const (
		submitters = 4
		perWorker  = 6
		cacheCap   = 4
	)
	pool := New(Config{Workers: 4, QueueDepth: submitters * perWorker, CacheCap: cacheCap})
	pool.Start()
	defer pool.Shutdown(context.Background())

	var wg sync.WaitGroup
	keys := make([][]string, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				j, _, err := pool.Submit(testSpec(int64(1000 + w*perWorker + i)))
				if err != nil {
					t.Error(err)
					return
				}
				keys[w] = append(keys[w], j.Key)
				waitResult(t, j)
			}
		}(w)
	}
	wg.Wait()

	distinct := make(map[string]struct{})
	cached := 0
	for _, ks := range keys {
		for _, k := range ks {
			if _, dup := distinct[k]; dup {
				continue
			}
			distinct[k] = struct{}{}
			if _, ok := pool.CachedResult(k); ok {
				cached++
			}
		}
	}
	if len(distinct) != submitters*perWorker {
		t.Fatalf("expected %d distinct keys, got %d", submitters*perWorker, len(distinct))
	}
	if cached != cacheCap {
		t.Errorf("%d keys still cached, want exactly the capacity %d", cached, cacheCap)
	}
	want := uint64(len(distinct) - cacheCap)
	if got := pool.Counters().Get("cache_evictions"); got != want {
		t.Errorf("cache_evictions = %d, want %d", got, want)
	}
}
