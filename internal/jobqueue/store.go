package jobqueue

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"peas/internal/checkpoint"
	"peas/internal/durable"
)

// On-disk layout under Config.StateDir:
//
//	<id>.spec.json — the admitted job (ID, content key, normalized spec),
//	                 written at admission, removed at completion.
//	<id>.ckpt      — the drain checkpoint in the canonical snapshot
//	                 codec, written when a shutdown deadline suspends
//	                 the run.
//	quarantine/    — damaged files Recover set aside instead of parsing.
//
// Every file is written through internal/durable: an atomic, fsync'd,
// CRC-framed protocol (write-tmp → fsync file → rename → fsync dir), so
// a SIGKILL or power loss at any syscall boundary leaves each path
// holding either its complete previous content or its complete new
// content. Recover is crash-only: it scans the directory on boot,
// re-enqueues every persisted job (resuming bit-exactly from a .ckpt
// when present, restarting from the spec otherwise), quarantines any
// file that fails frame or schema validation, sweeps torn .tmp files
// and orphaned checkpoints, and never aborts the boot for damage.

// QuarantineDir is the subdirectory of the state dir that damaged
// files are moved into for offline inspection.
const QuarantineDir = "quarantine"

type specFile struct {
	ID   string `json:"id"`
	Key  string `json:"key"`
	Spec *Spec  `json:"spec"`
	// Parked marks the pair as a cancelled/deadline-killed run's leftover
	// checkpoint: Recover loads it into the parked index (claimable by a
	// resubmission of the same spec) instead of re-enqueueing the job —
	// a cancelled job must never resurrect as runnable work.
	Parked bool `json:"parked,omitempty"`
}

// fsys returns the filesystem the store runs on (the real one unless a
// test injected a fault layer).
func (p *Pool) fsys() durable.FS {
	if p.cfg.FS != nil {
		return p.cfg.FS
	}
	return durable.OS{}
}

func (p *Pool) specPath(id string) string {
	return filepath.Join(p.cfg.StateDir, id+".spec.json")
}

func (p *Pool) ckptPath(id string) string {
	return filepath.Join(p.cfg.StateDir, id+".ckpt")
}

// persistSpec durably records an admitted job for crash recovery. A
// no-op without a state dir. Submit calls it before the job becomes
// runnable, so a failure here rolls the admission back instead of
// accepting work that could be silently lost.
func (p *Pool) persistSpec(job *Job) error {
	if p.cfg.StateDir == "" {
		return nil
	}
	data, err := json.Marshal(specFile{ID: job.ID, Key: job.Key, Spec: job.Spec})
	if err != nil {
		return err
	}
	return durable.WriteFile(p.fsys(), p.specPath(job.ID), data)
}

// persistSnapshot durably writes a drain checkpoint next to the job's
// spec.
func (p *Pool) persistSnapshot(job *Job, snap *checkpoint.Snapshot) error {
	if p.cfg.StateDir == "" {
		return fmt.Errorf("no state dir configured")
	}
	return durable.WriteFile(p.fsys(), p.ckptPath(job.ID), snap.EncodeBytes())
}

// persistPark rewrites a preempted job's spec with the Parked marker and
// writes its checkpoint beside it. Ordering matters for crash safety:
// the checkpoint lands first, so a crash between the writes leaves a
// plain spec + checkpoint pair — which Recover treats as an ordinary
// resumable job, never a half-parked one.
func (p *Pool) persistPark(job *Job, snap *checkpoint.Snapshot) error {
	if p.cfg.StateDir == "" {
		return nil
	}
	if err := p.persistSnapshot(job, snap); err != nil {
		return err
	}
	data, err := json.Marshal(specFile{ID: job.ID, Key: job.Key, Spec: job.Spec, Parked: true})
	if err != nil {
		return err
	}
	return durable.WriteFile(p.fsys(), p.specPath(job.ID), data)
}

// removeJobFiles clears a completed job's persisted state.
func (p *Pool) removeJobFiles(id string) {
	if p.cfg.StateDir == "" {
		return
	}
	fsys := p.fsys()
	_ = fsys.Remove(p.specPath(id))
	_ = fsys.Remove(p.ckptPath(id))
}

// quarantine moves one damaged state file into StateDir/quarantine,
// preserving its name. Crash-only policy: damaged data is set aside
// for inspection — never deleted, never parsed, never allowed to block
// recovery of the healthy files around it.
func (p *Pool) quarantine(name string) {
	fsys := p.fsys()
	qdir := filepath.Join(p.cfg.StateDir, QuarantineDir)
	if err := fsys.MkdirAll(qdir); err != nil {
		p.counters.Add("quarantine_errors", 1)
		return
	}
	if err := fsys.Rename(filepath.Join(p.cfg.StateDir, name), filepath.Join(qdir, name)); err != nil {
		p.counters.Add("quarantine_errors", 1)
		return
	}
	_ = fsys.SyncDir(qdir)
	_ = fsys.SyncDir(p.cfg.StateDir)
}

// Recover re-admits every job persisted in the state dir, resuming from
// drain checkpoints where present. Call it after New and before (or
// after) Start; recovered jobs keep their original IDs, and the ID
// sequence advances past every ID seen on disk (including quarantined
// ones) so new submissions cannot collide. Jobs beyond the queue
// capacity stay on disk for the next restart.
//
// Recover is crash-only: damage never aborts the boot. A spec file that
// fails CRC, JSON or schema validation is quarantined (with its
// checkpoint) and counted in jobs_quarantined; a damaged checkpoint
// alone is quarantined (checkpoints_quarantined) and the job restarts
// from its spec; torn .tmp files and orphaned checkpoints are swept.
// The only error returned is an unreadable state directory itself. It
// returns the number of jobs re-enqueued.
func (p *Pool) Recover() (int, error) {
	if p.cfg.StateDir == "" {
		return 0, nil
	}
	fsys := p.fsys()
	entries, err := fsys.ReadDir(p.cfg.StateDir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}

	var ids []string
	specs := make(map[string]bool)
	ckpts := make(map[string]bool)
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case ent.IsDir():
			// quarantine/ — not state.
		case strings.HasSuffix(name, durable.TmpSuffix):
			// A torn write: never renamed into place, holds no committed
			// data by protocol. Safe to sweep.
			_ = fsys.Remove(filepath.Join(p.cfg.StateDir, name))
			p.counters.Add("tmp_files_swept", 1)
		case strings.HasSuffix(name, ".spec.json"):
			id := strings.TrimSuffix(name, ".spec.json")
			ids = append(ids, id)
			specs[id] = true
			p.advanceSeq(id)
		case strings.HasSuffix(name, ".ckpt"):
			id := strings.TrimSuffix(name, ".ckpt")
			ckpts[id] = true
			p.advanceSeq(id)
		}
	}
	// Orphaned checkpoints (no spec to attach to) cannot be resumed;
	// set them aside rather than leaking them forever.
	for id := range ckpts {
		if !specs[id] {
			p.quarantine(id + ".ckpt")
			p.counters.Add("checkpoints_quarantined", 1)
			delete(ckpts, id)
		}
	}
	sort.Strings(ids) // admission order: IDs are zero-padded sequence numbers

	recovered := 0
	for _, id := range ids {
		sf, err := p.readSpecFile(id)
		if err != nil {
			// Damaged spec: the job cannot be reconstructed. Quarantine
			// it (and its checkpoint — meaningless without the spec) and
			// keep booting.
			p.quarantine(id + ".spec.json")
			if ckpts[id] {
				p.quarantine(id + ".ckpt")
				p.counters.Add("checkpoints_quarantined", 1)
			}
			p.counters.Add("jobs_quarantined", 1)
			continue
		}
		key := sf.Spec.Key()

		var snap *checkpoint.Snapshot
		if ckpts[id] {
			raw, cerr := durable.ReadFile(fsys, p.ckptPath(id))
			if cerr == nil {
				snap, cerr = checkpoint.DecodeBytes(raw)
			}
			if cerr != nil {
				// Damaged checkpoint, healthy spec: the resume is lost
				// but the job is not — restart it from scratch.
				p.quarantine(id + ".ckpt")
				p.counters.Add("checkpoints_quarantined", 1)
				snap = nil
			}
		}

		if sf.Parked {
			// A cancelled/deadline-killed run's parked checkpoint: load
			// it into the claim index, never the run queue. A parked
			// spec whose checkpoint was lost has nothing left to claim.
			if snap == nil {
				p.quarantine(id + ".spec.json")
				p.counters.Add("jobs_quarantined", 1)
				continue
			}
			dup := false
			var evicted []string
			p.mu.Lock()
			if _, ok := p.parked[key]; ok {
				dup = true
			} else {
				p.parked[key] = &parkedEntry{id: id, snap: snap}
				p.parkedSeq = append(p.parkedSeq, key)
				for len(p.parkedSeq) > p.cfg.CacheCap {
					old := p.parkedSeq[0]
					p.parkedSeq = p.parkedSeq[1:]
					if ent, ok := p.parked[old]; ok {
						evicted = append(evicted, ent.id)
						delete(p.parked, old)
					}
				}
			}
			p.mu.Unlock()
			if dup {
				p.removeJobFiles(id)
			} else {
				p.counters.Add("jobs_parked_recovered", 1)
			}
			for _, eid := range evicted {
				p.counters.Add("parked_evicted", 1)
				p.removeJobFiles(eid)
			}
			continue
		}

		p.mu.Lock()
		if !p.accepting || p.queued >= p.cfg.QueueDepth {
			p.mu.Unlock()
			break // remaining files stay for the next restart
		}
		if _, dup := p.inflight[key]; dup {
			p.mu.Unlock()
			p.counters.Add("jobs_recovered_dup", 1)
			p.removeJobFiles(id)
			continue
		}
		job := newJob(id, key, sf.Spec, time.Now())
		job.resume = snap
		p.jobs[id] = job
		p.order = append(p.order, id)
		p.inflight[key] = job
		p.queued++
		p.mu.Unlock()

		p.counters.Add("jobs_recovered", 1)
		p.queue <- job
		recovered++
	}
	return recovered, nil
}

// readSpecFile loads and validates one persisted spec through the
// durable frame; any failure means the file is damaged and must be
// quarantined by the caller.
func (p *Pool) readSpecFile(id string) (*specFile, error) {
	payload, err := durable.ReadFile(p.fsys(), p.specPath(id))
	if err != nil {
		return nil, err
	}
	var sf specFile
	if err := json.Unmarshal(payload, &sf); err != nil {
		return nil, fmt.Errorf("jobqueue: corrupt spec file %s: %w", p.specPath(id), err)
	}
	if sf.Spec == nil {
		return nil, fmt.Errorf("jobqueue: spec file %s has no spec", p.specPath(id))
	}
	if err := sf.Spec.Normalize(); err != nil {
		return nil, fmt.Errorf("jobqueue: recovering %s: %w", id, err)
	}
	return &sf, nil
}

// advanceSeq bumps the ID sequence past an on-disk job ID (held by the
// caller outside p.mu only during single-threaded Recover).
func (p *Pool) advanceSeq(id string) {
	p.mu.Lock()
	if seq := idSequence(id); seq > p.seq {
		p.seq = seq
	}
	p.mu.Unlock()
}

// idSequence parses the numeric suffix of a job ID ("j-000017" -> 17).
func idSequence(id string) int {
	s, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}
