package jobqueue

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"peas/internal/checkpoint"
)

// On-disk layout under Config.StateDir:
//
//	<id>.spec.json — the admitted job (ID, content key, normalized spec),
//	                 written at admission, removed at completion.
//	<id>.ckpt      — the drain checkpoint in the canonical snapshot
//	                 codec, written when a shutdown deadline suspends
//	                 the run.
//
// Recover scans the directory on boot and re-enqueues every persisted
// job: with a .ckpt the run resumes bit-exactly from the snapshot;
// without one it restarts from the spec.

type specFile struct {
	ID   string `json:"id"`
	Key  string `json:"key"`
	Spec *Spec  `json:"spec"`
}

func (p *Pool) specPath(id string) string {
	return filepath.Join(p.cfg.StateDir, id+".spec.json")
}

func (p *Pool) ckptPath(id string) string {
	return filepath.Join(p.cfg.StateDir, id+".ckpt")
}

// persistSpec records an admitted job for crash recovery. A no-op
// without a state dir.
func (p *Pool) persistSpec(job *Job) error {
	if p.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(p.cfg.StateDir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(specFile{ID: job.ID, Key: job.Key, Spec: job.Spec})
	if err != nil {
		return err
	}
	tmp := p.specPath(job.ID) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p.specPath(job.ID))
}

// persistSnapshot writes a drain checkpoint next to the job's spec.
func (p *Pool) persistSnapshot(job *Job, snap *checkpoint.Snapshot) error {
	if p.cfg.StateDir == "" {
		return fmt.Errorf("no state dir configured")
	}
	if err := os.MkdirAll(p.cfg.StateDir, 0o755); err != nil {
		return err
	}
	tmp := p.ckptPath(job.ID) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := snap.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, p.ckptPath(job.ID))
}

// removeJobFiles clears a completed job's persisted state.
func (p *Pool) removeJobFiles(id string) {
	if p.cfg.StateDir == "" {
		return
	}
	_ = os.Remove(p.specPath(id))
	_ = os.Remove(p.ckptPath(id))
}

// Recover re-admits every job persisted in the state dir, resuming from
// drain checkpoints where present. Call it after New and before (or
// after) Start; recovered jobs keep their original IDs, and the ID
// sequence advances past them so new submissions cannot collide. Jobs
// beyond the queue capacity stay on disk for the next restart. It
// returns the number of jobs re-enqueued.
func (p *Pool) Recover() (int, error) {
	if p.cfg.StateDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(p.cfg.StateDir)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var ids []string
	for _, ent := range entries {
		if name, ok := strings.CutSuffix(ent.Name(), ".spec.json"); ok {
			ids = append(ids, name)
		}
	}
	sort.Strings(ids) // admission order: IDs are zero-padded sequence numbers

	recovered := 0
	for _, id := range ids {
		data, err := os.ReadFile(p.specPath(id))
		if err != nil {
			return recovered, err
		}
		var sf specFile
		if err := json.Unmarshal(data, &sf); err != nil {
			return recovered, fmt.Errorf("jobqueue: corrupt spec file %s: %w", p.specPath(id), err)
		}
		if sf.Spec == nil {
			return recovered, fmt.Errorf("jobqueue: spec file %s has no spec", p.specPath(id))
		}
		if err := sf.Spec.Normalize(); err != nil {
			return recovered, fmt.Errorf("jobqueue: recovering %s: %w", id, err)
		}
		key := sf.Spec.Key()

		var snap *checkpoint.Snapshot
		if f, err := os.Open(p.ckptPath(id)); err == nil {
			snap, err = checkpoint.Decode(f)
			_ = f.Close()
			if err != nil {
				return recovered, fmt.Errorf("jobqueue: corrupt drain checkpoint for %s: %w", id, err)
			}
		}

		p.mu.Lock()
		if !p.accepting || p.queued >= p.cfg.QueueDepth {
			p.mu.Unlock()
			break // remaining files stay for the next restart
		}
		if _, dup := p.inflight[key]; dup {
			p.mu.Unlock()
			p.removeJobFiles(id)
			continue
		}
		job := newJob(id, key, sf.Spec, time.Now())
		job.resume = snap
		p.jobs[id] = job
		p.order = append(p.order, id)
		p.inflight[key] = job
		p.queued++
		if seq := idSequence(id); seq > p.seq {
			p.seq = seq
		}
		p.mu.Unlock()

		p.counters.Add("jobs_recovered", 1)
		p.queue <- job
		recovered++
	}
	return recovered, nil
}

// idSequence parses the numeric suffix of a job ID ("j-000017" -> 17).
func idSequence(id string) int {
	s, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0
	}
	return n
}
