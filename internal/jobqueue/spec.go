// Package jobqueue turns the one-shot experiment runner into a
// long-running, multi-tenant execution substrate: a bounded FIFO queue
// feeding a fixed worker pool, with admission control (a full queue
// rejects immediately with a retry hint instead of blocking), in-flight
// coalescing (identical submissions attach to one underlying run), and a
// content-addressed result cache keyed by the canonical checkpoint-codec
// encoding of the job configuration. Because the engine is bit-exact
// deterministic — equal configs produce equal StateHash — a cached
// result is indistinguishable from a fresh run, which is what makes the
// cache safe.
//
// The package is transport-agnostic; internal/server exposes it over
// HTTP/JSON with SSE event streaming, and cmd/peas-serve is the binary.
package jobqueue

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"peas/internal/chaos"
	"peas/internal/checkpoint"
	"peas/internal/experiment"
	"peas/internal/node"
)

// Spec kinds. An empty kind defaults to KindSim; KindChaos is implied
// when a chaos plan is present and KindSweep when sweep options are.
const (
	KindSim   = "sim"
	KindSweep = "sweep"
	KindChaos = "chaos"
)

// specKeyVersion is bumped whenever the canonical spec encoding changes,
// so stale persisted state can never alias a new-format key.
// v2: the Panic fault-injection flag joined the encoding.
// v3: the Hang fault-injection flag joined the encoding.
const specKeyVersion uint32 = 3

// SweepSpec configures a deployment sweep job: the §5.2 varying-
// population experiment run as one service job.
type SweepSpec struct {
	// Deployments lists the deployment sizes (default: the paper's
	// 160..800).
	Deployments []int `json:"deployments,omitempty"`
	// Runs is the number of independent seeds averaged per point
	// (default 5).
	Runs int `json:"runs,omitempty"`
}

// Spec is one job submission: the full network configuration plus the
// experiment-level knobs. It is the unit the cache key is derived from,
// so every field that influences the simulation outcome must be covered
// by the canonical encoding in Key.
type Spec struct {
	// Kind selects the job type: "sim" (default), "sweep" or "chaos".
	Kind string `json:"kind,omitempty"`
	// Network is the deployment configuration. Zero-valued sections
	// (field, protocol, radio, energy profile, initial charge) are
	// filled with the paper's defaults by Normalize, so a minimal
	// submission only needs N and Seed.
	Network node.Config `json:"network"`
	// FailuresPer5000s is the injected failure rate in the paper's unit.
	FailuresPer5000s float64 `json:"failuresPer5000s,omitempty"`
	// Horizon bounds the simulated seconds (0 = deployment-proportional
	// default; Normalize resolves it so the cache key is explicit).
	Horizon float64 `json:"horizon,omitempty"`
	// Forwarding enables the source/sink data workload.
	Forwarding bool `json:"forwarding,omitempty"`
	// CoverageSpacing is the coverage lattice spacing in meters (0 = 1).
	CoverageSpacing float64 `json:"coverageSpacing,omitempty"`
	// Check arms the runtime invariant oracle; any violation fails the
	// job.
	Check bool `json:"check,omitempty"`
	// Chaos attaches a scripted fault plan (KindChaos).
	Chaos *chaos.Plan `json:"chaos,omitempty"`
	// Sweep holds the sweep options (KindSweep).
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Panic is service-level fault injection: the job's worker panics
	// instead of running the simulation. It exists so crash-soak
	// harnesses can prove panic isolation end to end — the job must land
	// in the failed state with the stack in its error while the pool and
	// daemon survive. It participates in the content key like any other
	// field (a panic job must never alias a real run's cached result).
	Panic bool `json:"panic,omitempty"`
	// Hang is service-level fault injection: the job's worker wedges —
	// occupying its slot while making no event progress — until the
	// watchdog preempts it (or a drain aborts it). It exists so the
	// cancellation-storm harness can prove stall supervision end to end.
	// Like Panic it participates in the content key.
	Hang bool `json:"hang,omitempty"`
	// DeadlineSeconds, when positive, bounds the job end to end: the
	// budget starts at admission, and a job that has not finished when it
	// expires is preempted into the deadline_exceeded state (running
	// checkpointable work parks a resumable snapshot first). It is a
	// scheduling constraint, not a simulation input, so it is EXCLUDED
	// from the content key — two submissions differing only in deadline
	// mean the same run and must coalesce/cache-hit onto one result.
	DeadlineSeconds float64 `json:"deadlineSeconds,omitempty"`
}

// NewSimSpec returns a plain simulation spec with the paper's default
// configuration for n nodes.
func NewSimSpec(n int, seed int64) *Spec {
	return &Spec{
		Kind:             KindSim,
		Network:          node.DefaultConfig(n, seed),
		FailuresPer5000s: experiment.BaseFailuresPer5000,
	}
}

// Normalize fills defaults in place so that two submissions that mean
// the same simulation produce the same canonical encoding: the kind is
// resolved, zero-valued configuration sections take the paper defaults,
// and the horizon is made explicit. It returns an error for structurally
// invalid specs (these are rejected at admission, before queueing).
func (s *Spec) Normalize() error {
	switch s.Kind {
	case "":
		switch {
		case s.Chaos != nil:
			s.Kind = KindChaos
		case s.Sweep != nil:
			s.Kind = KindSweep
		default:
			s.Kind = KindSim
		}
	case KindSim, KindSweep, KindChaos:
	default:
		return fmt.Errorf("jobqueue: unknown job kind %q", s.Kind)
	}
	if s.Kind == KindChaos && s.Chaos == nil {
		return fmt.Errorf("jobqueue: chaos job without a fault plan")
	}
	if s.Kind != KindChaos && s.Chaos != nil {
		return fmt.Errorf("jobqueue: fault plan on a %s job", s.Kind)
	}
	if s.Kind != KindSweep && s.Sweep != nil {
		return fmt.Errorf("jobqueue: sweep options on a %s job", s.Kind)
	}

	if s.Network.N <= 0 {
		return fmt.Errorf("jobqueue: network.N must be positive, got %d", s.Network.N)
	}
	def := node.DefaultConfig(s.Network.N, s.Network.Seed)
	if s.Network.Field.Width <= 0 || s.Network.Field.Height <= 0 {
		s.Network.Field = def.Field
	}
	if s.Network.Protocol == (node.Config{}).Protocol {
		s.Network.Protocol = def.Protocol
	}
	if s.Network.Radio == (node.Config{}).Radio {
		s.Network.Radio = def.Radio
	}
	if s.Network.Energy == (node.Config{}).Energy {
		s.Network.Energy = def.Energy
	}
	if s.Network.InitialEnergyMin == 0 && s.Network.InitialEnergyMax == 0 {
		s.Network.InitialEnergyMin = def.InitialEnergyMin
		s.Network.InitialEnergyMax = def.InitialEnergyMax
	}
	if s.Network.Positions != nil && len(s.Network.Positions) != s.Network.N {
		return fmt.Errorf("jobqueue: %d positions for %d nodes", len(s.Network.Positions), s.Network.N)
	}
	if s.Network.NodeSeeds != nil && len(s.Network.NodeSeeds) != s.Network.N {
		return fmt.Errorf("jobqueue: %d node seeds for %d nodes", len(s.Network.NodeSeeds), s.Network.N)
	}

	if math.IsNaN(s.DeadlineSeconds) || math.IsInf(s.DeadlineSeconds, 0) || s.DeadlineSeconds < 0 {
		return fmt.Errorf("jobqueue: deadlineSeconds must be a finite non-negative number, got %v", s.DeadlineSeconds)
	}
	if s.Kind != KindSweep && s.Horizon <= 0 {
		s.Horizon = experiment.DefaultHorizon(s.Network.N)
	}
	if s.Chaos != nil {
		if err := s.Chaos.Validate(); err != nil {
			return err
		}
	}
	if s.Sweep != nil {
		if s.Sweep.Runs < 0 {
			return fmt.Errorf("jobqueue: negative sweep runs")
		}
		if s.Sweep.Runs == 0 {
			s.Sweep.Runs = 5
		}
		if len(s.Sweep.Deployments) == 0 {
			s.Sweep.Deployments = []int{160, 320, 480, 640, 800}
		}
		for _, n := range s.Sweep.Deployments {
			if n <= 0 {
				return fmt.Errorf("jobqueue: non-positive sweep deployment %d", n)
			}
		}
	}
	return nil
}

// Key returns the content address of the spec: the hex SHA-256 of its
// canonical encoding. The network section reuses the checkpoint codec's
// canonical config encoding (checkpoint.AppendNetConfig); the
// experiment-level knobs are appended with the same fixed-width
// convention; chaos and sweep sections are length-prefixed canonical
// JSON of the normalized structs (deterministic in Go for structs
// without maps). Call Normalize first — Key on an unnormalized spec
// would distinguish submissions that mean the same run.
func (s *Spec) Key() string {
	buf := make([]byte, 0, 512)
	buf = append(buf, "PEASJOB\x00"...)
	buf = appendU32(buf, specKeyVersion)
	buf = append(buf, s.Kind...)
	buf = append(buf, 0)
	buf = checkpoint.AppendNetConfig(buf, &s.Network)
	buf = appendF64(buf, s.FailuresPer5000s)
	buf = appendF64(buf, s.Horizon)
	buf = appendBool(buf, s.Forwarding)
	buf = appendF64(buf, s.CoverageSpacing)
	buf = appendBool(buf, s.Check)
	buf = appendJSONSection(buf, s.Chaos != nil, s.Chaos)
	buf = appendJSONSection(buf, s.Sweep != nil, s.Sweep)
	buf = appendBool(buf, s.Panic)
	buf = appendBool(buf, s.Hang)
	// DeadlineSeconds is deliberately absent: it constrains scheduling,
	// not the simulation, so deadline-differing duplicates share one run.
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// RunConfig translates a sim or chaos spec into the experiment runner's
// configuration. CaptureFinal is always set: the final snapshot's
// StateHash is the identity every cached result carries.
func (s *Spec) RunConfig() experiment.RunConfig {
	return experiment.RunConfig{
		Network:          s.Network,
		FailuresPer5000s: s.FailuresPer5000s,
		Horizon:          s.Horizon,
		Forwarding:       s.Forwarding,
		CoverageSpacing:  s.CoverageSpacing,
		Chaos:            s.Chaos,
		CaptureFinal:     true,
	}
}

func appendU32(buf []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(buf, v)
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendJSONSection(buf []byte, present bool, v any) []byte {
	buf = appendBool(buf, present)
	if !present {
		return buf
	}
	data, err := json.Marshal(v)
	if err != nil {
		// Specs are plain data structs; Marshal cannot fail on them.
		panic(fmt.Sprintf("jobqueue: canonical encode: %v", err))
	}
	buf = appendU32(buf, uint32(len(data)))
	return append(buf, data...)
}
